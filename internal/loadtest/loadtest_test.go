package loadtest

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/summary"
	"repro/internal/toy"
)

// scriptedServer answers POST /query with a deterministic status sequence,
// so classification and accounting are tested independent of real server
// timing (admission behavior itself is covered in internal/serve).
func scriptedServer(t *testing.T, status func(n int64) int) *httptest.Server {
	t.Helper()
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		code := status(n.Add(1))
		w.WriteHeader(code)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestLoadtestClassification: every status class lands in its own counter
// and OK/Shed/Unavailable/Timeout/Other partition the responses.
func TestLoadtestClassification(t *testing.T) {
	srv := scriptedServer(t, func(n int64) int {
		switch n % 5 {
		case 0:
			return http.StatusTooManyRequests
		case 1:
			return http.StatusServiceUnavailable
		case 2:
			return http.StatusGatewayTimeout
		case 3:
			return http.StatusInternalServerError
		default:
			return http.StatusOK
		}
	})
	res, err := Run(context.Background(), Options{
		BaseURL:     srv.URL,
		Queries:     []string{"SELECT COUNT(*) FROM r"},
		Concurrency: 4,
		Duration:    200 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 || res.OK == 0 || res.Shed == 0 || res.Unavailable == 0 || res.Timeout == 0 || res.Other == 0 {
		t.Fatalf("expected every class non-empty: %+v", res)
	}
	if got := res.OK + res.Shed + res.Unavailable + res.Timeout + res.Other + res.TransportErrors; got != res.Sent {
		t.Fatalf("classes sum to %d, sent %d", got, res.Sent)
	}
	if res.Admitted.Count != res.OK || res.ShedLatency.Count != res.Shed {
		t.Fatalf("latency counts (%d ok, %d shed) disagree with status counts (%d, %d)",
			res.Admitted.Count, res.ShedLatency.Count, res.OK, res.Shed)
	}
	if res.Admitted.P50 > res.Admitted.P99 || res.Admitted.P99 > res.Admitted.Max {
		t.Fatalf("latency summary not monotone: %+v", res.Admitted)
	}
	if sr := res.ShedRate(); sr <= 0 || sr >= 1 {
		t.Fatalf("shed rate %v outside (0,1)", sr)
	}
}

// TestLoadtestTransportErrors: a server that is not there at all yields
// transport errors, never fabricated statuses.
func TestLoadtestTransportErrors(t *testing.T) {
	// Reserve a port and close it so nothing is listening.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	ln.Close()
	res, err := Run(context.Background(), Options{
		BaseURL:     url,
		Queries:     []string{"SELECT 1"},
		Concurrency: 2,
		Duration:    100 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TransportErrors == 0 || res.TransportErrors != res.Sent {
		t.Fatalf("want every request to be a transport error: %+v", res)
	}
	if res.OK+res.Shed+res.Unavailable+res.Timeout+res.Other != 0 {
		t.Fatalf("fabricated statuses for failed requests: %+v", res)
	}
}

func toyServer(t *testing.T) string {
	t.Helper()
	db, err := toy.Database(42)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := core.CaptureClient(db, toy.Workload(), core.CaptureOptions{SkipStats: true})
	if err != nil {
		t.Fatal(err)
	}
	sum, _, err := core.BuildFromPackage(pkg, summary.DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(sum, serve.Options{Logf: t.Logf})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	t.Cleanup(func() { httpSrv.Close() })
	return "http://" + ln.Addr().String()
}

// TestLoadtestClosedLoopEndToEnd drives a real in-process server: every
// response must be 200 (no admission bound set, so nothing may be shed or
// fail) and the accounting must add up.
func TestLoadtestClosedLoopEndToEnd(t *testing.T) {
	url := toyServer(t)
	res, err := Run(context.Background(), Options{
		BaseURL:     url,
		Queries:     []string{"SELECT COUNT(*) FROM r", "SELECT COUNT(*) FROM s WHERE a >= 20 AND a < 60"},
		Concurrency: 8,
		Duration:    300 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK == 0 || res.OK != res.Sent {
		t.Fatalf("unbounded server must answer every request 200: %+v", res)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput not computed: %+v", res)
	}
}

// TestLoadtestOpenLoop schedules arrivals at a fixed rate; the run must
// send roughly rate×duration requests even though the server is fast.
func TestLoadtestOpenLoop(t *testing.T) {
	url := toyServer(t)
	res, err := Run(context.Background(), Options{
		BaseURL:     url,
		Queries:     []string{"SELECT COUNT(*) FROM r"},
		Concurrency: 8,
		Rate:        200,
		Duration:    300 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 200/s over 300ms ≈ 60 arrivals; allow generous scheduling slack.
	if res.Sent < 20 {
		t.Fatalf("open loop sent only %d requests at 200/s over 300ms", res.Sent)
	}
	if res.OK == 0 {
		t.Fatalf("no admitted requests: %+v", res)
	}
}

// TestLoadtestValidation: missing URL or query mix is an error.
func TestLoadtestValidation(t *testing.T) {
	if _, err := Run(context.Background(), Options{Queries: []string{"SELECT 1"}}); err == nil {
		t.Fatal("no BaseURL accepted")
	}
	if _, err := Run(context.Background(), Options{BaseURL: "http://127.0.0.1:1"}); err == nil {
		t.Fatal("empty query mix accepted")
	}
}
