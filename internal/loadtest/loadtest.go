// Package loadtest is Hydra's built-in load generator: a client-side
// harness that drives a running hydra serve front end with a configurable
// query mix and measures what the paper's demo audience would see under
// pressure — admitted-request latency percentiles, shed rate, and
// throughput. It exists so the E15 overload experiment (EXPERIMENTS.md)
// and the CI loadtest smoke run from the shipped binary, with no external
// tooling.
//
// Two driving modes:
//
//   - Closed loop (Rate == 0): Concurrency clients issue queries
//     back-to-back; offered load self-limits to the server's capacity.
//   - Open loop (Rate > 0): arrivals are scheduled at the given rate
//     regardless of completions — the mode that actually overloads a
//     server, since a slow server cannot push back on the schedule.
//
// The query mix is zipfian (rand.NewZipf) over the Queries slice: index 0
// is the hottest shape, matching how a plan cache sees production traffic.
package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Options configure one load-test run.
type Options struct {
	// BaseURL locates the server, e.g. "http://127.0.0.1:8372".
	BaseURL string
	// Queries is the SQL mix; requests draw from it zipfian-skewed
	// (index 0 hottest). Must be non-empty.
	Queries []string
	// ZipfS is the zipf skew parameter (> 1); values <= 1 select a uniform
	// mix. The default 1.5 approximates a production hot-shape skew.
	ZipfS float64
	// Concurrency is the closed-loop client count, and in open-loop mode
	// the cap on in-flight requests the harness itself tolerates
	// (a protection for the client host, not the server). 0 = 8.
	Concurrency int
	// Rate is the open-loop arrival rate in requests/sec; 0 = closed loop.
	Rate float64
	// Duration bounds the run. 0 = 5s.
	Duration time.Duration
	// TimeoutMS, when positive, is sent as each request's timeout_ms.
	TimeoutMS int64
	// Parallelism, when non-nil, overrides the server's per-query worker
	// count.
	Parallelism *int
	// Seed makes the mix deterministic.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.ZipfS == 0 {
		o.ZipfS = 1.5
	}
	return o
}

// LatencySummary describes one outcome class's latency distribution.
type LatencySummary struct {
	Count int           `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Result is the outcome of one run.
type Result struct {
	Elapsed time.Duration `json:"elapsed_ns"`
	Sent    int           `json:"sent"`
	// Status counts every response by HTTP status code.
	Status map[int]int `json:"status"`
	// OK / Shed / Unavailable / Timeout / TransportErrors partition Sent:
	// 200s, 429s, 503s, 504s, and requests that failed before a status
	// (connection refused, client-side deadline).
	OK              int `json:"ok"`
	Shed            int `json:"shed"`
	Unavailable     int `json:"unavailable"`
	Timeout         int `json:"timeout"`
	Other           int `json:"other"`
	TransportErrors int `json:"transport_errors"`
	// Admitted is the latency of 200 responses, SchedLatency of 429s (how
	// fast a shed fails — the property that keeps overload survivable).
	Admitted    LatencySummary `json:"admitted"`
	ShedLatency LatencySummary `json:"shed_latency"`
	// Throughput is admitted queries per second over the whole run.
	Throughput float64 `json:"throughput_qps"`
}

// ShedRate is the fraction of sent requests that were shed (429).
func (r *Result) ShedRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Sent)
}

// collector accumulates per-request observations across client goroutines.
type collector struct {
	mu        sync.Mutex
	status    map[int]int
	transport int
	okLat     []time.Duration
	shedLat   []time.Duration
}

func (c *collector) observe(status int, d time.Duration, transportErr bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if transportErr {
		c.transport++
		return
	}
	c.status[status]++
	switch status {
	case http.StatusOK:
		c.okLat = append(c.okLat, d)
	case http.StatusTooManyRequests:
		c.shedLat = append(c.shedLat, d)
	}
}

// picker draws queries from the mix, zipfian-skewed; it serializes the
// shared rng.
type picker struct {
	mu      sync.Mutex
	queries []string
	zipf    *rand.Zipf
	rng     *rand.Rand
}

func newPicker(opts Options) *picker {
	p := &picker{queries: opts.Queries, rng: rand.New(rand.NewSource(opts.Seed))}
	if opts.ZipfS > 1 && len(opts.Queries) > 1 {
		p.zipf = rand.NewZipf(p.rng, opts.ZipfS, 1, uint64(len(opts.Queries)-1))
	}
	return p
}

func (p *picker) pick() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.zipf != nil {
		return p.queries[p.zipf.Uint64()]
	}
	return p.queries[p.rng.Intn(len(p.queries))]
}

// request is the wire form of POST /query this harness emits (mirrors
// serve.QueryRequest without importing it — the harness is a pure client).
type request struct {
	SQL         string `json:"sql"`
	TimeoutMS   *int64 `json:"timeout_ms,omitempty"`
	Parallelism *int   `json:"parallelism,omitempty"`
}

// Run drives the server until ctx is done or the configured duration
// elapses, whichever is first, and summarizes what happened.
func Run(ctx context.Context, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("loadtest: no base URL")
	}
	if len(opts.Queries) == 0 {
		return nil, fmt.Errorf("loadtest: no queries")
	}
	ctx, cancel := context.WithTimeout(ctx, opts.Duration)
	defer cancel()

	col := &collector{status: make(map[int]int)}
	pick := newPicker(opts)
	// A keep-alive pool sized to the harness's in-flight cap: the default
	// transport keeps only 2 idle conns per host, and the resulting
	// connection churn under open-loop overload would bury the server's
	// fast-shed latency in client-side dial time.
	maxConns := 16 * opts.Concurrency
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        maxConns,
		MaxIdleConnsPerHost: maxConns,
	}}
	defer client.CloseIdleConnections()
	url := opts.BaseURL + "/query"
	var tmo *int64
	if opts.TimeoutMS > 0 {
		tmo = &opts.TimeoutMS
	}
	shoot := func() {
		body, _ := json.Marshal(request{SQL: pick.pick(), TimeoutMS: tmo, Parallelism: opts.Parallelism})
		// The request deliberately does NOT carry ctx: when the run's clock
		// expires, in-flight requests finish instead of polluting the
		// transport-error count; the waitgroup below bounds the tail.
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			col.observe(0, 0, true)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		start := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			col.observe(0, 0, true)
			return
		}
		resp.Body.Close()
		col.observe(resp.StatusCode, time.Since(start), false)
	}

	start := time.Now()
	var wg sync.WaitGroup
	var sent int
	if opts.Rate > 0 {
		// Open loop: arrivals on a fixed schedule, decoupled from
		// completions. The semaphore only protects the client host from
		// unbounded goroutine pileup; a full semaphore skips the arrival
		// (counted as transport pressure, not a server response).
		interval := time.Duration(float64(time.Second) / opts.Rate)
		sem := make(chan struct{}, 16*opts.Concurrency)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
	openLoop:
		for {
			select {
			case <-ctx.Done():
				break openLoop
			case <-ticker.C:
				select {
				case sem <- struct{}{}:
					sent++
					wg.Add(1)
					go func() {
						defer wg.Done()
						defer func() { <-sem }()
						shoot()
					}()
				default:
					sent++
					col.observe(0, 0, true) // client saturated; arrival dropped
				}
			}
		}
	} else {
		// Closed loop: each client issues queries back-to-back.
		var sentMu sync.Mutex
		for c := 0; c < opts.Concurrency; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					sentMu.Lock()
					sent++
					sentMu.Unlock()
					shoot()
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &Result{
		Elapsed:         elapsed,
		Sent:            sent,
		Status:          col.status,
		TransportErrors: col.transport,
		Admitted:        summarize(col.okLat),
		ShedLatency:     summarize(col.shedLat),
	}
	for code, n := range col.status {
		switch code {
		case http.StatusOK:
			res.OK += n
		case http.StatusTooManyRequests:
			res.Shed += n
		case http.StatusServiceUnavailable:
			res.Unavailable += n
		case http.StatusGatewayTimeout:
			res.Timeout += n
		default:
			res.Other += n
		}
	}
	if elapsed > 0 {
		res.Throughput = float64(res.OK) / elapsed.Seconds()
	}
	return res, nil
}

func summarize(lat []time.Duration) LatencySummary {
	if len(lat) == 0 {
		return LatencySummary{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	pct := func(q float64) time.Duration {
		i := int(q*float64(len(lat))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lat) {
			i = len(lat) - 1
		}
		return lat[i]
	}
	return LatencySummary{
		Count: len(lat),
		Mean:  sum / time.Duration(len(lat)),
		P50:   pct(0.50),
		P90:   pct(0.90),
		P99:   pct(0.99),
		Max:   lat[len(lat)-1],
	}
}
