// Package value provides the typed scalar values and integer interval
// algebra that underpin Hydra's constraint processing.
//
// Every column participating in region partitioning is mapped to an integer
// "coded" domain (ints natural, floats quantized by a per-column scale,
// strings via an order-preserving dictionary), so predicate regions become
// exact half-open integer intervals and the LP bookkeeping never suffers
// floating-point boundary ambiguity.
package value

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported scalar kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is an immutable scalar: an int64, float64, string, or SQL NULL.
// The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a floating-point value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// Kind reports the value's dynamic kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the underlying int64. It panics unless Kind is KindInt.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("value: Int() on %s", v.kind))
	}
	return v.i
}

// Float returns the underlying float64. It panics unless Kind is KindFloat.
func (v Value) Float() float64 {
	if v.kind != KindFloat {
		panic(fmt.Sprintf("value: Float() on %s", v.kind))
	}
	return v.f
}

// Str returns the underlying string. It panics unless Kind is KindString.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("value: Str() on %s", v.kind))
	}
	return v.s
}

// AsFloat converts a numeric value to float64. It panics on strings/NULL.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.i)
	case KindFloat:
		return v.f
	default:
		panic(fmt.Sprintf("value: AsFloat() on %s", v.kind))
	}
}

// Compare orders two values: -1, 0, or +1. NULL sorts before everything.
// Numeric kinds compare by numeric value; comparing a number with a string
// panics (the planner never produces such a comparison).
func Compare(a, b Value) int {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == b.kind:
			return 0
		case a.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	an, aNum := a.numeric()
	bn, bNum := b.numeric()
	switch {
	case aNum && bNum:
		switch {
		case an < bn:
			return -1
		case an > bn:
			return 1
		default:
			return 0
		}
	case a.kind == KindString && b.kind == KindString:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		default:
			return 0
		}
	default:
		panic(fmt.Sprintf("value: incomparable kinds %s and %s", a.kind, b.kind))
	}
}

func (v Value) numeric() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// Equal reports whether two values are equal under Compare semantics.
func Equal(a, b Value) bool {
	if (a.kind == KindNull) != (b.kind == KindNull) {
		return false
	}
	if a.kind == KindNull {
		return true
	}
	if (a.kind == KindString) != (b.kind == KindString) {
		return false
	}
	return Compare(a, b) == 0
}

// String renders the value for display. Strings are not quoted.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return v.s
	}
}

// SQL renders the value as a SQL literal (strings single-quoted, floats in
// plain decimal notation so the result re-parses).
func (v Value) SQL() string {
	switch v.kind {
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindFloat:
		return strconv.FormatFloat(v.f, 'f', -1, 64)
	default:
		return v.String()
	}
}

// MarshalJSON encodes ints, floats, and strings natively and NULL as null.
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.kind {
	case KindNull:
		return []byte("null"), nil
	case KindInt:
		return json.Marshal(v.i)
	case KindFloat:
		if math.IsInf(v.f, 0) || math.IsNaN(v.f) {
			return nil, fmt.Errorf("value: cannot marshal non-finite float %v", v.f)
		}
		return json.Marshal(v.f)
	default:
		return json.Marshal(v.s)
	}
}

// UnmarshalJSON decodes JSON numbers to int when integral, else float;
// strings to KindString; null to NULL.
func (v *Value) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*v = Null
		return nil
	}
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		*v = NewString(s)
		return nil
	}
	// Try integer first so round-trips preserve kind.
	var i int64
	if err := json.Unmarshal(data, &i); err == nil {
		*v = NewInt(i)
		return nil
	}
	var f float64
	if err := json.Unmarshal(data, &f); err != nil {
		return err
	}
	*v = NewFloat(f)
	return nil
}
