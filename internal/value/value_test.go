package value

import (
	"encoding/json"
	"math"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "null",
		KindInt:    "int",
		KindFloat:  "float",
		KindString: "string",
		Kind(42):   "kind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := NewInt(7); v.Kind() != KindInt || v.Int() != 7 {
		t.Errorf("NewInt: got %v", v)
	}
	if v := NewFloat(2.5); v.Kind() != KindFloat || v.Float() != 2.5 {
		t.Errorf("NewFloat: got %v", v)
	}
	if v := NewString("x"); v.Kind() != KindString || v.Str() != "x" {
		t.Errorf("NewString: got %v", v)
	}
	if !Null.IsNull() {
		t.Error("Null.IsNull() = false")
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value should be NULL")
	}
}

func TestAccessorPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"Int on string", func() { NewString("x").Int() }},
		{"Float on int", func() { NewInt(1).Float() }},
		{"Str on float", func() { NewFloat(1).Str() }},
		{"AsFloat on string", func() { NewString("x").AsFloat() }},
		{"AsFloat on null", func() { Null.AsFloat() }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			c.fn()
		})
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(2), NewFloat(2.0), 0},
		{NewInt(2), NewFloat(2.5), -1},
		{NewFloat(2.5), NewInt(2), 1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewString("c"), NewString("b"), 1},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareIncomparablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic comparing int and string")
		}
	}()
	Compare(NewInt(1), NewString("1"))
}

func TestEqual(t *testing.T) {
	if !Equal(NewInt(3), NewFloat(3)) {
		t.Error("3 should equal 3.0")
	}
	if Equal(NewInt(3), NewString("3")) {
		t.Error("int 3 should not equal string \"3\"")
	}
	if Equal(Null, NewInt(0)) {
		t.Error("NULL should not equal 0")
	}
	if !Equal(Null, Null) {
		t.Error("NULL should equal NULL")
	}
}

func TestStringAndSQL(t *testing.T) {
	cases := []struct {
		v        Value
		str, sql string
	}{
		{NewInt(-5), "-5", "-5"},
		{NewFloat(2.5), "2.5", "2.5"},
		{NewString("hi"), "hi", "'hi'"},
		{Null, "NULL", "NULL"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.str {
			t.Errorf("%v.String() = %q, want %q", c.v, got, c.str)
		}
		if got := c.v.SQL(); got != c.sql {
			t.Errorf("%v.SQL() = %q, want %q", c.v, got, c.sql)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	vals := []Value{NewInt(42), NewInt(-1), NewFloat(3.25), NewString("a'b"), Null}
	for _, v := range vals {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var got Value
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !Equal(v, got) || v.Kind() != got.Kind() {
			t.Errorf("round trip %v -> %s -> %v", v, data, got)
		}
	}
}

func TestJSONNonFiniteError(t *testing.T) {
	if _, err := json.Marshal(NewFloat(math.Inf(1))); err == nil {
		t.Error("expected error marshaling +Inf")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var v Value
	if err := json.Unmarshal([]byte(`{"a":1}`), &v); err == nil {
		t.Error("expected error unmarshaling object")
	}
}
