package value

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// DomainMin and DomainMax bound every coded column domain. Keeping a wide
// margin below math.MinInt64/MaxInt64 lets interval arithmetic add or
// subtract one without overflow checks at every call site.
const (
	DomainMin int64 = math.MinInt64 / 4
	DomainMax int64 = math.MaxInt64 / 4
)

// Interval is a half-open integer interval [Lo, Hi). An interval with
// Hi <= Lo is empty.
type Interval struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
}

// Ival is shorthand for constructing an Interval.
func Ival(lo, hi int64) Interval { return Interval{Lo: lo, Hi: hi} }

// Point returns the degenerate interval [v, v+1) covering exactly v.
func Point(v int64) Interval { return Interval{Lo: v, Hi: v + 1} }

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Len returns the number of integer points in the interval (0 if empty).
func (iv Interval) Len() int64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v int64) bool { return v >= iv.Lo && v < iv.Hi }

// ContainsInterval reports whether other is a subset of iv.
func (iv Interval) ContainsInterval(other Interval) bool {
	if other.Empty() {
		return true
	}
	return other.Lo >= iv.Lo && other.Hi <= iv.Hi
}

// Overlaps reports whether the two intervals share at least one point.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Lo < other.Hi && other.Lo < iv.Hi && !iv.Empty() && !other.Empty()
}

// Intersect returns the intersection (possibly empty).
func (iv Interval) Intersect(other Interval) Interval {
	lo, hi := iv.Lo, iv.Hi
	if other.Lo > lo {
		lo = other.Lo
	}
	if other.Hi < hi {
		hi = other.Hi
	}
	return Interval{Lo: lo, Hi: hi}
}

// Subtract returns iv minus other as zero, one, or two disjoint intervals.
func (iv Interval) Subtract(other Interval) []Interval {
	if iv.Empty() {
		return nil
	}
	x := iv.Intersect(other)
	if x.Empty() {
		return []Interval{iv}
	}
	var out []Interval
	if iv.Lo < x.Lo {
		out = append(out, Interval{Lo: iv.Lo, Hi: x.Lo})
	}
	if x.Hi < iv.Hi {
		out = append(out, Interval{Lo: x.Hi, Hi: iv.Hi})
	}
	return out
}

// String renders the interval as [lo,hi).
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d)", iv.Lo, iv.Hi) }

// IntervalSet is a set of integer points represented as intervals. The
// canonical form (produced by Normalize and all set operations) is sorted,
// non-empty, and non-adjacent.
type IntervalSet []Interval

// NewIntervalSet normalizes the given intervals into canonical form.
func NewIntervalSet(ivs ...Interval) IntervalSet {
	return IntervalSet(ivs).Normalize()
}

// Normalize returns the canonical form: sorted by Lo, empties dropped,
// overlapping or adjacent intervals merged. The receiver is not modified.
func (s IntervalSet) Normalize() IntervalSet {
	tmp := make([]Interval, 0, len(s))
	for _, iv := range s {
		if !iv.Empty() {
			tmp = append(tmp, iv)
		}
	}
	if len(tmp) == 0 {
		return nil
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i].Lo < tmp[j].Lo })
	out := tmp[:1]
	for _, iv := range tmp[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi { // overlapping or adjacent
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// Empty reports whether the set contains no points.
func (s IntervalSet) Empty() bool {
	for _, iv := range s {
		if !iv.Empty() {
			return false
		}
	}
	return true
}

// Len returns the total number of integer points in the set.
// The set must be in canonical form for the count to be exact.
func (s IntervalSet) Len() int64 {
	var n int64
	for _, iv := range s {
		n += iv.Len()
	}
	return n
}

// Contains reports whether v lies in the set (binary search; canonical form).
func (s IntervalSet) Contains(v int64) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case v < s[mid].Lo:
			hi = mid
		case v >= s[mid].Hi:
			lo = mid + 1
		default:
			return true
		}
	}
	return false
}

// Union returns the union of two canonical sets, in canonical form.
func (s IntervalSet) Union(other IntervalSet) IntervalSet {
	merged := make(IntervalSet, 0, len(s)+len(other))
	merged = append(merged, s...)
	merged = append(merged, other...)
	return merged.Normalize()
}

// Intersect returns the intersection of two canonical sets.
func (s IntervalSet) Intersect(other IntervalSet) IntervalSet {
	var out IntervalSet
	i, j := 0, 0
	for i < len(s) && j < len(other) {
		x := s[i].Intersect(other[j])
		if !x.Empty() {
			out = append(out, x)
		}
		if s[i].Hi < other[j].Hi {
			i++
		} else {
			j++
		}
	}
	return out
}

// IntersectInto writes the intersection of two canonical sets into dst
// (truncated to length zero first) and returns it — the allocation-free
// form of Intersect for hot paths that own a reusable buffer. dst must not
// alias s or other.
func (s IntervalSet) IntersectInto(dst IntervalSet, other IntervalSet) IntervalSet {
	dst = dst[:0]
	i, j := 0, 0
	for i < len(s) && j < len(other) {
		x := s[i].Intersect(other[j])
		if !x.Empty() {
			dst = append(dst, x)
		}
		if s[i].Hi < other[j].Hi {
			i++
		} else {
			j++
		}
	}
	return dst
}

// IntersectLen returns the number of integer points the two canonical sets
// share — Intersect(other).Len() without materializing the intersection.
// This is the cardinality primitive the summary-direct aggregate path leans
// on; the fuzz suite holds it to a brute-force reference.
func (s IntervalSet) IntersectLen(other IntervalSet) int64 {
	var n int64
	i, j := 0, 0
	for i < len(s) && j < len(other) {
		x := s[i].Intersect(other[j])
		n += x.Len()
		if s[i].Hi < other[j].Hi {
			i++
		} else {
			j++
		}
	}
	return n
}

// PrefixInto writes the first k points (in ascending order) of a canonical
// set into dst (truncated to length zero first) and returns it, in
// canonical form. k <= 0 yields an empty set; k >= Len() yields the whole
// set. dst must not alias s.
func (s IntervalSet) PrefixInto(dst IntervalSet, k int64) IntervalSet {
	dst = dst[:0]
	for _, iv := range s {
		if k <= 0 {
			break
		}
		n := iv.Len()
		if n > k {
			n = k
		}
		dst = append(dst, Interval{Lo: iv.Lo, Hi: iv.Lo + n})
		k -= n
	}
	return dst
}

// Min returns the smallest point of a non-empty canonical set.
func (s IntervalSet) Min() int64 { return s[0].Lo }

// Max returns the largest point of a non-empty canonical set.
func (s IntervalSet) Max() int64 { return s[len(s)-1].Hi - 1 }

// Subtract returns the points of s not in other (both canonical).
func (s IntervalSet) Subtract(other IntervalSet) IntervalSet {
	var out IntervalSet
	for _, iv := range s {
		rest := []Interval{iv}
		for _, o := range other {
			if o.Lo >= iv.Hi {
				break
			}
			var next []Interval
			for _, r := range rest {
				next = append(next, r.Subtract(o)...)
			}
			rest = next
			if len(rest) == 0 {
				break
			}
		}
		out = append(out, rest...)
	}
	return out.Normalize()
}

// ContainsSet reports whether other is a subset of s (both canonical).
func (s IntervalSet) ContainsSet(other IntervalSet) bool {
	return other.Subtract(s).Empty()
}

// Equal reports whether two canonical sets cover the same points.
func (s IntervalSet) Equal(other IntervalSet) bool {
	if len(s) != len(other) {
		return false
	}
	for i := range s {
		if s[i] != other[i] {
			return false
		}
	}
	return true
}

// At returns the rank-th smallest point of a canonical set (0-based).
// It panics when rank is out of range.
func (s IntervalSet) At(rank int64) int64 {
	if rank >= 0 {
		for _, iv := range s {
			if rank < iv.Len() {
				return iv.Lo + rank
			}
			rank -= iv.Len()
		}
	}
	panic(fmt.Sprintf("value: IntervalSet.At(%d) out of range for %s", rank, s))
}

// Clone returns a copy of the set.
func (s IntervalSet) Clone() IntervalSet {
	if s == nil {
		return nil
	}
	out := make(IntervalSet, len(s))
	copy(out, s)
	return out
}

// String renders the set as a comma-separated list of intervals.
func (s IntervalSet) String() string {
	if len(s) == 0 {
		return "{}"
	}
	parts := make([]string, len(s))
	for i, iv := range s {
		parts[i] = iv.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}
