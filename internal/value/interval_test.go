package value

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := Ival(2, 5)
	if iv.Empty() || iv.Len() != 3 {
		t.Errorf("Ival(2,5): empty=%v len=%d", iv.Empty(), iv.Len())
	}
	if !iv.Contains(2) || !iv.Contains(4) || iv.Contains(5) || iv.Contains(1) {
		t.Error("Contains misbehaves on [2,5)")
	}
	if !Ival(5, 5).Empty() || !Ival(6, 5).Empty() {
		t.Error("degenerate intervals should be empty")
	}
	if Point(3) != Ival(3, 4) {
		t.Error("Point(3) != [3,4)")
	}
	if Ival(0, 3).String() != "[0,3)" {
		t.Errorf("String: %s", Ival(0, 3))
	}
}

func TestIntervalSetOps(t *testing.T) {
	a := NewIntervalSet(Ival(0, 5), Ival(10, 15))
	b := NewIntervalSet(Ival(3, 12))

	if got := a.Intersect(b); !got.Equal(NewIntervalSet(Ival(3, 5), Ival(10, 12))) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b); !got.Equal(NewIntervalSet(Ival(0, 15))) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Subtract(b); !got.Equal(NewIntervalSet(Ival(0, 3), Ival(12, 15))) {
		t.Errorf("Subtract = %v", got)
	}
	if !a.ContainsSet(NewIntervalSet(Ival(1, 2), Ival(11, 12))) {
		t.Error("ContainsSet should hold")
	}
	if a.ContainsSet(b) {
		t.Error("ContainsSet should fail for overlapping set")
	}
}

func TestNormalizeMergesAdjacent(t *testing.T) {
	s := NewIntervalSet(Ival(0, 2), Ival(2, 4), Ival(6, 7), Ival(5, 6))
	want := NewIntervalSet(Ival(0, 4), Ival(5, 7))
	if !s.Equal(want) {
		t.Errorf("Normalize = %v, want %v", s, want)
	}
	if NewIntervalSet(Ival(3, 3)).Len() != 0 {
		t.Error("empty interval should vanish")
	}
}

func TestIntervalSetContainsAndAt(t *testing.T) {
	s := NewIntervalSet(Ival(2, 4), Ival(10, 13))
	wantPoints := []int64{2, 3, 10, 11, 12}
	if s.Len() != int64(len(wantPoints)) {
		t.Fatalf("Len = %d", s.Len())
	}
	for i, p := range wantPoints {
		if s.At(int64(i)) != p {
			t.Errorf("At(%d) = %d, want %d", i, s.At(int64(i)), p)
		}
		if !s.Contains(p) {
			t.Errorf("Contains(%d) = false", p)
		}
	}
	for _, p := range []int64{1, 4, 9, 13, 100} {
		if s.Contains(p) {
			t.Errorf("Contains(%d) = true", p)
		}
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewIntervalSet(Ival(0, 2)).At(2)
}

func TestIntervalSubtract(t *testing.T) {
	cases := []struct {
		a, b Interval
		want []Interval
	}{
		{Ival(0, 10), Ival(3, 5), []Interval{Ival(0, 3), Ival(5, 10)}},
		{Ival(0, 10), Ival(0, 10), nil},
		{Ival(0, 10), Ival(10, 20), []Interval{Ival(0, 10)}},
		{Ival(0, 10), Ival(-5, 5), []Interval{Ival(5, 10)}},
		{Ival(0, 10), Ival(5, 15), []Interval{Ival(0, 5)}},
	}
	for _, c := range cases {
		got := c.a.Subtract(c.b)
		if len(got) != len(c.want) {
			t.Errorf("%v - %v = %v, want %v", c.a, c.b, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%v - %v = %v, want %v", c.a, c.b, got, c.want)
			}
		}
	}
}

// randSet builds a small random canonical set for property tests.
func randSet(r *rand.Rand) IntervalSet {
	n := r.Intn(4)
	var ivs []Interval
	for i := 0; i < n; i++ {
		lo := int64(r.Intn(40))
		ivs = append(ivs, Ival(lo, lo+int64(r.Intn(10))))
	}
	return NewIntervalSet(ivs...)
}

// TestQuickSetAlgebra checks, pointwise over a small universe, that the set
// operations agree with boolean logic.
func TestQuickSetAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randSet(r), randSet(r)
		union := a.Union(b)
		inter := a.Intersect(b)
		diff := a.Subtract(b)
		for p := int64(-2); p < 55; p++ {
			ina, inb := a.Contains(p), b.Contains(p)
			if union.Contains(p) != (ina || inb) {
				return false
			}
			if inter.Contains(p) != (ina && inb) {
				return false
			}
			if diff.Contains(p) != (ina && !inb) {
				return false
			}
		}
		// Cardinality identity: |A| + |B| = |A∪B| + |A∩B|.
		return a.Len()+b.Len() == union.Len()+inter.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickNormalizeCanonical verifies that normalized sets are sorted,
// non-empty, non-adjacent, and idempotent under Normalize.
func TestQuickNormalizeCanonical(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randSet(r)
		for i, iv := range s {
			if iv.Empty() {
				return false
			}
			if i > 0 && s[i-1].Hi >= iv.Lo {
				return false // overlap or adjacency survived
			}
		}
		return s.Normalize().Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickAtEnumerates verifies At(i) enumerates exactly the member points
// in order.
func TestQuickAtEnumerates(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randSet(r)
		var pts []int64
		for p := int64(0); p < 60; p++ {
			if s.Contains(p) {
				pts = append(pts, p)
			}
		}
		if int64(len(pts)) != s.Len() {
			return false
		}
		for i, p := range pts {
			if s.At(int64(i)) != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewIntervalSet(Ival(0, 5))
	c := s.Clone()
	c[0].Hi = 100
	if s[0].Hi != 5 {
		t.Error("Clone shares storage")
	}
	if IntervalSet(nil).Clone() != nil {
		t.Error("nil Clone should be nil")
	}
}

func TestIntervalSetString(t *testing.T) {
	if got := (IntervalSet{}).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
	if got := NewIntervalSet(Ival(1, 2), Ival(5, 9)).String(); got != "{[1,2),[5,9)}" {
		t.Errorf("String = %q", got)
	}
}
