package value

import (
	"testing"
)

// The summary-direct aggregate fast path answers COUNT/SUM/MIN/MAX from
// IntervalSet arithmetic alone, so the cardinality primitives here are
// load-bearing for query correctness, not just for planning. The fuzz
// targets decode a byte string into two small interval sets, normalize
// them, and hold IntersectLen / IntersectInto / PrefixInto to brute-force
// references over the enumerated points.

// decodeSets turns fuzz bytes into two interval sets over a small domain.
// Each pair of bytes becomes one interval [lo, lo+w) with lo in [-32, 31]
// and w in [0, 15] (empty intervals included, so Normalize is exercised);
// the first half of the pairs feeds set a, the second half set b.
func decodeSets(data []byte) (a, b IntervalSet) {
	var ivs []Interval
	for i := 0; i+1 < len(data); i += 2 {
		lo := int64(int8(data[i])) % 32
		w := int64(data[i+1] % 16)
		ivs = append(ivs, Interval{Lo: lo, Hi: lo + w})
	}
	half := len(ivs) / 2
	return IntervalSet(ivs[:half]).Normalize(), IntervalSet(ivs[half:]).Normalize()
}

// enumerate lists the points of a canonical set.
func enumerate(s IntervalSet) []int64 {
	var out []int64
	for _, iv := range s {
		for v := iv.Lo; v < iv.Hi; v++ {
			out = append(out, v)
		}
	}
	return out
}

func checkCanonical(t *testing.T, s IntervalSet, what string) {
	t.Helper()
	for i, iv := range s {
		if iv.Empty() {
			t.Fatalf("%s: interval %d %s is empty", what, i, iv)
		}
		if i > 0 && s[i-1].Hi >= iv.Lo {
			t.Fatalf("%s: intervals %d and %d overlap or touch: %s", what, i-1, i, s)
		}
	}
}

func FuzzIntersectLen(f *testing.F) {
	f.Add([]byte{0, 8, 4, 8})
	f.Add([]byte{0, 4, 2, 4, 1, 8, 3, 2})
	f.Add([]byte{255, 15, 0, 0, 10, 3, 250, 9, 5, 5, 7, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b := decodeSets(data)
		checkCanonical(t, a, "a")
		checkCanonical(t, b, "b")

		// Brute-force reference: count shared points by membership.
		inB := make(map[int64]bool)
		for _, v := range enumerate(b) {
			inB[v] = true
		}
		var want int64
		for _, v := range enumerate(a) {
			if inB[v] {
				want++
			}
		}

		if got := a.IntersectLen(b); got != want {
			t.Fatalf("IntersectLen(%s, %s) = %d, want %d", a, b, got, want)
		}
		if got := b.IntersectLen(a); got != want {
			t.Fatalf("IntersectLen(%s, %s) = %d, want %d (asymmetric)", b, a, got, want)
		}
		// IntersectLen must agree with the materializing Intersect and the
		// allocation-free IntersectInto.
		x := a.Intersect(b)
		checkCanonical(t, x, "Intersect")
		if x.Len() != want {
			t.Fatalf("Intersect(%s, %s).Len() = %d, want %d", a, b, x.Len(), want)
		}
		into := a.IntersectInto(make(IntervalSet, 0, 4), b)
		if !into.Equal(x) {
			t.Fatalf("IntersectInto(%s, %s) = %s, want %s", a, b, into, x)
		}
	})
}

func FuzzPrefixInto(f *testing.F) {
	f.Add([]byte{0, 8, 4, 8}, int64(3))
	f.Add([]byte{255, 15, 3, 2, 9, 9, 1, 1}, int64(11))
	f.Fuzz(func(t *testing.T, data []byte, k int64) {
		a, b := decodeSets(data)
		s := a.Union(b) // one richer canonical set
		if k > 1<<16 {
			k %= 1 << 16
		}
		got := s.PrefixInto(make(IntervalSet, 0, 4), k)
		checkCanonical(t, got, "PrefixInto")

		pts := enumerate(s)
		wantN := k
		if wantN < 0 {
			wantN = 0
		}
		if wantN > int64(len(pts)) {
			wantN = int64(len(pts))
		}
		if got.Len() != wantN {
			t.Fatalf("PrefixInto(%s, %d).Len() = %d, want %d", s, k, got.Len(), wantN)
		}
		for i := int64(0); i < wantN; i++ {
			if !got.Contains(pts[i]) {
				t.Fatalf("PrefixInto(%s, %d) = %s: missing point %d", s, k, got, pts[i])
			}
		}
		if !s.ContainsSet(got) {
			t.Fatalf("PrefixInto(%s, %d) = %s is not a subset", s, k, got)
		}
	})
}

// FuzzSetAlgebra cross-checks the set operations the fast path composes
// (intersect, prefix, contains) against point-wise enumeration on one pair.
func FuzzSetAlgebra(f *testing.F) {
	f.Add([]byte{0, 8, 4, 8, 2, 2, 6, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b := decodeSets(data)
		x := a.Intersect(b)
		for v := int64(-40); v < 56; v++ {
			want := a.Contains(v) && b.Contains(v)
			if got := x.Contains(v); got != want {
				t.Fatalf("(%s ∩ %s).Contains(%d) = %v, want %v", a, b, v, got, want)
			}
		}
		if !a.Empty() {
			if a.Min() != a.At(0) {
				t.Fatalf("%s: Min %d != At(0) %d", a, a.Min(), a.At(0))
			}
			if a.Max() != a.At(a.Len()-1) {
				t.Fatalf("%s: Max %d != At(len-1) %d", a, a.Max(), a.At(a.Len()-1))
			}
		}
	})
}
