// Package lp is Hydra's linear-programming substrate. The paper hands its
// per-relation LPs to the Z3 solver; here we implement the solver ourselves
// (stdlib-only environment): a dense two-phase primal simplex with Bland's
// anti-cycling rule in float64, plus an exact math/big.Rat twin used to
// validate the float path in tests. Infeasible annotation sets (possible in
// what-if scenarios) are handled by the relaxed formulation in atoms.go,
// which minimizes the L1 norm of per-constraint deviations.
package lp

import "fmt"

// ConKind is the relation of a constraint row.
type ConKind uint8

// Constraint kinds.
const (
	EQ ConKind = iota
	LE
	GE
)

// String returns the mathematical symbol of the kind.
func (k ConKind) String() string {
	switch k {
	case EQ:
		return "="
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "?"
	}
}

// Term is one coefficient of a constraint or objective.
type Term struct {
	Var  int
	Coef float64
}

// Constraint is Σ Terms (Kind) RHS.
type Constraint struct {
	Terms []Term
	Kind  ConKind
	RHS   float64
	Label string
}

// Problem is a minimization LP over non-negative variables.
type Problem struct {
	NumVars   int
	Objective []Term // minimized; empty means pure feasibility
	Cons      []Constraint
}

// AddConstraint appends a constraint.
func (p *Problem) AddConstraint(c Constraint) { p.Cons = append(p.Cons, c) }

// Validate checks variable indexes and finiteness.
func (p *Problem) Validate() error {
	check := func(ts []Term, where string) error {
		for _, t := range ts {
			if t.Var < 0 || t.Var >= p.NumVars {
				return fmt.Errorf("lp: %s references variable %d of %d", where, t.Var, p.NumVars)
			}
		}
		return nil
	}
	if err := check(p.Objective, "objective"); err != nil {
		return err
	}
	for i, c := range p.Cons {
		if err := check(c.Terms, fmt.Sprintf("constraint %d", i)); err != nil {
			return err
		}
	}
	return nil
}

// Status is the outcome of a solve.
type Status uint8

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return "unknown"
	}
}

// Solution reports a solve result.
type Solution struct {
	Status Status
	X      []float64 // length NumVars; valid when Status == Optimal
	Obj    float64
	Pivots int
}

// Eval returns the left-hand side of constraint c at x.
func (c *Constraint) Eval(x []float64) float64 {
	var s float64
	for _, t := range c.Terms {
		s += t.Coef * x[t.Var]
	}
	return s
}

// Violation returns how far x is from satisfying c (0 when satisfied).
func (c *Constraint) Violation(x []float64) float64 {
	lhs := c.Eval(x)
	switch c.Kind {
	case EQ:
		d := lhs - c.RHS
		if d < 0 {
			return -d
		}
		return d
	case LE:
		if d := lhs - c.RHS; d > 0 {
			return d
		}
	case GE:
		if d := c.RHS - lhs; d > 0 {
			return d
		}
	}
	return 0
}
