package lp

import (
	"fmt"
	"math"
	"sort"
)

// AtomConstraint is one volumetric constraint expressed over partition
// atoms: the rows placed in the listed atoms must total Card (Kind EQ) or
// at least Card (Kind GE). GE rows express inhabitation requirements —
// "this cell must hold at least one tuple because a referencing relation's
// atom materializes its foreign keys from it".
type AtomConstraint struct {
	Atoms []int // ascending atom indexes whose union is the constraint region
	Card  int64
	Kind  ConKind // EQ (default) or GE
	Label string
}

// AtomSystem is the per-relation LP in atom form: one variable per atom,
// one equality per constraint, plus the relation's total row count.
type AtomSystem struct {
	NumAtoms int
	Cons     []AtomConstraint
	// Total is the relation's row count; every atom variable sums to it.
	// A negative Total omits the row-count constraint.
	Total int64
	// Prefer lists atoms whose population is needed downstream (their
	// primary-key ranges feed foreign-key terms of other relations). They
	// receive a tiny negative objective coefficient so the solver keeps
	// them non-empty whenever the constraints allow it.
	Prefer []int
}

// preferWeight is small enough never to trade a unit of constraint
// deviation (weight 1) for any amount of preference.
const preferWeight = 1e-6

// BuildRelaxed encodes the system as an always-feasible LP: each constraint
// i gets deviation variables u_i, v_i with
//
//	Σ_{a∈C_i} x_a + u_i − v_i = card_i
//
// and the objective charges deviations: both directions for EQ rows, only
// the deficit (u) for GE rows. When the original system is feasible the
// optimum is 0 and x satisfies every constraint exactly — matching Hydra's
// behaviour of satisfying most constraints with no error and degrading
// gracefully on contradictory (what-if) annotation sets.
func (s *AtomSystem) BuildRelaxed() *Problem {
	rows := s.rows()
	p := &Problem{NumVars: s.NumAtoms + 2*len(rows)}
	for i, r := range rows {
		u := s.NumAtoms + 2*i
		v := u + 1
		terms := make([]Term, 0, len(r.Atoms)+2)
		for _, a := range r.Atoms {
			terms = append(terms, Term{Var: a, Coef: 1})
		}
		terms = append(terms, Term{Var: u, Coef: 1}, Term{Var: v, Coef: -1})
		p.AddConstraint(Constraint{Terms: terms, Kind: EQ, RHS: float64(r.Card), Label: r.Label})
		p.Objective = append(p.Objective, Term{Var: u, Coef: 1})
		if r.Kind != GE {
			p.Objective = append(p.Objective, Term{Var: v, Coef: 1})
		}
	}
	// Preference terms are only safe when the total-row constraint bounds
	// every atom; without it a preferred atom outside all constraint
	// regions would make the LP unbounded.
	if s.Total >= 0 {
		for _, a := range s.Prefer {
			p.Objective = append(p.Objective, Term{Var: a, Coef: -preferWeight})
		}
	}
	return p
}

// rows returns the constraint rows including the synthetic total-row
// constraint when Total >= 0.
func (s *AtomSystem) rows() []AtomConstraint {
	rows := append([]AtomConstraint(nil), s.Cons...)
	if s.Total >= 0 {
		all := make([]int, s.NumAtoms)
		for i := range all {
			all[i] = i
		}
		rows = append(rows, AtomConstraint{Atoms: all, Card: s.Total, Label: "|R|"})
	}
	return rows
}

// SolveResult is the integerized outcome of solving an AtomSystem.
type SolveResult struct {
	// Counts holds the integer row count per atom.
	Counts []int64
	// Residuals holds, per constraint (same order as rows(), i.e. Cons
	// then the total), the signed deviation card − Σ counts after
	// integerization and repair.
	Residuals []int64
	// Labels parallels Residuals.
	Labels []string
	// LPObj is the optimal L1 deviation of the fractional LP (0 when the
	// annotation set is consistent).
	LPObj float64
	// Pivots counts simplex pivots.
	Pivots int
}

// denseCutover is the atom count above which SolveAtoms switches from the
// dense tableau to the revised simplex. The dense tableau materializes
// m×(n+2m) floats; the revised solver needs only the m×m basis inverse.
const denseCutover = 4096

// SolveAtoms solves the relaxed LP, rounds the fractional atom counts to
// integers, and runs a bounded repair pass that shifts rows between atoms
// to cancel residuals introduced by rounding. exact selects the rational
// solver; otherwise large systems use the revised simplex automatically.
func SolveAtoms(s *AtomSystem, exact bool) (*SolveResult, error) {
	if s.NumAtoms == 0 {
		return nil, fmt.Errorf("lp: atom system with no atoms")
	}
	var (
		xs     []float64
		objVal float64
		pivots int
	)
	switch {
	case !exact && s.NumAtoms > denseCutover:
		x, obj, piv, err := solveAtomsRevised(s)
		if err != nil {
			return nil, err
		}
		xs, objVal, pivots = x, obj, piv
	default:
		p := s.BuildRelaxed()
		var (
			sol *Solution
			err error
		)
		if exact {
			sol, err = SolveExact(p)
		} else {
			sol, err = Solve(p)
		}
		if err != nil {
			return nil, err
		}
		if sol.Status != Optimal {
			// The relaxed LP is always feasible and bounded below by
			// 0; any other status is a solver defect.
			return nil, fmt.Errorf("lp: relaxed system reported %s", sol.Status)
		}
		xs, objVal, pivots = sol.X[:s.NumAtoms], sol.Obj, sol.Pivots
	}

	counts := make([]int64, s.NumAtoms)
	for a := 0; a < s.NumAtoms; a++ {
		v := xs[a]
		if v < 0 {
			v = 0
		}
		counts[a] = int64(math.Round(v))
	}
	rows := s.rows()
	res := &SolveResult{Counts: counts, LPObj: objVal, Pivots: pivots}
	repair(rows, counts)
	for _, r := range rows {
		var sum int64
		for _, a := range r.Atoms {
			sum += counts[a]
		}
		resid := r.Card - sum
		if r.Kind == GE && resid < 0 {
			resid = 0 // surplus satisfies a lower bound
		}
		res.Residuals = append(res.Residuals, resid)
		res.Labels = append(res.Labels, r.Label)
	}
	return res, nil
}

// repair greedily cancels integer residuals. For each unsatisfied
// constraint it adjusts the member atoms with the lowest "degree" (number
// of other constraints they participate in) first, so corrections disturb
// as few other constraints as possible. A few passes suffice in practice;
// remaining residuals are reported, mirroring the paper's small constant
// volumetric discrepancies.
func repair(rows []AtomConstraint, counts []int64) {
	degree := make(map[int]int)
	for _, r := range rows {
		for _, a := range r.Atoms {
			degree[a]++
		}
	}
	const passes = 8
	for pass := 0; pass < passes; pass++ {
		changed := false
		for _, r := range rows {
			var sum int64
			for _, a := range r.Atoms {
				sum += counts[a]
			}
			resid := r.Card - sum
			if r.Kind == GE && resid < 0 {
				resid = 0 // lower bound already met
			}
			if resid == 0 {
				continue
			}
			members := append([]int(nil), r.Atoms...)
			sort.Slice(members, func(i, j int) bool {
				if degree[members[i]] != degree[members[j]] {
					return degree[members[i]] < degree[members[j]]
				}
				return members[i] < members[j]
			})
			for _, a := range members {
				if resid == 0 {
					break
				}
				if resid > 0 {
					counts[a] += resid
					resid = 0
					changed = true
					continue
				}
				take := -resid
				if take > counts[a] {
					take = counts[a]
				}
				if take > 0 {
					counts[a] -= take
					resid += take
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}
