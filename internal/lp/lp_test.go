package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveSimpleOptimal(t *testing.T) {
	// min x+y s.t. x+y >= 2, x <= 5, x,y >= 0 -> optimum 2.
	p := &Problem{NumVars: 2}
	p.Objective = []Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}
	p.AddConstraint(Constraint{Terms: []Term{{0, 1}, {1, 1}}, Kind: GE, RHS: 2})
	p.AddConstraint(Constraint{Terms: []Term{{0, 1}}, Kind: LE, RHS: 5})
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Obj-2) > 1e-6 {
		t.Fatalf("got %v obj=%v", sol.Status, sol.Obj)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x >= 3 and x <= 1.
	p := &Problem{NumVars: 1}
	p.AddConstraint(Constraint{Terms: []Term{{0, 1}}, Kind: GE, RHS: 3})
	p.AddConstraint(Constraint{Terms: []Term{{0, 1}}, Kind: LE, RHS: 1})
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("got %v", sol.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// min -x s.t. x >= 1.
	p := &Problem{NumVars: 1, Objective: []Term{{Var: 0, Coef: -1}}}
	p.AddConstraint(Constraint{Terms: []Term{{0, 1}}, Kind: GE, RHS: 1})
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("got %v", sol.Status)
	}
}

func TestSolveEqualitySystem(t *testing.T) {
	// x+y = 10, x-y... use x + y = 10, x = 4 -> y = 6.
	p := &Problem{NumVars: 2}
	p.AddConstraint(Constraint{Terms: []Term{{0, 1}, {1, 1}}, Kind: EQ, RHS: 10})
	p.AddConstraint(Constraint{Terms: []Term{{0, 1}}, Kind: EQ, RHS: 4})
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.X[0]-4) > 1e-6 || math.Abs(sol.X[1]-6) > 1e-6 {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestValidateErrors(t *testing.T) {
	p := &Problem{NumVars: 1}
	p.AddConstraint(Constraint{Terms: []Term{{Var: 3, Coef: 1}}, Kind: EQ, RHS: 1})
	if _, err := Solve(p); err == nil {
		t.Error("bad variable index accepted")
	}
	p2 := &Problem{NumVars: 1, Objective: []Term{{Var: 9, Coef: 1}}}
	if _, err := Solve(p2); err == nil {
		t.Error("bad objective index accepted")
	}
}

func TestConstraintEvalViolation(t *testing.T) {
	c := Constraint{Terms: []Term{{0, 2}, {1, -1}}, Kind: EQ, RHS: 3}
	x := []float64{2, 1}
	if c.Eval(x) != 3 || c.Violation(x) != 0 {
		t.Error("Eval/Violation wrong on satisfied EQ")
	}
	c.RHS = 5
	if c.Violation(x) != 2 {
		t.Error("EQ violation wrong")
	}
	le := Constraint{Terms: []Term{{0, 1}}, Kind: LE, RHS: 1}
	if le.Violation(x) != 1 {
		t.Error("LE violation wrong")
	}
	ge := Constraint{Terms: []Term{{0, 1}}, Kind: GE, RHS: 4}
	if ge.Violation(x) != 2 {
		t.Error("GE violation wrong")
	}
}

// randSystem generates a random feasible atom system: pick hidden counts,
// derive constraint cards from them (so the EQ rows are consistent).
func randSystem(r *rand.Rand) (*AtomSystem, []int64) {
	nAtoms := 2 + r.Intn(12)
	hidden := make([]int64, nAtoms)
	var total int64
	for i := range hidden {
		hidden[i] = int64(r.Intn(50))
		total += hidden[i]
	}
	s := &AtomSystem{NumAtoms: nAtoms, Total: total}
	nCons := 1 + r.Intn(6)
	for c := 0; c < nCons; c++ {
		var atoms []int
		var card int64
		for a := 0; a < nAtoms; a++ {
			if r.Intn(2) == 0 {
				atoms = append(atoms, a)
				card += hidden[a]
			}
		}
		if len(atoms) == 0 {
			atoms = []int{0}
			card = hidden[0]
		}
		s.Cons = append(s.Cons, AtomConstraint{Atoms: atoms, Card: card})
	}
	return s, hidden
}

// TestQuickSolveAtomsConsistent: consistent systems solve with a zero LP
// optimum (the fractional solution satisfies everything), non-negative
// counts, and near-zero integer residuals — integerizing a fractional
// vertex may shift a handful of rows, the paper's "virtually no error".
func TestQuickSolveAtomsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, _ := randSystem(r)
		res, err := SolveAtoms(s, false)
		if err != nil {
			return false
		}
		if res.LPObj > 1e-6 {
			return false // the fractional LP must be satisfied exactly
		}
		for _, c := range res.Counts {
			if c < 0 {
				return false
			}
		}
		var dev int64
		for _, resid := range res.Residuals {
			if resid < 0 {
				resid = -resid
			}
			dev += resid
		}
		return dev <= int64(2*len(s.Cons))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickExactAgreesWithFloat: the exact-rational solver reaches the
// same optimum as the float solver on consistent systems (both zero).
func TestQuickExactAgreesWithFloat(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, _ := randSystem(r)
		a, err := SolveAtoms(s, false)
		if err != nil {
			return false
		}
		b, err := SolveAtoms(s, true)
		if err != nil {
			return false
		}
		return a.LPObj <= 1e-6 && b.LPObj <= 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickRevisedAgreesWithDense: force the revised path (by constructing
// a system above the cutover) and check it satisfies all constraints.
func TestRevisedLargeSystem(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := denseCutover + 500
	hidden := make([]int64, n)
	var total int64
	for i := range hidden {
		hidden[i] = int64(r.Intn(5))
		total += hidden[i]
	}
	s := &AtomSystem{NumAtoms: n, Total: total}
	for c := 0; c < 20; c++ {
		var atoms []int
		var card int64
		for a := 0; a < n; a++ {
			if r.Intn(3) == 0 {
				atoms = append(atoms, a)
				card += hidden[a]
			}
		}
		s.Cons = append(s.Cons, AtomConstraint{Atoms: atoms, Card: card})
	}
	res, err := SolveAtoms(s, false)
	if err != nil {
		t.Fatal(err)
	}
	// Rounding a fractional vertex of a dense overlapping system can leave
	// tiny integer residuals (the paper's "virtually no error"); they must
	// stay negligible relative to the constraint cardinalities.
	var dev, cards int64
	for i, resid := range res.Residuals {
		if resid < 0 {
			resid = -resid
		}
		dev += resid
		_ = i
	}
	for _, c := range s.Cons {
		cards += c.Card
	}
	if cards > 0 && float64(dev)/float64(cards) > 0.001 {
		t.Errorf("total deviation %d of %d (%.4f%%), want <= 0.1%%", dev, cards, 100*float64(dev)/float64(cards))
	}
}

func TestSolveAtomsInfeasibleRelaxes(t *testing.T) {
	// Two contradictory cards over the same atom set.
	s := &AtomSystem{NumAtoms: 2, Total: 10}
	s.Cons = append(s.Cons,
		AtomConstraint{Atoms: []int{0}, Card: 3, Label: "a"},
		AtomConstraint{Atoms: []int{0}, Card: 7, Label: "b"},
	)
	res, err := SolveAtoms(s, false)
	if err != nil {
		t.Fatal(err)
	}
	// The deviations must total at least |7-3| = 4 across the two rows.
	var dev int64
	for _, r := range res.Residuals {
		if r < 0 {
			dev -= r
		} else {
			dev += r
		}
	}
	if dev < 4 {
		t.Errorf("total deviation %d, want >= 4", dev)
	}
}

func TestSolveAtomsGELowerBound(t *testing.T) {
	s := &AtomSystem{NumAtoms: 3, Total: 100}
	s.Cons = append(s.Cons,
		AtomConstraint{Atoms: []int{0, 1}, Card: 30, Label: "eq"},
		AtomConstraint{Atoms: []int{1}, Card: 1, Kind: GE, Label: "ge"},
	)
	res, err := SolveAtoms(s, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[1] < 1 {
		t.Errorf("GE row unsatisfied: counts=%v", res.Counts)
	}
	if res.Counts[0]+res.Counts[1] != 30 {
		t.Errorf("EQ row broken: counts=%v", res.Counts)
	}
	// Surplus on a GE row is not a residual.
	for i, r := range res.Residuals {
		if r != 0 {
			t.Errorf("residual %s = %d", res.Labels[i], r)
		}
	}
}

func TestSolveAtomsEmpty(t *testing.T) {
	if _, err := SolveAtoms(&AtomSystem{}, false); err == nil {
		t.Error("zero-atom system accepted")
	}
}

func TestStatusAndKindStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("Status strings wrong")
	}
	if EQ.String() != "=" || LE.String() != "<=" || GE.String() != ">=" {
		t.Error("ConKind strings wrong")
	}
}
