package lp

import (
	"fmt"
	"math"
)

const (
	// eps is the feasibility/pivot tolerance of the float64 solver.
	eps = 1e-9
	// maxPivots guards against pathological cycling (Bland's rule makes
	// this unreachable in theory; the guard converts a bug into an error).
	maxPivots = 2_000_000
)

// Solve runs the two-phase primal simplex on the problem.
func Solve(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t, err := newTableau(p)
	if err != nil {
		return nil, err
	}
	// Phase 1: minimize the sum of artificials.
	if err := t.run(t.phase1Cost(), true); err != nil {
		return nil, err
	}
	if t.objValue() > 1e-6 {
		return &Solution{Status: Infeasible, Pivots: t.pivots}, nil
	}
	t.driveOutArtificials()
	// Phase 2: original objective, artificials banned from entering.
	if err := t.run(t.phase2Cost(p), false); err != nil {
		return nil, err
	}
	if t.unbounded {
		return &Solution{Status: Unbounded, Pivots: t.pivots}, nil
	}
	x := make([]float64, p.NumVars)
	for i, bv := range t.basis {
		if bv < p.NumVars {
			x[bv] = t.rhs(i)
		}
	}
	// Clamp tiny negatives from roundoff.
	for i := range x {
		if x[i] < 0 && x[i] > -1e-6 {
			x[i] = 0
		}
	}
	var obj float64
	for _, term := range p.Objective {
		obj += term.Coef * x[term.Var]
	}
	return &Solution{Status: Optimal, X: x, Obj: obj, Pivots: t.pivots}, nil
}

// tableau is a dense simplex tableau in standard form
// (equalities, b >= 0, artificial basis).
type tableau struct {
	m, n      int // constraint rows, structural+slack columns
	nTotal    int // n + artificials
	rows      [][]float64
	basis     []int
	cost      []float64 // current phase reduced-cost row, length nTotal+1
	artStart  int
	pivots    int
	unbounded bool
}

// newTableau converts the problem to standard form: slack for LE, surplus
// for GE, artificials giving an initial basis; rows with negative RHS are
// negated first.
func newTableau(p *Problem) (*tableau, error) {
	m := len(p.Cons)
	// Count slack/surplus columns.
	extra := 0
	for _, c := range p.Cons {
		if c.Kind != EQ {
			extra++
		}
	}
	n := p.NumVars + extra
	t := &tableau{m: m, n: n, nTotal: n + m, artStart: n}
	t.rows = make([][]float64, m)
	t.basis = make([]int, m)

	slack := p.NumVars
	for i, c := range p.Cons {
		row := make([]float64, t.nTotal+1)
		for _, term := range c.Terms {
			row[term.Var] += term.Coef
		}
		rhs := c.RHS
		switch c.Kind {
		case LE:
			row[slack] = 1
			slack++
		case GE:
			row[slack] = -1
			slack++
		}
		if rhs < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			rhs = -rhs
		}
		row[t.nTotal] = rhs
		row[t.artStart+i] = 1
		t.rows[i] = row
		t.basis[i] = t.artStart + i
		if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
			return nil, fmt.Errorf("lp: constraint %d has non-finite RHS", i)
		}
	}
	return t, nil
}

func (t *tableau) rhs(i int) float64 { return t.rows[i][t.nTotal] }

// phase1Cost returns the reduced-cost row for minimizing Σ artificials
// given the all-artificial basis.
func (t *tableau) phase1Cost() []float64 {
	cost := make([]float64, t.nTotal+1)
	for j := t.artStart; j < t.nTotal; j++ {
		cost[j] = 1
	}
	// Reduce against the (artificial) basis: subtract each row.
	for i := 0; i < t.m; i++ {
		for j := 0; j <= t.nTotal; j++ {
			cost[j] -= t.rows[i][j]
		}
	}
	return cost
}

// phase2Cost returns the reduced-cost row for the original objective under
// the current basis.
func (t *tableau) phase2Cost(p *Problem) []float64 {
	c := make([]float64, t.nTotal+1)
	for _, term := range p.Objective {
		c[term.Var] += term.Coef
	}
	for i, bv := range t.basis {
		cb := 0.0
		for _, term := range p.Objective {
			if term.Var == bv {
				cb += term.Coef
			}
		}
		if cb == 0 {
			continue
		}
		for j := 0; j <= t.nTotal; j++ {
			c[j] -= cb * t.rows[i][j]
		}
	}
	return c
}

// objValue returns the current phase objective value (negated RHS of the
// cost row).
func (t *tableau) objValue() float64 { return -t.cost[t.nTotal] }

// stallLimit is the number of consecutive non-improving (degenerate) pivots
// after which pricing falls back from Dantzig to Bland's rule, whose
// anti-cycling guarantee ensures termination.
const stallLimit = 64

// run iterates simplex pivots until optimal or unbounded. Pricing uses
// Dantzig's rule (most negative reduced cost) for speed and switches to
// Bland's rule while the objective stalls. allowArtificials permits
// artificial columns to enter (phase 1 only).
func (t *tableau) run(cost []float64, allowArtificials bool) error {
	t.cost = cost
	t.unbounded = false
	stalled := 0
	for {
		limit := t.nTotal
		if !allowArtificials {
			limit = t.artStart
		}
		enter := -1
		if stalled < stallLimit {
			best := -eps
			for j := 0; j < limit; j++ {
				if t.cost[j] < best {
					best = t.cost[j]
					enter = j
				}
			}
		} else {
			for j := 0; j < limit; j++ {
				if t.cost[j] < -eps {
					enter = j // Bland: first improving column
					break
				}
			}
		}
		if enter < 0 {
			return nil // optimal for this phase
		}
		leave := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			a := t.rows[i][enter]
			if a > eps {
				r := t.rhs(i) / a
				if r < best-eps || (math.Abs(r-best) <= eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					best = r
					leave = i
				}
			}
		}
		if leave < 0 {
			t.unbounded = true
			return nil
		}
		before := t.objValue()
		t.pivot(leave, enter)
		if t.objValue() < before-eps {
			stalled = 0
		} else {
			stalled++
		}
		if t.pivots > maxPivots {
			return fmt.Errorf("lp: pivot limit exceeded (%d)", maxPivots)
		}
	}
}

// pivot performs a full tableau pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	t.pivots++
	pr := t.rows[row]
	pv := pr[col]
	inv := 1 / pv
	for j := 0; j <= t.nTotal; j++ {
		pr[j] *= inv
	}
	pr[col] = 1 // exact
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.rows[i][col]
		if f == 0 {
			continue
		}
		ri := t.rows[i]
		for j := 0; j <= t.nTotal; j++ {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0
	}
	if f := t.cost[col]; f != 0 {
		for j := 0; j <= t.nTotal; j++ {
			t.cost[j] -= f * pr[j]
		}
		t.cost[col] = 0
	}
	t.basis[row] = col
}

// driveOutArtificials pivots any artificial still basic (at zero level after
// a feasible phase 1) onto a structural column, so phase 2 never re-grows
// them. Rows with no eligible column are redundant and left in place (the
// artificial stays basic at level 0 and is banned from entering).
func (t *tableau) driveOutArtificials() {
	for i, bv := range t.basis {
		if bv < t.artStart {
			continue
		}
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.rows[i][j]) > eps {
				t.pivot(i, j)
				break
			}
		}
	}
}
