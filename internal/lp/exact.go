package lp

import (
	"fmt"
	"math/big"
)

// SolveExact runs the same two-phase simplex in exact rational arithmetic.
// It is slower than Solve but immune to floating-point drift; tests use it
// as the ground truth for the float64 path, and callers can select it for
// small, numerically delicate systems.
func SolveExact(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t, err := newRatTableau(p)
	if err != nil {
		return nil, err
	}
	if err := t.run(t.phase1Cost(), true); err != nil {
		return nil, err
	}
	if t.objValue().Sign() > 0 {
		return &Solution{Status: Infeasible, Pivots: t.pivots}, nil
	}
	t.driveOutArtificials()
	if err := t.run(t.phase2Cost(p), false); err != nil {
		return nil, err
	}
	if t.unbounded {
		return &Solution{Status: Unbounded, Pivots: t.pivots}, nil
	}
	x := make([]float64, p.NumVars)
	for i, bv := range t.basis {
		if bv < p.NumVars {
			f, _ := t.rhs(i).Float64()
			x[bv] = f
		}
	}
	var obj float64
	for _, term := range p.Objective {
		obj += term.Coef * x[term.Var]
	}
	return &Solution{Status: Optimal, X: x, Obj: obj, Pivots: t.pivots}, nil
}

type ratTableau struct {
	m, n      int
	nTotal    int
	rows      [][]*big.Rat
	basis     []int
	cost      []*big.Rat
	artStart  int
	pivots    int
	unbounded bool
}

func ratOf(f float64) (*big.Rat, error) {
	r := new(big.Rat)
	if r.SetFloat64(f) == nil {
		return nil, fmt.Errorf("lp: non-finite coefficient %v", f)
	}
	return r, nil
}

func newRatTableau(p *Problem) (*ratTableau, error) {
	m := len(p.Cons)
	extra := 0
	for _, c := range p.Cons {
		if c.Kind != EQ {
			extra++
		}
	}
	n := p.NumVars + extra
	t := &ratTableau{m: m, n: n, nTotal: n + m, artStart: n}
	t.rows = make([][]*big.Rat, m)
	t.basis = make([]int, m)

	slack := p.NumVars
	for i, c := range p.Cons {
		row := make([]*big.Rat, t.nTotal+1)
		for j := range row {
			row[j] = new(big.Rat)
		}
		for _, term := range c.Terms {
			coef, err := ratOf(term.Coef)
			if err != nil {
				return nil, err
			}
			row[term.Var].Add(row[term.Var], coef)
		}
		rhs, err := ratOf(c.RHS)
		if err != nil {
			return nil, err
		}
		switch c.Kind {
		case LE:
			row[slack].SetInt64(1)
			slack++
		case GE:
			row[slack].SetInt64(-1)
			slack++
		}
		if rhs.Sign() < 0 {
			for j := range row {
				row[j].Neg(row[j])
			}
			rhs.Neg(rhs)
		}
		row[t.nTotal].Set(rhs)
		row[t.artStart+i].SetInt64(1)
		t.rows[i] = row
		t.basis[i] = t.artStart + i
	}
	return t, nil
}

func (t *ratTableau) rhs(i int) *big.Rat { return t.rows[i][t.nTotal] }

func (t *ratTableau) phase1Cost() []*big.Rat {
	cost := make([]*big.Rat, t.nTotal+1)
	for j := range cost {
		cost[j] = new(big.Rat)
	}
	for j := t.artStart; j < t.nTotal; j++ {
		cost[j].SetInt64(1)
	}
	for i := 0; i < t.m; i++ {
		for j := 0; j <= t.nTotal; j++ {
			cost[j].Sub(cost[j], t.rows[i][j])
		}
	}
	return cost
}

func (t *ratTableau) phase2Cost(p *Problem) []*big.Rat {
	obj := make([]*big.Rat, t.nTotal)
	for j := range obj {
		obj[j] = new(big.Rat)
	}
	for _, term := range p.Objective {
		coef, _ := ratOf(term.Coef)
		obj[term.Var].Add(obj[term.Var], coef)
	}
	cost := make([]*big.Rat, t.nTotal+1)
	for j := range cost {
		cost[j] = new(big.Rat)
	}
	for j := 0; j < t.nTotal; j++ {
		cost[j].Set(obj[j])
	}
	tmp := new(big.Rat)
	for i, bv := range t.basis {
		cb := obj[bv]
		if cb.Sign() == 0 {
			continue
		}
		for j := 0; j <= t.nTotal; j++ {
			cost[j].Sub(cost[j], tmp.Mul(cb, t.rows[i][j]))
		}
	}
	return cost
}

func (t *ratTableau) objValue() *big.Rat {
	return new(big.Rat).Neg(t.cost[t.nTotal])
}

func (t *ratTableau) run(cost []*big.Rat, allowArtificials bool) error {
	t.cost = cost
	t.unbounded = false
	ratio := new(big.Rat)
	for {
		enter := -1
		limit := t.nTotal
		if !allowArtificials {
			limit = t.artStart
		}
		for j := 0; j < limit; j++ {
			if t.cost[j].Sign() < 0 {
				enter = j
				break
			}
		}
		if enter < 0 {
			return nil
		}
		leave := -1
		var best *big.Rat
		for i := 0; i < t.m; i++ {
			a := t.rows[i][enter]
			if a.Sign() > 0 {
				ratio.Quo(t.rhs(i), a)
				switch {
				case best == nil || ratio.Cmp(best) < 0:
					best = new(big.Rat).Set(ratio)
					leave = i
				case ratio.Cmp(best) == 0 && t.basis[i] < t.basis[leave]:
					leave = i
				}
			}
		}
		if leave < 0 {
			t.unbounded = true
			return nil
		}
		t.pivot(leave, enter)
		if t.pivots > maxPivots {
			return fmt.Errorf("lp: exact pivot limit exceeded (%d)", maxPivots)
		}
	}
}

func (t *ratTableau) pivot(row, col int) {
	t.pivots++
	pr := t.rows[row]
	inv := new(big.Rat).Inv(pr[col])
	for j := 0; j <= t.nTotal; j++ {
		pr[j].Mul(pr[j], inv)
	}
	tmp := new(big.Rat)
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := new(big.Rat).Set(t.rows[i][col])
		if f.Sign() == 0 {
			continue
		}
		ri := t.rows[i]
		for j := 0; j <= t.nTotal; j++ {
			ri[j].Sub(ri[j], tmp.Mul(f, pr[j]))
		}
	}
	if t.cost[col].Sign() != 0 {
		f := new(big.Rat).Set(t.cost[col])
		for j := 0; j <= t.nTotal; j++ {
			t.cost[j].Sub(t.cost[j], tmp.Mul(f, pr[j]))
		}
	}
	t.basis[row] = col
}

func (t *ratTableau) driveOutArtificials() {
	for i, bv := range t.basis {
		if bv < t.artStart {
			continue
		}
		for j := 0; j < t.artStart; j++ {
			if t.rows[i][j].Sign() != 0 {
				t.pivot(i, j)
				break
			}
		}
	}
}
