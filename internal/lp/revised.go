package lp

import (
	"fmt"
	"math"
)

// solveAtomsRevised solves the relaxed atom system with a revised simplex
// specialized to its structure: atom columns are sparse 0/1 vectors (the
// constraints the atom belongs to) and every constraint carries a +u/−v
// deviation pair. Because {u_i} forms an identity starting basis with
// x_B = b ≥ 0, no phase-1 is needed, and memory is O(m²) for the basis
// inverse regardless of the (possibly very large) atom count — this is what
// lets Hydra-style fact-table LPs with hundreds of thousands of variables
// solve in seconds within the paper's data-scale-free budget.
func solveAtomsRevised(s *AtomSystem) (x []float64, obj float64, pivots int, err error) {
	rows := s.rows()
	m := len(rows)
	n := s.NumAtoms
	if m == 0 {
		return make([]float64, n), 0, 0, nil
	}

	// Per-atom constraint membership (column supports).
	cols := make([][]int32, n)
	for i, r := range rows {
		for _, a := range r.Atoms {
			cols[a] = append(cols[a], int32(i))
		}
	}
	// Objective: deviations cost 1; preferred atoms get the tiny bonus.
	costAtom := make([]float64, n)
	if s.Total >= 0 {
		for _, a := range s.Prefer {
			costAtom[a] = -preferWeight
		}
	}

	b := make([]float64, m)
	for i, r := range rows {
		b[i] = float64(r.Card)
		if b[i] < 0 {
			return nil, 0, 0, fmt.Errorf("lp: negative cardinality %v in %s", r.Card, r.Label)
		}
	}

	// Variable numbering: [0,n) atoms, n+2i = u_i, n+2i+1 = v_i. Deficit
	// (u) always costs 1; surplus (v) is free on GE rows.
	costOf := func(v int) float64 {
		if v < n {
			return costAtom[v]
		}
		if (v-n)%2 == 1 && rows[(v-n)/2].Kind == GE {
			return 0
		}
		return 1
	}
	// column returns the support and signs of variable v.
	colSign := func(v int) ([]int32, float64) {
		if v < n {
			return cols[v], 1
		}
		i := int32((v - n) / 2)
		if (v-n)%2 == 0 {
			return []int32{i}, 1 // u_i
		}
		return []int32{i}, -1 // v_i
	}

	// Basis: u_i for every row; B = I.
	basis := make([]int, m)
	xB := make([]float64, m)
	binv := make([][]float64, m)
	for i := 0; i < m; i++ {
		basis[i] = n + 2*i
		xB[i] = b[i]
		binv[i] = make([]float64, m)
		binv[i][i] = 1
	}

	y := make([]float64, m)
	d := make([]float64, m)
	const tol = 1e-7
	stalled := 0
	nVars := n + 2*m
	objVal := func() float64 {
		v := 0.0
		for k := 0; k < m; k++ {
			v += costOf(basis[k]) * xB[k]
		}
		return v
	}

	for {
		// y = c_B^T B^{-1}.
		for i := 0; i < m; i++ {
			y[i] = 0
		}
		for k := 0; k < m; k++ {
			cb := costOf(basis[k])
			if cb == 0 {
				continue
			}
			row := binv[k]
			for i := 0; i < m; i++ {
				y[i] += cb * row[i]
			}
		}
		// Pricing.
		enter, bestRC := -1, -tol
		bland := stalled >= stallLimit
		price := func(v int) float64 {
			sup, sign := colSign(v)
			dot := 0.0
			for _, i := range sup {
				dot += y[i]
			}
			return costOf(v) - sign*dot
		}
		for v := 0; v < nVars; v++ {
			rc := price(v)
			if bland {
				if rc < -tol {
					enter = v
					break
				}
				continue
			}
			if rc < bestRC {
				bestRC = rc
				enter = v
			}
		}
		if enter < 0 {
			break // optimal
		}
		// Direction d = B^{-1} A_enter.
		sup, sign := colSign(enter)
		for k := 0; k < m; k++ {
			acc := 0.0
			row := binv[k]
			for _, i := range sup {
				acc += row[i]
			}
			d[k] = sign * acc
		}
		// Ratio test (Bland tie-break on basis index).
		leave := -1
		best := math.Inf(1)
		for k := 0; k < m; k++ {
			if d[k] > tol {
				r := xB[k] / d[k]
				if r < best-tol || (math.Abs(r-best) <= tol && (leave < 0 || basis[k] < basis[leave])) {
					best = r
					leave = k
				}
			}
		}
		if leave < 0 {
			return nil, 0, pivots, fmt.Errorf("lp: relaxed system reported unbounded (solver defect)")
		}
		before := objVal()
		// Pivot: update xB and B^{-1}.
		theta := best
		for k := 0; k < m; k++ {
			xB[k] -= theta * d[k]
			if xB[k] < 0 && xB[k] > -1e-9 {
				xB[k] = 0
			}
		}
		xB[leave] = theta
		piv := d[leave]
		lrow := binv[leave]
		inv := 1 / piv
		for i := 0; i < m; i++ {
			lrow[i] *= inv
		}
		for k := 0; k < m; k++ {
			if k == leave || d[k] == 0 {
				continue
			}
			f := d[k]
			row := binv[k]
			for i := 0; i < m; i++ {
				row[i] -= f * lrow[i]
			}
		}
		basis[leave] = enter
		pivots++
		if objVal() < before-1e-9 {
			stalled = 0
		} else {
			stalled++
		}
		if pivots > maxPivots {
			return nil, 0, pivots, fmt.Errorf("lp: revised pivot limit exceeded (%d)", maxPivots)
		}
	}

	x = make([]float64, n)
	for k := 0; k < m; k++ {
		if basis[k] < n {
			v := xB[k]
			if v < 0 {
				v = 0
			}
			x[basis[k]] = v
		}
	}
	return x, objVal(), pivots, nil
}
