package summary

import (
	"bytes"
	"testing"

	"repro/internal/aqp"
	"repro/internal/engine"
	"repro/internal/preprocess"
	"repro/internal/sqlkit"
	"repro/internal/toy"
	"repro/internal/value"
)

func buildToy(t *testing.T) (*engine.Database, *Database, *BuildReport) {
	t.Helper()
	db, err := toy.Database(11)
	if err != nil {
		t.Fatal(err)
	}
	var aqps []*aqp.AQP
	for _, sql := range toy.Workload() {
		q, err := sqlkit.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := engine.BuildPlan(db.Schema, q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.Execute(db, plan, engine.ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		aqps = append(aqps, &aqp.AQP{SQL: sql, Plan: aqp.FromExec(res.Root)})
	}
	w, err := preprocess.Extract(db.Schema, aqps)
	if err != nil {
		t.Fatal(err)
	}
	sum, rep, err := Build(db.Schema, w, DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	return db, sum, rep
}

func TestBuildToyExact(t *testing.T) {
	db, sum, rep := buildToy(t)
	if err := sum.Validate(); err != nil {
		t.Fatalf("summary invalid: %v", err)
	}
	for _, rr := range rep.Relations {
		if rr.SumAbsResidual != 0 {
			t.Errorf("%s residuals: %v", rr.Table, rr.Residuals)
		}
	}
	for name, rel := range sum.Relations {
		tbl := db.Schema.Table(name)
		if rel.Total != tbl.RowCount {
			t.Errorf("%s total = %d, want %d", name, rel.Total, tbl.RowCount)
		}
		if rel.ClampedRows != 0 {
			t.Errorf("%s clamped %d rows", name, rel.ClampedRows)
		}
	}
}

func TestSummaryRowsSumToTotal(t *testing.T) {
	_, sum, _ := buildToy(t)
	for name, rel := range sum.Relations {
		var n int64
		for _, row := range rel.Rows {
			n += row.Count
		}
		if n != rel.Total {
			t.Errorf("%s rows sum %d != total %d", name, n, rel.Total)
		}
		// The alignment index covers [0, Total) exactly once.
		var pk int64
		for _, atom := range rel.Atoms {
			for _, iv := range atom.PK {
				if iv.Lo != pk {
					t.Errorf("%s alignment gap at %d", name, pk)
				}
				pk = iv.Hi
			}
		}
		if pk != rel.Total {
			t.Errorf("%s alignment covers %d of %d", name, pk, rel.Total)
		}
	}
}

func TestFKSpecsWithinReferencedRange(t *testing.T) {
	_, sum, _ := buildToy(t)
	rel := sum.Relations["r"]
	tbl := sum.Schema.Table("r")
	for _, row := range rel.Rows {
		for _, sp := range row.Specs {
			col := tbl.Columns[sp.Col]
			if col.Ref == nil {
				continue
			}
			refTotal := sum.Relations[col.Ref.Table].Total
			set := sp.Set
			if sp.Fixed != nil {
				set = value.NewIntervalSet(value.Point(*sp.Fixed))
			}
			for _, iv := range set {
				if iv.Lo < 0 || iv.Hi > refTotal {
					t.Errorf("fk spec %v exceeds [0,%d)", set, refTotal)
				}
			}
		}
	}
}

func TestGobJSONRoundTrip(t *testing.T) {
	_, sum, _ := buildToy(t)
	var jbuf bytes.Buffer
	if err := sum.EncodeJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(&jbuf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("JSON round trip invalid: %v", err)
	}
	if back.Relations["r"].Total != sum.Relations["r"].Total {
		t.Error("JSON round trip lost totals")
	}

	var gbuf bytes.Buffer
	if err := sum.EncodeGob(&gbuf); err != nil {
		t.Fatal(err)
	}
	gback, err := DecodeGob(&gbuf)
	if err != nil {
		t.Fatal(err)
	}
	if gback.Relations["s"].Total != sum.Relations["s"].Total {
		t.Error("gob round trip lost totals")
	}
	n, err := sum.Size()
	if err != nil || n <= 0 {
		t.Errorf("Size = %d, %v", n, err)
	}
	if n > 1<<20 {
		t.Errorf("toy summary is %d bytes — not minuscule", n)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	_, sum, _ := buildToy(t)
	sum.Relations["r"].Rows[0].Count = -1
	if err := sum.Validate(); err == nil {
		t.Error("negative count accepted")
	}
	_, sum, _ = buildToy(t)
	sum.Relations["r"].Total++
	if err := sum.Validate(); err == nil {
		t.Error("total mismatch accepted")
	}
	_, sum, _ = buildToy(t)
	sum.Relations["ghost"] = &Relation{Table: "ghost"}
	if err := sum.Validate(); err == nil {
		t.Error("unknown relation accepted")
	}
}

func TestTotalOverride(t *testing.T) {
	db, err := toy.Database(11)
	if err != nil {
		t.Fatal(err)
	}
	w := preprocess.NewWorkload()
	opts := DefaultBuildOptions()
	opts.TotalOverride = map[string]int64{"r": 123}
	sum, _, err := Build(db.Schema, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Relations["r"].Total != 123 {
		t.Errorf("override total = %d", sum.Relations["r"].Total)
	}
}

func TestForceTotal(t *testing.T) {
	counts := []int64{5, 10, 2}
	forceTotal(counts, 20)
	if counts[0]+counts[1]+counts[2] != 20 {
		t.Errorf("forceTotal add: %v", counts)
	}
	forceTotal(counts, 4)
	if counts[0]+counts[1]+counts[2] != 4 {
		t.Errorf("forceTotal remove: %v", counts)
	}
	zero := []int64{0, 0}
	forceTotal(zero, 0)
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("forceTotal zero: %v", zero)
	}
}

func TestPKPredicateRejected(t *testing.T) {
	db, err := toy.Database(11)
	if err != nil {
		t.Fatal(err)
	}
	sql := "SELECT COUNT(*) FROM s WHERE s_pk < 10"
	q, _ := sqlkit.Parse(sql)
	plan, err := engine.BuildPlan(db.Schema, q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Execute(db, plan, engine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := preprocess.Extract(db.Schema, []*aqp.AQP{{SQL: sql, Plan: aqp.FromExec(res.Root)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Build(db.Schema, w, DefaultBuildOptions()); err == nil {
		t.Error("primary-key predicate accepted")
	}
}
