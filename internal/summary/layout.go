package summary

import (
	"math/bits"

	"repro/internal/region"
)

// layoutOrder decides the order in which partition atoms occupy the
// primary-key axis. The goal is the consecutive-ones property: every
// constraint region's member atoms should sit next to each other, so the
// region's primary-key set is one (or very few) intervals. Exact C1P
// ordering needs PQ-trees and is not always achievable; a greedy
// nearest-neighbour chain over membership bitsets gets close in practice:
// starting from the atom outside every region, each step appends the
// unplaced atom whose membership differs from the current one in the
// fewest regions (ties broken by more shared regions, then by index, for
// determinism).
//
// Empty atoms (count 0) occupy no keys, so they are appended at the end in
// index order rather than spent on the greedy walk.
func layoutOrder(atoms []region.SigAtom, numRegions int, counts []int64) []int {
	n := len(atoms)
	out := make([]int, 0, n)
	var live []int
	for i := 0; i < n; i++ {
		if counts[i] > 0 {
			live = append(live, i)
		}
	}
	// Bitset signatures for the live atoms.
	words := (numRegions + 63) / 64
	if words == 0 {
		words = 1
	}
	sig := make([][]uint64, n)
	for _, i := range live {
		s := make([]uint64, words)
		for _, m := range atoms[i].Members {
			s[m/64] |= 1 << (m % 64)
		}
		sig[i] = s
	}

	// Start from the atom in fewest regions (the "background"), then chain.
	placed := make([]bool, n)
	cur := -1
	for _, i := range live {
		if cur < 0 || len(atoms[i].Members) < len(atoms[cur].Members) {
			cur = i
		}
	}
	for cur >= 0 {
		placed[cur] = true
		out = append(out, cur)
		next := -1
		bestDiff, bestShare := 1<<30, -1
		for _, j := range live {
			if placed[j] {
				continue
			}
			diff, share := 0, 0
			for w := 0; w < words; w++ {
				diff += bits.OnesCount64(sig[cur][w] ^ sig[j][w])
				share += bits.OnesCount64(sig[cur][w] & sig[j][w])
			}
			if diff < bestDiff || (diff == bestDiff && share > bestShare) {
				bestDiff, bestShare, next = diff, share, j
			}
		}
		cur = next
	}
	for i := 0; i < n; i++ {
		if counts[i] == 0 {
			out = append(out, i)
		}
	}
	return out
}
