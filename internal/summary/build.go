package summary

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/lp"
	"repro/internal/preprocess"
	"repro/internal/region"
	"repro/internal/schema"
	"repro/internal/value"
)

// BuildOptions tune summary construction.
type BuildOptions struct {
	// ExactLP selects the exact rational simplex instead of float64.
	ExactLP bool
	// SpreadUnconstrained gives columns no constraint touches a cycling
	// set over their whole domain (realistic value diversity) instead of
	// a single fixed value.
	SpreadUnconstrained bool
	// GridCompare additionally computes the DataSynth grid-partitioning
	// variable count per relation for the complexity comparison report.
	GridCompare bool
	// TotalOverride replaces a table's row count (what-if scaling).
	TotalOverride map[string]int64
	// NoInhabitation disables the cross-relation inhabitation (GE)
	// propagation — an ablation switch: without it, dimension LPs may
	// leave cells empty that fact segments draw foreign keys from, and
	// accuracy degrades to clamped fallbacks (see BenchmarkE10Ablation).
	NoInhabitation bool
}

// DefaultBuildOptions returns the options used by the demo flows.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{SpreadUnconstrained: true}
}

// RelationReport describes one relation's summary construction, including
// the LP complexity numbers the demo's vendor interface tabulates.
type RelationReport struct {
	Table       string
	Constraints int
	Regions     int
	// Groups is the number of independent constraint groups (disjoint
	// axis footprints) the relation's LP decomposed into.
	Groups   int
	LPVars   int   // region-partitioning atoms (Hydra), summed over groups
	GridVars int64 // grid-partitioning cells (DataSynth baseline), if requested
	Pivots   int
	LPObj    float64
	// Residuals holds the non-zero signed deviations per constraint label
	// after integerization.
	Residuals map[string]int64
	// MaxAbsResidual and SumAbsResidual aggregate the deviations.
	MaxAbsResidual int64
	SumAbsResidual int64
	SummaryRows    int
	PartitionTime  time.Duration
	SolveTime      time.Duration
	AlignTime      time.Duration
}

// BuildReport aggregates per-relation reports.
type BuildReport struct {
	Relations []*RelationReport
	TotalTime time.Duration
	// SummaryBytes is the gob-encoded summary size.
	SummaryBytes int
}

// TotalLPVars sums the LP variable counts across relations.
func (b *BuildReport) TotalLPVars() int {
	n := 0
	for _, r := range b.Relations {
		n += r.LPVars
	}
	return n
}

// TotalGridVars sums the grid cell counts across relations, saturating.
func (b *BuildReport) TotalGridVars() int64 {
	var n int64
	for _, r := range b.Relations {
		if n+r.GridVars < n {
			return int64(^uint64(0) >> 1)
		}
		n += r.GridVars
	}
	return n
}

// Build constructs the database summary from a preprocessed workload. It is
// the heart of Hydra's vendor site and runs in three passes:
//
//  1. Prepare (any order). Every constraint region is resolved over the
//     relation's DENORMALIZED constraint space: one axis per own attribute
//     a predicate touches, plus one virtual axis per dimension attribute
//     reached through a foreign key ("fkcol.axis"). Cell boundaries on
//     every axis are the client's predicate constants — the geometry never
//     fragments with the referenced relation's layout. The constraint set
//     then DECOMPOSES into groups with disjoint axis footprints: regions in
//     different groups can be satisfied independently, so each group gets
//     its own signature partition and LP, and the LP sizes ADD rather than
//     multiply — the region-partitioning scalability the paper claims over
//     grid partitioning.
//  2. Solve (reverse topological order: referencing relations first). Each
//     group's relaxed LP is solved and integerized, the group layouts are
//     overlaid into pk segments, and every populated segment propagates an
//     inhabitation requirement ("at least one tuple in this cell", a GE
//     row) to the relations its foreign keys reference, so the dimension
//     solutions keep every cell alive that a fact segment will draw keys
//     from. What this cross-relation consistency step cannot satisfy
//     surfaces later as the paper's "minor additive errors".
//  3. Materialize (forward topological order: dimensions first).
//     Deterministic alignment assigns each segment a contiguous primary-key
//     range, recorded with its representative point in the alignment index;
//     referencing relations materialize foreign keys by selecting exactly
//     the dimension segments inside their cells — no sampling, so
//     volumetric error stays deterministic.
//
// Crucially, nothing here reads data rows: construction cost depends only
// on the schema and the workload, which is the paper's data-scale-free
// property (experiment E3).
func Build(s *schema.Schema, w *preprocess.Workload, opts BuildOptions) (*Database, *BuildReport, error) {
	start := time.Now()
	order, err := s.TopoOrder()
	if err != nil {
		return nil, nil, err
	}
	db := &Database{Schema: s, Relations: make(map[string]*Relation, len(order))}
	report := &BuildReport{}

	// Pass 1: prepare.
	builds := make(map[string]*relBuild, len(order))
	for _, t := range order {
		rb, err := prepareRelation(t, s, w, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("summary: relation %s: %w", t.Name, err)
		}
		builds[t.Name] = rb
		report.Relations = append(report.Relations, rb.rr)
	}

	// Pass 2: solve, referencing relations first, propagating
	// inhabitation requirements downward.
	for i := len(order) - 1; i >= 0; i-- {
		rb := builds[order[i].Name]
		if err := rb.solve(opts); err != nil {
			return nil, nil, fmt.Errorf("summary: relation %s: %w", rb.t.Name, err)
		}
		if opts.NoInhabitation {
			continue
		}
		if err := rb.propagateNeeds(builds); err != nil {
			return nil, nil, fmt.Errorf("summary: relation %s: %w", rb.t.Name, err)
		}
	}

	// Pass 3: align and materialize, dimensions first.
	for _, t := range order {
		rb := builds[t.Name]
		rel, err := rb.materialize(db, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("summary: relation %s: %w", t.Name, err)
		}
		db.Relations[t.Name] = rel
	}

	report.TotalTime = time.Since(start)
	if n, err := db.Size(); err == nil {
		report.SummaryBytes = n
	}
	return db, report, nil
}

// axisInfo describes one axis of a relation's denormalized constraint
// space.
type axisInfo struct {
	Key    string // own column name, or "fkcol." + referenced axis key
	OwnCol int    // column index when the axis is an own attribute, else -1
	Domain value.Interval
}

// conGroup is one independent constraint group: a set of axes no region
// outside the group touches, its own partition, and its own LP.
type conGroup struct {
	axes     []int // indexes into rb.axes, ascending
	space    *region.Space
	regions  []region.Block // projected onto the group's axes
	regIdx   map[int]int    // relation region index -> group region index
	atoms    []region.SigAtom
	sys      *lp.AtomSystem
	res      *lp.SolveResult
	layout   []int
	needSeen map[string]bool
}

// segment is one piece of the overlay of all group layouts: a contiguous
// primary-key range whose tuples share one atom per group.
type segment struct {
	count  int64
	atomOf []int // per group
}

// relBuild carries one relation through the three passes.
type relBuild struct {
	t     *schema.Table
	s     *schema.Schema
	total int64
	rr    *RelationReport

	axes        []axisInfo
	axisPos     map[string]int
	fullRegions []region.Block // over all axes
	footprints  [][]int        // per region: the axes it constrains
	groups      []*conGroup
	axisGroup   []int // axis -> group index
	axisInGroup []int // axis -> position within its group's axes
	segments    []segment
}

// prepareRelation resolves the constraint space, decomposes it into
// independent groups, and builds each group's partition and LP system.
func prepareRelation(t *schema.Table, s *schema.Schema, w *preprocess.Workload, opts BuildOptions) (*relBuild, error) {
	rb := &relBuild{
		t:     t,
		s:     s,
		total: t.RowCount,
		rr:    &RelationReport{Table: t.Name, Residuals: make(map[string]int64)},
	}
	if ov, ok := opts.TotalOverride[t.Name]; ok {
		rb.total = ov
	}

	// Deterministic spec order.
	var keys []string
	for k := range w.Regions[t.Name] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	specs := make([]*preprocess.RegionSpec, len(keys))
	for i, k := range keys {
		specs[i] = w.Regions[t.Name][k]
	}
	rb.rr.Regions = len(specs)
	rb.rr.Constraints = len(w.Constraints[t.Name])

	axes, err := collectAxes(t, s, specs)
	if err != nil {
		return nil, err
	}
	rb.axes = axes
	rb.axisPos = make(map[string]int, len(axes))
	fullSpace := &region.Space{Table: t.Name}
	for i, a := range axes {
		fullSpace.Cols = append(fullSpace.Cols, i)
		fullSpace.Domains = append(fullSpace.Domains, a.Domain)
		rb.axisPos[a.Key] = i
	}

	rb.fullRegions = make([]region.Block, len(specs))
	for i, sp := range specs {
		ru, err := resolveSpec(t, s, sp, fullSpace, rb.axisPos)
		if err != nil {
			return nil, err
		}
		rb.fullRegions[i] = ru
	}
	regionIdx := make(map[string]int, len(keys))
	for i, k := range keys {
		regionIdx[k] = i
	}
	if opts.GridCompare {
		rb.rr.GridVars = region.Grid(fullSpace, rb.fullRegions, 0).VarCount
	}

	// Union-find over axes: every region's footprint (the axes it
	// actually constrains) merges into one group.
	parent := make([]int, len(axes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	footprints := make([][]int, len(rb.fullRegions))
	for ri, reg := range rb.fullRegions {
		var fp []int
		for a := range axes {
			if !reg[a].Equal(value.NewIntervalSet(axes[a].Domain)) {
				fp = append(fp, a)
			}
		}
		footprints[ri] = fp
		for i := 1; i < len(fp); i++ {
			union(fp[0], fp[i])
		}
	}
	rb.footprints = footprints
	// Relations that other relations reference are kept in a SINGLE
	// group: their tuples must co-locate attribute combinations for
	// foreign-key materialization, which independent group layouts cannot
	// guarantee. Referenced relations are dimensions — small constraint
	// spaces — so the joint partition stays cheap; the grouped
	// decomposition is what tames the wide fact tables.
	if isReferenced(t, s) {
		for a := 1; a < len(axes); a++ {
			union(0, a)
		}
	}
	// Groups in order of their smallest axis.
	groupOf := make(map[int]int)
	rb.axisGroup = make([]int, len(axes))
	rb.axisInGroup = make([]int, len(axes))
	for a := range axes {
		root := find(a)
		gi, ok := groupOf[root]
		if !ok {
			gi = len(rb.groups)
			groupOf[root] = gi
			rb.groups = append(rb.groups, &conGroup{regIdx: make(map[int]int), needSeen: make(map[string]bool)})
		}
		g := rb.groups[gi]
		rb.axisGroup[a] = gi
		rb.axisInGroup[a] = len(g.axes)
		g.axes = append(g.axes, a)
	}
	if len(rb.groups) == 0 {
		// No axes at all: a single trivial group so the machinery below
		// stays uniform.
		rb.groups = append(rb.groups, &conGroup{regIdx: make(map[int]int), needSeen: make(map[string]bool)})
	}
	rb.rr.Groups = len(rb.groups)

	// Per-group spaces and projected regions.
	for _, g := range rb.groups {
		g.space = &region.Space{Table: t.Name}
		for i, a := range g.axes {
			g.space.Cols = append(g.space.Cols, i)
			g.space.Domains = append(g.space.Domains, axes[a].Domain)
		}
	}
	regionGroup := make([]int, len(rb.fullRegions)) // -1 = unconstrained region
	for ri, fp := range footprints {
		if len(fp) == 0 {
			regionGroup[ri] = -1
			continue
		}
		gi := rb.axisGroup[fp[0]]
		regionGroup[ri] = gi
		g := rb.groups[gi]
		proj := make(region.Block, len(g.axes))
		for i, a := range g.axes {
			proj[i] = rb.fullRegions[ri][a]
		}
		g.regIdx[ri] = len(g.regions)
		g.regions = append(g.regions, proj)
	}

	tPart := time.Now()
	for _, g := range rb.groups {
		g.atoms = region.SignaturePartition(g.space, g.regions)
		rb.rr.LPVars += len(g.atoms)
		g.sys = &lp.AtomSystem{NumAtoms: len(g.atoms), Total: rb.total}
	}
	rb.rr.PartitionTime = time.Since(tPart)

	// Constraint rows. A constraint over an unconstrained region pins the
	// total of group 0.
	for _, c := range w.Constraints[t.Name] {
		ri, ok := regionIdx[c.Spec.Key()]
		if !ok {
			return nil, fmt.Errorf("internal: constraint region %q not registered", c.Label)
		}
		gi := regionGroup[ri]
		if gi < 0 {
			g := rb.groups[0]
			all := make([]int, len(g.atoms))
			for i := range all {
				all[i] = i
			}
			g.sys.Cons = append(g.sys.Cons, lp.AtomConstraint{Atoms: all, Card: c.Card, Label: c.Label})
			continue
		}
		g := rb.groups[gi]
		gri := g.regIdx[ri]
		var members []int
		for ai := range g.atoms {
			if g.atoms[ai].In(gri) {
				members = append(members, ai)
			}
		}
		g.sys.Cons = append(g.sys.Cons, lp.AtomConstraint{Atoms: members, Card: c.Card, Label: c.Label})
	}

	// Preference: keep downstream-referenced regions populated.
	for key := range w.Referenced[t.Name] {
		ri, ok := regionIdx[key]
		if !ok || regionGroup[ri] < 0 {
			continue
		}
		g := rb.groups[regionGroup[ri]]
		gri := g.regIdx[ri]
		preferSet := map[int]bool{}
		for _, p := range g.sys.Prefer {
			preferSet[p] = true
		}
		for ai := range g.atoms {
			if g.atoms[ai].In(gri) {
				preferSet[ai] = true
			}
		}
		g.sys.Prefer = g.sys.Prefer[:0]
		for ai := range preferSet {
			g.sys.Prefer = append(g.sys.Prefer, ai)
		}
		sort.Ints(g.sys.Prefer)
	}
	return rb, nil
}

// solve runs every group's LP, forces group totals to agree, lays out each
// group, and overlays the layouts into segments.
func (rb *relBuild) solve(opts BuildOptions) error {
	tSolve := time.Now()
	for _, g := range rb.groups {
		if len(g.atoms) == 0 {
			// Zero-axis trivial group: one implicit atom holding all rows.
			g.atoms = []region.SigAtom{{}}
			g.res = &lp.SolveResult{Counts: []int64{rb.total}}
			g.layout = []int{0}
			continue
		}
		res, err := lp.SolveAtoms(g.sys, opts.ExactLP)
		if err != nil {
			return err
		}
		g.res = res
		forceTotal(res.Counts, rb.total)
		g.layout = layoutOrder(g.atoms, len(g.regions), res.Counts)
		rb.rr.Pivots += res.Pivots
		rb.rr.LPObj += res.LPObj
		for i, r := range res.Residuals {
			if r != 0 {
				rb.rr.Residuals[res.Labels[i]] += r
				abs := r
				if abs < 0 {
					abs = -abs
				}
				if abs > rb.rr.MaxAbsResidual {
					rb.rr.MaxAbsResidual = abs
				}
				rb.rr.SumAbsResidual += abs
			}
		}
	}
	rb.rr.SolveTime = time.Since(tSolve)
	rb.buildSegments()
	return nil
}

// forceTotal nudges integer counts so they sum exactly to total (group
// layouts must agree on the primary-key range). The adjustment lands on the
// largest atoms; any constraint deviation it causes is already reflected in
// the reported residuals of subsequent relations only through verification,
// so keep the nudge minimal.
func forceTotal(counts []int64, total int64) {
	var sum int64
	for _, c := range counts {
		sum += c
	}
	diff := total - sum
	for diff != 0 {
		// Find the largest atom (for removals) / first atom (for adds).
		best := 0
		for i, c := range counts {
			if c > counts[best] {
				best = i
			}
		}
		if diff > 0 {
			counts[best] += diff
			return
		}
		take := -diff
		if take > counts[best] {
			take = counts[best]
		}
		if take == 0 {
			return // nothing left to remove
		}
		counts[best] -= take
		diff += take
	}
}

// buildSegments overlays the group layouts: each group independently covers
// [0, total) with its atoms in layout order; the overlay's pieces are the
// summary segments. Segment count is bounded by the total number of
// populated atoms across groups (each boundary starts a new segment), which
// for basic LP solutions is on the order of the constraint count — the
// paper's "minuscule summary".
func (rb *relBuild) buildSegments() {
	type cursor struct {
		g    *conGroup
		pos  int   // index into layout
		upto int64 // cumulative end of current atom
	}
	cursors := make([]cursor, len(rb.groups))
	for gi, g := range rb.groups {
		c := cursor{g: g}
		for c.pos < len(g.layout) && g.res.Counts[g.layout[c.pos]] == 0 {
			c.pos++
		}
		if c.pos < len(g.layout) {
			c.upto = g.res.Counts[g.layout[c.pos]]
		}
		cursors[gi] = c
	}
	rb.segments = rb.segments[:0]
	var off int64
	for off < rb.total {
		// Next boundary across groups.
		next := rb.total
		for gi := range cursors {
			c := &cursors[gi]
			if c.pos < len(c.g.layout) && c.upto < next && c.upto > off {
				next = c.upto
			}
		}
		seg := segment{count: next - off, atomOf: make([]int, len(rb.groups))}
		for gi := range cursors {
			c := &cursors[gi]
			if c.pos < len(c.g.layout) {
				seg.atomOf[gi] = c.g.layout[c.pos]
			}
		}
		rb.segments = append(rb.segments, seg)
		off = next
		for gi := range cursors {
			c := &cursors[gi]
			for c.pos < len(c.g.layout) && c.upto <= off {
				c.pos++
				if c.pos < len(c.g.layout) {
					c.upto += c.g.res.Counts[c.g.layout[c.pos]]
				}
			}
		}
	}
}

// axisRep returns the representative interval of one axis within a segment.
func (rb *relBuild) axisRep(seg *segment, axis int) value.Interval {
	g := rb.groups[rb.axisGroup[axis]]
	atom := &g.atoms[seg.atomOf[rb.axisGroup[axis]]]
	if len(atom.Rep) == 0 {
		return rb.axes[axis].Domain // trivial group
	}
	return atom.Rep[rb.axisInGroup[axis]]
}

// atRisk is one region whose membership a foreign key must reproduce
// exactly: the segment satisfies every conjunct of the region outside this
// foreign key, so the referenced tuple's attributes alone decide whether a
// generated row falls inside — and they must decide it the way the LP
// accounted the segment (need).
type atRisk struct {
	need bool
	// refAxes/sets: the region's condition over the referenced relation's
	// axes (parallel slices).
	refAxes []int
	sets    []value.IntervalSet
}

// fkAtRisk computes the at-risk regions of one segment for the foreign key
// with the given axis-key prefix. refAxisOf maps a stripped axis key to the
// referenced relation's axis index (-1 when absent).
func (rb *relBuild) fkAtRisk(seg *segment, prefix string, refAxisOf func(string) int) []atRisk {
	rep := func(a int) int64 { return rb.axisRep(seg, a).Lo }
	var out []atRisk
	for ri, reg := range rb.fullRegions {
		var fkAxes, others []int
		for _, a := range rb.footprints[ri] {
			key := rb.axes[a].Key
			if len(key) > len(prefix) && key[:len(prefix)] == prefix {
				fkAxes = append(fkAxes, a)
			} else {
				others = append(others, a)
			}
		}
		if len(fkAxes) == 0 {
			continue
		}
		otherOK := true
		for _, a := range others {
			if !reg[a].Contains(rep(a)) {
				otherOK = false
				break
			}
		}
		if !otherOK {
			continue // some other conjunct already fails: not at risk
		}
		e := atRisk{need: true}
		for _, a := range fkAxes {
			ra := refAxisOf(rb.axes[a].Key[len(prefix):])
			if ra < 0 {
				continue
			}
			if !reg[a].Contains(rep(a)) {
				e.need = false
			}
			e.refAxes = append(e.refAxes, ra)
			e.sets = append(e.sets, reg[a])
		}
		if len(e.refAxes) > 0 {
			out = append(out, e)
		}
	}
	return out
}

// propagateNeeds adds, for every populated segment and every foreign key,
// soft GE rows to the referenced relation's groups: at least one dimension
// tuple must realize the membership pattern the segment's foreign keys
// require.
func (rb *relBuild) propagateNeeds(builds map[string]*relBuild) error {
	for ci, col := range rb.t.Columns {
		if col.Ref == nil {
			continue
		}
		ref := builds[col.Ref.Table]
		if ref == nil {
			return fmt.Errorf("internal: referenced relation %s not prepared", col.Ref.Table)
		}
		prefix := rb.t.Columns[ci].Name + "."
		refAxisOf := func(key string) int {
			if p, ok := ref.axisPos[key]; ok {
				return p
			}
			return -1
		}
		for si := range rb.segments {
			entries := rb.fkAtRisk(&rb.segments[si], prefix, refAxisOf)
			if len(entries) == 0 {
				continue
			}
			// Partition entries by the referenced group of their axes (a
			// region's dimension part always lies within one group).
			byGroup := make(map[int][]atRisk)
			for _, e := range entries {
				gi := ref.axisGroup[e.refAxes[0]]
				byGroup[gi] = append(byGroup[gi], e)
			}
			for rgi, ges := range byGroup {
				rg := ref.groups[rgi]
				var members []int
				for ai := range rg.atoms {
					if ref.atomMatches(rgi, ai, ges) {
						members = append(members, ai)
					}
				}
				if len(members) == 0 {
					continue // unrealizable pattern; clamp reports later
				}
				key := fmt.Sprint(members)
				if rg.needSeen[key] {
					continue
				}
				rg.needSeen[key] = true
				rg.sys.Cons = append(rg.sys.Cons, lp.AtomConstraint{
					Atoms: members,
					Card:  1,
					Kind:  lp.GE,
					Label: fmt.Sprintf("inhabit(%s.%s)", rb.t.Name, col.Name),
				})
			}
		}
	}
	return nil
}

// atomMatches reports whether atom ai of group rgi realizes every at-risk
// pattern entry: its representative satisfies the entry's condition exactly
// when the entry needs it satisfied. Entry axes outside the group are
// treated as satisfied (they are covered by their own group's row).
func (rb *relBuild) atomMatches(rgi, ai int, entries []atRisk) bool {
	rep := rb.groups[rgi].atoms[ai].Rep
	for _, e := range entries {
		sat := true
		for i, ra := range e.refAxes {
			if rb.axisGroup[ra] != rgi {
				continue
			}
			if len(rep) == 0 || !e.sets[i].Contains(rep[rb.axisInGroup[ra]].Lo) {
				sat = false
				break
			}
		}
		if sat != e.need {
			return false
		}
	}
	return true
}

// materialize performs deterministic alignment and expands segments into
// summary rows, resolving foreign keys against already-materialized
// referenced relations.
func (rb *relBuild) materialize(db *Database, opts BuildOptions) (*Relation, error) {
	t := rb.t
	tAlign := time.Now()
	rel := &Relation{Table: t.Name, Total: rb.total}
	for _, a := range rb.axes {
		rel.Axes = append(rel.Axes, a.Key)
	}
	var off int64
	for si := range rb.segments {
		seg := &rb.segments[si]
		rep := make([]int64, len(rb.axes))
		block := make([]value.Interval, len(rb.axes))
		for a := range rb.axes {
			block[a] = rb.axisRep(seg, a)
			rep[a] = block[a].Lo
		}
		rel.Atoms = append(rel.Atoms, AtomPK{Rep: rep, PK: value.NewIntervalSet(value.Ival(off, off+seg.count))})
		row := Row{Count: seg.count}
		row.Specs = rb.rowSpecs(seg, block, db, opts, &rel.ClampedRows)
		rel.Rows = append(rel.Rows, row)
		off += seg.count
	}
	rel.Total = off
	rb.rr.AlignTime = time.Since(tAlign)
	rb.rr.SummaryRows = len(rel.Rows)
	return rel, nil
}

// isReferenced reports whether any table's foreign key targets t.
func isReferenced(t *schema.Table, s *schema.Schema) bool {
	for _, other := range s.Tables {
		for _, c := range other.Columns {
			if c.Ref != nil && c.Ref.Table == t.Name {
				return true
			}
		}
	}
	return false
}

// collectAxes walks every spec's own columns and foreign-key terms,
// producing the sorted denormalized axis list.
func collectAxes(t *schema.Table, s *schema.Schema, specs []*preprocess.RegionSpec) ([]axisInfo, error) {
	seen := map[string]axisInfo{}
	var walk func(tab *schema.Table, sp *preprocess.RegionSpec, prefix string) error
	walk = func(tab *schema.Table, sp *preprocess.RegionSpec, prefix string) error {
		pk := tab.PKIndex()
		for _, c := range sp.Own.Cols {
			if c == pk {
				return fmt.Errorf("predicates on surrogate primary key %s.%s are unsupported", tab.Name, tab.Columns[c].Name)
			}
			key := prefix + tab.Columns[c].Name
			if _, ok := seen[key]; !ok {
				seen[key] = axisInfo{Key: key, OwnCol: ownColOf(prefix, c), Domain: tab.Columns[c].Domain()}
			}
		}
		for _, term := range sp.Terms {
			ref := s.Table(term.RefTable)
			if ref == nil {
				return fmt.Errorf("internal: missing table %s", term.RefTable)
			}
			if err := walk(ref, term.Ref, prefix+tab.Columns[term.FKCol].Name+"."); err != nil {
				return err
			}
		}
		return nil
	}
	for _, sp := range specs {
		if err := walk(t, sp, ""); err != nil {
			return nil, err
		}
	}
	var out []axisInfo
	for _, a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// ownColOf returns the table column index for a root-level axis, -1 for
// virtual (foreign) axes.
func ownColOf(prefix string, col int) int {
	if prefix == "" {
		return col
	}
	return -1
}

// resolveSpec flattens a spec tree into a product region over the
// denormalized axes: own-attribute sets at their own keys, and every nested
// dimension predicate at its "fkcol."-prefixed key.
func resolveSpec(t *schema.Table, s *schema.Schema, sp *preprocess.RegionSpec, space *region.Space, axisPos map[string]int) (region.Block, error) {
	b := make(region.Block, space.Dims())
	for i, d := range space.Domains {
		b[i] = value.NewIntervalSet(d)
	}
	var walk func(tab *schema.Table, sp *preprocess.RegionSpec, prefix string) error
	walk = func(tab *schema.Table, sp *preprocess.RegionSpec, prefix string) error {
		for i, c := range sp.Own.Cols {
			key := prefix + tab.Columns[c].Name
			pos, ok := axisPos[key]
			if !ok {
				return fmt.Errorf("internal: axis %s not collected", key)
			}
			b[pos] = b[pos].Intersect(sp.Own.Sets[i])
		}
		for _, term := range sp.Terms {
			ref := s.Table(term.RefTable)
			if err := walk(ref, term.Ref, prefix+tab.Columns[term.FKCol].Name+"."); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t, sp, ""); err != nil {
		return nil, err
	}
	return b, nil
}

// rowSpecs builds the per-column value specs of one summary row from the
// segment's representative cell. Attribute axes get their representative
// value (the paper's fixed summary values); foreign keys are materialized
// from the referenced relation's alignment index: the keys of exactly those
// dimension segments that realize the membership pattern this segment's
// at-risk regions require, so re-executing any workload predicate lands the
// row in precisely the regions the LP accounted it to.
//
// Referential post-processing: when no dimension segment realizes the
// pattern (the dimension LPs could not co-locate the needed attribute
// combination) the foreign key falls back to the keys matching the largest
// number of at-risk regions and the affected tuples are charged to
// clampedRows — the paper's "minor additive errors".
func (rb *relBuild) rowSpecs(seg *segment, block []value.Interval, db *Database, opts BuildOptions, clampedRows *int64) []ColSpec {
	t := rb.t
	pk := t.PKIndex()
	var specs []ColSpec
	for ci, col := range t.Columns {
		if ci == pk {
			continue
		}
		if col.Ref != nil {
			specs = append(specs, rb.fkSpec(seg, ci, col, db, clampedRows))
			continue
		}
		pos := -1
		if p, ok := rb.axisPos[col.Name]; ok {
			pos = p
		}
		var set value.IntervalSet
		if pos >= 0 {
			set = value.NewIntervalSet(block[pos])
		} else {
			set = value.NewIntervalSet(col.Domain())
		}
		if set.Empty() {
			specs = append(specs, FixedSpec(ci, col.DomainLo))
			continue
		}
		if pos >= 0 {
			// Constrained attribute: fixed representative value, as in
			// the paper's summary display.
			specs = append(specs, FixedSpec(ci, set[0].Lo))
			continue
		}
		if opts.SpreadUnconstrained && set.Len() > 1 {
			specs = append(specs, SetSpec(ci, set))
		} else {
			specs = append(specs, FixedSpec(ci, set[0].Lo))
		}
	}
	return specs
}

// fkSpec materializes one foreign-key column of a summary row.
func (rb *relBuild) fkSpec(seg *segment, ci int, col *schema.Column, db *Database, clampedRows *int64) ColSpec {
	ref := db.Relations[col.Ref.Table]
	if ref == nil || ref.Total <= 0 {
		// Referenced relation empty: unavoidable referential violation.
		*clampedRows += seg.count
		return FixedSpec(ci, 0)
	}
	prefix := col.Name + "."
	entries := rb.fkAtRisk(seg, prefix, ref.AxisIndex)
	if len(entries) == 0 {
		return SetSpec(ci, value.NewIntervalSet(value.Ival(0, ref.Total)))
	}
	var pkset value.IntervalSet
	bestScore := -1
	var bestSet value.IntervalSet
	for _, atom := range ref.Atoms {
		score := 0
		for _, e := range entries {
			sat := true
			for i, ra := range e.refAxes {
				if !e.sets[i].Contains(atom.Rep[ra]) {
					sat = false
					break
				}
			}
			if sat == e.need {
				score++
			}
		}
		if score == len(entries) {
			pkset = pkset.Union(atom.PK)
		}
		if score > bestScore {
			bestScore = score
			bestSet = atom.PK.Clone()
		} else if score == bestScore {
			bestSet = bestSet.Union(atom.PK)
		}
	}
	if pkset.Empty() {
		*clampedRows += seg.count
		pkset = bestSet
		if pkset.Empty() {
			pkset = value.NewIntervalSet(value.Ival(0, ref.Total))
		}
	}
	return SetSpec(ci, pkset)
}
