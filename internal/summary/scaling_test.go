package summary

import (
	"testing"

	"repro/internal/aqp"
	"repro/internal/engine"
	"repro/internal/preprocess"
	"repro/internal/sqlkit"
	"repro/internal/tpcds"
)

func captureWorkload(t *testing.T, db *engine.Database, queries []string) []*aqp.AQP {
	t.Helper()
	var out []*aqp.AQP
	for _, sql := range queries {
		q, err := sqlkit.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := engine.BuildPlan(db.Schema, q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.Execute(db, plan, engine.ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, &aqp.AQP{SQL: sql, Plan: aqp.FromExec(res.Root)})
	}
	return out
}

// TestFactLPStaysTractable guards the scalability property the grouped
// decomposition provides: the fact table's LP variable count must stay
// bounded as the workload grows, not explode combinatorially (a regression
// here is what previously made 131-query builds run out of memory).
func TestFactLPStaysTractable(t *testing.T) {
	s := tpcds.Schema(0.5)
	db, err := tpcds.GenerateDatabase(s, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{60, 90, 120} {
		aqps := captureWorkload(t, db, tpcds.Workload(n, 11))
		w, err := preprocess.Extract(db.Schema, aqps)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := prepareRelation(db.Schema.Table("store_sales"), db.Schema, w, DefaultBuildOptions())
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("n=%d axes=%d regions=%d groups=%d vars=%d part=%v",
			n, len(rb.axes), rb.rr.Regions, rb.rr.Groups, rb.rr.LPVars, rb.rr.PartitionTime)
		if rb.rr.LPVars > 200_000 {
			t.Fatalf("fact LP exploded to %d variables at %d queries", rb.rr.LPVars, n)
		}
		if rb.rr.Groups < 2 {
			t.Errorf("fact constraints did not decompose (groups=%d)", rb.rr.Groups)
		}
	}
}
