// Package summary implements Hydra's database summary: the minuscule,
// memory-resident artifact from which databases of arbitrary size are
// regenerated on the fly. A relation summary is a list of rows
// (#TUPLES, value-spec vector) — exactly the presentation of Figure 4 of
// the paper, where the primary-key column is replaced by a tuple count and
// generated later as auto-numbers.
//
// Construction uses Hydra's deterministic alignment: relations are
// processed in foreign-key topological order; each relation's partition
// atoms are laid out contiguously along the primary-key axis, so every
// constraint region maps to an exact union of primary-key intervals. Those
// interval sets are what downstream (fact) relations' foreign-key terms
// resolve to — no sampling anywhere, which is why the volumetric error is
// deterministic and constant in magnitude.
//
// The data model itself lives in the leaf package synopsis (so the engine's
// summary-direct fast path can consume it without importing this package's
// build pipeline); the aliases below re-export it, and code above the
// engine keeps importing summary.
package summary

import (
	"io"

	"repro/internal/synopsis"
	"repro/internal/value"
)

// ColSpec prescribes the value of one column within a summary row: either a
// fixed code or a set of codes the generator cycles through.
type ColSpec = synopsis.ColSpec

// Row is one summary row: Count tuples sharing the value specs.
type Row = synopsis.Row

// AtomPK is one entry of a relation's alignment index; see synopsis.AtomPK.
type AtomPK = synopsis.AtomPK

// Relation is the summary of one table.
type Relation = synopsis.Relation

// Database is the complete vendor-side summary: one relation summary per
// table plus the schema needed to decode values.
type Database = synopsis.Database

// FixedSpec returns a fixed-value spec.
func FixedSpec(col int, v int64) ColSpec { return synopsis.FixedSpec(col, v) }

// SetSpec returns a cycling-set spec.
func SetSpec(col int, s value.IntervalSet) ColSpec { return synopsis.SetSpec(col, s) }

// DecodeJSON reads a summary written by Database.EncodeJSON.
func DecodeJSON(r io.Reader) (*Database, error) { return synopsis.DecodeJSON(r) }

// DecodeGob reads a summary written by Database.EncodeGob.
func DecodeGob(r io.Reader) (*Database, error) { return synopsis.DecodeGob(r) }
