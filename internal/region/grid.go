package region

import (
	"math"
	"sort"

	"repro/internal/value"
)

// GridResult describes the DataSynth-style grid partition of a space.
type GridResult struct {
	// Cells are the materialized grid cells (as atoms, one single-interval
	// block each) with their region memberships. Nil when the cell count
	// exceeded the materialization cap.
	Cells []Atom
	// VarCount is the number of grid cells (LP variables), computed even
	// when the grid is too large to materialize. Saturates at MaxInt64.
	VarCount int64
	// Materialized reports whether Cells was populated.
	Materialized bool
}

// Grid computes the baseline grid partitioning of Arasu et al.: each axis is
// cut at every boundary value of every constraint region, and the LP gets
// one variable per cell of the resulting cross-product grid. maxCells caps
// materialization; the cell count is always computed exactly (the paper's
// complexity comparison only needs the count).
func Grid(s *Space, regions []Block, maxCells int64) *GridResult {
	bounds := gridBounds(s, regions)
	count := int64(1)
	for _, bs := range bounds {
		n := int64(len(bs) - 1)
		if n <= 0 {
			return &GridResult{VarCount: 0}
		}
		if count > math.MaxInt64/n {
			count = math.MaxInt64
			break
		}
		count *= n
	}
	res := &GridResult{VarCount: count}
	if count > maxCells || count == math.MaxInt64 {
		return res
	}

	// Materialize cells in row-major multi-index order.
	dims := s.Dims()
	idx := make([]int, dims)
	pt := make([]int64, dims)
	for {
		cell := make(Block, dims)
		for a := 0; a < dims; a++ {
			cell[a] = value.NewIntervalSet(value.Ival(bounds[a][idx[a]], bounds[a][idx[a]+1]))
			pt[a] = bounds[a][idx[a]]
		}
		var members []int
		for i, r := range regions {
			if r.Contains(pt) {
				members = append(members, i)
			}
		}
		res.Cells = append(res.Cells, Atom{Blocks: BlockUnion{cell}, Members: members})

		// Advance the multi-index.
		a := dims - 1
		for a >= 0 {
			idx[a]++
			if idx[a] < len(bounds[a])-1 {
				break
			}
			idx[a] = 0
			a--
		}
		if a < 0 {
			break
		}
	}
	res.Materialized = true
	return res
}

// gridBounds collects, per axis, the sorted distinct cut points: the domain
// endpoints plus every interval boundary of every region.
func gridBounds(s *Space, regions []Block) [][]int64 {
	out := make([][]int64, s.Dims())
	for a := 0; a < s.Dims(); a++ {
		set := map[int64]bool{s.Domains[a].Lo: true, s.Domains[a].Hi: true}
		for _, r := range regions {
			for _, iv := range r[a] {
				if iv.Lo > s.Domains[a].Lo && iv.Lo < s.Domains[a].Hi {
					set[iv.Lo] = true
				}
				if iv.Hi > s.Domains[a].Lo && iv.Hi < s.Domains[a].Hi {
					set[iv.Hi] = true
				}
			}
		}
		bs := make([]int64, 0, len(set))
		for v := range set {
			bs = append(bs, v)
		}
		sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
		out[a] = bs
	}
	return out
}
