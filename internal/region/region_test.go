package region

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/schema"
	"repro/internal/value"
)

func testSpace2D() *Space {
	t := &schema.Table{
		Name: "t",
		Columns: []*schema.Column{
			{Name: "x", Type: schema.Int, DomainLo: 0, DomainHi: 10},
			{Name: "y", Type: schema.Int, DomainLo: 0, DomainHi: 10},
		},
	}
	return NewSpace(t, []int{0, 1})
}

func blockOf(t *testing.T, s *Space, sets map[int]value.IntervalSet) Block {
	t.Helper()
	b, err := BlockFromSets(s, sets)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBlockBasics(t *testing.T) {
	s := testSpace2D()
	full := s.Full()
	if full.Empty() || full.Points() != 100 {
		t.Errorf("full: empty=%v points=%d", full.Empty(), full.Points())
	}
	b := blockOf(t, s, map[int]value.IntervalSet{
		0: value.NewIntervalSet(value.Ival(2, 5)),
		1: value.NewIntervalSet(value.Ival(0, 4), value.Ival(6, 8)),
	})
	if b.Points() != 3*6 {
		t.Errorf("points = %d, want 18", b.Points())
	}
	if !b.Contains([]int64{2, 7}) || b.Contains([]int64{2, 5}) || b.Contains([]int64{5, 0}) {
		t.Error("Contains misbehaves")
	}
	if Block(nil).Empty() {
		t.Error("zero-dim block must be non-empty")
	}
	if Block(nil).Points() != 1 {
		t.Error("zero-dim block has one point")
	}
}

func TestBlockFromSetsErrors(t *testing.T) {
	s := testSpace2D()
	if _, err := BlockFromSets(s, map[int]value.IntervalSet{5: nil}); err == nil {
		t.Error("unknown column accepted")
	}
	b := blockOf(t, s, map[int]value.IntervalSet{0: value.NewIntervalSet(value.Ival(50, 60))})
	if !b.Empty() {
		t.Error("out-of-domain set should produce an empty block")
	}
}

func TestBlockIntersectSubtract(t *testing.T) {
	s := testSpace2D()
	a := blockOf(t, s, map[int]value.IntervalSet{0: value.NewIntervalSet(value.Ival(0, 6)), 1: value.NewIntervalSet(value.Ival(0, 6))})
	b := blockOf(t, s, map[int]value.IntervalSet{0: value.NewIntervalSet(value.Ival(3, 10)), 1: value.NewIntervalSet(value.Ival(3, 10))})
	x := a.Intersect(b)
	if x.Points() != 9 {
		t.Errorf("intersection points = %d, want 9", x.Points())
	}
	diff := a.Subtract(b)
	var total int64
	for _, d := range diff {
		total += d.Points()
	}
	if total != 36-9 {
		t.Errorf("difference points = %d, want 27", total)
	}
	// Pieces must be disjoint from b and from each other.
	for px := int64(0); px < 10; px++ {
		for py := int64(0); py < 10; py++ {
			pt := []int64{px, py}
			inA, inB := a.Contains(pt), b.Contains(pt)
			n := 0
			for _, d := range diff {
				if d.Contains(pt) {
					n++
				}
			}
			want := 0
			if inA && !inB {
				want = 1
			}
			if n != want {
				t.Fatalf("point %v covered %d times, want %d", pt, n, want)
			}
		}
	}
}

func TestBlockSubtractDisjoint(t *testing.T) {
	s := testSpace2D()
	a := blockOf(t, s, map[int]value.IntervalSet{0: value.NewIntervalSet(value.Ival(0, 2))})
	b := blockOf(t, s, map[int]value.IntervalSet{0: value.NewIntervalSet(value.Ival(5, 7))})
	diff := a.Subtract(b)
	if len(diff) != 1 || diff[0].Points() != a.Points() {
		t.Errorf("disjoint subtract changed the block: %v", diff)
	}
}

func TestBlockPointsSaturates(t *testing.T) {
	big := value.NewIntervalSet(value.Ival(0, math.MaxInt64/2))
	b := Block{big, big, big}
	if b.Points() != math.MaxInt64 {
		t.Errorf("Points should saturate, got %d", b.Points())
	}
}

// randRegions builds random product regions over the 10x10 test space.
func randRegions(r *rand.Rand, n int) []Block {
	var out []Block
	for i := 0; i < n; i++ {
		b := make(Block, 2)
		for a := 0; a < 2; a++ {
			lo := int64(r.Intn(9))
			hi := lo + 1 + int64(r.Intn(int(10-lo)))
			set := value.NewIntervalSet(value.Ival(lo, hi))
			if r.Intn(3) == 0 { // sometimes a second interval
				lo2 := int64(r.Intn(9))
				set = set.Union(value.NewIntervalSet(value.Ival(lo2, lo2+1+int64(r.Intn(3)))))
			}
			b[a] = set.Intersect(value.NewIntervalSet(value.Ival(0, 10)))
		}
		out = append(out, b)
	}
	return out
}

// TestQuickPartitionIsPartition: atoms cover every point exactly once, and
// each atom's membership matches pointwise region membership.
func TestQuickPartitionIsPartition(t *testing.T) {
	s := testSpace2D()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		regions := randRegions(r, 1+r.Intn(5))
		atoms := Partition(s, regions)
		seenSig := map[string]bool{}
		for px := int64(0); px < 10; px++ {
			for py := int64(0); py < 10; py++ {
				pt := []int64{px, py}
				covering := -1
				for ai := range atoms {
					if atoms[ai].Blocks.Contains(pt) {
						if covering >= 0 {
							return false // double cover
						}
						covering = ai
					}
				}
				if covering < 0 {
					return false // gap
				}
				for ri, reg := range regions {
					if reg.Contains(pt) != atoms[covering].In(ri) {
						return false // membership mismatch
					}
				}
			}
		}
		// Minimality: no two atoms share a signature.
		for _, a := range atoms {
			key := ""
			for _, m := range a.Members {
				key += string(rune(m)) + ","
			}
			if seenSig[key] {
				return false
			}
			seenSig[key] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickPartitionCountsConserved: atom point counts sum to the domain
// size.
func TestQuickPartitionCountsConserved(t *testing.T) {
	s := testSpace2D()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		regions := randRegions(r, 1+r.Intn(6))
		atoms := Partition(s, regions)
		var total int64
		for _, a := range atoms {
			total += a.Blocks.Points()
		}
		return total == 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPartitionNoRegions(t *testing.T) {
	s := testSpace2D()
	atoms := Partition(s, nil)
	if len(atoms) != 1 || len(atoms[0].Members) != 0 || atoms[0].Blocks.Points() != 100 {
		t.Errorf("empty partition = %+v", atoms)
	}
}

func TestPartitionNestedRegions(t *testing.T) {
	s := testSpace2D()
	inner := blockOf(t, s, map[int]value.IntervalSet{0: value.NewIntervalSet(value.Ival(2, 4))})
	outer := blockOf(t, s, map[int]value.IntervalSet{0: value.NewIntervalSet(value.Ival(0, 6))})
	atoms := Partition(s, []Block{inner, outer})
	// Expect exactly 3 atoms: inner∩outer, outer-only, rest.
	if len(atoms) != 3 {
		t.Fatalf("atoms = %d, want 3", len(atoms))
	}
	var pts [3]int64
	for i, a := range atoms {
		pts[i] = a.Blocks.Points()
	}
	if pts[0]+pts[1]+pts[2] != 100 {
		t.Errorf("points = %v", pts)
	}
}

func TestGridCountsAndMaterialization(t *testing.T) {
	s := testSpace2D()
	r1 := blockOf(t, s, map[int]value.IntervalSet{0: value.NewIntervalSet(value.Ival(2, 5))})
	r2 := blockOf(t, s, map[int]value.IntervalSet{1: value.NewIntervalSet(value.Ival(4, 6))})
	g := Grid(s, []Block{r1, r2}, 1000)
	// Axis x cuts: 0,2,5,10 -> 3 cells; axis y cuts: 0,4,6,10 -> 3 cells.
	if g.VarCount != 9 || !g.Materialized || len(g.Cells) != 9 {
		t.Fatalf("grid = %+v", g)
	}
	var total int64
	inR1 := 0
	for _, c := range g.Cells {
		total += c.Blocks.Points()
		if c.In(0) {
			inR1++
		}
	}
	if total != 100 {
		t.Errorf("grid cells cover %d points", total)
	}
	if inR1 != 3 {
		t.Errorf("cells in r1 = %d, want 3", inR1)
	}
}

func TestGridCapSkipsMaterialization(t *testing.T) {
	s := testSpace2D()
	r1 := blockOf(t, s, map[int]value.IntervalSet{0: value.NewIntervalSet(value.Ival(2, 5))})
	g := Grid(s, []Block{r1}, 1)
	if g.Materialized || g.Cells != nil || g.VarCount != 3 {
		t.Errorf("capped grid = %+v", g)
	}
}

// TestGridRefinesPartition: grid never has fewer variables than the region
// partition (the paper's comparison direction).
func TestGridRefinesPartition(t *testing.T) {
	s := testSpace2D()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		regions := randRegions(r, 1+r.Intn(5))
		atoms := Partition(s, regions)
		g := Grid(s, regions, 0)
		return g.VarCount >= int64(len(atoms))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSpaceAxisOf(t *testing.T) {
	s := testSpace2D()
	if s.AxisOf(1) != 1 || s.AxisOf(7) != -1 {
		t.Error("AxisOf misbehaves")
	}
	if s.Dims() != 2 {
		t.Error("Dims misbehaves")
	}
}

func TestBlockUnionOps(t *testing.T) {
	s := testSpace2D()
	a := blockOf(t, s, map[int]value.IntervalSet{0: value.NewIntervalSet(value.Ival(0, 5))})
	u := BlockUnion{a}
	o := blockOf(t, s, map[int]value.IntervalSet{0: value.NewIntervalSet(value.Ival(3, 7))})
	if got := u.IntersectBlock(o).Points(); got != 2*10 {
		t.Errorf("IntersectBlock points = %d", got)
	}
	if got := u.SubtractBlock(o).Points(); got != 3*10 {
		t.Errorf("SubtractBlock points = %d", got)
	}
	if !BlockUnion(nil).Empty() {
		t.Error("nil union should be empty")
	}
	if u.Contains([]int64{4, 4}) != true || u.Contains([]int64{6, 4}) != false {
		t.Error("union Contains misbehaves")
	}
}

// TestQuickSignatureMatchesGeometric: the signature DP and the geometric
// refinement are two implementations of the same definition — they must
// produce identical membership-signature sets, and the DP's representative
// cells must lie inside atoms with exactly that membership.
func TestQuickSignatureMatchesGeometric(t *testing.T) {
	s := testSpace2D()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		regions := randRegions(r, 1+r.Intn(5))
		geo := Partition(s, regions)
		sig := SignaturePartition(s, regions)
		if len(geo) != len(sig) {
			return false
		}
		sigKey := func(members []int) string {
			out := ""
			for _, m := range members {
				out += string(rune('a'+m)) + ","
			}
			return out
		}
		geoSet := map[string]bool{}
		for _, a := range geo {
			geoSet[sigKey(a.Members)] = true
		}
		for _, a := range sig {
			if !geoSet[sigKey(a.Members)] {
				return false
			}
			// The representative cell's low corner realizes the signature.
			pt := make([]int64, len(a.Rep))
			for i, iv := range a.Rep {
				pt[i] = iv.Lo
			}
			for ri, reg := range regions {
				if reg.Contains(pt) != a.In(ri) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSignaturePartitionZeroDims(t *testing.T) {
	s := &Space{Table: "z"}
	atoms := SignaturePartition(s, nil)
	if len(atoms) != 1 || len(atoms[0].Members) != 0 {
		t.Errorf("zero-dim partition = %+v", atoms)
	}
}
