// Package region implements Hydra's central algorithmic contribution: the
// region-partitioning of a relation's attribute space into the minimal set
// of LP variables, plus the DataSynth grid-partitioning baseline it is
// evaluated against.
//
// A relation's constraint space is spanned by the columns any workload
// constraint touches (non-key attributes and foreign-key columns mapped to
// the referenced table's primary-key index domain). Every constraint region
// is a product region: the cross product of one integer interval set per
// axis — range/IN predicates give interval sets directly, and foreign-key
// terms resolve to primary-key interval sets through deterministic
// alignment. Blocks of the partition are likewise product regions, which is
// the representation that keeps refinement tractable: intersecting two
// blocks is per-axis work, and subtracting one from another yields at most
// one block per axis instead of a cross-product explosion of boxes.
//
// Partition refines the space into the non-empty atoms of the Boolean
// algebra the constraint regions generate: by construction the minimum
// number of variables such that every constraint region is an exact union
// of variables — the optimality property claimed in the paper.
package region

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/schema"
	"repro/internal/value"
)

// Space fixes the axes of one relation's constraint space.
type Space struct {
	Table   string
	Cols    []int // table column indexes, ascending
	Domains []value.Interval
}

// NewSpace builds a space over the given column indexes of a table.
func NewSpace(t *schema.Table, cols []int) *Space {
	s := &Space{Table: t.Name, Cols: cols}
	for _, c := range cols {
		s.Domains = append(s.Domains, t.Columns[c].Domain())
	}
	return s
}

// Dims returns the dimensionality of the space.
func (s *Space) Dims() int { return len(s.Cols) }

// AxisOf returns the axis index of a table column, or -1.
func (s *Space) AxisOf(col int) int {
	for i, c := range s.Cols {
		if c == col {
			return i
		}
	}
	return -1
}

// Full returns the block covering the whole space.
func (s *Space) Full() Block {
	b := make(Block, len(s.Domains))
	for i, d := range s.Domains {
		b[i] = value.NewIntervalSet(d)
	}
	return b
}

// Block is a product region: one canonical interval set per axis, denoting
// the cross product of the sets. A zero-dimensional block is the single
// empty tuple and is non-empty.
type Block []value.IntervalSet

// Empty reports whether the block covers no points.
func (b Block) Empty() bool {
	for _, s := range b {
		if s.Empty() {
			return true
		}
	}
	return false
}

// Clone returns a deep copy.
func (b Block) Clone() Block {
	out := make(Block, len(b))
	for i, s := range b {
		out[i] = s.Clone()
	}
	return out
}

// Intersect returns the per-axis intersection.
func (b Block) Intersect(o Block) Block {
	out := make(Block, len(b))
	for i := range b {
		out[i] = b[i].Intersect(o[i])
	}
	return out
}

// Contains reports whether the point (one code per axis) lies in the block.
func (b Block) Contains(pt []int64) bool {
	for i, s := range b {
		if !s.Contains(pt[i]) {
			return false
		}
	}
	return true
}

// Points returns the number of integer points in the block, saturating at
// math.MaxInt64 on overflow.
func (b Block) Points() int64 {
	n := int64(1)
	for _, s := range b {
		l := s.Len()
		if l == 0 {
			return 0
		}
		if n > math.MaxInt64/l {
			return math.MaxInt64
		}
		n *= l
	}
	return n
}

// Subtract returns b minus o as at most len(b) disjoint blocks, using the
// axis sweep
//
//	b ∖ o = ⋃_a  (b₁∩o₁) × … × (b_{a-1}∩o_{a-1}) × (b_a ∖ o_a) × b_{a+1} × … × b_d .
func (b Block) Subtract(o Block) []Block {
	x := b.Intersect(o)
	if x.Empty() {
		return []Block{b.Clone()}
	}
	var out []Block
	cur := b.Clone()
	for a := range b {
		rest := cur[a].Subtract(o[a])
		if !rest.Empty() {
			piece := cur.Clone()
			piece[a] = rest
			out = append(out, piece)
		}
		cur[a] = x[a]
	}
	return out
}

// String renders the block as a cross product of interval sets.
func (b Block) String() string {
	parts := make([]string, len(b))
	for i, s := range b {
		parts[i] = s.String()
	}
	return strings.Join(parts, "×")
}

// BlockUnion is a set of pairwise-disjoint blocks.
type BlockUnion []Block

// Empty reports whether the union covers no points.
func (u BlockUnion) Empty() bool {
	for _, b := range u {
		if !b.Empty() {
			return false
		}
	}
	return true
}

// Points returns the total point count, saturating at math.MaxInt64.
func (u BlockUnion) Points() int64 {
	var n int64
	for _, b := range u {
		p := b.Points()
		if n > math.MaxInt64-p {
			return math.MaxInt64
		}
		n += p
	}
	return n
}

// Contains reports whether the point lies in any block.
func (u BlockUnion) Contains(pt []int64) bool {
	for _, b := range u {
		if b.Contains(pt) {
			return true
		}
	}
	return false
}

// IntersectBlock returns the union's intersection with a single block.
func (u BlockUnion) IntersectBlock(o Block) BlockUnion {
	var out BlockUnion
	for _, b := range u {
		x := b.Intersect(o)
		if !x.Empty() {
			out = append(out, x)
		}
	}
	return out
}

// SubtractBlock returns the union minus a single block.
func (u BlockUnion) SubtractBlock(o Block) BlockUnion {
	var out BlockUnion
	for _, b := range u {
		out = append(out, b.Subtract(o)...)
	}
	return out
}

// BlockFromSets builds the product region over the space from per-column
// interval sets; axes absent from the map span their full domain. It
// returns an empty (nil) block when some set is empty.
func BlockFromSets(s *Space, sets map[int]value.IntervalSet) (Block, error) {
	b := make(Block, s.Dims())
	for a := range b {
		b[a] = value.NewIntervalSet(s.Domains[a])
	}
	for col, set := range sets {
		a := s.AxisOf(col)
		if a < 0 {
			return nil, fmt.Errorf("region: column %d not an axis of space %s", col, s.Table)
		}
		b[a] = set.Intersect(b[a])
	}
	return b, nil
}
