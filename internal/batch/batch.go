// Package batch provides the fixed-capacity row batch that Hydra's
// generation and execution pipelines move tuples in. Producing and
// consuming rows a batch at a time amortizes per-row interface calls and
// bounds checks across the whole pipeline: the generator expands a summary
// row's Count tuples in one tight loop, and every engine operator accounts
// cardinalities once per batch instead of once per row.
//
// A Batch is row-major: the coded values of row i occupy the contiguous
// slice data[i*cols : (i+1)*cols]. Row-major layout keeps single rows
// addressable as []int64, so batch operators share predicate and decode
// code with the row-at-a-time path.
package batch

// DefaultCap is the default batch capacity in rows. 1024 rows of a
// handful of int64 columns keeps a batch comfortably inside the L2 cache
// while amortizing per-batch overhead to noise.
const DefaultCap = 1024

// Batch is a reusable, fixed-capacity buffer of coded rows. The zero value
// is not usable; construct with New.
type Batch struct {
	cols    int
	capRows int
	data    []int64 // row-major; len = Len()*cols
}

// New returns an empty batch for rows of the given width. capRows <= 0
// selects DefaultCap.
func New(cols, capRows int) *Batch {
	if capRows <= 0 {
		capRows = DefaultCap
	}
	return &Batch{cols: cols, capRows: capRows, data: make([]int64, 0, cols*capRows)}
}

// Cols returns the row width.
func (b *Batch) Cols() int { return b.cols }

// Cap returns the batch capacity in rows.
func (b *Batch) Cap() int { return b.capRows }

// Len returns the number of rows currently in the batch.
func (b *Batch) Len() int {
	if b.cols == 0 {
		return 0
	}
	return len(b.data) / b.cols
}

// Full reports whether the batch has reached capacity.
func (b *Batch) Full() bool { return len(b.data) >= b.capRows*b.cols }

// Reset empties the batch, retaining its storage.
func (b *Batch) Reset() { b.data = b.data[:0] }

// Row returns row i as a slice aliasing the batch's storage. The slice is
// valid until the batch is Reset or Truncated below i.
func (b *Batch) Row(i int) []int64 {
	return b.data[i*b.cols : (i+1)*b.cols : (i+1)*b.cols]
}

// Append extends the batch by one row and returns that row's storage. The
// returned slice may hold stale values; the caller must overwrite every
// column. Append panics if the batch is full.
func (b *Batch) Append() []int64 {
	if b.Full() {
		panic("batch: Append on full batch")
	}
	n := len(b.data)
	b.data = b.data[: n+b.cols : cap(b.data)]
	return b.data[n : n+b.cols : n+b.cols]
}

// Extend grows the batch by k rows and returns their flat storage
// (k*Cols values, row-major). Like Append, the storage may hold stale
// values. Extend panics if k rows do not fit.
func (b *Batch) Extend(k int) []int64 {
	n := len(b.data)
	m := n + k*b.cols
	if m > b.capRows*b.cols {
		panic("batch: Extend beyond capacity")
	}
	b.data = b.data[:m:cap(b.data)]
	return b.data[n:m:m]
}

// Truncate shortens the batch to n rows. It panics if n exceeds Len.
func (b *Batch) Truncate(n int) {
	if n*b.cols > len(b.data) {
		panic("batch: Truncate beyond length")
	}
	b.data = b.data[: n*b.cols : cap(b.data)]
}

// Data returns the batch's flat row-major storage (Len()*Cols() values).
func (b *Batch) Data() []int64 { return b.data }

// Source yields coded rows a batch at a time. NextBatch resets dst, fills
// it with up to dst.Cap() rows, and reports whether it produced any; once
// it returns false the source is exhausted. dst must have been constructed
// with the source's column width.
type Source interface {
	NextBatch(dst *Batch) bool
}
