package batch

import "testing"

func TestAppendRowLen(t *testing.T) {
	b := New(3, 4)
	if b.Cols() != 3 || b.Cap() != 4 || b.Len() != 0 || b.Full() {
		t.Fatalf("fresh batch: cols=%d cap=%d len=%d full=%v", b.Cols(), b.Cap(), b.Len(), b.Full())
	}
	for i := 0; i < 4; i++ {
		row := b.Append()
		if len(row) != 3 {
			t.Fatalf("Append row width %d, want 3", len(row))
		}
		for j := range row {
			row[j] = int64(10*i + j)
		}
	}
	if !b.Full() || b.Len() != 4 {
		t.Fatalf("after 4 appends: len=%d full=%v", b.Len(), b.Full())
	}
	for i := 0; i < 4; i++ {
		row := b.Row(i)
		for j, v := range row {
			if v != int64(10*i+j) {
				t.Fatalf("Row(%d)[%d] = %d, want %d", i, j, v, 10*i+j)
			}
		}
	}
}

func TestAppendFullPanics(t *testing.T) {
	b := New(2, 1)
	b.Append()
	defer func() {
		if recover() == nil {
			t.Fatal("Append on full batch did not panic")
		}
	}()
	b.Append()
}

func TestExtend(t *testing.T) {
	b := New(2, 8)
	flat := b.Extend(3)
	if len(flat) != 6 {
		t.Fatalf("Extend(3) flat len %d, want 6", len(flat))
	}
	for i := range flat {
		flat[i] = int64(i)
	}
	if b.Len() != 3 {
		t.Fatalf("len after Extend = %d, want 3", b.Len())
	}
	if got := b.Row(2); got[0] != 4 || got[1] != 5 {
		t.Fatalf("Row(2) = %v, want [4 5]", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Extend beyond capacity did not panic")
		}
	}()
	b.Extend(6)
}

func TestResetTruncateReuse(t *testing.T) {
	b := New(2, 4)
	for i := 0; i < 3; i++ {
		row := b.Append()
		row[0], row[1] = int64(i), int64(i)
	}
	b.Truncate(1)
	if b.Len() != 1 || b.Row(0)[0] != 0 {
		t.Fatalf("after Truncate(1): len=%d row0=%v", b.Len(), b.Row(0))
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("after Reset: len=%d", b.Len())
	}
	// Storage is retained: appending again must not allocate a larger backing.
	if got := cap(b.data); got != 8 {
		t.Fatalf("backing cap changed to %d", got)
	}
}

func TestRowAliasingIsBounded(t *testing.T) {
	b := New(2, 4)
	b.Append()
	b.Append()
	r0 := b.Row(0)
	// Writing past a row's width must not be possible via append on the
	// returned slice (full slice expressions cap the row).
	if cap(r0) != 2 {
		t.Fatalf("row slice cap = %d, want 2", cap(r0))
	}
}

func TestDefaultCap(t *testing.T) {
	b := New(1, 0)
	if b.Cap() != DefaultCap {
		t.Fatalf("Cap = %d, want DefaultCap %d", b.Cap(), DefaultCap)
	}
}
