package batch

import (
	"reflect"
	"testing"
)

func TestColBatchPopulation(t *testing.T) {
	b := NewCol(5, 8, []int{1, 3})
	if b.Width() != 5 || b.Cap() != 8 || b.Len() != 0 || b.Live() != 0 {
		t.Fatalf("fresh batch: width=%d cap=%d len=%d live=%d", b.Width(), b.Cap(), b.Len(), b.Live())
	}
	for c := 0; c < 5; c++ {
		want := c == 1 || c == 3
		if b.Populated(c) != want {
			t.Fatalf("Populated(%d) = %v, want %v", c, b.Populated(c), want)
		}
		if (b.Col(c) != nil) != want {
			t.Fatalf("Col(%d) nil-ness wrong", c)
		}
	}
	if len(b.Col(1)) != 8 {
		t.Fatalf("populated column length = %d, want cap 8", len(b.Col(1)))
	}
}

func TestColBatchSelection(t *testing.T) {
	b := NewCol(2, 8, []int{0, 1})
	b.SetLen(4)
	for i := 0; i < 4; i++ {
		b.Col(0)[i] = int64(10 + i)
		b.Col(1)[i] = int64(20 + i)
	}
	if b.Live() != 4 || b.Sel() != nil {
		t.Fatalf("dense batch: live=%d sel=%v", b.Live(), b.Sel())
	}
	sel := append(b.SelBuf(), 1, 3)
	b.SetSel(sel)
	if b.Live() != 2 || b.Len() != 4 {
		t.Fatalf("after sel: live=%d len=%d", b.Live(), b.Len())
	}
	row := make([]int64, 2)
	b.LiveRow(0, row)
	if !reflect.DeepEqual(row, []int64{11, 21}) {
		t.Fatalf("live row 0 = %v", row)
	}
	b.LiveRow(1, row)
	if !reflect.DeepEqual(row, []int64{13, 23}) {
		t.Fatalf("live row 1 = %v", row)
	}
	// SetLen re-densifies; Reset empties but keeps storage.
	b.SetLen(3)
	if b.Sel() != nil || b.Live() != 3 {
		t.Fatalf("SetLen did not clear selection")
	}
	b.Reset()
	if b.Len() != 0 || b.Live() != 0 || b.Sel() != nil {
		t.Fatalf("Reset left state behind")
	}
}

func TestColBatchDefaultCap(t *testing.T) {
	b := NewCol(1, 0, []int{0})
	if b.Cap() != DefaultCap {
		t.Fatalf("cap = %d, want DefaultCap", b.Cap())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetLen beyond capacity did not panic")
		}
	}()
	b.SetLen(DefaultCap + 1)
}
