package batch

// ColBatch is the column-major counterpart of Batch: the values of column c
// occupy one contiguous []int64, and a reusable selection vector marks which
// rows are live. The layout is what makes late materialization possible —
// an operator touches only the columns it was asked to populate, a filter
// flips selection indices instead of moving row data, and unit-stride
// column fills replace the strided walks of the row-major path.
//
// A batch is constructed for a fixed set of populated columns; the other
// columns carry no storage (Col returns nil), so a scan projected to three
// of twenty-plus columns never allocates — let alone writes — the rest.
type ColBatch struct {
	width   int
	capRows int
	n       int       // physical rows
	cols    [][]int64 // len == width; nil for unpopulated columns
	sel     []int32   // live rows, ascending; nil means all n rows are live
	selBuf  []int32   // reusable selection storage handed out by SelBuf
}

// NewCol returns an empty column batch of the given logical row width.
// capRows <= 0 selects DefaultCap. Only the listed columns receive storage;
// populated indices must be in [0, width) and are deduplicated by the
// caller's contract (duplicates are harmless but waste nothing here).
func NewCol(width, capRows int, populated []int) *ColBatch {
	if capRows <= 0 {
		capRows = DefaultCap
	}
	b := &ColBatch{width: width, capRows: capRows, cols: make([][]int64, width)}
	for _, c := range populated {
		if b.cols[c] == nil {
			b.cols[c] = make([]int64, capRows)
		}
	}
	return b
}

// Width returns the logical row width.
func (b *ColBatch) Width() int { return b.width }

// Cap returns the batch capacity in rows.
func (b *ColBatch) Cap() int { return b.capRows }

// Len returns the number of physical rows in the batch (live or not).
func (b *ColBatch) Len() int { return b.n }

// SetLen sets the physical row count (the writer's contract: fill the
// populated columns' first n entries). It panics beyond capacity and leaves
// the batch dense (no selection).
func (b *ColBatch) SetLen(n int) {
	if n > b.capRows {
		panic("batch: SetLen beyond capacity")
	}
	b.n = n
	b.sel = nil
}

// Live returns the number of live rows: len(Sel()) under a selection,
// otherwise every physical row.
func (b *ColBatch) Live() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return b.n
}

// Sel returns the selection vector — ascending physical row indices of the
// live rows — or nil when the batch is dense (all rows live).
func (b *ColBatch) Sel() []int32 { return b.sel }

// SetSel installs a selection vector. The slice is retained, not copied;
// filters pass a prefix of SelBuf.
func (b *ColBatch) SetSel(sel []int32) { b.sel = sel }

// SelBuf returns the batch's reusable selection storage (capacity Cap,
// length 0). A filter appends surviving row indices to it and installs the
// result with SetSel. Refining an existing selection in place is safe: the
// write index never passes the read index.
func (b *ColBatch) SelBuf() []int32 {
	if b.selBuf == nil {
		b.selBuf = make([]int32, 0, b.capRows)
	}
	return b.selBuf[:0]
}

// Col returns column c's storage (length Cap; entries [0, Len) are
// meaningful), or nil when c is unpopulated.
func (b *ColBatch) Col(c int) []int64 { return b.cols[c] }

// Cols exposes the per-column storage slice, indexed by column position;
// unpopulated columns are nil. Hot loops (predicate vectorization) index it
// directly.
func (b *ColBatch) Cols() [][]int64 { return b.cols }

// Populated reports whether column c carries storage.
func (b *ColBatch) Populated(c int) bool { return b.cols[c] != nil }

// Reset empties the batch: zero physical rows, dense selection, storage
// retained.
func (b *ColBatch) Reset() {
	b.n = 0
	b.sel = nil
}

// LiveRow writes the i-th live row (selection order) into dst, which must
// have length Width. Every column must be populated — this is the
// materialization step for sampled output rows.
func (b *ColBatch) LiveRow(i int, dst []int64) {
	r := i
	if b.sel != nil {
		r = int(b.sel[i])
	}
	for c, col := range b.cols {
		dst[c] = col[r]
	}
}

// ColSource yields column batches. NextColBatch resets dst, fills exactly
// the columns in cols (which must all be populated in dst), sets the
// physical length, and reports whether any rows were produced; the batch is
// left dense. Once it returns false the source is exhausted.
//
// The projection is the caller's required-column set: implementations must
// never touch columns outside it. The generator's Stream and the engine's
// stored-relation cursor implement ColProjector natively; row-major sources
// are adapted by transposition.
type ColProjector interface {
	NextColBatch(dst *ColBatch, cols []int) bool
}
