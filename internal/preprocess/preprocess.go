// Package preprocess decomposes a workload of annotated query plans into
// independent per-relation cardinality constraints — the role of the
// DataSynth Preprocessor box in the Hydra architecture (Figure 2 of the
// paper). Independence across relations is what makes the downstream LP
// model tractable.
//
// A constraint's region is a RegionSpec: a conjunction of range conditions
// on the relation's own attributes plus foreign-key terms "fk ∈ π(spec')",
// where spec' is a region of the referenced table and π is the set of
// primary-key values of the rows in that region. The π sets are not known
// at preprocessing time — they materialize during summary construction via
// deterministic alignment, which is why relations are later processed in
// foreign-key topological order.
//
// Supported join topology (matching the paper's workloads): left-deep plans
// whose base (leftmost) table reaches every joined table through foreign-key
// edges — stars and snowflakes. Each k-th join edge yields a constraint on
// the base table whose region nests the dimension regions joined so far.
package preprocess

import (
	"fmt"
	"strings"

	"repro/internal/aqp"
	"repro/internal/engine"
	"repro/internal/pred"
	"repro/internal/schema"
	"repro/internal/sqlkit"
)

// FKTerm constrains a foreign-key column to the primary keys of the rows of
// Ref's table that fall in Ref.
type FKTerm struct {
	FKCol    int // column index in the owning table
	RefTable string
	Ref      *RegionSpec
}

// RegionSpec describes a constraint region of one table: own-attribute
// ranges plus foreign-key terms. Specs form a DAG mirroring the schema's
// foreign-key graph.
type RegionSpec struct {
	Table string
	Own   *pred.Region
	Terms []FKTerm
}

// Key returns a canonical identity for the spec's geometry, including the
// geometry of every referenced spec.
func (s *RegionSpec) Key() string {
	var sb strings.Builder
	sb.WriteString(s.Own.Key())
	for _, t := range s.Terms {
		fmt.Fprintf(&sb, "|fk%d→(%s)", t.FKCol, t.Ref.Key())
	}
	return sb.String()
}

// clone returns a shallow copy with its own Terms slice.
func (s *RegionSpec) clone() *RegionSpec {
	out := &RegionSpec{Table: s.Table, Own: s.Own}
	out.Terms = append([]FKTerm(nil), s.Terms...)
	return out
}

// Constraint requires the table to hold exactly Card rows inside Spec.
type Constraint struct {
	Table string
	Spec  *RegionSpec
	Card  int64
	Label string
}

// Workload is the preprocessed form of an AQP workload.
type Workload struct {
	// Constraints lists cardinality constraints per table.
	Constraints map[string][]*Constraint
	// Regions registers, per table, every spec that participates in
	// partitioning (constraint regions and foreign-key-referenced
	// regions), keyed by Key().
	Regions map[string]map[string]*RegionSpec
	// Referenced marks spec keys whose primary-key set is consumed by a
	// foreign-key term downstream; summary construction biases row
	// placement toward keeping these regions populated.
	Referenced map[string]map[string]bool
	// Queries and Edges count processed inputs for reporting.
	Queries int
	Edges   int
}

// NewWorkload returns an empty workload.
func NewWorkload() *Workload {
	return &Workload{
		Constraints: make(map[string][]*Constraint),
		Regions:     make(map[string]map[string]*RegionSpec),
		Referenced:  make(map[string]map[string]bool),
	}
}

// Extract preprocesses the workload: it re-derives each query's canonical
// plan (deterministic construction guarantees the same shape the client
// annotated), walks plan and AQP in lockstep, and emits per-relation
// constraints.
func Extract(s *schema.Schema, workload []*aqp.AQP) (*Workload, error) {
	w := NewWorkload()
	for qi, a := range workload {
		if err := w.addQuery(s, qi, a); err != nil {
			return nil, fmt.Errorf("preprocess: query %d (%s): %w", qi, a.SQL, err)
		}
		w.Queries++
	}
	return w, nil
}

func (w *Workload) addQuery(s *schema.Schema, qi int, a *aqp.AQP) error {
	q, err := sqlkit.Parse(a.SQL)
	if err != nil {
		return err
	}
	plan, err := engine.BuildPlan(s, q)
	if err != nil {
		return err
	}
	if err := a.Plan.Validate(); err != nil {
		return err
	}

	// Strip the aggregate, then unzip the left-deep join spine.
	pn, an := plan.Root, a.Plan
	if pn.Op == engine.OpAggregate {
		if an.Op != "AGGREGATE" || len(an.Children) != 1 {
			return fmt.Errorf("plan/AQP shape mismatch at aggregate")
		}
		pn, an = pn.Children[0], an.Children[0]
	}

	type joinStep struct {
		pn *engine.PlanNode
		an *aqp.Node
	}
	var joins []joinStep
	for pn.Op == engine.OpHashJoin {
		if an.Op != "HASH JOIN" || len(an.Children) != 2 {
			return fmt.Errorf("plan/AQP shape mismatch at join")
		}
		joins = append(joins, joinStep{pn, an})
		pn, an = pn.Children[0], an.Children[0]
	}
	// joins is outermost-first; process innermost-first.
	for i, j := 0, len(joins)-1; i < j; i, j = i+1, j-1 {
		joins[i], joins[j] = joins[j], joins[i]
	}

	base := q.Tables[0]
	label := func(desc string) string { return fmt.Sprintf("Q%d/%s", qi, desc) }

	// tableSpec tracks each FROM table's current region spec.
	tableSpec := make(map[string]*RegionSpec, len(q.Tables))
	leafCard := make(map[string]int64)

	// Leaves: the base leaf is pn/an; build leaves hang off the joins.
	if err := w.addLeaf(s, q, pn, an, tableSpec, leafCard, label); err != nil {
		return err
	}
	for _, js := range joins {
		if err := w.addLeaf(s, q, js.pn.Children[1], js.an.Children[1], tableSpec, leafCard, label); err != nil {
			return err
		}
	}

	// Join edges: each extends the fk owner's spec and constrains the base.
	for _, js := range joins {
		fkTable, fkCol, pkTable, err := joinSides(s, q, js.pn)
		if err != nil {
			return err
		}
		owner := tableSpec[fkTable]
		if owner == nil {
			return fmt.Errorf("internal: no spec for table %s", fkTable)
		}
		refSpec := tableSpec[pkTable]
		if refSpec == nil {
			return fmt.Errorf("internal: no spec for table %s", pkTable)
		}
		extended := owner.clone()
		extended.Terms = append(extended.Terms, FKTerm{FKCol: fkCol, RefTable: pkTable, Ref: refSpec})
		w.replaceSpec(tableSpec, owner, extended)

		baseSpec := tableSpec[base]
		if fkTable != base && !reaches(baseSpec, extended) {
			return fmt.Errorf("unsupported join topology: %s does not reach %s through foreign keys", base, fkTable)
		}
		w.emit(&Constraint{
			Table: base,
			Spec:  baseSpec,
			Card:  js.an.Card,
			Label: label("JOIN " + js.pn.JoinSQL),
		})
		w.Edges++
	}

	// Register final specs (covers unfiltered dimensions referenced only
	// through joins).
	for _, spec := range tableSpec {
		w.register(spec, false)
	}
	return nil
}

// addLeaf processes a scan or filter(scan) leaf: seeds the table's spec and
// emits the filter-edge constraint.
func (w *Workload) addLeaf(s *schema.Schema, q *sqlkit.Query, pn *engine.PlanNode, an *aqp.Node, tableSpec map[string]*RegionSpec, leafCard map[string]int64, label func(string) string) error {
	var table string
	var own *pred.Region
	var card int64
	hasFilter := false
	switch pn.Op {
	case engine.OpScan:
		if an.Op != "SCAN" {
			return fmt.Errorf("plan/AQP shape mismatch at scan of %s", pn.Table)
		}
		table = pn.Table
		var err error
		own, err = pred.Compile(s.Table(table), nil)
		if err != nil {
			return err
		}
	case engine.OpFilter:
		if an.Op != "FILTER" || len(an.Children) != 1 || an.Children[0].Op != "SCAN" {
			return fmt.Errorf("plan/AQP shape mismatch at filter")
		}
		table = pn.Pred.Table
		own = pn.Pred
		card = an.Card
		hasFilter = true
	default:
		return fmt.Errorf("unexpected leaf operator %v", pn.Op)
	}
	spec := &RegionSpec{Table: table, Own: own}
	tableSpec[table] = spec
	if hasFilter {
		leafCard[table] = card
		w.emit(&Constraint{Table: table, Spec: spec, Card: card, Label: label("FILTER " + table)})
		w.Edges++
	}
	return nil
}

// joinSides resolves which side of a join owns the foreign key. Exactly one
// side must be a foreign key referencing the other side's primary key.
func joinSides(s *schema.Schema, q *sqlkit.Query, pn *engine.PlanNode) (fkTable string, fkCol int, pkTable string, err error) {
	lref := pn.Cols[pn.LeftKey] // column in probe output
	rref := pn.Children[1].Cols[pn.RightKey]
	lt, rt := s.Table(lref.Table), s.Table(rref.Table)
	lc, rc := lt.Columns[lref.Col], rt.Columns[rref.Col]
	switch {
	case lc.Ref != nil && lc.Ref.Table == rt.Name && lc.Ref.Column == rc.Name:
		return lt.Name, lref.Col, rt.Name, nil
	case rc.Ref != nil && rc.Ref.Table == lt.Name && rc.Ref.Column == lc.Name:
		return rt.Name, rref.Col, lt.Name, nil
	default:
		return "", 0, "", fmt.Errorf("join %s is not a foreign-key join", pn.JoinSQL)
	}
}

// replaceSpec swaps old for new in the table-spec map, rebuilding any spec
// that references old (directly or transitively) so the pointer graph stays
// consistent.
func (w *Workload) replaceSpec(tableSpec map[string]*RegionSpec, old, new *RegionSpec) {
	for t, s := range tableSpec {
		tableSpec[t] = substitute(s, old, new)
	}
}

// substitute returns s with every reference to old replaced by new
// (returning s unchanged when it does not reach old).
func substitute(s, old, new *RegionSpec) *RegionSpec {
	if s == old {
		return new
	}
	changed := false
	terms := make([]FKTerm, len(s.Terms))
	for i, t := range s.Terms {
		nt := t
		nt.Ref = substitute(t.Ref, old, new)
		if nt.Ref != t.Ref {
			changed = true
		}
		terms[i] = nt
	}
	if !changed {
		return s
	}
	return &RegionSpec{Table: s.Table, Own: s.Own, Terms: terms}
}

// reaches reports whether spec a references spec b transitively.
func reaches(a, b *RegionSpec) bool {
	if a == b {
		return true
	}
	for _, t := range a.Terms {
		if reaches(t.Ref, b) {
			return true
		}
	}
	return false
}

// emit records a constraint, deduplicating exact repeats, and registers its
// region graph.
func (w *Workload) emit(c *Constraint) {
	key := c.Spec.Key()
	for _, prev := range w.Constraints[c.Table] {
		if prev.Spec.Key() == key && prev.Card == c.Card {
			return // identical constraint from another query
		}
	}
	w.Constraints[c.Table] = append(w.Constraints[c.Table], c)
	w.register(c.Spec, false)
}

// register adds the spec (and, recursively, every referenced spec) to the
// region registry. referenced marks specs consumed by fk terms.
func (w *Workload) register(s *RegionSpec, referenced bool) {
	m := w.Regions[s.Table]
	if m == nil {
		m = make(map[string]*RegionSpec)
		w.Regions[s.Table] = m
	}
	key := s.Key()
	if _, ok := m[key]; !ok {
		m[key] = s
	}
	if referenced {
		r := w.Referenced[s.Table]
		if r == nil {
			r = make(map[string]bool)
			w.Referenced[s.Table] = r
		}
		r[key] = true
	}
	for _, t := range s.Terms {
		w.register(t.Ref, true)
	}
}
