package preprocess

import (
	"strings"
	"testing"

	"repro/internal/aqp"
	"repro/internal/engine"
	"repro/internal/sqlkit"
	"repro/internal/toy"
)

func captureToy(t *testing.T, queries []string) (*engine.Database, []*aqp.AQP) {
	t.Helper()
	db, err := toy.Database(1)
	if err != nil {
		t.Fatal(err)
	}
	var out []*aqp.AQP
	for _, sql := range queries {
		q, err := sqlkit.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := engine.BuildPlan(db.Schema, q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.Execute(db, plan, engine.ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, &aqp.AQP{SQL: sql, Plan: aqp.FromExec(res.Root)})
	}
	return db, out
}

func TestExtractSingleTable(t *testing.T) {
	db, aqps := captureToy(t, []string{"SELECT COUNT(*) FROM s WHERE a >= 20 AND a < 60"})
	w, err := Extract(db.Schema, aqps)
	if err != nil {
		t.Fatal(err)
	}
	cons := w.Constraints["s"]
	if len(cons) != 1 {
		t.Fatalf("constraints on s = %d", len(cons))
	}
	if cons[0].Card != aqps[0].Plan.Children[0].Card {
		t.Errorf("card = %d, want filter card %d", cons[0].Card, aqps[0].Plan.Children[0].Card)
	}
	if len(cons[0].Spec.Terms) != 0 {
		t.Error("single-table constraint should have no fk terms")
	}
}

func TestExtractStarJoin(t *testing.T) {
	db, aqps := captureToy(t, []string{toy.Query})
	w, err := Extract(db.Schema, aqps)
	if err != nil {
		t.Fatal(err)
	}
	// Two join levels -> two constraints on r; one filter constraint each
	// on s and t.
	if got := len(w.Constraints["r"]); got != 2 {
		t.Errorf("constraints on r = %d, want 2", got)
	}
	if got := len(w.Constraints["s"]); got != 1 {
		t.Errorf("constraints on s = %d, want 1", got)
	}
	// The deepest r constraint references both dimensions.
	var deepest *Constraint
	for _, c := range w.Constraints["r"] {
		if deepest == nil || len(c.Spec.Terms) > len(deepest.Spec.Terms) {
			deepest = c
		}
	}
	if len(deepest.Spec.Terms) != 2 {
		t.Fatalf("deepest r constraint has %d fk terms, want 2", len(deepest.Spec.Terms))
	}
	// Referenced dimension regions are registered and marked.
	if len(w.Regions["s"]) == 0 || len(w.Referenced["s"]) == 0 {
		t.Error("s regions/referenced not registered")
	}
}

func TestExtractDeduplicates(t *testing.T) {
	q := "SELECT COUNT(*) FROM s WHERE a >= 20 AND a < 60"
	db, aqps := captureToy(t, []string{q, q})
	w, err := Extract(db.Schema, aqps)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(w.Constraints["s"]); got != 1 {
		t.Errorf("duplicate constraints kept: %d", got)
	}
	if w.Queries != 2 {
		t.Errorf("queries = %d", w.Queries)
	}
}

func TestExtractRejectsNonFKJoin(t *testing.T) {
	db, _ := captureToy(t, nil)
	// a = b is not a foreign-key join.
	sql := "SELECT COUNT(*) FROM s, t WHERE s.a = t.c"
	q, err := sqlkit.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := engine.BuildPlan(db.Schema, q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Execute(db, plan, engine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Extract(db.Schema, []*aqp.AQP{{SQL: sql, Plan: aqp.FromExec(res.Root)}})
	if err == nil || !strings.Contains(err.Error(), "foreign-key") {
		t.Errorf("non-fk join accepted: %v", err)
	}
}

func TestExtractRejectsBadSQL(t *testing.T) {
	db, _ := captureToy(t, nil)
	_, err := Extract(db.Schema, []*aqp.AQP{{SQL: "not sql", Plan: &aqp.Node{Op: "SCAN", Table: "s"}}})
	if err == nil {
		t.Error("bad SQL accepted")
	}
}

func TestRegionSpecKeyStable(t *testing.T) {
	db, aqps := captureToy(t, []string{toy.Query, toy.Query})
	w, err := Extract(db.Schema, aqps)
	if err != nil {
		t.Fatal(err)
	}
	// Same query twice: the registry must not grow.
	if got := len(w.Regions["r"]); got != 3 { // scan spec + 2 join specs collapse by key
		t.Logf("r regions = %d (informational)", got)
	}
	for table, m := range w.Regions {
		for key, spec := range m {
			if spec.Key() != key {
				t.Errorf("%s: registry key %q != spec key %q", table, key, spec.Key())
			}
		}
	}
}
