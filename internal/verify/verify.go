// Package verify measures volumetric similarity: it re-executes the client
// workload against the regenerated database and compares every operator's
// output cardinality with the client's annotation. Its Report backs the
// demo's "generation quality" graph (percentage of volumetric constraints
// satisfied within a given relative error) and the per-query AQP comparison
// with green originals and red relative errors.
package verify

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/aqp"
	"repro/internal/engine"
	"repro/internal/sqlkit"
)

// DefaultEpsGrid is the relative-error grid of the demo's quality graph.
var DefaultEpsGrid = []float64{0, 0.001, 0.01, 0.05, 0.10, 0.20, 0.50, 1.0}

// CDFPoint is one point of the satisfied-within-ε curve.
type CDFPoint struct {
	Eps      float64
	Fraction float64
}

// QueryResult couples one query with its per-edge comparison.
type QueryResult struct {
	SQL      string
	Expected *aqp.Node
	Actual   *aqp.Node
	Edges    []aqp.EdgeDiff
}

// Report aggregates verification over a workload.
type Report struct {
	Queries []QueryResult
	// Edges flattens every compared edge across queries.
	Edges []aqp.EdgeDiff
}

// Verify executes every workload query against db (stored or dataless) and
// compares observed cardinalities with the AQP annotations. Execution runs
// on the engine's batched path; dataless scans therefore stream generated
// tuples a batch at a time.
func Verify(db *engine.Database, workload []*aqp.AQP) (*Report, error) {
	rep := &Report{}
	for qi, a := range workload {
		q, err := sqlkit.Parse(a.SQL)
		if err != nil {
			return nil, fmt.Errorf("verify: query %d: %w", qi, err)
		}
		plan, err := engine.BuildPlan(db.Schema, q)
		if err != nil {
			return nil, fmt.Errorf("verify: query %d: %w", qi, err)
		}
		// Verification compares full operator trees edge by edge, so the
		// summary-direct fast path (which collapses the tree to one node)
		// and scan pruning (which can absorb a filter operator outright)
		// must stand aside: regeneration is the thing being verified, and
		// the tree must be isomorphic to the client's annotation.
		res, err := engine.Execute(db, plan, engine.ExecOptions{NoSummaryAgg: true, NoScanPrune: true})
		if err != nil {
			return nil, fmt.Errorf("verify: query %d: %w", qi, err)
		}
		actual := aqp.FromExec(res.Root)
		edges, err := aqp.Compare(a.Plan, actual)
		if err != nil {
			return nil, fmt.Errorf("verify: query %d: %w", qi, err)
		}
		rep.Queries = append(rep.Queries, QueryResult{SQL: a.SQL, Expected: a.Plan, Actual: actual, Edges: edges})
		rep.Edges = append(rep.Edges, edges...)
	}
	return rep, nil
}

// SatisfiedWithin returns the fraction of edges whose relative error is at
// most eps.
func (r *Report) SatisfiedWithin(eps float64) float64 {
	if len(r.Edges) == 0 {
		return 1
	}
	n := 0
	for _, e := range r.Edges {
		if e.RelErr <= eps {
			n++
		}
	}
	return float64(n) / float64(len(r.Edges))
}

// CDF evaluates SatisfiedWithin over the grid.
func (r *Report) CDF(grid []float64) []CDFPoint {
	if grid == nil {
		grid = DefaultEpsGrid
	}
	out := make([]CDFPoint, len(grid))
	for i, eps := range grid {
		out[i] = CDFPoint{Eps: eps, Fraction: r.SatisfiedWithin(eps)}
	}
	return out
}

// MaxRelErr returns the largest finite relative error, and whether any edge
// had an infinite error (expected 0, produced >0).
func (r *Report) MaxRelErr() (max float64, hasInf bool) {
	for _, e := range r.Edges {
		if math.IsInf(e.RelErr, 1) {
			hasInf = true
			continue
		}
		if e.RelErr > max {
			max = e.RelErr
		}
	}
	return max, hasInf
}

// MeanRelErr returns the mean of finite relative errors.
func (r *Report) MeanRelErr() float64 {
	var sum float64
	n := 0
	for _, e := range r.Edges {
		if !math.IsInf(e.RelErr, 1) {
			sum += e.RelErr
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WorstEdges returns the k edges with the largest relative error,
// descending (infinite errors first).
func (r *Report) WorstEdges(k int) []aqp.EdgeDiff {
	edges := append([]aqp.EdgeDiff(nil), r.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		ei, ej := edges[i].RelErr, edges[j].RelErr
		ii, ij := math.IsInf(ei, 1), math.IsInf(ej, 1)
		if ii != ij {
			return ii
		}
		if ei != ej {
			return ei > ej
		}
		return edges[i].Path < edges[j].Path
	})
	if k > len(edges) {
		k = len(edges)
	}
	return edges[:k]
}
