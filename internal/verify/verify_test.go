package verify

import (
	"math"
	"testing"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/summary"
	"repro/internal/toy"
)

func toyReport(t *testing.T) *Report {
	t.Helper()
	db, err := toy.Database(3)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := core.CaptureClient(db, toy.Workload(), core.CaptureOptions{SkipStats: true})
	if err != nil {
		t.Fatal(err)
	}
	sum, _, err := core.BuildFromPackage(pkg, summary.DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(core.RegenDatabase(sum, 0), pkg.Workload)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestVerifyToyExact(t *testing.T) {
	rep := toyReport(t)
	if len(rep.Queries) != len(toy.Workload()) {
		t.Fatalf("queries = %d", len(rep.Queries))
	}
	if got := rep.SatisfiedWithin(0); got != 1 {
		t.Errorf("exact satisfaction = %v", got)
	}
	if rep.MeanRelErr() != 0 {
		t.Errorf("mean rel err = %v", rep.MeanRelErr())
	}
	max, hasInf := rep.MaxRelErr()
	if max != 0 || hasInf {
		t.Errorf("max = %v inf = %v", max, hasInf)
	}
}

func TestCDFMonotone(t *testing.T) {
	rep := toyReport(t)
	pts := rep.CDF(nil)
	if len(pts) != len(DefaultEpsGrid) {
		t.Fatalf("cdf points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Fraction < pts[i-1].Fraction {
			t.Error("CDF not monotone")
		}
	}
}

func TestReportAggregates(t *testing.T) {
	rep := &Report{Edges: []aqp.EdgeDiff{
		{Path: "a", Expected: 100, Actual: 100, RelErr: 0},
		{Path: "b", Expected: 100, Actual: 90, RelErr: 0.1},
		{Path: "c", Expected: 0, Actual: 5, RelErr: math.Inf(1)},
	}}
	if got := rep.SatisfiedWithin(0.05); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("SatisfiedWithin = %v", got)
	}
	max, hasInf := rep.MaxRelErr()
	if max != 0.1 || !hasInf {
		t.Errorf("MaxRelErr = %v, %v", max, hasInf)
	}
	if got := rep.MeanRelErr(); math.Abs(got-0.05) > 1e-9 {
		t.Errorf("MeanRelErr = %v", got)
	}
	worst := rep.WorstEdges(2)
	if len(worst) != 2 || worst[0].Path != "c" || worst[1].Path != "b" {
		t.Errorf("WorstEdges = %+v", worst)
	}
	if got := len(rep.WorstEdges(10)); got != 3 {
		t.Errorf("WorstEdges(10) = %d", got)
	}
}

func TestEmptyReport(t *testing.T) {
	rep := &Report{}
	if rep.SatisfiedWithin(0) != 1 {
		t.Error("empty report should be fully satisfied")
	}
	if rep.MeanRelErr() != 0 {
		t.Error("empty mean should be 0")
	}
}

func TestVerifyBadQuery(t *testing.T) {
	db, err := toy.Database(3)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Verify(db, []*aqp.AQP{{SQL: "garbage", Plan: &aqp.Node{Op: "SCAN", Table: "s"}}})
	if err == nil {
		t.Error("bad SQL accepted")
	}
}
