package anonymize

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/summary"
	"repro/internal/tpcds"
	"repro/internal/verify"
)

func tpcdsPackage(t *testing.T) *core.TransferPackage {
	t.Helper()
	s := tpcds.Schema(0.2)
	db, err := tpcds.GenerateDatabase(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := core.CaptureClient(db, tpcds.Workload(25, 9), core.CaptureOptions{SkipStats: true})
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func TestAnonymizeHidesStrings(t *testing.T) {
	pkg := tpcdsPackage(t)
	anon, mapping, err := Anonymize(pkg)
	if err != nil {
		t.Fatal(err)
	}
	// No original dictionary value may appear anywhere in the anonymized
	// schema or workload.
	var originals []string
	for _, tbl := range pkg.Schema.Tables {
		for _, c := range tbl.Columns {
			originals = append(originals, c.Dict...)
		}
	}
	for _, tbl := range anon.Schema.Tables {
		for _, c := range tbl.Columns {
			for _, d := range c.Dict {
				for _, orig := range originals {
					if d == orig {
						t.Fatalf("original dictionary value %q survived in %s.%s", orig, tbl.Name, c.Name)
					}
				}
			}
		}
	}
	var rendered strings.Builder
	for _, a := range anon.Workload {
		rendered.WriteString(a.SQL)
		rendered.WriteString(a.Plan.String()) // includes predicate displays
	}
	blob := rendered.String()
	for _, orig := range originals {
		// Literals appear quoted in SQL; checking the quoted form avoids
		// false positives on substrings of operator names (e.g. "CA" in
		// "SCAN").
		if strings.Contains(blob, "'"+orig+"'") {
			t.Fatalf("original value %q leaked into the workload", orig)
		}
	}
	// The mapping preserves the originals, keyed by table.column.
	if got := mapping.Dicts["item.i_category"]; len(got) == 0 || got[0] != "Books" {
		t.Errorf("mapping = %v", got)
	}
}

func TestAnonymizePreservesVolumetrics(t *testing.T) {
	pkg := tpcdsPackage(t)
	anon, _, err := Anonymize(pkg)
	if err != nil {
		t.Fatal(err)
	}
	// Building from the anonymized package and verifying against its own
	// (anonymized) workload must match building from the original: the
	// rewritten predicates select the same coded sets.
	sumO, _, err := core.BuildFromPackage(pkg, summary.DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	sumA, _, err := core.BuildFromPackage(anon, summary.DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	repO, err := verify.Verify(core.RegenDatabase(sumO, 0), pkg.Workload)
	if err != nil {
		t.Fatal(err)
	}
	repA, err := verify.Verify(core.RegenDatabase(sumA, 0), anon.Workload)
	if err != nil {
		t.Fatal(err)
	}
	if o, a := repO.SatisfiedWithin(0.01), repA.SatisfiedWithin(0.01); o != a {
		t.Errorf("anonymization changed quality: %.3f vs %.3f", o, a)
	}
}

func TestTokenOrdering(t *testing.T) {
	if !(Token(0) < Token(1) && Token(9) < Token(10) && Token(99) < Token(100)) {
		t.Error("tokens are not order-preserving")
	}
	if !(belowAllTokens < Token(0)) {
		t.Error("sentinel does not sort below tokens")
	}
}

func TestMapLiteralNonMembers(t *testing.T) {
	c := &schema.Column{Name: "s", Type: schema.String, Dict: []string{"b", "d", "f"}, DomainLo: 0, DomainHi: 3}
	// "c" sits between ranks 0 and 1.
	// Check through the rewrite path: equality with a non-member must
	// select nothing, and non-member range bounds shift to member ops.
	s := &schema.Schema{Tables: []*schema.Table{{
		Name: "t", RowCount: 1,
		Columns: []*schema.Column{
			{Name: "pk", Type: schema.Int, PrimaryKey: true, DomainLo: 0, DomainHi: 1},
			c,
		},
	}}}
	sql, err := rewriteQuery(s, "SELECT COUNT(*) FROM t WHERE s = 'c'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, belowAllTokens) {
		t.Errorf("non-member equality rewrite = %q", sql)
	}
	sql, err = rewriteQuery(s, "SELECT COUNT(*) FROM t WHERE s <= 'c'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "< '"+Token(1)+"'") {
		t.Errorf("non-member <= rewrite = %q", sql)
	}
}
