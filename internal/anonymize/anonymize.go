// Package anonymize is the client-side anonymization layer the paper's
// architecture allows between capture and transfer: string dictionaries are
// replaced by opaque, order-preserving tokens, and every string literal in
// the workload is rewritten so predicate semantics over the coded domains
// are preserved exactly. Integer codes (dictionary ranks, histograms, AQP
// cardinalities) are untouched — they carry no raw values.
//
// Numeric domains are shipped as-is: Hydra's coded domains already strip
// formatting, and range endpoints are usually workload parameters rather
// than secrets. Deployments needing numeric masking can pre-shift domains
// in the schema before capture.
package anonymize

import (
	"fmt"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/sqlkit"
	"repro/internal/value"
)

// belowAllTokens sorts before every generated token; it is substituted for
// equality tests against strings absent from the dictionary (an always-false
// predicate either way).
const belowAllTokens = "!none"

// Mapping records the original dictionaries so the client can interpret
// vendor-side findings. It never leaves the client site.
type Mapping struct {
	// Dicts maps "table.column" to the original dictionary; index i is
	// the original of token i.
	Dicts map[string][]string `json:"dicts"`
}

// Token returns the anonymized token for dictionary rank i. Tokens are
// zero-padded so lexicographic order equals rank order.
func Token(i int) string { return fmt.Sprintf("s%08d", i) }

// Anonymize returns a new transfer package with anonymized string
// dictionaries and rewritten workload SQL, plus the private mapping.
func Anonymize(pkg *core.TransferPackage) (*core.TransferPackage, *Mapping, error) {
	out := &core.TransferPackage{Schema: pkg.Schema.Clone(), Stats: pkg.Stats}
	m := &Mapping{Dicts: make(map[string][]string)}
	orig := make(map[string]*schema.Column) // table.column -> original column
	for _, t := range pkg.Schema.Tables {
		for _, c := range t.Columns {
			if c.Type == schema.String {
				orig[t.Name+"."+c.Name] = c
			}
		}
	}
	for _, t := range out.Schema.Tables {
		for _, c := range t.Columns {
			if c.Type != schema.String {
				continue
			}
			m.Dicts[t.Name+"."+c.Name] = append([]string(nil), c.Dict...)
			for i := range c.Dict {
				c.Dict[i] = Token(i)
			}
		}
	}
	for qi, a := range pkg.Workload {
		rewritten, err := rewriteQuery(pkg.Schema, a.SQL)
		if err != nil {
			return nil, nil, fmt.Errorf("anonymize: query %d: %w", qi, err)
		}
		plan := a.Plan.Clone()
		if err := refreshPredDisplay(out.Schema, rewritten, plan); err != nil {
			return nil, nil, fmt.Errorf("anonymize: query %d: %w", qi, err)
		}
		out.Workload = append(out.Workload, &aqp.AQP{SQL: rewritten, Plan: plan})
	}
	return out, m, nil
}

// rewriteQuery replaces string literals with tokens while preserving the
// selected code sets. Non-member literals need operator adjustments because
// the substituted token is a dictionary member: e.g. "x <= s" with s absent
// selects codes [0, rank), which as a member comparison is "x < token(rank)".
func rewriteQuery(s *schema.Schema, sql string) (string, error) {
	q, err := sqlkit.Parse(sql)
	if err != nil {
		return "", err
	}
	for pi, p := range q.Preds {
		np, err := rewritePred(s, q, p)
		if err != nil {
			return "", err
		}
		q.Preds[pi] = np
	}
	return q.SQL(), nil
}

func rewritePred(s *schema.Schema, q *sqlkit.Query, p sqlkit.Predicate) (sqlkit.Predicate, error) {
	switch p := p.(type) {
	case *sqlkit.ComparePred:
		col, err := resolveStringColumn(s, q, p.Col, p.Val)
		if err != nil || col == nil {
			return p, err
		}
		op, tok := mapLiteral(col, p.Op, p.Val.Str())
		return &sqlkit.ComparePred{Col: p.Col, Op: op, Val: value.NewString(tok)}, nil
	case *sqlkit.BetweenPred:
		col, err := resolveStringColumn(s, q, p.Col, p.Lo)
		if err != nil || col == nil {
			return p, err
		}
		// BETWEEN lo AND hi ≡ >= lo AND <= hi; rewrite both ends and
		// keep BETWEEN only when both stay inclusive.
		loOp, loTok := mapLiteral(col, sqlkit.OpGE, p.Lo.Str())
		hiOp, hiTok := mapLiteral(col, sqlkit.OpLE, p.Hi.Str())
		if loOp == sqlkit.OpGE && hiOp == sqlkit.OpLE {
			return &sqlkit.BetweenPred{Col: p.Col, Lo: value.NewString(loTok), Hi: value.NewString(hiTok)}, nil
		}
		return nil, fmt.Errorf("between bounds of %s not in dictionary; rewrite as explicit range", p.Col)
	case *sqlkit.InPred:
		if len(p.Vals) == 0 || p.Vals[0].Kind() != value.KindString {
			return p, nil
		}
		col, err := resolveStringColumn(s, q, p.Col, p.Vals[0])
		if err != nil || col == nil {
			return p, err
		}
		var vals []value.Value
		for _, v := range p.Vals {
			rank := col.EncodeRank(v.Str())
			if member(col, v.Str()) {
				vals = append(vals, value.NewString(Token(int(rank))))
			}
			// Absent members select nothing; drop them.
		}
		if len(vals) == 0 {
			vals = []value.Value{value.NewString(belowAllTokens)}
		}
		return &sqlkit.InPred{Col: p.Col, Vals: vals}, nil
	default:
		return p, nil
	}
}

// resolveStringColumn returns the original schema column a string-literal
// predicate binds to, or nil when the predicate is not over a string column.
func resolveStringColumn(s *schema.Schema, q *sqlkit.Query, ref sqlkit.ColumnRef, lit value.Value) (*schema.Column, error) {
	if lit.Kind() != value.KindString {
		return nil, nil
	}
	if ref.Table != "" {
		t := s.Table(ref.Table)
		if t == nil {
			return nil, fmt.Errorf("unknown table %s", ref.Table)
		}
		return t.Column(ref.Column), nil
	}
	for _, name := range q.Tables {
		t := s.Table(name)
		if t == nil {
			continue
		}
		if c := t.Column(ref.Column); c != nil {
			return c, nil
		}
	}
	return nil, fmt.Errorf("unknown column %s", ref.Column)
}

func member(c *schema.Column, s string) bool {
	r := c.EncodeRank(s)
	return r < int64(len(c.Dict)) && c.Dict[r] == s
}

// mapLiteral maps (op, literal) on the original dictionary to an equivalent
// (op, token) over the anonymized dictionary.
func mapLiteral(c *schema.Column, op sqlkit.CompareOp, s string) (sqlkit.CompareOp, string) {
	rank := int(c.EncodeRank(s))
	if member(c, s) {
		return op, Token(rank)
	}
	// s is strictly between ranks rank-1 and rank.
	switch op {
	case sqlkit.OpEQ:
		return sqlkit.OpEQ, belowAllTokens // empty
	case sqlkit.OpNE:
		return sqlkit.OpNE, belowAllTokens // full
	case sqlkit.OpLT, sqlkit.OpLE:
		if rank >= len(c.Dict) {
			return sqlkit.OpNE, belowAllTokens // full
		}
		return sqlkit.OpLT, Token(rank)
	default: // OpGT, OpGE
		if rank >= len(c.Dict) {
			return sqlkit.OpEQ, belowAllTokens // empty
		}
		return sqlkit.OpGE, Token(rank)
	}
}

// refreshPredDisplay regenerates the display strings (predicates, join
// conditions) inside an AQP from the rewritten SQL, so no original literal
// leaks through the plan rendering.
func refreshPredDisplay(s *schema.Schema, sql string, plan *aqp.Node) error {
	q, err := sqlkit.Parse(sql)
	if err != nil {
		return err
	}
	p, err := engine.BuildPlan(s, q)
	if err != nil {
		return err
	}
	var walk func(pn *engine.PlanNode, an *aqp.Node) error
	walk = func(pn *engine.PlanNode, an *aqp.Node) error {
		if (pn == nil) != (an == nil) {
			return fmt.Errorf("plan/AQP shape mismatch")
		}
		if pn == nil {
			return nil
		}
		if len(pn.Children) != len(an.Children) {
			return fmt.Errorf("plan/AQP shape mismatch")
		}
		switch pn.Op {
		case engine.OpFilter:
			an.Pred = pn.Pred.SQL(s.Table(pn.Pred.Table))
		case engine.OpHashJoin:
			an.Join = pn.JoinSQL
		}
		for i := range pn.Children {
			if err := walk(pn.Children[i], an.Children[i]); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(p.Root, plan)
}
