package experiments

// E18: predicate pushdown into generation pays off in proportion to
// selectivity. The unpruned pipeline regenerates every fact tuple and
// filters afterward, so its latency is flat in the predicate; the pruned
// scan intersects the predicate with the summary at plan time and generates
// only the qualifying row-space, so its latency tracks the survivors.
// Sweeping selectivity from 0.1% to 100% on a non-aggregate top-K sort
// shows the crossover directly, with byte-identical results at every point —
// pruning is a pure optimization, never an approximation.

import (
	"fmt"
	"io"
	"reflect"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sqlkit"
	"repro/internal/summary"
)

// E18ScanPrune sweeps predicate selectivity on a filtered top-K ORDER BY
// over the fact table and times each point with pruning on and off. The
// predicate is a primary-key window, so the qualifying fraction is exact at
// every sweep point and the prune decision is provable for every summary
// row. The experiment fails if any point disagrees byte for byte, or if a
// selective point silently executed without pruning.
func E18ScanPrune(w io.Writer, cfg Config, selectivities []float64) error {
	pkg, err := capture(cfg)
	if err != nil {
		return err
	}
	sum, _, err := core.BuildFromPackage(pkg, summary.DefaultBuildOptions())
	if err != nil {
		return err
	}
	rel := sum.Relations["store_sales"]
	if rel == nil {
		return fmt.Errorf("E18: summary has no store_sales relation")
	}
	regen := core.RegenDatabase(sum, 0)

	fmt.Fprintln(w, "E18: predicate pushdown — latency tracks survivors, not table size")
	fmt.Fprintf(w, "query: SELECT * FROM store_sales WHERE ss_sk < K ORDER BY ss_sales_price DESC LIMIT 100  (K sweeps selectivity over %d fact rows)\n", rel.Total)
	fmt.Fprintf(w, "%-8s %-12s %-12s %-14s %-14s %-10s\n",
		"sel", "qualifying", "pruned", "unpruned", "pruned_scan", "speedup")
	for _, sel := range selectivities {
		k := int64(sel * float64(rel.Total))
		if k < 1 {
			k = 1
		}
		sql := fmt.Sprintf("SELECT * FROM store_sales WHERE ss_sk < %d ORDER BY ss_sales_price DESC LIMIT 100", k)
		q, err := sqlkit.Parse(sql)
		if err != nil {
			return err
		}
		plan, err := engine.BuildPlan(regen.Schema, q)
		if err != nil {
			return err
		}
		opts := engine.ExecOptions{SampleLimit: 8, NoSummaryAgg: true}
		refOpts := opts
		refOpts.NoScanPrune = true
		slow, slowElapsed, err := bestExec(regen, plan, refOpts)
		if err != nil {
			return err
		}
		fast, fastElapsed, err := bestExec(regen, plan, opts)
		if err != nil {
			return err
		}
		if fast.Rows != slow.Rows || fast.Count != slow.Count || !reflect.DeepEqual(fast.Sample, slow.Sample) {
			return fmt.Errorf("E18: sel=%.4f pruned result diverged: rows %d/%d", sel, fast.Rows, slow.Rows)
		}
		pruned := prunedScanRows(fast.Root)
		if sel < 1 && pruned == 0 {
			return fmt.Errorf("E18: sel=%.4f executed without pruning; the pruned scan path has regressed", sel)
		}
		fmt.Fprintf(w, "%-8.4f %-12d %-12d %-14v %-14v %-10.1f\n",
			sel, k, pruned,
			slowElapsed.Round(time.Microsecond), fastElapsed.Round(time.Microsecond),
			float64(slowElapsed)/float64(fastElapsed))
	}
	fmt.Fprintln(w, "results byte-identical at every selectivity; tuples outside the qualifying row-space were never generated")
	return nil
}

// bestExec times best-of-7 executions. The sweep's pruned points run in
// tens of microseconds, where a single GC pause or scheduler stall poisons
// a median-of-3; noise is one-sided, so the minimum is the right estimator
// of achievable latency.
func bestExec(db *engine.Database, plan *engine.Plan, opts engine.ExecOptions) (*engine.ExecResult, time.Duration, error) {
	var res *engine.ExecResult
	best := time.Duration(0)
	for i := 0; i < 7; i++ {
		start := time.Now()
		r, err := engine.Execute(db, plan, opts)
		if err != nil {
			return nil, 0, err
		}
		elapsed := time.Since(start)
		if res == nil || elapsed < best {
			res, best = r, elapsed
		}
	}
	return res, best, nil
}

// prunedScanRows sums scan-node prune accounting across an executed tree.
func prunedScanRows(n *engine.ExecNode) int64 {
	total := n.RowsPruned
	for _, c := range n.Children {
		total += prunedScanRows(c)
	}
	return total
}
