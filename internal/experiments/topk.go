package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sqlkit"
	"repro/internal/summary"
)

// E14TopK is the top-K vs full-sort sweep: the same ORDER BY query
// regenerated datalessly over store_sales, once as a full sort (no LIMIT)
// and then bounded by LIMITs of decreasing k. The planner pushes the bound
// into the sort (PlanNode.SortBound), which swaps the O(n log n) full sort
// of n collected rows for an n·log k bounded max-heap holding k rows — so
// elapsed time should fall and throughput rise as k shrinks, while the full
// sort sets the baseline. Every point is cross-checked row for row against
// the row-pivot reference executor, and the sweep also runs morsel-parallel
// (per-worker bounded partial sorts, merged and re-cut) to show the bound
// composes with partitioning.
func E14TopK(w io.Writer, cfg Config, limits []int) error {
	pkg, err := capture(cfg)
	if err != nil {
		return err
	}
	sum, _, err := core.BuildFromPackage(pkg, summary.DefaultBuildOptions())
	if err != nil {
		return err
	}
	regen := core.RegenDatabase(sum, 0)
	rel := sum.Relations["store_sales"]
	if rel == nil {
		return fmt.Errorf("E14: summary has no store_sales relation")
	}

	const orderBy = "SELECT * FROM store_sales ORDER BY ss_sales_price DESC, ss_quantity"
	variants := []struct {
		label string
		sql   string
	}{{"full sort", orderBy}}
	for _, k := range limits {
		variants = append(variants, struct{ label, sql string }{
			fmt.Sprintf("top-%d", k), fmt.Sprintf("%s LIMIT %d", orderBy, k),
		})
	}

	fmt.Fprintf(w, "E14: top-K vs full-sort sweep over store_sales (%d rows regenerated and sorted per query)\n", rel.Total)
	fmt.Fprintf(w, "%-12s %-10s %-9s %-14s %-12s %-10s\n", "variant", "rows_out", "workers", "elapsed", "rows/sec", "vs_full")
	var fullRate float64
	for i, v := range variants {
		q, err := sqlkit.Parse(v.sql)
		if err != nil {
			return err
		}
		plan, err := engine.BuildPlan(regen.Schema, q)
		if err != nil {
			return err
		}
		ref, err := engine.ExecuteRows(regen, plan, engine.ExecOptions{SampleLimit: 1 << 20})
		if err != nil {
			return err
		}
		for _, workers := range []int{0, 2} {
			opts := engine.ExecOptions{SampleLimit: 1 << 20, Parallelism: workers}
			exec := engine.Execute
			if workers >= 1 {
				exec = engine.ExecuteParallel
			}
			res, elapsed, err := timeExec(regen, plan, opts, exec)
			if err != nil {
				return err
			}
			if res.Rows != ref.Rows || len(res.Sample) != len(ref.Sample) {
				return fmt.Errorf("E14: %s w=%d: %d rows, reference %d", v.label, workers, res.Rows, ref.Rows)
			}
			for ri := range ref.Sample {
				for ci := range ref.Sample[ri] {
					if res.Sample[ri][ci] != ref.Sample[ri][ci] {
						return fmt.Errorf("E14: %s w=%d: row %d = %v, reference %v", v.label, workers, ri, res.Sample[ri], ref.Sample[ri])
					}
				}
			}
			rate := float64(rel.Total) / elapsed.Seconds()
			if i == 0 && workers == 0 {
				fullRate = rate
			}
			fmt.Fprintf(w, "%-12s %-10d %-9d %-14v %-12.0f %-10.2f\n",
				v.label, res.Rows, workers, elapsed.Round(time.Microsecond), rate, rate/fullRate)
		}
	}
	fmt.Fprintln(w, "sorted output identical to the row-pivot reference at every point")
	return nil
}
