// Package experiments regenerates every quantitative exhibit of the paper —
// the demo's own figures and the EDBT'18 evaluation claims it cites — as
// printed tables with the same rows/series structure. Each experiment (E1…
// E9, see DESIGN.md) is exposed as a function over an io.Writer so the same
// code backs the CLI ("hydra bench") and the testing.B benchmarks in
// bench_test.go. EXPERIMENTS.md records paper-claim vs measured output.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/generator"
	"repro/internal/scenario"
	"repro/internal/sqlkit"
	"repro/internal/summary"
	"repro/internal/toy"
	"repro/internal/tpcds"
	"repro/internal/verify"
)

// Config fixes the shared experiment parameters.
type Config struct {
	// Seed drives the synthetic warehouse and workload generators.
	Seed int64
	// ScaleFactor sizes the client warehouse (1.0 ≈ 58k rows total).
	ScaleFactor float64
	// Queries is the workload size (the paper uses 131).
	Queries int
}

// DefaultConfig mirrors the paper's headline setting.
func DefaultConfig() Config {
	return Config{Seed: 7, ScaleFactor: 1.0, Queries: 131}
}

// capture builds the client warehouse and transfer package for a config.
func capture(cfg Config) (*core.TransferPackage, error) {
	s := tpcds.Schema(cfg.ScaleFactor)
	db, err := tpcds.GenerateDatabase(s, cfg.Seed)
	if err != nil {
		return nil, err
	}
	queries := tpcds.Workload(cfg.Queries, cfg.Seed+4)
	return core.CaptureClient(db, queries, core.CaptureOptions{SkipStats: true})
}

// E1Example prints the Figure 1 scenario: the toy schema, the example SPJ
// query, and its annotated query plan with edge cardinalities.
func E1Example(w io.Writer, seed int64) error {
	fmt.Fprintln(w, "E1: Figure 1 — example database scenario")
	fmt.Fprintln(w, "Schema: R(r_pk, s_fk, t_fk)  S(s_pk, a, b)  T(t_pk, c)")
	db, err := toy.Database(seed)
	if err != nil {
		return err
	}
	q, err := sqlkit.Parse(toy.Query)
	if err != nil {
		return err
	}
	plan, err := engine.BuildPlan(db.Schema, q)
	if err != nil {
		return err
	}
	res, err := engine.Execute(db, plan, engine.ExecOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Query: %s\n", toy.Query)
	fmt.Fprintln(w, "Annotated Query Plan (edge cardinalities from client execution):")
	fmt.Fprint(w, aqp.FromExec(res.Root).String())
	return nil
}

// E2RegionVsGrid prints the LP-complexity comparison: number of LP
// variables under Hydra's region partitioning vs the DataSynth grid
// baseline, as the workload grows (§2: "several orders of magnitude
// smaller", with region partitioning attaining the minimum).
func E2RegionVsGrid(w io.Writer, cfg Config, workloadSizes []int) error {
	fmt.Fprintln(w, "E2: LP complexity — region (Hydra) vs grid (DataSynth) partitioning")
	fmt.Fprintf(w, "%-9s %-14s %-14s %-9s %-12s\n", "queries", "region_vars", "grid_vars", "ratio", "formulate")
	for _, n := range workloadSizes {
		c := cfg
		c.Queries = n
		pkg, err := capture(c)
		if err != nil {
			return err
		}
		opts := summary.DefaultBuildOptions()
		opts.GridCompare = true
		start := time.Now()
		_, rep, err := core.BuildFromPackage(pkg, opts)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		region := rep.TotalLPVars()
		grid := rep.TotalGridVars()
		ratio := float64(grid) / float64(region)
		fmt.Fprintf(w, "%-9d %-14d %-14d %-9.0f %-12v\n", n, region, grid, ratio, elapsed.Round(time.Millisecond))
	}
	return nil
}

// E3DataScaleFree prints summary-construction time and size against the
// client database scale factor: capture cost grows with data, but the
// vendor-side construction is data-scale-free (§2: "summary for a large
// workload of 131 distinct queries … in less than 2 minutes … a few KB").
func E3DataScaleFree(w io.Writer, cfg Config, scales []float64) error {
	fmt.Fprintln(w, "E3: summary construction is data-scale-free")
	fmt.Fprintf(w, "%-8s %-12s %-12s %-12s %-12s %-10s\n", "scale", "client_rows", "capture", "build", "summary_B", "lp_vars")
	for _, sf := range scales {
		c := cfg
		c.ScaleFactor = sf
		t0 := time.Now()
		pkg, err := capture(c)
		if err != nil {
			return err
		}
		captureTime := time.Since(t0)
		var rows int64
		for _, t := range pkg.Schema.Tables {
			rows += t.RowCount
		}
		t1 := time.Now()
		_, rep, err := core.BuildFromPackage(pkg, summary.DefaultBuildOptions())
		if err != nil {
			return err
		}
		buildTime := time.Since(t1)
		fmt.Fprintf(w, "%-8.2f %-12d %-12v %-12v %-12d %-10d\n",
			sf, rows, captureTime.Round(time.Millisecond), buildTime.Round(time.Millisecond), rep.SummaryBytes, rep.TotalLPVars())
	}
	return nil
}

// E4Accuracy prints the volumetric-accuracy CDF (Figure 4's bottom-left
// graph; §2: ">90% of the volumetric constraints were satisfied with
// virtually no error, while the remaining were all satisfied with a
// relative error of less than 10%").
func E4Accuracy(w io.Writer, cfg Config) (*verify.Report, error) {
	pkg, err := capture(cfg)
	if err != nil {
		return nil, err
	}
	sum, _, err := core.BuildFromPackage(pkg, summary.DefaultBuildOptions())
	if err != nil {
		return nil, err
	}
	rep, err := verify.Verify(core.RegenDatabase(sum, 0), pkg.Workload)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "E4: volumetric accuracy — % constraints satisfied within relative error ε")
	fmt.Fprintf(w, "%-8s %-10s\n", "eps", "satisfied")
	for _, p := range rep.CDF(nil) {
		fmt.Fprintf(w, "%-8.3f %-10.3f\n", p.Eps, p.Fraction)
	}
	max, hasInf := rep.MaxRelErr()
	fmt.Fprintf(w, "edges=%d  mean_rel_err=%.5f  max_finite=%.4f  inf_edges=%v\n",
		len(rep.Edges), rep.MeanRelErr(), max, hasInf)
	return rep, nil
}

// E5ErrorVsScale prints how the relative volumetric error shrinks as the
// target database scales up (§2: "the magnitude of the volumetric
// discrepancy is constant for a given query workload, [so] the relative
// errors become progressively smaller with increasing database size").
func E5ErrorVsScale(w io.Writer, cfg Config, factors []float64) error {
	pkg, err := capture(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E5: relative error vs database scale-up factor")
	fmt.Fprintf(w, "%-8s %-12s %-12s %-12s %-12s\n", "factor", "exact_frac", "mean_rel", "max_rel", "clamped")
	for _, f := range factors {
		sc := &scenario.Scenario{Name: fmt.Sprintf("x%g", f), Factor: f}
		scaled, err := sc.Apply(pkg)
		if err != nil {
			return err
		}
		sum, _, err := core.BuildFromPackage(scaled, summary.DefaultBuildOptions())
		if err != nil {
			return err
		}
		rep, err := verify.Verify(core.RegenDatabase(sum, 0), scaled.Workload)
		if err != nil {
			return err
		}
		var clamped int64
		for _, rel := range sum.Relations {
			clamped += rel.ClampedRows
		}
		max, _ := rep.MaxRelErr()
		fmt.Fprintf(w, "%-8.1f %-12.3f %-12.5f %-12.5f %-12d\n",
			f, rep.SatisfiedWithin(0), rep.MeanRelErr(), max, clamped)
	}
	return nil
}

// E6Velocity prints requested vs achieved generation rates (§4.2's
// rows/sec velocity slider): dynamic regeneration can be throttled
// precisely because rows are produced in memory.
func E6Velocity(w io.Writer, cfg Config, rates []float64, rows int64) error {
	pkg, err := capture(cfg)
	if err != nil {
		return err
	}
	sum, _, err := core.BuildFromPackage(pkg, summary.DefaultBuildOptions())
	if err != nil {
		return err
	}
	table := "store_sales"
	t := sum.Schema.Table(table)
	fmt.Fprintln(w, "E6: generation velocity control (table store_sales)")
	fmt.Fprintf(w, "%-12s %-12s %-12s %-10s\n", "target_rps", "achieved", "rows", "elapsed")
	for _, rate := range rates {
		n := rows
		if rate > 0 {
			// Cap the run at roughly one second of generation.
			if budget := int64(rate); budget < n {
				n = budget
			}
		}
		src := generator.NewPaced(generator.NewStream(t, sum.Relations[table]), rate)
		start := time.Now()
		var got int64
		for got < n {
			if _, ok := src.Next(); !ok {
				break
			}
			got++
		}
		elapsed := time.Since(start)
		achieved := float64(got) / elapsed.Seconds()
		fmt.Fprintf(w, "%-12.0f %-12.0f %-12d %-10v\n", rate, achieved, got, elapsed.Round(time.Millisecond))
	}
	return nil
}

// E7Datagen demonstrates dataless execution (§4.3 and Table 1): the
// regenerated database stores zero rows, queries stream tuples from the
// summary, and the answers match materialized execution exactly. It prints
// a Table-1-style sample of the item relation.
func E7Datagen(w io.Writer, cfg Config) error {
	pkg, err := capture(cfg)
	if err != nil {
		return err
	}
	sum, _, err := core.BuildFromPackage(pkg, summary.DefaultBuildOptions())
	if err != nil {
		return err
	}
	regen := core.RegenDatabase(sum, 0)
	mat, err := core.MaterializedDatabase(sum)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E7: dynamic regeneration — dataless query execution")
	for _, t := range sum.Schema.Tables {
		stored := 0
		if rel := regen.Relation(t.Name); rel != nil {
			stored = len(rel.Rows)
		}
		fmt.Fprintf(w, "table %-12s stored_rows=%d datagen=%v\n", t.Name, stored, regen.DatagenEnabled(t.Name))
	}

	// Table 1 of the paper lists the first tuple of each summary row (the
	// points where the value vector changes as primary keys advance).
	fmt.Fprintln(w, "\nSample regenerated ITEM tuples (Table 1):")
	itemT := sum.Schema.Table("item")
	stream := generator.NewStream(itemT, sum.Relations["item"])
	fmt.Fprintf(w, "%-10s %-14s %-12s %-12s\n", "item_sk", "i_manager_id", "i_class", "i_category")
	shown := 0
	idx := int64(0)
	nextBoundary := int64(0)
	ri := 0
	for shown < 4 {
		r, ok := stream.Next()
		if !ok {
			break
		}
		if idx == nextBoundary && ri < len(sum.Relations["item"].Rows) {
			fmt.Fprintf(w, "%-10d %-14s %-12s %-12s\n",
				r[0], itemT.Columns[1].Decode(r[1]), itemT.Columns[2].Decode(r[2]), itemT.Columns[3].Decode(r[3]))
			nextBoundary += sum.Relations["item"].Rows[ri].Count
			ri++
			shown++
		}
		idx++
	}

	for qi, sql := range []string{
		"SELECT COUNT(*) FROM store_sales, item WHERE ss_item_sk = i_item_sk AND i_category = 'Music'",
		"SELECT COUNT(*) FROM store_sales WHERE ss_quantity BETWEEN 10 AND 40",
	} {
		cd, err := runCount(regen, sql)
		if err != nil {
			return err
		}
		cm, err := runCount(mat, sql)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nQ%d %s\n  dataless=%d materialized=%d match=%v", qi, sql, cd, cm, cd == cm)
	}
	fmt.Fprintln(w)
	return nil
}

func runCount(db *engine.Database, sql string) (int64, error) {
	q, err := sqlkit.Parse(sql)
	if err != nil {
		return 0, err
	}
	plan, err := engine.BuildPlan(db.Schema, q)
	if err != nil {
		return 0, err
	}
	// The count must come from actual regeneration (or materialized rows),
	// not the summary-direct fast path this helper is meant to validate.
	res, err := engine.Execute(db, plan, engine.ExecOptions{NoSummaryAgg: true})
	if err != nil {
		return 0, err
	}
	return res.Count, nil
}

// E8Scenario prints what-if scenario construction (§4.4): cardinalities are
// extrapolated by large factors, feasibility is verified, and construction
// stays roughly constant-time regardless of the simulated volume — the
// "exabyte scenario" effect.
func E8Scenario(w io.Writer, cfg Config, factors []float64) error {
	pkg, err := capture(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E8: what-if scenario construction")
	fmt.Fprintf(w, "%-12s %-14s %-10s %-12s %-12s %-12s\n", "factor", "target_rows", "feasible", "rel_dev", "build", "summary_B")
	for _, f := range factors {
		sc := &scenario.Scenario{Name: fmt.Sprintf("x%g", f), Factor: f}
		start := time.Now()
		feas, err := sc.Build(pkg, summary.DefaultBuildOptions())
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		var rows int64
		for _, t := range pkg.Schema.Tables {
			rows += scaleInt(t.RowCount, f)
		}
		fmt.Fprintf(w, "%-12.0f %-14d %-10v %-12.2e %-12v %-12d\n",
			f, rows, feas.Feasible, feas.RelDeviation, elapsed.Round(time.Millisecond), feas.Report.SummaryBytes)
	}
	return nil
}

func scaleInt(v int64, f float64) int64 { return int64(float64(v) * f) }

// E9Referential prints the referential post-processing bookkeeping: how
// many tuples needed foreign-key clamping and the additive error they
// induce, across scale-down scenarios that force clamping.
func E9Referential(w io.Writer, cfg Config, dimFactors []float64) error {
	pkg, err := capture(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E9: referential post-processing — clamped tuples vs dimension shrink factor")
	fmt.Fprintf(w, "%-10s %-12s %-12s %-12s\n", "dim_fac", "clamped", "exact_frac", "mean_rel")
	for _, f := range dimFactors {
		sc := &scenario.Scenario{
			Name: fmt.Sprintf("dims x%g", f),
			TableFactor: map[string]float64{
				"item": f, "customer": f, "date_dim": 1, "store": 1, "promotion": 1, "store_sales": 1,
			},
		}
		scaled, err := sc.Apply(pkg)
		if err != nil {
			return err
		}
		sum, _, err := core.BuildFromPackage(scaled, summary.DefaultBuildOptions())
		if err != nil {
			return err
		}
		rep, err := verify.Verify(core.RegenDatabase(sum, 0), scaled.Workload)
		if err != nil {
			return err
		}
		var clamped int64
		for _, rel := range sum.Relations {
			clamped += rel.ClampedRows
		}
		fmt.Fprintf(w, "%-10.2f %-12d %-12.3f %-12.5f\n", f, clamped, rep.SatisfiedWithin(0), rep.MeanRelErr())
	}
	return nil
}

// E10Ablation quantifies the design choices DESIGN.md calls out: it builds
// the same workload with and without the cross-relation inhabitation
// propagation, reporting accuracy and clamped-tuple counts. (The paper
// attributes its accuracy to the deterministic alignment strategy; this
// ablation shows which part of the pipeline carries that weight here.)
func E10Ablation(w io.Writer, cfg Config) error {
	pkg, err := capture(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E10: ablation — inhabitation propagation on/off")
	fmt.Fprintf(w, "%-14s %-12s %-12s %-12s %-10s\n", "variant", "exact_frac", "within10%", "mean_rel", "clamped")
	for _, variant := range []struct {
		name string
		off  bool
	}{{"full", false}, {"no-inhabit", true}} {
		opts := summary.DefaultBuildOptions()
		opts.NoInhabitation = variant.off
		sum, _, err := core.BuildFromPackage(pkg, opts)
		if err != nil {
			return err
		}
		rep, err := verify.Verify(core.RegenDatabase(sum, 0), pkg.Workload)
		if err != nil {
			return err
		}
		var clamped int64
		for _, rel := range sum.Relations {
			clamped += rel.ClampedRows
		}
		fmt.Fprintf(w, "%-14s %-12.3f %-12.3f %-12.5f %-10d\n",
			variant.name, rep.SatisfiedWithin(0), rep.SatisfiedWithin(0.1), rep.MeanRelErr(), clamped)
	}
	return nil
}
