package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sqlkit"
	"repro/internal/summary"
)

// E11Parallel measures morsel-driven worker scaling of dataless execution:
// the workload's most expensive query (largest total scan input) runs
// through the sequential batched executor and through engine.ExecuteParallel
// at each worker count, reporting throughput, speedup over sequential, and
// verifying that every answer — count and per-operator cardinalities — is
// identical. Worker counts beyond GOMAXPROCS cannot speed up a CPU-bound
// pipeline; the table makes that visible rather than hiding it.
func E11Parallel(w io.Writer, cfg Config, workers []int) error {
	pkg, err := capture(cfg)
	if err != nil {
		return err
	}
	sum, _, err := core.BuildFromPackage(pkg, summary.DefaultBuildOptions())
	if err != nil {
		return err
	}
	regen := core.RegenDatabase(sum, 0)

	// Pick the workload query with the largest regenerated scan input.
	var sql string
	var best int64 = -1
	for _, aqp := range pkg.Workload {
		q, err := sqlkit.Parse(aqp.SQL)
		if err != nil {
			return err
		}
		plan, err := engine.BuildPlan(regen.Schema, q)
		if err != nil {
			return err
		}
		var input int64
		var walk func(pn *engine.PlanNode)
		walk = func(pn *engine.PlanNode) {
			if pn.Op == engine.OpScan {
				if rel := sum.Relations[pn.Table]; rel != nil {
					input += rel.Total
				}
			}
			for _, c := range pn.Children {
				walk(c)
			}
		}
		walk(plan.Root)
		if input > best {
			best, sql = input, aqp.SQL
		}
	}

	q, err := sqlkit.Parse(sql)
	if err != nil {
		return err
	}
	plan, err := engine.BuildPlan(regen.Schema, q)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "E11: morsel-driven worker scaling (GOMAXPROCS=%d)\n", runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "query: %s (scan input %d rows)\n", sql, best)
	seq, seqElapsed, err := timeExec(regen, plan, engine.ExecOptions{NoSummaryAgg: true}, engine.Execute)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %-12s %-14s %-10s %-8s\n", "workers", "count", "elapsed", "rows/sec", "speedup")
	fmt.Fprintf(w, "%-10s %-12d %-14v %-10.0f %-8s\n", "seq", seq.Count, seqElapsed.Round(time.Microsecond), float64(best)/seqElapsed.Seconds(), "1.00")
	for _, n := range workers {
		opts := engine.ExecOptions{Parallelism: n, NoSummaryAgg: true}
		res, elapsed, err := timeExec(regen, plan, opts, engine.ExecuteParallel)
		if err != nil {
			return err
		}
		if res.Count != seq.Count || res.Rows != seq.Rows {
			return fmt.Errorf("E11: workers=%d changed the answer: count %d != %d", n, res.Count, seq.Count)
		}
		fmt.Fprintf(w, "%-10d %-12d %-14v %-10.0f %-8.2f\n",
			n, res.Count, elapsed.Round(time.Microsecond), float64(best)/elapsed.Seconds(), seqElapsed.Seconds()/elapsed.Seconds())
	}
	fmt.Fprintln(w, "answers identical at every worker count")
	return nil
}

// timeExec runs the plan three times through f and returns the last result
// with the median elapsed time.
func timeExec(db *engine.Database, plan *engine.Plan, opts engine.ExecOptions,
	f func(*engine.Database, *engine.Plan, engine.ExecOptions) (*engine.ExecResult, error)) (*engine.ExecResult, time.Duration, error) {
	var res *engine.ExecResult
	var err error
	times := make([]time.Duration, 3)
	for i := range times {
		start := time.Now()
		res, err = f(db, plan, opts)
		if err != nil {
			return nil, 0, err
		}
		times[i] = time.Since(start)
	}
	if times[0] > times[1] {
		times[0], times[1] = times[1], times[0]
	}
	if times[1] > times[2] {
		times[1], times[2] = times[2], times[1]
	}
	if times[0] > times[1] {
		times[0], times[1] = times[1], times[0]
	}
	return res, times[1], nil
}
