package experiments

import (
	"io"
	"strings"
	"testing"
)

// smallConfig keeps the experiment smoke tests quick.
func smallConfig() Config {
	return Config{Seed: 7, ScaleFactor: 0.2, Queries: 20}
}

func TestE1Example(t *testing.T) {
	var sb strings.Builder
	if err := E1Example(&sb, 42); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"HASH JOIN", "FILTER s", "SCAN r"} {
		if !strings.Contains(sb.String(), frag) {
			t.Errorf("E1 output missing %q", frag)
		}
	}
}

func TestE2RegionVsGrid(t *testing.T) {
	var sb strings.Builder
	if err := E2RegionVsGrid(&sb, smallConfig(), []int{10, 20}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Fatalf("E2 lines = %d:\n%s", len(lines), sb.String())
	}
}

func TestE3DataScaleFree(t *testing.T) {
	if err := E3DataScaleFree(io.Discard, smallConfig(), []float64{0.1, 0.2}); err != nil {
		t.Fatal(err)
	}
}

func TestE4Accuracy(t *testing.T) {
	rep, err := E4Accuracy(io.Discard, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.SatisfiedWithin(1.0) < 0.9 {
		t.Errorf("within-100%% satisfaction %.3f", rep.SatisfiedWithin(1.0))
	}
}

func TestE5ErrorVsScale(t *testing.T) {
	if err := E5ErrorVsScale(io.Discard, smallConfig(), []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
}

func TestE6Velocity(t *testing.T) {
	var sb strings.Builder
	if err := E6Velocity(&sb, smallConfig(), []float64{0, 5000}, 3000); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "target_rps") {
		t.Error("E6 output missing header")
	}
}

func TestE7Datagen(t *testing.T) {
	var sb strings.Builder
	if err := E7Datagen(&sb, smallConfig()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "stored_rows=0") {
		t.Error("E7 did not demonstrate dataless tables")
	}
	if !strings.Contains(out, "match=true") {
		t.Errorf("E7 dataless and materialized answers differ:\n%s", out)
	}
}

func TestE8Scenario(t *testing.T) {
	var sb strings.Builder
	if err := E8Scenario(&sb, smallConfig(), []float64{10}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "true") {
		t.Errorf("x10 scenario not feasible:\n%s", sb.String())
	}
}

func TestE9Referential(t *testing.T) {
	if err := E9Referential(io.Discard, smallConfig(), []float64{1, 0.5}); err != nil {
		t.Fatal(err)
	}
}

func TestE10Ablation(t *testing.T) {
	var sb strings.Builder
	if err := E10Ablation(&sb, smallConfig()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no-inhabit") {
		t.Error("ablation variant missing")
	}
}

func TestE11Parallel(t *testing.T) {
	var sb strings.Builder
	if err := E11Parallel(&sb, smallConfig(), []int{1, 2, 4}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "answers identical at every worker count") {
		t.Errorf("E11 output missing identity line:\n%s", sb.String())
	}
}

func TestE12Projection(t *testing.T) {
	var sb strings.Builder
	if err := E12Projection(&sb, smallConfig()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "answers identical to the row-at-a-time reference at every projection") {
		t.Errorf("E12 output missing identity line:\n%s", out)
	}
	for _, variant := range []string{"1 col", "2 cols", "4 cols", "all cols"} {
		if !strings.Contains(out, variant) {
			t.Errorf("E12 output missing %q variant:\n%s", variant, out)
		}
	}
}

func TestE13GroupBy(t *testing.T) {
	var sb strings.Builder
	if err := E13GroupBy(&sb, smallConfig(), []int{0, 2}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "grouped answers identical to the row-at-a-time reference at every point") {
		t.Errorf("E13 output missing identity line:\n%s", sb.String())
	}
}

func TestE14TopK(t *testing.T) {
	var sb strings.Builder
	if err := E14TopK(&sb, smallConfig(), []int{10, 1}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "sorted output identical to the row-pivot reference at every point") {
		t.Errorf("E14 output missing identity line:\n%s", out)
	}
	for _, variant := range []string{"full sort", "top-10", "top-1"} {
		if !strings.Contains(out, variant) {
			t.Errorf("E14 output missing %q variant:\n%s", variant, out)
		}
	}
}
