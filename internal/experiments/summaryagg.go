package experiments

// E17: the summary-direct aggregate fast path is scale-invariant. The
// regenerating pipeline answers an aggregate in time linear in the table's
// row count; the summary-direct evaluator answers the same query from
// summary-row interval arithmetic, so its latency tracks the number of
// summary rows — which the paper's construction keeps proportional to the
// workload, not the data. Sweeping the scale factor with a fixed workload
// shows regen latency growing linearly while summary-direct latency stays
// flat, with byte-identical answers at every point.

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sqlkit"
	"repro/internal/summary"
)

// E17SummaryAgg sweeps the data scale factor and times one eligible
// aggregate both ways at each point. The query keeps a filtered COUNT over
// the fact table — the shape serve answers on every cache hit — and the
// experiment fails if the fast path silently falls back to regeneration or
// disagrees with it.
func E17SummaryAgg(w io.Writer, cfg Config, scales []float64) error {
	const sql = "SELECT COUNT(*) FROM store_sales WHERE ss_quantity >= 50"
	fmt.Fprintln(w, "E17: summary-direct aggregates are data-scale-invariant")
	fmt.Fprintf(w, "query: %s\n", sql)
	fmt.Fprintf(w, "%-8s %-12s %-10s %-14s %-14s %-10s\n",
		"scale", "scan_rows", "sum_rows", "regen", "summary", "speedup")
	for _, sf := range scales {
		c := cfg
		c.ScaleFactor = sf
		pkg, err := capture(c)
		if err != nil {
			return err
		}
		sum, _, err := core.BuildFromPackage(pkg, summary.DefaultBuildOptions())
		if err != nil {
			return err
		}
		rel := sum.Relations["store_sales"]
		if rel == nil {
			return fmt.Errorf("E17: summary has no store_sales relation")
		}
		regen := core.RegenDatabase(sum, 0)
		q, err := sqlkit.Parse(sql)
		if err != nil {
			return err
		}
		plan, err := engine.BuildPlan(regen.Schema, q)
		if err != nil {
			return err
		}
		slow, slowElapsed, err := timeExec(regen, plan, engine.ExecOptions{NoSummaryAgg: true}, engine.Execute)
		if err != nil {
			return err
		}
		fast, fastElapsed, err := timeExec(regen, plan, engine.ExecOptions{}, engine.Execute)
		if err != nil {
			return err
		}
		if fast.Path != engine.PathSummary {
			return fmt.Errorf("E17: sf=%.2f query was not answered summary-directly (path %q)", sf, fast.Path)
		}
		if fast.Count != slow.Count || fast.Rows != slow.Rows {
			return fmt.Errorf("E17: sf=%.2f summary-direct count %d != regenerated %d", sf, fast.Count, slow.Count)
		}
		fmt.Fprintf(w, "%-8.2f %-12d %-10d %-14v %-14v %-10.1f\n",
			sf, rel.Total, len(rel.Rows),
			slowElapsed.Round(time.Microsecond), fastElapsed.Round(time.Microsecond),
			float64(slowElapsed)/float64(fastElapsed))
	}
	fmt.Fprintln(w, "answers identical at every scale; summary latency tracks summary rows, not data rows")
	return nil
}
