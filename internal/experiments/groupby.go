package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sqlkit"
	"repro/internal/summary"
)

// E13GroupBy is the grouped-aggregation scaling sweep: the same
// COUNT/SUM/MIN/MAX/AVG aggregate suite regenerated datalessly over
// store_sales, grouped by keys of increasing cardinality (a handful of
// stores up to thousands of customers) and executed sequentially and
// morsel-parallel. Two effects should show: throughput stays near the
// ungrouped scan rate while the group count is small (the hash-agg state
// stays cache-resident), and parallel partial aggregation pays off because
// only per-worker group tables — not row streams — are merged. Grouped
// answers are cross-checked against the row-at-a-time reference executor,
// byte for byte, at every point of the sweep.
func E13GroupBy(w io.Writer, cfg Config, workerCounts []int) error {
	pkg, err := capture(cfg)
	if err != nil {
		return err
	}
	sum, _, err := core.BuildFromPackage(pkg, summary.DefaultBuildOptions())
	if err != nil {
		return err
	}
	regen := core.RegenDatabase(sum, 0)
	rel := sum.Relations["store_sales"]
	if rel == nil {
		return fmt.Errorf("E13: summary has no store_sales relation")
	}

	groupCols := []string{"ss_store_sk", "ss_promo_sk", "ss_item_sk", "ss_customer_sk"}

	fmt.Fprintf(w, "E13: GROUP BY scaling sweep over store_sales (%d rows regenerated per query; aggregates: COUNT, SUM, MIN, MAX, AVG)\n", rel.Total)
	fmt.Fprintf(w, "%-16s %-9s %-9s %-14s %-12s\n", "group_col", "groups", "workers", "elapsed", "rows/sec")
	for _, col := range groupCols {
		sql := fmt.Sprintf(
			"SELECT %s, COUNT(*), SUM(ss_quantity), MIN(ss_quantity), MAX(ss_quantity), AVG(ss_sales_price) FROM store_sales GROUP BY %s",
			col, col)
		q, err := sqlkit.Parse(sql)
		if err != nil {
			return err
		}
		plan, err := engine.BuildPlan(regen.Schema, q)
		if err != nil {
			return err
		}
		ref, err := engine.ExecuteRows(regen, plan, engine.ExecOptions{SampleLimit: 1 << 20, NoSummaryAgg: true})
		if err != nil {
			return err
		}
		for _, workers := range workerCounts {
			opts := engine.ExecOptions{Parallelism: workers, NoSummaryAgg: true}
			exec := engine.Execute
			if workers >= 1 {
				exec = engine.ExecuteParallel
			}
			res, elapsed, err := timeExec(regen, plan, opts, exec)
			if err != nil {
				return err
			}
			if res.Rows != ref.Rows {
				return fmt.Errorf("E13: %s w=%d: %d groups, reference %d", col, workers, res.Rows, ref.Rows)
			}
			fmt.Fprintf(w, "%-16s %-9d %-9d %-14v %-12.0f\n",
				col, res.Rows, workers, elapsed.Round(time.Microsecond), float64(rel.Total)/elapsed.Seconds())
		}
		// Sampled run: materialize every group row and hold it to the
		// reference output (the byte-identical contract, not just counts).
		res, err := engine.Execute(regen, plan, engine.ExecOptions{SampleLimit: 1 << 20, NoSummaryAgg: true})
		if err != nil {
			return err
		}
		if len(res.Sample) != len(ref.Sample) {
			return fmt.Errorf("E13: %s: %d group rows, reference %d", col, len(res.Sample), len(ref.Sample))
		}
		for i := range ref.Sample {
			for j := range ref.Sample[i] {
				if res.Sample[i][j] != ref.Sample[i][j] {
					return fmt.Errorf("E13: %s: group row %d = %v, reference %v", col, i, res.Sample[i], ref.Sample[i])
				}
			}
		}
	}
	fmt.Fprintln(w, "grouped answers identical to the row-at-a-time reference at every point")
	return nil
}
