package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sqlkit"
	"repro/internal/summary"
)

// E12Projection measures what projection pushdown buys: the same fact-table
// scan regenerated datalessly under queries touching progressively more of
// store_sales's nine columns (1, 2, 4 via range predicates, all nine via a
// sampled SELECT *). The columnar executor materializes only the columns
// required-column analysis reports, so throughput should track the touched
// fraction rather than the table width; the table prints both. Answers are
// cross-checked against the row-at-a-time reference executor.
func E12Projection(w io.Writer, cfg Config) error {
	pkg, err := capture(cfg)
	if err != nil {
		return err
	}
	sum, _, err := core.BuildFromPackage(pkg, summary.DefaultBuildOptions())
	if err != nil {
		return err
	}
	regen := core.RegenDatabase(sum, 0)
	rel := sum.Relations["store_sales"]
	if rel == nil {
		return fmt.Errorf("E12: summary has no store_sales relation")
	}
	width := len(sum.Schema.Table("store_sales").Columns)

	variants := []struct {
		label  string
		sql    string
		sample int // SampleLimit, forcing output materialization when > 0
	}{
		{"1 col", "SELECT COUNT(*) FROM store_sales WHERE ss_quantity >= 1", 0},
		{"2 cols", "SELECT COUNT(*) FROM store_sales WHERE ss_quantity >= 1 AND ss_sales_price >= 0.00", 0},
		{"4 cols", "SELECT COUNT(*) FROM store_sales WHERE ss_quantity >= 1 AND ss_sales_price >= 0.00 AND ss_wholesale_cost >= 0.00 AND ss_item_sk >= 0", 0},
		{"all cols", "SELECT * FROM store_sales WHERE ss_quantity >= 1", 1},
	}

	fmt.Fprintf(w, "E12: projection-factor sweep over store_sales (%d columns, %d rows regenerated per query)\n", width, rel.Total)
	fmt.Fprintf(w, "%-10s %-10s %-12s %-14s %-12s %-10s\n", "variant", "scan_cols", "rows", "elapsed", "rows/sec", "vs_full")
	var fullRate float64
	// Measure widest first so the "vs_full" column has its reference.
	for i := len(variants) - 1; i >= 0; i-- {
		v := variants[i]
		q, err := sqlkit.Parse(v.sql)
		if err != nil {
			return err
		}
		plan, err := engine.BuildPlan(regen.Schema, q)
		if err != nil {
			return err
		}
		scanCols := len(plan.RequiredScanCols(v.sample > 0)["store_sales"])
		opts := engine.ExecOptions{SampleLimit: v.sample, NoSummaryAgg: true}
		res, elapsed, err := timeExec(regen, plan, opts, engine.Execute)
		if err != nil {
			return err
		}
		ref, err := engine.ExecuteRows(regen, plan, opts)
		if err != nil {
			return err
		}
		if res.Rows != ref.Rows || res.Count != ref.Count {
			return fmt.Errorf("E12: %s: columnar answer %d/%d != reference %d/%d", v.label, res.Rows, res.Count, ref.Rows, ref.Count)
		}
		rate := float64(rel.Total) / elapsed.Seconds()
		if i == len(variants)-1 {
			fullRate = rate
		}
		fmt.Fprintf(w, "%-10s %d/%-8d %-12d %-14v %-12.0f %-10.2f\n",
			v.label, scanCols, width, res.Rows, elapsed.Round(time.Microsecond), rate, rate/fullRate)
	}
	fmt.Fprintln(w, "answers identical to the row-at-a-time reference at every projection")
	return nil
}
