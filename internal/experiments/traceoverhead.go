package experiments

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sqlkit"
	"repro/internal/summary"
	"repro/internal/trace"
)

// E16TraceOverhead measures what query-level tracing costs on the paths
// that carry the engine's zero-allocation contract. The steady-state
// prepared query (the serve cache-hit regime) runs twice under identical
// conditions — Trace off and Trace on — and the fractional slowdown is the
// overhead of stamping every operator's Next calls into the recycled span
// arena. Both variants are held to zero allocations per execution: with
// tracing off no recorder exists at all, and with tracing on the spans are
// preallocated at Prepare time and recycled by Reset, so the hot path only
// writes fields of live objects. The target is under 3% overhead traced
// and, by construction, 0% untraced.
//
// The experiment closes with the query's EXPLAIN ANALYZE rendering — the
// user-facing artifact the spans exist for.
func E16TraceOverhead(w io.Writer, cfg Config) error {
	pkg, err := capture(cfg)
	if err != nil {
		return err
	}
	sum, _, err := core.BuildFromPackage(pkg, summary.DefaultBuildOptions())
	if err != nil {
		return err
	}
	regen := core.RegenDatabase(sum, 0)

	sql := pkg.Workload[0].SQL
	q, err := sqlkit.Parse(sql)
	if err != nil {
		return err
	}
	plan, err := engine.BuildPlan(regen.Schema, q)
	if err != nil {
		return err
	}
	prep, err := engine.Prepare(regen, plan, engine.ExecOptions{NoSummaryAgg: true})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "E16: tracing overhead on the steady-state prepared query\n")
	fmt.Fprintf(w, "query: %s\n", sql)

	type variant struct {
		label string
		opts  engine.ExecOptions
	}
	variants := []variant{
		{"trace off", engine.ExecOptions{NoSummaryAgg: true}},
		{"trace on", engine.ExecOptions{Trace: true, NoSummaryAgg: true}},
	}
	var scanRows float64
	var walk func(pn *engine.PlanNode)
	walk = func(pn *engine.PlanNode) {
		if pn.Op == engine.OpScan {
			if rel := sum.Relations[pn.Table]; rel != nil {
				scanRows += float64(rel.Total)
			}
		}
		for _, c := range pn.Children {
			walk(c)
		}
	}
	walk(plan.Root)
	// Warm each variant's state once and hold it to the zero-allocation
	// contract before timing anything.
	states := make([]*engine.ExecState, len(variants))
	for i, v := range variants {
		st := &engine.ExecState{}
		states[i] = st
		if _, err := prep.ExecuteIn(st, v.opts); err != nil {
			return err
		}
		allocs := testing.AllocsPerRun(200, func() {
			if _, err := prep.ExecuteIn(st, v.opts); err != nil {
				panic(err)
			}
		})
		if allocs != 0 {
			return fmt.Errorf("E16: %s allocates %.0f objects/op, want 0", v.label, allocs)
		}
	}

	// Interleaved best-of-5: single benchmark runs on a shared box swing
	// ±10% — far above the effect being measured — so the variants
	// alternate (both see the same machine weather) and each keeps its
	// least-disturbed round.
	ns := make([]float64, len(variants))
	for round := 0; round < 5; round++ {
		for i, v := range variants {
			st, opts := states[i], v.opts
			r := testing.Benchmark(func(b *testing.B) {
				for j := 0; j < b.N; j++ {
					if _, err := prep.ExecuteIn(st, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
			if got := float64(r.T.Nanoseconds()) / float64(r.N); ns[i] == 0 || got < ns[i] {
				ns[i] = got
			}
		}
	}

	fmt.Fprintf(w, "%-10s %-14s %-12s %-10s %-10s\n", "variant", "ns/op", "rows/sec", "allocs/op", "overhead")
	for i, v := range variants {
		overhead := "baseline"
		if i > 0 && ns[0] > 0 {
			overhead = fmt.Sprintf("%+.2f%%", (ns[i]-ns[0])/ns[0]*100)
		}
		rate := 0.0
		if ns[i] > 0 {
			rate = scanRows * 1e9 / ns[i]
		}
		fmt.Fprintf(w, "%-10s %-14.0f %-12.0f %-10d %-10s\n", v.label, ns[i], rate, 0, overhead)
	}

	// The artifact: one traced execution rendered as EXPLAIN ANALYZE text.
	var st engine.ExecState
	res, err := prep.ExecuteIn(&st, engine.ExecOptions{Trace: true, NoSummaryAgg: true})
	if err != nil {
		return err
	}
	if res.Trace == nil {
		return fmt.Errorf("E16: traced execution returned no span tree")
	}
	fmt.Fprintf(w, "EXPLAIN ANALYZE %s\n%s", sql, trace.Render(res.Trace))
	fmt.Fprintln(w, "both variants execute at zero allocations per query; tracing off has no recorder at all")
	return nil
}
