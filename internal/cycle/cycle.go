// Package cycle holds the interval arithmetic shared by the engine's two
// summary-direct paths: the aggregate evaluator (summaryagg.go), which sums
// cycling columns in closed form, and the pruned scan (prune.go), which
// turns a predicate's surviving cycle ranks into the exact tuple positions
// a summary row contributes. Both reason about the generator's law — within
// a summary row of Count n, the tuple at offset w takes value
// Set.At(w mod Set.Len()), with the phase resetting to zero at every
// summary row — so the helpers live in one package rather than two
// re-implementations.
//
// The 128-bit sum helpers (Mul128, MulAcc128, SumSet128 and the float
// conversions) are the exact arithmetic the aggregate path folds with;
// Ranks and Positions are the position kernels the pruned scan seeks with.
// All of them are allocation-free: the position kernels append only into
// caller-provided destination slices.
package cycle

import (
	"math"
	"math/bits"

	"repro/internal/value"
)

// Mul128 returns the signed 128-bit product a·b as (low, high) words.
//
//hydra:hotpath
func Mul128(a, b int64) (lo, hi int64) {
	h, l := bits.Mul64(uint64(a), uint64(b))
	if a < 0 {
		h -= uint64(b)
	}
	if b < 0 {
		h -= uint64(a)
	}
	return int64(l), int64(h)
}

// MulAcc128 returns (accLo,accHi) + (lo,hi)·c for c >= 0, all signed 128-bit.
//
//hydra:hotpath
func MulAcc128(accLo, accHi, lo, hi, c int64) (int64, int64) {
	ph, pl := bits.Mul64(uint64(lo), uint64(c))
	rhi := hi*c + int64(ph)
	s, carry := bits.Add64(uint64(accLo), pl, 0)
	return int64(s), accHi + rhi + int64(carry)
}

// SumSet128 returns the exact sum of a canonical interval set's points in
// 128 bits. Per interval [a,b): Σ = u·(a+b−1)/2 with u = b−a; exactly one
// of u and a+b−1 is even, so the halving is exact in integers.
//
//hydra:hotpath
func SumSet128(s value.IntervalSet) (lo, hi int64) {
	for _, iv := range s {
		u := iv.Hi - iv.Lo
		m := iv.Lo + iv.Hi - 1
		var plo, phi int64
		if u%2 == 0 {
			plo, phi = Mul128(u/2, m)
		} else {
			plo, phi = Mul128(u, m/2)
		}
		s, carry := bits.Add64(uint64(lo), uint64(plo), 0)
		lo = int64(s)
		hi += phi + int64(carry)
	}
	return lo, hi
}

// SumSetFloat is SumSet128's float64 counterpart for the estimation path.
func SumSetFloat(s value.IntervalSet) float64 {
	var sum float64
	for _, iv := range s {
		sum += float64(iv.Hi-iv.Lo) * (float64(iv.Lo) + float64(iv.Hi-1)) / 2
	}
	return sum
}

// Sum128Float converts a signed 128-bit value to float64.
func Sum128Float(lo, hi int64) float64 {
	if hi == lo>>63 {
		// The value fits in the low word; converting it directly avoids the
		// catastrophic hi/lo cancellation of the wide path (−2⁶⁴ + ~2⁶⁴)
		// for small negative values.
		return float64(lo)
	}
	return math.Ldexp(float64(hi), 64) + float64(uint64(lo))
}

// ClampInt64 saturates a float64 into int64.
func ClampInt64(f float64) int64 {
	if f >= math.MaxInt64 {
		return math.MaxInt64
	}
	if f <= math.MinInt64 {
		return math.MinInt64
	}
	return int64(f)
}

// Ranks maps the surviving values of one cycling column into rank space:
// given the column's canonical cycle set s and i = s ∩ P (the shape
// IntersectInto produces — canonical, with every i interval inside exactly
// one s interval), it returns the set of cycle offsets w in [0, s.Len())
// whose value s.At(w) lies in i, appended into dst[:0]. Value intervals
// separated only by gaps of s become adjacent in rank space, so outputs are
// merged: the result is canonical over [0, L).
//
//hydra:hotpath
func Ranks(dst value.IntervalSet, s, i value.IntervalSet) value.IntervalSet {
	dst = dst[:0]
	var base int64 // ranks preceding the current s interval
	ii := 0
	for si := 0; si < len(s) && ii < len(i); si++ {
		sv := s[si]
		for ii < len(i) && i[ii].Hi <= sv.Hi {
			iv := i[ii]
			ii++
			if iv.Lo < sv.Lo {
				continue // not inside sv: malformed input, skip defensively
			}
			lo := base + (iv.Lo - sv.Lo)
			hi := base + (iv.Hi - sv.Lo)
			if k := len(dst); k > 0 && dst[k-1].Hi == lo {
				dst[k-1].Hi = hi
			} else {
				dst = append(dst, value.Ival(lo, hi))
			}
		}
		base += sv.Hi - sv.Lo
	}
	return dst
}

// Positions expands surviving cycle ranks into global tuple positions for
// one summary row: the row's tuples occupy [base, base+n), its driving
// column cycles with period l, and ranks (canonical over [0, l)) holds the
// offsets-within-cycle that survive the predicate. The result — appended
// into dst[:0] — is the canonical set of global positions p in
// [base, base+n) with (p−base) mod l ∈ ranks: ascending, disjoint, with
// cycle-straddling adjacency merged (a full-cycle ranks of [0,l) collapses
// to the single interval [base, base+n)).
//
//hydra:hotpath
func Positions(dst value.IntervalSet, base, n, l int64, ranks value.IntervalSet) value.IntervalSet {
	dst = dst[:0]
	if n <= 0 || l <= 0 || len(ranks) == 0 {
		return dst
	}
	for c := int64(0); c*l < n; c++ {
		off := base + c*l
		lim := n - c*l // offsets of the row still available in this cycle
		for _, r := range ranks {
			lo := r.Lo
			if lo >= lim {
				break
			}
			hi := r.Hi
			if hi > lim {
				hi = lim
			}
			glo, ghi := off+lo, off+hi
			if k := len(dst); k > 0 && dst[k-1].Hi == glo {
				dst[k-1].Hi = ghi
			} else {
				dst = append(dst, value.Ival(glo, ghi))
			}
		}
	}
	return dst
}
