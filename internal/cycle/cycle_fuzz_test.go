package cycle

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/value"
)

// FuzzSum128 differentially tests the summary-direct path's 128-bit helpers
// against math/big: Mul128 and MulAcc128 (word arithmetic and sign
// correction), SumSet128 (the exact-halving interval sum), and the float
// conversions Sum128Float / SumSetFloat — the catastrophic-cancellation
// class PR 8 fixed by hand (a small negative total computed as
// −2⁶⁴ + (2⁶⁴ − ε) through the wide path).

// bigIntervalSum is the exact sum of an interval's points: u·(lo+hi−1)/2
// with u = hi−lo; exactly one factor is even, so the division is exact.
func bigIntervalSum(iv value.Interval) *big.Int {
	if iv.Empty() {
		return new(big.Int)
	}
	u := new(big.Int).SetInt64(iv.Hi - iv.Lo)
	m := new(big.Int).SetInt64(iv.Lo + iv.Hi - 1)
	u.Mul(u, m)
	return u.Rsh(u, 1)
}

func FuzzSum128(f *testing.F) {
	// The PR 8 catastrophic-cancellation witness: total −5 carried as
	// lo=−5, hi=−1; the wide conversion path loses it to rounding.
	f.Add(int64(-5), int64(-1), int64(3), int64(-7), int64(9), int64(-100), int64(50), int64(3), int64(1000))
	f.Add(int64(0), int64(0), int64(0), int64(0), int64(0), int64(0), int64(0), int64(0), int64(0))
	f.Add(int64(math.MaxInt64), int64(math.MinInt64), int64(math.MinInt64), int64(math.MaxInt64), int64(1), int64(value.DomainMax/3), int64(1<<31), int64(7), int64(1<<30))
	f.Add(int64(-1), int64(0), int64(-1), int64(-1), int64(math.MaxInt64), int64(value.DomainMin/3), int64(1<<20), int64(0), int64(5))
	f.Fuzz(func(t *testing.T, lo, hi, a, b, c int64, iv1lo, iv1n, gap, iv2n int64) {
		// Mul128: unrestricted — any int64 product fits in 128 bits.
		pl, ph := Mul128(a, b)
		wantMul := new(big.Int).Mul(big.NewInt(a), big.NewInt(b))
		if big128(pl, ph).Cmp(wantMul) != 0 {
			t.Fatalf("Mul128(%d, %d) = %v, want %v", a, b, big128(pl, ph), wantMul)
		}

		// MulAcc128: bounded to its documented contract (c >= 0, operands
		// small enough that hi*c cannot overflow; the engine's totals stay
		// below 2¹²⁴).
		mHi := hi % (1 << 40)
		cm := c % (1 << 20)
		if cm < 0 {
			cm = -cm
		}
		accHi := a % (1 << 40)
		gl, gh := MulAcc128(lo, accHi, b, mHi, cm)
		wantAcc := new(big.Int).Mul(big128(b, mHi), big.NewInt(cm))
		wantAcc.Add(wantAcc, big128(lo, accHi))
		if big128(gl, gh).Cmp(wantAcc) != 0 {
			t.Fatalf("MulAcc128(%d,%d, %d,%d, %d) = %v, want %v", lo, accHi, b, mHi, cm, big128(gl, gh), wantAcc)
		}

		// SumSet128 over a canonical two-interval set built inside the
		// value domain: exact against per-interval big sums.
		lo1 := iv1lo % (value.DomainMax / 2)
		n1 := iv1n & (1<<32 - 1)
		g := gap&(1<<16-1) + 1
		n2 := iv2n & (1<<32 - 1)
		set := value.IntervalSet{
			value.Ival(lo1, lo1+n1),
			value.Ival(lo1+n1+g, lo1+n1+g+n2),
		}
		sl, sh := SumSet128(set)
		wantSum := new(big.Int)
		maxContrib := new(big.Float)
		for _, iv := range set {
			contrib := bigIntervalSum(iv)
			wantSum.Add(wantSum, contrib)
			cf := new(big.Float).SetInt(contrib)
			if cf.Abs(cf).Cmp(maxContrib) > 0 {
				maxContrib = cf
			}
		}
		if big128(sl, sh).Cmp(wantSum) != 0 {
			t.Fatalf("SumSet128(%v) = %v, want %v", set, big128(sl, sh), wantSum)
		}

		// SumSetFloat: the estimation path re-derives the same sum in
		// float64; each interval contributes ~1e-16 relative error, and
		// opposite-sign intervals may cancel, so the bound is scaled by the
		// largest contribution, not the result.
		wantF, _ := new(big.Float).SetInt(wantSum).Float64()
		maxC, _ := maxContrib.Float64()
		if sf := SumSetFloat(set); math.Abs(sf-wantF) > 1e-12*maxC+1e-9 {
			t.Fatalf("SumSetFloat(%v) = %g, want %g (tol %g)", set, sf, wantF, 1e-12*maxC)
		}

		// Sum128Float on the raw fuzz words. When the value fits the low
		// word the conversion must be exact to float64 rounding (this is
		// the PR 8 class: small totals with hi = sign extension); the wide
		// path tolerates cancellation up to ~4 ulp of the larger term.
		got := Sum128Float(lo, hi)
		want128, _ := new(big.Float).SetInt(big128(lo, hi)).Float64()
		if hi == lo>>63 {
			if got != want128 {
				t.Fatalf("Sum128Float(%d, %d) = %g, want exactly %g", lo, hi, got, want128)
			}
		} else if math.Abs(got-want128) > math.Abs(want128)*1e-12 {
			t.Fatalf("Sum128Float(%d, %d) = %g, want %g", lo, hi, got, want128)
		}

		// And on the interval-set total, as the fast path consumes it.
		gotSumF := Sum128Float(sl, sh)
		if sh == sl>>63 {
			if gotSumF != wantF {
				t.Fatalf("Sum128Float(SumSet128(%v)) = %g, want exactly %g", set, gotSumF, wantF)
			}
		} else if math.Abs(gotSumF-wantF) > math.Abs(wantF)*1e-12 {
			t.Fatalf("Sum128Float(SumSet128(%v)) = %g, want %g", set, gotSumF, wantF)
		}
	})
}

// FuzzPositions differentially tests the position-enumeration kernels the
// pruned scan is built on: for a fuzzed cycle set S, predicate set P, and
// row geometry (base, n), the composed Ranks/Positions output must equal
// brute-force evaluation of the generator's law — offset w survives iff
// P contains S.At(w mod S.Len()).
func FuzzPositions(f *testing.F) {
	f.Add(int64(0), int64(10), int64(3), int64(20), int64(5), int64(25), int64(0), int64(61))
	f.Add(int64(-5), int64(2), int64(1), int64(1), int64(-5), int64(0), int64(100), int64(7))
	f.Add(int64(0), int64(2), int64(8), int64(2), int64(0), int64(12), int64(3), int64(9)) // gap-merge shape
	f.Add(int64(1), int64(1), int64(1), int64(1), int64(-100), int64(100), int64(50), int64(1))
	f.Fuzz(func(t *testing.T, s1lo, s1n, sgap, s2n, plo, phi, base, n int64) {
		// Build a canonical two-interval cycle set and a predicate interval,
		// all bounded so brute force stays cheap.
		s1lo %= 1 << 10
		s1n = s1n&(1<<6-1) + 1
		sgap = sgap&(1<<6-1) + 1
		s2n = s2n & (1<<6 - 1)
		S := value.IntervalSet{value.Ival(s1lo, s1lo+s1n)}
		if s2n > 0 {
			S = append(S, value.Ival(s1lo+s1n+sgap, s1lo+s1n+sgap+s2n))
		}
		plo %= 1 << 11
		phi %= 1 << 11
		if phi < plo {
			plo, phi = phi, plo
		}
		P := value.IntervalSet{value.Ival(plo, phi+1)}
		base = base & (1<<20 - 1)
		n = n & (1<<10 - 1)

		L := S.Len()
		I := S.IntersectInto(nil, P)
		R := Ranks(nil, S, I)

		// Ranks invariants: canonical over [0, L), count = |I|.
		var rn int64
		for k, r := range R {
			if r.Lo >= r.Hi || r.Lo < 0 || r.Hi > L {
				t.Fatalf("Ranks(%v, %v)[%d] = %v out of [0,%d)", S, I, k, r, L)
			}
			if k > 0 && R[k-1].Hi >= r.Lo {
				t.Fatalf("Ranks(%v, %v) not canonical: %v", S, I, R)
			}
			rn += r.Hi - r.Lo
		}
		if rn != I.Len() {
			t.Fatalf("Ranks(%v, %v) covers %d ranks, want %d", S, I, rn, I.Len())
		}

		got := Positions(nil, base, n, L, R)
		var want value.IntervalSet
		var wantCount int64
		for w := int64(0); w < n; w++ {
			if !P.Contains(S.At(w % L)) {
				continue
			}
			wantCount++
			g := base + w
			if k := len(want); k > 0 && want[k-1].Hi == g {
				want[k-1].Hi = g + 1
			} else {
				want = append(want, value.Ival(g, g+1))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("Positions(%d,%d,%d,%v) = %v, want %v", base, n, L, R, got, want)
		}
		var gotCount int64
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("Positions(%d,%d,%d,%v)[%d] = %v, want %v", base, n, L, R, k, got[k], want[k])
			}
			gotCount += got[k].Hi - got[k].Lo
		}
		if gotCount != wantCount {
			t.Fatalf("Positions count %d, want %d", gotCount, wantCount)
		}
	})
}
