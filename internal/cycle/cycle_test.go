package cycle

import (
	"math"
	"math/big"
	"reflect"
	"testing"

	"repro/internal/value"
)

// big128 reconstructs the signed 128-bit value (hi·2⁶⁴ + uint64(lo)) as a
// big.Int for exact comparison.
func big128(lo, hi int64) *big.Int {
	v := new(big.Int).Lsh(big.NewInt(hi), 64)
	return v.Add(v, new(big.Int).SetUint64(uint64(lo)))
}

// Test128BitHelpers cross-checks the 128-bit arithmetic the summary-direct
// paths sum with against math/big references on edge values.
func Test128BitHelpers(t *testing.T) {
	for _, tc := range []struct{ a, b int64 }{
		{0, 0}, {1, 1}, {-1, 1}, {-1, -1},
		{math.MaxInt64, 2}, {math.MinInt64, 3}, {1 << 61, 1 << 2},
		{-(1 << 61), 12345}, {987654321, -123456789},
		{math.MaxInt64, math.MaxInt64}, {math.MinInt64, math.MinInt64},
	} {
		lo, hi := Mul128(tc.a, tc.b)
		want := new(big.Int).Mul(big.NewInt(tc.a), big.NewInt(tc.b))
		if got := big128(lo, hi); got.Cmp(want) != 0 {
			t.Errorf("Mul128(%d,%d) = (%d,%d) = %s, want %s", tc.a, tc.b, lo, hi, got, want)
		}
		if f, want := Sum128Float(lo, hi), float64(tc.a)*float64(tc.b); math.Abs(f-want) > math.Abs(want)*1e-9 {
			t.Errorf("Sum128Float(Mul128(%d,%d)) = %g, want ≈ %g", tc.a, tc.b, f, want)
		}
		// MulAcc128 accumulates c copies of (lo,hi) onto a running pair.
		// Its contract is bounded by the evaluator's use — Σ value·count
		// with total count ≤ 2⁶³, which always fits 128 bits — so only
		// check in-range accumulations.
		wantAcc := new(big.Int).Add(big.NewInt(5), new(big.Int).Mul(want, big.NewInt(3)))
		if wantAcc.BitLen() < 127 {
			alo, ahi := MulAcc128(5, 0, lo, hi, 3)
			if got := big128(alo, ahi); got.Cmp(wantAcc) != 0 {
				t.Errorf("MulAcc128(5, 3×%s) = %s, want %s", want, got, wantAcc)
			}
		}
	}
	s := value.IntervalSet{value.Ival(-3, 2), value.Ival(10, 14)}
	lo, hi := SumSet128(s)
	var want int64
	for _, iv := range s {
		for v := iv.Lo; v < iv.Hi; v++ {
			want += v
		}
	}
	if hi != want>>63 || lo != want {
		t.Fatalf("SumSet128(%v) = (%d,%d), want %d", s, lo, hi, want)
	}
	if f := SumSetFloat(s); f != float64(want) {
		t.Fatalf("SumSetFloat(%v) = %g, want %d", s, f, want)
	}
}

func ivs(pairs ...int64) value.IntervalSet {
	out := make(value.IntervalSet, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, value.Ival(pairs[i], pairs[i+1]))
	}
	return out
}

// rankBrute computes Ranks' contract the slow way: rank r survives iff the
// r-th smallest point of s lies in i.
func rankBrute(s, i value.IntervalSet) value.IntervalSet {
	var out value.IntervalSet
	for r := int64(0); r < s.Len(); r++ {
		if !i.Contains(s.At(r)) {
			continue
		}
		if k := len(out); k > 0 && out[k-1].Hi == r {
			out[k-1].Hi = r + 1
		} else {
			out = append(out, value.Ival(r, r+1))
		}
	}
	return out
}

func TestRanks(t *testing.T) {
	for _, tc := range []struct {
		name string
		s, i value.IntervalSet
	}{
		{"full", ivs(0, 10), ivs(0, 10)},
		{"prefix", ivs(0, 10), ivs(0, 3)},
		{"suffix", ivs(0, 10), ivs(7, 10)},
		{"middle", ivs(5, 25), ivs(11, 14)},
		{"empty-i", ivs(0, 10), nil},
		{"two-in-one", ivs(0, 100), ivs(3, 7, 50, 60)},
		// Value intervals separated only by a gap of s become adjacent in
		// rank space and must merge: S = {[0,2),[10,12)}, I = S → [0,4).
		{"gap-merge", ivs(0, 2, 10, 12), ivs(0, 2, 10, 12)},
		{"gap-partial", ivs(0, 5, 10, 15), ivs(3, 5, 10, 12)},
		{"negative", ivs(-20, -10, 0, 4), ivs(-15, -12, 1, 3)},
		{"three-spans", ivs(0, 4, 8, 12, 100, 104), ivs(2, 4, 8, 10, 100, 101)},
	} {
		got := Ranks(nil, tc.s, tc.i)
		want := rankBrute(tc.s, tc.i)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: Ranks(%v, %v) = %v, want %v", tc.name, tc.s, tc.i, got, want)
		}
	}
	// The gap-merge case specifically must come out as one interval.
	if got := Ranks(nil, ivs(0, 2, 10, 12), ivs(0, 2, 10, 12)); len(got) != 1 || got[0] != value.Ival(0, 4) {
		t.Errorf("gap-merge Ranks = %v, want [0,4)", got)
	}
}

// posBrute enumerates Positions' contract directly: offset w of the row
// survives iff w mod l is a surviving rank.
func posBrute(base, n, l int64, ranks value.IntervalSet) value.IntervalSet {
	var out value.IntervalSet
	for w := int64(0); w < n; w++ {
		if !ranks.Contains(w % l) {
			continue
		}
		g := base + w
		if k := len(out); k > 0 && out[k-1].Hi == g {
			out[k-1].Hi = g + 1
		} else {
			out = append(out, value.Ival(g, g+1))
		}
	}
	return out
}

func TestPositions(t *testing.T) {
	for _, tc := range []struct {
		name    string
		base, n int64
		l       int64
		ranks   value.IntervalSet
	}{
		{"full-cycle", 100, 10, 5, ivs(0, 5)},
		{"single-rank", 0, 20, 5, ivs(2, 3)},
		{"rank-span", 7, 23, 10, ivs(3, 6)},
		{"partial-last-cycle", 0, 13, 5, ivs(3, 5)},
		{"wrap-merge", 0, 20, 5, ivs(0, 1, 4, 5)}, // rank 4 then rank 0 of next cycle are adjacent
		{"row-shorter-than-cycle", 50, 3, 10, ivs(1, 6)},
		{"empty-ranks", 0, 10, 5, nil},
		{"two-ranks", 1000, 17, 6, ivs(1, 2, 4, 6)},
	} {
		got := Positions(nil, tc.base, tc.n, tc.l, tc.ranks)
		want := posBrute(tc.base, tc.n, tc.l, tc.ranks)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: Positions(%d,%d,%d,%v) = %v, want %v",
				tc.name, tc.base, tc.n, tc.l, tc.ranks, got, want)
		}
	}
	// A full-cycle rank set must collapse to a single interval.
	if got := Positions(nil, 100, 17, 5, ivs(0, 5)); len(got) != 1 || got[0] != value.Ival(100, 117) {
		t.Errorf("full-cycle Positions = %v, want [100,117)", got)
	}
}

// TestRanksPositionsCompose drives the two kernels end to end the way the
// pruned scan does: S ∩ P → Ranks → Positions must equal brute-force
// evaluation of "P.Contains(S.At(w mod L))" over the whole row.
func TestRanksPositionsCompose(t *testing.T) {
	S := ivs(0, 10, 20, 30, 45, 50)
	for _, P := range []value.IntervalSet{
		ivs(5, 25),
		ivs(-5, 3, 22, 23, 47, 60),
		ivs(9, 21),
		ivs(0, 100),
		ivs(200, 300),
	} {
		I := S.IntersectInto(nil, P)
		R := Ranks(nil, S, I)
		const base, n = 37, 61
		got := Positions(nil, base, n, S.Len(), R)
		var want value.IntervalSet
		for w := int64(0); w < n; w++ {
			if !P.Contains(S.At(w % S.Len())) {
				continue
			}
			g := base + int64(w)
			if k := len(want); k > 0 && want[k-1].Hi == g {
				want[k-1].Hi = g + 1
			} else {
				want = append(want, value.Ival(g, g+1))
			}
		}
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("compose P=%v: got %v, want %v", P, got, want)
		}
	}
}
