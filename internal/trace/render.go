package trace

import (
	"fmt"
	"strings"
	"time"
)

// Render draws the span tree as the EXPLAIN ANALYZE text plan: one line per
// operator with its wall time, self time, output cardinality, batch count,
// and — where the operator has input to be selective over — selectivity
// (output rows as a fraction of direct input rows). Build-side subtrees are
// marked detached; their drain wall clock appears as the join's build=.
func Render(root *Span) string {
	if root == nil {
		return ""
	}
	var sb strings.Builder
	renderSpan(&sb, root, "", "")
	return sb.String()
}

func renderSpan(sb *strings.Builder, sp *Span, head, tail string) {
	sb.WriteString(head)
	sb.WriteString(sp.Op)
	if sp.Detail != "" {
		fmt.Fprintf(sb, " %s", sp.Detail)
	}
	fmt.Fprintf(sb, "  (time=%s self=%s rows=%d batches=%d", dur(sp.DurNS), dur(sp.SelfNS()), sp.Rows, sp.Batches)
	if sp.Bytes > 0 {
		fmt.Fprintf(sb, " bytes=%d", sp.Bytes)
	}
	if sp.BuildNS > 0 {
		fmt.Fprintf(sb, " build=%s", dur(sp.BuildNS))
	}
	if in := inputRows(sp); in > 0 {
		fmt.Fprintf(sb, " sel=%.1f%%", 100*float64(sp.Rows)/float64(in))
	}
	if sp.Detached {
		sb.WriteString(" detached")
	}
	sb.WriteString(")\n")
	for i, ch := range sp.Children {
		if i < len(sp.Children)-1 {
			renderSpan(sb, ch, tail+"├── ", tail+"│   ")
		} else {
			renderSpan(sb, ch, tail+"└── ", tail+"    ")
		}
	}
}

// inputRows is the span's direct input cardinality: the sum of its
// children's output rows. Zero (no children, or nothing flowed) suppresses
// the selectivity annotation.
func inputRows(sp *Span) int64 {
	var in int64
	for _, ch := range sp.Children {
		in += ch.Rows
	}
	return in
}

// dur formats nanoseconds the way time.Duration prints, rounded to keep
// plan lines readable.
func dur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		d = d.Round(time.Millisecond)
	case d >= time.Millisecond:
		d = d.Round(time.Microsecond)
	default:
		d = d.Round(100 * time.Nanosecond)
	}
	return d.String()
}
