package trace

import (
	"strings"
	"testing"
	"time"
)

// TestRecorderArena pins the arena discipline: spans come from the
// preallocated arena up to capacity, overflow spans are tracked for
// recycling, and Reset zeroes counters everywhere while keeping identity
// (Op, Detail, Children) and frozen counters.
func TestRecorderArena(t *testing.T) {
	r := NewRecorder(2)
	a := r.NewSpan("SCAN", "t")
	b := r.NewSpan("FILTER", "p")
	c := r.NewSpan("LIMIT", "") // past capacity: overflow
	if a != &r.arena[0] || b != &r.arena[1] {
		t.Fatal("first spans not drawn from the arena")
	}
	if len(r.extra) != 1 || r.extra[0] != c {
		t.Fatalf("overflow span not tracked: %v", r.extra)
	}
	b.Children = append(b.Children, a)

	a.Begin()
	time.Sleep(time.Millisecond)
	a.Observe(10, 80)
	a.Begin()
	a.Observe(5, 40)
	b.Begin()
	b.ObserveEmpty()
	c.Begin()
	c.Observe(1, 8)
	c.Freeze()
	if a.Rows != 15 || a.Batches != 2 || a.Bytes != 120 {
		t.Fatalf("observe accumulation wrong: %+v", a)
	}
	if a.DurNS <= 0 || !a.started || a.StopNS < a.StartNS {
		t.Fatalf("observe window wrong: %+v", a)
	}

	r.Reset()
	if a.Rows != 0 || a.DurNS != 0 || a.started || b.DurNS != 0 {
		t.Fatalf("reset did not zero arena spans: %+v %+v", a, b)
	}
	if a.Op != "SCAN" || a.Detail != "t" || len(b.Children) != 1 {
		t.Fatalf("reset destroyed span identity: %+v", a)
	}
	if c.Rows != 1 || c.Bytes != 8 {
		t.Fatalf("reset zeroed a frozen span: %+v", c)
	}

	// The recycled arena hands out nothing new; Observe and Reset on live
	// spans allocate nothing.
	allocs := testing.AllocsPerRun(100, func() {
		a.Begin()
		a.Observe(3, 24)
		b.Begin()
		b.ObserveEmpty()
		r.Reset()
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates %.2f objects per run, want 0", allocs)
	}
}

// TestSelfTimeAndDetach pins the derived self-time math: nested children
// subtract from the parent's inclusive time, detached children do not, and
// clock-granularity underflow clamps at zero.
func TestSelfTimeAndDetach(t *testing.T) {
	r := NewRecorder(4)
	child := r.NewSpan("SCAN", "")
	build := r.NewSpan("FILTER", "")
	parent := r.NewSpan("HASH JOIN", "")
	parent.Children = []*Span{child, build}
	build.Detached = true

	parent.DurNS = 1000
	child.DurNS = 300
	build.DurNS = 9999 // detached: spent outside the parent's Next window
	if got := parent.SelfNS(); got != 700 {
		t.Fatalf("SelfNS = %d, want 700 (detached child excluded)", got)
	}
	child.DurNS = 2000 // clock granularity can overshoot the parent
	if got := parent.SelfNS(); got != 0 {
		t.Fatalf("SelfNS = %d, want 0 (clamped)", got)
	}
}

// TestMerge pins the parallel worker-order merge: counters sum, windows
// widen, and merging an unstarted span changes nothing.
func TestMerge(t *testing.T) {
	r := NewRecorder(3)
	dst := r.NewSpan("SCAN", "")
	w1 := r.NewSpan("SCAN", "")
	w2 := r.NewSpan("SCAN", "")
	w1.started, w1.StartNS, w1.StopNS, w1.DurNS, w1.Rows, w1.Batches, w1.Bytes = true, 100, 200, 100, 10, 1, 80
	w2.started, w2.StartNS, w2.StopNS, w2.DurNS, w2.Rows, w2.Batches, w2.Bytes = true, 50, 400, 350, 20, 2, 160

	dst.Merge(w1)
	dst.Merge(w2)
	dst.Merge(nil)
	dst.Merge(r.NewSpan("SCAN", "")) // never started: no window effect
	if dst.Rows != 30 || dst.Batches != 3 || dst.Bytes != 240 || dst.DurNS != 450 {
		t.Fatalf("merge sums wrong: %+v", dst)
	}
	if dst.StartNS != 50 || dst.StopNS != 400 {
		t.Fatalf("merge window wrong: [%d,%d], want [50,400]", dst.StartNS, dst.StopNS)
	}
}

// TestTopSelf pins deterministic top-K selection by self time.
func TestTopSelf(t *testing.T) {
	r := NewRecorder(3)
	root := r.NewSpan("LIMIT", "")
	mid := r.NewSpan("SORT", "")
	leaf := r.NewSpan("SCAN", "")
	root.Children = []*Span{mid}
	mid.Children = []*Span{leaf}
	root.DurNS, mid.DurNS, leaf.DurNS = 1000, 900, 600
	// Self: root=100, mid=300, leaf=600.
	got := TopSelf(root, 2)
	if len(got) != 2 || got[0] != leaf || got[1] != mid {
		t.Fatalf("TopSelf = %v", got)
	}
	if all := TopSelf(root, 10); len(all) != 3 {
		t.Fatalf("TopSelf over-k returned %d spans", len(all))
	}
}

// TestRender pins the rendered tree's load-bearing pieces: box drawing,
// operator lines, selectivity, and the detached marker.
func TestRender(t *testing.T) {
	r := NewRecorder(3)
	root := r.NewSpan("FILTER", "x > 3")
	leaf := r.NewSpan("SCAN", "t")
	det := r.NewSpan("SCAN", "frozen")
	root.Children = []*Span{leaf, det}
	det.Detached = true
	root.DurNS, root.Rows, root.Batches = 5000, 50, 1
	leaf.DurNS, leaf.Rows, leaf.Batches, leaf.Bytes = 4000, 100, 1, 800
	det.Rows = 7

	out := Render(root)
	for _, want := range []string{
		"FILTER x > 3", "rows=50", "sel=", "├── SCAN t", "bytes=800", "└── SCAN frozen", "detached",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if Render(nil) != "" {
		t.Fatal("rendering a nil span produced output")
	}
}
