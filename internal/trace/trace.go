// Package trace is the engine's query-level tracing substrate: a span
// recorder built for an executor whose steady state allocates nothing.
//
// A Span mirrors one operator of an executed plan and accumulates the
// operator's observed batches: wall time inside its Next calls (inclusive
// of nested children, like any call stack), output rows, batch count, and
// bytes materialized into output batches. Spans live in a fixed arena owned
// by a Recorder: the arena is sized up front (for Prepared plans, at
// Prepare time, from the plan's node count), spans are handed out at
// operator-open time, and the hot path only ever writes fields of
// already-allocated spans — Observe and Reset perform no allocation, so a
// traced steady-state execution (Prepared.ExecuteIn with Trace on) stays at
// zero allocations per query once the tree is open. With tracing off no
// Recorder exists at all and the engine's 0 allocs/op contract is untouched.
//
// Time accounting is inclusive: a parent's duration covers the child Next
// calls it makes. Self time is therefore derived, not stored:
// SelfNS = DurNS − Σ(nested children DurNS). Hash-join build sides are the
// exception — they drain at operator-open time, outside the parent's Next
// window — and are marked Detached so self-time math excludes them; the
// drain wall clock is reported separately as the join's BuildNS.
package trace

import (
	"sort"
	"time"
)

// Span is the per-operator trace record. Counter fields are written by one
// goroutine at a time (the sequential tree shares one goroutine; each
// parallel worker owns private spans merged afterwards in worker order).
type Span struct {
	// Op is the operator name (the engine's OpKind spelling); Detail is the
	// operator's distinguishing argument — table name, predicate SQL, or
	// join SQL — when it has one.
	Op     string `json:"op"`
	Detail string `json:"detail,omitempty"`

	// StartNS/StopNS bound the operator's observed activity window,
	// relative to the recorder's epoch (the execution start): StartNS is
	// when the first Next entered, StopNS when the last one returned.
	StartNS int64 `json:"start_ns"`
	StopNS  int64 `json:"stop_ns"`

	// DurNS is cumulative wall time spent inside the operator's Next calls,
	// inclusive of nested children. BuildNS is hash-join build-drain wall
	// time (spent at open, outside any Next window).
	DurNS   int64 `json:"dur_ns"`
	BuildNS int64 `json:"build_ns,omitempty"`

	// Rows, Batches, Bytes: output rows produced, batches produced, and
	// bytes materialized into output batches (populated columns × 8).
	Rows    int64 `json:"rows"`
	Batches int64 `json:"batches"`
	Bytes   int64 `json:"bytes"`

	// Detached marks a child whose time was not spent inside the parent's
	// Next window (hash-join build sides, frozen prepared builds); self-time
	// derivation skips it.
	Detached bool `json:"detached,omitempty"`

	Children []*Span `json:"children,omitempty"`

	rec     *Recorder
	cur     int64 // Begin's entry timestamp, consumed by the next Observe
	started bool
	frozen  bool // counters fixed at open time (cached build sides); Reset keeps them
}

// Freeze marks the span's counters as fixed at open time — a cached build
// side whose cardinality was recorded once and is never re-observed during
// execution — so Reset recycles the span without losing them.
func (sp *Span) Freeze() { sp.frozen = true }

// Recorder owns one execution's span arena and time epoch. Spans are
// allocated from the arena at operator-open time and recycled by Reset for
// the next execution of the same tree; neither the per-batch Observe path
// nor Reset allocates.
type Recorder struct {
	epoch time.Time
	arena []Span
	used  int
	extra []*Span // open-time overflow beyond the arena; recycled like the arena
	root  *Span
}

// NewRecorder returns a recorder with an arena of capacity spans. The
// epoch — the zero point of every span's StartNS/StopNS — is now.
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{epoch: time.Now(), arena: make([]Span, capacity)}
}

// NewSpan hands out a span from the arena (or, past capacity, a fresh
// allocation tracked for recycling). Open-time only: NewSpan must not be
// called concurrently or from a hot loop.
func (r *Recorder) NewSpan(op, detail string) *Span {
	var sp *Span
	if r.used < len(r.arena) {
		sp = &r.arena[r.used]
		r.used++
	} else {
		sp = &Span{}
		r.extra = append(r.extra, sp)
	}
	sp.Op = op
	sp.Detail = detail
	sp.rec = r
	return sp
}

// SetRoot designates the execution's root span; Root returns it.
func (r *Recorder) SetRoot(sp *Span) { r.root = sp }

// Root returns the execution's root span, or nil before SetRoot.
func (r *Recorder) Root() *Span { return r.root }

// Reset recycles every span for the next execution of the same operator
// tree: counters and windows are zeroed, identities (Op, Detail, Children,
// Detached) are kept, and the epoch restarts. No allocation.
func (r *Recorder) Reset() {
	r.epoch = time.Now()
	for i := range r.arena[:r.used] {
		r.arena[i].zero()
	}
	for _, sp := range r.extra {
		sp.zero()
	}
}

func (sp *Span) zero() {
	if sp.frozen {
		return
	}
	sp.StartNS, sp.StopNS = 0, 0
	sp.DurNS, sp.BuildNS = 0, 0
	sp.Rows, sp.Batches, sp.Bytes = 0, 0, 0
	sp.cur = 0
	sp.started = false
}

// clock is the hot-path timestamp: nanoseconds since the recorder's epoch,
// read off the monotonic clock. time.Since on a monotonic base is
// measurably cheaper than time.Now (it skips the wall-clock read), and the
// traced path takes two of these per operator Next — entry and exit — so
// the difference is the bulk of tracing's overhead.
func (r *Recorder) clock() int64 { return int64(time.Since(r.epoch)) }

// Begin stamps the operator's Next entry; the matching Observe or
// ObserveEmpty closes the interval. One Begin is consumed per observation.
func (sp *Span) Begin() { sp.cur = sp.rec.clock() }

// Observe records one produced batch: the Next call's wall time (entered at
// Begin, returning now), its output rows, and the bytes it materialized.
func (sp *Span) Observe(rows, bytes int64) {
	sp.note(sp.rec.clock())
	sp.Rows += rows
	sp.Batches++
	sp.Bytes += bytes
}

// ObserveEmpty records an exhausted Next call (no batch produced): wall
// time only, closing the activity window.
func (sp *Span) ObserveEmpty() {
	sp.note(sp.rec.clock())
}

func (sp *Span) note(end int64) {
	if !sp.started {
		sp.StartNS = sp.cur
		sp.started = true
	}
	if end > sp.StopNS {
		sp.StopNS = end
	}
	sp.DurNS += end - sp.cur
}

// Merge folds another span's counters into sp — the parallel executor's
// worker-order merge. Durations and counts sum (a merged DurNS is total
// worker time, not wall clock); the activity window widens to cover both.
func (sp *Span) Merge(o *Span) {
	if o == nil {
		return
	}
	if o.started {
		if !sp.started || o.StartNS < sp.StartNS {
			sp.StartNS = o.StartNS
		}
		if o.StopNS > sp.StopNS {
			sp.StopNS = o.StopNS
		}
		sp.started = true
	}
	sp.DurNS += o.DurNS
	sp.BuildNS += o.BuildNS
	sp.Rows += o.Rows
	sp.Batches += o.Batches
	sp.Bytes += o.Bytes
}

// SelfNS is the span's own time: inclusive duration minus the time nested
// (non-detached) children spent inside it, clamped at zero against clock
// granularity.
func (sp *Span) SelfNS() int64 {
	self := sp.DurNS
	for _, ch := range sp.Children {
		if !ch.Detached {
			self -= ch.DurNS
		}
	}
	if self < 0 {
		self = 0
	}
	return self
}

// Walk visits the tree rooted at sp in preorder.
func Walk(sp *Span, fn func(*Span)) {
	if sp == nil {
		return
	}
	fn(sp)
	for _, ch := range sp.Children {
		Walk(ch, fn)
	}
}

// TopSelf returns the k spans of the tree with the largest self time,
// descending (ties broken by preorder position, so the result is
// deterministic).
func TopSelf(root *Span, k int) []*Span {
	var all []*Span
	Walk(root, func(sp *Span) { all = append(all, sp) })
	sort.SliceStable(all, func(i, j int) bool { return all[i].SelfNS() > all[j].SelfNS() })
	if len(all) > k {
		all = all[:k]
	}
	return all
}
