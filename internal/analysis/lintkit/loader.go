package lintkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// The standalone loader: `go list -export -deps -json` enumerates the
// pattern's packages and their dependency closure, with each dependency's
// compiler export data already built into the go build cache; targets are
// then parsed from source and type-checked against that export data. This
// is the same shape as the go vet protocol (unit.go) with the go command's
// per-unit .cfg files replaced by one process-wide `go list` call — and it
// works fully offline, since export data for the standard library and the
// module's own packages is produced locally.
//
// The standalone path analyzes non-test compilation units only; `go vet
// -vettool` (the CI entry point) additionally covers the test variants.

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists patterns from dir and returns the type-checked target
// packages (the ones the patterns name, not their dependencies) in
// import-path order.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,ImportMap,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	gc := gcImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("package %s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, t.ImportPath, sourcePaths(t.Dir, t.GoFiles), mapImports(gc, t.ImportMap), "")
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// sourcePaths joins a package's file names onto its directory.
func sourcePaths(dir string, names []string) []string {
	paths := make([]string, len(names))
	for i, n := range names {
		paths[i] = filepath.Join(dir, n)
	}
	return paths
}

// gcImporter resolves import paths through compiler export data files. The
// returned importer caches packages across calls, so one importer must be
// shared by every package type-checked against the same FileSet.
func gcImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// importerFunc adapts a function to types.Importer (mirroring the adapter
// x/tools' unitchecker uses).
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// mapImports applies a package's ImportMap (vendoring, test-variant
// rewrites) before delegating to the shared gc importer.
func mapImports(imp types.Importer, importMap map[string]string) types.Importer {
	if len(importMap) == 0 {
		return imp
	}
	return importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		return imp.Import(path)
	})
}

// checkPackage parses files and type-checks them as one package, recording
// the full types.Info the analyzers need. goVersion, when non-empty, pins
// the language version (the vet protocol supplies it per unit).
func checkPackage(fset *token.FileSet, pkgPath string, files []string, imp types.Importer, goVersion string) (*Package, error) {
	var astFiles []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		astFiles = append(astFiles, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: goVersion,
	}
	tpkg, err := conf.Check(pkgPath, fset, astFiles, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Fset: fset, Files: astFiles, Types: tpkg, Info: info}, nil
}
