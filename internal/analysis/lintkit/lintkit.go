// Package lintkit is the driver vocabulary for hydralint, the engine's
// machine-checked invariant suite (DESIGN.md §12). It deliberately mirrors
// the golang.org/x/tools/go/analysis API surface — Analyzer, Pass,
// Diagnostic, a Reportf helper — so that the analyzers read like ordinary
// go/analysis analyzers and could be ported onto x/tools mechanically. It
// is implemented on the standard library alone (go/ast, go/types, the gc
// export-data importer, and the go command for package discovery) because
// the build environment vendors no third-party modules.
//
// Three drivers share this vocabulary:
//
//   - cmd/hydralint run standalone ("hydralint ./...") loads packages via
//     `go list -export -deps -json` (loader.go);
//   - cmd/hydralint invoked by `go vet -vettool=` speaks the go command's
//     unitchecker protocol (unit.go): -V=full / -flags / one *.cfg file per
//     compilation unit, with types resolved from compiler export data;
//   - the analysistest-style harness (internal/analysis/linttest) runs one
//     analyzer over a testdata package and matches `// want` comments.
//
// Suppression: a comment of the form
//
//	//hydralint:ignore <analyzer>[,<analyzer>...] <reason>
//
// suppresses diagnostics from the named analyzers on the comment's line and
// on the line directly below it (so the directive can trail the offending
// line or stand alone above it). The reason is mandatory: a bare directive
// is itself reported, as is a directive naming no known analyzer — silent
// or unexplained suppressions are exactly what the suite exists to prevent.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker: a name (the identifier used
// in diagnostics, enable flags, and ignore directives), one-paragraph
// documentation, and the Run function applied to each package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one reported violation, positioned in the package's
// FileSet and tagged with the analyzer that produced it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Package is one type-checked compilation unit, however it was loaded
// (go list, a vet .cfg, or a linttest testdata directory).
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// A Pass carries one analyzer's view of one package; it is the sole
// argument to Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. Most hydralint
// analyzers check production invariants only and skip test files; the ones
// that apply everywhere (sentinelerr) simply never call this.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// RunPackage applies every analyzer to pkg, filters the results through the
// package's //hydralint:ignore directives, and returns the surviving
// diagnostics in file-position order. An analyzer returning an error aborts
// the run — analyzer bugs must fail the build loudly, not drop findings.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	diags = applyIgnores(pkg, known, diags)
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// ignoreDirective is one parsed //hydralint:ignore comment.
type ignoreDirective struct {
	analyzers []string
	line      int // the comment's own line; it also covers line+1
}

const ignorePrefix = "//hydralint:ignore"

// applyIgnores drops suppressed diagnostics and appends diagnostics for
// malformed directives, returning the surviving set. Suppression is
// per-file, per-line, per-analyzer.
func applyIgnores(pkg *Package, known map[string]bool, diags []Diagnostic) []Diagnostic {
	type fileKey struct {
		file string
		line int
		name string
	}
	suppress := make(map[fileKey]bool)
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		fname := pkg.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "hydralint",
						Message:  "hydralint:ignore needs an analyzer name and a reason: //hydralint:ignore <analyzer> <why this violation is deliberate>",
					})
					continue
				}
				names := strings.Split(fields[0], ",")
				for _, n := range names {
					if !known[n] {
						malformed = append(malformed, Diagnostic{
							Pos:      c.Pos(),
							Analyzer: "hydralint",
							Message:  fmt.Sprintf("hydralint:ignore names unknown analyzer %q", n),
						})
					}
				}
				line := pkg.Fset.Position(c.Pos()).Line
				for _, n := range names {
					suppress[fileKey{fname, line, n}] = true
					suppress[fileKey{fname, line + 1, n}] = true
				}
			}
		}
	}
	if len(suppress) == 0 {
		return append(diags, malformed...)
	}
	kept := diags[:0]
	for _, d := range diags {
		posn := pkg.Fset.Position(d.Pos)
		if suppress[fileKey{posn.Filename, posn.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	// Zero the tail so dropped diagnostics are not resurrected by append.
	clear(diags[len(kept):])
	return append(kept, malformed...)
}

// Unparen strips any number of enclosing parentheses.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// CalleeFunc resolves a call expression to the statically named function or
// method it invokes, or nil for calls through function values, conversions,
// and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// HasMarker reports whether doc contains the comment directive //<marker>
// (exact line, optionally followed by explanatory text after a space).
func HasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	want := "//" + marker
	for _, c := range doc.List {
		if c.Text == want || strings.HasPrefix(c.Text, want+" ") {
			return true
		}
	}
	return false
}

// IsEmptyInterface reports whether t is interface{} / any.
func IsEmptyInterface(t types.Type) bool {
	i, ok := t.Underlying().(*types.Interface)
	return ok && i.Empty()
}
