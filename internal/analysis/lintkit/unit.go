package lintkit

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"strings"
)

// The `go vet -vettool=` protocol, reimplemented from the contract x/tools'
// unitchecker documents (and the go command relies on):
//
//	hydralint -V=full        print an executable fingerprint (build cache key)
//	hydralint -flags         print supported flags as JSON
//	hydralint [flags] x.cfg  analyze one compilation unit described by a
//	                         JSON config file written by the go command
//
// Each .cfg names the unit's Go files and maps every dependency's package
// path to its compiler export data, so the unit is re-type-checked exactly
// as the compiler saw it — including test variants, which the standalone
// loader does not cover. hydralint carries no cross-package facts, so
// VetxOnly dependency visits write an empty facts file and exit; the
// analyzers are designed around per-package invariants (markers propagate
// through a package's call graph, conventions bind package-local types)
// precisely so that modular analysis needs no fact flow.

// unitConfig mirrors the fields of the go command's vet .cfg files that
// hydralint consumes.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point shared by cmd/hydralint's two modes: the
// unitchecker protocol when invoked by go vet (a single *.cfg argument),
// and the standalone loader otherwise (package patterns, "./..." default).
// It does not return.
func Main(progname string, analyzers []*Analyzer) {
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	printFlags := flag.Bool("flags", false, "print analyzer flags in JSON (go vet protocol)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	flag.Var(versionFlag{}, "V", "print version fingerprint and exit (go vet protocol)")
	_ = flag.Int("c", -1, "display offending line with this many lines of context (accepted for vet compatibility)")
	enabled := make(map[string]*string, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = flag.String(a.Name, "", "enable "+a.Name+" analysis (true/false; default: all enabled)")
	}
	flag.Parse()

	if *printFlags {
		printFlagsJSON()
		os.Exit(0)
	}

	analyzers = selectAnalyzers(analyzers, enabled)
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0], analyzers, *jsonOut)
		panic("unreachable")
	}
	runStandalone(args, analyzers, *jsonOut)
	panic("unreachable")
}

// selectAnalyzers applies go vet's enable-flag convention: if any -NAME
// flag is true, run only those; else if any is false, run all but those.
func selectAnalyzers(analyzers []*Analyzer, enabled map[string]*string) []*Analyzer {
	hasTrue := false
	hasFalse := false
	for _, v := range enabled {
		switch *v {
		case "true", "1":
			hasTrue = true
		case "false", "0":
			hasFalse = true
		}
	}
	if !hasTrue && !hasFalse {
		return analyzers
	}
	var keep []*Analyzer
	for _, a := range analyzers {
		v := *enabled[a.Name]
		on := v == "true" || v == "1"
		off := v == "false" || v == "0"
		if (hasTrue && on) || (!hasTrue && !off) {
			keep = append(keep, a)
		}
	}
	return keep
}

// runStandalone loads the patterns with the go-list loader and prints
// diagnostics to stdout. Exit status: 0 clean, 1 diagnostics, 2 failure.
func runStandalone(patterns []string, analyzers []*Analyzer, jsonOut bool) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := Load(".", patterns)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	found := false
	jsonTree := make(map[string]map[string][]jsonDiagnostic)
	for _, pkg := range pkgs {
		diags, err := RunPackage(pkg, analyzers)
		if err != nil {
			log.Println(err)
			os.Exit(2)
		}
		if jsonOut {
			addJSONDiags(jsonTree, pkg.PkgPath, pkg, diags)
		} else {
			for _, d := range diags {
				fmt.Printf("%s: %s [%s]\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
			}
		}
		found = found || len(diags) > 0
	}
	if jsonOut {
		printJSONTree(jsonTree)
		os.Exit(0)
	}
	if found {
		os.Exit(1)
	}
	os.Exit(0)
}

// runUnit analyzes the single compilation unit described by cfgFile, per
// the go vet protocol: diagnostics to stderr (or a JSON tree to stdout
// under -json), an (empty) facts file to cfg.VetxOutput, exit 1 when
// diagnostics were found so the go command reports them.
func runUnit(cfgFile string, analyzers []*Analyzer, jsonOut bool) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgFile, err)
	}
	if cfg.VetxOnly {
		// A dependency visited only for facts: hydralint has none to export.
		writeVetx(cfg)
		os.Exit(0)
	}
	if len(cfg.GoFiles) == 0 {
		log.Fatalf("package has no files: %s", cfg.ImportPath)
	}

	fset, gc := unitImporter(cfg)
	pkg, err := checkPackage(fset, cfg.ImportPath, cfg.GoFiles, mapImports(gc, cfg.ImportMap), cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The compiler will report the same failure with a better message.
			os.Exit(0)
		}
		log.Fatal(err)
	}
	diags, err := RunPackage(pkg, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	writeVetx(cfg)
	if jsonOut {
		tree := make(map[string]map[string][]jsonDiagnostic)
		addJSONDiags(tree, cfg.ID, pkg, diags)
		printJSONTree(tree)
		os.Exit(0)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

// unitImporter builds the export-data importer for one vet compilation
// unit: package paths resolve through cfg.PackageFile, exactly as the
// compiler resolved them.
func unitImporter(cfg *unitConfig) (*token.FileSet, types.Importer) {
	fset := token.NewFileSet()
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	return fset, imp
}

// writeVetx satisfies the protocol's facts contract: the go command expects
// the output file to exist even when the tool exports no facts.
func writeVetx(cfg *unitConfig) {
	if cfg.VetxOutput == "" {
		return
	}
	if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
		log.Fatalf("failed to write facts file: %v", err)
	}
}

// jsonDiagnostic matches the x/tools JSON tree leaf shape so downstream
// tooling that parses `go vet -json` output keeps working.
type jsonDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

func addJSONDiags(tree map[string]map[string][]jsonDiagnostic, id string, pkg *Package, diags []Diagnostic) {
	for _, d := range diags {
		byAnalyzer := tree[id]
		if byAnalyzer == nil {
			byAnalyzer = make(map[string][]jsonDiagnostic)
			tree[id] = byAnalyzer
		}
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiagnostic{
			Posn:    pkg.Fset.Position(d.Pos).String(),
			Message: d.Message,
		})
	}
}

func printJSONTree(tree map[string]map[string][]jsonDiagnostic) {
	data, err := json.MarshalIndent(tree, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// printFlagsJSON describes the registered flags in the JSON shape the go
// command reads to learn which vet flags the tool supports.
func printFlagsJSON() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements the -V=full protocol: print a line that changes
// whenever the executable changes, so the go command can cache vet results
// keyed on the tool build. The format mirrors the one the go toolchain's
// own vet emits.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() any         { return nil }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}
