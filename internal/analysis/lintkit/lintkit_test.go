package lintkit

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkSource type-checks one in-memory file (no imports) and runs the
// given analyzers over it through RunPackage.
func checkSource(t *testing.T, src string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	tpkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{PkgPath: "p", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
	diags, err := RunPackage(pkg, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// always reports one diagnostic on every function declaration.
var always = &Analyzer{
	Name: "always",
	Doc:  "test analyzer: flags every function",
	Run: func(p *Pass) error {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					p.Reportf(fd.Pos(), "function %s flagged", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

func TestIgnoreSuppressesSameAndNextLine(t *testing.T) {
	src := `package p

//hydralint:ignore always deliberate for the test
func a() {}

func b() {} //hydralint:ignore always trailing form

func c() {}
`
	diags := checkSource(t, src, []*Analyzer{always})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "function c") {
		t.Fatalf("want only c flagged, got %v", diags)
	}
}

func TestIgnoreWithoutReasonIsReported(t *testing.T) {
	src := `package p

//hydralint:ignore always
func a() {}
`
	diags := checkSource(t, src, []*Analyzer{always})
	var malformed, original bool
	for _, d := range diags {
		if d.Analyzer == "hydralint" && strings.Contains(d.Message, "needs an analyzer name and a reason") {
			malformed = true
		}
		if strings.Contains(d.Message, "function a") {
			original = true // a bare directive suppresses nothing
		}
	}
	if !malformed {
		t.Fatalf("malformed directive not reported: %v", diags)
	}
	if !original {
		t.Fatalf("bare directive must not suppress: %v", diags)
	}
	if len(diags) != 2 {
		t.Fatalf("want malformed + original diagnostics, got %v", diags)
	}
}

func TestIgnoreUnknownAnalyzerIsReported(t *testing.T) {
	src := `package p

//hydralint:ignore nosuch not a real analyzer
func a() {}
`
	diags := checkSource(t, src, []*Analyzer{always})
	found := false
	for _, d := range diags {
		if d.Analyzer == "hydralint" && strings.Contains(d.Message, `unknown analyzer "nosuch"`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("unknown analyzer name not reported: %v", diags)
	}
}

func TestIgnoreIsPerAnalyzer(t *testing.T) {
	other := &Analyzer{
		Name: "other",
		Doc:  "test analyzer: flags every function",
		Run:  always.Run,
	}
	src := `package p

//hydralint:ignore always only the always analyzer is expected here
func a() {}
`
	diags := checkSource(t, src, []*Analyzer{always, other})
	if len(diags) != 1 || diags[0].Analyzer != "other" {
		t.Fatalf("want only the other analyzer's diagnostic to survive, got %v", diags)
	}
}
