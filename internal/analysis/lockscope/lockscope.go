// Package lockscope checks critical-section hygiene (the PR 4 race class).
// Within any function, between a sync.Mutex/RWMutex Lock/RLock and the
// matching Unlock (or to the end of the function when the unlock is
// deferred), the analyzer flags:
//
//   - channel operations: send, receive, select — blocking on a channel
//     while holding a lock invites lock-ordering deadlocks;
//   - calls into net or net/http — network latency inside a critical
//     section serializes the server;
//   - time.Sleep — same, deliberately;
//   - calls through function-typed values (callbacks, handler fields) —
//     arbitrary user code must not run under an internal lock;
//   - calls to build* functions — summary/plan construction is the
//     expensive work the lock exists to exclude, not to cover.
//
// It also encodes the generation rule from the PR 4 plan-cache race: if a
// critical section reads a generation field into a local (gen := c.gen) and
// a LATER critical section of the same function inserts into a map or calls
// a put*/insert*/add*/store* helper, that later section must re-compare the
// local against the field (c.gen == gen) before the insert. Publishing under
// a stale generation is exactly how the original race lost invalidations.
//
// The statement walk is conservative: state changes inside branch bodies do
// not leak to the fall-through path (the unlock-then-return-inside-if idiom
// stays correctly held after the branch), and goroutine and closure bodies
// are not treated as running under the lock. Test files are skipped.
package lockscope

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/lintkit"
)

var Analyzer = &lintkit.Analyzer{
	Name: "lockscope",
	Doc:  "no blocking, callbacks, or builds under a mutex; generation re-check before insert",
	Run:  run,
}

func run(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			w := &walker{pass: pass, fn: fd.Name.Name}
			w.block(fd.Body.List, state{})
			w.checkGenerations()
		}
	}
	return nil
}

// state is the walk's per-path view: whether a lock is held, and which
// critical section (by sequence number) the path is in.
type state struct {
	held    bool
	section int
}

type genRead struct {
	section int
	local   *types.Var
	field   types.Object
}

type insert struct {
	section int
	pos     token.Pos
}

type compare struct {
	section int
	local   *types.Var
}

// walker accumulates generation-rule facts across one function while
// flagging held-region violations in place.
type walker struct {
	pass     *lintkit.Pass
	fn       string
	sections int
	reads    []genRead
	inserts  []insert
	compares []compare
}

// block walks a statement list, threading lock state through it. Branch
// bodies run on a copy: their lock transitions are path-local.
func (w *walker) block(stmts []ast.Stmt, st state) state {
	for _, s := range stmts {
		st = w.stmt(s, st)
	}
	return st
}

func (w *walker) stmt(s ast.Stmt, st state) state {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := lintkit.Unparen(s.X).(*ast.CallExpr); ok {
			switch lockOp(w.pass, call) {
			case opLock:
				if !st.held {
					w.sections++
					st = state{held: true, section: w.sections}
				}
				return st
			case opUnlock:
				st.held = false
				return st
			}
		}
		w.expr(s.X, st)
	case *ast.DeferStmt:
		// A deferred unlock keeps the section open to the function's end;
		// the statements that follow are still checked as held. Other
		// deferred work runs after the region, so its body is not checked.
		if lockOp(w.pass, s.Call) == opUnlock {
			return st
		}
	case *ast.GoStmt:
		// The goroutine body does not run under the caller's lock.
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.expr(rhs, st)
		}
		if st.held {
			w.recordGenRead(s, st)
			w.recordMapInsert(s, st)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, st)
		}
	case *ast.SendStmt:
		if st.held {
			w.pass.Reportf(s.Pos(), "channel send while holding a mutex in %s", w.fn)
		}
		w.expr(s.Value, st)
	case *ast.SelectStmt:
		if st.held {
			w.pass.Reportf(s.Pos(), "select while holding a mutex in %s", w.fn)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.block(cc.Body, st)
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		w.expr(s.Cond, st)
		w.block(s.Body.List, st)
		if s.Else != nil {
			w.stmt(s.Else, st)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			w.expr(s.Cond, st)
		}
		w.block(s.Body.List, st)
	case *ast.RangeStmt:
		w.expr(s.X, st)
		w.block(s.Body.List, st)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			w.expr(s.Tag, st)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.block(cc.Body, st)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.block(cc.Body, st)
			}
		}
	case *ast.BlockStmt:
		// A plain block shares the enclosing path; its transitions persist.
		st = w.block(s.List, st)
	case *ast.LabeledStmt:
		st = w.stmt(s.Stmt, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, st)
					}
				}
			}
		}
	}
	return st
}

// expr checks one expression tree for held-region violations and records
// generation comparisons and insert-shaped calls. Function literal bodies
// are skipped: they run outside the region.
func (w *walker) expr(e ast.Expr, st state) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && st.held {
				w.pass.Reportf(n.Pos(), "channel receive while holding a mutex in %s", w.fn)
			}
		case *ast.BinaryExpr:
			if st.held && (n.Op == token.EQL || n.Op == token.NEQ) {
				w.recordCompare(n, st)
			}
		case *ast.CallExpr:
			if st.held {
				w.checkHeldCall(n)
				w.recordInsertCall(n, st)
			}
		}
		return true
	})
}

// checkHeldCall flags the call categories forbidden under a lock.
func (w *walker) checkHeldCall(call *ast.CallExpr) {
	tv, ok := w.pass.TypesInfo.Types[call.Fun]
	if ok && (tv.IsType() || tv.IsBuiltin()) {
		return
	}
	callee := lintkit.CalleeFunc(w.pass.TypesInfo, call)
	if callee == nil {
		if !ok || tv.Type == nil {
			return
		}
		if _, ok := tv.Type.Underlying().(*types.Signature); ok {
			w.pass.Reportf(call.Pos(), "call through a function value while holding a mutex in %s (callbacks must not run under internal locks)", w.fn)
		}
		return
	}
	if strings.HasPrefix(callee.Name(), "build") || strings.HasPrefix(callee.Name(), "Build") {
		w.pass.Reportf(call.Pos(), "%s called while holding a mutex in %s (build work belongs outside the critical section)", callee.Name(), w.fn)
	}
	pkg := callee.Pkg()
	if pkg == nil {
		return
	}
	switch {
	case pkg.Path() == "net" || strings.HasPrefix(pkg.Path(), "net/"):
		w.pass.Reportf(call.Pos(), "network call %s.%s while holding a mutex in %s", pkg.Name(), callee.Name(), w.fn)
	case pkg.Path() == "time" && callee.Name() == "Sleep":
		w.pass.Reportf(call.Pos(), "time.Sleep while holding a mutex in %s", w.fn)
	}
}

// lockOp classifies a call as a mutex acquire, release, or neither.
type op int

const (
	opNone op = iota
	opLock
	opUnlock
)

func lockOp(pass *lintkit.Pass, call *ast.CallExpr) op {
	callee := lintkit.CalleeFunc(pass.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return opNone
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return opNone
	}
	switch callee.Name() {
	case "Lock", "RLock":
		return opLock
	case "Unlock", "RUnlock":
		return opUnlock
	}
	return opNone
}

// generationField reports whether a field object looks like a generation
// counter: named gen, generation, or *Gen.
func generationField(obj types.Object) bool {
	if obj == nil {
		return false
	}
	name := obj.Name()
	return name == "gen" || name == "generation" || strings.HasSuffix(name, "Gen")
}

// recordGenRead notes `local := x.gen` executed under the lock.
func (w *walker) recordGenRead(s *ast.AssignStmt, st state) {
	if s.Tok != token.DEFINE || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	sel, ok := lintkit.Unparen(s.Rhs[0]).(*ast.SelectorExpr)
	if !ok {
		return
	}
	field := w.pass.TypesInfo.Uses[sel.Sel]
	if !generationField(field) {
		return
	}
	local, ok := w.pass.TypesInfo.Defs[id].(*types.Var)
	if !ok {
		return
	}
	w.reads = append(w.reads, genRead{section: st.section, local: local, field: field})
}

// recordCompare notes `local == x.gen` (or !=) inside a critical section.
func (w *walker) recordCompare(b *ast.BinaryExpr, st state) {
	for _, pair := range [2][2]ast.Expr{{b.X, b.Y}, {b.Y, b.X}} {
		id, ok := lintkit.Unparen(pair[0]).(*ast.Ident)
		if !ok {
			continue
		}
		sel, ok := lintkit.Unparen(pair[1]).(*ast.SelectorExpr)
		if !ok || !generationField(w.pass.TypesInfo.Uses[sel.Sel]) {
			continue
		}
		if local, ok := w.pass.TypesInfo.Uses[id].(*types.Var); ok {
			w.compares = append(w.compares, compare{section: st.section, local: local})
		}
	}
}

// recordMapInsert notes `m[k] = v` under the lock.
func (w *walker) recordMapInsert(s *ast.AssignStmt, st state) {
	for _, lhs := range s.Lhs {
		ix, ok := lintkit.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			continue
		}
		if _, ok := w.pass.TypesInfo.TypeOf(ix.X).Underlying().(*types.Map); ok {
			w.inserts = append(w.inserts, insert{section: st.section, pos: s.Pos()})
		}
	}
}

// recordInsertCall notes put*/insert*/add*/store* helper calls under the lock.
func (w *walker) recordInsertCall(call *ast.CallExpr, st state) {
	callee := lintkit.CalleeFunc(w.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	name := strings.ToLower(callee.Name())
	for _, prefix := range [...]string{"put", "insert", "add", "store"} {
		if strings.HasPrefix(name, prefix) {
			w.inserts = append(w.inserts, insert{section: st.section, pos: call.Pos()})
			return
		}
	}
}

// checkGenerations applies the PR 4 rule after the walk: an insert in a
// critical section that FOLLOWS a generation read from an earlier section
// must be guarded by a re-comparison of that generation in its own section.
func (w *walker) checkGenerations() {
	for _, ins := range w.inserts {
		for _, rd := range w.reads {
			if rd.section >= ins.section {
				continue
			}
			guarded := false
			for _, cmp := range w.compares {
				if cmp.section == ins.section && cmp.local == rd.local {
					guarded = true
					break
				}
			}
			if !guarded {
				w.pass.Reportf(ins.pos, "insert in %s publishes under generation %q read in an earlier critical section — re-check %s == %s in this critical section before inserting (PR 4 race)", w.fn, rd.local.Name(), rd.field.Name(), rd.local.Name())
			}
		}
	}
}
