// Package a exercises the lockscope analyzer: getOrBuild is the compliant
// double-checked pattern from the plan cache, getOrBuildRacy reproduces the
// PR 4 race (publish under a stale generation), and the remaining functions
// cover each blocking-under-lock category and its compliant counterpart.
package a

import (
	"net"
	"sync"
	"time"
)

type cache struct {
	mu      sync.Mutex
	gen     int
	items   map[string]int
	onEvict func(string)
}

// getOrBuild re-checks the generation in the same critical section as the
// insert — the correct shape.
func (c *cache) getOrBuild(k string) int {
	c.mu.Lock()
	if v, ok := c.items[k]; ok {
		c.mu.Unlock()
		return v
	}
	gen := c.gen
	c.mu.Unlock()

	v := buildValue(k)

	c.mu.Lock()
	if c.gen == gen {
		c.items[k] = v
	}
	c.mu.Unlock()
	return v
}

// getOrBuildRacy publishes without re-checking: an invalidation between the
// two critical sections is silently overwritten.
func (c *cache) getOrBuildRacy(k string) int {
	c.mu.Lock()
	gen := c.gen
	c.mu.Unlock()
	_ = gen

	v := buildValue(k)

	c.mu.Lock()
	c.items[k] = v // want `insert in getOrBuildRacy publishes under generation "gen"`
	c.mu.Unlock()
	return v
}

// notifyLocked commits every under-lock sin at once.
func (c *cache) notifyLocked(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch <- 1                      // want `channel send while holding a mutex`
	<-ch                         // want `channel receive while holding a mutex`
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding a mutex`
	c.onEvict("x")               // want `call through a function value while holding a mutex`
	c.items = buildMap()         // want `buildMap called while holding a mutex`
}

func dialLocked(mu *sync.Mutex, addr string) (net.Conn, error) {
	mu.Lock()
	conn, err := net.Dial("tcp", addr) // want `network call net\.Dial while holding a mutex`
	mu.Unlock()
	return conn, err
}

func waitLocked(c *cache, ch chan int) {
	c.mu.Lock()
	select { // want `select while holding a mutex`
	case <-ch:
	default:
	}
	c.mu.Unlock()
}

// notify is the compliant counterpart: the channel op happens after the
// unlock, and the snapshot is taken under the lock.
func (c *cache) notify(ch chan int) {
	c.mu.Lock()
	n := len(c.items)
	c.mu.Unlock()
	ch <- n
}

func buildValue(k string) int { return len(k) }

func buildMap() map[string]int { return make(map[string]int) }
