package lockscope_test

import (
	"testing"

	"repro/internal/analysis/linttest"
	"repro/internal/analysis/lockscope"
)

func TestLockScope(t *testing.T) {
	linttest.Run(t, lockscope.Analyzer, "a")
}
