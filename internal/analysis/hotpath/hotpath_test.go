package hotpath_test

import (
	"testing"

	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/linttest"
)

func TestHotpath(t *testing.T) {
	linttest.Run(t, hotpath.Analyzer, "a")
}
