// Package hotpath checks the engine's steady-state allocation discipline:
// functions on the per-batch execution path (PRs 3, 6, 7 hand-audited these
// to 0 allocs/op) must not reintroduce the defect classes those audits
// removed.
//
// A function is hot if its declaration doc carries the //hydra:hotpath
// marker, or if it is reachable from a hot function through the package's
// call graph — including interface-method dispatch: a hot call to an
// interface method marks the corresponding method on every package-local
// type implementing that interface. //hydra:coldpath opts a reachable
// function back out (error construction, open-time setup).
//
// Inside a hot function the analyzer flags:
//
//   - function literals (closure captures allocate and defeat inlining);
//   - calls to time.Now / time.Since (vDSO cost per batch; hot code takes
//     timings from the recorder, PR 8);
//   - any call into package fmt (allocates, boxes);
//   - map and slice composite literals (per-call allocations);
//   - append to a slice variable declared in the function without a
//     capacity (no initializer, a literal, or make with fewer than 3
//     arguments) — growth in steady state; appends to parameters, struct
//     fields, package variables, and slices obtained from calls are
//     exempt, as the capacity is managed elsewhere;
//   - boxing a concrete non-pointer value into interface{}/any (argument
//     or conversion) — pointers fit the interface word and do not
//     allocate, so they pass.
//
// Test files are skipped.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/lintkit"
)

var Analyzer = &lintkit.Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocation and timing defects in //hydra:hotpath-reachable functions",
	Run:  run,
}

const (
	hotMarker  = "hydra:hotpath"
	coldMarker = "hydra:coldpath"
)

func run(pass *lintkit.Pass) error {
	// Index every package-local function declaration by its types.Func.
	decls := make(map[*types.Func]*ast.FuncDecl)
	cold := make(map[*types.Func]bool)
	var seeds []*types.Func
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			if lintkit.HasMarker(fd.Doc, coldMarker) {
				cold[fn] = true
			}
			if lintkit.HasMarker(fd.Doc, hotMarker) {
				seeds = append(seeds, fn)
			}
		}
	}

	hot := propagate(pass, decls, cold, seeds)

	// Deterministic order: walk declarations file by file.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil || !hot[fn] || pass.InTestFile(fd.Pos()) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil
}

// propagate closes the seed set over the package call graph. Interface
// dispatch is resolved pessimistically within the package: a hot call to an
// interface method marks that method on every package-local implementation,
// so annotating a driver (runColumnar) covers each iterator it drains.
func propagate(pass *lintkit.Pass, decls map[*types.Func]*ast.FuncDecl, cold map[*types.Func]bool, seeds []*types.Func) map[*types.Func]bool {
	hot := make(map[*types.Func]bool)
	var work []*types.Func
	mark := func(fn *types.Func) {
		if fn == nil || hot[fn] || cold[fn] {
			return
		}
		if _, local := decls[fn]; !local {
			return
		}
		hot[fn] = true
		work = append(work, fn)
	}
	for _, fn := range seeds {
		mark(fn)
	}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		fd := decls[fn]
		if fd == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := lintkit.CalleeFunc(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
				if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
					for _, impl := range implementations(pass.Pkg, iface) {
						obj, _, _ := types.LookupFieldOrMethod(impl, true, callee.Pkg(), callee.Name())
						if m, ok := obj.(*types.Func); ok {
							mark(m)
						}
					}
					return true
				}
			}
			mark(callee)
			return true
		})
	}
	return hot
}

// implementations returns the package-local named types satisfying iface
// (directly or through a pointer receiver).
func implementations(pkg *types.Package, iface *types.Interface) []types.Type {
	var impls []types.Type
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		t := tn.Type()
		if types.IsInterface(t) {
			continue
		}
		if types.Implements(t, iface) {
			impls = append(impls, t)
		} else if p := types.NewPointer(t); types.Implements(p, iface) {
			impls = append(impls, p)
		}
	}
	return impls
}

// checkBody flags the forbidden constructs inside one hot function.
func checkBody(pass *lintkit.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	prealloc := preallocated(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in hot-path function %s (allocates; hoist to a method or package function)", name)
			return false // the literal's body is reported once, not re-scanned
		case *ast.CompositeLit:
			switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal in hot-path function %s (allocates per call; hoist to state set up at open time)", name)
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal in hot-path function %s (allocates per call; reuse a preallocated buffer)", name)
			}
		case *ast.CallExpr:
			checkCall(pass, name, n, prealloc)
		}
		return true
	})
}

func checkCall(pass *lintkit.Pass, name string, call *ast.CallExpr, prealloc map[*types.Var]bool) {
	// Conversions: flag boxing into interface{}/any.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if lintkit.IsEmptyInterface(tv.Type) && len(call.Args) == 1 && boxes(pass, call.Args[0]) {
			pass.Reportf(call.Pos(), "conversion to interface{} boxes a value in hot-path function %s", name)
		}
		return
	}

	if id, ok := lintkit.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
			checkAppend(pass, name, call, prealloc)
			return
		}
	}

	callee := lintkit.CalleeFunc(pass.TypesInfo, call)
	if callee != nil && callee.Pkg() != nil {
		switch callee.Pkg().Path() {
		case "time":
			if callee.Name() == "Now" || callee.Name() == "Since" {
				pass.Reportf(call.Pos(), "time.%s in hot-path function %s (per-batch timing belongs to the trace recorder)", callee.Name(), name)
			}
		case "fmt":
			pass.Reportf(call.Pos(), "fmt.%s call in hot-path function %s (allocates; build errors in a //hydra:coldpath helper)", callee.Name(), name)
			return // the call diagnostic subsumes per-argument boxing
		}
	}

	// Boxing through a call: a concrete non-pointer argument landing in an
	// interface{} parameter allocates. Variadic spreads pass a slice through.
	if callee != nil && !call.Ellipsis.IsValid() {
		sig, _ := callee.Type().(*types.Signature)
		if sig != nil {
			for i, arg := range call.Args {
				var pt types.Type
				if sig.Variadic() && i >= sig.Params().Len()-1 {
					pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
				} else if i < sig.Params().Len() {
					pt = sig.Params().At(i).Type()
				}
				if pt != nil && lintkit.IsEmptyInterface(pt) && boxes(pass, arg) {
					pass.Reportf(arg.Pos(), "argument boxes a value into interface{} in hot-path function %s", name)
				}
			}
		}
	}
}

// boxes reports whether passing e to an interface{} slot allocates: true for
// concrete non-pointer values, false for pointers, interfaces, and nil.
func boxes(pass *lintkit.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[lintkit.Unparen(e)]
	if !ok || tv.IsNil() {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Signature, *types.Chan, *types.Map:
		return false
	}
	return true
}

// preallocated collects the function's local slice variables declared with a
// 3-argument make — the only declaration form whose appends are trusted not
// to grow in steady state.
func preallocated(pass *lintkit.Pass, fd *ast.FuncDecl) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		v, ok := pass.TypesInfo.Defs[id].(*types.Var)
		if !ok {
			return
		}
		if call, ok := lintkit.Unparen(rhs).(*ast.CallExpr); ok {
			if fun, ok := lintkit.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && b.Name() == "make" && len(call.Args) == 3 {
					out[v] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// checkAppend flags appends that grow an un-preallocated local slice.
// Parameters, struct fields, package variables, and locals initialized from
// calls or slicing are exempt — their capacity is managed by the caller or
// at open time.
func checkAppend(pass *lintkit.Pass, name string, call *ast.CallExpr, prealloc map[*types.Var]bool) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := lintkit.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return // fields, indexed slots: managed elsewhere
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.IsField() || v.Parent() == pass.Pkg.Scope() || prealloc[v] {
		return
	}
	if bare, grows := localSliceDecl(pass, v); grows {
		if bare {
			pass.Reportf(call.Pos(), "append to %s grows a slice declared without capacity in hot-path function %s (use make(T, 0, n))", id.Name, name)
		} else {
			pass.Reportf(call.Pos(), "append to %s grows an un-preallocated slice in hot-path function %s (use make(T, 0, n))", id.Name, name)
		}
	}
}

// localSliceDecl classifies v's declaration. grows is true when the
// declaration visibly lacks capacity: a `var s []T` with no initializer, a
// composite literal, or make with fewer than 3 arguments. bare
// distinguishes the no-initializer form for the diagnostic text. Variables
// whose defining ident is not an assignment or value spec (parameters,
// range variables) are exempt — their backing storage is the caller's.
func localSliceDecl(pass *lintkit.Pass, v *types.Var) (bare, grows bool) {
	// Find the defining Ident to recover the declaration's RHS.
	for id, obj := range pass.TypesInfo.Defs {
		if obj != v {
			continue
		}
		rhs, isDecl := declRHS(pass, id)
		if !isDecl {
			return false, false
		}
		if rhs == nil {
			return true, true
		}
		switch r := lintkit.Unparen(rhs).(type) {
		case *ast.CompositeLit:
			return false, true
		case *ast.CallExpr:
			if fun, ok := lintkit.Unparen(r.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && b.Name() == "make" {
					return false, len(r.Args) < 3
				}
			}
			return false, false // result of a call: capacity managed by the callee
		default:
			return false, false // slicing, parameters-by-copy, etc.
		}
	}
	return false, false
}

// declRHS returns the initializer expression paired with the defining ident
// id. isDecl is false when id is not defined by an AssignStmt (:=) or a
// ValueSpec — i.e. it is a parameter or range variable.
func declRHS(pass *lintkit.Pass, id *ast.Ident) (rhs ast.Expr, isDecl bool) {
	for _, f := range pass.Files {
		if f.Pos() <= id.Pos() && id.Pos() <= f.End() {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
						for i, l := range n.Lhs {
							if l == id {
								rhs, isDecl = n.Rhs[i], true
								return false
							}
						}
					}
				case *ast.ValueSpec:
					for i, nm := range n.Names {
						if nm == id {
							if len(n.Values) == len(n.Names) {
								rhs = n.Values[i]
							}
							isDecl = true
							return false
						}
					}
				}
				return true
			})
			break
		}
	}
	return rhs, isDecl
}
