// Package a seeds the hotpath analyzer's testdata: runDrain is the marked
// driver, scanIter.next becomes hot through interface dispatch, and each
// forbidden construct appears once with a want expectation. The compliant
// forms (preallocated append, field append, //hydra:coldpath helper) appear
// alongside to prove the analyzer stays quiet on them.
package a

import (
	"fmt"
	"time"
)

type batch struct {
	vals []int64
}

type iter interface {
	next(b *batch) bool
}

//hydra:hotpath
func runDrain(it iter, b *batch) int {
	n := 0
	for it.next(b) {
		n += len(b.vals)
	}
	return n
}

type scanIter struct {
	src []int64
	off int
}

// next is hot via interface dispatch from runDrain.
func (s *scanIter) next(b *batch) bool {
	if s.off >= len(s.src) {
		return false
	}
	f := func() int { return s.off } // want `closure literal in hot-path function next`
	_ = f
	now := time.Now() // want `time\.Now in hot-path function next`
	_ = now
	fmt.Println("tick")         // want `fmt\.Println call in hot-path function next`
	m := map[string]int{"a": 1} // want `map literal in hot-path function next`
	_ = m
	tmp := []int64{1, 2} // want `slice literal in hot-path function next`
	_ = tmp
	var acc []int64
	acc = append(acc, s.src[s.off]) // want `append to acc grows a slice declared without capacity`
	_ = acc
	grown := make([]int64, 0)
	grown = append(grown, 1) // want `append to grown grows an un-preallocated slice`
	_ = grown
	box := any(s.off) // want `conversion to interface\{\} boxes a value`
	_ = box
	sink(s.off) // want `argument boxes a value into interface\{\}`
	sink(&b.vals)
	s.fill(b)
	if s.off < 0 {
		panic(s.fail())
	}
	s.off++
	return true
}

// fill is hot via the static call from next; everything in it is compliant.
func (s *scanIter) fill(b *batch) {
	out := make([]int64, 0, 8)
	out = append(out, 1)
	b.vals = append(b.vals, out...)
}

// fail is reachable from next but opted out: error construction is cold.
//
//hydra:coldpath
func (s *scanIter) fail() error {
	return fmt.Errorf("scan failed at offset %d", s.off)
}

// report is not reachable from any hot function, so fmt here is fine.
func report() {
	fmt.Println(time.Now())
}

func sink(v any) { _ = v }
