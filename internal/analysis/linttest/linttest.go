// Package linttest is the analysistest-style harness for hydralint
// analyzers: it loads a package from the analyzer's testdata/src/<name>
// directory, runs one analyzer over it (through the same RunPackage
// driver CI uses, so //hydralint:ignore directives behave identically),
// and matches the diagnostics against `// want "regexp"` comments.
//
// Layout mirrors x/tools' analysistest GOPATH convention:
//
//	<analyzer>/testdata/src/<pkg>/*.go
//
// A want comment asserts that a diagnostic whose message matches the
// quoted regular expression is reported on the comment's line:
//
//	res := []int{1} // want `slice literal`
//
// Several expectations may follow one want. Every expectation must be
// matched by a diagnostic and every diagnostic by an expectation; either
// kind of leftover fails the test. Standard-library imports resolve
// through compiler export data (`go list -export`), so testdata may use
// context, sync, fmt, time, and errors freely; testdata packages may also
// import sibling packages under the same src root by bare name.
package linttest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/lintkit"
)

// Run loads each named package from testdata/src (relative to the calling
// test's working directory), applies the analyzer, and checks want
// comments.
func Run(t *testing.T, a *lintkit.Analyzer, pkgs ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	l := &loader{
		root:   root,
		fset:   token.NewFileSet(),
		loaded: make(map[string]*lintkit.Package),
	}
	for _, pkg := range pkgs {
		p, err := l.load(pkg)
		if err != nil {
			t.Fatalf("loading testdata package %s: %v", pkg, err)
		}
		diags, err := lintkit.RunPackage(p, []*lintkit.Analyzer{a})
		if err != nil {
			t.Fatal(err)
		}
		check(t, p, diags)
	}
}

// loader type-checks testdata packages: bare-name imports that exist under
// the src root load recursively; everything else resolves through the
// standard library's compiler export data.
type loader struct {
	root   string
	fset   *token.FileSet
	loaded map[string]*lintkit.Package
	std    types.Importer
}

func (l *loader) load(name string) (*lintkit.Package, error) {
	if p, ok := l.loaded[name]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var imports []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			imports = append(imports, path)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	if err := l.ensureStd(imports); err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := &types.Config{Importer: importerFunc(l.importPkg), Sizes: types.SizesFor("gc", runtime.GOARCH)}
	tpkg, err := conf.Check(name, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &lintkit.Package{PkgPath: name, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.loaded[name] = p
	return p, nil
}

// importPkg resolves one import from a testdata package.
func (l *loader) importPkg(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.root, path)); err == nil {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if l.std == nil {
		return nil, fmt.Errorf("no importer for %q", path)
	}
	return l.std.Import(path)
}

// ensureStd builds the export-data importer for the given (standard
// library) import paths, tolerating testdata-local names in the list.
func (l *loader) ensureStd(imports []string) error {
	var std []string
	for _, p := range imports {
		if _, err := os.Stat(filepath.Join(l.root, p)); err != nil {
			std = append(std, p)
		}
	}
	if len(std) == 0 {
		return nil
	}
	sort.Strings(std)
	std = uniq(std)
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, std...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list %v: %v\n%s", std, err, stderr.Bytes())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	l.std = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return nil
}

func uniq(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// expectation is one parsed want clause.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
}

var wantRE = regexp.MustCompile("(?:\"((?:[^\"\\\\]|\\\\.)*)\")|(?:`([^`]*)`)")

// check matches diagnostics against want comments, failing the test on any
// unmatched expectation or unexpected diagnostic.
func check(t *testing.T, pkg *lintkit.Package, diags []lintkit.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		fname := pkg.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				clause := text[idx+len("want "):]
				for _, m := range wantRE.FindAllStringSubmatch(clause, -1) {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					} else if unq, err := strconv.Unquote("\"" + raw + "\""); err == nil {
						raw = unq
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pkg.Fset.Position(c.Pos()), raw, err)
					}
					wants = append(wants, &expectation{
						file: fname,
						line: pkg.Fset.Position(c.Pos()).Line,
						re:   re,
						raw:  raw,
					})
				}
			}
		}
	}
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] {
				continue
			}
			posn := pkg.Fset.Position(d.Pos)
			if posn.Filename == w.file && posn.Line == w.line && w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
}
