package sentinelerr_test

import (
	"testing"

	"repro/internal/analysis/linttest"
	"repro/internal/analysis/sentinelerr"
)

func TestSentinelErr(t *testing.T) {
	linttest.Run(t, sentinelerr.Analyzer, "a")
}
