// Package sentinelerr checks sentinel-error discipline for the engine's
// exported sentinels (ErrInvalidOptions, ErrAggOverflow, and any other
// package-level `var Err...` of type error):
//
//   - comparisons: a sentinel must be matched with errors.Is, never == or
//     != (against anything but nil) and never as a switch case — the engine
//     wraps errors with context, so identity comparison silently stops
//     matching the moment a wrap is added;
//   - wrapping: when a sentinel is passed to fmt.Errorf, the verb at its
//     position must be %w — %v or %s flattens the chain and breaks
//     errors.Is for every caller downstream.
//
// Unlike the other hydralint analyzers this one checks test files too:
// tests are where identity comparisons habitually creep in.
package sentinelerr

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis/lintkit"
)

var Analyzer = &lintkit.Analyzer{
	Name: "sentinelerr",
	Doc:  "sentinel errors compared with errors.Is and wrapped only with %w",
	Run:  run,
}

func run(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, n)
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			case *ast.CallExpr:
				checkErrorf(pass, n)
			}
			return true
		})
	}
	return nil
}

// sentinelObj resolves e to a sentinel error object: a package-level var
// (local or imported) named Err<UpperCase> whose type is error.
func sentinelObj(pass *lintkit.Pass, e ast.Expr) types.Object {
	var id *ast.Ident
	switch e := lintkit.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return nil
	}
	name := obj.Name()
	if len(name) < 4 || !strings.HasPrefix(name, "Err") || name[3] < 'A' || name[3] > 'Z' {
		return nil
	}
	named, ok := obj.Type().(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return nil
	}
	return obj
}

func isNil(pass *lintkit.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[lintkit.Unparen(e)]
	return ok && tv.IsNil()
}

func checkComparison(pass *lintkit.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	for _, pair := range [2][2]ast.Expr{{b.X, b.Y}, {b.Y, b.X}} {
		if obj := sentinelObj(pass, pair[0]); obj != nil && !isNil(pass, pair[1]) {
			pass.Reportf(b.Pos(), "sentinel %s compared with %s — use errors.Is, identity breaks once the error is wrapped", obj.Name(), b.Op)
			return
		}
	}
}

func checkSwitch(pass *lintkit.Pass, s *ast.SwitchStmt) {
	if s.Tag == nil {
		return
	}
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if obj := sentinelObj(pass, e); obj != nil {
				pass.Reportf(e.Pos(), "sentinel %s used as a switch case — use errors.Is, identity breaks once the error is wrapped", obj.Name())
			}
		}
	}
}

// checkErrorf verifies that sentinels handed to fmt.Errorf sit under a %w verb.
func checkErrorf(pass *lintkit.Pass, call *ast.CallExpr) {
	callee := lintkit.CalleeFunc(pass.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "fmt" || callee.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := lintkit.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs := formatVerbs(format)
	for i, arg := range call.Args[1:] {
		obj := sentinelObj(pass, arg)
		if obj == nil {
			continue
		}
		if i >= len(verbs) || verbs[i] != 'w' {
			pass.Reportf(arg.Pos(), "sentinel %s wrapped without %%w — the error chain is flattened and errors.Is stops matching", obj.Name())
		}
	}
}

// formatVerbs returns the verb letter for each argument position of a
// Printf-style format string (ignoring %% and explicit argument indexes,
// which the engine does not use).
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Skip flags, width, and precision.
		for i < len(format) && strings.ContainsRune("+-# 0123456789.", rune(format[i])) {
			i++
		}
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		verbs = append(verbs, format[i])
	}
	return verbs
}
