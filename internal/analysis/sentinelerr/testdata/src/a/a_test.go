package a

import "testing"

// Test files are NOT exempt: identity comparisons against sentinels creep
// in through tests first.
func TestClassify(t *testing.T) {
	err := wrapBad(3)
	if err == ErrTooBig { // want `sentinel ErrTooBig compared with ==`
		t.Fatal("wrapped error must not be identical to the sentinel")
	}
}
