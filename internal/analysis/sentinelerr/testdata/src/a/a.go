// Package a exercises the sentinelerr analyzer: ErrTooBig is the sentinel;
// each misuse (identity compare, switch case, %v wrap) appears beside its
// compliant form (errors.Is, %w).
package a

import (
	"errors"
	"fmt"
)

var ErrTooBig = errors.New("too big")

var errSmall = errors.New("small") // unexported: not a sentinel, unchecked

func wrapGood(n int) error {
	return fmt.Errorf("value %d: %w", n, ErrTooBig)
}

func wrapBad(n int) error {
	return fmt.Errorf("value %d: %v", n, ErrTooBig) // want `sentinel ErrTooBig wrapped without %w`
}

func compareGood(err error) bool {
	return errors.Is(err, ErrTooBig)
}

func compareBad(err error) bool {
	return err == ErrTooBig // want `sentinel ErrTooBig compared with ==`
}

func compareNil() bool {
	return ErrTooBig != nil
}

func compareSmall(err error) bool {
	return err == errSmall
}

func classify(err error) string {
	switch err {
	case ErrTooBig: // want `sentinel ErrTooBig used as a switch case`
		return "big"
	default:
		return ""
	}
}
