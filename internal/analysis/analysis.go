// Package analysis registers the hydralint analyzer suite — the
// machine-checked form of the engine invariants DESIGN.md §12 enumerates.
// cmd/hydralint compiles All() into a multichecker; the per-analyzer
// packages carry their own analysistest-style suites.
package analysis

import (
	"repro/internal/analysis/ctxfield"
	"repro/internal/analysis/deferrederr"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/lintkit"
	"repro/internal/analysis/lockscope"
	"repro/internal/analysis/sentinelerr"
)

// All returns the full suite in stable order.
func All() []*lintkit.Analyzer {
	return []*lintkit.Analyzer{
		ctxfield.Analyzer,
		deferrederr.Analyzer,
		hotpath.Analyzer,
		lockscope.Analyzer,
		sentinelerr.Analyzer,
	}
}
