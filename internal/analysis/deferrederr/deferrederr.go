// Package deferrederr checks the engine's single error convention on
// iterator pipelines (PR 5): Next returns only bool, and failures surface
// through deferredErr() after the drain. Three rules:
//
//  1. A package-local type implementing every method of a convention
//     interface (a package-local interface that declares
//     `deferredErr() error` alongside other methods) except deferredErr
//     itself is a near miss — it would satisfy the iteration surface while
//     silently swallowing errors. Flagged on the type.
//
//  2. A type with a deferredErr method whose struct holds a field of
//     convention-interface type must call that field's deferredErr() inside
//     its own deferredErr body — wrapper iterators must propagate their
//     child's deferred error, not just their own.
//
//  3. A package-local driver — a function whose name starts with "run" and
//     that takes a convention-interface parameter — must call deferredErr()
//     somewhere in its body: draining an iterator without checking its
//     deferred error loses the failure.
//
// Test files are skipped.
package deferrederr

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/lintkit"
)

var Analyzer = &lintkit.Analyzer{
	Name: "deferrederr",
	Doc:  "iterator types and drivers must implement and propagate deferredErr",
	Run:  run,
}

const methodName = "deferredErr"

func run(pass *lintkit.Pass) error {
	ifaces := conventionInterfaces(pass.Pkg)
	if len(ifaces) == 0 {
		return nil
	}
	checkNearMisses(pass, ifaces)
	checkPropagation(pass, ifaces)
	checkDrivers(pass, ifaces)
	return nil
}

// conventionInterfaces returns the package-local interfaces that declare
// deferredErr() error among at least two methods.
func conventionInterfaces(pkg *types.Package) map[*types.Named]*types.Interface {
	out := make(map[*types.Named]*types.Interface)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		iface, ok := named.Underlying().(*types.Interface)
		if !ok || iface.NumMethods() < 2 {
			continue
		}
		if m := methodByName(iface, methodName); m != nil && isErrGetter(m) {
			out[named] = iface
		}
	}
	return out
}

func methodByName(iface *types.Interface, name string) *types.Func {
	for i := 0; i < iface.NumMethods(); i++ {
		if m := iface.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

// isErrGetter reports whether fn has the shape func() error.
func isErrGetter(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// checkNearMisses flags package-local concrete types that implement every
// method of a convention interface except deferredErr.
func checkNearMisses(pass *lintkit.Pass, ifaces map[*types.Named]*types.Interface) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() || types.IsInterface(tn.Type()) {
			continue
		}
		if pass.InTestFile(tn.Pos()) {
			continue
		}
		recv := types.Type(types.NewPointer(tn.Type()))
		for in, iface := range ifaces {
			if types.Implements(recv, iface) || types.Implements(tn.Type(), iface) {
				continue
			}
			missing := 0
			hasRest := true
			for i := 0; i < iface.NumMethods(); i++ {
				m := iface.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(recv, true, pass.Pkg, m.Name())
				found, ok := obj.(*types.Func)
				satisfied := ok && types.Identical(found.Type().(*types.Signature), m.Type().(*types.Signature))
				if m.Name() == methodName {
					if !satisfied {
						missing++
					}
				} else if !satisfied {
					hasRest = false
				}
			}
			if hasRest && missing > 0 {
				pass.Reportf(tn.Pos(), "type %s implements %s's iteration surface but lacks %s() error — errors deferred by the pipeline would be dropped", tn.Name(), in.Obj().Name(), methodName)
			}
		}
	}
}

// checkPropagation enforces rule 2: wrapper iterators call their
// convention-typed fields' deferredErr inside their own.
func checkPropagation(pass *lintkit.Pass, ifaces map[*types.Named]*types.Interface) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || fd.Name.Name != methodName {
				continue
			}
			if pass.InTestFile(fd.Pos()) {
				continue
			}
			recvT := receiverStruct(pass, fd)
			if recvT == nil {
				continue
			}
			for i := 0; i < recvT.NumFields(); i++ {
				field := recvT.Field(i)
				if !isConventionType(field.Type(), ifaces) {
					continue
				}
				if !callsFieldDeferredErr(pass, fd.Body, field) {
					pass.Reportf(fd.Pos(), "%s does not propagate %s.%s() from its child iterator field %q", fd.Name.Name, field.Name(), methodName, field.Name())
				}
			}
		}
	}
}

// receiverStruct resolves a method's receiver to its struct type, through
// one pointer level.
func receiverStruct(pass *lintkit.Pass, fd *ast.FuncDecl) *types.Struct {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

// isConventionType reports whether t is one of the convention interfaces.
func isConventionType(t types.Type, ifaces map[*types.Named]*types.Interface) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	_, ok = ifaces[named]
	return ok
}

// callsFieldDeferredErr reports whether body contains <recv>.<field>.deferredErr().
func callsFieldDeferredErr(pass *lintkit.Pass, body *ast.BlockStmt, field *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := lintkit.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != methodName {
			return true
		}
		inner, ok := lintkit.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s, ok := pass.TypesInfo.Selections[inner]; ok && s.Obj() == field {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkDrivers enforces rule 3: run* functions taking a convention-interface
// parameter check deferredErr after the drain.
func checkDrivers(pass *lintkit.Pass, ifaces map[*types.Named]*types.Interface) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !strings.HasPrefix(fd.Name.Name, "run") {
				continue
			}
			if pass.InTestFile(fd.Pos()) {
				continue
			}
			takesConvention := false
			for _, p := range fd.Type.Params.List {
				if isConventionType(pass.TypesInfo.TypeOf(p.Type), ifaces) {
					takesConvention = true
					break
				}
			}
			if !takesConvention {
				continue
			}
			if !callsDeferredErr(fd.Body) {
				pass.Reportf(fd.Pos(), "driver %s drains an iterator but never checks %s() — deferred failures are lost", fd.Name.Name, methodName)
			}
		}
	}
}

// callsDeferredErr reports whether body contains any .deferredErr() call.
func callsDeferredErr(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := lintkit.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == methodName {
			found = true
			return false
		}
		return true
	})
	return found
}
