// Package a exercises the deferrederr analyzer: colIterator is the
// convention interface; scanIter and filterIter are compliant, leakyIter
// is the near-miss (iteration surface without deferredErr), limitIter
// swallows its child's deferred error, and runLossy drains without checking.
package a

import "errors"

type batch struct {
	vals []int64
}

type colIterator interface {
	next(b *batch) bool
	rewind() error
	deferredErr() error
}

// scanIter is a compliant leaf iterator.
type scanIter struct {
	err error
}

func (s *scanIter) next(b *batch) bool { return false }
func (s *scanIter) rewind() error      { return nil }
func (s *scanIter) deferredErr() error { return s.err }

// leakyIter implements next and rewind but not deferredErr: it would pass a
// compile check against a trimmed interface while dropping pipeline errors.
type leakyIter struct{} // want `type leakyIter implements colIterator's iteration surface but lacks deferredErr`

func (l *leakyIter) next(b *batch) bool { return false }
func (l *leakyIter) rewind() error      { return nil }

// filterIter is a compliant wrapper: its deferredErr folds in the child's.
type filterIter struct {
	src colIterator
	err error
}

func (f *filterIter) next(b *batch) bool { return f.src.next(b) }
func (f *filterIter) rewind() error      { return f.src.rewind() }
func (f *filterIter) deferredErr() error {
	if f.err != nil {
		return f.err
	}
	return f.src.deferredErr()
}

// limitIter wraps a child but returns only its own error.
type limitIter struct {
	src colIterator
	err error
}

func (l *limitIter) next(b *batch) bool { return l.src.next(b) }
func (l *limitIter) rewind() error      { return nil }
func (l *limitIter) deferredErr() error { return l.err } // want `deferredErr does not propagate src\.deferredErr\(\)`

// runDrain is a compliant driver: it checks the deferred error after the loop.
func runDrain(it colIterator, b *batch) error {
	for it.next(b) {
	}
	return it.deferredErr()
}

// runLossy drains the iterator and returns a count, losing any failure.
func runLossy(it colIterator, b *batch) int { // want `driver runLossy drains an iterator but never checks deferredErr`
	n := 0
	for it.next(b) {
		n++
	}
	return n
}

var errSmall = errors.New("small")

func newScan() colIterator { return &scanIter{err: errSmall} }
