package deferrederr_test

import (
	"testing"

	"repro/internal/analysis/deferrederr"
	"repro/internal/analysis/linttest"
)

func TestDeferredErr(t *testing.T) {
	linttest.Run(t, deferrederr.Analyzer, "a")
}
