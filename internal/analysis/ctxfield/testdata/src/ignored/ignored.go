// Package ignored exercises the //hydralint:ignore suppression path: the
// deliberate violation in hardStop is silenced by a directive carrying a
// reason, while the undirected violation in sloppy still fires — the
// suppression is per-line, not per-file.
package ignored

import "context"

// hardStop deliberately pins a context: it outlives individual requests by
// design, mirroring the serve tier's CancelInFlight plumbing.
type hardStop struct {
	//hydralint:ignore ctxfield process-lifetime context, cancelled only on shutdown
	ctx context.Context
}

type sloppy struct {
	ctx context.Context // want `context\.Context stored in struct sloppy`
}
