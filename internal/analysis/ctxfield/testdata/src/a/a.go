// Package a exercises the ctxfield analyzer: execCtl is the sanctioned
// context holder, session is the violation, and the Execute* declarations
// cover the pairing convention's compliant and broken shapes.
package a

import "context"

// execCtl is the engine's one sanctioned context binding point.
type execCtl struct {
	ctx context.Context
	err error
}

// session stores a context for later use — the lifetime bug PR 6 removed.
type session struct {
	ctx  context.Context // want `context\.Context stored in struct session`
	name string
}

type db struct {
	ctl execCtl
}

// ExecuteContext / Execute form a compliant pair.
func (d *db) ExecuteContext(ctx context.Context, q string) error {
	d.ctl.ctx = ctx
	_ = q
	return nil
}

func (d *db) Execute(q string) error {
	return d.ExecuteContext(context.Background(), q)
}

// ExecuteScan takes a context under the wrong name.
func (d *db) ExecuteScan(ctx context.Context, q string) error { // want `exported ExecuteScan takes a context\.Context but is not named ExecuteScanContext`
	_ = ctx
	_ = q
	return nil
}

// ExecuteSolo has no context-taking twin at all.
func (d *db) ExecuteSolo(q string) error { // want `exported ExecuteSolo has no ExecuteSoloContext variant`
	_ = q
	return nil
}

// ExecuteEagerContext exists, but ExecuteEager does more than delegate.
func (d *db) ExecuteEagerContext(ctx context.Context, q string) error {
	_ = ctx
	_ = q
	return nil
}

func (d *db) ExecuteEager(q string) error { // want `ExecuteEager must be a one-statement wrapper delegating to ExecuteEagerContext`
	q = q + ";"
	return d.ExecuteEagerContext(context.Background(), q)
}

// ExecuteOddContext claims the suffix but hides the context mid-signature.
func (d *db) ExecuteOddContext(q string, ctx context.Context) error { // want `ExecuteOddContext must take a context\.Context as its first parameter`
	_ = ctx
	_ = q
	return nil
}

func (d *db) ExecuteOdd(q string) error { // want `ExecuteOdd must be a one-statement wrapper delegating to ExecuteOddContext`
	return d.ExecuteOddContext(q, context.Background())
}
