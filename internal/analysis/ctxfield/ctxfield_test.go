package ctxfield_test

import (
	"testing"

	"repro/internal/analysis/ctxfield"
	"repro/internal/analysis/linttest"
)

func TestCtxField(t *testing.T) {
	linttest.Run(t, ctxfield.Analyzer, "a")
}

// TestIgnoreDirective runs the same analyzer over a package whose only
// violation carries a //hydralint:ignore, plus one malformed directive —
// exercising the driver-level suppression path end to end.
func TestIgnoreDirective(t *testing.T) {
	linttest.Run(t, ctxfield.Analyzer, "ignored")
}
