// Package ctxfield checks the context discipline from PR 6: a
// context.Context travels down the call stack, bound once per execution
// into execCtl — it is never stored in long-lived structs, where it would
// outlive its cancellation scope and pin request-scoped values.
//
// Two rules:
//
//  1. No struct field of type context.Context, except in the struct named
//     execCtl (the engine's one sanctioned binding point). Deliberate
//     exceptions need //hydralint:ignore ctxfield <reason>.
//
//  2. Every exported Execute* function or method follows the paired-API
//     convention: the context-taking variant is named <X>Context with ctx
//     as its first parameter, and the ctx-free twin <X> must exist as a
//     one-statement wrapper delegating to <X>Context(context.Background(),
//     ...). An exported Execute* that takes a context under the wrong name,
//     or a twin that does anything besides delegate, breaks the pairing
//     callers rely on.
//
// Test files are skipped.
package ctxfield

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/lintkit"
)

var Analyzer = &lintkit.Analyzer{
	Name: "ctxfield",
	Doc:  "no context.Context struct fields outside execCtl; Execute*/Execute*Context pairing",
	Run:  run,
}

const allowedStruct = "execCtl"

func run(pass *lintkit.Pass) error {
	checkFields(pass)
	checkExecutePairs(pass)
	return nil
}

// isContextType reports whether t is exactly context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func checkFields(pass *lintkit.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || ts.Name.Name == allowedStruct || pass.InTestFile(ts.Pos()) {
				return true
			}
			for _, field := range st.Fields.List {
				if isContextType(pass.TypesInfo.TypeOf(field.Type)) {
					pass.Reportf(field.Pos(), "context.Context stored in struct %s — contexts flow through call paths into %s, not struct fields", ts.Name.Name, allowedStruct)
				}
			}
			return true
		})
	}
}

// checkExecutePairs enforces the Execute*/Execute*Context convention.
func checkExecutePairs(pass *lintkit.Pass) {
	// Index exported Execute* declarations by (receiver type, name).
	type key struct {
		recv string
		name string
	}
	decls := make(map[key]*ast.FuncDecl)
	var order []key
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !strings.HasPrefix(fd.Name.Name, "Execute") || !ast.IsExported(fd.Name.Name) {
				continue
			}
			if pass.InTestFile(fd.Pos()) {
				continue
			}
			k := key{receiverName(fd), fd.Name.Name}
			decls[k] = fd
			order = append(order, k)
		}
	}
	for _, k := range order {
		fd := decls[k]
		if strings.HasSuffix(k.name, "Context") {
			if !firstParamIsContext(pass, fd) {
				pass.Reportf(fd.Pos(), "%s must take a context.Context as its first parameter", k.name)
			}
			continue
		}
		if takesContext(pass, fd) {
			pass.Reportf(fd.Pos(), "exported %s takes a context.Context but is not named %sContext — the pairing convention requires the ctx variant to carry the Context suffix", k.name, k.name)
			continue
		}
		twinKey := key{k.recv, k.name + "Context"}
		twin := decls[twinKey]
		if twin == nil {
			pass.Reportf(fd.Pos(), "exported %s has no %sContext variant — every Execute API must offer a context-taking twin", k.name, k.name)
			continue
		}
		if !delegatesToTwin(pass, fd, k.name+"Context") {
			pass.Reportf(fd.Pos(), "%s must be a one-statement wrapper delegating to %sContext(context.Background(), ...)", k.name, k.name)
		}
	}
}

// receiverName names a method's receiver base type, or "" for functions.
func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	if ix, ok := t.(*ast.IndexExpr); ok {
		if id, ok := ix.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

func firstParamIsContext(pass *lintkit.Pass, fd *ast.FuncDecl) bool {
	params := fd.Type.Params.List
	return len(params) > 0 && isContextType(pass.TypesInfo.TypeOf(params[0].Type))
}

func takesContext(pass *lintkit.Pass, fd *ast.FuncDecl) bool {
	for _, p := range fd.Type.Params.List {
		if isContextType(pass.TypesInfo.TypeOf(p.Type)) {
			return true
		}
	}
	return false
}

// delegatesToTwin reports whether fd's body is exactly one statement calling
// <twin>(context.Background(), ...) — as a return, or as a bare call when
// the function has no results.
func delegatesToTwin(pass *lintkit.Pass, fd *ast.FuncDecl, twin string) bool {
	if fd.Body == nil || len(fd.Body.List) != 1 {
		return false
	}
	var call *ast.CallExpr
	switch s := fd.Body.List[0].(type) {
	case *ast.ReturnStmt:
		if len(s.Results) != 1 {
			return false
		}
		call, _ = lintkit.Unparen(s.Results[0]).(*ast.CallExpr)
	case *ast.ExprStmt:
		call, _ = lintkit.Unparen(s.X).(*ast.CallExpr)
	}
	if call == nil {
		return false
	}
	switch fun := lintkit.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name != twin {
			return false
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name != twin {
			return false
		}
	default:
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	first, ok := lintkit.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	callee := lintkit.CalleeFunc(pass.TypesInfo, first)
	return callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "context" && callee.Name() == "Background"
}
