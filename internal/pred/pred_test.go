package pred

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/sqlkit"
	"repro/internal/value"
)

func testTable() *schema.Table {
	return &schema.Table{
		Name: "item",
		Columns: []*schema.Column{
			{Name: "pk", Type: schema.Int, PrimaryKey: true, DomainLo: 0, DomainHi: 100},
			{Name: "m", Type: schema.Int, DomainLo: 0, DomainHi: 100},
			{Name: "price", Type: schema.Float, Scale: 100, DomainLo: 0, DomainHi: 100000},
			{Name: "cat", Type: schema.String, Dict: []string{"books", "music", "shoes"}, DomainLo: 0, DomainHi: 3},
		},
	}
}

func compileOneQuery(t *testing.T, where string) *Region {
	t.Helper()
	q, err := sqlkit.Parse("SELECT * FROM item WHERE " + where)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	r, err := Compile(testTable(), q.Preds)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return r
}

func setOf(t *testing.T, r *Region, col int) value.IntervalSet {
	t.Helper()
	for i, c := range r.Cols {
		if c == col {
			return r.Sets[i]
		}
	}
	t.Fatalf("column %d not constrained in %+v", col, r)
	return nil
}

func TestCompileIntOps(t *testing.T) {
	cases := []struct {
		where string
		want  value.IntervalSet
	}{
		{"m = 7", value.NewIntervalSet(value.Point(7))},
		{"m <> 7", value.NewIntervalSet(value.Ival(0, 7), value.Ival(8, 100))},
		{"m < 7", value.NewIntervalSet(value.Ival(0, 7))},
		{"m <= 7", value.NewIntervalSet(value.Ival(0, 8))},
		{"m > 7", value.NewIntervalSet(value.Ival(8, 100))},
		{"m >= 7", value.NewIntervalSet(value.Ival(7, 100))},
		{"m BETWEEN 3 AND 5", value.NewIntervalSet(value.Ival(3, 6))},
		{"m IN (1, 5, 5, 99)", value.NewIntervalSet(value.Point(1), value.Point(5), value.Point(99))},
	}
	for _, c := range cases {
		r := compileOneQuery(t, c.where)
		if got := setOf(t, r, 1); !got.Equal(c.want) {
			t.Errorf("%s: got %v, want %v", c.where, got, c.want)
		}
	}
}

func TestCompileFloatConstantOnIntColumn(t *testing.T) {
	cases := []struct {
		where string
		want  value.IntervalSet
	}{
		{"m < 2.5", value.NewIntervalSet(value.Ival(0, 3))},
		{"m <= 2.5", value.NewIntervalSet(value.Ival(0, 3))},
		{"m > 2.5", value.NewIntervalSet(value.Ival(3, 100))},
		{"m >= 2.5", value.NewIntervalSet(value.Ival(3, 100))},
		{"m = 2.5", nil}, // unsatisfiable
	}
	for _, c := range cases {
		r := compileOneQuery(t, c.where)
		got := setOf(t, r, 1)
		if c.want == nil {
			if !got.Empty() {
				t.Errorf("%s: got %v, want empty", c.where, got)
			}
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("%s: got %v, want %v", c.where, got, c.want)
		}
	}
}

func TestCompileFloatScaled(t *testing.T) {
	// price has scale 100: 12.34 -> code 1234.
	r := compileOneQuery(t, "price <= 12.34")
	if got := setOf(t, r, 2); !got.Equal(value.NewIntervalSet(value.Ival(0, 1235))) {
		t.Errorf("price <= 12.34: %v", got)
	}
	r = compileOneQuery(t, "price < 12.345")
	if got := setOf(t, r, 2); !got.Equal(value.NewIntervalSet(value.Ival(0, 1235))) {
		t.Errorf("price < 12.345: %v", got)
	}
}

func TestCompileStringOps(t *testing.T) {
	cases := []struct {
		where string
		want  value.IntervalSet
	}{
		{"cat = 'music'", value.NewIntervalSet(value.Point(1))},
		{"cat = 'jazz'", nil}, // not in dictionary
		{"cat <> 'music'", value.NewIntervalSet(value.Point(0), value.Point(2))},
		{"cat < 'music'", value.NewIntervalSet(value.Point(0))},
		{"cat <= 'music'", value.NewIntervalSet(value.Ival(0, 2))},
		{"cat > 'music'", value.NewIntervalSet(value.Point(2))},
		{"cat >= 'music'", value.NewIntervalSet(value.Ival(1, 3))},
		// Non-member range constants use rank boundaries.
		{"cat < 'n'", value.NewIntervalSet(value.Ival(0, 2))},
		{"cat <= 'n'", value.NewIntervalSet(value.Ival(0, 2))},
		{"cat >= 'n'", value.NewIntervalSet(value.Ival(2, 3))},
		{"cat > 'n'", value.NewIntervalSet(value.Ival(2, 3))},
		{"cat IN ('books', 'shoes')", value.NewIntervalSet(value.Point(0), value.Point(2))},
	}
	for _, c := range cases {
		r := compileOneQuery(t, c.where)
		got := setOf(t, r, 3)
		if c.want == nil {
			if !got.Empty() {
				t.Errorf("%s: got %v, want empty", c.where, got)
			}
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("%s: got %v, want %v", c.where, got, c.want)
		}
	}
}

func TestCompileConjunctionIntersects(t *testing.T) {
	r := compileOneQuery(t, "m >= 10 AND m < 20 AND m <> 15")
	want := value.NewIntervalSet(value.Ival(10, 15), value.Ival(16, 20))
	if got := setOf(t, r, 1); !got.Equal(want) {
		t.Errorf("conjunction = %v, want %v", got, want)
	}
}

func TestCompileIgnoresOtherTables(t *testing.T) {
	q, err := sqlkit.Parse("SELECT * FROM item, other WHERE other.x = 1 AND item.m = 2 AND item.pk = other.fk")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Compile(testTable(), q.Preds)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cols) != 1 || r.Cols[0] != 1 {
		t.Errorf("region = %+v", r)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"item.nosuch = 1",
		"m = 'str'",
		"cat = 5",
	}
	for _, where := range bad {
		q, err := sqlkit.Parse("SELECT * FROM item WHERE " + where)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Compile(testTable(), q.Preds); err == nil {
			t.Errorf("%s: Compile succeeded, want error", where)
		}
	}
}

func TestRegionMatch(t *testing.T) {
	r := compileOneQuery(t, "m BETWEEN 10 AND 20 AND cat = 'music'")
	row := []int64{0, 15, 0, 1}
	if !r.Match(row) {
		t.Error("row should match")
	}
	row[1] = 21
	if r.Match(row) {
		t.Error("m=21 should not match")
	}
	row[1] = 15
	row[3] = 0
	if r.Match(row) {
		t.Error("cat=books should not match")
	}
}

func TestRegionEmptyUnconstrained(t *testing.T) {
	r := compileOneQuery(t, "m = 200") // outside domain
	if !r.Empty() {
		t.Error("out-of-domain equality should be empty")
	}
	q, _ := sqlkit.Parse("SELECT * FROM item")
	u, err := Compile(testTable(), q.Preds)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Unconstrained() || u.Empty() {
		t.Error("no predicates should be unconstrained and non-empty")
	}
}

func TestRegionKeyDeterministic(t *testing.T) {
	a := compileOneQuery(t, "m < 5 AND cat = 'music'")
	b := compileOneQuery(t, "cat = 'music' AND m < 5")
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	c := compileOneQuery(t, "m < 6 AND cat = 'music'")
	if a.Key() == c.Key() {
		t.Error("different regions share a key")
	}
}

func TestWithColumn(t *testing.T) {
	r := compileOneQuery(t, "m < 50")
	set := value.NewIntervalSet(value.Ival(0, 10))
	r2 := r.WithColumn(3, set)
	if len(r2.Cols) != 2 || r2.Cols[0] != 1 || r2.Cols[1] != 3 {
		t.Fatalf("WithColumn cols = %v", r2.Cols)
	}
	// Intersect with existing column.
	r3 := r2.WithColumn(1, value.NewIntervalSet(value.Ival(40, 60)))
	if got := setOf(t, r3, 1); !got.Equal(value.NewIntervalSet(value.Ival(40, 50))) {
		t.Errorf("intersected = %v", got)
	}
	// Insert before existing columns.
	r4 := r2.WithColumn(0, set)
	if len(r4.Cols) != 3 || r4.Cols[0] != 0 {
		t.Errorf("prepend cols = %v", r4.Cols)
	}
}

func TestRegionSQLAndClone(t *testing.T) {
	r := compileOneQuery(t, "m < 5")
	tab := testTable()
	if r.SQL(tab) == "" || r.SQL(tab) == "true" {
		t.Errorf("SQL = %q", r.SQL(tab))
	}
	q, _ := sqlkit.Parse("SELECT * FROM item")
	u, _ := Compile(tab, q.Preds)
	if u.SQL(tab) != "true" {
		t.Errorf("unconstrained SQL = %q", u.SQL(tab))
	}
	c := r.Clone()
	c.Sets[0][0].Hi = 99
	if r.Sets[0][0].Hi == 99 {
		t.Error("Clone shares sets")
	}
}

func TestCompareSetRejectsBadKinds(t *testing.T) {
	col := testTable().Columns[1]
	if _, err := CompareSet(col, sqlkit.OpLT, value.NewString("x")); err == nil {
		t.Error("numeric column accepted string constant")
	}
	scol := testTable().Columns[3]
	if _, err := CompareSet(scol, sqlkit.OpLT, value.NewInt(3)); err == nil {
		t.Error("string column accepted int constant")
	}
}
