// Package pred compiles SQL predicates into per-column integer interval
// regions over a table's coded domains. A compiled Region is a conjunction
// of per-column interval sets: geometrically, a union of axis-aligned boxes.
// The same compilation feeds query execution (row matching), AQP constraint
// extraction, and region partitioning, so all three agree exactly on
// predicate semantics.
package pred

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/schema"
	"repro/internal/sqlkit"
	"repro/internal/value"
)

// Region is a conjunction of column constraints on one table: row r matches
// iff for every i, r[Cols[i]] ∈ Sets[i]. Columns not listed are
// unconstrained. Cols is sorted ascending and has no duplicates.
type Region struct {
	Table string
	Cols  []int
	Sets  []value.IntervalSet
}

// Compile builds a Region for table t from the non-join predicates that
// reference t. Predicates on other tables are ignored; a predicate that
// names t but an unknown column is an error.
func Compile(t *schema.Table, preds []sqlkit.Predicate) (*Region, error) {
	byCol := make(map[int]value.IntervalSet)
	for _, p := range preds {
		col, set, ok, err := compileOne(t, p)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if cur, seen := byCol[col]; seen {
			byCol[col] = cur.Intersect(set)
		} else {
			byCol[col] = set
		}
	}
	r := &Region{Table: t.Name}
	cols := make([]int, 0, len(byCol))
	for c := range byCol {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	for _, c := range cols {
		r.Cols = append(r.Cols, c)
		r.Sets = append(r.Sets, byCol[c])
	}
	return r, nil
}

// compileOne translates a single predicate. ok is false when the predicate
// does not constrain table t.
func compileOne(t *schema.Table, p sqlkit.Predicate) (col int, set value.IntervalSet, ok bool, err error) {
	switch p := p.(type) {
	case *sqlkit.JoinPred:
		return 0, nil, false, nil
	case *sqlkit.ComparePred:
		c, idx, refsT, err := resolve(t, p.Col)
		if err != nil || !refsT {
			return 0, nil, false, err
		}
		set, err := CompareSet(c, p.Op, p.Val)
		if err != nil {
			return 0, nil, false, err
		}
		return idx, set, true, nil
	case *sqlkit.BetweenPred:
		c, idx, refsT, err := resolve(t, p.Col)
		if err != nil || !refsT {
			return 0, nil, false, err
		}
		ge, err := CompareSet(c, sqlkit.OpGE, p.Lo)
		if err != nil {
			return 0, nil, false, err
		}
		le, err := CompareSet(c, sqlkit.OpLE, p.Hi)
		if err != nil {
			return 0, nil, false, err
		}
		return idx, ge.Intersect(le), true, nil
	case *sqlkit.InPred:
		c, idx, refsT, err := resolve(t, p.Col)
		if err != nil || !refsT {
			return 0, nil, false, err
		}
		var set value.IntervalSet
		for _, v := range p.Vals {
			eq, err := CompareSet(c, sqlkit.OpEQ, v)
			if err != nil {
				return 0, nil, false, err
			}
			set = set.Union(eq)
		}
		return idx, set, true, nil
	default:
		return 0, nil, false, fmt.Errorf("pred: unsupported predicate %T", p)
	}
}

// resolve maps a column reference onto table t. refsT is false when the
// reference is qualified with a different table name. An unqualified
// reference resolves to t only if t has that column.
func resolve(t *schema.Table, ref sqlkit.ColumnRef) (c *schema.Column, idx int, refsT bool, err error) {
	if ref.Table != "" && ref.Table != t.Name {
		return nil, 0, false, nil
	}
	idx = t.ColumnIndex(ref.Column)
	if idx < 0 {
		if ref.Table == "" {
			return nil, 0, false, nil // belongs to some other table
		}
		return nil, 0, false, fmt.Errorf("pred: table %s has no column %s", t.Name, ref.Column)
	}
	return t.Columns[idx], idx, true, nil
}

// CompareSet returns the coded interval set selected by "col op val" over
// the column's domain.
func CompareSet(c *schema.Column, op sqlkit.CompareOp, val value.Value) (value.IntervalSet, error) {
	dom := c.Domain()
	switch c.Type {
	case schema.String:
		return compareString(c, op, val, dom)
	default:
		return compareNumeric(c, op, val, dom)
	}
}

func compareNumeric(c *schema.Column, op sqlkit.CompareOp, val value.Value, dom value.Interval) (value.IntervalSet, error) {
	if val.Kind() != value.KindInt && val.Kind() != value.KindFloat {
		return nil, fmt.Errorf("pred: column %s: numeric comparison with %s", c.Name, val.Kind())
	}
	scale := 1.0
	if c.Type == schema.Float && c.Scale > 0 {
		scale = c.Scale
	}
	x := val.AsFloat() * scale
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return nil, fmt.Errorf("pred: column %s: non-finite constant", c.Name)
	}
	floor := int64(math.Floor(x))
	ceil := int64(math.Ceil(x))
	integral := floor == ceil

	var set value.IntervalSet
	switch op {
	case sqlkit.OpEQ:
		if integral {
			set = value.NewIntervalSet(value.Point(floor))
		}
	case sqlkit.OpNE:
		if integral {
			set = value.NewIntervalSet(value.Point(floor))
		}
		set = value.NewIntervalSet(dom).Subtract(set)
	case sqlkit.OpLT:
		// codes < x  ⇔  codes <= ceil-1 when integral, floor otherwise
		hi := floor
		if integral {
			hi = floor - 1
		}
		set = value.NewIntervalSet(value.Ival(dom.Lo, hi+1))
	case sqlkit.OpLE:
		set = value.NewIntervalSet(value.Ival(dom.Lo, floor+1))
	case sqlkit.OpGT:
		lo := ceil
		if integral {
			lo = ceil + 1
		}
		set = value.NewIntervalSet(value.Ival(lo, dom.Hi))
	case sqlkit.OpGE:
		set = value.NewIntervalSet(value.Ival(ceil, dom.Hi))
	default:
		return nil, fmt.Errorf("pred: unknown operator %v", op)
	}
	return set.Intersect(value.NewIntervalSet(dom)), nil
}

func compareString(c *schema.Column, op sqlkit.CompareOp, val value.Value, dom value.Interval) (value.IntervalSet, error) {
	if val.Kind() != value.KindString {
		return nil, fmt.Errorf("pred: column %s: string comparison with %s", c.Name, val.Kind())
	}
	s := val.Str()
	rank := c.EncodeRank(s) // index of first dict entry >= s
	member := rank < int64(len(c.Dict)) && c.Dict[rank] == s

	var set value.IntervalSet
	switch op {
	case sqlkit.OpEQ:
		if member {
			set = value.NewIntervalSet(value.Point(rank))
		}
	case sqlkit.OpNE:
		if member {
			set = value.NewIntervalSet(value.Point(rank))
		}
		set = value.NewIntervalSet(dom).Subtract(set)
	case sqlkit.OpLT:
		set = value.NewIntervalSet(value.Ival(dom.Lo, rank))
	case sqlkit.OpLE:
		hi := rank
		if member {
			hi++
		}
		set = value.NewIntervalSet(value.Ival(dom.Lo, hi))
	case sqlkit.OpGT:
		lo := rank
		if member {
			lo++
		}
		set = value.NewIntervalSet(value.Ival(lo, dom.Hi))
	case sqlkit.OpGE:
		set = value.NewIntervalSet(value.Ival(rank, dom.Hi))
	default:
		return nil, fmt.Errorf("pred: unknown operator %v", op)
	}
	return set.Intersect(value.NewIntervalSet(dom)), nil
}

// Match reports whether a coded row of the region's table satisfies the
// region.
func (r *Region) Match(row []int64) bool {
	for i, col := range r.Cols {
		if !r.Sets[i].Contains(row[col]) {
			return false
		}
	}
	return true
}

// Matcher is a compiled form of a Region for hot row-matching loops:
// single-interval column sets (the overwhelmingly common case for range
// predicates) are reduced to two integer compares, and only multi-interval
// sets fall back to the binary search of IntervalSet.Contains.
type Matcher struct {
	cols []matcherCol
}

type matcherCol struct {
	col    int
	lo, hi int64             // half-open [lo, hi) when set is nil
	set    value.IntervalSet // non-nil for multi-interval sets
}

// Matcher compiles the region for repeated matching.
func (r *Region) Matcher() *Matcher {
	m := &Matcher{cols: make([]matcherCol, len(r.Cols))}
	for i, c := range r.Cols {
		s := r.Sets[i]
		mc := matcherCol{col: c}
		switch len(s) {
		case 0:
			mc.lo, mc.hi = 0, 0 // empty set matches nothing
		case 1:
			mc.lo, mc.hi = s[0].Lo, s[0].Hi
		default:
			mc.set = s
		}
		m.cols[i] = mc
	}
	return m
}

// Single reports whether the matcher is one contiguous range on one
// column — the overwhelmingly common shape for the SPJ workloads Hydra
// handles — returning the column and its half-open [lo, hi) bounds so hot
// loops can inline the two compares.
func (m *Matcher) Single() (col int, lo, hi int64, ok bool) {
	if len(m.cols) != 1 || m.cols[0].set != nil {
		return 0, 0, 0, false
	}
	mc := &m.cols[0]
	return mc.col, mc.lo, mc.hi, true
}

// ColRange is one contiguous per-column constraint: row[Col] ∈ [Lo, Hi).
type ColRange struct {
	Col    int
	Lo, Hi int64
}

// AllRanges returns the matcher as a list of contiguous per-column ranges
// when every constrained column is a single interval, or nil when any
// column needs a multi-interval set. Hot loops iterate the returned slice
// with inline compares instead of calling Match per row.
func (m *Matcher) AllRanges() []ColRange {
	out := make([]ColRange, len(m.cols))
	for i := range m.cols {
		mc := &m.cols[i]
		if mc.set != nil {
			return nil
		}
		out[i] = ColRange{Col: mc.col, Lo: mc.lo, Hi: mc.hi}
	}
	return out
}

// MatchVec is the vector-at-a-time form of Match: it appends to dst the
// candidate rows whose column values satisfy every constraint, reading
// column c's vector from cols[c]. Candidates are the entries of sel or,
// when sel is nil, rows 0..n-1. dst must have length 0 and enough capacity
// for every candidate; the filled prefix is returned. Each constrained
// column is applied as one tight pass: the first pass writes survivors to
// dst, later passes refine dst in place (safe even when dst aliases sel —
// the write index never passes the read index).
//
//hydra:hotpath
func (m *Matcher) MatchVec(cols [][]int64, n int, sel []int32, dst []int32) []int32 {
	if len(m.cols) == 0 {
		if sel == nil {
			for i := 0; i < n; i++ {
				dst = append(dst, int32(i))
			}
			return dst
		}
		return append(dst, sel...)
	}
	for ci := range m.cols {
		mc := &m.cols[ci]
		data := cols[mc.col]
		if ci == 0 {
			if sel == nil {
				if mc.set == nil {
					lo, hi := mc.lo, mc.hi
					for i, v := range data[:n] {
						if v >= lo && v < hi {
							dst = append(dst, int32(i))
						}
					}
				} else {
					for i, v := range data[:n] {
						if mc.set.Contains(v) {
							dst = append(dst, int32(i))
						}
					}
				}
			} else {
				if mc.set == nil {
					lo, hi := mc.lo, mc.hi
					for _, r := range sel {
						if v := data[r]; v >= lo && v < hi {
							dst = append(dst, r)
						}
					}
				} else {
					for _, r := range sel {
						if mc.set.Contains(data[r]) {
							dst = append(dst, r)
						}
					}
				}
			}
			continue
		}
		k := 0
		if mc.set == nil {
			lo, hi := mc.lo, mc.hi
			for _, r := range dst {
				if v := data[r]; v >= lo && v < hi {
					dst[k] = r
					k++
				}
			}
		} else {
			for _, r := range dst {
				if mc.set.Contains(data[r]) {
					dst[k] = r
					k++
				}
			}
		}
		dst = dst[:k]
	}
	return dst
}

// Match reports whether the coded row satisfies the compiled region.
//
//hydra:hotpath
func (m *Matcher) Match(row []int64) bool {
	for i := range m.cols {
		mc := &m.cols[i]
		if mc.set == nil {
			v := row[mc.col]
			if v < mc.lo || v >= mc.hi {
				return false
			}
			continue
		}
		if !mc.set.Contains(row[mc.col]) {
			return false
		}
	}
	return true
}

// Empty reports whether the region selects no rows (some column set empty).
func (r *Region) Empty() bool {
	for _, s := range r.Sets {
		if s.Empty() {
			return true
		}
	}
	return false
}

// Unconstrained reports whether the region has no column constraints.
func (r *Region) Unconstrained() bool { return len(r.Cols) == 0 }

// WithColumn returns a copy of r with the given column additionally
// constrained to set (intersected if already constrained).
func (r *Region) WithColumn(col int, set value.IntervalSet) *Region {
	out := &Region{Table: r.Table}
	added := false
	for i, c := range r.Cols {
		if c == col {
			out.Cols = append(out.Cols, c)
			out.Sets = append(out.Sets, r.Sets[i].Intersect(set))
			added = true
			continue
		}
		if c > col && !added {
			out.Cols = append(out.Cols, col)
			out.Sets = append(out.Sets, set.Clone())
			added = true
		}
		out.Cols = append(out.Cols, c)
		out.Sets = append(out.Sets, r.Sets[i].Clone())
	}
	if !added {
		out.Cols = append(out.Cols, col)
		out.Sets = append(out.Sets, set.Clone())
	}
	return out
}

// Key returns a canonical string identifying the region's geometry, used to
// deduplicate identical constraint regions across queries.
func (r *Region) Key() string {
	var sb strings.Builder
	sb.WriteString(r.Table)
	for i, c := range r.Cols {
		fmt.Fprintf(&sb, "|%d:%s", c, r.Sets[i].String())
	}
	return sb.String()
}

// SQL renders the region as an AND of range conditions for display.
func (r *Region) SQL(t *schema.Table) string {
	if len(r.Cols) == 0 {
		return "true"
	}
	var parts []string
	for i, ci := range r.Cols {
		name := t.Columns[ci].Name
		parts = append(parts, fmt.Sprintf("%s ∈ %s", name, r.Sets[i]))
	}
	return strings.Join(parts, " AND ")
}

// Clone returns a deep copy.
func (r *Region) Clone() *Region {
	out := &Region{Table: r.Table, Cols: append([]int(nil), r.Cols...)}
	out.Sets = make([]value.IntervalSet, len(r.Sets))
	for i, s := range r.Sets {
		out.Sets[i] = s.Clone()
	}
	return out
}
