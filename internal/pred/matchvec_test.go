package pred

import (
	"math/rand"
	"testing"

	"repro/internal/value"
)

// refMatchVec is the executable specification MatchVec is held to: apply
// the per-row Match to every candidate.
func refMatchVec(m *Matcher, cols [][]int64, n int, sel []int32, width int) []int32 {
	row := make([]int64, width)
	gather := func(r int32) []int64 {
		for c := range row {
			if cols[c] != nil {
				row[c] = cols[c][r]
			}
		}
		return row
	}
	var out []int32
	if sel == nil {
		for i := 0; i < n; i++ {
			if m.Match(gather(int32(i))) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, r := range sel {
		if m.Match(gather(r)) {
			out = append(out, r)
		}
	}
	return out
}

func sameSel(t *testing.T, label string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d survivors, want %d (got %v, want %v)", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: survivor %d = %d, want %d", label, i, got[i], want[i])
		}
	}
}

// TestMatchVecRandomized pins MatchVec to per-row Match over randomized
// regions: 1-3 constrained columns, single-interval and multi-interval
// sets, dense inputs and random selections.
func TestMatchVecRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const width, n = 4, 257
	cols := make([][]int64, width)
	for c := range cols {
		cols[c] = make([]int64, n)
		for i := range cols[c] {
			cols[c][i] = rng.Int63n(100)
		}
	}
	for trial := 0; trial < 200; trial++ {
		r := &Region{Table: "t"}
		ncols := 1 + rng.Intn(3)
		for c := 0; c < ncols; c++ {
			var set value.IntervalSet
			if rng.Intn(3) == 0 { // multi-interval: forces the Contains path
				lo1 := rng.Int63n(40)
				lo2 := 50 + rng.Int63n(40)
				set = value.NewIntervalSet(value.Ival(lo1, lo1+rng.Int63n(10)+1), value.Ival(lo2, lo2+rng.Int63n(10)+1))
			} else {
				lo := rng.Int63n(90)
				set = value.NewIntervalSet(value.Ival(lo, lo+rng.Int63n(30)+1))
			}
			r.Cols = append(r.Cols, c)
			r.Sets = append(r.Sets, set)
		}
		m := r.Matcher()

		var sel []int32
		if rng.Intn(2) == 0 {
			for i := 0; i < n; i++ {
				if rng.Intn(3) == 0 {
					sel = append(sel, int32(i))
				}
			}
		}
		got := m.MatchVec(cols, n, sel, make([]int32, 0, n))
		want := refMatchVec(m, cols, n, sel, width)
		sameSel(t, "randomized", got, want)
	}
}

// TestMatchVecEdges exercises the edge shapes the engine relies on: empty
// selections, all-pass and all-fail vectors, unconstrained matchers, empty
// regions, and in-place refinement when dst aliases sel.
func TestMatchVecEdges(t *testing.T) {
	const n = 64
	cols := [][]int64{make([]int64, n)}
	for i := range cols[0] {
		cols[0][i] = int64(i)
	}
	region := func(sets ...value.IntervalSet) *Matcher {
		r := &Region{Table: "t"}
		for i, s := range sets {
			r.Cols = append(r.Cols, i)
			r.Sets = append(r.Sets, s)
		}
		return r.Matcher()
	}

	allPass := region(value.NewIntervalSet(value.Ival(0, n)))
	got := allPass.MatchVec(cols, n, nil, make([]int32, 0, n))
	if len(got) != n || got[0] != 0 || got[n-1] != n-1 {
		t.Fatalf("all-pass dense: %d survivors", len(got))
	}

	allFail := region(value.NewIntervalSet(value.Ival(1000, 2000)))
	if got := allFail.MatchVec(cols, n, nil, make([]int32, 0, n)); len(got) != 0 {
		t.Fatalf("all-fail dense: %d survivors", len(got))
	}

	// Empty selection in, empty selection out — for every matcher shape.
	for _, m := range []*Matcher{allPass, allFail, region()} {
		if got := m.MatchVec(cols, n, []int32{}, make([]int32, 0, n)); len(got) != 0 {
			t.Fatalf("empty selection produced %d survivors", len(got))
		}
	}

	// Unconstrained matcher passes candidates through verbatim.
	sel := []int32{3, 9, 41}
	got = region().MatchVec(cols, n, sel, make([]int32, 0, n))
	sameSel(t, "unconstrained", got, sel)

	// Empty region (empty interval set) matches nothing.
	empty := region(value.IntervalSet(nil))
	if got := empty.MatchVec(cols, n, nil, make([]int32, 0, n)); len(got) != 0 {
		t.Fatalf("empty region matched %d rows", len(got))
	}

	// dst aliasing sel (the engine's selection-buffer reuse) must be safe.
	buf := make([]int32, 0, n)
	buf = append(buf, 2, 4, 6, 50)
	mid := region(value.NewIntervalSet(value.Ival(3, 10)))
	got = mid.MatchVec(cols, n, buf[:4], buf[:0])
	sameSel(t, "aliased", got, []int32{4, 6})
}
