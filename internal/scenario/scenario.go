// Package scenario implements the paper's Scenario Construction component
// (§4.4): the vendor pro-actively simulates anticipated client environments
// by injecting synthetic cardinality annotations into the original AQPs —
// e.g. extrapolating a warehouse to an "exabyte scenario" — after which
// Hydra verifies the feasibility of the synthetic assignments and builds a
// regeneration summary for the what-if database.
package scenario

import (
	"fmt"
	"math"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/summary"
)

// Scenario describes a what-if transformation of a client package.
type Scenario struct {
	Name string
	// Factor scales every table and every plan edge uniformly.
	Factor float64
	// TableFactor overrides Factor for specific tables; edges are scaled
	// by the factor of the query's base (leftmost) table, filter and scan
	// edges by their own table's factor.
	TableFactor map[string]float64
	// Inject pins specific edges to absolute cardinalities after scaling:
	// keyed by query index and edge path as reported by aqp.Compare.
	Inject map[int]map[string]int64
}

func (sc *Scenario) factorFor(table string) float64 {
	if f, ok := sc.TableFactor[table]; ok {
		return f
	}
	if sc.Factor > 0 {
		return sc.Factor
	}
	return 1
}

// Apply returns a new transfer package with scaled row counts, scaled
// primary-key/foreign-key domains, and scaled AQP annotations. The input is
// not modified.
func (sc *Scenario) Apply(pkg *core.TransferPackage) (*core.TransferPackage, error) {
	out := &core.TransferPackage{Schema: pkg.Schema.Clone()}
	for _, t := range out.Schema.Tables {
		f := sc.factorFor(t.Name)
		t.RowCount = scaleCard(t.RowCount, f)
		// Key domains track the scaled table sizes so foreign keys stay
		// referentially meaningful.
		for _, c := range t.Columns {
			if c.PrimaryKey {
				c.DomainHi = scaleDomain(c.DomainHi, f)
			}
			if c.Ref != nil {
				c.DomainHi = scaleDomain(c.DomainHi, sc.factorFor(c.Ref.Table))
			}
		}
	}
	for qi, a := range pkg.Workload {
		plan := a.Plan.Clone()
		base := baseTable(plan)
		var walk func(n *aqp.Node)
		walk = func(n *aqp.Node) {
			switch n.Op {
			case "AGGREGATE":
				// still one output row
			case "SCAN", "FILTER":
				n.Card = scaleCard(n.Card, sc.factorFor(n.Table))
			default:
				n.Card = scaleCard(n.Card, sc.factorFor(base))
			}
			for _, c := range n.Children {
				walk(c)
			}
		}
		walk(plan)
		if inj := sc.Inject[qi]; inj != nil {
			diffs, err := aqp.Compare(plan, plan)
			if err != nil {
				return nil, err
			}
			byPath := make(map[string]bool, len(diffs))
			for _, d := range diffs {
				byPath[d.Path] = true
			}
			for path := range inj {
				if !byPath[path] {
					return nil, fmt.Errorf("scenario: query %d has no edge %q", qi, path)
				}
			}
			injectByPath(plan, "", inj)
		}
		out.Workload = append(out.Workload, &aqp.AQP{SQL: a.SQL, Plan: plan})
	}
	return out, nil
}

func scaleCard(v int64, f float64) int64 {
	return int64(math.Round(float64(v) * f))
}

func scaleDomain(hi int64, f float64) int64 {
	if hi <= 0 {
		return hi
	}
	return scaleCard(hi, f)
}

// baseTable returns the leftmost scan's table.
func baseTable(n *aqp.Node) string {
	for len(n.Children) > 0 {
		n = n.Children[0]
	}
	return n.Table
}

func injectByPath(n *aqp.Node, prefix string, inj map[string]int64) {
	label := n.Op
	if n.Table != "" {
		label += "(" + n.Table + ")"
	}
	path := label
	if prefix != "" {
		path = prefix + "/" + label
	}
	if v, ok := inj[path]; ok {
		n.Card = v
	}
	for _, c := range n.Children {
		injectByPath(c, path, inj)
	}
}

// Feasibility reports whether a synthetic annotation set admits a summary.
type Feasibility struct {
	// Feasible is true when the LPs satisfied every volumetric constraint
	// (total deviation within tolerance).
	Feasible bool
	// TotalDeviation is the summed absolute constraint deviation across
	// relations after integerization.
	TotalDeviation int64
	// RelDeviation is TotalDeviation relative to the total synthetic row
	// count.
	RelDeviation float64
	Report       *summary.BuildReport
	Summary      *summary.Database
}

// Build applies the scenario and constructs the what-if summary, verifying
// feasibility of the synthetic assignments as the paper describes.
func (sc *Scenario) Build(pkg *core.TransferPackage, opts summary.BuildOptions) (*Feasibility, error) {
	scaled, err := sc.Apply(pkg)
	if err != nil {
		return nil, err
	}
	sum, rep, err := core.BuildFromPackage(scaled, opts)
	if err != nil {
		return nil, err
	}
	f := &Feasibility{Report: rep, Summary: sum}
	var totalRows int64
	for _, t := range scaled.Schema.Tables {
		totalRows += t.RowCount
	}
	for _, rr := range rep.Relations {
		f.TotalDeviation += rr.SumAbsResidual
	}
	if totalRows > 0 {
		f.RelDeviation = float64(f.TotalDeviation) / float64(totalRows)
	}
	// Scaling cardinalities rounds each edge independently, so a handful
	// of off-by-one deviations is inherent to any synthetic assignment;
	// the scenario counts as feasible while the relative deviation stays
	// at rounding level.
	f.Feasible = f.RelDeviation <= 1e-4
	return f, nil
}
