package scenario

import (
	"testing"

	"repro/internal/core"
	"repro/internal/summary"
	"repro/internal/toy"
	"repro/internal/verify"
)

func toyPackage(t *testing.T) *core.TransferPackage {
	t.Helper()
	db, err := toy.Database(5)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := core.CaptureClient(db, toy.Workload(), core.CaptureOptions{SkipStats: true})
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func TestApplyUniformScale(t *testing.T) {
	pkg := toyPackage(t)
	sc := &Scenario{Name: "x10", Factor: 10}
	scaled, err := sc.Apply(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Schema.Table("r").RowCount != 10*pkg.Schema.Table("r").RowCount {
		t.Error("row count not scaled")
	}
	// Plan edges scale; aggregates stay at one row.
	orig := pkg.Workload[0].Plan
	got := scaled.Workload[0].Plan
	if got.Children[0].Card != 10*orig.Children[0].Card {
		t.Errorf("join card %d, want %d", got.Children[0].Card, 10*orig.Children[0].Card)
	}
	// The original package is untouched.
	if pkg.Schema.Table("r").RowCount != toy.RRows {
		t.Error("Apply mutated the input")
	}
}

func TestApplyPerTableFactors(t *testing.T) {
	pkg := toyPackage(t)
	sc := &Scenario{TableFactor: map[string]float64{"s": 2, "t": 1, "r": 1}}
	scaled, err := sc.Apply(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Schema.Table("s").RowCount != 2*toy.SRows {
		t.Error("per-table factor ignored")
	}
	if scaled.Schema.Table("r").RowCount != toy.RRows {
		t.Error("unscaled table changed")
	}
	// r's s_fk domain must track the scaled dimension.
	fk := scaled.Schema.Table("r").Column("s_fk")
	if fk.DomainHi != 2*toy.SRows {
		t.Errorf("fk domain = %d", fk.DomainHi)
	}
}

func TestBuildFeasibleScenario(t *testing.T) {
	pkg := toyPackage(t)
	sc := &Scenario{Name: "x100", Factor: 100}
	feas, err := sc.Build(pkg, summary.DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !feas.Feasible {
		t.Errorf("x100 scenario infeasible: deviation=%d rel=%v", feas.TotalDeviation, feas.RelDeviation)
	}
	// The what-if summary must actually regenerate at the new scale.
	rep, err := verify.Verify(core.RegenDatabase(feas.Summary, 0), (&Scenario{Factor: 100}).mustApply(t, pkg).Workload)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.SatisfiedWithin(0.01); got < 0.95 {
		t.Errorf("scaled satisfaction = %v", got)
	}
}

func (sc *Scenario) mustApply(t *testing.T, pkg *core.TransferPackage) *core.TransferPackage {
	t.Helper()
	out, err := sc.Apply(pkg)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestInjectEdge(t *testing.T) {
	pkg := toyPackage(t)
	// Query 1 is "SELECT COUNT(*) FROM s WHERE ...": inject its filter edge.
	sc := &Scenario{
		Factor: 1,
		Inject: map[int]map[string]int64{1: {"AGGREGATE/FILTER(s)/SCAN(s)": 500}},
	}
	scaled, err := sc.Apply(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Workload[1].Plan.Children[0].Children[0].Card != 500 {
		t.Errorf("injection missed: %+v", scaled.Workload[1].Plan)
	}
	bad := &Scenario{Inject: map[int]map[string]int64{0: {"NO/SUCH/PATH": 1}}}
	if _, err := bad.Apply(pkg); err == nil {
		t.Error("bad injection path accepted")
	}
}

func TestInfeasibleInjection(t *testing.T) {
	pkg := toyPackage(t)
	// Query 0 (the Figure 1 join) and query 1 both annotate the same σ(s)
	// region; pinning query 1's filter to a different count makes the
	// annotation set contradictory.
	truth := pkg.Workload[1].Plan.Children[0].Card
	sc := &Scenario{
		Factor: 1,
		Inject: map[int]map[string]int64{1: {"AGGREGATE/FILTER(s)": truth / 2}},
	}
	feas, err := sc.Build(pkg, summary.DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	if feas.Feasible {
		t.Error("contradictory injection reported feasible")
	}
	if feas.TotalDeviation == 0 {
		t.Error("deviation not reported")
	}
}
