package stats

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func TestBuildHistogramBasic(t *testing.T) {
	codes := []int64{5, 1, 3, 2, 4, 6, 8, 7, 9, 0}
	h := BuildHistogram(codes, 5)
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if h.Total() != int64(len(codes)) {
		t.Errorf("Total = %d, want %d", h.Total(), len(codes))
	}
	if h.Buckets() != 5 {
		t.Errorf("Buckets = %d, want 5", h.Buckets())
	}
}

func TestBuildHistogramEmpty(t *testing.T) {
	h := BuildHistogram(nil, 4)
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if h.Total() != 0 {
		t.Errorf("Total = %d", h.Total())
	}
	if est := h.EstimateRange(value.Ival(0, 100)); est != 0 {
		t.Errorf("EstimateRange on empty = %f", est)
	}
}

func TestBuildHistogramSkewNoStraddle(t *testing.T) {
	// 90 copies of 5 plus ten distinct values: equal values must not
	// straddle bucket boundaries.
	var codes []int64
	for i := 0; i < 90; i++ {
		codes = append(codes, 5)
	}
	for i := int64(10); i < 20; i++ {
		codes = append(codes, i)
	}
	h := BuildHistogram(codes, 10)
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if h.Total() != 100 {
		t.Errorf("Total = %d", h.Total())
	}
	// The value 5 must be fully inside one bucket: estimating its point
	// range should return (close to) its true count.
	if est := h.EstimateRange(value.Point(5)); est < 85 {
		t.Errorf("EstimateRange(5) = %f, want >= 85", est)
	}
}

func TestBuildHistogramMoreBucketsThanValues(t *testing.T) {
	h := BuildHistogram([]int64{1, 2}, 50)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.Total() != 2 {
		t.Errorf("Total = %d", h.Total())
	}
}

// TestQuickHistogramTotal: histograms preserve the value count and estimate
// the full domain to the total.
func TestQuickHistogramTotal(t *testing.T) {
	f := func(seed int64, buckets uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(300)
		codes := make([]int64, n)
		for i := range codes {
			codes[i] = int64(r.Intn(60)) - 30
		}
		h := BuildHistogram(codes, int(buckets%20)+1)
		if h.Validate() != nil {
			return false
		}
		if h.Total() != int64(n) {
			return false
		}
		if n == 0 {
			return true
		}
		est := h.EstimateRange(value.Ival(-40, 40))
		return est > float64(n)-1e-6 && est < float64(n)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramValidateErrors(t *testing.T) {
	bad := []*Histogram{
		{Bkts: []Bucket{{Lo: 3, Hi: 2, Count: 1}}},
		{Bkts: []Bucket{{Lo: 0, Hi: 1, Count: -1}}},
		{Bkts: []Bucket{{Lo: 0, Hi: 5, Count: 1}, {Lo: 5, Hi: 9, Count: 1}}},
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid histogram", i)
		}
	}
}

func TestBuildMCV(t *testing.T) {
	codes := []int64{3, 3, 3, 1, 1, 2, 9}
	mcv := BuildMCV(codes, 2)
	if len(mcv) != 2 || mcv[0].Code != 3 || mcv[0].Count != 3 || mcv[1].Code != 1 || mcv[1].Count != 2 {
		t.Errorf("BuildMCV = %+v", mcv)
	}
	if BuildMCV(nil, 3) != nil {
		t.Error("BuildMCV(nil) should be nil")
	}
	if BuildMCV(codes, 0) != nil {
		t.Error("BuildMCV(k=0) should be nil")
	}
	// Ties break by code.
	tied := BuildMCV([]int64{7, 7, 4, 4}, 2)
	if tied[0].Code != 4 || tied[1].Code != 7 {
		t.Errorf("tie break = %+v", tied)
	}
}

func TestBuildColumnStats(t *testing.T) {
	codes := []int64{10, 20, 20, 30}
	cs := BuildColumnStats("c", codes, 4, 2)
	if cs.Distinct != 3 || cs.MinCode != 10 || cs.MaxCode != 30 {
		t.Errorf("ColumnStats = %+v", cs)
	}
	if cs.Histogram.Total() != 4 {
		t.Errorf("histogram total = %d", cs.Histogram.Total())
	}
	empty := BuildColumnStats("e", nil, 4, 2)
	if empty.Distinct != 0 || empty.Histogram == nil {
		t.Errorf("empty ColumnStats = %+v", empty)
	}
}

func TestTableStatsColumn(t *testing.T) {
	ts := &TableStats{Table: "t", Columns: []*ColumnStats{{Column: "a"}, {Column: "b"}}}
	if ts.Column("b") == nil || ts.Column("z") != nil {
		t.Error("TableStats.Column misbehaves")
	}
}

func TestUniformDist(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	d := UniformDist{Lo: 5, Hi: 10}
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		v := d.Draw(r)
		if v < 5 || v >= 10 {
			t.Fatalf("uniform draw %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("uniform covered %d values, want 5", len(seen))
	}
	if (UniformDist{Lo: 3, Hi: 3}).Draw(r) != 3 {
		t.Error("degenerate uniform should return Lo")
	}
}

func TestZipfDistSkew(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	d := ZipfDist{Lo: 0, Hi: 1000, S: 1.3, V: 2}
	counts := map[int64]int{}
	for i := 0; i < 5000; i++ {
		v := d.Draw(r)
		if v < 0 || v >= 1000 {
			t.Fatalf("zipf draw %d out of range", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[500] {
		t.Errorf("zipf not skewed: counts[0]=%d counts[500]=%d", counts[0], counts[500])
	}
	// Degenerate domain.
	if (ZipfDist{Lo: 4, Hi: 5}).Draw(r) != 4 {
		t.Error("one-point zipf should return Lo")
	}
	// Out-of-range parameters fall back to sane defaults.
	dd := ZipfDist{Lo: 0, Hi: 10, S: 0.5, V: 0}
	if v := dd.Draw(r); v < 0 || v >= 10 {
		t.Errorf("zipf with bad params drew %d", v)
	}
}

func TestNormalDistClamped(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	d := NormalDist{Lo: 0, Hi: 100, Mean: 50, Sigma: 200}
	for i := 0; i < 2000; i++ {
		v := d.Draw(r)
		if v < 0 || v >= 100 {
			t.Fatalf("normal draw %d escaped clamp", v)
		}
	}
	if (NormalDist{Lo: 7, Hi: 7}).Draw(r) != 7 {
		t.Error("degenerate normal should return Lo")
	}
}

func TestSequentialDist(t *testing.T) {
	d := NewSequentialDist(10)
	for i := int64(10); i < 15; i++ {
		if got := d.Draw(nil); got != i {
			t.Fatalf("sequential = %d, want %d", got, i)
		}
	}
}
