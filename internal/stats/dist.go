package stats

import (
	"math"
	"math/rand"
)

// Dist draws integer codes from some distribution over a coded domain.
// Implementations must be deterministic given the seed of the supplied RNG.
type Dist interface {
	// Draw returns one code.
	Draw(r *rand.Rand) int64
}

// UniformDist draws uniformly from [Lo, Hi).
type UniformDist struct {
	Lo, Hi int64
}

// Draw implements Dist.
func (d UniformDist) Draw(r *rand.Rand) int64 {
	if d.Hi <= d.Lo {
		return d.Lo
	}
	return d.Lo + r.Int63n(d.Hi-d.Lo)
}

// ZipfDist draws Zipf-skewed ranks mapped onto [Lo, Hi). S and V follow
// math/rand's Zipf parameterization (S > 1, V >= 1).
type ZipfDist struct {
	Lo, Hi int64
	S, V   float64
}

// Draw implements Dist.
func (d ZipfDist) Draw(r *rand.Rand) int64 {
	n := d.Hi - d.Lo
	if n <= 1 {
		return d.Lo
	}
	s, v := d.S, d.V
	if s <= 1 {
		s = 1.2
	}
	if v < 1 {
		v = 1
	}
	z := rand.NewZipf(r, s, v, uint64(n-1))
	return d.Lo + int64(z.Uint64())
}

// NormalDist draws rounded normal codes clamped to [Lo, Hi).
type NormalDist struct {
	Lo, Hi      int64
	Mean, Sigma float64
}

// Draw implements Dist.
func (d NormalDist) Draw(r *rand.Rand) int64 {
	if d.Hi <= d.Lo {
		return d.Lo
	}
	v := int64(math.Round(r.NormFloat64()*d.Sigma + d.Mean))
	if v < d.Lo {
		v = d.Lo
	}
	if v >= d.Hi {
		v = d.Hi - 1
	}
	return v
}

// SequentialDist emits Lo, Lo+1, ... — used for surrogate keys.
type SequentialDist struct {
	next int64
	Lo   int64
}

// NewSequentialDist returns a counter starting at lo.
func NewSequentialDist(lo int64) *SequentialDist {
	return &SequentialDist{next: lo, Lo: lo}
}

// Draw implements Dist; the RNG is ignored.
func (d *SequentialDist) Draw(*rand.Rand) int64 {
	v := d.next
	d.next++
	return v
}
