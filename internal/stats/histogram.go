// Package stats provides the column statistics Hydra ships from the client
// site (equi-depth histograms and most-common-value lists, mirroring the
// PostgreSQL metadata the demo visualizes) and the seeded random
// distributions used by the synthetic warehouse generator.
package stats

import (
	"fmt"
	"sort"

	"repro/internal/value"
)

// Bucket is one equi-depth histogram bucket: Count values whose codes fall
// in the inclusive range [Lo, Hi].
type Bucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// Histogram is an equi-depth histogram over a column's coded domain.
// Bucket ranges are tight (Lo and Hi are values actually present), sorted,
// and non-overlapping; gaps between buckets contain no values.
type Histogram struct {
	Bkts []Bucket `json:"buckets"`
}

// BuildHistogram constructs an equi-depth histogram with at most buckets
// buckets from the given codes. Equal values never straddle a bucket
// boundary. The input slice is not modified.
func BuildHistogram(codes []int64, buckets int) *Histogram {
	if buckets < 1 {
		buckets = 1
	}
	if len(codes) == 0 {
		return &Histogram{}
	}
	sorted := append([]int64(nil), codes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	h := &Histogram{}
	n := len(sorted)
	if buckets > n {
		buckets = n
	}
	per := n / buckets
	rem := n % buckets
	idx := 0
	for b := 0; b < buckets && idx < n; b++ {
		take := per
		if b < rem {
			take++
		}
		end := idx + take
		if end > n {
			end = n
		}
		// Extend the bucket so equal values never straddle a boundary.
		for end < n && sorted[end] == sorted[end-1] {
			end++
		}
		h.Bkts = append(h.Bkts, Bucket{Lo: sorted[idx], Hi: sorted[end-1], Count: int64(end - idx)})
		idx = end
	}
	return h
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.Bkts) }

// Total returns the number of values the histogram summarizes.
func (h *Histogram) Total() int64 {
	var n int64
	for _, b := range h.Bkts {
		n += b.Count
	}
	return n
}

// Validate checks structural invariants.
func (h *Histogram) Validate() error {
	for i, b := range h.Bkts {
		if b.Hi < b.Lo {
			return fmt.Errorf("stats: bucket %d has inverted range [%d,%d]", i, b.Lo, b.Hi)
		}
		if b.Count < 0 {
			return fmt.Errorf("stats: negative count in bucket %d", i)
		}
		if i > 0 && b.Lo <= h.Bkts[i-1].Hi {
			return fmt.Errorf("stats: bucket %d overlaps bucket %d", i, i-1)
		}
	}
	return nil
}

// EstimateRange estimates how many values fall in the coded interval,
// assuming uniformity within buckets.
func (h *Histogram) EstimateRange(iv value.Interval) float64 {
	if iv.Empty() {
		return 0
	}
	var est float64
	for _, b := range h.Bkts {
		span := value.Ival(b.Lo, b.Hi+1)
		x := span.Intersect(iv)
		if x.Empty() {
			continue
		}
		est += float64(b.Count) * float64(x.Len()) / float64(span.Len())
	}
	return est
}

// MCVEntry is one most-common-value entry.
type MCVEntry struct {
	Code  int64 `json:"code"`
	Count int64 `json:"count"`
}

// MCV is a most-common-values list, descending by count.
type MCV []MCVEntry

// BuildMCV returns the top-k most frequent codes, ties broken by code.
func BuildMCV(codes []int64, k int) MCV {
	if k <= 0 || len(codes) == 0 {
		return nil
	}
	freq := make(map[int64]int64)
	for _, c := range codes {
		freq[c]++
	}
	entries := make(MCV, 0, len(freq))
	for c, n := range freq {
		entries = append(entries, MCVEntry{Code: c, Count: n})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].Code < entries[j].Code
	})
	if len(entries) > k {
		entries = entries[:k]
	}
	return entries
}

// ColumnStats bundles the per-column metadata shipped to the vendor.
type ColumnStats struct {
	Column    string     `json:"column"`
	Distinct  int64      `json:"distinct"`
	MinCode   int64      `json:"min_code"`
	MaxCode   int64      `json:"max_code"`
	Histogram *Histogram `json:"histogram,omitempty"`
	TopValues MCV        `json:"top_values,omitempty"`
}

// BuildColumnStats computes stats from raw codes with the given histogram
// bucket count and MCV size.
func BuildColumnStats(column string, codes []int64, buckets, mcv int) *ColumnStats {
	cs := &ColumnStats{Column: column}
	if len(codes) == 0 {
		cs.Histogram = BuildHistogram(nil, buckets)
		return cs
	}
	distinct := make(map[int64]bool)
	cs.MinCode, cs.MaxCode = codes[0], codes[0]
	for _, c := range codes {
		distinct[c] = true
		if c < cs.MinCode {
			cs.MinCode = c
		}
		if c > cs.MaxCode {
			cs.MaxCode = c
		}
	}
	cs.Distinct = int64(len(distinct))
	cs.Histogram = BuildHistogram(codes, buckets)
	cs.TopValues = BuildMCV(codes, mcv)
	return cs
}

// TableStats holds stats for every non-key column of one table.
type TableStats struct {
	Table    string         `json:"table"`
	RowCount int64          `json:"row_count"`
	Columns  []*ColumnStats `json:"columns"`
}

// Column returns stats for the named column, or nil.
func (ts *TableStats) Column(name string) *ColumnStats {
	for _, c := range ts.Columns {
		if c.Column == name {
			return c
		}
	}
	return nil
}
