// Package tpcds provides the evaluation substrate standing in for the
// paper's TPC-DS warehouse: a star schema centered on a store_sales fact
// with item, customer, date_dim, store, and promotion dimensions, a seeded
// synthetic data generator with skewed and uniform columns, and a
// deterministic generator for large SPJ query workloads (the paper
// evaluates on 131 distinct TPC-DS queries).
//
// Substitution note (see DESIGN.md): the licensed dsdgen tool and official
// query set are unavailable; what the experiments need is the *shape* — a
// realistic star schema, skewed value distributions, and a wide workload of
// selections over dimension attributes combined with foreign-key joins —
// which this package reproduces from scratch.
package tpcds

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/stats"
)

// Base table cardinalities at scale factor 1.
const (
	BaseDateDim   = 1_000
	BaseStore     = 20
	BasePromotion = 60
	BaseItem      = 2_000
	BaseCustomer  = 5_000
	BaseSales     = 50_000
)

var (
	categories  = []string{"Books", "Children", "Electronics", "Home", "Jewelry", "Men", "Music", "Shoes", "Sports", "Women"}
	genders     = []string{"F", "M"}
	salutations = []string{"Dr.", "Miss", "Mr.", "Mrs.", "Ms.", "Sir"}
	channels    = []string{"N", "Y"}
	states      = []string{"AL", "CA", "FL", "GA", "IL", "MI", "NY", "OH", "PA", "TX"}
)

func seqDict(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s_%03d", prefix, i)
	}
	return out
}

func scale(base int64, sf float64) int64 {
	n := int64(float64(base) * sf)
	if n < 1 {
		n = 1
	}
	return n
}

// Schema builds the warehouse schema at the given scale factor. Row counts
// and key domains scale linearly; the date dimension stays fixed like a
// real calendar.
func Schema(sf float64) *schema.Schema {
	nDate := int64(BaseDateDim)
	nStore := scale(BaseStore, sf)
	nPromo := scale(BasePromotion, sf)
	nItem := scale(BaseItem, sf)
	nCust := scale(BaseCustomer, sf)
	nSales := scale(BaseSales, sf)

	intCol := func(name string, lo, hi int64) *schema.Column {
		return &schema.Column{Name: name, Type: schema.Int, DomainLo: lo, DomainHi: hi}
	}
	pkCol := func(name string, n int64) *schema.Column {
		return &schema.Column{Name: name, Type: schema.Int, PrimaryKey: true, DomainLo: 0, DomainHi: n}
	}
	fkCol := func(name, table, column string, n int64) *schema.Column {
		return &schema.Column{Name: name, Type: schema.Int, Ref: &schema.ForeignKey{Table: table, Column: column}, DomainLo: 0, DomainHi: n}
	}
	strCol := func(name string, dict []string) *schema.Column {
		return &schema.Column{Name: name, Type: schema.String, Dict: dict, DomainLo: 0, DomainHi: int64(len(dict))}
	}
	moneyCol := func(name string, hiCents int64) *schema.Column {
		return &schema.Column{Name: name, Type: schema.Float, Scale: 100, DomainLo: 0, DomainHi: hiCents}
	}

	return &schema.Schema{Tables: []*schema.Table{
		{
			Name:     "date_dim",
			RowCount: nDate,
			Columns: []*schema.Column{
				pkCol("d_date_sk", nDate),
				intCol("d_year", 1998, 2004),
				intCol("d_moy", 1, 13),
				intCol("d_dom", 1, 29),
				intCol("d_qoy", 1, 5),
			},
		},
		{
			Name:     "store",
			RowCount: nStore,
			Columns: []*schema.Column{
				pkCol("s_store_sk", nStore),
				strCol("s_state", states),
				intCol("s_floor_space", 1_000, 10_000),
				intCol("s_number_employees", 10, 300),
			},
		},
		{
			Name:     "promotion",
			RowCount: nPromo,
			Columns: []*schema.Column{
				pkCol("p_promo_sk", nPromo),
				strCol("p_channel_email", channels),
				intCol("p_response_target", 0, 10),
			},
		},
		{
			Name:     "item",
			RowCount: nItem,
			Columns: []*schema.Column{
				pkCol("i_item_sk", nItem),
				intCol("i_manager_id", 0, 100),
				strCol("i_class", seqDict("class", 30)),
				strCol("i_category", categories),
				strCol("i_brand", seqDict("brand", 50)),
				moneyCol("i_current_price", 1_000_000), // up to $10,000.00
			},
		},
		{
			Name:     "customer",
			RowCount: nCust,
			Columns: []*schema.Column{
				pkCol("c_customer_sk", nCust),
				intCol("c_birth_year", 1920, 2005),
				strCol("c_gender", genders),
				strCol("c_state", states),
				strCol("c_salutation", salutations),
			},
		},
		{
			Name:     "store_sales",
			RowCount: nSales,
			Columns: []*schema.Column{
				pkCol("ss_sk", nSales),
				fkCol("ss_sold_date_sk", "date_dim", "d_date_sk", nDate),
				fkCol("ss_item_sk", "item", "i_item_sk", nItem),
				fkCol("ss_customer_sk", "customer", "c_customer_sk", nCust),
				fkCol("ss_store_sk", "store", "s_store_sk", nStore),
				fkCol("ss_promo_sk", "promotion", "p_promo_sk", nPromo),
				intCol("ss_quantity", 1, 100),
				moneyCol("ss_sales_price", 2_000_000),
				moneyCol("ss_wholesale_cost", 1_000_000),
			},
		},
	}}
}

// GenerateDatabase populates a client database for the schema with seeded
// synthetic data: skewed (Zipf) item popularity, normal price distributions,
// uniform calendar references.
func GenerateDatabase(s *schema.Schema, seed int64) (*engine.Database, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	db := engine.NewDatabase(s)
	r := rand.New(rand.NewSource(seed))
	for _, t := range s.Tables {
		dists, err := tableDists(s, t, r)
		if err != nil {
			return nil, err
		}
		rel := &engine.Relation{Table: t, Rows: make([][]int64, 0, t.RowCount)}
		for i := int64(0); i < t.RowCount; i++ {
			row := make([]int64, len(t.Columns))
			for ci := range t.Columns {
				row[ci] = dists[ci].Draw(r)
			}
			rel.Rows = append(rel.Rows, row)
		}
		if err := db.AddRelation(rel); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// tableDists chooses a distribution per column: sequential keys, Zipf for
// popularity-skewed attributes and the item/promotion foreign keys, normal
// for prices, uniform elsewhere.
func tableDists(s *schema.Schema, t *schema.Table, r *rand.Rand) ([]stats.Dist, error) {
	dists := make([]stats.Dist, len(t.Columns))
	for ci, c := range t.Columns {
		switch {
		case c.PrimaryKey:
			dists[ci] = stats.NewSequentialDist(0)
		case c.Ref != nil:
			ref := s.Table(c.Ref.Table)
			if ref == nil {
				return nil, fmt.Errorf("tpcds: missing reference %s", c.Ref.Table)
			}
			if c.Ref.Table == "item" || c.Ref.Table == "promotion" {
				dists[ci] = stats.ZipfDist{Lo: 0, Hi: ref.RowCount, S: 1.3, V: 2}
			} else {
				dists[ci] = stats.UniformDist{Lo: 0, Hi: ref.RowCount}
			}
		case c.Type == schema.Float:
			mid := float64(c.DomainLo+c.DomainHi) / 2
			dists[ci] = stats.NormalDist{Lo: c.DomainLo, Hi: c.DomainHi, Mean: mid / 2, Sigma: mid / 3}
		case c.Type == schema.String && (c.Name == "i_category" || c.Name == "i_class" || c.Name == "i_brand"):
			dists[ci] = stats.ZipfDist{Lo: c.DomainLo, Hi: c.DomainHi, S: 1.2, V: 1}
		default:
			dists[ci] = stats.UniformDist{Lo: c.DomainLo, Hi: c.DomainHi}
		}
	}
	return dists, nil
}
