package tpcds

import (
	"fmt"
	"math/rand"
)

// Workload deterministically generates n distinct SPJ queries over the
// warehouse. Like the real TPC-DS query set, the workload spreads over many
// templates, each touching a small, different subset of attributes, with
// parameters drawn from small discrete grids (the templates' "bind
// variables"). With the default n of 131 it plays the role of the paper's
// 131-query TPC-DS workload.
//
// The attribute sparsity matters for any workload-dependent regenerator:
// the size of the minimum-variable LP grows with the number of distinct
// overlap patterns among constraint regions, and real analytic workloads
// keep that density moderate by querying many different column subsets.
func Workload(n int, seed int64) []string {
	r := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, n)
	var out []string
	templates := []func(*rand.Rand) string{
		qFactQty,
		qItemOnly,
		qCustomerOnly,
		qSalesItemCat,
		qSalesDateYear,
		qSalesCustBirth,
		qSalesStorePromo,
		qSalesItemDate,
		qSalesItemCust,
		qFactWholesale,
		qItemClass,
		qSalesItemBrand,
		qSalesItemMgr,
		qSalesDateQoy,
		qSalesDateMoy,
		qSalesCustState,
		qSalesStoreFloor,
		qSalesPromoTarget,
		qSalesDateCust,
	}
	// Round-robin over templates, advancing on every attempt: templates
	// with small parameter spaces exhaust their distinct instances and the
	// richer ones fill the remainder.
	for attempt := 0; len(out) < n; attempt++ {
		q := templates[attempt%len(templates)](r)
		if seen[q] {
			continue
		}
		seen[q] = true
		out = append(out, q)
	}
	return out
}

// GroupWorkload returns grouped-aggregate queries over the warehouse for
// the GROUP BY parity suites: single- and multi-key grouping, every
// aggregate function, string-coded and foreign-key group columns,
// interleaved select order, and a global (GROUP-BY-less) aggregate. They
// regenerate from summaries built from Workload and are not themselves part
// of the captured AQP workload.
func GroupWorkload() []string {
	return []string{
		"SELECT ss_store_sk, COUNT(*) FROM store_sales GROUP BY ss_store_sk",
		"SELECT i_category, COUNT(*), SUM(ss_quantity), AVG(ss_sales_price) FROM store_sales, item WHERE ss_item_sk = i_item_sk GROUP BY i_category",
		"SELECT d_year, d_moy, MIN(ss_quantity), MAX(ss_quantity) FROM store_sales, date_dim WHERE ss_sold_date_sk = d_date_sk AND d_year < 2001 GROUP BY d_year, d_moy",
		"SELECT AVG(ss_quantity), ss_promo_sk FROM store_sales WHERE ss_quantity >= 40 GROUP BY ss_promo_sk",
		"SELECT COUNT(*), SUM(ss_quantity), MIN(ss_sales_price), MAX(ss_sales_price) FROM store_sales",
	}
}

// SortWorkload returns ORDER BY / LIMIT / DISTINCT queries over the
// warehouse for the sink-operator parity suites: full sorts with ties (low-
// cardinality keys exercise the full-row tiebreak), top-K under joins,
// limits landing mid-batch, OFFSET past the end, DISTINCT over foreign-key
// and string-coded columns, and compositions with GROUP BY. Like
// GroupWorkload, they regenerate from summaries built from Workload and are
// not part of the captured AQP workload.
func SortWorkload() []string {
	return []string{
		"SELECT * FROM store_sales ORDER BY ss_quantity DESC LIMIT 20",
		"SELECT * FROM store_sales WHERE ss_quantity < 40 ORDER BY ss_sales_price, ss_quantity DESC LIMIT 15 OFFSET 5",
		"SELECT * FROM store_sales, item WHERE ss_item_sk = i_item_sk AND i_manager_id < 40 ORDER BY ss_quantity DESC LIMIT 10",
		"SELECT * FROM item ORDER BY i_manager_id",
		"SELECT * FROM store_sales LIMIT 13 OFFSET 7",
		"SELECT * FROM store_sales LIMIT 5 OFFSET 100000000", // offset past end
		"SELECT * FROM store_sales LIMIT 0",
		"SELECT DISTINCT ss_store_sk FROM store_sales",
		"SELECT DISTINCT i_category FROM item ORDER BY i_category DESC",
		"SELECT DISTINCT ss_store_sk, ss_promo_sk FROM store_sales ORDER BY ss_promo_sk DESC, ss_store_sk LIMIT 12",
		"SELECT ss_store_sk, COUNT(*), SUM(ss_quantity) FROM store_sales GROUP BY ss_store_sk ORDER BY ss_store_sk DESC LIMIT 5 OFFSET 2",
	}
}

// Discrete parameter grids (the "bind variables" of the query templates).
var (
	quantityCuts  = []int{20, 40, 60, 80}
	priceCuts     = []int{2500, 5000, 10000, 15000}
	wholesaleCuts = []int{2000, 4000, 6000, 8000}
	managerCuts   = []int{20, 40, 60, 80}
	birthCuts     = []int{1940, 1955, 1970, 1985}
	floorCuts     = []int{3000, 5000, 7000}
	targetCuts    = []int{2, 5, 8}
)

func pickInt(r *rand.Rand, vals []int) int    { return vals[r.Intn(len(vals))] }
func pick(r *rand.Rand, vals []string) string { return vals[r.Intn(len(vals))] }
func rangeOf(r *rand.Rand, cuts []int) (lo, hi int) {
	i := r.Intn(len(cuts) - 1)
	j := i + 1 + r.Intn(len(cuts)-i-1)
	return cuts[i], cuts[j]
}

func qFactQty(r *rand.Rand) string {
	qlo, qhi := rangeOf(r, quantityCuts)
	return fmt.Sprintf(
		"SELECT COUNT(*) FROM store_sales WHERE ss_quantity BETWEEN %d AND %d AND ss_sales_price < %d.00",
		qlo, qhi, pickInt(r, priceCuts))
}

func qFactWholesale(r *rand.Rand) string {
	wlo, whi := rangeOf(r, wholesaleCuts)
	return fmt.Sprintf(
		"SELECT COUNT(*) FROM store_sales WHERE ss_wholesale_cost >= %d.00 AND ss_wholesale_cost < %d.00",
		wlo, whi)
}

func qItemOnly(r *rand.Rand) string {
	mlo, mhi := rangeOf(r, managerCuts)
	return fmt.Sprintf(
		"SELECT COUNT(*) FROM item WHERE i_category = '%s' AND i_manager_id BETWEEN %d AND %d",
		pick(r, categories), mlo, mhi)
}

func qItemClass(r *rand.Rand) string {
	return fmt.Sprintf(
		"SELECT COUNT(*) FROM item WHERE i_class IN ('class_%03d', 'class_%03d') AND i_current_price < %d.00",
		r.Intn(30), r.Intn(30), 100*pickInt(r, priceCuts))
}

func qCustomerOnly(r *rand.Rand) string {
	blo, bhi := rangeOf(r, birthCuts)
	return fmt.Sprintf(
		"SELECT COUNT(*) FROM customer WHERE c_birth_year >= %d AND c_birth_year < %d AND c_state IN ('%s', '%s')",
		blo, bhi, pick(r, states), pick(r, states))
}

func qSalesItemCat(r *rand.Rand) string {
	return fmt.Sprintf(
		"SELECT COUNT(*) FROM store_sales, item WHERE ss_item_sk = i_item_sk AND i_category = '%s'",
		pick(r, categories))
}

func qSalesItemBrand(r *rand.Rand) string {
	return fmt.Sprintf(
		"SELECT COUNT(*) FROM store_sales, item WHERE ss_item_sk = i_item_sk AND i_brand IN ('brand_%03d', 'brand_%03d', 'brand_%03d')",
		r.Intn(50), r.Intn(50), r.Intn(50))
}

func qSalesItemMgr(r *rand.Rand) string {
	mlo, mhi := rangeOf(r, managerCuts)
	return fmt.Sprintf(
		"SELECT COUNT(*) FROM store_sales, item WHERE ss_item_sk = i_item_sk AND i_manager_id >= %d AND i_manager_id < %d",
		mlo, mhi)
}

func qSalesDateYear(r *rand.Rand) string {
	ylo := 1998 + r.Intn(5)
	return fmt.Sprintf(
		"SELECT COUNT(*) FROM store_sales, date_dim WHERE ss_sold_date_sk = d_date_sk AND d_year >= %d AND d_year < %d",
		ylo, ylo+1+r.Intn(2))
}

func qSalesDateQoy(r *rand.Rand) string {
	return fmt.Sprintf(
		"SELECT COUNT(*) FROM store_sales, date_dim WHERE ss_sold_date_sk = d_date_sk AND d_qoy = %d",
		1+r.Intn(4))
}

func qSalesDateMoy(r *rand.Rand) string {
	mlo := 1 + 2*r.Intn(5)
	return fmt.Sprintf(
		"SELECT COUNT(*) FROM store_sales, date_dim WHERE ss_sold_date_sk = d_date_sk AND d_moy BETWEEN %d AND %d AND d_dom < %d",
		mlo, mlo+1+r.Intn(3), 10+5*r.Intn(3))
}

func qSalesCustBirth(r *rand.Rand) string {
	blo, bhi := rangeOf(r, birthCuts)
	return fmt.Sprintf(
		"SELECT COUNT(*) FROM store_sales, customer WHERE ss_customer_sk = c_customer_sk AND c_birth_year BETWEEN %d AND %d",
		blo, bhi)
}

func qSalesCustState(r *rand.Rand) string {
	return fmt.Sprintf(
		"SELECT COUNT(*) FROM store_sales, customer WHERE ss_customer_sk = c_customer_sk AND c_state = '%s' AND c_gender = '%s'",
		pick(r, states), pick(r, genders))
}

func qSalesStorePromo(r *rand.Rand) string {
	return fmt.Sprintf(
		"SELECT COUNT(*) FROM store_sales, store, promotion WHERE ss_store_sk = s_store_sk AND ss_promo_sk = p_promo_sk AND s_state IN ('%s', '%s') AND p_channel_email = '%s'",
		pick(r, states), pick(r, states), pick(r, channels))
}

func qSalesStoreFloor(r *rand.Rand) string {
	flo, fhi := rangeOf(r, floorCuts)
	return fmt.Sprintf(
		"SELECT COUNT(*) FROM store_sales, store WHERE ss_store_sk = s_store_sk AND s_floor_space >= %d AND s_floor_space < %d",
		flo, fhi)
}

func qSalesPromoTarget(r *rand.Rand) string {
	return fmt.Sprintf(
		"SELECT COUNT(*) FROM store_sales, promotion WHERE ss_promo_sk = p_promo_sk AND p_response_target >= %d",
		pickInt(r, targetCuts))
}

func qSalesItemDate(r *rand.Rand) string {
	ylo := 1998 + r.Intn(5)
	return fmt.Sprintf(
		"SELECT COUNT(*) FROM store_sales, item, date_dim WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk AND i_category = '%s' AND d_year = %d AND ss_quantity < %d",
		pick(r, categories), ylo, pickInt(r, quantityCuts))
}

func qSalesItemCust(r *rand.Rand) string {
	mlo, mhi := rangeOf(r, managerCuts)
	return fmt.Sprintf(
		"SELECT COUNT(*) FROM store_sales, item, customer WHERE ss_item_sk = i_item_sk AND ss_customer_sk = c_customer_sk AND i_manager_id BETWEEN %d AND %d AND c_birth_year >= %d",
		mlo, mhi, pickInt(r, birthCuts))
}

func qSalesDateCust(r *rand.Rand) string {
	return fmt.Sprintf(
		"SELECT COUNT(*) FROM store_sales, date_dim, customer WHERE ss_sold_date_sk = d_date_sk AND ss_customer_sk = c_customer_sk AND d_year = %d AND c_gender = '%s' AND c_salutation = '%s'",
		1998+r.Intn(6), pick(r, genders), pick(r, salutations))
}
