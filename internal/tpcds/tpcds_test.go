package tpcds

import (
	"strings"
	"testing"

	"repro/internal/sqlkit"
)

func TestSchemaValidates(t *testing.T) {
	for _, sf := range []float64{0.1, 1, 4} {
		s := Schema(sf)
		if err := s.Validate(); err != nil {
			t.Fatalf("sf=%v: %v", sf, err)
		}
	}
}

func TestSchemaScales(t *testing.T) {
	small, big := Schema(1), Schema(2)
	if big.Table("store_sales").RowCount != 2*small.Table("store_sales").RowCount {
		t.Error("fact table did not scale")
	}
	if big.Table("date_dim").RowCount != small.Table("date_dim").RowCount {
		t.Error("the calendar should not scale")
	}
	// Key domains follow the row counts.
	if big.Table("item").Column("i_item_sk").DomainHi != big.Table("item").RowCount {
		t.Error("pk domain out of sync")
	}
	if big.Table("store_sales").Column("ss_item_sk").DomainHi != big.Table("item").RowCount {
		t.Error("fk domain out of sync")
	}
}

func TestGenerateDatabase(t *testing.T) {
	s := Schema(0.1)
	db, err := GenerateDatabase(s, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range s.Tables {
		rel := db.Relation(tbl.Name)
		if rel == nil || int64(len(rel.Rows)) != tbl.RowCount {
			t.Fatalf("%s has %d rows, want %d", tbl.Name, len(rel.Rows), tbl.RowCount)
		}
		for ci, col := range tbl.Columns {
			for _, row := range rel.Rows {
				if row[ci] < col.DomainLo || row[ci] >= col.DomainHi {
					t.Fatalf("%s.%s code %d outside [%d,%d)", tbl.Name, col.Name, row[ci], col.DomainLo, col.DomainHi)
				}
			}
		}
	}
	// Foreign keys reference existing primary keys (sequential 0..n-1).
	fact := db.Relation("store_sales")
	nItem := s.Table("item").RowCount
	for _, row := range fact.Rows {
		if row[2] < 0 || row[2] >= nItem {
			t.Fatalf("dangling ss_item_sk %d", row[2])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := Schema(0.1)
	a, err := GenerateDatabase(s, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDatabase(Schema(0.1), 9)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Relation("item").Rows, b.Relation("item").Rows
	for i := range ra {
		for j := range ra[i] {
			if ra[i][j] != rb[i][j] {
				t.Fatalf("row %d differs across equal seeds", i)
			}
		}
	}
}

func TestWorkloadDistinctAndParseable(t *testing.T) {
	s := Schema(1)
	queries := Workload(131, 11)
	if len(queries) != 131 {
		t.Fatalf("queries = %d", len(queries))
	}
	seen := map[string]bool{}
	for _, sql := range queries {
		if seen[sql] {
			t.Fatalf("duplicate query: %s", sql)
		}
		seen[sql] = true
		q, err := sqlkit.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		if !q.CountStar {
			t.Errorf("workload query is not COUNT(*): %s", sql)
		}
		for _, name := range q.Tables {
			if s.Table(name) == nil {
				t.Errorf("query references unknown table %s", name)
			}
		}
	}
	// The workload must exercise joins and single-table scans.
	joins, singles := 0, 0
	for _, sql := range queries {
		if strings.Contains(sql, ",") && strings.Contains(sql, "_sk = ") {
			joins++
		} else {
			singles++
		}
	}
	if joins == 0 || singles == 0 {
		t.Errorf("workload mix: joins=%d singles=%d", joins, singles)
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	a := Workload(50, 3)
	b := Workload(50, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("workload not deterministic")
		}
	}
}
