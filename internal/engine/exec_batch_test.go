package engine

import (
	"reflect"
	"testing"

	"repro/internal/sqlkit"
)

// execBoth runs the same SQL through the batched and row-at-a-time paths,
// requiring byte-identical results. Plans are rebuilt per execution so each
// path observes fresh ExecNode trees.
func execBoth(t *testing.T, db *Database, sql string, opts ExecOptions) (*ExecResult, *ExecResult) {
	t.Helper()
	exec := func(f func(*Database, *Plan, ExecOptions) (*ExecResult, error)) *ExecResult {
		q, err := sqlkit.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		plan, err := BuildPlan(db.Schema, q)
		if err != nil {
			t.Fatalf("plan %q: %v", sql, err)
		}
		res, err := f(db, plan, opts)
		if err != nil {
			t.Fatalf("exec %q: %v", sql, err)
		}
		return res
	}
	return exec(Execute), exec(ExecuteRows)
}

// requireEqualResults compares every observable of two ExecResults: row and
// aggregate counts, retained samples, and the full annotated operator tree.
func requireEqualResults(t *testing.T, label string, got, want *ExecResult) {
	t.Helper()
	if got.Rows != want.Rows || got.Count != want.Count {
		t.Fatalf("%s: rows/count = %d/%d, want %d/%d", label, got.Rows, got.Count, want.Rows, want.Count)
	}
	if len(got.Sample) != len(want.Sample) {
		t.Fatalf("%s: sample size = %d, want %d", label, len(got.Sample), len(want.Sample))
	}
	for i := range want.Sample {
		if !reflect.DeepEqual(got.Sample[i], want.Sample[i]) {
			t.Fatalf("%s: sample row %d = %v, want %v", label, i, got.Sample[i], want.Sample[i])
		}
	}
	requireEqualNodes(t, label, got.Root, want.Root)
}

func requireEqualNodes(t *testing.T, label string, got, want *ExecNode) {
	t.Helper()
	if got.Op != want.Op || got.Table != want.Table || got.PredSQL != want.PredSQL ||
		got.JoinSQL != want.JoinSQL || got.OutRows != want.OutRows {
		t.Fatalf("%s: node %+v, want %+v", label, got, want)
	}
	if len(got.Children) != len(want.Children) {
		t.Fatalf("%s: node %s has %d children, want %d", label, got.Op, len(got.Children), len(want.Children))
	}
	for i := range want.Children {
		requireEqualNodes(t, label, got.Children[i], want.Children[i])
	}
}

var parityQueries = []string{
	"SELECT * FROM fact",
	"SELECT * FROM fact WHERE q >= 3",
	"SELECT * FROM fact WHERE q >= 100", // empty result
	"SELECT COUNT(*) FROM dim WHERE a BETWEEN 20 AND 30",
	"SELECT COUNT(*) FROM fact, dim WHERE fact.d_fk = dim.d_pk AND dim.a >= 30",
	"SELECT * FROM fact, dim WHERE fact.d_fk = dim.d_pk AND dim.a = 40",
	"SELECT * FROM fact, dim WHERE fact.d_fk = dim.d_pk",
	"SELECT COUNT(*) FROM fact, dim WHERE d_fk = d_pk AND a < 25 AND q > 1",
	// Grouped aggregation: single/multi key, interleaved select order,
	// every aggregate function, global (no GROUP BY), grouped-empty input.
	"SELECT d_fk, COUNT(*) FROM fact GROUP BY d_fk",
	"SELECT a, COUNT(*), SUM(q), MIN(q), MAX(q), AVG(q) FROM fact, dim WHERE fact.d_fk = dim.d_pk GROUP BY a",
	"SELECT AVG(q), d_fk FROM fact GROUP BY d_fk",
	"SELECT d_fk, q, COUNT(*) FROM fact GROUP BY d_fk, q",
	"SELECT COUNT(q), SUM(q) FROM fact",
	"SELECT d_fk, SUM(q) FROM fact WHERE q >= 100 GROUP BY d_fk", // empty input
	"SELECT MIN(q), MAX(q) FROM fact WHERE q >= 100",             // empty global group
	// ORDER BY / LIMIT / DISTINCT: full sort, top-K, limits landing
	// mid-batch, OFFSET past the end, LIMIT 0, and sink composition.
	"SELECT * FROM fact ORDER BY q DESC",
	"SELECT * FROM fact, dim WHERE fact.d_fk = dim.d_pk ORDER BY a DESC, q",
	"SELECT * FROM fact ORDER BY q DESC LIMIT 3 OFFSET 1",
	"SELECT * FROM fact LIMIT 4",
	"SELECT * FROM fact LIMIT 4 OFFSET 3",
	"SELECT * FROM fact LIMIT 5 OFFSET 100", // offset past end
	"SELECT * FROM fact LIMIT 0",
	"SELECT COUNT(*) FROM fact LIMIT 1",
	"SELECT DISTINCT d_fk FROM fact",
	"SELECT DISTINCT d_fk, q FROM fact WHERE q >= 3",
	"SELECT DISTINCT * FROM dim",
	"SELECT DISTINCT d_fk FROM fact ORDER BY d_fk DESC LIMIT 2",
	"SELECT d_fk, COUNT(*) FROM fact GROUP BY d_fk ORDER BY d_fk DESC LIMIT 2 OFFSET 1",
}

// TestBatchRowParityStored holds the batched path to the row path on
// stored relations, across batch sizes that force mid-operator batch
// boundaries (size 1 and 2 split every multi-row result).
func TestBatchRowParityStored(t *testing.T) {
	db := starDatabase(t)
	for _, size := range []int{1, 2, 3, 5, 0} {
		for _, sql := range parityQueries {
			got, want := execBoth(t, db, sql, ExecOptions{SampleLimit: 100, BatchSize: size})
			requireEqualResults(t, sql, got, want)
		}
	}
}

// TestBatchRowParityDatagen re-runs the parity suite with both tables
// served by row-reusing datagen streams, the dataless configuration.
func TestBatchRowParityDatagen(t *testing.T) {
	db := starDatabase(t)
	stored := map[string][][]int64{
		"dim":  db.Relation("dim").Rows,
		"fact": db.Relation("fact").Rows,
	}
	for name, rows := range stored {
		rows := rows
		db.SetDatagen(name, func() (RowSource, error) {
			i := 0
			buf := make([]int64, len(rows[0]))
			return rowFunc(func() ([]int64, bool) {
				if i >= len(rows) {
					return nil, false
				}
				copy(buf, rows[i]) // reuse the buffer like generator.Stream
				i++
				return buf, true
			}), nil
		})
	}
	for _, size := range []int{1, 3, 0} {
		for _, sql := range parityQueries {
			got, want := execBoth(t, db, sql, ExecOptions{SampleLimit: 100, BatchSize: size})
			requireEqualResults(t, sql, got, want)
		}
	}
}

// TestBatchEmptyRelations checks both paths agree when inputs are empty on
// either side of a join.
func TestBatchEmptyRelations(t *testing.T) {
	s := starSchema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(s)
	if err := db.AddRelation(&Relation{Table: s.Table("dim")}); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRelation(&Relation{Table: s.Table("fact")}); err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		"SELECT * FROM fact",
		"SELECT COUNT(*) FROM fact",
		"SELECT COUNT(*) FROM fact, dim WHERE fact.d_fk = dim.d_pk",
		"SELECT * FROM fact, dim WHERE fact.d_fk = dim.d_pk",
	} {
		got, want := execBoth(t, db, sql, ExecOptions{SampleLimit: 10, BatchSize: 2})
		requireEqualResults(t, sql, got, want)
		if sql == "SELECT * FROM fact" && got.Rows != 0 {
			t.Fatalf("empty relation produced %d rows", got.Rows)
		}
	}
}
