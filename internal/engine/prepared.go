package engine

import (
	"context"

	"repro/internal/batch"
	"repro/internal/trace"
)

// Prepared is a plan readied for repeated execution against one database:
// every hash-join build side has been drained once into a shared read-only
// columnar arena, so each Execute pays probe cost only. Because dataless
// scans are pure functions of the summary, the arenas are valid for the
// database's lifetime; a Prepared is safe for concurrent Execute calls
// (each opens fresh probe state over the shared builds). This is what the
// serve front end caches per normalized query — steady-state traffic never
// rebuilds a hash table. Cancellation cannot poison a Prepared: the arenas
// are immutable after Prepare, and a canceled execution abandons only its
// private probe state.
type Prepared struct {
	db      *Database
	plan    *Plan
	builds  buildCache
	prunes  pruneCache // qualifying row-spaces, computed once at Prepare time
	spanCap int        // span-arena capacity a traced execution needs, sized here
}

// Plan returns the compiled plan the Prepared executes.
func (p *Prepared) Plan() *Plan { return p.plan }

// Prepare compiles the plan's hash-join build sides into shared arenas.
// Builds materialize every build-side column, so later executions may
// request any sample projection. opts supplies the build drain's batch
// size; Parallelism, SampleLimit, and Timeout are ignored here (the drain
// is deliberately uncancellable: a Prepared under construction is not yet
// shared, and a per-request deadline belongs to executions, not to the
// cache-fill work other requests will reuse).
func Prepare(db *Database, plan *Plan, opts ExecOptions) (*Prepared, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	p := &Prepared{db: db, plan: plan, builds: make(buildCache), spanCap: countPlanNodes(plan.Root)}
	// Prune row-spaces are computed once and shared by every execution (and
	// by the build drain below, so cached build sides make the same prune
	// decisions as live ones — span-shape parity depends on it).
	p.prunes = buildPruneCache(db, plan)
	if err := p.prepareNode(plan.Root, opts.BatchSize); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Prepared) prepareNode(pn *PlanNode, capRows int) error {
	switch pn.Op {
	case OpFilter, OpAggregate, OpGroupAgg, OpDistinct, OpSort, OpLimit:
		return p.prepareNode(pn.Children[0], capRows)
	case OpHashJoin:
		if err := p.prepareNode(pn.Children[0], capRows); err != nil {
			return err
		}
		build := pn.Children[1]
		if err := p.prepareNode(build, capRows); err != nil {
			return err
		}
		all := make([]int, len(build.Cols))
		for i := range all {
			all[i] = i
		}
		buildIt, bw, buildPop, buildNode, err := openCol(p.db, build, all, capRows, nil, p.builds, &execCtl{prunes: p.prunes})
		if err != nil {
			return err
		}
		p.builds[pn] = &preparedBuild{
			jb:   newColJoinBuild(buildIt, bw, pn.RightKey, capRows, all, buildPop),
			node: buildNode,
		}
	}
	return nil
}

// Execute runs the prepared plan: identical results to Execute on the raw
// plan, minus the build cost. With opts.Parallelism >= 1 the probe pipeline
// is morsel-parallel over the same shared builds.
func (p *Prepared) Execute(opts ExecOptions) (*ExecResult, error) {
	return p.ExecuteContext(context.Background(), opts)
}

// ExecuteContext is Execute under a context, with the engine's
// batch-boundary cancellation contract (see ExecuteContext): the probe
// pipeline stops at the next batch once ctx is done or opts.Timeout
// expires, returning the context's error. The shared build arenas are
// untouched by a canceled execution.
func (p *Prepared) ExecuteContext(ctx context.Context, opts ExecOptions) (*ExecResult, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	ctx, cancel := withTimeout(ctx, opts.Timeout)
	defer cancel()
	if opts.Parallelism >= 1 {
		return executeParallelFrom(ctx, p.db, p.plan, opts, p.builds, p.prunes)
	}
	return executeColumnarFrom(ctx, p.db, p.plan, opts, nil, p.builds, p.prunes)
}

// ExecState is caller-owned reusable execution state for ExecuteIn: the
// opened operator tree, its ExecNode mirror, the root column batch, the
// result struct, and the execution's cancellation control (owned for the
// state's lifetime and rebound per call, so context plumbing costs no
// allocations). One goroutine per ExecState.
type ExecState struct {
	it    colIterator
	b     *batch.ColBatch
	res   ExecResult
	opts  ExecOptions
	ctl   execCtl
	sagg  *summaryAggEval // summary-direct evaluator when the fast path applies
	valid bool
}

// ExecuteIn runs the prepared plan sequentially inside st, reusing every
// piece of per-execution state from the previous call: iterators are
// rewound (deterministic scans re-seek to row zero instead of reopening),
// batches, selection buffers, and ExecNodes are recycled, and the returned
// result aliases st — it is valid until the next ExecuteIn on the same
// state. After the first call, executions with an unchanged opts value and
// SampleLimit == 0 allocate nothing: the steady-state scan→filter→count
// path runs at zero allocations per query, which BenchmarkDatalessQuery
// pins. opts.Parallelism is ignored (the reuse path is sequential by
// construction).
func (p *Prepared) ExecuteIn(st *ExecState, opts ExecOptions) (*ExecResult, error) {
	return p.ExecuteInContext(context.Background(), st, opts)
}

// ExecuteInContext is ExecuteIn under a context: cancellation is observed
// at batch boundaries through the state's own execCtl (a field rebind, not
// a per-batch closure, so the zero-allocation steady state survives — with
// a background context and no Timeout, nothing is allocated). A canceled
// execution leaves st reusable: the next call rewinds and recycles the
// same state, and results are unaffected — cancellation cannot poison the
// prepared state.
func (p *Prepared) ExecuteInContext(ctx context.Context, st *ExecState, opts ExecOptions) (*ExecResult, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	ctx, cancel := withTimeout(ctx, opts.Timeout)
	defer cancel()
	// The deadline now lives in ctx; zero the field so state reuse keys on
	// the execution-shaping options only (a per-call Timeout change must
	// not rebuild the operator tree).
	opts.Timeout = 0
	opts.Parallelism = 0
	st.ctl.bind(ctx)
	if !st.valid || st.opts != opts {
		// Trace participates in the reuse key: flipping it rebuilds the tree
		// once, with spans drawn from an arena sized at Prepare time. After
		// that, traced steady state recycles spans via Reset exactly as the
		// untraced path recycles batches — zero allocations either way.
		if opts.Trace {
			st.ctl.rec = trace.NewRecorder(p.spanCap)
		} else {
			st.ctl.rec = nil
		}
		// The summary-direct fast path is judged once per tree build and
		// then recycled like the operator tree: its span, scratch buffers,
		// and aggregation state all reset in place, so steady-state
		// fast-path executions allocate nothing.
		st.ctl.prunes = prunesFor(p.db, p.plan, opts, p.prunes)
		st.sagg = summaryAggFor(p.db, p.plan, opts)
		if st.sagg != nil {
			st.sagg.open(&st.ctl)
			st.res = ExecResult{Root: &st.sagg.node, Trace: st.sagg.sp}
			st.opts = opts
			st.valid = true
		} else {
			need := rootNeed(p.plan, opts)
			it, width, pop, node, err := openCol(p.db, p.plan.Root, need, opts.BatchSize, nil, p.builds, &st.ctl)
			if err != nil {
				return nil, err
			}
			st.it = it
			st.b = batch.NewCol(width, opts.BatchSize, pop)
			st.res = ExecResult{Root: node, Trace: node.sp}
			st.opts = opts
			st.valid = true
		}
	} else {
		if st.ctl.rec != nil {
			st.ctl.rec.Reset()
		}
		if st.sagg == nil {
			if err := st.it.rewind(p.db); err != nil {
				return nil, err
			}
		}
	}
	st.res.Rows, st.res.Count = 0, 0
	st.res.Sample = nil
	st.res.Path = ""
	st.res.Approx = nil
	if st.sagg != nil {
		st.res.Path = PathSummary
		if err := st.sagg.run(&st.ctl, &st.res, opts); err != nil {
			return nil, err
		}
		if st.ctl.err != nil {
			return nil, st.ctl.err
		}
		return &st.res, nil
	}
	derr := runColumnar(&st.ctl, st.it, st.b, p.plan, opts, &st.res)
	if st.ctl.err != nil {
		return nil, st.ctl.err
	}
	if derr != nil {
		return nil, derr
	}
	return &st.res, nil
}
