package engine

import (
	"repro/internal/batch"
	"repro/internal/trace"
)

// The sink framework: every blocking root operator — grouped aggregation,
// DISTINCT, ORDER BY, COUNT(*) — is one state object implementing sinkState,
// executed by the single colSinkIter operator. The same state serves all
// execution fronts:
//
//   - the sequential columnar executor drives observe over child batches and
//     emit over the finished state (colSinkIter);
//   - ExecuteRows is a row pivot over the identical pipeline, so the row
//     path exercises the very same state;
//   - the morsel-parallel executor holds one state per worker (partial
//     accumulation via observe), folds partials with merge in worker-index
//     order, and emits the merged state through stateEmitIter — the
//     partial-state/merge contract that replaces per-executor operator
//     reimplementations;
//   - Prepared.ExecuteIn recycles the state via reset, so grouped, distinct,
//     and sorted steady-state queries allocate nothing.
//
// finish freezes the deterministic output order exactly once; emit is then a
// pure, restartable read. deferredErr surfaces failures that can only be
// judged after the drain (aggregate overflow), replacing the old
// rowIterErr/colIterErr type probes with one convention shared by every
// operator.
type sinkState interface {
	// observe folds one child batch into the state (selection-aware).
	observe(b *batch.ColBatch)
	// finish freezes the deterministic output order and judges deferred
	// failures. Called exactly once per execution, after the last observe —
	// for parallel execution, after the last merge.
	finish()
	// emit writes output rows [pos, pos+k) into dst, populating only
	// outCols, and returns k (0 = exhausted).
	emit(dst *batch.ColBatch, outCols []int, pos int) int
	// reset recycles the state for another execution without releasing
	// storage (the zero-allocation steady-state contract).
	reset()
	// deferredErr reports a failure detected at finish, or nil.
	deferredErr() error
}

// colSinkIter is the one blocking operator of the columnar pipeline: it
// drains its child into a sinkState on the first Next, then streams the
// state's deterministic output. OpGroupAgg, OpDistinct (both groupAggState),
// and OpSort (sortState) are this operator with different states.
type colSinkIter struct {
	child    colIterator
	buf      *batch.ColBatch // child output drain batch
	st       sinkState
	outCols  []int // output columns the caller materializes
	node     *ExecNode
	ctl      *execCtl    // nil = uncancellable (parallel merge emission)
	sp       *trace.Span // nil when untraced
	rowBytes int64       // bytes materialized per emitted row

	drained bool
	pos     int // next output row to emit
}

func (g *colSinkIter) Next(dst *batch.ColBatch) bool {
	if g.sp == nil {
		return g.next(dst)
	}
	// The first traced Next covers the whole child drain, so the sink's
	// inclusive time is dominated by its children; emit batches account for
	// the sink's own output.
	g.sp.Begin()
	if !g.next(dst) {
		g.sp.ObserveEmpty()
		return false
	}
	g.sp.Observe(int64(dst.Live()), int64(dst.Live())*g.rowBytes)
	return true
}

func (g *colSinkIter) next(dst *batch.ColBatch) bool {
	dst.Reset()
	if !g.drained {
		for g.child.Next(g.buf) {
			g.st.observe(g.buf)
		}
		// A drain cut short by cancellation (the child's scan leaf stopped)
		// must not pay for finish — sorting or ordering a large partial
		// state would delay the unwind well past a batch boundary.
		if g.ctl != nil && g.ctl.stopped() {
			return false
		}
		g.st.finish() // freezes order; may park a deferred error
		g.drained = true
	}
	if g.st.deferredErr() != nil {
		return false
	}
	k := g.st.emit(dst, g.outCols, g.pos)
	if k == 0 {
		return false
	}
	g.pos += k
	g.node.OutRows += int64(k)
	return true
}

func (g *colSinkIter) rewind(db *Database) error {
	g.st.reset()
	g.drained = false
	g.pos = 0
	g.node.OutRows = 0
	return g.child.rewind(db)
}

func (g *colSinkIter) deferredErr() error {
	if err := g.st.deferredErr(); err != nil {
		return err
	}
	return g.child.deferredErr()
}

// stateEmitIter streams an already-finished sinkState — the parallel
// executor's merged partials — through the same emit contract colSinkIter
// uses, so the merge side of ExecuteParallel is the sequential emission
// code, not a reimplementation. It is single-shot: the merged state is not
// re-drainable.
type stateEmitIter struct {
	st       sinkState
	outCols  []int
	node     *ExecNode
	sp       *trace.Span // nil when untraced
	rowBytes int64
	pos      int
}

func (e *stateEmitIter) Next(dst *batch.ColBatch) bool {
	if e.sp == nil {
		return e.next(dst)
	}
	e.sp.Begin()
	if !e.next(dst) {
		e.sp.ObserveEmpty()
		return false
	}
	e.sp.Observe(int64(dst.Live()), int64(dst.Live())*e.rowBytes)
	return true
}

func (e *stateEmitIter) next(dst *batch.ColBatch) bool {
	dst.Reset()
	if e.st.deferredErr() != nil {
		return false
	}
	k := e.st.emit(dst, e.outCols, e.pos)
	if k == 0 {
		return false
	}
	e.pos += k
	e.node.OutRows += int64(k)
	return true
}

func (e *stateEmitIter) rewind(*Database) error {
	e.pos = 0
	e.node.OutRows = 0
	return nil
}

func (e *stateEmitIter) deferredErr() error { return e.st.deferredErr() }

// countState is COUNT(*) as a sinkState: a row counter emitting the single
// aggregate row. The sequential executor uses the streaming colCountStarIter
// (which needs no materialized state at all); countState is how the parallel
// executor's merged row count re-enters the shared sink emission path when
// sinks sit above the aggregate.
type countState struct {
	n int64
}

func (st *countState) observe(b *batch.ColBatch) { st.n += int64(b.Live()) }
func (st *countState) finish()                   {}
func (st *countState) reset()                    { st.n = 0 }
func (st *countState) deferredErr() error        { return nil }

func (st *countState) emit(dst *batch.ColBatch, outCols []int, pos int) int {
	if pos > 0 {
		return 0
	}
	dst.SetLen(1)
	for _, c := range outCols {
		dst.Col(c)[0] = st.n
	}
	return 1
}

// colLimitIter truncates its child's live-row stream to rows
// [offset, offset+limit). It is pure selection arithmetic: a batch's
// selection vector is sliced (or synthesized from the reusable selection
// buffer) and no row data moves. The child is drained to exhaustion even
// after the limit is reached, so every operator's observed cardinality is
// identical across executors and worker counts — annotated-plan fidelity is
// the engine's contract, and a short-circuiting LIMIT would make upstream
// OutRows depend on batch size and execution mode.
type colLimitIter struct {
	child         colIterator
	limit, offset int64
	node          *ExecNode
	sp            *trace.Span // nil when untraced

	seen    int64 // live child rows seen so far
	emitted int64 // rows passed downstream so far
}

func (l *colLimitIter) Next(dst *batch.ColBatch) bool {
	if l.sp == nil {
		return l.next(dst)
	}
	l.sp.Begin()
	if !l.next(dst) {
		l.sp.ObserveEmpty()
		return false
	}
	// Pure selection arithmetic: rows pass, no bytes move.
	l.sp.Observe(int64(dst.Live()), 0)
	return true
}

func (l *colLimitIter) next(dst *batch.ColBatch) bool {
	for {
		if !l.child.Next(dst) {
			return false
		}
		live := int64(dst.Live())
		start := int64(0)
		if l.seen < l.offset {
			start = l.offset - l.seen
			if start > live {
				start = live
			}
		}
		take := live - start
		if rem := l.limit - l.emitted; take > rem {
			take = rem
		}
		l.seen += live
		if take <= 0 {
			continue // keep draining for mode-invariant upstream counts
		}
		end := start + take
		if start > 0 || end < live {
			if sel := dst.Sel(); sel != nil {
				dst.SetSel(sel[start:end])
			} else {
				buf := dst.SelBuf()
				for r := start; r < end; r++ {
					buf = append(buf, int32(r))
				}
				dst.SetSel(buf)
			}
		}
		l.emitted += take
		l.node.OutRows += take
		return true
	}
}

func (l *colLimitIter) rewind(db *Database) error {
	l.seen = 0
	l.emitted = 0
	l.node.OutRows = 0
	return l.child.rewind(db)
}

func (l *colLimitIter) deferredErr() error { return l.child.deferredErr() }
