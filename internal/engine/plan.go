package engine

import (
	"fmt"

	"repro/internal/pred"
	"repro/internal/schema"
	"repro/internal/sqlkit"
)

// OpKind identifies a plan operator.
type OpKind uint8

// Plan operator kinds.
const (
	OpScan OpKind = iota
	OpFilter
	OpHashJoin
	OpAggregate // COUNT(*)
	OpGroupAgg  // GROUP BY keys + COUNT/SUM/MIN/MAX/AVG aggregates
	OpDistinct  // SELECT DISTINCT: dedup over the selected columns
	OpSort      // ORDER BY keys (ascending/descending, full-row tiebreak)
	OpLimit     // LIMIT n [OFFSET k]
	// OpSummaryAgg never appears in Plan.Root: it is the summary-direct
	// aggregate candidate the planner attaches as Plan.SummaryAgg when the
	// query's shape allows answering it from summary rows alone. Execution
	// takes it only when the per-summary-row proof succeeds (summaryagg.go).
	OpSummaryAgg
)

// String names the operator as it appears in AQPs.
func (k OpKind) String() string {
	switch k {
	case OpScan:
		return "SCAN"
	case OpFilter:
		return "FILTER"
	case OpHashJoin:
		return "HASH JOIN"
	case OpAggregate:
		return "AGGREGATE"
	case OpGroupAgg:
		return "GROUP AGG"
	case OpDistinct:
		return "DISTINCT"
	case OpSort:
		return "SORT"
	case OpLimit:
		return "LIMIT"
	case OpSummaryAgg:
		return "SUMMARY AGG"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// AggSpec is one aggregate computed by an OpGroupAgg node: the function and
// its input column's position in the child output. COUNT consumes no input
// column (Col is -1): with Hydra's coded rows there are no NULLs, so
// COUNT(col) and COUNT(*) both count group rows.
type AggSpec struct {
	Fn  sqlkit.AggFunc
	Col int
}

// GroupOut maps one OpGroupAgg output column, in select-list order, to its
// source: exactly one of Key (an index into the node's GroupBy) and Agg (an
// index into its Aggs) is >= 0.
type GroupOut struct {
	Key int
	Agg int
}

// SortKey is one ORDER BY key of an OpSort node: the column's position in
// the node's output and the direction. Ties across all sort keys are broken
// by the remaining output columns ascending, so sorted output is a total
// order up to full-row equality — the property that makes ORDER BY results
// byte-identical across the sequential, row-pivot, and morsel-parallel
// executors (SQL leaves tie order unspecified; Hydra pins it).
type SortKey struct {
	Col  int
	Desc bool
}

// ColRef locates an output column: which table it came from and the column's
// index within that table.
type ColRef struct {
	Table string
	Col   int
}

// PlanNode is one operator in a physical plan tree.
type PlanNode struct {
	Op    OpKind
	Table string       // OpScan
	Pred  *pred.Region // OpFilter: compiled predicate
	// OpHashJoin: positions (in the respective child's output row) of the
	// equi-join columns. Left is the probe (pipelined) side, Right the
	// build side.
	LeftKey, RightKey int
	JoinSQL           string // display form, e.g. "r.s_fk = s.s_pk"

	// OpGroupAgg: GroupBy lists the grouping-key positions in the child's
	// output (GROUP BY clause order — the deterministic output sort order);
	// Aggs the aggregate specs; Items maps each output column, in
	// select-list order, to a grouping key or an aggregate. OpDistinct
	// reuses the same three fields with no Aggs: its keys are the selected
	// columns and its output is one row per distinct key tuple — which is
	// why both operators share one execution state (groupAggState).
	GroupBy []int
	Aggs    []AggSpec
	Items   []GroupOut

	// OpSort: the ORDER BY keys in clause order. SortBound, when > 0, is
	// offset+limit of a LIMIT node directly above the sort: the sort may
	// retain only the SortBound smallest rows (top-K) since the limit
	// discards everything beyond them.
	SortKeys  []SortKey
	SortBound int64

	// OpLimit: emit at most Limit rows after skipping Offset (both >= 0).
	Limit, Offset int64

	Children []*PlanNode
	Cols     []ColRef // output column layout
}

// Plan is a compiled physical plan for one query.
type Plan struct {
	Query *sqlkit.Query
	Root  *PlanNode

	// SummaryAgg, when non-nil, is the summary-direct aggregate candidate:
	// an OpSummaryAgg node describing the same computation as Root for a
	// shape (single table, aggregate/distinct root, conjunctive interval
	// predicate, no ORDER BY / LIMIT) that may be answerable from the
	// table's summary without generating rows. It is a side-channel, not
	// part of the Root tree: executors consult it first and silently fall
	// back to Root when the table has no registered summary or the
	// per-summary-row exactness proof fails (see summaryagg.go).
	SummaryAgg *PlanNode
}

// BuildPlan compiles a parsed query into the canonical plan Hydra uses at
// both client and vendor sites: each table is scanned and filtered, then
// tables are joined left-deep in FROM-clause order (each joined table must
// connect to the already-joined set through an equi-join predicate, the
// star/snowflake pattern). COUNT(*) queries get a final aggregate. Because
// the construction is deterministic, client and vendor always agree on the
// plan — the role CODD's metadata transfer plays in the paper.
func BuildPlan(s *schema.Schema, q *sqlkit.Query) (*Plan, error) {
	if len(q.Tables) == 0 {
		return nil, fmt.Errorf("engine: query has no tables")
	}
	tables := make(map[string]*schema.Table, len(q.Tables))
	for _, name := range q.Tables {
		t := s.Table(name)
		if t == nil {
			return nil, fmt.Errorf("engine: unknown table %s", name)
		}
		if tables[name] != nil {
			return nil, fmt.Errorf("engine: table %s listed twice (self-joins unsupported)", name)
		}
		tables[name] = t
	}

	// Leaf for each table: scan + (optional) filter.
	leaves := make(map[string]*PlanNode, len(q.Tables))
	for name, t := range tables {
		node := &PlanNode{Op: OpScan, Table: name, Cols: tableCols(t)}
		region, err := pred.Compile(t, q.FilterPreds())
		if err != nil {
			return nil, err
		}
		if !region.Unconstrained() {
			node = &PlanNode{Op: OpFilter, Pred: region, Children: []*PlanNode{node}, Cols: node.Cols}
		}
		leaves[name] = node
	}

	// Validate every filter predicate resolved to exactly one table.
	if err := checkPredsResolve(tables, q); err != nil {
		return nil, err
	}

	joins := q.JoinPreds()
	cur := leaves[q.Tables[0]]
	joined := map[string]bool{q.Tables[0]: true}
	remaining := append([]string(nil), q.Tables[1:]...)
	used := make([]bool, len(joins))

	for len(remaining) > 0 {
		progress := false
		for ri := 0; ri < len(remaining); ri++ {
			name := remaining[ri]
			jp, ji, leftKey, rightKey, err := findJoin(joins, used, cur.Cols, leaves[name].Cols, tables, joined, name)
			if err != nil {
				return nil, err
			}
			if jp == nil {
				continue
			}
			used[ji] = true
			build := leaves[name]
			node := &PlanNode{
				Op:       OpHashJoin,
				LeftKey:  leftKey,
				RightKey: rightKey,
				JoinSQL:  jp.SQL(),
				Children: []*PlanNode{cur, build},
				Cols:     append(append([]ColRef(nil), cur.Cols...), build.Cols...),
			}
			cur = node
			joined[name] = true
			remaining = append(remaining[:ri], remaining[ri+1:]...)
			progress = true
			break
		}
		if !progress {
			return nil, fmt.Errorf("engine: tables %v are not connected by join predicates", remaining)
		}
	}

	// Any join predicate not consumed means a non-tree join graph.
	for i, jp := range joins {
		if !used[i] {
			return nil, fmt.Errorf("engine: unused join predicate %s (cyclic join graph unsupported)", jp.SQL())
		}
	}

	switch {
	case q.CountStar:
		cur = &PlanNode{Op: OpAggregate, Children: []*PlanNode{cur}, Cols: nil}
	case q.Grouped():
		gn, err := buildGroupAgg(tables, q, cur)
		if err != nil {
			return nil, err
		}
		cur = gn
	case q.Distinct:
		dn, err := buildDistinct(tables, q, cur)
		if err != nil {
			return nil, err
		}
		cur = dn
	}

	// Root sinks, innermost-out: DISTINCT (above), then ORDER BY, then
	// LIMIT. Each is one operator implementation shared by every executor.
	if len(q.OrderBy) > 0 {
		sn := &PlanNode{Op: OpSort, Children: []*PlanNode{cur}, Cols: cur.Cols}
		for _, o := range q.OrderBy {
			tbl, col, err := resolveColumnRef(tables, o.Col)
			if err != nil {
				return nil, err
			}
			pos := findCol(cur.Cols, tbl, col)
			if pos < 0 {
				return nil, fmt.Errorf("engine: ORDER BY column %s is not in the query output", o.Col)
			}
			sn.SortKeys = append(sn.SortKeys, SortKey{Col: pos, Desc: o.Desc})
		}
		cur = sn
	}
	if q.Limit != nil {
		ln := &PlanNode{Op: OpLimit, Limit: *q.Limit, Offset: q.Offset, Children: []*PlanNode{cur}, Cols: cur.Cols}
		if sn := ln.Children[0]; sn.Op == OpSort {
			// The limit bounds the sort directly: only the offset+limit
			// smallest rows can ever be emitted, so the sort may run top-K.
			if bound := ln.Offset + ln.Limit; bound > 0 && bound >= ln.Offset {
				sn.SortBound = bound
			}
		}
		cur = ln
	}
	return &Plan{Query: q, Root: cur, SummaryAgg: summaryAggCandidate(q, cur)}, nil
}

// summaryAggCandidate recognizes plans whose answer may be computable from
// summary rows alone and describes the computation as a detached
// OpSummaryAgg node. The shape requirements are structural only — exactness
// is proved per summary row at execution time:
//
//   - exactly one table, scanned (optionally filtered) directly: the
//     summary models base tables, not join results;
//   - an aggregate or distinct root (COUNT(*) / GROUP BY / DISTINCT):
//     plain row-returning selects need the rows themselves;
//   - no ORDER BY or LIMIT above the root: those sinks reorder or truncate
//     grouped output in ways the direct evaluation does not reproduce.
//
// Because the child is a single-table scan, the candidate's GroupBy, Aggs,
// and Pred column indices are all table column indices.
func summaryAggCandidate(q *sqlkit.Query, root *PlanNode) *PlanNode {
	if len(q.Tables) != 1 || len(q.OrderBy) > 0 || q.Limit != nil {
		return nil
	}
	switch root.Op {
	case OpAggregate, OpGroupAgg, OpDistinct:
	default:
		return nil
	}
	child := root.Children[0]
	var region *pred.Region
	if child.Op == OpFilter {
		region = child.Pred
		child = child.Children[0]
	}
	if child.Op != OpScan {
		return nil
	}
	return &PlanNode{
		Op:      OpSummaryAgg,
		Table:   child.Table,
		Pred:    region,
		GroupBy: root.GroupBy,
		Aggs:    root.Aggs,
		Items:   root.Items,
		Cols:    root.Cols,
	}
}

// buildDistinct compiles SELECT DISTINCT onto the join tree: the selected
// columns (every column for SELECT DISTINCT *) become the dedup key, and the
// node's output is exactly those columns in select-list order — one row per
// distinct key tuple, sorted ascending by the tuple so the result is
// deterministic on every execution path. Execution reuses the grouped
// aggregation state with no aggregates: DISTINCT is GROUP BY over the
// select list, emitting only the keys.
func buildDistinct(tables map[string]*schema.Table, q *sqlkit.Query, child *PlanNode) (*PlanNode, error) {
	node := &PlanNode{Op: OpDistinct, Children: []*PlanNode{child}}
	addKey := func(pos int) {
		node.Items = append(node.Items, GroupOut{Key: len(node.GroupBy), Agg: -1})
		node.GroupBy = append(node.GroupBy, pos)
		node.Cols = append(node.Cols, child.Cols[pos])
	}
	if q.Star {
		for pos := range child.Cols {
			addKey(pos)
		}
		return node, nil
	}
	for _, ref := range q.Columns {
		tbl, col, err := resolveColumnRef(tables, ref)
		if err != nil {
			return nil, err
		}
		pos := findCol(child.Cols, tbl, col)
		if pos < 0 {
			return nil, fmt.Errorf("engine: internal: column %s not in join output", ref)
		}
		addKey(pos)
	}
	return node, nil
}

// buildGroupAgg compiles the grouped select list onto the join tree:
// GROUP BY keys and aggregate inputs are resolved to child-output
// positions, and every non-aggregate select item is checked to be a
// grouping key (the classic GROUP BY validity rule).
func buildGroupAgg(tables map[string]*schema.Table, q *sqlkit.Query, child *PlanNode) (*PlanNode, error) {
	resolve := func(ref sqlkit.ColumnRef) (int, error) {
		tbl, col, err := resolveColumnRef(tables, ref)
		if err != nil {
			return 0, err
		}
		pos := findCol(child.Cols, tbl, col)
		if pos < 0 {
			return 0, fmt.Errorf("engine: internal: column %s not in join output", ref)
		}
		return pos, nil
	}
	node := &PlanNode{Op: OpGroupAgg, Children: []*PlanNode{child}}
	for _, ref := range q.GroupBy {
		pos, err := resolve(ref)
		if err != nil {
			return nil, err
		}
		node.GroupBy = append(node.GroupBy, pos)
	}
	for _, it := range q.Items {
		if !it.IsAgg {
			pos, err := resolve(it.Col)
			if err != nil {
				return nil, err
			}
			ki := -1
			for i, kp := range node.GroupBy {
				if kp == pos {
					ki = i
					break
				}
			}
			if ki < 0 {
				return nil, fmt.Errorf("engine: column %s must appear in GROUP BY", it.Col)
			}
			node.Items = append(node.Items, GroupOut{Key: ki, Agg: -1})
			node.Cols = append(node.Cols, child.Cols[pos])
			continue
		}
		spec := AggSpec{Fn: it.Agg.Fn, Col: -1}
		if !it.Agg.Star {
			pos, err := resolve(it.Agg.Col)
			if err != nil {
				return nil, err
			}
			if it.Agg.Fn != sqlkit.AggCount {
				spec.Col = pos
			}
		}
		node.Items = append(node.Items, GroupOut{Key: -1, Agg: len(node.Aggs)})
		node.Aggs = append(node.Aggs, spec)
		// Aggregate outputs are computed columns; no source ColRef.
		node.Cols = append(node.Cols, ColRef{Col: -1})
	}
	return node, nil
}

// Required-column analysis — the planning half of projection pushdown.
// Column needs flow top-down: each operator translates the set of output
// columns its parent requires into per-child requirements, adding the
// columns it reads itself (filter predicate columns, join keys). A scan's
// resulting need is the projection the columnar executor pushes into the
// generator; everything outside it is never materialized. A nil need means
// "no columns" — the COUNT(*) spine, where only cardinalities flow.

// addCol inserts column c into the ascending set, returning the set.
func addCol(set []int, c int) []int {
	for i, v := range set {
		if v == c {
			return set
		}
		if v > c {
			set = append(set, 0)
			copy(set[i+1:], set[i:])
			set[i] = c
			return set
		}
	}
	return append(set, c)
}

// childNeeds translates the output columns pn's parent requires (need,
// ascending) into the per-child column requirements, in child order.
func (pn *PlanNode) childNeeds(need []int) [][]int {
	switch pn.Op {
	case OpFilter:
		// The filter's output layout is its child's; it additionally reads
		// the predicate columns.
		child := append([]int(nil), need...)
		for _, c := range pn.Pred.Cols {
			child = addCol(child, c)
		}
		return [][]int{child}
	case OpHashJoin:
		// Output is probe columns then build columns; each side needs its
		// slice of the output plus its join key.
		pw := len(pn.Children[0].Cols)
		var probe, build []int
		for _, c := range need {
			if c < pw {
				probe = addCol(probe, c)
			} else {
				build = addCol(build, c-pw)
			}
		}
		probe = addCol(probe, pn.LeftKey)
		build = addCol(build, pn.RightKey)
		return [][]int{probe, build}
	case OpAggregate:
		// COUNT(*) consumes cardinality only — no child columns at all.
		return [][]int{nil}
	case OpGroupAgg, OpDistinct:
		// The node's output columns are computed, so the parent's need is
		// irrelevant: the child must materialize exactly the grouping (or
		// distinct) keys and aggregate inputs.
		var child []int
		for _, c := range pn.GroupBy {
			child = addCol(child, c)
		}
		for _, a := range pn.Aggs {
			if a.Col >= 0 {
				child = addCol(child, a.Col)
			}
		}
		return [][]int{child}
	case OpSort:
		// The sort's output layout is its child's; it additionally reads its
		// key columns. What the child materializes here is also the sort's
		// collected-column set — the tiebreak domain of its total order.
		child := append([]int(nil), need...)
		for _, k := range pn.SortKeys {
			child = addCol(child, k.Col)
		}
		return [][]int{child}
	case OpLimit:
		// Pure truncation: output layout and needs pass through.
		return [][]int{append([]int(nil), need...)}
	default:
		return nil
	}
}

// countStar reports whether the plan computes COUNT(*): an OpAggregate at
// the root, possibly under a LIMIT. The executors use it to route the count
// value out of output column 0.
func (p *Plan) countStar() bool {
	pn := p.Root
	for pn.Op == OpLimit || pn.Op == OpSort {
		pn = pn.Children[0]
	}
	return pn.Op == OpAggregate
}

// countPlanNodes sizes a plan subtree — the span-arena capacity a traced
// execution of it needs, since ExecNodes (and so spans) mirror plan nodes
// one-to-one.
func countPlanNodes(pn *PlanNode) int {
	n := 1
	for _, c := range pn.Children {
		n += countPlanNodes(c)
	}
	return n
}

// RequiredScanCols reports, per scanned table, the columns the plan must
// materialize from that scan: predicate and join-key columns always, plus —
// when withOutput is set, the sampling case — every column that reaches the
// plan's output. This is the observable form of the executor's projection
// pushdown (see EXPERIMENTS.md E12 for the throughput it buys).
func (p *Plan) RequiredScanCols(withOutput bool) map[string][]int {
	out := make(map[string][]int)
	var walk func(pn *PlanNode, need []int)
	walk = func(pn *PlanNode, need []int) {
		if pn.Op == OpScan {
			out[pn.Table] = need
			return
		}
		cn := pn.childNeeds(need)
		for i, c := range pn.Children {
			walk(c, cn[i])
		}
	}
	var need []int
	if withOutput && !p.countStar() {
		// Computed outputs (GROUP AGG, DISTINCT) translate the request into
		// their key and aggregate inputs via childNeeds, so listing every
		// root column is exact for any root operator.
		for i := range p.Root.Cols {
			need = append(need, i)
		}
	}
	walk(p.Root, need)
	return out
}

func tableCols(t *schema.Table) []ColRef {
	cols := make([]ColRef, len(t.Columns))
	for i := range t.Columns {
		cols[i] = ColRef{Table: t.Name, Col: i}
	}
	return cols
}

// findJoin looks for an unused join predicate connecting the joined set to
// candidate table name and resolves key positions.
func findJoin(joins []*sqlkit.JoinPred, used []bool, leftCols, rightCols []ColRef, tables map[string]*schema.Table, joined map[string]bool, name string) (*sqlkit.JoinPred, int, int, int, error) {
	for i, jp := range joins {
		if used[i] {
			continue
		}
		lt, lc, err := resolveColumnRef(tables, jp.Left)
		if err != nil {
			return nil, 0, 0, 0, err
		}
		rt, rc, err := resolveColumnRef(tables, jp.Right)
		if err != nil {
			return nil, 0, 0, 0, err
		}
		var joinedSide, newSide string
		var joinedCol, newCol int
		switch {
		case joined[lt] && rt == name:
			joinedSide, joinedCol, newSide, newCol = lt, lc, rt, rc
		case joined[rt] && lt == name:
			joinedSide, joinedCol, newSide, newCol = rt, rc, lt, lc
		default:
			continue
		}
		leftKey := findCol(leftCols, joinedSide, joinedCol)
		rightKey := findCol(rightCols, newSide, newCol)
		if leftKey < 0 || rightKey < 0 {
			return nil, 0, 0, 0, fmt.Errorf("engine: internal: join key not found for %s", jp.SQL())
		}
		return jp, i, leftKey, rightKey, nil
	}
	return nil, 0, 0, 0, nil
}

// resolveColumnRef binds a (possibly unqualified) column reference to its
// FROM table and column index; join keys, GROUP BY keys, and aggregate
// arguments all resolve through it.
func resolveColumnRef(tables map[string]*schema.Table, ref sqlkit.ColumnRef) (table string, col int, err error) {
	if ref.Table != "" {
		t := tables[ref.Table]
		if t == nil {
			return "", 0, fmt.Errorf("engine: column %s references table %s not in FROM", ref, ref.Table)
		}
		c := t.ColumnIndex(ref.Column)
		if c < 0 {
			return "", 0, fmt.Errorf("engine: table %s has no column %s", ref.Table, ref.Column)
		}
		return ref.Table, c, nil
	}
	// Unqualified: exactly one FROM table must have the column.
	found := ""
	col = -1
	for name, t := range tables {
		if c := t.ColumnIndex(ref.Column); c >= 0 {
			if found != "" {
				return "", 0, fmt.Errorf("engine: ambiguous column %s", ref.Column)
			}
			found, col = name, c
		}
	}
	if found == "" {
		return "", 0, fmt.Errorf("engine: unknown column %s", ref.Column)
	}
	return found, col, nil
}

func findCol(cols []ColRef, table string, col int) int {
	for i, c := range cols {
		if c.Table == table && c.Col == col {
			return i
		}
	}
	return -1
}

// checkPredsResolve verifies every filter predicate binds to exactly one
// FROM table.
func checkPredsResolve(tables map[string]*schema.Table, q *sqlkit.Query) error {
	for _, p := range q.FilterPreds() {
		ref := predColumn(p)
		if ref.Table != "" {
			t := tables[ref.Table]
			if t == nil {
				return fmt.Errorf("engine: predicate references table %s not in FROM", ref.Table)
			}
			if t.ColumnIndex(ref.Column) < 0 {
				return fmt.Errorf("engine: table %s has no column %s", ref.Table, ref.Column)
			}
			continue
		}
		n := 0
		for _, t := range tables {
			if t.ColumnIndex(ref.Column) >= 0 {
				n++
			}
		}
		switch n {
		case 0:
			return fmt.Errorf("engine: unknown column %s in predicate", ref.Column)
		case 1:
		default:
			return fmt.Errorf("engine: ambiguous column %s in predicate", ref.Column)
		}
	}
	return nil
}

func predColumn(p sqlkit.Predicate) sqlkit.ColumnRef {
	switch p := p.(type) {
	case *sqlkit.ComparePred:
		return p.Col
	case *sqlkit.BetweenPred:
		return p.Col
	case *sqlkit.InPred:
		return p.Col
	default:
		return sqlkit.ColumnRef{}
	}
}
