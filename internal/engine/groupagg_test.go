package engine

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/schema"
	"repro/internal/sqlkit"
)

// execGrouped runs sql through the default (columnar) executor with a
// sample large enough to materialize every group row.
func execGrouped(t *testing.T, db *Database, sql string) *ExecResult {
	t.Helper()
	res, err := Execute(db, mustPlan(t, db, sql), ExecOptions{SampleLimit: 100})
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

// TestGroupAggHandComputed pins grouped results against hand-computed
// answers on the fully understood star database (fact q values by d_fk:
// 0→{1,2}, 1→{3}, 2→{4}, 3→{5,6}).
func TestGroupAggHandComputed(t *testing.T) {
	db := starDatabase(t)

	res := execGrouped(t, db, "SELECT d_fk, COUNT(*), SUM(q), MIN(q), MAX(q), AVG(q) FROM fact GROUP BY d_fk")
	want := [][]int64{
		{0, 2, 3, 1, 2, 1},
		{1, 1, 3, 3, 3, 3},
		{2, 1, 4, 4, 4, 4},
		{3, 2, 11, 5, 6, 5},
	}
	if res.Rows != int64(len(want)) || !reflect.DeepEqual(res.Sample, want) {
		t.Fatalf("grouped rows = %d %v, want %v", res.Rows, res.Sample, want)
	}
	if res.Root.Op != "GROUP AGG" || res.Root.OutRows != int64(len(want)) {
		t.Fatalf("root node = %+v", res.Root)
	}

	// Global aggregate: one row, even though COUNT(*) appears alongside
	// other aggregates. AVG truncates the exact quotient (21/6 = 3).
	res = execGrouped(t, db, "SELECT COUNT(*), SUM(q), AVG(q) FROM fact")
	if res.Rows != 1 || !reflect.DeepEqual(res.Sample, [][]int64{{6, 21, 3}}) {
		t.Fatalf("global aggregate = %d %v", res.Rows, res.Sample)
	}

	// Aggregates and keys interleaved in select-list order.
	res = execGrouped(t, db, "SELECT AVG(q), d_fk FROM fact GROUP BY d_fk")
	if !reflect.DeepEqual(res.Sample, [][]int64{{1, 0}, {3, 1}, {4, 2}, {5, 3}}) {
		t.Fatalf("interleaved output = %v", res.Sample)
	}

	// Multi-key grouping sorts by the full key tuple.
	res = execGrouped(t, db, "SELECT d_fk, q, COUNT(*) FROM fact GROUP BY d_fk, q")
	if res.Rows != 6 || res.Sample[0][0] != 0 || res.Sample[0][1] != 1 {
		t.Fatalf("multi-key output = %v", res.Sample)
	}
}

// TestGroupAggEmptyInput pins the empty-input contracts: a grouped query
// over zero rows produces zero groups; a global aggregate still produces
// its one row with COUNT 0 and zero-valued aggregates.
func TestGroupAggEmptyInput(t *testing.T) {
	db := starDatabase(t)

	res := execGrouped(t, db, "SELECT d_fk, SUM(q) FROM fact WHERE q >= 100 GROUP BY d_fk")
	if res.Rows != 0 || len(res.Sample) != 0 {
		t.Fatalf("grouped over empty input: rows=%d sample=%v", res.Rows, res.Sample)
	}

	res = execGrouped(t, db, "SELECT COUNT(q), SUM(q), MIN(q), MAX(q), AVG(q) FROM fact WHERE q >= 100")
	if res.Rows != 1 || !reflect.DeepEqual(res.Sample, [][]int64{{0, 0, 0, 0, 0}}) {
		t.Fatalf("global over empty input: rows=%d sample=%v", res.Rows, res.Sample)
	}
}

// TestGroupAggAvgTruncation pins AVG's finalization: the exact int64 sum
// divided by the count with Go's truncation toward zero, including for
// negative sums.
func TestGroupAggAvgTruncation(t *testing.T) {
	db := valueDatabase(t, [][]int64{{0, 3}, {0, 4}, {1, -1}, {1, -2}})
	res := execGrouped(t, db, "SELECT k, AVG(v) FROM vals GROUP BY k")
	// 7/2 truncates to 3; -3/2 truncates toward zero to -1.
	if !reflect.DeepEqual(res.Sample, [][]int64{{0, 3}, {1, -1}}) {
		t.Fatalf("AVG truncation = %v", res.Sample)
	}
}

// TestGroupAggOverflow: SUM (and AVG's sum) must detect int64 overflow and
// fail the query on every execution path, never wrap.
func TestGroupAggOverflow(t *testing.T) {
	db := valueDatabase(t, [][]int64{{0, math.MaxInt64}, {0, 1}})
	const sql = "SELECT k, SUM(v) FROM vals GROUP BY k"
	plan := mustPlan(t, db, sql)

	for name, f := range map[string]func() (*ExecResult, error){
		"columnar": func() (*ExecResult, error) { return Execute(db, plan, ExecOptions{}) },
		"rows":     func() (*ExecResult, error) { return ExecuteRows(db, plan, ExecOptions{}) },
		"parallel": func() (*ExecResult, error) {
			return ExecuteParallel(db, plan, ExecOptions{Parallelism: 2})
		},
	} {
		if _, err := f(); !errors.Is(err, ErrAggOverflow) {
			t.Errorf("%s: err = %v, want ErrAggOverflow", name, err)
		}
	}

	prep, err := Prepare(db, plan, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var st ExecState
	if _, err := prep.ExecuteIn(&st, ExecOptions{}); !errors.Is(err, ErrAggOverflow) {
		t.Errorf("ExecuteIn: err = %v, want ErrAggOverflow", err)
	}

	// Negative direction wraps the other way.
	db2 := valueDatabase(t, [][]int64{{0, math.MinInt64}, {0, -1}})
	if _, err := Execute(db2, mustPlan(t, db2, sql), ExecOptions{}); !errors.Is(err, ErrAggOverflow) {
		t.Errorf("negative overflow: err = %v, want ErrAggOverflow", err)
	}

	// AVG shares the sum and therefore the detection.
	if _, err := Execute(db, mustPlan(t, db, "SELECT k, AVG(v) FROM vals GROUP BY k"), ExecOptions{}); !errors.Is(err, ErrAggOverflow) {
		t.Errorf("AVG overflow: err = %v, want ErrAggOverflow", err)
	}
}

// TestGroupAggSumExactCancellation: sums are carried in 128 bits and
// judged on the final total, so a sum whose intermediate prefix (or any
// per-worker partial) exceeds int64 but whose total fits must succeed —
// identically on every path and at every worker count. Running-sum
// detection would fail this sequentially (MaxInt64 + MaxInt64 overflows
// before the negatives arrive) and divergently under partitioning.
func TestGroupAggSumExactCancellation(t *testing.T) {
	db := valueDatabase(t, [][]int64{
		{0, math.MaxInt64}, {0, math.MaxInt64}, {0, -math.MaxInt64}, {0, -math.MaxInt64}, {0, 42},
	})
	const sql = "SELECT k, SUM(v), AVG(v) FROM vals GROUP BY k"
	plan := mustPlan(t, db, sql)
	want, err := ExecuteRows(db, plan, ExecOptions{SampleLimit: 10})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if !reflect.DeepEqual(want.Sample, [][]int64{{0, 42, 8}}) {
		t.Fatalf("reference sample = %v", want.Sample)
	}
	if got, err := Execute(db, plan, ExecOptions{SampleLimit: 10}); err != nil || !reflect.DeepEqual(got.Sample, want.Sample) {
		t.Fatalf("columnar = %v, %v", got, err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		got, err := ExecuteParallel(db, plan, ExecOptions{SampleLimit: 10, Parallelism: w, BatchSize: 1})
		if err != nil || !reflect.DeepEqual(got.Sample, want.Sample) {
			t.Fatalf("parallel w=%d = %v, %v", w, got, err)
		}
	}
}

// TestGroupAggPlanErrors: ungrouped bare columns and unknown references are
// planning errors.
func TestGroupAggPlanErrors(t *testing.T) {
	db := starDatabase(t)
	for _, sql := range []string{
		"SELECT q, COUNT(*) FROM fact GROUP BY d_fk", // q not a grouping key
		"SELECT nope, COUNT(*) FROM fact GROUP BY nope",
		"SELECT d_fk, SUM(nope) FROM fact GROUP BY d_fk",
		"SELECT d_fk, COUNT(*) FROM fact GROUP BY dim.a", // table not in FROM
	} {
		if _, err := buildPlanErr(db, sql); err == nil {
			t.Errorf("plan %q succeeded, want error", sql)
		}
	}
}

// TestGroupAggStateRecycling: a recycled state (ExecuteIn's steady path)
// reproduces the first execution's groups exactly after reset.
func TestGroupAggStateRecycling(t *testing.T) {
	db := starDatabase(t)
	const sql = "SELECT d_fk, COUNT(*), SUM(q), MIN(q), MAX(q), AVG(q) FROM fact GROUP BY d_fk"
	prep, err := Prepare(db, mustPlan(t, db, sql), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := execGrouped(t, db, sql)
	var st ExecState
	for round := 0; round < 4; round++ {
		got, err := prep.ExecuteIn(&st, ExecOptions{SampleLimit: 100})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got.Rows != want.Rows || !reflect.DeepEqual(got.Sample, want.Sample) {
			t.Fatalf("round %d: %d %v, want %d %v", round, got.Rows, got.Sample, want.Rows, want.Sample)
		}
	}
}

// buildPlanErr parses sql (which must parse) and returns BuildPlan's error.
func buildPlanErr(db *Database, sql string) (*Plan, error) {
	q, err := sqlkit.Parse(sql)
	if err != nil {
		return nil, err
	}
	return BuildPlan(db.Schema, q)
}

// valueDatabase builds a one-table database vals(k, v) with the given rows
// (arbitrary int64 v values, outside any declared domain — stored execution
// never consults domains).
func valueDatabase(t *testing.T, rows [][]int64) *Database {
	t.Helper()
	s := &schema.Schema{Tables: []*schema.Table{{
		Name:     "vals",
		RowCount: int64(len(rows)),
		Columns: []*schema.Column{
			{Name: "k", Type: schema.Int, DomainLo: 0, DomainHi: 10},
			{Name: "v", Type: schema.Int, DomainLo: math.MinInt64, DomainHi: math.MaxInt64},
		},
	}}}
	db := NewDatabase(s)
	rel := &Relation{Table: s.Table("vals")}
	for _, row := range rows {
		if err := rel.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.AddRelation(rel); err != nil {
		t.Fatal(err)
	}
	return db
}
