package engine

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/batch"
	"repro/internal/sqlkit"
)

// ErrAggOverflow tags SUM/AVG totals that exceed int64. The policy is
// detect-and-fail, never wrap: a silently wrapped aggregate is a wrong
// answer with no witness. Sums are carried in 128 bits and judged on the
// final total, so the decision depends only on the data — never on batch
// boundaries, morsel partitioning, or worker count. Test with errors.Is.
var ErrAggOverflow = errors.New("aggregate overflow")

// groupAggState is the vectorized hash-aggregation state behind OpGroupAgg
// and OpDistinct (DISTINCT is grouping over the select list with no
// aggregates, emitting only the keys). It implements the sinkState contract
// (sink.go) and is thereby shared by the sequential columnar executor, the
// row-pivot reference path, each worker of the parallel executor (partial
// aggregation via observe, merged deterministically in worker order), and
// the Prepared/ExecuteIn reuse path.
//
// Layout is columnar throughout: group keys live in one slice per GROUP BY
// column and accumulators in one slice per aggregate, both indexed by dense
// group id, so a batch is consumed as per-column accumulate passes — rows
// are never pivoted until output. The group hash table is open-addressed
// (linear probing over a power-of-two slot array) rather than a Go map so
// that reset() can recycle every piece of storage: a steady-state grouped
// query on a reused state allocates nothing.
//
// SUM and AVG accumulate exactly in 128 bits (accs = low word, accsHi =
// high word): intermediate partial sums cannot overflow, so sequential,
// parallel, and row-at-a-time execution agree on the one check that
// matters — whether the final total fits int64 (finish() raises
// ErrAggOverflow otherwise). AVG finalizes as the truncated integer
// quotient of that exact sum.
type groupAggState struct {
	groupBy []int
	aggs    []AggSpec
	items   []GroupOut

	keys   [][]int64 // per GroupBy column: key value by group id
	hashes []uint64  // per group: key hash (for table growth)
	counts []int64   // per group: row count (COUNT and AVG read it)
	// accs holds one accumulator arena per aggregate, by group id: the
	// MIN/MAX running value, or a 128-bit sum's low word (two's
	// complement) with its high word in the parallel accsHi arena. COUNT
	// is answered from counts, but its arenas are kept (zero-filled) so
	// that accumulate and merge index uniformly across aggregates.
	accs   [][]int64
	accsHi [][]int64

	table  []int32   // open-addressed slots: group id + 1, 0 = empty
	rowGid []int32   // scratch: per-batch live-row position -> group id
	gcols  [][]int64 // scratch: the batch's GroupBy column vectors
	keyBuf []int64   // scratch: one row's key tuple
	order  []int32   // group ids in deterministic output order

	err error
}

const groupTableMinSlots = 64

// newGroupAggState readies the state for pn's grouping and aggregates. A
// global aggregate (no GROUP BY) always has exactly one group, present even
// over empty input — SQL's one-row answer for SELECT SUM(...) FROM empty.
func newGroupAggState(pn *PlanNode) *groupAggState {
	st := &groupAggState{
		groupBy: pn.GroupBy,
		aggs:    pn.Aggs,
		items:   pn.Items,
		keys:    make([][]int64, len(pn.GroupBy)),
		accs:    make([][]int64, len(pn.Aggs)),
		accsHi:  make([][]int64, len(pn.Aggs)),
		gcols:   make([][]int64, len(pn.GroupBy)),
		keyBuf:  make([]int64, len(pn.GroupBy)),
	}
	st.reset()
	return st
}

// reset recycles the state for another execution: counters to zero, slices
// truncated in place, the slot table cleared. No storage is released.
func (st *groupAggState) reset() {
	for i := range st.keys {
		st.keys[i] = st.keys[i][:0]
	}
	for i := range st.accs {
		st.accs[i] = st.accs[i][:0]
		st.accsHi[i] = st.accsHi[i][:0]
	}
	st.hashes = st.hashes[:0]
	st.counts = st.counts[:0]
	st.order = st.order[:0]
	clear(st.table)
	st.err = nil
	if len(st.groupBy) == 0 {
		st.addGroup(0)
	}
}

// deferredErr reports an aggregate-overflow failure judged at finish,
// implementing the sinkState deferred-error convention.
func (st *groupAggState) deferredErr() error { return st.err }

// addGroup appends a fresh group with the given key hash; the caller fills
// its key values. Accumulators start at the aggregate's identity (MIN at
// MaxInt64, MAX at MinInt64, sums at zero).
func (st *groupAggState) addGroup(h uint64) int32 {
	g := int32(len(st.counts))
	st.counts = append(st.counts, 0)
	st.hashes = append(st.hashes, h)
	for i := range st.accs {
		switch st.aggs[i].Fn {
		case sqlkit.AggMin:
			st.accs[i] = append(st.accs[i], math.MaxInt64)
		case sqlkit.AggMax:
			st.accs[i] = append(st.accs[i], math.MinInt64)
		default:
			// SUM/AVG start at a 128-bit zero; COUNT is answered from
			// counts but keeps parallel arenas so indexing stays uniform.
			st.accs[i] = append(st.accs[i], 0)
		}
		st.accsHi[i] = append(st.accsHi[i], 0)
	}
	return g
}

// hashKey mixes one key tuple into a table hash (FNV-style combine with a
// final avalanche so sequential codes spread across the slot array).
func hashKey(vals []int64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range vals {
		h ^= uint64(v)
		h *= 1099511628211
	}
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// lookup finds or inserts the group for the key tuple in vals, growing the
// slot table when it passes half full.
func (st *groupAggState) lookup(vals []int64) int32 {
	if len(st.table) == 0 {
		st.grow(groupTableMinSlots)
	}
	h := hashKey(vals)
	mask := uint64(len(st.table) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		t := st.table[i]
		if t == 0 {
			g := st.addGroup(h)
			for ki, v := range vals {
				st.keys[ki] = append(st.keys[ki], v)
			}
			st.table[i] = g + 1
			if 2*len(st.counts) > len(st.table) {
				st.grow(2 * len(st.table))
			}
			return g
		}
		g := t - 1
		match := true
		for ki, v := range vals {
			if st.keys[ki][g] != v {
				match = false
				break
			}
		}
		if match {
			return g
		}
	}
}

// grow rehashes every group into a slot table of n slots (a power of two).
func (st *groupAggState) grow(n int) {
	if cap(st.table) >= n {
		st.table = st.table[:n]
		clear(st.table)
	} else {
		st.table = make([]int32, n)
	}
	mask := uint64(n - 1)
	for g, h := range st.hashes {
		for i := h & mask; ; i = (i + 1) & mask {
			if st.table[i] == 0 {
				st.table[i] = int32(g) + 1
				break
			}
		}
	}
}

// observe folds one child batch into the state: an assignment pass maps
// every live row to its dense group id (creating groups as found), then one
// tight pass per aggregate column accumulates under that mapping. The
// selection vector is honored without compacting the batch.
func (st *groupAggState) observe(b *batch.ColBatch) {
	if st.err != nil {
		return
	}
	live := b.Live()
	if live == 0 {
		return
	}
	sel := b.Sel()

	var rowGid []int32
	if len(st.groupBy) > 0 {
		if cap(st.rowGid) < live {
			st.rowGid = make([]int32, live)
		}
		rowGid = st.rowGid[:live]
		for ki, c := range st.groupBy {
			st.gcols[ki] = b.Col(c)
		}
		if sel == nil {
			for i := 0; i < live; i++ {
				for ki := range st.gcols {
					st.keyBuf[ki] = st.gcols[ki][i]
				}
				g := st.lookup(st.keyBuf)
				rowGid[i] = g
				st.counts[g]++
			}
		} else {
			for i, r := range sel {
				for ki := range st.gcols {
					st.keyBuf[ki] = st.gcols[ki][r]
				}
				g := st.lookup(st.keyBuf)
				rowGid[i] = g
				st.counts[g]++
			}
		}
	} else {
		st.counts[0] += int64(live)
	}

	for ai := range st.aggs {
		spec := &st.aggs[ai]
		if spec.Col < 0 {
			continue // COUNT: the assignment pass already counted
		}
		col := b.Col(spec.Col)
		acc := st.accs[ai]
		switch spec.Fn {
		case sqlkit.AggSum, sqlkit.AggAvg:
			accumulateSum128(acc, st.accsHi[ai], col, sel, rowGid, live)
		case sqlkit.AggMin:
			if sel == nil {
				for i := 0; i < live; i++ {
					if g := gid(rowGid, i); col[i] < acc[g] {
						acc[g] = col[i]
					}
				}
			} else {
				for i, r := range sel {
					if g := gid(rowGid, i); col[r] < acc[g] {
						acc[g] = col[r]
					}
				}
			}
		case sqlkit.AggMax:
			if sel == nil {
				for i := 0; i < live; i++ {
					if g := gid(rowGid, i); col[i] > acc[g] {
						acc[g] = col[i]
					}
				}
			} else {
				for i, r := range sel {
					if g := gid(rowGid, i); col[r] > acc[g] {
						acc[g] = col[r]
					}
				}
			}
		}
	}
}

// gid reads the group of live-row i: with no GROUP BY every row belongs to
// the single global group.
func gid(rowGid []int32, i int) int32 {
	if rowGid == nil {
		return 0
	}
	return rowGid[i]
}

// accumulateSum128 adds the selected column values into per-group 128-bit
// sums (lo = two's-complement low word, hi = high word). 128 bits cannot
// overflow from int64 addends at any feasible row count, so accumulation
// itself is infallible; finish() judges the totals.
func accumulateSum128(lo, hi, col []int64, sel []int32, rowGid []int32, live int) {
	if sel == nil {
		for i := 0; i < live; i++ {
			g := gid(rowGid, i)
			add128(&lo[g], &hi[g], col[i])
		}
		return
	}
	for i, r := range sel {
		g := gid(rowGid, i)
		add128(&lo[g], &hi[g], col[r])
	}
}

// add128 adds the sign-extended v into the 128-bit accumulator (*lo, *hi).
func add128(lo, hi *int64, v int64) {
	s, carry := bits.Add64(uint64(*lo), uint64(v), 0)
	*lo = int64(s)
	*hi += (v >> 63) + int64(carry)
}

// sum128Fits reports whether the 128-bit value (lo, hi) is representable
// as int64: the high word must be the sign extension of the low word.
func sum128Fits(lo, hi int64) bool { return hi == lo>>63 }

// merge folds other's partial groups into st. Accumulation is by key
// lookup, so morsel partitioning never changes the answer; calling merge in
// worker-index order keeps the (overflow-checked) sum order deterministic.
func (st *groupAggState) merge(other *groupAggState) {
	if st.err == nil {
		st.err = other.err
	}
	if st.err != nil {
		return
	}
	for og := 0; og < len(other.counts); og++ {
		var g int32
		if len(st.groupBy) == 0 {
			g = 0
		} else {
			for ki := range st.groupBy {
				st.keyBuf[ki] = other.keys[ki][og]
			}
			g = st.lookup(st.keyBuf)
		}
		st.counts[g] += other.counts[og]
		for ai := range st.aggs {
			ov := other.accs[ai][og]
			switch st.aggs[ai].Fn {
			case sqlkit.AggSum, sqlkit.AggAvg:
				// 128-bit partial-sum addition: exact, so the merged total
				// is independent of how morsels were partitioned.
				s, carry := bits.Add64(uint64(st.accs[ai][g]), uint64(ov), 0)
				st.accs[ai][g] = int64(s)
				st.accsHi[ai][g] += other.accsHi[ai][og] + int64(carry)
			case sqlkit.AggMin:
				if ov < st.accs[ai][g] {
					st.accs[ai][g] = ov
				}
			case sqlkit.AggMax:
				if ov > st.accs[ai][g] {
					st.accs[ai][g] = ov
				}
			}
		}
	}
}

// finish freezes the deterministic output order — group ids sorted
// ascending by key tuple (GROUP BY clause order); sorting, rather than
// order of first appearance, is what makes sequential,
// parallel-at-any-worker-count, and row-at-a-time output byte-identical —
// and judges every SUM/AVG total: a total outside int64 raises
// ErrAggOverflow here, the one place all execution paths share.
func (st *groupAggState) finish() {
	st.order = st.order[:0]
	for g := 0; g < len(st.counts); g++ {
		st.order = append(st.order, int32(g))
	}
	sort.Sort(st)
	if st.err != nil {
		return
	}
	for ai := range st.aggs {
		fn := st.aggs[ai].Fn
		if fn != sqlkit.AggSum && fn != sqlkit.AggAvg {
			continue
		}
		lo, hi := st.accs[ai], st.accsHi[ai]
		for g := range lo {
			if !sum128Fits(lo[g], hi[g]) {
				st.err = aggOverflowErr(fn)
				return
			}
		}
	}
}

// aggOverflowErr builds the judged-overflow error off the hot path; finish
// runs per sink drain, and the formatting must not ride along when every
// total fits.
//
//hydra:coldpath
func aggOverflowErr(fn sqlkit.AggFunc) error {
	return fmt.Errorf("engine: %w: %s total exceeds int64", ErrAggOverflow, fn)
}

// sort.Interface over order, comparing key tuples. Implemented on the state
// itself (not a closure) so the steady-state sort allocates nothing.
func (st *groupAggState) Len() int { return len(st.order) }
func (st *groupAggState) Less(i, j int) bool {
	gi, gj := st.order[i], st.order[j]
	for ki := range st.groupBy {
		a, b := st.keys[ki][gi], st.keys[ki][gj]
		if a != b {
			return a < b
		}
	}
	return false
}
func (st *groupAggState) Swap(i, j int) { st.order[i], st.order[j] = st.order[j], st.order[i] }

// value finalizes one output column for one group. Empty-group identities
// (only the global group can be empty): COUNT is 0, SUM/MIN/MAX/AVG emit 0.
// AVG is the truncated integer quotient of the exact sum.
func (st *groupAggState) value(it GroupOut, g int32) int64 {
	if it.Agg < 0 {
		return st.keys[it.Key][g]
	}
	cnt := st.counts[g]
	switch st.aggs[it.Agg].Fn {
	case sqlkit.AggCount:
		return cnt
	case sqlkit.AggAvg:
		if cnt == 0 {
			return 0
		}
		return st.accs[it.Agg][g] / cnt
	default:
		if cnt == 0 {
			return 0
		}
		return st.accs[it.Agg][g]
	}
}

// emit writes output rows for the sorted groups order[pos:pos+k] into dst
// (k bounded by dst's capacity), populating only outCols, one column pass
// at a time. It returns k; zero means exhausted.
func (st *groupAggState) emit(dst *batch.ColBatch, outCols []int, pos int) int {
	k := len(st.order) - pos
	if k <= 0 {
		return 0
	}
	if k > dst.Cap() {
		k = dst.Cap()
	}
	for _, oc := range outCols {
		it := st.items[oc]
		out := dst.Col(oc)
		for i := 0; i < k; i++ {
			out[i] = st.value(it, st.order[pos+i])
		}
	}
	dst.SetLen(k)
	return k
}
