package engine

import (
	"reflect"
	"testing"
)

// execSampled runs sql through the default (columnar) executor with a
// sample large enough to materialize every output row.
func execSampled(t *testing.T, db *Database, sql string) *ExecResult {
	t.Helper()
	res, err := Execute(db, mustPlan(t, db, sql), ExecOptions{SampleLimit: 100})
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

// TestOrderByHandComputed pins ORDER BY results against hand-computed
// answers on the fully understood star database (fact rows, scan order:
// {0,0,1} {1,0,2} {2,1,3} {3,2,4} {4,3,5} {5,3,6}).
func TestOrderByHandComputed(t *testing.T) {
	db := starDatabase(t)

	res := execSampled(t, db, "SELECT * FROM fact ORDER BY q DESC")
	want := [][]int64{{5, 3, 6}, {4, 3, 5}, {3, 2, 4}, {2, 1, 3}, {1, 0, 2}, {0, 0, 1}}
	if res.Rows != 6 || !reflect.DeepEqual(res.Sample, want) {
		t.Fatalf("ORDER BY q DESC = %d %v, want %v", res.Rows, res.Sample, want)
	}
	if res.Root.Op != "SORT" || res.Root.OutRows != 6 {
		t.Fatalf("root node = %+v", res.Root)
	}

	// Multi-key: first key ascending, second descending.
	res = execSampled(t, db, "SELECT * FROM fact ORDER BY d_fk ASC, q DESC")
	want = [][]int64{{1, 0, 2}, {0, 0, 1}, {2, 1, 3}, {3, 2, 4}, {5, 3, 6}, {4, 3, 5}}
	if !reflect.DeepEqual(res.Sample, want) {
		t.Fatalf("ORDER BY d_fk, q DESC = %v, want %v", res.Sample, want)
	}

	// ORDER BY over grouped output re-sorts the group rows.
	res = execSampled(t, db, "SELECT d_fk, COUNT(*) FROM fact GROUP BY d_fk ORDER BY d_fk DESC")
	want = [][]int64{{3, 2}, {2, 1}, {1, 1}, {0, 2}}
	if !reflect.DeepEqual(res.Sample, want) {
		t.Fatalf("grouped ORDER BY DESC = %v, want %v", res.Sample, want)
	}
}

// TestLimitHandComputed pins LIMIT/OFFSET truncation, including limits
// landing mid-batch, offsets past the end, and LIMIT 0.
func TestLimitHandComputed(t *testing.T) {
	db := starDatabase(t)

	// Top-K: LIMIT bounding an ORDER BY (the sort runs bounded).
	res := execSampled(t, db, "SELECT * FROM fact ORDER BY q DESC LIMIT 2 OFFSET 1")
	want := [][]int64{{4, 3, 5}, {3, 2, 4}}
	if res.Rows != 2 || !reflect.DeepEqual(res.Sample, want) {
		t.Fatalf("ORDER BY ... LIMIT 2 OFFSET 1 = %d %v, want %v", res.Rows, res.Sample, want)
	}
	if res.Root.Op != "LIMIT" || res.Root.OutRows != 2 {
		t.Fatalf("root node = %+v", res.Root)
	}

	// Plain LIMIT preserves scan order.
	res = execSampled(t, db, "SELECT * FROM fact LIMIT 3")
	want = [][]int64{{0, 0, 1}, {1, 0, 2}, {2, 1, 3}}
	if res.Rows != 3 || !reflect.DeepEqual(res.Sample, want) {
		t.Fatalf("LIMIT 3 = %d %v, want %v", res.Rows, res.Sample, want)
	}

	// OFFSET consumes into the stream; a short tail is fine.
	res = execSampled(t, db, "SELECT * FROM fact LIMIT 10 OFFSET 4")
	want = [][]int64{{4, 3, 5}, {5, 3, 6}}
	if res.Rows != 2 || !reflect.DeepEqual(res.Sample, want) {
		t.Fatalf("LIMIT 10 OFFSET 4 = %d %v, want %v", res.Rows, res.Sample, want)
	}

	// OFFSET past the end and LIMIT 0 both produce nothing.
	for _, sql := range []string{
		"SELECT * FROM fact LIMIT 5 OFFSET 100",
		"SELECT * FROM fact LIMIT 0",
		"SELECT * FROM fact ORDER BY q LIMIT 0",
	} {
		res = execSampled(t, db, sql)
		if res.Rows != 0 || len(res.Sample) != 0 {
			t.Fatalf("%s = %d %v, want empty", sql, res.Rows, res.Sample)
		}
	}

	// LIMIT over COUNT(*): the aggregate row still carries the count.
	res = execSampled(t, db, "SELECT COUNT(*) FROM fact LIMIT 1")
	if res.Rows != 1 || res.Count != 6 {
		t.Fatalf("COUNT(*) LIMIT 1 = rows %d count %d", res.Rows, res.Count)
	}
	res = execSampled(t, db, "SELECT COUNT(*) FROM fact LIMIT 0")
	if res.Rows != 0 || res.Count != 0 {
		t.Fatalf("COUNT(*) LIMIT 0 = rows %d count %d", res.Rows, res.Count)
	}

	// The child is drained even after the limit is reached: upstream
	// cardinalities must be execution-mode-invariant, never truncated.
	res = execSampled(t, db, "SELECT * FROM fact LIMIT 1")
	if scan := res.Root.Children[0]; scan.OutRows != 6 {
		t.Fatalf("scan under LIMIT reported %d rows, want 6", scan.OutRows)
	}
}

// TestDistinctHandComputed pins DISTINCT: dedup over the selected columns,
// output sorted ascending by the key tuple, in select-list order.
func TestDistinctHandComputed(t *testing.T) {
	db := starDatabase(t)

	res := execSampled(t, db, "SELECT DISTINCT d_fk FROM fact")
	want := [][]int64{{0}, {1}, {2}, {3}}
	if res.Rows != 4 || !reflect.DeepEqual(res.Sample, want) {
		t.Fatalf("DISTINCT d_fk = %d %v, want %v", res.Rows, res.Sample, want)
	}
	if res.Root.Op != "DISTINCT" || res.Root.OutRows != 4 {
		t.Fatalf("root node = %+v", res.Root)
	}

	res = execSampled(t, db, "SELECT DISTINCT d_fk, q FROM fact WHERE q >= 3")
	want = [][]int64{{1, 3}, {2, 4}, {3, 5}, {3, 6}}
	if !reflect.DeepEqual(res.Sample, want) {
		t.Fatalf("DISTINCT d_fk, q = %v, want %v", res.Sample, want)
	}

	// SELECT DISTINCT * dedups whole rows (all unique here).
	res = execSampled(t, db, "SELECT DISTINCT * FROM dim")
	if res.Rows != 4 || len(res.Sample[0]) != 2 {
		t.Fatalf("DISTINCT * = %d %v", res.Rows, res.Sample)
	}

	// DISTINCT + ORDER BY + LIMIT compose.
	res = execSampled(t, db, "SELECT DISTINCT d_fk FROM fact ORDER BY d_fk DESC LIMIT 2")
	want = [][]int64{{3}, {2}}
	if !reflect.DeepEqual(res.Sample, want) {
		t.Fatalf("DISTINCT ORDER BY LIMIT = %v, want %v", res.Sample, want)
	}
}

// TestSortLimitDistinctPlanErrors: unresolvable ORDER BY references are
// planning errors; DISTINCT with aggregates is a parse error.
func TestSortLimitDistinctPlanErrors(t *testing.T) {
	db := starDatabase(t)
	for _, sql := range []string{
		"SELECT COUNT(*) FROM fact ORDER BY q",                     // aggregate output has no columns
		"SELECT * FROM fact ORDER BY nope",                         // unknown column
		"SELECT d_fk, COUNT(*) FROM fact GROUP BY d_fk ORDER BY q", // not a select item
		"SELECT DISTINCT d_fk FROM fact ORDER BY q",                // not in the distinct output
	} {
		if _, err := buildPlanErr(db, sql); err == nil {
			t.Errorf("plan %q succeeded, want error", sql)
		}
	}
}

// TestSortStateRecycling: a recycled ExecuteIn state (including the bounded
// top-K path) reproduces the first execution's rows exactly after reset.
func TestSortStateRecycling(t *testing.T) {
	db := starDatabase(t)
	for _, sql := range []string{
		"SELECT * FROM fact ORDER BY q DESC",
		"SELECT * FROM fact ORDER BY q DESC LIMIT 3 OFFSET 1",
		"SELECT DISTINCT d_fk, q FROM fact ORDER BY q DESC LIMIT 2",
	} {
		prep, err := Prepare(db, mustPlan(t, db, sql), ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want := execSampled(t, db, sql)
		var st ExecState
		for round := 0; round < 4; round++ {
			got, err := prep.ExecuteIn(&st, ExecOptions{SampleLimit: 100})
			if err != nil {
				t.Fatalf("%s round %d: %v", sql, round, err)
			}
			if got.Rows != want.Rows || !reflect.DeepEqual(got.Sample, want.Sample) {
				t.Fatalf("%s round %d: %d %v, want %d %v", sql, round, got.Rows, got.Sample, want.Rows, want.Sample)
			}
		}
	}
}
