package engine

// Summary-direct aggregate execution: the fast path that answers
// COUNT / COUNT(col) / SUM / MIN / MAX / AVG — global or GROUP BY — straight
// from a table's relation summary in O(summary rows), without regenerating a
// single tuple. The planner attaches an OpSummaryAgg candidate to eligible
// plan shapes (Plan.SummaryAgg); execution takes it only when every summary
// row is provably exactly answerable from interval arithmetic alone, falling
// back to regeneration otherwise, so results are byte-identical to the
// regenerating executors by construction.
//
// Provability is judged per summary row against the generator's semantics
// (generator.go): within a summary row of Count n, the tuple at offset w
// takes value Set.At(w mod Set.Len()) for each cycling-set column (the phase
// resets to zero at every summary row), fixed columns hold their value,
// unspecced columns hold 0, and the primary key auto-numbers globally — row
// j's tuples span [cum[j], cum[j]+n). A row is provable when at most one
// cycling column is "driving" — partially restricted by the predicate or
// enumerated as a GROUP BY key — and every cycling aggregate input coincides
// with it. Everything the row contributes is then closed-form: with
// I = S ∩ P, cycles = n/L, and Pref the first n mod L points of S,
//
//	matches  = cycles·|I| + |I ∩ Pref|
//	Σ matches = cycles·Σ(I) + Σ(I ∩ Pref)   (exact, 128-bit)
//
// and per-group counts enumerate v ∈ I with cnt(v) = cycles + [v ∈ Pref],
// which is bounded by n, so the fast path is never worse than regeneration.
//
// Accumulation reuses groupAggState — the very state behind OpGroupAgg and
// OpDistinct — so group ordering, empty-group identities, AVG truncation,
// and the ErrAggOverflow policy are shared code, not re-implementations.
//
// With ExecOptions.Approx, global (non-grouped) aggregates additionally
// accept rows with independently restricted cycling columns, estimated under
// a cross-column independence assumption with a Poisson-binomial variance;
// the result then carries ApproxInfo with a 95% confidence interval on the
// matching-row count. Grouped queries never estimate — they fall back.

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/cycle"
	"repro/internal/sqlkit"
	"repro/internal/synopsis"
	"repro/internal/trace"
	"repro/internal/value"
)

// ApproxInfo reports the estimation status of a summary-direct answer
// produced under ExecOptions.Approx. Estimated is false when every summary
// row was provably exact (the answer is identical to regeneration); when
// true, CI95 is the half-width of the 95% confidence interval on the
// matching-row count (COUNT answers; derived aggregates inherit its
// uncertainty scaled by their value range).
type ApproxInfo struct {
	Estimated bool    `json:"estimated"`
	CI95      float64 `json:"ci95"`
}

// rowSpec is one needed column's resolved value law within one summary row:
// a cycling interval set, or (set == nil) a fixed value.
type rowSpec struct {
	set   value.IntervalSet
	fixed int64
}

// rowClass is the outcome of classifying one summary row.
type rowClass struct {
	skip bool // the row provably contributes nothing (predicate excludes it)
	ok   bool // provably exact
	hard bool // not even estimable (pathological spec the generator treats path-dependently)
	e    int  // driving cycling column as an index into need, -1 when none
}

// aggContrib is one aggregate's exact contribution from one summary row (or
// one enumerated group value): a 128-bit sum and the min/max witnessed.
type aggContrib struct {
	sumLo, sumHi int64
	min, max     int64
}

// approxAgg accumulates one aggregate's estimated contributions.
type approxAgg struct {
	sum      float64
	min, max int64
	valid    bool
}

func (a *approxAgg) note(mn, mx int64) {
	if !a.valid {
		a.min, a.max, a.valid = mn, mx, true
		return
	}
	if mn < a.min {
		a.min = mn
	}
	if mx > a.max {
		a.max = mx
	}
}

// approxState carries the estimated half of an Approx execution; the exact
// half lives in the shared groupAggState.
type approxState struct {
	used           bool
	estCnt, varCnt float64
	aggs           []approxAgg
}

func (ap *approxState) reset() {
	ap.used = false
	ap.estCnt, ap.varCnt = 0, 0
	for i := range ap.aggs {
		ap.aggs[i] = approxAgg{}
	}
}

// summaryAggEval evaluates one OpSummaryAgg candidate against one relation
// summary. It is built once per execution (or once per prepared ExecState
// and reused), and run() allocates nothing once its scratch buffers have
// warmed up — the summary path inherits the engine's steady-state
// zero-allocation contract.
type summaryAggEval struct {
	cand *PlanNode
	rel  *synopsis.Relation
	pk   int     // primary-key column index, -1 when the table has none
	cum  []int64 // cum[j] = global tuple index of summary row j's first tuple

	countOnly bool // OpAggregate root: bare COUNT(*), no select items
	global    bool // no GROUP BY keys

	need     []int               // needed table columns, ascending
	pkPos    int                 // position of pk in need, -1 when unused
	predOf   []value.IntervalSet // per need position: predicate set or nil
	grpOf    []bool              // per need position: is a GROUP BY key
	rs       []rowSpec           // per need position: resolved spec (per row)
	explicit []bool              // per need position: spec seen (per row)

	st      *groupAggState
	contrib []aggContrib
	ap      approxState
	apInfo  ApproxInfo

	// Interval scratch, reused via write-back so steady state allocates
	// nothing: pkBuf synthesizes the row's primary-key range, interBuf holds
	// I = S ∩ P, prefBuf the cycle prefix, iprefBuf their intersection. All
	// uses extract scalars before the next column touches them.
	pkBuf    value.IntervalSet
	interBuf value.IntervalSet
	prefBuf  value.IntervalSet
	iprefBuf value.IntervalSet

	node   ExecNode
	detail string
	sp     *trace.Span
}

// summaryAggFor returns a proven evaluator for the plan's summary-direct
// candidate, or nil when the fast path does not apply: no candidate, opted
// out, no registered summary, the table does not regenerate, or some summary
// row is not provably exact (nor estimable under opts.Approx).
func summaryAggFor(db *Database, plan *Plan, opts ExecOptions) *summaryAggEval {
	cand := plan.SummaryAgg
	if cand == nil || opts.NoSummaryAgg {
		return nil
	}
	rel := db.Summary(cand.Table)
	if rel == nil || !db.DatagenEnabled(cand.Table) {
		return nil
	}
	e := newSummaryAggEval(db, cand, rel)
	if e == nil || !e.prove(opts.Approx) {
		return nil
	}
	return e
}

// trySummaryAgg is the dispatch hook the execution fronts call before
// opening the regenerating operator tree. ok=false means fall back; ok=true
// means the fast path claimed the query and res/err is the outcome.
func trySummaryAgg(ctl *execCtl, db *Database, plan *Plan, opts ExecOptions) (*ExecResult, bool, error) {
	e := summaryAggFor(db, plan, opts)
	if e == nil {
		return nil, false, nil
	}
	e.open(ctl)
	res := &ExecResult{Root: &e.node, Trace: e.sp, Path: PathSummary}
	if err := e.run(ctl, res, opts); err != nil {
		return nil, true, err
	}
	return res, true, nil
}

func newSummaryAggEval(db *Database, cand *PlanNode, rel *synopsis.Relation) *summaryAggEval {
	t := db.Schema.Table(cand.Table)
	if t == nil {
		return nil
	}
	e := &summaryAggEval{
		cand:      cand,
		rel:       rel,
		pk:        t.PKIndex(),
		countOnly: len(cand.Items) == 0,
		global:    len(cand.GroupBy) == 0,
	}
	if cand.Pred != nil {
		for _, c := range cand.Pred.Cols {
			e.need = addCol(e.need, c)
		}
	}
	for _, c := range cand.GroupBy {
		e.need = addCol(e.need, c)
	}
	for _, a := range cand.Aggs {
		if a.Col >= 0 {
			e.need = addCol(e.need, a.Col)
		}
	}
	e.pkPos = e.needPos(e.pk)
	e.predOf = make([]value.IntervalSet, len(e.need))
	if cand.Pred != nil {
		for i, c := range cand.Pred.Cols {
			e.predOf[e.needPos(c)] = cand.Pred.Sets[i]
		}
	}
	e.grpOf = make([]bool, len(e.need))
	for _, c := range cand.GroupBy {
		e.grpOf[e.needPos(c)] = true
	}
	e.rs = make([]rowSpec, len(e.need))
	e.explicit = make([]bool, len(e.need))
	e.cum = make([]int64, len(rel.Rows))
	var run int64
	for j := range rel.Rows {
		e.cum[j] = run
		run += rel.Rows[j].Count
	}
	e.st = newGroupAggState(cand)
	e.contrib = make([]aggContrib, len(cand.Aggs))
	e.ap.aggs = make([]approxAgg, len(cand.Aggs))
	e.detail = fmt.Sprintf("%s [%d summary rows]", cand.Table, len(rel.Rows))
	return e
}

func (e *summaryAggEval) needPos(c int) int {
	if c >= 0 {
		for i, nc := range e.need {
			if nc == c {
				return i
			}
		}
	}
	return -1
}

// prove classifies every summary row: the fast path runs only when each row
// either provably contributes nothing or is provably exact — or, under
// approx on a global aggregate, at least estimable.
func (e *summaryAggEval) prove(approx bool) bool {
	approx = approx && e.global
	for j := range e.rel.Rows {
		c := e.classify(&e.rel.Rows[j], j)
		if c.skip || c.ok {
			continue
		}
		if !approx || c.hard {
			return false
		}
	}
	return true
}

// classify resolves the row's specs for the needed columns into e.rs and
// judges the row. A predicate column whose values never match skips the row
// outright, and skipping wins over non-provability: an excluded row
// contributes exactly nothing no matter how many columns cycle.
func (e *summaryAggEval) classify(row *synopsis.Row, j int) rowClass {
	n := row.Count
	if n == 0 {
		return rowClass{skip: true}
	}
	for i := range e.rs {
		e.rs[i] = rowSpec{}
		e.explicit[i] = false
	}
	for si := range row.Specs {
		sp := &row.Specs[si]
		pos := e.needPos(sp.Col)
		if pos < 0 {
			continue
		}
		if sp.Col == e.pk || e.explicit[pos] {
			// An explicit spec on the auto-numbered primary key, or a
			// duplicate spec for one column: the generator's row-major and
			// columnar paths disagree on these, so the row is neither
			// provable nor estimable.
			return rowClass{hard: true}
		}
		e.explicit[pos] = true
		if sp.Fixed != nil {
			e.rs[pos] = rowSpec{fixed: *sp.Fixed}
		} else {
			e.rs[pos] = rowSpec{set: sp.Set}
		}
	}
	if e.pkPos >= 0 && !e.explicit[e.pkPos] {
		e.pkBuf = append(e.pkBuf[:0], value.Ival(e.cum[j], e.cum[j]+n))
		e.rs[e.pkPos] = rowSpec{set: e.pkBuf}
	}

	cls := rowClass{e: -1}
	failed := false
	if p := e.cand.Pred; p != nil {
		for i, c := range p.Cols {
			r := &e.rs[e.needPos(c)]
			P := p.Sets[i]
			if r.set == nil {
				if !P.Contains(r.fixed) {
					return rowClass{skip: true}
				}
				continue
			}
			m := r.set.IntersectLen(P)
			switch {
			case m == 0:
				return rowClass{skip: true}
			case m == r.set.Len():
				// Every cycled value matches: no restriction.
			default:
				if cls.e >= 0 && cls.e != e.needPos(c) {
					failed = true // two independently restricted cycling columns
					continue
				}
				cls.e = e.needPos(c)
			}
		}
	}
	if failed {
		return cls
	}
	for _, c := range e.cand.GroupBy {
		pos := e.needPos(c)
		if e.rs[pos].set == nil {
			continue
		}
		if c == e.pk {
			// Grouping by the auto-numbered key means one group per tuple:
			// enumeration would match regeneration's cost, so fall back.
			return cls
		}
		if cls.e >= 0 && cls.e != pos {
			return cls
		}
		cls.e = pos
	}
	for ai := range e.cand.Aggs {
		c := e.cand.Aggs[ai].Col
		if c < 0 {
			continue
		}
		pos := e.needPos(c)
		if e.rs[pos].set == nil {
			continue
		}
		if cls.e >= 0 && cls.e != pos {
			return cls
		}
	}
	cls.ok = true
	return cls
}

// open mirrors the evaluation as a childless SUMMARY AGG ExecNode and, when
// traced, one span. Called once per evaluator; prepared reuse recycles the
// span through Recorder.Reset like any operator span.
func (e *summaryAggEval) open(ctl *execCtl) {
	e.node = ExecNode{Op: OpSummaryAgg.String(), Table: e.cand.Table}
	if ctl.rec != nil {
		e.sp = ctl.rec.NewSpan(e.node.Op, e.detail)
		e.node.sp = e.sp
	}
}

// run evaluates every summary row into the shared aggregation state and
// emits the result. Steady state allocates nothing (SampleLimit == 0).
//
//hydra:hotpath
func (e *summaryAggEval) run(ctl *execCtl, res *ExecResult, opts ExecOptions) error {
	if ctl.stopped() {
		return ctl.err
	}
	if e.sp != nil {
		e.sp.Begin()
	}
	e.st.reset()
	e.ap.reset()
	for j := range e.rel.Rows {
		row := &e.rel.Rows[j]
		c := e.classify(row, j)
		switch {
		case c.skip:
		case c.ok:
			e.addRow(row, c)
		default:
			// prove admitted this row only under Approx on a global
			// aggregate: estimate it.
			e.estimateRow(row)
		}
	}
	if e.ap.used {
		e.emitApprox(res, opts)
	} else {
		e.st.finish()
		if err := e.st.err; err != nil {
			if e.sp != nil {
				e.sp.ObserveEmpty()
			}
			return err
		}
		if opts.Approx {
			e.apInfo = ApproxInfo{}
			res.Approx = &e.apInfo
		}
		e.emitExact(res, opts)
	}
	e.node.OutRows = res.Rows
	if e.sp != nil {
		e.sp.Observe(res.Rows, res.Rows*int64(e.width())*8)
	}
	return nil
}

func (e *summaryAggEval) width() int {
	if e.countOnly {
		return 1
	}
	return len(e.cand.Items)
}

// addRow folds one provably exact summary row into the aggregation state.
func (e *summaryAggEval) addRow(row *synopsis.Row, c rowClass) {
	n := row.Count
	if c.e < 0 {
		// No driving column: every tuple matches, keys are fixed, cycling
		// aggregate inputs run full independent cycles.
		e.fillKeys(-1, 0)
		for ai := range e.contrib {
			e.contrib[ai] = e.fullCycleContrib(ai, n)
		}
		e.fold(n)
		return
	}
	S := e.rs[c.e].set
	L := S.Len()
	cycles, rem := n/L, n%L
	I := S
	if P := e.predOf[c.e]; P != nil {
		e.interBuf = S.IntersectInto(e.interBuf, P)
		I = e.interBuf
	}
	e.prefBuf = S.PrefixInto(e.prefBuf, rem)
	e.iprefBuf = I.IntersectInto(e.iprefBuf, e.prefBuf)
	if e.grpOf[c.e] {
		// The driving column is a GROUP BY key: enumerate its matching
		// values. With zero full cycles only the prefix's values occur, so
		// the enumeration (like the whole evaluation) is bounded by n.
		if cycles == 0 {
			e.enumGroups(c.e, e.iprefBuf, 0)
		} else {
			e.enumGroups(c.e, I, cycles)
		}
		return
	}
	cnt := cycles*I.Len() + e.iprefBuf.Len()
	if cnt == 0 {
		return
	}
	e.fillKeys(-1, 0)
	for ai := range e.contrib {
		e.contrib[ai] = e.drivenContrib(ai, I, cycles, cnt)
	}
	e.fold(cnt)
}

// enumGroups walks the driving column's matching values, contributing one
// group observation per value with its exact tuple count.
func (e *summaryAggEval) enumGroups(epos int, over value.IntervalSet, cycles int64) {
	for _, iv := range over {
		for v := iv.Lo; v < iv.Hi; v++ {
			cnt := cycles
			if e.iprefBuf.Contains(v) {
				cnt++
			}
			if cnt == 0 {
				continue
			}
			e.fillKeys(epos, v)
			for ai := range e.contrib {
				e.contrib[ai] = e.pointContrib(ai, v, cnt)
			}
			e.fold(cnt)
		}
	}
}

// fillKeys assembles the group key tuple: the driving column (at need
// position epos) takes v, every other key is fixed by classification.
func (e *summaryAggEval) fillKeys(epos int, v int64) {
	for ki, c := range e.cand.GroupBy {
		pos := e.needPos(c)
		if pos == epos {
			e.st.keyBuf[ki] = v
		} else {
			e.st.keyBuf[ki] = e.rs[pos].fixed
		}
	}
}

// fold merges one observation (cnt tuples with e.contrib's aggregate
// contributions) into the shared groupAggState, mirroring observe+merge.
func (e *summaryAggEval) fold(cnt int64) {
	st := e.st
	var g int32
	if len(st.groupBy) == 0 {
		g = 0
	} else {
		g = st.lookup(st.keyBuf)
	}
	st.counts[g] += cnt
	for ai := range st.aggs {
		c := &e.contrib[ai]
		switch st.aggs[ai].Fn {
		case sqlkit.AggSum, sqlkit.AggAvg:
			s, carry := bits.Add64(uint64(st.accs[ai][g]), uint64(c.sumLo), 0)
			st.accs[ai][g] = int64(s)
			st.accsHi[ai][g] += c.sumHi + int64(carry)
		case sqlkit.AggMin:
			if c.min < st.accs[ai][g] {
				st.accs[ai][g] = c.min
			}
		case sqlkit.AggMax:
			if c.max > st.accs[ai][g] {
				st.accs[ai][g] = c.max
			}
		}
	}
}

// fullCycleContrib is aggregate ai's contribution when all n tuples match:
// a fixed input contributes n·f, a cycling input its full cycles plus the
// phase prefix.
func (e *summaryAggEval) fullCycleContrib(ai int, n int64) aggContrib {
	c := e.cand.Aggs[ai].Col
	if c < 0 {
		return aggContrib{} // COUNT: answered from the group's tuple count
	}
	r := &e.rs[e.needPos(c)]
	if r.set == nil {
		lo, hi := cycle.Mul128(r.fixed, n)
		return aggContrib{sumLo: lo, sumHi: hi, min: r.fixed, max: r.fixed}
	}
	S := r.set
	cycles, rem := n/S.Len(), n%S.Len()
	e.prefBuf = S.PrefixInto(e.prefBuf, rem)
	slo, shi := cycle.SumSet128(S)
	plo, phi := cycle.SumSet128(e.prefBuf)
	lo, hi := cycle.MulAcc128(plo, phi, slo, shi, cycles)
	out := aggContrib{sumLo: lo, sumHi: hi}
	if cycles >= 1 {
		out.min, out.max = S.Min(), S.Max()
	} else {
		out.min, out.max = e.prefBuf.Min(), e.prefBuf.Max()
	}
	return out
}

// drivenContrib is aggregate ai's contribution when the driving column
// restricts the row to cnt tuples: a fixed input contributes cnt·f; a
// cycling input is the driving column itself (classification guarantees
// coincidence), summing its matching values weighted by occurrences.
func (e *summaryAggEval) drivenContrib(ai int, I value.IntervalSet, cycles, cnt int64) aggContrib {
	c := e.cand.Aggs[ai].Col
	if c < 0 {
		return aggContrib{}
	}
	r := &e.rs[e.needPos(c)]
	if r.set == nil {
		lo, hi := cycle.Mul128(r.fixed, cnt)
		return aggContrib{sumLo: lo, sumHi: hi, min: r.fixed, max: r.fixed}
	}
	slo, shi := cycle.SumSet128(I)
	plo, phi := cycle.SumSet128(e.iprefBuf)
	lo, hi := cycle.MulAcc128(plo, phi, slo, shi, cycles)
	out := aggContrib{sumLo: lo, sumHi: hi}
	if cycles >= 1 {
		out.min, out.max = I.Min(), I.Max()
	} else {
		out.min, out.max = e.iprefBuf.Min(), e.iprefBuf.Max()
	}
	return out
}

// pointContrib is aggregate ai's contribution from cnt tuples whose driving
// column holds v.
func (e *summaryAggEval) pointContrib(ai int, v, cnt int64) aggContrib {
	c := e.cand.Aggs[ai].Col
	if c < 0 {
		return aggContrib{}
	}
	r := &e.rs[e.needPos(c)]
	x := r.fixed
	if r.set != nil {
		x = v // the input is the driving column, by classification
	}
	lo, hi := cycle.Mul128(x, cnt)
	return aggContrib{sumLo: lo, sumHi: hi, min: x, max: x}
}

// estimateRow folds one non-provable summary row into the approximate
// accumulators: cycling predicate columns are treated as independent, so
// the row matches with probability frac = Π mᵢ/Lᵢ, contributing n·frac
// expected rows with per-row variance frac·(1−frac). Classification has
// already resolved e.rs for this row.
func (e *summaryAggEval) estimateRow(row *synopsis.Row) {
	n := row.Count
	frac := 1.0
	if p := e.cand.Pred; p != nil {
		for i, c := range p.Cols {
			r := &e.rs[e.needPos(c)]
			if r.set == nil {
				continue // contained, or classification would have skipped
			}
			frac *= float64(r.set.IntersectLen(p.Sets[i])) / float64(r.set.Len())
		}
	}
	if frac <= 0 {
		return
	}
	est := float64(n) * frac
	ap := &e.ap
	ap.used = true
	ap.estCnt += est
	ap.varCnt += float64(n) * frac * (1 - frac)
	for ai := range e.cand.Aggs {
		c := e.cand.Aggs[ai].Col
		if c < 0 {
			continue
		}
		a := &ap.aggs[ai]
		r := &e.rs[e.needPos(c)]
		if r.set == nil {
			a.sum += float64(r.fixed) * est
			a.note(r.fixed, r.fixed)
			continue
		}
		// Sum the input over its own matching offsets, then scale by the
		// probability the other columns match too.
		S := r.set
		cycles, rem := n/S.Len(), n%S.Len()
		I := S
		fracD := 1.0
		if P := e.predOf[e.needPos(c)]; P != nil {
			e.interBuf = S.IntersectInto(e.interBuf, P)
			I = e.interBuf
			fracD = float64(I.Len()) / float64(S.Len())
		}
		e.prefBuf = S.PrefixInto(e.prefBuf, rem)
		e.iprefBuf = I.IntersectInto(e.iprefBuf, e.prefBuf)
		own := float64(cycles)*cycle.SumSetFloat(I) + cycle.SumSetFloat(e.iprefBuf)
		if fracD > 0 {
			a.sum += own * frac / fracD
		}
		if !I.Empty() {
			a.note(I.Min(), I.Max())
		}
	}
}

// emitExact writes the result in the regenerating executors' conventions:
// COUNT(*) is one row carrying the count; grouped output is one row per
// group in the shared deterministic order, sampled on request.
func (e *summaryAggEval) emitExact(res *ExecResult, opts ExecOptions) {
	st := e.st
	if e.countOnly {
		total := st.counts[0]
		res.Rows, res.Count = 1, total
		if opts.SampleLimit > 0 {
			//hydralint:ignore hotpath sampled rows escape to the caller by design; SampleLimit>0 is off the steady-state path
			res.Sample = append(res.Sample, []int64{total})
		}
		return
	}
	res.Rows = int64(len(st.order))
	if opts.SampleLimit > 0 {
		for i := 0; i < len(st.order) && len(res.Sample) < opts.SampleLimit; i++ {
			g := st.order[i]
			out := make([]int64, len(e.cand.Items))
			for oc, it := range e.cand.Items {
				out[oc] = st.value(it, g)
			}
			res.Sample = append(res.Sample, out)
		}
	}
}

// emitApprox combines the exact and estimated halves into one global answer.
// SUM/AVG totals are carried in float64 and clamped into int64 rather than
// overflow-checked — an estimated answer has no exactness to protect.
func (e *summaryAggEval) emitApprox(res *ExecResult, opts ExecOptions) {
	st := e.st
	ap := &e.ap
	totalF := float64(st.counts[0]) + ap.estCnt
	cnt := cycle.ClampInt64(math.Round(totalF))
	e.apInfo = ApproxInfo{Estimated: true, CI95: 1.96 * math.Sqrt(ap.varCnt)}
	res.Approx = &e.apInfo
	if e.countOnly {
		res.Rows, res.Count = 1, cnt
		if opts.SampleLimit > 0 {
			//hydralint:ignore hotpath sampled rows escape to the caller by design; SampleLimit>0 is off the steady-state path
			res.Sample = append(res.Sample, []int64{cnt})
		}
		return
	}
	res.Rows = 1 // a global aggregate always answers one row
	if opts.SampleLimit > 0 {
		out := make([]int64, len(e.cand.Items))
		for oc, it := range e.cand.Items {
			out[oc] = e.approxValue(it, cnt, totalF)
		}
		res.Sample = append(res.Sample, out)
	}
}

// approxValue finalizes one output column of an estimated global answer.
func (e *summaryAggEval) approxValue(it GroupOut, cnt int64, totalF float64) int64 {
	st := e.st
	ai := it.Agg
	a := &e.ap.aggs[ai]
	exactCnt := st.counts[0]
	switch st.aggs[ai].Fn {
	case sqlkit.AggCount:
		return cnt
	case sqlkit.AggSum, sqlkit.AggAvg:
		total := cycle.Sum128Float(st.accs[ai][0], st.accsHi[ai][0]) + a.sum
		if st.aggs[ai].Fn == sqlkit.AggAvg {
			if totalF <= 0 {
				return 0
			}
			return cycle.ClampInt64(math.Trunc(total / totalF))
		}
		return cycle.ClampInt64(total)
	case sqlkit.AggMin:
		switch {
		case exactCnt > 0 && a.valid:
			return min(st.accs[ai][0], a.min)
		case exactCnt > 0:
			return st.accs[ai][0]
		case a.valid:
			return a.min
		}
		return 0
	case sqlkit.AggMax:
		switch {
		case exactCnt > 0 && a.valid:
			return max(st.accs[ai][0], a.max)
		case exactCnt > 0:
			return st.accs[ai][0]
		case a.valid:
			return a.max
		}
		return 0
	}
	return 0
}
