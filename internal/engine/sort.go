package engine

import (
	"math"
	"sort"

	"repro/internal/batch"
)

// sortState is the ORDER BY operator's sinkState: collected rows live in
// per-column arenas (only the columns the output or the comparator needs
// carry storage), ordered through an index permutation so a swap never moves
// row data. The comparator is a total order up to full-row equality — the
// ORDER BY keys in clause order, then every collected column ascending — so
// the sorted output is byte-identical no matter how rows arrived: batch
// boundaries, morsel partitioning, and worker count all vanish. That is what
// lets one worker-local sortState per worker, merged by concatenation and
// re-sorted, reproduce the sequential result exactly (the partial-state/
// merge contract).
//
// When a LIMIT directly bounds the sort (SortBound = offset+limit > 0) the
// state keeps only the bound smallest rows in a max-heap: a row worse than
// the current bound-th row is rejected in O(log bound) without being stored.
// The heap is an optimization only — merge concatenates worker heaps and
// finish re-sorts and re-truncates, so bounded and unbounded execution agree
// wherever both emit.
//
// Like groupAggState, every piece of storage survives reset: a steady-state
// ORDER BY [+ LIMIT] query on a recycled state allocates nothing.
type sortState struct {
	keys    []SortKey
	collect []int     // collected columns, ascending (the tiebreak domain)
	arena   [][]int64 // per column: collected values by row slot; nil if uncollected
	order   []int32   // live row slots; heap-ordered while bounded, sorted after finish
	slots   int32     // arena rows in use (including the bounded path's scratch slot)
	bound   int       // > 0: retain only the bound smallest rows
	free    int32     // bounded path: arena slot to write the next candidate into
}

// newSortState readies a state for pn's keys over a child of the given
// width. collect is the child's materialized column set — output columns
// plus sort keys — and doubles as the comparator's tiebreak domain.
func newSortState(pn *PlanNode, collect []int, width int) *sortState {
	st := &sortState{
		keys:    pn.SortKeys,
		collect: collect,
		arena:   make([][]int64, width),
	}
	if pn.SortBound > 0 && pn.SortBound <= math.MaxInt32/2 {
		st.bound = int(pn.SortBound)
	}
	return st
}

func (st *sortState) reset() {
	for _, c := range st.collect {
		st.arena[c] = st.arena[c][:0]
	}
	st.order = st.order[:0]
	st.slots = 0
	st.free = 0
}

func (st *sortState) deferredErr() error { return nil }

// observe folds one child batch in. The unbounded path appends whole column
// runs (unit-stride per collected column, selection-aware); the bounded path
// tests each candidate against the heap max before admitting it.
func (st *sortState) observe(b *batch.ColBatch) {
	live := b.Live()
	if live == 0 {
		return
	}
	sel := b.Sel()
	if st.bound == 0 {
		base := st.slots
		for _, c := range st.collect {
			col := b.Col(c)
			if sel == nil {
				st.arena[c] = append(st.arena[c], col[:live]...)
			} else {
				a := st.arena[c]
				for _, r := range sel {
					a = append(a, col[r])
				}
				st.arena[c] = a
			}
		}
		for i := 0; i < live; i++ {
			st.order = append(st.order, base+int32(i))
		}
		st.slots += int32(live)
		return
	}
	for i := 0; i < live; i++ {
		r := i
		if sel != nil {
			r = int(sel[i])
		}
		st.admit(b, r)
	}
}

// admit offers one row to the bounded (top-K) collection.
func (st *sortState) admit(b *batch.ColBatch, r int) {
	if len(st.order) < st.bound {
		slot := st.slots
		for _, c := range st.collect {
			st.arena[c] = append(st.arena[c], b.Col(c)[r])
		}
		st.slots++
		st.order = append(st.order, slot)
		if len(st.order) == st.bound {
			st.heapify()
			// One scratch slot receives rejected-or-admitted candidates.
			for _, c := range st.collect {
				st.arena[c] = append(st.arena[c], 0)
			}
			st.free = st.slots
			st.slots++
		}
		return
	}
	// Full: the heap max (order[0]) is the bound-th smallest row so far.
	if st.cmpBatch(b, r, st.order[0]) >= 0 {
		return
	}
	slot := st.free
	for _, c := range st.collect {
		st.arena[c][slot] = b.Col(c)[r]
	}
	st.free = st.order[0]
	st.order[0] = slot
	st.siftDown(0)
}

// cmp orders two collected rows: ORDER BY keys first (direction-aware), then
// every collected column ascending. Zero means the rows are identical on all
// collected columns — and therefore identical in any emitted output.
func (st *sortState) cmp(a, b int32) int {
	for _, k := range st.keys {
		av, bv := st.arena[k.Col][a], st.arena[k.Col][b]
		if av != bv {
			if (av < bv) != k.Desc {
				return -1
			}
			return 1
		}
	}
	for _, c := range st.collect {
		av, bv := st.arena[c][a], st.arena[c][b]
		if av != bv {
			if av < bv {
				return -1
			}
			return 1
		}
	}
	return 0
}

// cmpBatch orders a candidate batch row against a collected arena row under
// the same total order as cmp.
func (st *sortState) cmpBatch(b *batch.ColBatch, r int, g int32) int {
	for _, k := range st.keys {
		av, bv := b.Col(k.Col)[r], st.arena[k.Col][g]
		if av != bv {
			if (av < bv) != k.Desc {
				return -1
			}
			return 1
		}
	}
	for _, c := range st.collect {
		av, bv := b.Col(c)[r], st.arena[c][g]
		if av != bv {
			if av < bv {
				return -1
			}
			return 1
		}
	}
	return 0
}

// heapify establishes the max-heap invariant over order[:bound].
func (st *sortState) heapify() {
	for i := len(st.order)/2 - 1; i >= 0; i-- {
		st.siftDown(i)
	}
}

// siftDown restores the max-heap property below index i.
func (st *sortState) siftDown(i int) {
	n := len(st.order)
	for {
		largest := i
		if l := 2*i + 1; l < n && st.cmp(st.order[l], st.order[largest]) > 0 {
			largest = l
		}
		if r := 2*i + 2; r < n && st.cmp(st.order[r], st.order[largest]) > 0 {
			largest = r
		}
		if largest == i {
			return
		}
		st.order[i], st.order[largest] = st.order[largest], st.order[i]
		i = largest
	}
}

// merge appends other's live rows — a worker's partial collection — into
// st's arenas. Order of merging cannot affect the finished output: finish
// re-sorts under the total order and re-applies the bound.
func (st *sortState) merge(other *sortState) {
	for _, g := range other.order {
		slot := st.slots
		for _, c := range st.collect {
			st.arena[c] = append(st.arena[c], other.arena[c][g])
		}
		st.slots++
		st.order = append(st.order, slot)
	}
}

// finish sorts the live rows ascending under the total order and truncates
// to the bound. Implemented on the state itself (sort.Interface, no
// closures) so the steady-state sort allocates nothing.
func (st *sortState) finish() {
	sort.Sort(st)
	if st.bound > 0 && len(st.order) > st.bound {
		st.order = st.order[:st.bound]
	}
}

func (st *sortState) Len() int           { return len(st.order) }
func (st *sortState) Less(i, j int) bool { return st.cmp(st.order[i], st.order[j]) < 0 }
func (st *sortState) Swap(i, j int)      { st.order[i], st.order[j] = st.order[j], st.order[i] }

// emit writes sorted rows order[pos:pos+k] into dst (k bounded by dst's
// capacity), populating only outCols, one column pass at a time.
func (st *sortState) emit(dst *batch.ColBatch, outCols []int, pos int) int {
	k := len(st.order) - pos
	if k <= 0 {
		return 0
	}
	if k > dst.Cap() {
		k = dst.Cap()
	}
	for _, c := range outCols {
		out := dst.Col(c)
		src := st.arena[c]
		for i := 0; i < k; i++ {
			out[i] = src[st.order[pos+i]]
		}
	}
	dst.SetLen(k)
	return k
}
