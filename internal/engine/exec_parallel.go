package engine

import (
	"context"
	"runtime"
	"sort"
	"time"

	"repro/internal/batch"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// Morsel-driven parallel execution over the columnar spine. Because a
// dataless scan is a pure function of the summary — any row range of a
// relation can be generated independently — the probe side of a plan's
// scan→filter(→probe) pipeline splits into contiguous row-range morsels
// that workers pull from a shared atomic queue. Hash-join build sides are
// consumed once, sequentially, into read-only colJoinBuild arenas shared
// by every worker; each worker probes them with its own columnar pipeline
// (projected scans, selection-vector filters), accumulating per-operator
// cardinalities into worker-local shadow ExecNodes.
//
// Root sinks — COUNT(*), GROUP BY, DISTINCT, ORDER BY, LIMIT — compose via
// the partial-state/merge contract of sink.go rather than parallel-specific
// operator code: each worker folds its morsels' spine output into a private
// sinkState (groupAggState, sortState, or the plain row count), partials
// merge in worker-index order, and the merged state is emitted through the
// same colSinkIter/colLimitIter operators the sequential executor runs. The
// merge is deterministic end to end: shadow counts are summed in worker
// order, sink states merge order-insensitively (exact 128-bit sums; total-
// order sorting), and sample rows are re-assembled in morsel order, so the
// ExecResult is byte-identical to the sequential columnar executor's,
// regardless of worker count or scheduling.

// ExecuteParallel runs the plan on opts.Parallelism workers (<= 0 selects
// GOMAXPROCS; the value is honored verbatim, without Execute's clamp, so
// callers can oversubscribe deliberately). Plans whose probe-side scan
// cannot be partitioned — a velocity-paced stream or a caller-supplied
// datagen source — fall back to the sequential columnar executor, which
// produces the identical result.
func ExecuteParallel(db *Database, plan *Plan, opts ExecOptions) (*ExecResult, error) {
	return ExecuteParallelContext(context.Background(), db, plan, opts)
}

// ExecuteParallelContext is ExecuteParallel under a context: every worker
// observes ctx in its morsel loop (and, per batch, through its scan leaf),
// drains cleanly, and the lowest-index error convention of
// internal/parallel extends to cancellation so context.Canceled /
// context.DeadlineExceeded surface deterministically regardless of worker
// scheduling. No goroutine outlives the call.
func ExecuteParallelContext(ctx context.Context, db *Database, plan *Plan, opts ExecOptions) (*ExecResult, error) {
	ctx, cancel := withTimeout(ctx, opts.Timeout)
	defer cancel()
	return executeParallelFrom(ctx, db, plan, opts, nil, nil)
}

// executeParallelFrom is the parallel executor behind
// ExecuteParallelContext, with optional prepared join builds (the serve
// cache's steady-state path). The caller has already folded opts.Timeout
// into ctx when it should apply.
func executeParallelFrom(ctx context.Context, db *Database, plan *Plan, opts ExecOptions, builds buildCache, prunes pruneCache) (*ExecResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The open phase (hash-join build drains) runs sequentially under the
	// caller's context via its own control.
	ctl := &execCtl{ctx: ctx}
	if opts.Trace {
		ctl.rec = trace.NewRecorder(countPlanNodes(plan.Root))
	}
	// The summary-direct fast path preempts worker fan-out entirely: an
	// O(summary rows) evaluation has nothing to parallelize.
	if res, ok, err := trySummaryAgg(ctl, db, plan, opts); ok {
		return res, err
	}
	ctl.prunes = prunesFor(db, plan, opts, prunes)
	pp, fallback, err := openParallel(db, plan, opts, builds, ctl)
	if err != nil {
		return nil, err
	}
	if pp == nil {
		// Not partitionable. If the leaf scan was already opened to probe
		// its capability, hand it to the sequential path — a table's
		// DatagenFunc is invoked once per scan, never twice.
		return executeColumnarFrom(ctx, db, plan, opts, fallback, builds, ctl.prunes)
	}
	return pp.run(ctx, workers, opts)
}

// isRootSink reports whether op is a blocking root operator handled by the
// sink framework (everything that is not part of the probe spine).
func isRootSink(op OpKind) bool {
	switch op {
	case OpAggregate, OpGroupAgg, OpDistinct, OpSort, OpLimit:
		return true
	}
	return false
}

// joinStage is one hash join of the probe spine: the shared read-only
// build state plus what a worker needs to instantiate its probe iterator.
type joinStage struct {
	jb        *colJoinBuild
	leftKey   int
	probeCols int
	probePop  []int     // populated columns of the stage's probe-side batches
	outNeed   []int     // output columns the stage materializes
	node      *ExecNode // real (merged) node
}

// parallelPlan is a plan opened for morsel-driven execution: the root sink
// stack peeled off (outermost first), the probe spine decomposed into
// scan → optional filter → join stages (innermost first), all build sides
// already consumed into shared arenas, and required-column sets resolved
// top-down through sinks and spine alike.
type parallelPlan struct {
	plan *Plan
	rec  *trace.Recorder // non-nil when the execution is traced

	src      parallel.Source
	scanNeed []int // projection pushed into each morsel's scan
	scanCols int   // scan width
	scanNode *ExecNode

	filterPn   *PlanNode // nil when the scan is unfiltered
	filterNode *ExecNode

	stages []joinStage // innermost (nearest the scan) first

	// The root sink stack, outermost first: sinks[len-1] (the bottom sink,
	// nearest the spine) is what workers fold their spine output into;
	// everything above it is applied once, at merge time, through the same
	// operators the sequential executor uses. sinkNeeds[i] is the column
	// set sink i's output must materialize (sinkNeeds[0] derives from the
	// root; sinkNeeds[len] is the spine top's need).
	sinks     []*PlanNode
	sinkNodes []*ExecNode
	sinkNeeds [][]int

	root    *ExecNode
	width   int   // output width of the spine top (below any sink)
	topNeed []int // populated columns of the spine top's batches
}

// bottom returns the innermost sink plan node, or nil when the plan is pure
// spine.
func (pp *parallelPlan) bottom() *PlanNode {
	if len(pp.sinks) == 0 {
		return nil
	}
	return pp.sinks[len(pp.sinks)-1]
}

// sinkWidth returns the output width of sink i; i == len(sinks) addresses
// the spine top.
func (pp *parallelPlan) sinkWidth(i int) int {
	if i == len(pp.sinks) {
		return pp.width
	}
	switch sn := pp.sinks[i]; sn.Op {
	case OpGroupAgg, OpDistinct:
		return len(sn.Items)
	case OpAggregate:
		return 1
	default: // OpSort, OpLimit: layout passes through
		return pp.sinkWidth(i + 1)
	}
}

// spineNodes lists the real probe-spine ExecNodes in merge order.
func (pp *parallelPlan) spineNodes() []*ExecNode {
	nodes := []*ExecNode{pp.scanNode}
	if pp.filterNode != nil {
		nodes = append(nodes, pp.filterNode)
	}
	for i := range pp.stages {
		nodes = append(nodes, pp.stages[i].node)
	}
	return nodes
}

// openParallel decomposes the plan into sink stack + probe spine + build
// sides. A nil parallelPlan (with nil error) means the plan is not
// morsel-partitionable — the leaf scan's source lacks the parallel.Source
// contract or the spine has an unexpected shape — and the caller must fall
// back to sequential execution; the returned scanOverride then carries the
// already-opened leaf source, if any, so it is reused rather than opened
// a second time. ctl guards the sequential build-side drains: a drain the
// context interrupts surfaces the context error as an open failure.
func openParallel(db *Database, plan *Plan, opts ExecOptions, builds buildCache, ctl *execCtl) (*parallelPlan, *scanOverride, error) {
	pp := &parallelPlan{plan: plan}
	pn := plan.Root
	for isRootSink(pn.Op) {
		pp.sinks = append(pp.sinks, pn)
		pn = pn.Children[0]
	}
	// Collect the probe spine top-down: joins, then an optional filter,
	// then the leaf scan.
	var joinPns []*PlanNode // outermost first
	for pn.Op == OpHashJoin {
		joinPns = append(joinPns, pn)
		pn = pn.Children[0]
	}
	if pn.Op == OpFilter {
		pp.filterPn = pn
		pn = pn.Children[0]
	}
	if pn.Op != OpScan {
		return nil, nil, nil
	}

	// The leaf must expose a partitionable row space before any build-side
	// work is worth doing.
	src, err := db.openBatchScan(pn.Table)
	if err != nil {
		return nil, nil, err
	}
	ps, ok := src.(parallel.Source)
	if !ok {
		return nil, &scanOverride{table: pn.Table, src: src}, nil
	}
	pp.src = ps

	// Predicate pushdown into generation: swap the leaf's row space for the
	// precomputed qualifying one, so morsels partition only live rows and
	// workers never inherit dead ranges. An absorbed filter disappears from
	// the spine — the residual-free case — exactly as on the sequential
	// path, keeping the operator shape mode-invariant.
	var prune *scanPrune
	if fp := pp.filterPn; fp != nil {
		if pr := ctl.prunes[fp]; pr != nil {
			if rs, ok := src.(rowSpaceSource); ok {
				if pruned, ok := rs.SectionSet(pr.ivs).(parallel.Source); ok {
					pp.src = pruned
					prune = pr
					if pr.absorbed {
						pp.filterPn = nil
					}
				}
			}
		}
	}

	// Required-column analysis, top-down: the root's need (samples
	// materialize the full output, COUNT(*) only its count column) is
	// translated through each sink by the same childNeeds the sequential
	// executor uses, then along the join spine.
	pp.sinkNeeds = make([][]int, len(pp.sinks)+1)
	pp.sinkNeeds[0] = rootNeed(plan, opts)
	for i, sn := range pp.sinks {
		pp.sinkNeeds[i+1] = sn.childNeeds(pp.sinkNeeds[i])[0]
	}
	need := pp.sinkNeeds[len(pp.sinks)]
	pp.topNeed = need
	probeNeeds := make([][]int, len(joinPns)) // by joinPns index (outermost first)
	buildNeeds := make([][]int, len(joinPns))
	outNeeds := make([][]int, len(joinPns))
	for i, jpn := range joinPns {
		cn := jpn.childNeeds(need)
		outNeeds[i] = need
		probeNeeds[i], buildNeeds[i] = cn[0], cn[1]
		need = probeNeeds[i]
	}
	if fp := pp.filterPn; fp != nil {
		need = fp.childNeeds(need)[0]
	}
	pp.scanNeed = need
	// The populated set of each stage's probe-side batches: the scan's
	// pushed-down projection for the innermost join (predicate columns ride
	// along in the same physical batch), the inner join's materialized
	// output for the rest.
	probePops := make([][]int, len(joinPns))
	for i := len(joinPns) - 1; i >= 0; i-- {
		if i == len(joinPns)-1 {
			probePops[i] = pp.scanNeed
		} else {
			probePops[i] = outNeeds[i+1]
		}
	}

	// Real ExecNode tree, mirroring openCol's shape exactly. Traced
	// executions annotate every real node with a span: workers record into
	// private spans and the real ones receive the worker-order merge.
	pp.rec = ctl.rec
	pp.scanNode = &ExecNode{Op: OpScan.String(), Table: pn.Table}
	if prune != nil {
		pp.scanNode.RowsPruned = prune.pruned
		pp.scanNode.SummaryRowsSkipped = prune.skipped
	}
	ctl.annotate(pp.scanNode)
	width := len(db.Schema.Table(pn.Table).Columns)
	pp.scanCols = width
	cur := pp.scanNode
	if fp := pp.filterPn; fp != nil {
		table := db.Schema.Table(fp.Pred.Table)
		pp.filterNode = &ExecNode{Op: OpFilter.String(), Table: fp.Pred.Table, PredSQL: fp.Pred.SQL(table), Children: []*ExecNode{cur}}
		ctl.annotate(pp.filterNode)
		cur = pp.filterNode
	}
	// Build sides are consumed innermost-first (the order the sequential
	// executor drains them in); each becomes a shared read-only arena —
	// or is served straight from the prepared build cache.
	for i := len(joinPns) - 1; i >= 0; i-- {
		jpn := joinPns[i]
		var jb *colJoinBuild
		var buildNode *ExecNode
		var bw int
		var buildNS int64
		if pb, ok := builds[jpn]; ok {
			jb = pb.jb
			buildNode = cloneExecNode(pb.node)
			bw = jb.width
			ctl.annotateFrozen(buildNode)
		} else {
			buildIt, w, buildPop, bn, err := openCol(db, jpn.Children[1], buildNeeds[i], opts.BatchSize, nil, builds, ctl)
			if err != nil {
				return nil, nil, err
			}
			bstart := time.Now()
			jb = newColJoinBuild(buildIt, w, jpn.RightKey, opts.BatchSize, buildNeeds[i], buildPop)
			buildNS = time.Since(bstart).Nanoseconds()
			if ctl.stopped() {
				return nil, nil, ctl.err
			}
			buildNode, bw = bn, w
		}
		node := &ExecNode{Op: OpHashJoin.String(), JoinSQL: jpn.JoinSQL, Children: []*ExecNode{cur, buildNode}}
		if sp := ctl.annotate(node); sp != nil {
			sp.BuildNS = buildNS
			buildNode.sp.Detached = true
		}
		pp.stages = append(pp.stages, joinStage{
			jb:        jb,
			leftKey:   jpn.LeftKey,
			probeCols: width,
			probePop:  probePops[i],
			outNeed:   outNeeds[i],
			node:      node,
		})
		width += bw
		cur = node
	}
	pp.width = width
	// Sink ExecNodes wrap the spine, innermost-out.
	pp.sinkNodes = make([]*ExecNode, len(pp.sinks))
	for i := len(pp.sinks) - 1; i >= 0; i-- {
		node := &ExecNode{Op: pp.sinks[i].Op.String(), Children: []*ExecNode{cur}}
		ctl.annotate(node)
		pp.sinkNodes[i] = node
		cur = node
	}
	pp.root = cur
	return pp, nil, nil
}

// morselRows picks the scheduling granule: bounded above by the default
// morsel size, bounded below by the batch capacity (a morsel smaller than
// one batch would only add setup overhead), and scaled so every worker
// sees several morsels even on small relations.
func morselRows(total int64, workers, batchSize int) int64 {
	if batchSize <= 0 {
		batchSize = batch.DefaultCap
	}
	m := total / int64(workers*4)
	if m > parallel.DefaultMorselRows {
		m = parallel.DefaultMorselRows
	}
	if b := int64(batchSize); m < b {
		m = b
	}
	return m
}

// sampleRun is the output rows one worker collected from one morsel, tagged
// with the morsel's row offset so the sequential output order can be
// reassembled deterministically. The plain spine collects up to SampleLimit
// rows per morsel; a root LIMIT collects up to offset+SampleLimit, since the
// true first offset+k output rows are contained in the first offset+k of
// each morsel.
type sampleRun struct {
	lo   int64
	rows [][]int64
}

// workerState is one worker's private accumulation: shadow ExecNodes for
// the spine (merged by summation afterwards), the count of rows the spine
// top produced, morsel-tagged output runs, and — when the bottom sink is a
// grouped aggregate, DISTINCT, or ORDER BY — the worker's partial sink
// state (the partial-state half of the partial-state/merge contract).
type workerState struct {
	shadow []*ExecNode
	rows   int64
	runs   []sampleRun
	group  *groupAggState
	sort   *sortState
}

// run executes the opened plan on the given number of workers and merges
// worker state into the sequential-identical ExecResult. Workers observe
// ctx per morsel and — through their scan leaves — per batch; the first
// real worker error cancels the siblings, and pure cancellation surfaces
// the context's own error deterministically (parallel.RunCtx).
func (pp *parallelPlan) run(ctx context.Context, workers int, opts ExecOptions) (*ExecResult, error) {
	total := pp.src.Total()
	size := morselRows(total, workers, opts.BatchSize)
	// A worker beyond the morsel count would build a pipeline only to find
	// the queue empty; clamping costs nothing and changes nothing (the
	// merge is a sum). The clamp depends only on plan and options, so
	// determinism is preserved.
	if n := (total + size - 1) / size; int64(workers) > n {
		workers = int(n)
		if workers < 1 {
			workers = 1
		}
	}
	morsels := parallel.NewMorsels(total, size)

	bottom := pp.bottom()
	// Workers collect output-row runs when rows (not sink partials) flow out
	// of the spine and the caller samples them: the pure spine, or a root
	// LIMIT directly over it.
	var runCap int64
	if opts.SampleLimit > 0 {
		switch {
		case bottom == nil:
			runCap = int64(opts.SampleLimit)
		case bottom.Op == OpLimit:
			runCap = bottom.Offset + int64(opts.SampleLimit)
		}
	}

	states := make([]*workerState, workers)
	for w := range states {
		states[w] = &workerState{}
		if bottom != nil {
			switch bottom.Op {
			case OpGroupAgg, OpDistinct:
				states[w].group = newGroupAggState(bottom)
			case OpSort:
				states[w].sort = newSortState(bottom, pp.topNeed, pp.width)
			}
		}
	}

	// Traced runs give each worker private spans for its spine pipeline,
	// created here (the recorder is not concurrency-safe) and folded into
	// the real nodes' spans after the pool joins — in worker order, so the
	// merged trace is deterministic. Positions follow spineNodes order.
	spine := pp.spineNodes()
	var wspans [][]*trace.Span
	if pp.rec != nil {
		wspans = make([][]*trace.Span, workers)
		for w := range wspans {
			spans := make([]*trace.Span, len(spine))
			for i, node := range spine {
				spans[i] = pp.rec.NewSpan(node.Op, "")
			}
			wspans[w] = spans
		}
	}

	err := parallel.RunCtx(ctx, workers, func(wctx context.Context, w int) error {
		st := states[w]
		// Each worker owns its cancellation control (latching is
		// single-goroutine state) over the pool's shared child context.
		wctl := &execCtl{ctx: wctx}
		// Worker-local columnar pipeline over shadow nodes; the scan source
		// is swapped per morsel, join iterators reset their probe cursors.
		scanShadow := &ExecNode{}
		st.shadow = append(st.shadow, scanShadow)
		scanIt := &colScanIter{cols: pp.scanNeed, width: pp.scanCols, node: scanShadow, ctl: wctl}
		if wspans != nil {
			scanIt.sp, scanIt.rowBytes = wspans[w][0], 8*int64(len(pp.scanNeed))
		}
		var cur colIterator = scanIt
		if fp := pp.filterPn; fp != nil {
			filterShadow := &ExecNode{}
			st.shadow = append(st.shadow, filterShadow)
			fi := &colFilterIter{child: cur, m: fp.Pred.Matcher(), node: filterShadow}
			if wspans != nil {
				fi.sp = wspans[w][1]
			}
			cur = fi
		}
		joinIts := make([]*colHashJoinIter, len(pp.stages))
		for i := range pp.stages {
			stage := &pp.stages[i]
			joinShadow := &ExecNode{}
			st.shadow = append(st.shadow, joinShadow)
			ji := newColHashJoinIter(cur, stage.jb, stage.probeCols, stage.leftKey, stage.outNeed, stage.probePop, opts.BatchSize)
			ji.node = joinShadow
			if wspans != nil {
				ji.sp, ji.rowBytes = wspans[w][len(st.shadow)-1], 8*int64(len(stage.outNeed))
			}
			joinIts[i] = ji
			cur = ji
		}
		topPop := pp.topNeed
		if len(pp.stages) == 0 {
			topPop = pp.scanNeed
		}
		b := batch.NewCol(pp.width, opts.BatchSize, topPop)
		for {
			if wctl.stopped() {
				// Drain cleanly: abandon remaining morsels, surface the
				// context error for deterministic selection in RunCtx.
				return wctl.err
			}
			lo, hi, ok := morsels.Next()
			if !ok {
				return nil
			}
			sec := pp.src.Section(lo, hi)
			scanIt.src = sec
			scanIt.proj = asProjector(sec, pp.scanCols)
			for _, ji := range joinIts {
				ji.reset()
			}
			run := sampleRun{lo: lo}
			for cur.Next(b) {
				live := b.Live()
				st.rows += int64(live)
				switch {
				case st.group != nil:
					st.group.observe(b) // infallible; totals are judged at merge-side finish
				case st.sort != nil:
					st.sort.observe(b)
				default:
					for i := 0; int64(len(run.rows)) < runCap && i < live; i++ {
						row := make([]int64, b.Width())
						b.LiveRow(i, row)
						run.rows = append(run.rows, row)
					}
				}
			}
			if len(run.rows) > 0 {
				st.runs = append(st.runs, run)
			}
		}
	})
	if err != nil {
		return nil, err
	}

	// Deterministic merge: per-node sums are schedule-independent, sink
	// partials fold in worker order, and output runs reassemble in morsel
	// (= sequential row) order. Traced runs fold worker spans into the real
	// nodes' spans the same way — summed durations, widened windows.
	for i, node := range spine {
		var sum int64
		for _, st := range states {
			sum += st.shadow[i].OutRows
		}
		node.OutRows = sum
		if node.sp != nil {
			for _, spans := range wspans {
				node.sp.Merge(spans[i])
			}
		}
	}
	var outRows int64
	for _, st := range states {
		outRows += st.rows
	}

	res := &ExecResult{Root: pp.root, Trace: pp.root.sp}
	switch {
	case bottom == nil:
		res.Rows = outRows
		res.Sample = mergedRunRows(states, 0, outRows, opts.SampleLimit)
		pp.root.OutRows = res.Rows
		return res, nil

	case bottom.Op == OpLimit:
		// LIMIT over the bare spine: pure arithmetic over the merged counts,
		// with sample rows cut from the morsel-ordered runs.
		em := outRows - bottom.Offset
		if em < 0 {
			em = 0
		}
		if em > bottom.Limit {
			em = bottom.Limit
		}
		res.Rows = em
		res.Sample = mergedRunRows(states, bottom.Offset, em, opts.SampleLimit)
		limitNode := pp.sinkNodes[len(pp.sinks)-1]
		limitNode.OutRows = em
		if limitNode.sp != nil {
			// No operator ran for the arithmetic LIMIT; mirror its
			// cardinality into the span so traced shapes stay mode-invariant.
			limitNode.sp.Rows = em
		}
		pp.root.OutRows = res.Rows
		return res, nil
	}

	// Sink-state bottom: fold worker partials in worker order, finish once,
	// then emit the merged state through the very operators the sequential
	// executor runs for the sinks above it.
	var merged sinkState
	switch bottom.Op {
	case OpGroupAgg, OpDistinct:
		g := states[0].group
		for _, st := range states[1:] {
			g.merge(st.group)
		}
		merged = g
	case OpSort:
		s := states[0].sort
		for _, st := range states[1:] {
			s.merge(st.sort)
		}
		merged = s
	case OpAggregate:
		merged = &countState{n: outRows}
	}
	merged.finish()

	bi := len(pp.sinks) - 1
	var cur colIterator = &stateEmitIter{
		st: merged, outCols: pp.sinkNeeds[bi], node: pp.sinkNodes[bi],
		sp: pp.sinkNodes[bi].sp, rowBytes: 8 * int64(len(pp.sinkNeeds[bi])),
	}
	for i := bi - 1; i >= 0; i-- {
		sn := pp.sinks[i]
		childW := pp.sinkWidth(i + 1)
		switch sn.Op {
		case OpSort:
			cur = &colSinkIter{
				child:    cur,
				buf:      batch.NewCol(childW, opts.BatchSize, pp.sinkNeeds[i+1]),
				st:       newSortState(sn, pp.sinkNeeds[i+1], childW),
				outCols:  pp.sinkNeeds[i],
				node:     pp.sinkNodes[i],
				sp:       pp.sinkNodes[i].sp,
				rowBytes: 8 * int64(len(pp.sinkNeeds[i])),
			}
		case OpLimit:
			cur = &colLimitIter{child: cur, limit: sn.Limit, offset: sn.Offset, node: pp.sinkNodes[i], sp: pp.sinkNodes[i].sp}
		}
	}
	b := batch.NewCol(pp.sinkWidth(0), opts.BatchSize, pp.sinkNeeds[0])
	// The merge-side emission runs on the calling goroutine under the same
	// context: a cancellation arriving during a large merged-sort emit still
	// unwinds at the next batch boundary.
	mctl := &execCtl{ctx: ctx}
	derr := runColumnar(mctl, cur, b, pp.plan, opts, res)
	if mctl.err != nil {
		return nil, mctl.err
	}
	if derr != nil {
		return nil, derr
	}
	return res, nil
}

// mergedRunRows reassembles the workers' morsel-tagged output runs in
// sequential row order and returns the sample: up to sampleLimit rows after
// skipping skip rows, capped at emit rows total.
func mergedRunRows(states []*workerState, skip, emit int64, sampleLimit int) [][]int64 {
	if sampleLimit <= 0 || emit <= 0 {
		return nil
	}
	var runs []sampleRun
	for _, st := range states {
		runs = append(runs, st.runs...)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].lo < runs[j].lo })
	var out [][]int64
	var skipped, taken int64
	for _, r := range runs {
		for _, row := range r.rows {
			if skipped < skip {
				skipped++
				continue
			}
			if taken >= emit || len(out) >= sampleLimit {
				return out
			}
			out = append(out, row)
			taken++
		}
	}
	return out
}
