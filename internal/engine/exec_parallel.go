package engine

import (
	"runtime"
	"sort"

	"repro/internal/batch"
	"repro/internal/parallel"
)

// Morsel-driven parallel execution over the columnar spine. Because a
// dataless scan is a pure function of the summary — any row range of a
// relation can be generated independently — the probe side of a plan's
// scan→filter(→probe) pipeline splits into contiguous row-range morsels
// that workers pull from a shared atomic queue. Hash-join build sides are
// consumed once, sequentially, into read-only colJoinBuild arenas shared
// by every worker; each worker probes them with its own columnar pipeline
// (projected scans, selection-vector filters), accumulating per-operator
// cardinalities into worker-local shadow ExecNodes. The merge is
// deterministic: shadow counts are summed in worker order (addition makes
// the result schedule-independent) and sample rows are re-assembled in
// morsel order, so the ExecResult is byte-identical to the sequential
// columnar executor's, regardless of worker count or scheduling.

// ExecuteParallel runs the plan on opts.Parallelism workers (<= 0 selects
// GOMAXPROCS; the value is honored verbatim, without Execute's clamp, so
// callers can oversubscribe deliberately). Plans whose probe-side scan
// cannot be partitioned — a velocity-paced stream or a caller-supplied
// datagen source — fall back to the sequential columnar executor, which
// produces the identical result.
func ExecuteParallel(db *Database, plan *Plan, opts ExecOptions) (*ExecResult, error) {
	return executeParallelFrom(db, plan, opts, nil)
}

// executeParallelFrom is ExecuteParallel with optional prepared join
// builds (the serve cache's steady-state path).
func executeParallelFrom(db *Database, plan *Plan, opts ExecOptions, builds buildCache) (*ExecResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pp, fallback, err := openParallel(db, plan, opts, builds)
	if err != nil {
		return nil, err
	}
	if pp == nil {
		// Not partitionable. If the leaf scan was already opened to probe
		// its capability, hand it to the sequential path — a table's
		// DatagenFunc is invoked once per scan, never twice.
		return executeColumnarFrom(db, plan, opts, fallback, builds)
	}
	return pp.run(workers, opts)
}

// joinStage is one hash join of the probe spine: the shared read-only
// build state plus what a worker needs to instantiate its probe iterator.
type joinStage struct {
	jb        *colJoinBuild
	leftKey   int
	probeCols int
	probePop  []int     // populated columns of the stage's probe-side batches
	outNeed   []int     // output columns the stage materializes
	node      *ExecNode // real (merged) node
}

// parallelPlan is a plan opened for morsel-driven execution: the probe
// spine decomposed into scan → optional filter → join stages (innermost
// first), with all build sides already consumed into shared arenas and
// required-column sets resolved top-down.
type parallelPlan struct {
	src      parallel.Source
	scanNeed []int // projection pushed into each morsel's scan
	scanCols int   // scan width
	scanNode *ExecNode

	filterPn   *PlanNode // nil when the scan is unfiltered
	filterNode *ExecNode

	stages []joinStage // innermost (nearest the scan) first

	agg     bool
	aggNode *ExecNode

	// Grouped aggregation: each worker folds its morsels' spine output into
	// a private groupAggState (partial aggregates over the shared build
	// arenas); partials are merged in worker order and sorted, so the
	// grouped result is byte-identical to sequential execution.
	groupPn   *PlanNode
	groupNode *ExecNode

	root    *ExecNode
	width   int   // output width of the spine top (below any aggregate)
	topNeed []int // populated columns of the spine top's batches
}

// spineNodes lists the real probe-spine ExecNodes in merge order.
func (pp *parallelPlan) spineNodes() []*ExecNode {
	nodes := []*ExecNode{pp.scanNode}
	if pp.filterNode != nil {
		nodes = append(nodes, pp.filterNode)
	}
	for i := range pp.stages {
		nodes = append(nodes, pp.stages[i].node)
	}
	return nodes
}

// openParallel decomposes the plan into probe spine + build sides. A nil
// parallelPlan (with nil error) means the plan is not morsel-partitionable
// — the leaf scan's source lacks the parallel.Source contract or the
// spine has an unexpected shape — and the caller must fall back to
// sequential execution; the returned scanOverride then carries the
// already-opened leaf source, if any, so it is reused rather than opened
// a second time.
func openParallel(db *Database, plan *Plan, opts ExecOptions, builds buildCache) (*parallelPlan, *scanOverride, error) {
	pp := &parallelPlan{}
	pn := plan.Root
	switch pn.Op {
	case OpAggregate:
		pp.agg = true
		pn = pn.Children[0]
	case OpGroupAgg:
		pp.groupPn = pn
		pn = pn.Children[0]
	}
	// Collect the probe spine top-down: joins, then an optional filter,
	// then the leaf scan.
	var joinPns []*PlanNode // outermost first
	for pn.Op == OpHashJoin {
		joinPns = append(joinPns, pn)
		pn = pn.Children[0]
	}
	if pn.Op == OpFilter {
		pp.filterPn = pn
		pn = pn.Children[0]
	}
	if pn.Op != OpScan {
		return nil, nil, nil
	}

	// The leaf must expose a partitionable row space before any build-side
	// work is worth doing.
	src, err := db.openBatchScan(pn.Table)
	if err != nil {
		return nil, nil, err
	}
	ps, ok := src.(parallel.Source)
	if !ok {
		return nil, &scanOverride{table: pn.Table, src: src}, nil
	}
	pp.src = ps

	// Required-column analysis, top-down along the spine: samples need the
	// full output, COUNT(*) needs no columns beyond keys and predicates,
	// grouped aggregation exactly its keys and aggregate inputs.
	spineTop := plan.Root
	if pp.agg || pp.groupPn != nil {
		spineTop = spineTop.Children[0]
	}
	var need []int
	switch {
	case pp.groupPn != nil:
		need = pp.groupPn.childNeeds(nil)[0]
	case opts.SampleLimit > 0 && !pp.agg:
		for i := range spineTop.Cols {
			need = append(need, i)
		}
	}
	pp.topNeed = need
	probeNeeds := make([][]int, len(joinPns)) // by joinPns index (outermost first)
	buildNeeds := make([][]int, len(joinPns))
	outNeeds := make([][]int, len(joinPns))
	for i, jpn := range joinPns {
		cn := jpn.childNeeds(need)
		outNeeds[i] = need
		probeNeeds[i], buildNeeds[i] = cn[0], cn[1]
		need = probeNeeds[i]
	}
	if fp := pp.filterPn; fp != nil {
		need = fp.childNeeds(need)[0]
	}
	pp.scanNeed = need
	// The populated set of each stage's probe-side batches: the scan's
	// pushed-down projection for the innermost join (predicate columns ride
	// along in the same physical batch), the inner join's materialized
	// output for the rest.
	probePops := make([][]int, len(joinPns))
	for i := len(joinPns) - 1; i >= 0; i-- {
		if i == len(joinPns)-1 {
			probePops[i] = pp.scanNeed
		} else {
			probePops[i] = outNeeds[i+1]
		}
	}

	// Real ExecNode tree, mirroring openCol's shape exactly.
	pp.scanNode = &ExecNode{Op: OpScan.String(), Table: pn.Table}
	width := len(db.Schema.Table(pn.Table).Columns)
	pp.scanCols = width
	cur := pp.scanNode
	if fp := pp.filterPn; fp != nil {
		table := db.Schema.Table(fp.Pred.Table)
		pp.filterNode = &ExecNode{Op: OpFilter.String(), Table: fp.Pred.Table, PredSQL: fp.Pred.SQL(table), Children: []*ExecNode{cur}}
		cur = pp.filterNode
	}
	// Build sides are consumed innermost-first (the order the sequential
	// executor drains them in); each becomes a shared read-only arena —
	// or is served straight from the prepared build cache.
	for i := len(joinPns) - 1; i >= 0; i-- {
		jpn := joinPns[i]
		var jb *colJoinBuild
		var buildNode *ExecNode
		var bw int
		if pb, ok := builds[jpn]; ok {
			jb = pb.jb
			buildNode = cloneExecNode(pb.node)
			bw = jb.width
		} else {
			buildIt, w, buildPop, bn, err := openCol(db, jpn.Children[1], buildNeeds[i], opts.BatchSize, nil, builds)
			if err != nil {
				return nil, nil, err
			}
			jb = newColJoinBuild(buildIt, w, jpn.RightKey, opts.BatchSize, buildNeeds[i], buildPop)
			buildNode, bw = bn, w
		}
		node := &ExecNode{Op: OpHashJoin.String(), JoinSQL: jpn.JoinSQL, Children: []*ExecNode{cur, buildNode}}
		pp.stages = append(pp.stages, joinStage{
			jb:        jb,
			leftKey:   jpn.LeftKey,
			probeCols: width,
			probePop:  probePops[i],
			outNeed:   outNeeds[i],
			node:      node,
		})
		width += bw
		cur = node
	}
	pp.width = width
	pp.root = cur
	if pp.agg {
		pp.aggNode = &ExecNode{Op: OpAggregate.String(), Children: []*ExecNode{cur}}
		pp.root = pp.aggNode
	}
	if pp.groupPn != nil {
		pp.groupNode = &ExecNode{Op: OpGroupAgg.String(), Children: []*ExecNode{cur}}
		pp.root = pp.groupNode
	}
	return pp, nil, nil
}

// morselRows picks the scheduling granule: bounded above by the default
// morsel size, bounded below by the batch capacity (a morsel smaller than
// one batch would only add setup overhead), and scaled so every worker
// sees several morsels even on small relations.
func morselRows(total int64, workers, batchSize int) int64 {
	if batchSize <= 0 {
		batchSize = batch.DefaultCap
	}
	m := total / int64(workers*4)
	if m > parallel.DefaultMorselRows {
		m = parallel.DefaultMorselRows
	}
	if b := int64(batchSize); m < b {
		m = b
	}
	return m
}

// sampleRun is the samples one worker collected from one morsel, tagged
// with the morsel's row offset so the sequential sample order can be
// reassembled deterministically.
type sampleRun struct {
	lo   int64
	rows [][]int64
}

// workerState is one worker's private accumulation: shadow ExecNodes for
// the spine (merged by summation afterwards), the count of rows the spine
// top produced, morsel-tagged samples, and — for grouped aggregation — the
// worker's partial aggregate state.
type workerState struct {
	shadow []*ExecNode
	rows   int64
	runs   []sampleRun
	group  *groupAggState
}

// run executes the opened plan on the given number of workers and merges
// worker state into the sequential-identical ExecResult.
func (pp *parallelPlan) run(workers int, opts ExecOptions) (*ExecResult, error) {
	total := pp.src.Total()
	size := morselRows(total, workers, opts.BatchSize)
	// A worker beyond the morsel count would build a pipeline only to find
	// the queue empty; clamping costs nothing and changes nothing (the
	// merge is a sum). The clamp depends only on plan and options, so
	// determinism is preserved.
	if n := (total + size - 1) / size; int64(workers) > n {
		workers = int(n)
		if workers < 1 {
			workers = 1
		}
	}
	morsels := parallel.NewMorsels(total, size)
	grouped := pp.groupPn != nil
	collectSamples := opts.SampleLimit > 0 && !pp.agg && !grouped

	states := make([]*workerState, workers)
	for w := range states {
		states[w] = &workerState{}
		if grouped {
			states[w].group = newGroupAggState(pp.groupPn)
		}
	}

	err := parallel.Run(workers, func(w int) error {
		st := states[w]
		// Worker-local columnar pipeline over shadow nodes; the scan source
		// is swapped per morsel, join iterators reset their probe cursors.
		scanShadow := &ExecNode{}
		st.shadow = append(st.shadow, scanShadow)
		scanIt := &colScanIter{cols: pp.scanNeed, width: pp.scanCols, node: scanShadow}
		var cur colIterator = scanIt
		if fp := pp.filterPn; fp != nil {
			filterShadow := &ExecNode{}
			st.shadow = append(st.shadow, filterShadow)
			cur = &colFilterIter{child: cur, m: fp.Pred.Matcher(), node: filterShadow}
		}
		joinIts := make([]*colHashJoinIter, len(pp.stages))
		for i := range pp.stages {
			stage := &pp.stages[i]
			joinShadow := &ExecNode{}
			st.shadow = append(st.shadow, joinShadow)
			ji := newColHashJoinIter(cur, stage.jb, stage.probeCols, stage.leftKey, stage.outNeed, stage.probePop, opts.BatchSize)
			ji.node = joinShadow
			joinIts[i] = ji
			cur = ji
		}
		topPop := pp.topNeed
		if len(pp.stages) == 0 {
			topPop = pp.scanNeed
		}
		b := batch.NewCol(pp.width, opts.BatchSize, topPop)
		for {
			lo, hi, ok := morsels.Next()
			if !ok {
				return nil
			}
			sec := pp.src.Section(lo, hi)
			scanIt.src = sec
			scanIt.proj = asProjector(sec, pp.scanCols)
			for _, ji := range joinIts {
				ji.reset()
			}
			run := sampleRun{lo: lo}
			for cur.Next(b) {
				live := b.Live()
				st.rows += int64(live)
				if st.group != nil {
					st.group.observe(b) // infallible; totals are judged at merge-side finish
				}
				for i := 0; collectSamples && len(run.rows) < opts.SampleLimit && i < live; i++ {
					row := make([]int64, b.Width())
					b.LiveRow(i, row)
					run.rows = append(run.rows, row)
				}
			}
			if len(run.rows) > 0 {
				st.runs = append(st.runs, run)
			}
		}
	})
	if err != nil {
		return nil, err
	}

	// Deterministic merge: per-node sums are schedule-independent, and
	// samples reassemble in morsel (= sequential row) order.
	spine := pp.spineNodes()
	for i, node := range spine {
		var sum int64
		for _, st := range states {
			sum += st.shadow[i].OutRows
		}
		node.OutRows = sum
	}
	var outRows int64
	for _, st := range states {
		outRows += st.rows
	}

	res := &ExecResult{Root: pp.root}
	switch {
	case pp.agg:
		res.Rows = 1
		res.Count = outRows
		pp.aggNode.OutRows = 1
		if opts.SampleLimit > 0 {
			res.Sample = [][]int64{{outRows}}
		}
	case grouped:
		// Fold worker partials in worker order (deterministic sums), sort,
		// and materialize — exactly what the sequential colGroupAggIter
		// emits, so parallel grouped results are byte-identical to it.
		merged := states[0].group
		for _, st := range states[1:] {
			merged.merge(st.group)
		}
		merged.finish() // sorts, and judges SUM/AVG totals
		if merged.err != nil {
			return nil, merged.err
		}
		res.Rows = int64(merged.groups())
		if opts.SampleLimit > 0 {
			items := pp.groupPn.Items
			for i := 0; i < len(merged.order) && i < opts.SampleLimit; i++ {
				g := merged.order[i]
				row := make([]int64, len(items))
				for oc, it := range items {
					row[oc] = merged.value(it, g)
				}
				res.Sample = append(res.Sample, row)
			}
		}
	default:
		res.Rows = outRows
		if collectSamples {
			var runs []sampleRun
			for _, st := range states {
				runs = append(runs, st.runs...)
			}
			sort.Slice(runs, func(i, j int) bool { return runs[i].lo < runs[j].lo })
			for _, r := range runs {
				for _, row := range r.rows {
					if len(res.Sample) >= opts.SampleLimit {
						break
					}
					res.Sample = append(res.Sample, row)
				}
			}
		}
	}
	pp.root.OutRows = res.Rows
	return res, nil
}
