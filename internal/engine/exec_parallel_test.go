package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/sqlkit"
)

// bigStarDatabase stores enough fact rows that small batch sizes split the
// scan into many morsels across workers.
func bigStarDatabase(t *testing.T, factRows int) *Database {
	t.Helper()
	s := starSchema()
	s.Table("fact").RowCount = int64(factRows)
	s.Table("fact").Columns[0].DomainHi = int64(factRows)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(s)
	dim := &Relation{Table: s.Table("dim")}
	for _, row := range [][]int64{{0, 10}, {1, 20}, {2, 30}, {3, 40}} {
		if err := dim.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	fact := &Relation{Table: s.Table("fact")}
	for i := 0; i < factRows; i++ {
		if err := fact.Append([]int64{int64(i), int64(i % 4), int64(i % 10)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.AddRelation(dim); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRelation(fact); err != nil {
		t.Fatal(err)
	}
	return db
}

func mustPlan(t *testing.T, db *Database, sql string) *Plan {
	t.Helper()
	q, err := sqlkit.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	plan, err := BuildPlan(db.Schema, q)
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	return plan
}

func requireIdentical(t *testing.T, label string, got, want *ExecResult) {
	t.Helper()
	if got.Rows != want.Rows || got.Count != want.Count {
		t.Fatalf("%s: rows/count = %d/%d, want %d/%d", label, got.Rows, got.Count, want.Rows, want.Count)
	}
	if !reflect.DeepEqual(got.Sample, want.Sample) {
		t.Fatalf("%s: samples differ:\n got %v\nwant %v", label, got.Sample, want.Sample)
	}
	if !reflect.DeepEqual(got.Root, want.Root) {
		t.Fatalf("%s: exec trees differ:\n got %+v\nwant %+v", label, got.Root, want.Root)
	}
}

// parallelQueries covers every spine shape: bare scan, filtered scan,
// join, filtered join, and COUNT(*) variants of each.
var parallelQueries = []string{
	"SELECT * FROM fact",
	"SELECT COUNT(*) FROM fact",
	"SELECT * FROM fact WHERE q >= 3",
	"SELECT COUNT(*) FROM fact WHERE q >= 3",
	"SELECT * FROM fact, dim WHERE d_fk = d_pk",
	"SELECT COUNT(*) FROM fact, dim WHERE d_fk = d_pk AND a >= 20 AND q < 7",
	"SELECT COUNT(*) FROM fact WHERE q >= 100", // empty result
	// Grouped spines: partial aggregation per worker, deterministic merge.
	"SELECT d_fk, COUNT(*), SUM(q), MIN(q), MAX(q), AVG(q) FROM fact GROUP BY d_fk",
	"SELECT a, COUNT(*) FROM fact, dim WHERE d_fk = d_pk AND q < 7 GROUP BY a",
	"SELECT COUNT(q), SUM(q) FROM fact",
	"SELECT d_fk, SUM(q) FROM fact WHERE q >= 100 GROUP BY d_fk", // empty input
	// Sink stacks over the spine: per-worker sort partials (full and
	// top-K), morsel-ordered LIMIT runs, distinct partials, and their
	// compositions — all byte-identical to sequential at any worker count.
	"SELECT * FROM fact ORDER BY q DESC",
	"SELECT * FROM fact, dim WHERE d_fk = d_pk ORDER BY a DESC, q",
	"SELECT * FROM fact ORDER BY q DESC LIMIT 7 OFFSET 2",
	"SELECT * FROM fact LIMIT 9",
	"SELECT * FROM fact WHERE q >= 3 LIMIT 11 OFFSET 5",
	"SELECT * FROM fact LIMIT 5 OFFSET 100000", // offset past end
	"SELECT * FROM fact LIMIT 0",
	"SELECT COUNT(*) FROM fact LIMIT 1",
	"SELECT DISTINCT q FROM fact",
	"SELECT DISTINCT d_fk, q FROM fact WHERE q >= 3",
	"SELECT DISTINCT q FROM fact ORDER BY q DESC LIMIT 3",
	"SELECT d_fk, COUNT(*) FROM fact GROUP BY d_fk ORDER BY d_fk DESC LIMIT 2 OFFSET 1",
}

// TestExecuteParallelStoredParity holds morsel-parallel execution over
// stored relations to byte-identical results vs the sequential batched
// executor, across worker counts (including oversubscription) and batch
// sizes that force many small morsels.
func TestExecuteParallelStoredParity(t *testing.T) {
	db := bigStarDatabase(t, 5000)
	for _, sql := range parallelQueries {
		plan := mustPlan(t, db, sql)
		for _, size := range []int{0, 3, 64} {
			seqOpts := ExecOptions{SampleLimit: 7, BatchSize: size}
			want, err := executeColumnarFrom(context.Background(), db, plan, seqOpts, nil, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{1, 2, 4, 8} {
				opts := seqOpts
				opts.Parallelism = w
				got, err := ExecuteParallel(db, plan, opts)
				if err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, fmt.Sprintf("%s [batch=%d workers=%d]", sql, size, w), got, want)
			}
		}
	}
}

// TestExecuteParallelFallback routes plans whose scan source cannot be
// partitioned (a caller-supplied datagen closure) through the sequential
// path with identical results — and without invoking the DatagenFunc a
// second time (its contract is one invocation per scan).
func TestExecuteParallelFallback(t *testing.T) {
	db := bigStarDatabase(t, 200)
	rows := db.Relation("fact").Rows
	var opened int
	db.SetDatagen("fact", func() (RowSource, error) {
		opened++
		return &sliceOpaque{rows: rows}, nil
	})
	for _, sql := range []string{
		"SELECT COUNT(*) FROM fact WHERE q >= 3",
		"SELECT * FROM fact",
		// Sink plans fall back the same way: the pre-opened scan is handed
		// to the sequential executor underneath the sink stack.
		"SELECT * FROM fact ORDER BY q DESC LIMIT 3",
		"SELECT DISTINCT q FROM fact",
	} {
		plan := mustPlan(t, db, sql)
		want, err := executeColumnarFrom(context.Background(), db, plan, ExecOptions{SampleLimit: 5}, nil, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		opened = 0
		got, err := ExecuteParallel(db, plan, ExecOptions{SampleLimit: 5, Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, sql+" [fallback]", got, want)
		if opened != 1 {
			t.Fatalf("%s: fallback invoked the datagen func %d times, want 1", sql, opened)
		}
	}
}

// sliceOpaque is a row source that deliberately hides any batch or
// partition capability.
type sliceOpaque struct {
	rows [][]int64
	i    int
}

func (s *sliceOpaque) Next() ([]int64, bool) {
	if s.i >= len(s.rows) {
		return nil, false
	}
	r := s.rows[s.i]
	s.i++
	return r, true
}

func TestExecOptionsValidation(t *testing.T) {
	db := starDatabase(t)
	plan := mustPlan(t, db, "SELECT COUNT(*) FROM fact")
	for _, exec := range []struct {
		name string
		f    func(*Database, *Plan, ExecOptions) (*ExecResult, error)
	}{
		{"Execute", Execute},
		{"ExecuteRows", ExecuteRows},
		{"ExecuteParallel", ExecuteParallel},
	} {
		_, err := exec.f(db, plan, ExecOptions{BatchSize: -1})
		if !errors.Is(err, ErrInvalidOptions) {
			t.Fatalf("%s: BatchSize -1 returned %v, want ErrInvalidOptions", exec.name, err)
		}
	}
}

func TestExecOptionsNormalizeClampsParallelism(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	cases := []struct {
		in, want int
	}{
		{-5, 0},
		{0, 0},
		{max, max},
		{max + 7, max},
	}
	for _, tc := range cases {
		got, err := (ExecOptions{Parallelism: tc.in}).Normalize()
		if err != nil {
			t.Fatalf("Parallelism %d: %v", tc.in, err)
		}
		if got.Parallelism != tc.want {
			t.Fatalf("Parallelism %d normalized to %d, want %d", tc.in, got.Parallelism, tc.want)
		}
	}
	if _, err := (ExecOptions{BatchSize: -3}).Normalize(); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("Normalize(BatchSize -3) = %v, want ErrInvalidOptions", err)
	}
}

// TestExecuteDispatchesOnParallelism checks the wiring: Execute with
// Parallelism >= 1 must produce the same result object shape as the
// sequential default (a smoke check that the dispatch itself is sound).
func TestExecuteDispatchesOnParallelism(t *testing.T) {
	db := bigStarDatabase(t, 1000)
	plan := mustPlan(t, db, "SELECT COUNT(*) FROM fact, dim WHERE d_fk = d_pk AND q >= 2")
	want, err := Execute(db, plan, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Execute(db, plan, ExecOptions{Parallelism: 1, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "dispatch", got, want)
}
