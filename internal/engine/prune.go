package engine

// Predicate pushdown into generation: because a datagen table is a pure
// function of its registered summary, a filter over it can be evaluated
// against the summary *before* any tuple exists. buildPruneCache intersects
// each summary row's per-column value sets with the compiled predicate and
// classifies every filter column per row:
//
//   - pruned:   the row provably contributes nothing (a fixed or unspecced
//     value outside the predicate, a cycling set disjoint from it, or a
//     primary-key range that misses) — the whole row is skipped and its
//     tuples are never generated.
//   - position-compiled: exactly one cycling column is partially restricted
//     (PR 8's provability rule); its matching cycle offsets are computed in
//     closed form (cycle.Ranks) and expanded to the row's matching global
//     positions (cycle.Positions), so only σ's tuples are generated.
//   - residual: anything the summary cannot decide exactly — a second
//     independently restricted cycling column, a duplicate or explicit-pk
//     spec (where the generator paths disagree), or a position set too
//     fragmented to enumerate — keeps a superset of the row's tuples and
//     leaves the full MatchVec filter in place.
//
// The result is a qualifying row-space: an ascending, disjoint list of
// [lo,hi) global-row intervals the scan iterates instead of [0, Total).
// When no row needed a residual the filter operator is dropped entirely
// (absorbed); otherwise the residual filter re-checks the generated rows,
// which is exact because pruning only ever removes provably-failing tuples
// and never reorders the survivors.

import (
	"repro/internal/batch"
	"repro/internal/cycle"
	"repro/internal/synopsis"
	"repro/internal/value"
)

// rowSpaceSource is the capability the pruned scan needs from a datagen
// source: opening an independent sub-source restricted to a set of
// qualifying global-row intervals. generator.Stream implements it
// (SectionSet); sources that don't — paced streams, caller-supplied
// datagen — simply scan unpruned.
type rowSpaceSource interface {
	SectionSet(ivs []value.Interval) batch.Source
}

// scanPrune is the precomputed qualifying row-space for one OpFilter node
// whose child scans a summary-backed datagen table.
type scanPrune struct {
	table    string
	ivs      []value.Interval // qualifying [lo,hi) global-row intervals, ascending, disjoint
	total    int64            // rows in ivs
	pruned   int64            // rel.Total − total: tuples never generated
	skipped  int64            // summary rows excluded entirely
	absorbed bool             // every conjunct proven: drop the filter operator
}

// add appends a qualifying interval, merging adjacency so the row-space
// stays canonical (consecutive fully-qualifying summary rows become one
// interval).
func (pr *scanPrune) add(lo, hi int64) {
	if hi <= lo {
		return
	}
	pr.total += hi - lo
	if k := len(pr.ivs); k > 0 && pr.ivs[k-1].Hi == lo {
		pr.ivs[k-1].Hi = hi
		return
	}
	pr.ivs = append(pr.ivs, value.Ival(lo, hi))
}

// pruneCache maps OpFilter plan nodes to their qualifying row-space. It is
// computed once per plan (at Prepare time for prepared statements) and
// shared by every executor front, so all of them make identical prune
// decisions — a precondition for the byte-parity and span-shape invariants.
type pruneCache map[*PlanNode]*scanPrune

// prunesFor resolves the prune cache for one execution: the opt-out yields
// nil (every lookup misses), a prepared statement passes its cached spaces
// through, and ad-hoc execution computes them fresh.
func prunesFor(db *Database, plan *Plan, opts ExecOptions, cached pruneCache) pruneCache {
	if opts.NoScanPrune {
		return nil
	}
	if cached != nil {
		return cached
	}
	return buildPruneCache(db, plan)
}

// buildPruneCache walks the plan for filter-over-scan shapes on
// summary-backed datagen tables and precomputes each one's qualifying
// row-space. Filters that prune nothing and absorb nothing are left out —
// their scans run exactly as before.
func buildPruneCache(db *Database, plan *Plan) pruneCache {
	prunes := make(pruneCache)
	var walk func(pn *PlanNode)
	walk = func(pn *PlanNode) {
		for _, c := range pn.Children {
			walk(c)
		}
		if pn.Op != OpFilter || len(pn.Children) != 1 || pn.Children[0].Op != OpScan {
			return
		}
		table := pn.Children[0].Table
		if pn.Pred == nil || pn.Pred.Table != table || !db.DatagenEnabled(table) {
			return
		}
		rel := db.Summary(table)
		if rel == nil {
			return
		}
		t := db.Schema.Table(table)
		if t == nil {
			return
		}
		if pr := prunePred(pn, rel, t.PKIndex()); pr != nil {
			prunes[pn] = pr
		}
	}
	walk(plan.Root)
	return prunes
}

// prunePred classifies every summary row of rel against the filter's
// compiled region and assembles the qualifying row-space. Returns nil when
// pruning would change nothing (nothing pruned, nothing absorbed).
func prunePred(pn *PlanNode, rel *synopsis.Relation, pkIdx int) *scanPrune {
	p := pn.Pred
	pr := &scanPrune{table: p.Table, absorbed: true}
	var (
		interBuf value.IntervalSet // S ∩ P scratch
		rankBuf  value.IntervalSet // cycle.Ranks scratch
		posBuf   value.IntervalSet // cycle.Positions scratch
		pkBuf    value.IntervalSet // pk-range ∩ P scratch
		rowBuf   value.IntervalSet // [base, base+n) singleton scratch
		clipBuf  value.IntervalSet // positions ∩ pk restriction scratch
	)
	var base int64
	for j := range rel.Rows {
		row := &rel.Rows[j]
		n := row.Count
		if n == 0 {
			continue
		}
		rowBase := base
		base += n

		var (
			skip   bool
			hard   bool              // some conjunct undecidable: residual needed
			drive  value.IntervalSet // driving cycling column's cycle set
			driveP value.IntervalSet // its predicate set
			pkIvs  value.IntervalSet // direct position restriction from a pk conjunct
		)
		for i, c := range p.Cols {
			P := p.Sets[i]
			// Resolve column c's spec; a duplicate spec means the generator's
			// row-major and columnar paths disagree, so nothing about the
			// column is provable.
			var sp *synopsis.ColSpec
			dup := false
			for si := range row.Specs {
				if row.Specs[si].Col != c {
					continue
				}
				if sp != nil {
					dup = true
					break
				}
				sp = &row.Specs[si]
			}
			if c == pkIdx {
				if sp != nil {
					hard = true // explicit spec on the auto-numbered key
					continue
				}
				// The key auto-numbers this row's tuples [rowBase, rowBase+n):
				// the conjunct restricts positions directly.
				rowBuf = append(rowBuf[:0], value.Ival(rowBase, rowBase+n))
				pkBuf = rowBuf.IntersectInto(pkBuf, P)
				if len(pkBuf) == 0 {
					skip = true
					break
				}
				pkIvs = pkBuf
				continue
			}
			if dup {
				hard = true
				continue
			}
			if sp == nil {
				// Unspecced columns generate 0 on the columnar path.
				if !P.Contains(0) {
					skip = true
					break
				}
				continue
			}
			if sp.Fixed != nil {
				if !P.Contains(*sp.Fixed) {
					skip = true
					break
				}
				continue
			}
			S := sp.Set
			m := S.IntersectLen(P)
			switch {
			case m == 0:
				skip = true
			case m == S.Len():
				// Every cycled value matches: no restriction from this column.
			case drive == nil:
				drive, driveP = S, P
			default:
				// A second independently restricted cycling column: the first
				// one's positions remain a valid superset, the residual filter
				// supplies the conjunction.
				hard = true
			}
			if skip {
				break
			}
		}
		if skip {
			pr.skipped++
			continue
		}
		if hard {
			pr.absorbed = false
		}

		// Assemble this row's qualifying positions: the driving column's
		// closed-form position set if one exists (and stays compact),
		// clipped by any pk restriction.
		lo, hi := rowBase, rowBase+n
		var pos value.IntervalSet
		if drive != nil {
			L := drive.Len()
			interBuf = drive.IntersectInto(interBuf, driveP)
			rankBuf = cycle.Ranks(rankBuf, drive, interBuf)
			cycles := (n + L - 1) / L
			if cycles*int64(len(rankBuf)) > n/8+4 {
				// Enumerating would fragment the row-space beyond the win:
				// keep the whole row and let the residual filter decide.
				pr.absorbed = false
			} else {
				pos = cycle.Positions(posBuf, rowBase, n, L, rankBuf)
				posBuf = pos
			}
		}
		switch {
		case pos != nil && pkIvs != nil:
			clipBuf = pos.IntersectInto(clipBuf, pkIvs)
			pos = clipBuf
		case pos == nil && pkIvs != nil:
			pos = pkIvs
		}
		if pos != nil {
			if len(pos) == 0 {
				pr.skipped++
				continue
			}
			for _, iv := range pos {
				pr.add(iv.Lo, iv.Hi)
			}
			continue
		}
		pr.add(lo, hi)
	}
	pr.pruned = rel.Total - pr.total
	if pr.pruned == 0 && !pr.absorbed {
		return nil // nothing gained: no rows pruned, filter still needed
	}
	return pr
}
