package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/batch"
	"repro/internal/trace"
)

// ExecNode mirrors one plan operator after execution, carrying the observed
// output cardinality. ExecNode trees are the raw material for annotated
// query plans. When the execution is traced, each node also carries its
// span — same tree, timing view — reachable from ExecResult.Trace.
type ExecNode struct {
	Op      string `json:"op"`
	Table   string `json:"table,omitempty"`
	PredSQL string `json:"pred,omitempty"`
	JoinSQL string `json:"join,omitempty"`
	// OutRows is the operator's observed output cardinality. Under scan
	// pruning (prune.go) the invariant is: a SCAN reports the rows it
	// actually generated — the pruned row-space, a pure function of the
	// summary and the predicate, so the number is identical on every
	// execution front and across prepared re-executions — and a residual
	// FILTER reports its survivors. A fully absorbed filter disappears
	// from the tree; the scan's OutRows then equals what the filter's
	// output was unpruned, which is what keeps the execution-mode
	// invariance the parity suites pin.
	OutRows int64 `json:"out_rows"`
	// RowsPruned and SummaryRowsSkipped are set on SCAN nodes whose
	// row-space was pruned: tuples proven non-matching and never
	// generated, and whole summary rows excluded outright.
	RowsPruned         int64       `json:"rows_pruned,omitempty"`
	SummaryRowsSkipped int64       `json:"summary_rows_skipped,omitempty"`
	Children           []*ExecNode `json:"children,omitempty"`

	sp *trace.Span // span mirror when traced, nil otherwise
}

// ExecResult is the outcome of executing a plan.
type ExecResult struct {
	Root *ExecNode // operator tree with observed cardinalities
	// Rows is the number of rows the root produced (for COUNT(*) queries
	// this is 1; see Count).
	Rows int64
	// Count is the aggregate value for COUNT(*) queries, else 0.
	Count int64
	// Sample holds up to ExecOptions.SampleLimit of the root's output rows.
	Sample [][]int64
	// Trace is the per-operator span tree when the execution ran with
	// ExecOptions.Trace, nil otherwise. It mirrors Root's shape, with wall
	// time, rows, batches, and bytes per operator.
	Trace *trace.Span
	// Path names the execution path that answered the query: PathSummary
	// when the summary-direct aggregate fast path did, empty when the
	// regenerating operator pipeline did.
	Path string
	// Approx is set when the execution ran with ExecOptions.Approx and the
	// summary-direct path answered: it reports whether any summary row was
	// estimated rather than proven, with a 95% confidence interval. Nil on
	// the regenerating path (which is always exact).
	Approx *ApproxInfo
}

// PathSummary is ExecResult.Path's value when the summary-direct aggregate
// fast path answered the query without regenerating rows.
const PathSummary = "summary"

// ExecOptions tune execution.
type ExecOptions struct {
	// SampleLimit caps how many output rows are retained in the result.
	SampleLimit int
	// BatchSize overrides the execution batch capacity in rows (<= 0 means
	// batch.DefaultCap, < 0 is rejected by Normalize). Mainly for tests
	// exercising batch boundaries.
	BatchSize int
	// Parallelism selects morsel-driven parallel execution: 0 (the
	// default) runs the sequential batched executor, n >= 1 runs the
	// scan→filter→probe pipeline on n workers (see exec_parallel.go).
	// Execute clamps it into [0, GOMAXPROCS]; ExecuteParallel honors it
	// verbatim so tests can oversubscribe.
	Parallelism int
	// Timeout bounds the execution's wall clock when positive: the
	// context-taking entry points derive a deadline from it (stacked on
	// whatever deadline the caller's context already carries — the
	// earlier one wins) and the query fails with context.DeadlineExceeded
	// at the next batch boundary after it expires. Zero means no
	// engine-imposed deadline; negative is rejected by Normalize. The
	// ctx-free wrappers honor it too, so a plain Execute with a Timeout
	// is self-limiting.
	Timeout time.Duration
	// Trace enables per-operator span recording: the result carries a span
	// tree (ExecResult.Trace) mirroring the annotated plan with wall time,
	// rows, batches, and bytes per operator. Off (the default), the engine
	// records nothing and the steady-state zero-allocation contract is
	// byte-for-byte the untraced one; on, recording writes into spans
	// preallocated at open time, so even traced ExecuteIn steady state
	// allocates nothing per query.
	Trace bool
	// Approx permits the summary-direct fast path to answer global (non
	// GROUP BY) aggregates whose summary rows are not all provably exact,
	// estimating the remainder under a cross-column independence
	// assumption. The result then carries ApproxInfo with a 95% confidence
	// interval on the matching-row count. Off (the default), only provably
	// exact answers take the fast path and everything else regenerates.
	Approx bool
	// NoSummaryAgg forces the regenerating pipeline even when the
	// summary-direct fast path could answer exactly. Verification flows
	// comparing full operator trees and benchmarks measuring regeneration
	// set it; normal queries should not.
	NoSummaryAgg bool
	// NoScanPrune disables predicate pushdown into generation (prune.go):
	// scans iterate the full [0, Total) row-space and every filter runs as
	// a MatchVec operator. The pruned path is byte-identical by
	// construction; this opt-out exists for the parity suites and
	// benchmarks that measure the unpruned baseline.
	NoScanPrune bool
}

// ErrInvalidOptions tags ExecOptions validation failures; test with
// errors.Is.
var ErrInvalidOptions = errors.New("invalid exec options")

// validate rejects option values that would otherwise silently misbehave.
func (o ExecOptions) validate() error {
	if o.BatchSize < 0 {
		return fmt.Errorf("engine: %w: BatchSize %d is negative", ErrInvalidOptions, o.BatchSize)
	}
	if o.Timeout < 0 {
		return fmt.Errorf("engine: %w: Timeout %v is negative", ErrInvalidOptions, o.Timeout)
	}
	return nil
}

// Normalize validates the options and clamps Parallelism into
// [0, GOMAXPROCS], returning the normalized copy. A typed error (wrapping
// ErrInvalidOptions) reports values with no sensible interpretation.
func (o ExecOptions) Normalize() (ExecOptions, error) {
	if err := o.validate(); err != nil {
		return o, err
	}
	if o.Parallelism < 0 {
		o.Parallelism = 0
	}
	if max := runtime.GOMAXPROCS(0); o.Parallelism > max {
		o.Parallelism = max
	}
	return o, nil
}

// Execute runs a plan against the database and returns the annotated
// operator tree. Scans honor each table's datagen setting, so the same call
// serves both stored and dataless execution. Execution is columnar with
// projection pushdown and selection vectors (see exec_col.go); with
// opts.Parallelism >= 1 it is also morsel-parallel (see exec_parallel.go),
// with results byte-identical to the sequential path. ExecuteRows is the
// row-pivot reference front over the same operators and produces identical
// results. Execute is ExecuteContext over context.Background().
func Execute(db *Database, plan *Plan, opts ExecOptions) (*ExecResult, error) {
	return ExecuteContext(context.Background(), db, plan, opts)
}

// ExecuteContext is Execute under a context: cancellation (and
// opts.Timeout, stacked onto any deadline ctx already carries) is observed
// cooperatively at batch boundaries, and a stopped query returns
// context.Canceled or context.DeadlineExceeded — identically on the
// sequential and parallel paths, with no goroutine left behind.
func ExecuteContext(ctx context.Context, db *Database, plan *Plan, opts ExecOptions) (*ExecResult, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	ctx, cancel := withTimeout(ctx, opts.Timeout)
	defer cancel()
	if opts.Parallelism >= 1 {
		return executeParallelFrom(ctx, db, plan, opts, nil, nil)
	}
	return executeColumnarFrom(ctx, db, plan, opts, nil, nil, nil)
}

// ExecuteRows runs a plan and surfaces its output one row at a time: a thin
// row-pivot adapter over the columnar operator pipeline. There is no second
// operator set behind it — the pivot drives the very same iterators Execute
// drives and transposes each live batch row out — so it is kept as the
// executable reference front the batch-driven paths are pinned against: any
// divergence between Execute, ExecuteParallel, or Prepared.ExecuteIn and
// this path is a bug in batch driving, not in operator semantics.
func ExecuteRows(db *Database, plan *Plan, opts ExecOptions) (*ExecResult, error) {
	return ExecuteRowsContext(context.Background(), db, plan, opts)
}

// ExecuteRowsContext is ExecuteRows under a context, with the same
// batch-boundary cancellation contract as ExecuteContext.
func ExecuteRowsContext(ctx context.Context, db *Database, plan *Plan, opts ExecOptions) (*ExecResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	ctx, cancel := withTimeout(ctx, opts.Timeout)
	defer cancel()
	ctl := &execCtl{ctx: ctx}
	if opts.Trace {
		ctl.rec = trace.NewRecorder(countPlanNodes(plan.Root))
	}
	if res, ok, err := trySummaryAgg(ctl, db, plan, opts); ok {
		return res, err
	}
	ctl.prunes = prunesFor(db, plan, opts, nil)
	it, width, pop, node, err := openCol(db, plan.Root, rowNeed(plan), opts.BatchSize, nil, nil, ctl)
	if err != nil {
		return nil, err
	}
	res := &ExecResult{Root: node, Trace: node.sp}
	b := batch.NewCol(width, opts.BatchSize, pop)
	row := make([]int64, width)
	agg := plan.countStar()
	for !ctl.stopped() && it.Next(b) {
		live := b.Live()
		for i := 0; i < live; i++ {
			b.LiveRow(i, row)
			res.Rows++
			if opts.SampleLimit > 0 && len(res.Sample) < opts.SampleLimit {
				res.Sample = append(res.Sample, append([]int64(nil), row...))
			}
			if agg {
				res.Count = row[0]
			}
		}
	}
	node.OutRows = res.Rows
	if ctl.err != nil {
		return nil, ctl.err
	}
	if err := it.deferredErr(); err != nil {
		return nil, err
	}
	return res, nil
}

// rowNeed is the column set the row pivot must materialize: every root
// output column (rows are whole by definition), or just the count column
// for COUNT(*) plans.
func rowNeed(plan *Plan) []int {
	if plan.countStar() {
		return []int{0}
	}
	return allCols(len(plan.Root.Cols))
}
