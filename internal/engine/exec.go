package engine

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"

	"repro/internal/sqlkit"
)

// ExecNode mirrors one plan operator after execution, carrying the observed
// output cardinality. ExecNode trees are the raw material for annotated
// query plans.
type ExecNode struct {
	Op       string      `json:"op"`
	Table    string      `json:"table,omitempty"`
	PredSQL  string      `json:"pred,omitempty"`
	JoinSQL  string      `json:"join,omitempty"`
	OutRows  int64       `json:"out_rows"`
	Children []*ExecNode `json:"children,omitempty"`
}

// ExecResult is the outcome of executing a plan.
type ExecResult struct {
	Root *ExecNode // operator tree with observed cardinalities
	// Rows is the number of rows the root produced (for COUNT(*) queries
	// this is 1; see Count).
	Rows int64
	// Count is the aggregate value for COUNT(*) queries, else 0.
	Count int64
	// Sample holds up to ExecOptions.SampleLimit of the root's output rows.
	Sample [][]int64
}

// ExecOptions tune execution.
type ExecOptions struct {
	// SampleLimit caps how many output rows are retained in the result.
	SampleLimit int
	// BatchSize overrides the execution batch capacity in rows (<= 0 means
	// batch.DefaultCap, < 0 is rejected by Normalize). Mainly for tests
	// exercising batch boundaries.
	BatchSize int
	// Parallelism selects morsel-driven parallel execution: 0 (the
	// default) runs the sequential batched executor, n >= 1 runs the
	// scan→filter→probe pipeline on n workers (see exec_parallel.go).
	// Execute clamps it into [0, GOMAXPROCS]; ExecuteParallel honors it
	// verbatim so tests can oversubscribe.
	Parallelism int
}

// ErrInvalidOptions tags ExecOptions validation failures; test with
// errors.Is.
var ErrInvalidOptions = errors.New("invalid exec options")

// validate rejects option values that would otherwise silently misbehave.
func (o ExecOptions) validate() error {
	if o.BatchSize < 0 {
		return fmt.Errorf("engine: %w: BatchSize %d is negative", ErrInvalidOptions, o.BatchSize)
	}
	return nil
}

// Normalize validates the options and clamps Parallelism into
// [0, GOMAXPROCS], returning the normalized copy. A typed error (wrapping
// ErrInvalidOptions) reports values with no sensible interpretation.
func (o ExecOptions) Normalize() (ExecOptions, error) {
	if err := o.validate(); err != nil {
		return o, err
	}
	if o.Parallelism < 0 {
		o.Parallelism = 0
	}
	if max := runtime.GOMAXPROCS(0); o.Parallelism > max {
		o.Parallelism = max
	}
	return o, nil
}

// Execute runs a plan against the database and returns the annotated
// operator tree. Scans honor each table's datagen setting, so the same call
// serves both stored and dataless execution. Execution is columnar with
// projection pushdown and selection vectors (see exec_col.go); with
// opts.Parallelism >= 1 it is also morsel-parallel (see exec_parallel.go),
// with results byte-identical to the sequential path. ExecuteRows is the
// row-at-a-time reference path and produces identical results.
func Execute(db *Database, plan *Plan, opts ExecOptions) (*ExecResult, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	if opts.Parallelism >= 1 {
		return ExecuteParallel(db, plan, opts)
	}
	return executeColumnar(db, plan, opts)
}

// ExecuteRows runs a plan one row at a time through pipelined iterators.
// It is the executable specification the batched path is tested against.
func ExecuteRows(db *Database, plan *Plan, opts ExecOptions) (*ExecResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	it, node, err := open(db, plan.Root)
	if err != nil {
		return nil, err
	}
	res := &ExecResult{Root: node}
	for {
		row, ok := it.Next()
		if !ok {
			break
		}
		res.Rows++
		if opts.SampleLimit > 0 && len(res.Sample) < opts.SampleLimit {
			res.Sample = append(res.Sample, append([]int64(nil), row...))
		}
		if plan.Root.Op == OpAggregate {
			res.Count = row[0]
		}
	}
	node.OutRows = res.Rows
	if err := rowIterErr(it); err != nil {
		return nil, err
	}
	return res, nil
}

type iterator interface {
	Next() ([]int64, bool)
}

// rowIterErr surfaces a deferred execution error (aggregate overflow) from
// the root iterator; only the group aggregate, always the root, can fail
// after open.
func rowIterErr(it iterator) error {
	if c, ok := it.(*countIter); ok {
		it = c.src
	}
	if g, ok := it.(*groupAggIter); ok {
		return g.err
	}
	return nil
}

// open builds the iterator tree and its ExecNode mirror. Counts for inner
// nodes are accumulated by counting iterators as rows flow; build sides of
// hash joins are counted at build time.
func open(db *Database, pn *PlanNode) (iterator, *ExecNode, error) {
	switch pn.Op {
	case OpScan:
		src, err := db.openScan(pn.Table)
		if err != nil {
			return nil, nil, err
		}
		node := &ExecNode{Op: pn.Op.String(), Table: pn.Table}
		return &countIter{src: src, node: node}, node, nil

	case OpFilter:
		child, childNode, err := open(db, pn.Children[0])
		if err != nil {
			return nil, nil, err
		}
		table := db.Schema.Table(pn.Pred.Table)
		node := &ExecNode{Op: pn.Op.String(), Table: pn.Pred.Table, PredSQL: pn.Pred.SQL(table), Children: []*ExecNode{childNode}}
		return &countIter{src: &filterIter{child: child, pn: pn}, node: node}, node, nil

	case OpHashJoin:
		probe, probeNode, err := open(db, pn.Children[0])
		if err != nil {
			return nil, nil, err
		}
		build, buildNode, err := open(db, pn.Children[1])
		if err != nil {
			return nil, nil, err
		}
		node := &ExecNode{Op: pn.Op.String(), JoinSQL: pn.JoinSQL, Children: []*ExecNode{probeNode, buildNode}}
		return &countIter{src: newHashJoinIter(probe, build, pn), node: node}, node, nil

	case OpAggregate:
		child, childNode, err := open(db, pn.Children[0])
		if err != nil {
			return nil, nil, err
		}
		node := &ExecNode{Op: pn.Op.String(), Children: []*ExecNode{childNode}}
		return &countIter{src: &countStarIter{child: child}, node: node}, node, nil

	case OpGroupAgg:
		child, childNode, err := open(db, pn.Children[0])
		if err != nil {
			return nil, nil, err
		}
		node := &ExecNode{Op: pn.Op.String(), Children: []*ExecNode{childNode}}
		return &countIter{src: &groupAggIter{child: child, pn: pn}, node: node}, node, nil

	default:
		return nil, nil, fmt.Errorf("engine: unknown operator %v", pn.Op)
	}
}

// countIter counts the rows flowing out of an operator into its ExecNode.
type countIter struct {
	src  iterator
	node *ExecNode
}

func (c *countIter) Next() ([]int64, bool) {
	row, ok := c.src.Next()
	if ok {
		c.node.OutRows++
	}
	return row, ok
}

type filterIter struct {
	child iterator
	pn    *PlanNode
}

func (f *filterIter) Next() ([]int64, bool) {
	for {
		row, ok := f.child.Next()
		if !ok {
			return nil, false
		}
		if f.pn.Pred.Match(row) {
			return row, true
		}
	}
}

type hashJoinIter struct {
	probe    iterator
	leftKey  int
	buildMap map[int64][][]int64

	// pending rows for the current probe row
	cur     []int64
	matches [][]int64
	mi      int
}

// newHashJoinIter fully consumes the build side into a hash map keyed by
// the build key. Build rows are copied: iterator sources (datagen streams
// in particular) reuse their row buffers, so retaining them verbatim would
// alias every map entry to the same storage.
func newHashJoinIter(probe, build iterator, pn *PlanNode) *hashJoinIter {
	m := make(map[int64][][]int64)
	for {
		row, ok := build.Next()
		if !ok {
			break
		}
		k := row[pn.RightKey]
		m[k] = append(m[k], append([]int64(nil), row...))
	}
	return &hashJoinIter{probe: probe, leftKey: pn.LeftKey, buildMap: m}
}

func (h *hashJoinIter) Next() ([]int64, bool) {
	for {
		if h.mi < len(h.matches) {
			b := h.matches[h.mi]
			h.mi++
			out := make([]int64, 0, len(h.cur)+len(b))
			out = append(out, h.cur...)
			out = append(out, b...)
			return out, true
		}
		row, ok := h.probe.Next()
		if !ok {
			return nil, false
		}
		h.cur = row
		h.matches = h.buildMap[row[h.leftKey]]
		h.mi = 0
	}
}

// groupAggIter is the row-at-a-time reference GROUP BY operator — the
// executable specification the vectorized colGroupAggIter is pinned to. It
// drains its child into per-group accumulators keyed by the encoded key
// tuple, then emits one row per group, sorted ascending by key tuple, each
// row laid out in select-list order. Aggregate semantics (AVG as exact
// int64 sum + count with truncated quotient, SUM/AVG overflow detection,
// empty-global-group identities) match groupAggState exactly.
type groupAggIter struct {
	child iterator
	pn    *PlanNode

	done bool
	rows [][]int64 // finalized output rows in deterministic order
	i    int
	err  error
}

func (g *groupAggIter) Next() ([]int64, bool) {
	if !g.done {
		g.drain()
		g.done = true
	}
	if g.err != nil || g.i >= len(g.rows) {
		return nil, false
	}
	row := g.rows[g.i]
	g.i++
	return row, true
}

func (g *groupAggIter) drain() {
	type group struct {
		key    []int64
		count  int64
		accs   []int64
		accsHi []int64 // SUM/AVG high words (128-bit exact sums)
	}
	pn := g.pn
	byKey := make(map[string]*group)
	var groups []*group
	newGroup := func(key []int64) *group {
		grp := &group{key: key, accs: make([]int64, len(pn.Aggs)), accsHi: make([]int64, len(pn.Aggs))}
		for ai, spec := range pn.Aggs {
			switch spec.Fn {
			case sqlkit.AggMin:
				grp.accs[ai] = math.MaxInt64
			case sqlkit.AggMax:
				grp.accs[ai] = math.MinInt64
			}
		}
		groups = append(groups, grp)
		return grp
	}
	if len(pn.GroupBy) == 0 {
		newGroup(nil)
	}
	keyBytes := make([]byte, 8*len(pn.GroupBy))
	for {
		row, ok := g.child.Next()
		if !ok {
			break
		}
		var grp *group
		if len(pn.GroupBy) == 0 {
			grp = groups[0]
		} else {
			for ki, c := range pn.GroupBy {
				v := uint64(row[c])
				for b := 0; b < 8; b++ {
					keyBytes[8*ki+b] = byte(v >> (8 * b))
				}
			}
			grp = byKey[string(keyBytes)]
			if grp == nil {
				key := make([]int64, len(pn.GroupBy))
				for ki, c := range pn.GroupBy {
					key[ki] = row[c]
				}
				grp = newGroup(key)
				byKey[string(keyBytes)] = grp
			}
		}
		grp.count++
		for ai, spec := range pn.Aggs {
			if spec.Col < 0 {
				continue
			}
			v := row[spec.Col]
			switch spec.Fn {
			case sqlkit.AggSum, sqlkit.AggAvg:
				add128(&grp.accs[ai], &grp.accsHi[ai], v)
			case sqlkit.AggMin:
				if v < grp.accs[ai] {
					grp.accs[ai] = v
				}
			case sqlkit.AggMax:
				if v > grp.accs[ai] {
					grp.accs[ai] = v
				}
			}
		}
	}
	sort.Slice(groups, func(i, j int) bool {
		a, b := groups[i].key, groups[j].key
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	// Judge SUM/AVG totals exactly like groupAggState.finish: the exact
	// 128-bit total must fit int64.
	for _, grp := range groups {
		for ai, spec := range pn.Aggs {
			if spec.Fn != sqlkit.AggSum && spec.Fn != sqlkit.AggAvg {
				continue
			}
			if !sum128Fits(grp.accs[ai], grp.accsHi[ai]) {
				g.err = fmt.Errorf("engine: %w: %s total exceeds int64", ErrAggOverflow, spec.Fn)
				return
			}
		}
	}
	for _, grp := range groups {
		out := make([]int64, len(pn.Items))
		for oc, it := range pn.Items {
			if it.Agg < 0 {
				out[oc] = grp.key[it.Key]
				continue
			}
			switch pn.Aggs[it.Agg].Fn {
			case sqlkit.AggCount:
				out[oc] = grp.count
			case sqlkit.AggAvg:
				if grp.count > 0 {
					out[oc] = grp.accs[it.Agg] / grp.count
				}
			default:
				if grp.count > 0 {
					out[oc] = grp.accs[it.Agg]
				}
			}
		}
		g.rows = append(g.rows, out)
	}
}

type countStarIter struct {
	child iterator
	done  bool
}

func (c *countStarIter) Next() ([]int64, bool) {
	if c.done {
		return nil, false
	}
	var n int64
	for {
		_, ok := c.child.Next()
		if !ok {
			break
		}
		n++
	}
	c.done = true
	return []int64{n}, true
}
