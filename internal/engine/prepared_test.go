package engine

import (
	"testing"
)

// TestPreparedParity holds Prepared.Execute — sequential and parallel,
// repeated on one Prepared — to the results of a fresh Execute: shared
// build arenas and cloned build annotations must change nothing.
func TestPreparedParity(t *testing.T) {
	db := starDatabase(t)
	for _, sql := range parityQueries {
		opts := ExecOptions{SampleLimit: 5, BatchSize: 3}
		want := execWithf(t, db, sql, opts, Execute)
		prep, err := Prepare(db, mustPlan(t, db, sql), opts)
		if err != nil {
			t.Fatalf("prepare %q: %v", sql, err)
		}
		for round := 0; round < 3; round++ {
			got, err := prep.Execute(opts)
			if err != nil {
				t.Fatalf("prepared exec %q round %d: %v", sql, round, err)
			}
			requireEqualResults(t, sql, got, want)
		}
		popts := opts
		popts.Parallelism = 2
		wantPar := execWithf(t, db, sql, popts, Execute)
		gotPar, err := prep.Execute(popts)
		if err != nil {
			t.Fatalf("prepared parallel %q: %v", sql, err)
		}
		requireEqualResults(t, sql+" [parallel]", gotPar, wantPar)
	}
}

// TestExecuteInReuse holds the state-reusing execution path to the fresh
// path across repeated runs: rewound scans, recycled batches, and recycled
// ExecNodes must reproduce the result exactly, including after an options
// change mid-stream (which rebuilds the state).
func TestExecuteInReuse(t *testing.T) {
	db := starDatabase(t)
	for _, sql := range parityQueries {
		want := execWithf(t, db, sql, ExecOptions{SampleLimit: 5}, Execute)
		prep, err := Prepare(db, mustPlan(t, db, sql), ExecOptions{})
		if err != nil {
			t.Fatalf("prepare %q: %v", sql, err)
		}
		var st ExecState
		for round := 0; round < 3; round++ {
			got, err := prep.ExecuteIn(&st, ExecOptions{SampleLimit: 5})
			if err != nil {
				t.Fatalf("ExecuteIn %q round %d: %v", sql, round, err)
			}
			requireEqualResults(t, sql, got, want)
		}
		// Option change invalidates and rebuilds the cached state.
		want2 := execWithf(t, db, sql, ExecOptions{SampleLimit: 2, BatchSize: 2}, Execute)
		got2, err := prep.ExecuteIn(&st, ExecOptions{SampleLimit: 2, BatchSize: 2})
		if err != nil {
			t.Fatalf("ExecuteIn %q after opts change: %v", sql, err)
		}
		requireEqualResults(t, sql+" [opts change]", got2, want2)
	}
}

// TestExecuteInZeroAllocStored pins the zero-allocation contract on stored
// relations: after warmup, a scan→filter→count execution through ExecuteIn
// allocates nothing.
func TestExecuteInZeroAllocStored(t *testing.T) {
	db := starDatabase(t)
	prep, err := Prepare(db, mustPlan(t, db, "SELECT COUNT(*) FROM fact WHERE q >= 3"), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var st ExecState
	if _, err := prep.ExecuteIn(&st, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := prep.ExecuteIn(&st, ExecOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ExecuteIn allocates %.2f objects per run, want 0", allocs)
	}
}

// execWithf mirrors the parity helpers with an explicit executor func.
func execWithf(t *testing.T, db *Database, sql string, opts ExecOptions,
	f func(*Database, *Plan, ExecOptions) (*ExecResult, error)) *ExecResult {
	t.Helper()
	res, err := f(db, mustPlan(t, db, sql), opts)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}
