// Package engine is Hydra's in-memory relational engine substrate. It plays
// the role PostgreSQL v9.3 plays in the paper: it executes the SPJ workload
// at the client site to produce annotated query plans, re-executes it at the
// vendor site for verification, and supports replacing a table's scan with a
// dynamic-regeneration source (the paper's "datagen" relation property) so
// queries run against tables holding zero stored rows.
//
// Rows are slices of integer codes (see package schema for the coding); all
// operators are pipelined iterators except the hash-join build side.
package engine

import (
	"fmt"

	"repro/internal/batch"
	"repro/internal/schema"
	"repro/internal/synopsis"
)

// RowSource yields coded rows one at a time. Next returns ok=false when the
// source is exhausted.
type RowSource interface {
	Next() (row []int64, ok bool)
}

// DatagenFunc opens a fresh dynamic-regeneration stream for a table. It is
// invoked once per scan of the table.
type DatagenFunc func() (RowSource, error)

// Relation is a stored table: the schema plus materialized coded rows.
type Relation struct {
	Table *schema.Table
	Rows  [][]int64
}

// Append adds a row after checking arity.
func (r *Relation) Append(row []int64) error {
	if len(row) != len(r.Table.Columns) {
		return fmt.Errorf("engine: relation %s: row arity %d, want %d", r.Table.Name, len(row), len(r.Table.Columns))
	}
	r.Rows = append(r.Rows, row)
	return nil
}

// Database holds stored relations and per-table datagen overrides.
type Database struct {
	Schema    *schema.Schema
	rels      map[string]*Relation
	datagen   map[string]DatagenFunc
	summaries map[string]*synopsis.Relation
}

// NewDatabase creates an empty database over the schema.
func NewDatabase(s *schema.Schema) *Database {
	return &Database{
		Schema:    s,
		rels:      make(map[string]*Relation),
		datagen:   make(map[string]DatagenFunc),
		summaries: make(map[string]*synopsis.Relation),
	}
}

// AddRelation registers a stored relation for a schema table.
func (db *Database) AddRelation(rel *Relation) error {
	if db.Schema.Table(rel.Table.Name) == nil {
		return fmt.Errorf("engine: table %s not in schema", rel.Table.Name)
	}
	db.rels[rel.Table.Name] = rel
	return nil
}

// Relation returns the stored relation for a table, or nil.
func (db *Database) Relation(name string) *Relation { return db.rels[name] }

// SetDatagen enables the dataless "datagen" property for a table: scans of
// the table stream rows from fn instead of stored data. Passing nil disables
// it.
func (db *Database) SetDatagen(table string, fn DatagenFunc) {
	if fn == nil {
		delete(db.datagen, table)
		return
	}
	db.datagen[table] = fn
}

// DatagenEnabled reports whether the table scans via dynamic regeneration.
func (db *Database) DatagenEnabled(table string) bool {
	_, ok := db.datagen[table]
	return ok
}

// SetSummary registers the relation summary a table's datagen scans expand,
// unlocking the summary-direct aggregate fast path (summaryagg.go): provably
// exact aggregates are then answered in O(summary rows) without generating a
// single tuple. Register a summary only when the table's scans regenerate
// from exactly that summary at full speed — a paced or caller-supplied
// datagen source must not register one, since queries answered
// summary-directly bypass the scan entirely. Passing nil unregisters.
func (db *Database) SetSummary(table string, rel *synopsis.Relation) {
	if rel == nil {
		delete(db.summaries, table)
		return
	}
	db.summaries[table] = rel
}

// Summary returns the registered relation summary for a table, or nil.
func (db *Database) Summary(table string) *synopsis.Relation { return db.summaries[table] }

// openScan returns a row source for the table: the datagen stream when
// enabled, otherwise a cursor over stored rows.
func (db *Database) openScan(table string) (RowSource, error) {
	if fn, ok := db.datagen[table]; ok {
		return fn()
	}
	rel := db.rels[table]
	if rel == nil {
		return nil, fmt.Errorf("engine: table %s has neither stored rows nor datagen", table)
	}
	return &sliceSource{rows: rel.Rows}, nil
}

// openBatchScan returns a batch source for the table: batch-capable
// sources (the generator's Stream, its Paced wrapper, stored relations)
// are used directly, any other datagen source is adapted row by row.
func (db *Database) openBatchScan(table string) (batch.Source, error) {
	src, err := db.openScan(table)
	if err != nil {
		return nil, err
	}
	if bs, ok := src.(batch.Source); ok {
		return bs, nil
	}
	return &rowBatchSource{src: src}, nil
}

type sliceSource struct {
	rows [][]int64
	i    int
}

func (s *sliceSource) Next() ([]int64, bool) {
	if s.i >= len(s.rows) {
		return nil, false
	}
	r := s.rows[s.i]
	s.i++
	return r, true
}

// NextBatch copies stored rows into dst, implementing batch.Source.
func (s *sliceSource) NextBatch(dst *batch.Batch) bool {
	dst.Reset()
	for !dst.Full() && s.i < len(s.rows) {
		copy(dst.Append(), s.rows[s.i])
		s.i++
	}
	return dst.Len() > 0
}

// NextColBatch transposes stored rows into dst's projected columns,
// implementing batch.ColProjector: only the requested columns are read or
// written, mirroring the generator's projection pushdown.
func (s *sliceSource) NextColBatch(dst *batch.ColBatch, cols []int) bool {
	dst.Reset()
	n := len(s.rows) - s.i
	if n <= 0 {
		return false
	}
	if n > dst.Cap() {
		n = dst.Cap()
	}
	dst.SetLen(n)
	rows := s.rows[s.i : s.i+n]
	for _, c := range cols {
		out := dst.Col(c)
		for i, row := range rows {
			out[i] = row[c]
		}
	}
	s.i += n
	return true
}

// SeekRow repositions the cursor to row i (clamped), so prepared
// executions rewind a stored scan without reopening it.
func (s *sliceSource) SeekRow(i int64) {
	if i < 0 {
		i = 0
	}
	if n := int64(len(s.rows)); i > n {
		i = n
	}
	s.i = int(i)
}

// Total returns the number of stored rows, implementing (with Section) the
// parallel.Source contract so stored relations are morsel-partitionable
// like generator streams.
func (s *sliceSource) Total() int64 { return int64(len(s.rows)) }

// Section opens an independent cursor over rows [lo, hi).
func (s *sliceSource) Section(lo, hi int64) batch.Source {
	n := int64(len(s.rows))
	if lo < 0 {
		lo = 0
	}
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	if hi < lo {
		hi = lo
	}
	return &sliceSource{rows: s.rows[lo:hi]}
}

// rowBatchSource adapts a row-at-a-time source to batch.Source for datagen
// functions supplied by callers outside this module.
type rowBatchSource struct {
	src RowSource
}

func (a *rowBatchSource) NextBatch(dst *batch.Batch) bool {
	dst.Reset()
	for !dst.Full() {
		row, ok := a.src.Next()
		if !ok {
			break
		}
		copy(dst.Append(), row)
	}
	return dst.Len() > 0
}
