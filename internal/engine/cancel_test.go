package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/batch"
)

// slowGen is a deterministic, partitionable datagen source for the fact
// table: rows are a pure function of their index, every NextBatch may
// sleep (simulating a slow regeneration), and batch number fireAt may
// invoke a hook — the seam the mid-query cancellation tests use to cancel
// a context at an exact, schedule-independent point in the scan.
type slowGen struct {
	total  int64
	delay  time.Duration
	fireAt int64        // NextBatch call number that triggers fire (0 = never)
	fire   func()       // invoked exactly once, from call #fireAt
	calls  atomic.Int64 // NextBatch calls across all sections
}

func (g *slowGen) open() (RowSource, error) { return &slowSection{g: g, hi: g.total}, nil }

func (g *slowGen) reset(fireAt int64, fire func()) {
	g.fireAt = fireAt
	g.fire = fire
	g.calls.Store(0)
}

// slowSection is one [lo, hi) sub-range of a slowGen: a RowSource that is
// also batch-capable and morsel-partitionable, so it exercises the
// sequential and parallel scan paths alike.
type slowSection struct {
	g       *slowGen
	pos, hi int64
}

func (s *slowSection) fillRow(row []int64) {
	row[0] = s.pos
	row[1] = s.pos % 4
	row[2] = s.pos % 10
}

func (s *slowSection) Next() ([]int64, bool) {
	if s.pos >= s.hi {
		return nil, false
	}
	row := make([]int64, 3)
	s.fillRow(row)
	s.pos++
	return row, true
}

func (s *slowSection) NextBatch(dst *batch.Batch) bool {
	if n := s.g.calls.Add(1); s.g.fire != nil && n == s.g.fireAt {
		s.g.fire()
	}
	if s.g.delay > 0 {
		time.Sleep(s.g.delay)
	}
	dst.Reset()
	for !dst.Full() && s.pos < s.hi {
		s.fillRow(dst.Append())
		s.pos++
	}
	return dst.Len() > 0
}

func (s *slowSection) Total() int64 { return s.hi }

func (s *slowSection) Section(lo, hi int64) batch.Source {
	return &slowSection{g: s.g, pos: lo, hi: hi}
}

// slowFactDB returns the star database with fact scans streaming from a
// slowGen of total rows.
func slowFactDB(t *testing.T, total int64, delay time.Duration) (*Database, *slowGen) {
	t.Helper()
	db := starDatabase(t)
	g := &slowGen{total: total, delay: delay}
	db.SetDatagen("fact", g.open)
	return db, g
}

// execFront is one way to run a plan under a context; the cancellation
// contract must hold identically at every front.
type execFront struct {
	name string
	run  func(ctx context.Context, db *Database, plan *Plan, opts ExecOptions) (*ExecResult, error)
}

func contextFronts(t *testing.T) []execFront {
	t.Helper()
	fronts := []execFront{
		{"ExecuteContext", ExecuteContext},
		{"ExecuteRowsContext", ExecuteRowsContext},
	}
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		fronts = append(fronts, execFront{
			fmt.Sprintf("ExecuteParallelContext_w%d", w),
			func(ctx context.Context, db *Database, plan *Plan, opts ExecOptions) (*ExecResult, error) {
				opts.Parallelism = w
				return ExecuteParallelContext(ctx, db, plan, opts)
			},
		})
	}
	fronts = append(fronts,
		execFront{"Prepared.ExecuteContext", func(ctx context.Context, db *Database, plan *Plan, opts ExecOptions) (*ExecResult, error) {
			prep, err := Prepare(db, plan, opts)
			if err != nil {
				return nil, err
			}
			return prep.ExecuteContext(ctx, opts)
		}},
		execFront{"Prepared.ExecuteInContext", func(ctx context.Context, db *Database, plan *Plan, opts ExecOptions) (*ExecResult, error) {
			prep, err := Prepare(db, plan, opts)
			if err != nil {
				return nil, err
			}
			var st ExecState
			return prep.ExecuteInContext(ctx, &st, opts)
		}},
	)
	return fronts
}

// leakCheck fails the test if goroutines outlive the body beyond the
// pre-existing count (with retries: runtime bookkeeping and worker
// teardown are asynchronous).
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			if n := runtime.NumGoroutine(); n <= before {
				return
			} else if time.Now().After(deadline) {
				t.Fatalf("goroutine leak: %d before, %d after cancellations", before, n)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestCancelPreCanceled: an already-canceled context stops every front
// before meaningful work, including hash-join build drains.
func TestCancelPreCanceled(t *testing.T) {
	defer leakCheck(t)()
	db, _ := slowFactDB(t, 1<<20, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, sql := range []string{
		"SELECT COUNT(*) FROM fact WHERE q >= 3",
		// The join's build side is the stored dim table; its probe drain is
		// the canceled part.
		"SELECT COUNT(*) FROM fact, dim WHERE d_fk = d_pk",
	} {
		plan := mustPlan(t, db, sql)
		for _, f := range contextFronts(t) {
			res, err := f.run(ctx, db, plan, ExecOptions{})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%s on %q: pre-canceled ctx returned (%v, %v), want context.Canceled", f.name, sql, res, err)
			}
		}
	}
}

// TestCancelMidQuery cancels at a deterministic point inside the scan (the
// generator's second batch) and requires every front to stop with
// context.Canceled and no result.
func TestCancelMidQuery(t *testing.T) {
	defer leakCheck(t)()
	db, g := slowFactDB(t, 1<<20, 0)
	plan := mustPlan(t, db, "SELECT COUNT(*) FROM fact WHERE q >= 3")
	for _, f := range contextFronts(t) {
		ctx, cancel := context.WithCancel(context.Background())
		g.reset(2, cancel)
		res, err := f.run(ctx, db, plan, ExecOptions{})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: mid-query cancel returned (%v, %v), want context.Canceled", f.name, res, err)
		}
		if res != nil {
			t.Fatalf("%s: canceled query returned a result", f.name)
		}
	}
}

// TestDeadlineUnwindLatency: a 10ms deadline on a workload that would run
// for many seconds must surface context.DeadlineExceeded fast — the
// batch-boundary check bounds the unwind to one batch's work (the
// acceptance bar is 50ms; the test allows 250ms for loaded CI hosts).
func TestDeadlineUnwindLatency(t *testing.T) {
	defer leakCheck(t)()
	// ~1<<20 rows at 1024/batch = 1024 batches × 2ms sleep ≈ 2s of work.
	db, _ := slowFactDB(t, 1<<20, 2*time.Millisecond)
	plan := mustPlan(t, db, "SELECT COUNT(*) FROM fact WHERE q >= 3")
	for _, f := range contextFronts(t) {
		start := time.Now()
		res, err := f.run(context.Background(), db, plan, ExecOptions{Timeout: 10 * time.Millisecond})
		elapsed := time.Since(start)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s: deadline returned (%v, %v), want context.DeadlineExceeded", f.name, res, err)
		}
		if elapsed > 250*time.Millisecond {
			t.Fatalf("%s: 10ms deadline took %v to unwind", f.name, elapsed)
		}
	}
	// A caller-supplied ctx deadline behaves identically to opts.Timeout.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := ExecuteContext(ctx, db, plan, ExecOptions{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ctx deadline returned %v, want context.DeadlineExceeded", err)
	}
}

// TestCancelDuringSinkDrain cancels inside a sort's input drain: the sink
// must not pay finish() for the doomed partial state, and the error must
// still be context.Canceled.
func TestCancelDuringSinkDrain(t *testing.T) {
	defer leakCheck(t)()
	db, g := slowFactDB(t, 1<<20, 0)
	plan := mustPlan(t, db, "SELECT * FROM fact ORDER BY q DESC LIMIT 5")
	for _, f := range contextFronts(t) {
		ctx, cancel := context.WithCancel(context.Background())
		g.reset(2, cancel)
		_, err := f.run(ctx, db, plan, ExecOptions{SampleLimit: 5})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: cancel during sort drain returned %v, want context.Canceled", f.name, err)
		}
	}
}

// TestExecuteInRecoversAfterCancel: a canceled ExecuteInContext leaves the
// reusable state fully usable — the next call on the same state rewinds
// and produces the correct full result, twice (rewind after rewind).
func TestExecuteInRecoversAfterCancel(t *testing.T) {
	const total = 1 << 16
	db, g := slowFactDB(t, total, 0)
	plan := mustPlan(t, db, "SELECT COUNT(*) FROM fact")
	prep, err := Prepare(db, plan, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var st ExecState
	ctx, cancel := context.WithCancel(context.Background())
	g.reset(2, cancel)
	if _, err := prep.ExecuteInContext(ctx, &st, ExecOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ExecuteInContext returned %v, want context.Canceled", err)
	}
	cancel()
	g.reset(0, nil)
	for i := 0; i < 2; i++ {
		res, err := prep.ExecuteIn(&st, ExecOptions{})
		if err != nil {
			t.Fatalf("ExecuteIn after cancel (run %d): %v", i, err)
		}
		if res.Count != total {
			t.Fatalf("ExecuteIn after cancel (run %d): count %d, want %d — cancellation poisoned the state", i, res.Count, total)
		}
	}
}

// TestCancelTimeoutValidation: a negative Timeout is rejected up front on
// every front, tagged ErrInvalidOptions.
func TestCancelTimeoutValidation(t *testing.T) {
	db := starDatabase(t)
	plan := mustPlan(t, db, "SELECT COUNT(*) FROM fact")
	for _, f := range contextFronts(t) {
		_, err := f.run(context.Background(), db, plan, ExecOptions{Timeout: -time.Second})
		if !errors.Is(err, ErrInvalidOptions) {
			t.Fatalf("%s: Timeout -1s returned %v, want ErrInvalidOptions", f.name, err)
		}
	}
}

// TestCancelResultParity: execution under a background context is
// byte-identical to the ctx-free fronts — the plumbing is free when unused.
func TestCancelResultParity(t *testing.T) {
	db := starDatabase(t)
	for _, sql := range parallelQueries {
		plan := mustPlan(t, db, sql)
		want, err := Execute(db, plan, ExecOptions{SampleLimit: 7})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ExecuteContext(context.Background(), db, plan, ExecOptions{SampleLimit: 7})
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, sql+" [ExecuteContext]", got, want)
	}
}
