package engine

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/sqlkit"
)

// starSchema returns dim(d_pk, a) and fact(f_pk, d_fk, q).
func starSchema() *schema.Schema {
	return &schema.Schema{Tables: []*schema.Table{
		{
			Name:     "dim",
			RowCount: 4,
			Columns: []*schema.Column{
				{Name: "d_pk", Type: schema.Int, PrimaryKey: true, DomainLo: 0, DomainHi: 4},
				{Name: "a", Type: schema.Int, DomainLo: 0, DomainHi: 100},
			},
		},
		{
			Name:     "fact",
			RowCount: 6,
			Columns: []*schema.Column{
				{Name: "f_pk", Type: schema.Int, PrimaryKey: true, DomainLo: 0, DomainHi: 6},
				{Name: "d_fk", Type: schema.Int, Ref: &schema.ForeignKey{Table: "dim", Column: "d_pk"}, DomainLo: 0, DomainHi: 4},
				{Name: "q", Type: schema.Int, DomainLo: 0, DomainHi: 10},
			},
		},
	}}
}

func starDatabase(t *testing.T) *Database {
	t.Helper()
	s := starSchema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(s)
	dim := &Relation{Table: s.Table("dim")}
	for _, row := range [][]int64{{0, 10}, {1, 20}, {2, 30}, {3, 40}} {
		if err := dim.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	fact := &Relation{Table: s.Table("fact")}
	for _, row := range [][]int64{{0, 0, 1}, {1, 0, 2}, {2, 1, 3}, {3, 2, 4}, {4, 3, 5}, {5, 3, 6}} {
		if err := fact.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.AddRelation(dim); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRelation(fact); err != nil {
		t.Fatal(err)
	}
	return db
}

func run(t *testing.T, db *Database, sql string) *ExecResult {
	t.Helper()
	q, err := sqlkit.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	plan, err := BuildPlan(db.Schema, q)
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	res, err := Execute(db, plan, ExecOptions{SampleLimit: 100})
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

func TestScanAndFilter(t *testing.T) {
	db := starDatabase(t)
	res := run(t, db, "SELECT * FROM fact WHERE q >= 3")
	if res.Rows != 4 {
		t.Errorf("rows = %d, want 4", res.Rows)
	}
	if res.Root.Op != "FILTER" || res.Root.Children[0].Op != "SCAN" {
		t.Errorf("plan shape: %+v", res.Root)
	}
	if res.Root.Children[0].OutRows != 6 {
		t.Errorf("scan out = %d, want 6", res.Root.Children[0].OutRows)
	}
}

func TestCountStar(t *testing.T) {
	db := starDatabase(t)
	res := run(t, db, "SELECT COUNT(*) FROM dim WHERE a BETWEEN 20 AND 30")
	if res.Count != 2 {
		t.Errorf("count = %d, want 2", res.Count)
	}
	if res.Root.Op != "AGGREGATE" || res.Root.OutRows != 1 {
		t.Errorf("aggregate node: %+v", res.Root)
	}
}

func TestHashJoin(t *testing.T) {
	db := starDatabase(t)
	res := run(t, db, "SELECT COUNT(*) FROM fact, dim WHERE fact.d_fk = dim.d_pk AND dim.a >= 30")
	// dim rows with a>=30: pk 2,3. fact rows referencing them: 3,4,5.
	if res.Count != 3 {
		t.Errorf("join count = %d, want 3", res.Count)
	}
	// Join output row = probe columns followed by build columns.
	res2 := run(t, db, "SELECT * FROM fact, dim WHERE fact.d_fk = dim.d_pk AND dim.a = 40")
	if res2.Rows != 2 {
		t.Fatalf("rows = %d, want 2", res2.Rows)
	}
	if len(res2.Sample[0]) != 5 {
		t.Fatalf("joined arity = %d, want 5", len(res2.Sample[0]))
	}
	if res2.Sample[0][1] != res2.Sample[0][3] {
		t.Errorf("join key mismatch in output row %v", res2.Sample[0])
	}
}

func TestUnqualifiedColumns(t *testing.T) {
	db := starDatabase(t)
	res := run(t, db, "SELECT COUNT(*) FROM fact, dim WHERE d_fk = d_pk AND a < 25 AND q > 1")
	// dim a<25: pk 0,1. fact rows with those fks and q>1: (1,0,2),(2,1,3).
	if res.Count != 2 {
		t.Errorf("count = %d, want 2", res.Count)
	}
}

func TestPlanErrors(t *testing.T) {
	db := starDatabase(t)
	bad := []string{
		"SELECT * FROM nope",
		"SELECT * FROM fact, fact WHERE fact.d_fk = fact.d_pk",
		"SELECT * FROM fact, dim",                                 // not connected
		"SELECT * FROM fact WHERE nocol = 1",                      // unknown column
		"SELECT * FROM fact, dim WHERE fact.q = dim.a AND q = -1", // non-key join is fine structurally, but ambiguity below
	}
	for _, sql := range bad[:4] {
		q, err := sqlkit.Parse(sql)
		if err != nil {
			continue
		}
		if _, err := BuildPlan(db.Schema, q); err == nil {
			t.Errorf("BuildPlan(%q) succeeded, want error", sql)
		}
	}
}

func TestDatagenScan(t *testing.T) {
	db := starDatabase(t)
	// Replace dim's scan with a synthetic two-row stream.
	rows := [][]int64{{0, 50}, {1, 60}}
	db.SetDatagen("dim", func() (RowSource, error) {
		i := 0
		return rowFunc(func() ([]int64, bool) {
			if i >= len(rows) {
				return nil, false
			}
			r := rows[i]
			i++
			return r, true
		}), nil
	})
	if !db.DatagenEnabled("dim") {
		t.Fatal("datagen not enabled")
	}
	res := run(t, db, "SELECT COUNT(*) FROM dim WHERE a >= 55")
	if res.Count != 1 {
		t.Errorf("datagen count = %d, want 1", res.Count)
	}
	db.SetDatagen("dim", nil)
	if db.DatagenEnabled("dim") {
		t.Error("datagen still enabled after reset")
	}
	res = run(t, db, "SELECT COUNT(*) FROM dim WHERE a >= 55")
	if res.Count != 0 {
		t.Errorf("stored count = %d, want 0", res.Count)
	}
}

type rowFunc func() ([]int64, bool)

func (f rowFunc) Next() ([]int64, bool) { return f() }

func TestRelationAppendArity(t *testing.T) {
	s := starSchema()
	rel := &Relation{Table: s.Table("dim")}
	if err := rel.Append([]int64{1}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestMissingRelation(t *testing.T) {
	db := NewDatabase(starSchema())
	q, _ := sqlkit.Parse("SELECT * FROM dim")
	plan, err := BuildPlan(db.Schema, q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(db, plan, ExecOptions{}); err == nil {
		t.Error("execute over missing relation succeeded")
	}
}

func TestAddRelationUnknownTable(t *testing.T) {
	db := NewDatabase(starSchema())
	other := &schema.Table{Name: "ghost"}
	if err := db.AddRelation(&Relation{Table: other}); err == nil {
		t.Error("AddRelation accepted unknown table")
	}
}
