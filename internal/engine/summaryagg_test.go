package engine

// Tests for the summary-direct aggregate fast path against a hand-built
// summary whose rows exercise every classification: full-cycle rows,
// boundary-straddling predicates on cycling sets, empty-match rows, group
// keys drawn from cycling sets, the synthesized primary-key range, and
// non-provable rows (two independently restricted cycling columns) that
// force exact fallback or — under Approx — estimation. Each query runs
// fast-path and regenerating, byte-identical (reflect.DeepEqual on rows,
// count, and sample).

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/generator"
	"repro/internal/schema"
	"repro/internal/sqlkit"
	"repro/internal/synopsis"
	"repro/internal/value"
)

// saggSchema is one table m(pk, a, b) with pk auto-numbered.
func saggSchema() *schema.Schema {
	return &schema.Schema{Tables: []*schema.Table{{
		Name:     "m",
		RowCount: 22,
		Columns: []*schema.Column{
			{Name: "pk", Type: schema.Int, PrimaryKey: true, DomainLo: 0, DomainHi: 1000},
			{Name: "a", Type: schema.Int, DomainLo: 0, DomainHi: 1000},
			{Name: "b", Type: schema.Int, DomainLo: 0, DomainHi: 1000},
		},
	}}}
}

func set(ivs ...value.Interval) value.IntervalSet {
	return value.IntervalSet(ivs).Normalize()
}

// saggDB builds a dataless database over a crafted summary:
//
//	row 0: 10 tuples, a cycles [0,5) (2 full cycles), b fixed 7
//	row 1:  7 tuples, a cycles [10,13) (2 cycles + prefix 10), b fixed 9
//	row 2:  5 tuples, a fixed 2, b cycles [100,105) (1 full cycle)
//	row 3:  0 tuples (must contribute nothing)
func saggDB(t *testing.T) *Database {
	t.Helper()
	return saggDBRows(t, []synopsis.Row{
		{Count: 10, Specs: []synopsis.ColSpec{synopsis.SetSpec(1, set(value.Ival(0, 5))), synopsis.FixedSpec(2, 7)}},
		{Count: 7, Specs: []synopsis.ColSpec{synopsis.SetSpec(1, set(value.Ival(10, 13))), synopsis.FixedSpec(2, 9)}},
		{Count: 5, Specs: []synopsis.ColSpec{synopsis.FixedSpec(1, 2), synopsis.SetSpec(2, set(value.Ival(100, 105)))}},
		{Count: 0, Specs: []synopsis.ColSpec{synopsis.FixedSpec(1, 999)}},
	})
}

func saggDBRows(t *testing.T, rows []synopsis.Row) *Database {
	t.Helper()
	s := saggSchema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range rows {
		total += r.Count
	}
	rel := &synopsis.Relation{Table: "m", Total: total, Rows: rows}
	if err := rel.Validate(s.Table("m")); err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(s)
	tab := s.Table("m")
	db.SetDatagen("m", func() (RowSource, error) {
		return generator.NewStream(tab, rel), nil
	})
	db.SetSummary("m", rel)
	return db
}

func saggExec(t *testing.T, db *Database, sql string, opts ExecOptions) *ExecResult {
	t.Helper()
	q, err := sqlkit.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	plan, err := BuildPlan(db.Schema, q)
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	res, err := Execute(db, plan, opts)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

// TestSummaryAggParityHandBuilt holds the fast path to byte-identical
// results with the regenerating pipeline over crafted summary rows, and
// pins which queries the fast path actually claims.
func TestSummaryAggParityHandBuilt(t *testing.T) {
	db := saggDB(t)
	cases := []struct {
		sql  string
		fast bool // must be answered summary-directly
	}{
		{"SELECT COUNT(*) FROM m", true},
		// Boundary-straddling: [2,11) clips row 0's cycle to {2,3,4}, row
		// 1's to {10}, and contains row 2's fixed a=2.
		{"SELECT COUNT(*) FROM m WHERE a >= 2 AND a < 11", true},
		// Empty match: no row's a reaches 50.
		{"SELECT COUNT(*) FROM m WHERE a >= 50", true},
		// The phase prefix matters: row 1 has 2 full cycles plus one extra
		// tuple at a=10, so a=10 counts 3 and a=11, a=12 count 2.
		{"SELECT a, COUNT(*) FROM m WHERE a >= 10 GROUP BY a", true},
		// Group keys from a cycling set, aggregates over the other column.
		{"SELECT a, COUNT(*), SUM(b), MIN(b), MAX(b), AVG(b) FROM m GROUP BY a", true},
		// Aggregate input is the driving predicate column (case B).
		{"SELECT COUNT(*), SUM(a), MIN(a), MAX(a), AVG(a) FROM m WHERE a >= 3", true},
		// Aggregate over an unconstrained cycling column (full-cycle math)
		// while the group key is fixed-or-cycling per row.
		{"SELECT COUNT(*), SUM(b) FROM m", true},
		// Predicate on the synthesized primary-key range.
		{"SELECT COUNT(*) FROM m WHERE pk >= 3 AND pk < 12", true},
		// A partial pk restriction selects an offset window, so cycling
		// aggregate inputs in the straddled row are position-coupled to it:
		// the proof declines and the query regenerates. Still exact.
		{"SELECT SUM(a), COUNT(*) FROM m WHERE pk < 11", false},
		// DISTINCT over a cycling column.
		{"SELECT DISTINCT a FROM m", true},
		{"SELECT DISTINCT b FROM m WHERE a < 3", true},
		// Two independently restricted cycling columns in one summary row
		// (row 2 under b; rows 0-1 under a): row 2 has a fixed, rows 0-1
		// have b fixed, so every row still resolves — this one stays fast.
		{"SELECT COUNT(*) FROM m WHERE a < 3 AND b < 102", true},
		// GROUP BY pk would enumerate one group per tuple: falls back.
		{"SELECT pk, COUNT(*) FROM m GROUP BY pk", false},
		// ORDER BY / LIMIT shapes never get a candidate.
		{"SELECT a, COUNT(*) FROM m GROUP BY a ORDER BY a DESC", false},
		{"SELECT COUNT(*) FROM m LIMIT 1", false},
	}
	for _, tc := range cases {
		want := saggExec(t, db, tc.sql, ExecOptions{SampleLimit: 30, NoSummaryAgg: true})
		got := saggExec(t, db, tc.sql, ExecOptions{SampleLimit: 30})
		if got.Rows != want.Rows || got.Count != want.Count || !reflect.DeepEqual(got.Sample, want.Sample) {
			t.Errorf("%s: fast path diverged:\n got %d/%d %v\nwant %d/%d %v",
				tc.sql, got.Rows, got.Count, got.Sample, want.Rows, want.Count, want.Sample)
			continue
		}
		if fast := got.Path == PathSummary; fast != tc.fast {
			t.Errorf("%s: Path = %q, want fast=%v", tc.sql, got.Path, tc.fast)
		}
		if want.Path != "" {
			t.Errorf("%s: NoSummaryAgg execution reported Path %q", tc.sql, want.Path)
		}
	}
}

// TestSummaryAggFallbackNonProvable pins that a summary row with two
// independently restricted cycling columns defeats the proof — the query
// falls back to regeneration and still answers exactly.
func TestSummaryAggFallbackNonProvable(t *testing.T) {
	db := saggDBRows(t, []synopsis.Row{
		// a cycles mod 4, b cycles mod 3 within one row: restricting both
		// couples the columns through tuple offsets, which per-column
		// interval arithmetic cannot express.
		{Count: 12, Specs: []synopsis.ColSpec{
			synopsis.SetSpec(1, set(value.Ival(0, 4))),
			synopsis.SetSpec(2, set(value.Ival(100, 103))),
		}},
	})
	sql := "SELECT COUNT(*) FROM m WHERE a < 2 AND b < 102"
	want := saggExec(t, db, sql, ExecOptions{NoSummaryAgg: true})
	got := saggExec(t, db, sql, ExecOptions{})
	if got.Path != "" {
		t.Fatalf("non-provable query took path %q, want regeneration", got.Path)
	}
	if got.Count != want.Count || got.Rows != want.Rows {
		t.Fatalf("fallback diverged: %d/%d, want %d/%d", got.Rows, got.Count, want.Rows, want.Count)
	}
	// A single restricted cycling column in the same row IS provable.
	one := saggExec(t, db, "SELECT COUNT(*) FROM m WHERE a < 2", ExecOptions{})
	if one.Path != PathSummary {
		t.Fatalf("single-column restriction took path %q, want summary", one.Path)
	}
	oneWant := saggExec(t, db, "SELECT COUNT(*) FROM m WHERE a < 2", ExecOptions{NoSummaryAgg: true})
	if one.Count != oneWant.Count {
		t.Fatalf("single-column count %d, want %d", one.Count, oneWant.Count)
	}
}

// TestSummaryAggApprox exercises ExecOptions.Approx on the non-provable
// shape: the estimate must carry ApproxInfo, land within its own 95%
// confidence interval of the exact answer (the toy sizes make the interval
// generous), and grouped queries must never estimate.
func TestSummaryAggApprox(t *testing.T) {
	db := saggDBRows(t, []synopsis.Row{
		{Count: 1200, Specs: []synopsis.ColSpec{
			synopsis.SetSpec(1, set(value.Ival(0, 4))),
			synopsis.SetSpec(2, set(value.Ival(100, 103))),
		}},
		{Count: 10, Specs: []synopsis.ColSpec{
			synopsis.SetSpec(1, set(value.Ival(0, 5))),
			synopsis.FixedSpec(2, 101),
		}},
	})
	sql := "SELECT COUNT(*) FROM m WHERE a < 2 AND b < 102"
	exact := saggExec(t, db, sql, ExecOptions{NoSummaryAgg: true})
	approx := saggExec(t, db, sql, ExecOptions{Approx: true})
	if approx.Path != PathSummary {
		t.Fatalf("approx query took path %q, want summary", approx.Path)
	}
	if approx.Approx == nil || !approx.Approx.Estimated {
		t.Fatalf("approx result carries no estimation info: %+v", approx.Approx)
	}
	if approx.Approx.CI95 <= 0 {
		t.Fatalf("estimated answer has no confidence interval: %+v", approx.Approx)
	}
	if diff := math.Abs(float64(approx.Count - exact.Count)); diff > approx.Approx.CI95 {
		t.Fatalf("estimate %d is %.1f off the exact %d, beyond its CI95 %.1f",
			approx.Count, diff, exact.Count, approx.Approx.CI95)
	}
	// A provable query under Approx answers exactly and says so.
	prov := saggExec(t, db, "SELECT COUNT(*) FROM m WHERE a < 2", ExecOptions{Approx: true})
	if prov.Path != PathSummary || prov.Approx == nil || prov.Approx.Estimated {
		t.Fatalf("provable approx query: path %q approx %+v, want exact summary answer", prov.Path, prov.Approx)
	}
	exactProv := saggExec(t, db, "SELECT COUNT(*) FROM m WHERE a < 2", ExecOptions{NoSummaryAgg: true})
	if prov.Count != exactProv.Count {
		t.Fatalf("provable approx count %d, want %d", prov.Count, exactProv.Count)
	}
	// Grouped queries never estimate: non-provable rows mean fallback even
	// under Approx.
	grp := saggExec(t, db, "SELECT a, COUNT(*) FROM m WHERE b < 102 GROUP BY a", ExecOptions{Approx: true})
	if grp.Path == PathSummary {
		t.Fatalf("grouped non-provable query was answered summary-directly under Approx")
	}
}

// TestSummaryAggHardSpecs pins the defensive rejections: an explicit spec
// on the auto-numbered primary key and duplicate specs for one column are
// path-inconsistent in the generator, so when the query references such a
// column the fast path must decline even under Approx. (Pathological specs
// on columns a query never reads cannot affect its answer, so those stay
// eligible.)
func TestSummaryAggHardSpecs(t *testing.T) {
	for name, tc := range map[string]struct {
		rows []synopsis.Row
		sql  string
	}{
		"pk spec": {
			rows: []synopsis.Row{{Count: 5, Specs: []synopsis.ColSpec{
				synopsis.FixedSpec(0, 42), synopsis.FixedSpec(1, 1),
			}}},
			sql: "SELECT COUNT(*) FROM m WHERE pk >= 0",
		},
		"duplicate spec": {
			rows: []synopsis.Row{{Count: 5, Specs: []synopsis.ColSpec{
				synopsis.FixedSpec(1, 1), synopsis.FixedSpec(1, 2),
			}}},
			sql: "SELECT COUNT(*), SUM(a) FROM m WHERE a >= 0",
		},
	} {
		db := saggDBRows(t, tc.rows)
		for _, opts := range []ExecOptions{{}, {Approx: true}} {
			res := saggExec(t, db, tc.sql, opts)
			if res.Path == PathSummary {
				t.Errorf("%s (approx=%v): pathological row was answered summary-directly", name, opts.Approx)
			}
		}
	}
}

// TestSummaryAggCandidateShapes pins the planner's structural gate.
func TestSummaryAggCandidateShapes(t *testing.T) {
	s := saggSchema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for sql, want := range map[string]bool{
		"SELECT COUNT(*) FROM m":                          true,
		"SELECT COUNT(*) FROM m WHERE a < 3":              true,
		"SELECT a, COUNT(*) FROM m GROUP BY a":            true,
		"SELECT DISTINCT a FROM m":                        true,
		"SELECT a, COUNT(*) FROM m GROUP BY a ORDER BY a": false,
		"SELECT COUNT(*) FROM m LIMIT 1":                  false,
		"SELECT * FROM m":                                 false,
		"SELECT * FROM m WHERE a < 3":                     false,
	} {
		q, err := sqlkit.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		plan, err := BuildPlan(s, q)
		if err != nil {
			t.Fatalf("plan %q: %v", sql, err)
		}
		if got := plan.SummaryAgg != nil; got != want {
			t.Errorf("%s: candidate = %v, want %v", sql, got, want)
		}
		if plan.SummaryAgg != nil && plan.SummaryAgg.Op != OpSummaryAgg {
			t.Errorf("%s: candidate op = %v", sql, plan.SummaryAgg.Op)
		}
	}
}

// TestSummaryAggGateConditions pins the dispatch gate: no registered
// summary, datagen disabled, or the NoSummaryAgg opt-out all yield nil.
func TestSummaryAggGateConditions(t *testing.T) {
	db := saggDB(t)
	q, err := sqlkit.Parse("SELECT COUNT(*) FROM m")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlan(db.Schema, q)
	if err != nil {
		t.Fatal(err)
	}
	if summaryAggFor(db, plan, ExecOptions{}) == nil {
		t.Fatal("eligible query did not get an evaluator")
	}
	if summaryAggFor(db, plan, ExecOptions{NoSummaryAgg: true}) != nil {
		t.Fatal("NoSummaryAgg did not disable the fast path")
	}
	db.SetSummary("m", nil)
	if summaryAggFor(db, plan, ExecOptions{}) != nil {
		t.Fatal("fast path survived summary unregistration")
	}
}
