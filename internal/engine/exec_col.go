package engine

import (
	"context"
	"fmt"
	"time"

	"repro/internal/batch"
	"repro/internal/pred"
	"repro/internal/trace"
)

// The columnar operator set — the engine's only operator implementations.
// Operators move rows in column-major batches (batch.ColBatch) under late
// materialization: required-column analysis (plan.go) decides which columns
// each operator must populate, scans expand only those columns from the
// summary, filters flip a selection vector instead of compacting row data,
// and hash joins read nothing but the key column until output
// materialization. Blocking root operators (GROUP BY, DISTINCT, ORDER BY)
// are the sink framework in sink.go. Every execution front composes these
// same operators: Execute drives them batch-wise, ExecuteRows (exec.go) is
// a thin row-pivot adapter over the identical pipeline, ExecuteParallel
// (exec_parallel.go) replicates the probe spine per worker over shared
// build arenas and folds sink partial states, and Prepared/ExecuteIn
// recycles the opened tree. The parity suites hold all of them to
// byte-identical results.

// colIterator is the engine-internal columnar operator contract — the one
// operator set every execution front composes. Next resets dst, fills it
// with up to dst.Cap() physical output rows (of which Live() are selected),
// and reports whether it produced any. After the first false return the
// operator is exhausted. rewind restores the just-opened state for another
// execution of the same plan (the Prepared reuse path), zeroing the
// operator's own ExecNode count; shared join builds and their frozen
// build-side counts are untouched. deferredErr is the engine's single
// deferred-error convention: a failure only detectable after an operator's
// drain (aggregate overflow) parks in the operator and is surfaced here,
// recursively through the tree, once the drive loop finishes.
type colIterator interface {
	Next(dst *batch.ColBatch) bool
	rewind(db *Database) error
	deferredErr() error
}

// rowSeeker is the rewind capability of deterministic scan sources: the
// generator's Stream and the stored-relation cursor both reposition to an
// absolute row index.
type rowSeeker interface {
	SeekRow(int64)
}

// scanOverride hands an already-opened scan source to openCol, so a caller
// that had to open a table's source to inspect it (the parallel executor
// probing partitionability) does not invoke the table's DatagenFunc a
// second time on fallback — the func's contract is one invocation per scan.
// Self-joins are rejected at planning, so the table name identifies the
// scan uniquely; used guards against regressions.
type scanOverride struct {
	table string
	src   batch.Source
	used  bool
}

// buildCache maps hash-join plan nodes to build state prepared ahead of
// execution (Prepare): the shared read-only columnar arena plus the
// build-side ExecNode subtree with its counts frozen at build time. An
// execution that finds its join in the cache pays probe cost only.
type buildCache map[*PlanNode]*preparedBuild

type preparedBuild struct {
	jb   *colJoinBuild
	node *ExecNode // build-child subtree template; cloned per execution
}

// cloneExecNode deep-copies a frozen build-side ExecNode subtree so each
// execution reports its own annotated plan.
func cloneExecNode(n *ExecNode) *ExecNode {
	out := *n
	if len(n.Children) > 0 {
		out.Children = make([]*ExecNode, len(n.Children))
		for i, c := range n.Children {
			out.Children[i] = cloneExecNode(c)
		}
	}
	return &out
}

// executeColumnarFrom is the sequential columnar executor behind
// ExecuteContext, with an optional pre-opened scan and prepared join
// builds. ctx is observed at batch boundaries (see ctl.go); a canceled
// execution returns the context's error.
func executeColumnarFrom(ctx context.Context, db *Database, plan *Plan, opts ExecOptions, ov *scanOverride, builds buildCache, prunes pruneCache) (*ExecResult, error) {
	ctl := &execCtl{ctx: ctx}
	if opts.Trace {
		ctl.rec = trace.NewRecorder(countPlanNodes(plan.Root))
	}
	// The summary-direct fast path claims eligible aggregate plans before
	// any operator opens — unless a pre-opened scan was handed down (the
	// parallel executor's fallback), whose one-invocation contract obliges
	// us to drive it.
	if ov == nil {
		if res, ok, err := trySummaryAgg(ctl, db, plan, opts); ok {
			return res, err
		}
	}
	ctl.prunes = prunesFor(db, plan, opts, prunes)
	need := rootNeed(plan, opts)
	it, width, pop, node, err := openCol(db, plan.Root, need, opts.BatchSize, ov, builds, ctl)
	if err != nil {
		return nil, err
	}
	res := &ExecResult{Root: node, Trace: node.sp}
	b := batch.NewCol(width, opts.BatchSize, pop)
	derr := runColumnar(ctl, it, b, plan, opts, res)
	if ctl.err != nil {
		return nil, ctl.err
	}
	if derr != nil {
		return nil, derr
	}
	return res, nil
}

// rootNeed is the column set the plan's root output must materialize: the
// count column for aggregates (wherever the aggregate sits under root
// sinks), every column when output rows are sampled, nothing otherwise
// (cardinalities alone flow through the spine).
func rootNeed(plan *Plan, opts ExecOptions) []int {
	if plan.countStar() {
		return []int{0}
	}
	if opts.SampleLimit > 0 {
		return allCols(len(plan.Root.Cols))
	}
	return nil
}

// allCols is the complete column set [0, n).
func allCols(n int) []int {
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return all
}

// runColumnar drives the opened operator tree to exhaustion, accumulating
// rows, samples, and the COUNT value into res, and returns the pipeline's
// deferred error once the drain completes. The drive loop is one of
// the engine's cancellation points: it stops pulling batches once ctl
// observes the context done (covering sink emit phases, which pull no scan
// batches); the caller surfaces ctl.err, which takes precedence over the
// returned deferred error.
//
//hydra:hotpath
func runColumnar(ctl *execCtl, it colIterator, b *batch.ColBatch, plan *Plan, opts ExecOptions, res *ExecResult) error {
	agg := plan.countStar()
	for !ctl.stopped() && it.Next(b) {
		live := b.Live()
		res.Rows += int64(live)
		if opts.SampleLimit > 0 {
			for i := 0; len(res.Sample) < opts.SampleLimit && i < live; i++ {
				row := make([]int64, b.Width())
				b.LiveRow(i, row)
				res.Sample = append(res.Sample, row)
			}
		}
		if agg && live > 0 {
			// The aggregate row may arrive under a selection (a LIMIT above
			// the COUNT slices the batch); read the last live row.
			r := b.Len() - 1
			if sel := b.Sel(); sel != nil {
				r = int(sel[live-1])
			}
			res.Count = b.Col(0)[r]
		}
	}
	res.Root.OutRows = res.Rows
	return it.deferredErr()
}

// openCol builds the columnar operator tree for pn and its ExecNode mirror,
// materializing only the need columns of pn's output. It returns, besides
// the operator's output width, the populated column set of the batches the
// operator fills — a superset of need when a scan also writes predicate or
// key columns that ride along in the same physical batch — which the
// parent must use to size its receiving batch. Like the row path,
// hash-join build sides are consumed at open time — unless builds already
// carries them, in which case the shared arena is probed directly and the
// frozen build subtree is cloned into the plan annotation. ctl is the
// execution's cancellation control, threaded into every scan leaf (the
// engine's per-batch check point); a build drain interrupted by
// cancellation surfaces the context error here, as an open failure.
func openCol(db *Database, pn *PlanNode, need []int, capRows int, ov *scanOverride, builds buildCache, ctl *execCtl) (colIterator, int, []int, *ExecNode, error) {
	switch pn.Op {
	case OpScan:
		var src batch.Source
		if ov != nil && !ov.used && ov.table == pn.Table {
			src = ov.src
			ov.used = true
		} else {
			var err error
			src, err = db.openBatchScan(pn.Table)
			if err != nil {
				return nil, 0, nil, nil, err
			}
		}
		node := &ExecNode{Op: pn.Op.String(), Table: pn.Table}
		width := len(db.Schema.Table(pn.Table).Columns)
		s := &colScanIter{table: pn.Table, src: src, proj: asProjector(src, width), cols: need, width: width, node: node, ctl: ctl}
		s.sp, s.rowBytes = ctl.annotate(node), 8*int64(len(need))
		return s, width, need, node, nil

	case OpFilter:
		// A precomputed qualifying row-space turns filter-over-scan into a
		// pruned scan: non-matching tuples are never generated, and when
		// every conjunct was proven the filter operator disappears.
		if pr := ctl.prunes[pn]; pr != nil {
			return openPrunedFilter(db, pn, pr, need, capRows, ov, builds, ctl)
		}
		// The filter refines the child's selection in place, so its output
		// batches are the child's: populated set passes through.
		childNeed := pn.childNeeds(need)[0]
		child, width, pop, childNode, err := openCol(db, pn.Children[0], childNeed, capRows, ov, builds, ctl)
		if err != nil {
			return nil, 0, nil, nil, err
		}
		table := db.Schema.Table(pn.Pred.Table)
		node := &ExecNode{Op: pn.Op.String(), Table: pn.Pred.Table, PredSQL: pn.Pred.SQL(table), Children: []*ExecNode{childNode}}
		return &colFilterIter{child: child, m: pn.Pred.Matcher(), node: node, sp: ctl.annotate(node)}, width, pop, node, nil

	case OpHashJoin:
		cn := pn.childNeeds(need)
		probeNeed, buildNeed := cn[0], cn[1]
		probe, pw, probePop, probeNode, err := openCol(db, pn.Children[0], probeNeed, capRows, ov, builds, ctl)
		if err != nil {
			return nil, 0, nil, nil, err
		}
		var jb *colJoinBuild
		var buildNode *ExecNode
		var bw int
		var buildNS int64
		if pb, ok := builds[pn]; ok {
			jb = pb.jb
			buildNode = cloneExecNode(pb.node)
			bw = jb.width
			ctl.annotateFrozen(buildNode)
		} else {
			var buildIt colIterator
			var buildPop []int
			buildIt, bw, buildPop, buildNode, err = openCol(db, pn.Children[1], buildNeed, capRows, ov, builds, ctl)
			if err != nil {
				return nil, 0, nil, nil, err
			}
			bstart := time.Now()
			jb = newColJoinBuild(buildIt, bw, pn.RightKey, capRows, buildNeed, buildPop)
			buildNS = time.Since(bstart).Nanoseconds()
			if ctl.stopped() {
				// The drain ended early because the context was done: the
				// arena is incomplete and the execution is over.
				return nil, 0, nil, nil, ctl.err
			}
		}
		node := &ExecNode{Op: pn.Op.String(), JoinSQL: pn.JoinSQL, Children: []*ExecNode{probeNode, buildNode}}
		ji := newColHashJoinIter(probe, jb, pw, pn.LeftKey, need, probePop, capRows)
		ji.node = node
		if sp := ctl.annotate(node); sp != nil {
			// The build side drains at open, outside this operator's Next
			// window: detach it from self-time math and report the drain
			// wall clock on the join itself.
			sp.BuildNS = buildNS
			buildNode.sp.Detached = true
			ji.sp, ji.rowBytes = sp, 8*int64(len(need))
		}
		return ji, pw + bw, need, node, nil

	case OpAggregate:
		child, width, pop, childNode, err := openCol(db, pn.Children[0], nil, capRows, ov, builds, ctl)
		if err != nil {
			return nil, 0, nil, nil, err
		}
		node := &ExecNode{Op: pn.Op.String(), Children: []*ExecNode{childNode}}
		c := &colCountStarIter{child: child, buf: batch.NewCol(width, capRows, pop), node: node, sp: ctl.annotate(node)}
		return c, 1, []int{0}, node, nil

	case OpGroupAgg, OpDistinct:
		// The child materializes exactly the grouping (or distinct) keys and
		// aggregate inputs (childNeeds ignores the parent's need); the
		// node's own output batches populate only the columns the caller
		// asked for — nothing when just the group count flows, every select
		// item when rows are sampled. Both operators are the one sink
		// operator over the one hash-aggregation state.
		childNeed := pn.childNeeds(nil)[0]
		child, width, pop, childNode, err := openCol(db, pn.Children[0], childNeed, capRows, ov, builds, ctl)
		if err != nil {
			return nil, 0, nil, nil, err
		}
		node := &ExecNode{Op: pn.Op.String(), Children: []*ExecNode{childNode}}
		g := &colSinkIter{
			child:   child,
			buf:     batch.NewCol(width, capRows, pop),
			st:      newGroupAggState(pn),
			outCols: need,
			node:    node,
			ctl:     ctl,
		}
		g.sp, g.rowBytes = ctl.annotate(node), 8*int64(len(need))
		return g, len(pn.Items), need, node, nil

	case OpSort:
		// The child materializes the output columns plus the sort keys; the
		// state collects exactly that set, which is also the comparator's
		// tiebreak domain (identical across all execution fronts).
		childNeed := pn.childNeeds(need)[0]
		child, width, pop, childNode, err := openCol(db, pn.Children[0], childNeed, capRows, ov, builds, ctl)
		if err != nil {
			return nil, 0, nil, nil, err
		}
		node := &ExecNode{Op: pn.Op.String(), Children: []*ExecNode{childNode}}
		s := &colSinkIter{
			child:   child,
			buf:     batch.NewCol(width, capRows, pop),
			st:      newSortState(pn, childNeed, width),
			outCols: need,
			node:    node,
			ctl:     ctl,
		}
		s.sp, s.rowBytes = ctl.annotate(node), 8*int64(len(need))
		return s, width, need, node, nil

	case OpLimit:
		// Pure truncation over the child's batches: output layout and
		// populated set pass through untouched.
		child, width, pop, childNode, err := openCol(db, pn.Children[0], pn.childNeeds(need)[0], capRows, ov, builds, ctl)
		if err != nil {
			return nil, 0, nil, nil, err
		}
		node := &ExecNode{Op: pn.Op.String(), Children: []*ExecNode{childNode}}
		l := &colLimitIter{child: child, limit: pn.Limit, offset: pn.Offset, node: node, sp: ctl.annotate(node)}
		return l, width, pop, node, nil

	default:
		return nil, 0, nil, nil, fmt.Errorf("engine: unknown operator %v", pn.Op)
	}
}

// openPrunedFilter opens an OpFilter whose qualifying row-space was
// precomputed: the child scan iterates only the qualifying intervals via
// the source's SectionSet. When the filter was fully absorbed the scan
// replaces it outright (and skips materializing the predicate columns the
// MatchVec would have read); otherwise the residual filter wraps the pruned
// scan — exact because pruning only removed provably-failing tuples and
// never reordered survivors. A source without the row-space capability (a
// paced stream, caller-supplied datagen) is handed down to the ordinary
// path unopened-again, honoring the one-invocation-per-scan contract.
func openPrunedFilter(db *Database, pn *PlanNode, pr *scanPrune, need []int, capRows int, ov *scanOverride, builds buildCache, ctl *execCtl) (colIterator, int, []int, *ExecNode, error) {
	scanPn := pn.Children[0]
	var src batch.Source
	if ov != nil && !ov.used && ov.table == scanPn.Table {
		src = ov.src
		ov.used = true
	} else {
		var err error
		src, err = db.openBatchScan(scanPn.Table)
		if err != nil {
			return nil, 0, nil, nil, err
		}
	}
	rs, ok := src.(rowSpaceSource)
	if !ok {
		local := &scanOverride{table: scanPn.Table, src: src}
		childNeed := pn.childNeeds(need)[0]
		child, width, pop, childNode, err := openCol(db, scanPn, childNeed, capRows, local, builds, ctl)
		if err != nil {
			return nil, 0, nil, nil, err
		}
		table := db.Schema.Table(pn.Pred.Table)
		node := &ExecNode{Op: pn.Op.String(), Table: pn.Pred.Table, PredSQL: pn.Pred.SQL(table), Children: []*ExecNode{childNode}}
		return &colFilterIter{child: child, m: pn.Pred.Matcher(), node: node, sp: ctl.annotate(node)}, width, pop, node, nil
	}
	sub := rs.SectionSet(pr.ivs)
	width := len(db.Schema.Table(scanPn.Table).Columns)
	scanCols := need
	if !pr.absorbed {
		scanCols = pn.childNeeds(need)[0]
	}
	scanNode := &ExecNode{Op: OpScan.String(), Table: scanPn.Table, RowsPruned: pr.pruned, SummaryRowsSkipped: pr.skipped}
	s := &colScanIter{table: scanPn.Table, src: sub, proj: asProjector(sub, width), cols: scanCols, width: width, node: scanNode, ctl: ctl}
	s.sp, s.rowBytes = ctl.annotate(scanNode), 8*int64(len(scanCols))
	if pr.absorbed {
		return s, width, scanCols, scanNode, nil
	}
	table := db.Schema.Table(pn.Pred.Table)
	node := &ExecNode{Op: pn.Op.String(), Table: pn.Pred.Table, PredSQL: pn.Pred.SQL(table), Children: []*ExecNode{scanNode}}
	return &colFilterIter{child: s, m: pn.Pred.Matcher(), node: node, sp: ctl.annotate(node)}, width, scanCols, node, nil
}

// asProjector views a scan source as a column projector: batch-capable
// columnar sources (the generator's Stream, stored-relation cursors) are
// used directly; row-major sources (Paced wrappers, caller-supplied
// datagen) are adapted by transposing whole row batches.
func asProjector(src batch.Source, width int) batch.ColProjector {
	if cp, ok := src.(batch.ColProjector); ok {
		return cp
	}
	return &rowColAdapter{src: src, width: width}
}

// rowColAdapter adapts a row-major batch.Source to batch.ColProjector.
// Projection cannot be pushed into an opaque source, so the full row batch
// is produced and only the requested columns transposed out.
type rowColAdapter struct {
	src   batch.Source
	width int
	buf   *batch.Batch
}

func (a *rowColAdapter) NextColBatch(dst *batch.ColBatch, cols []int) bool {
	dst.Reset()
	if a.buf == nil || a.buf.Cap() != dst.Cap() {
		a.buf = batch.New(a.width, dst.Cap())
	}
	if !a.src.NextBatch(a.buf) {
		return false
	}
	n := a.buf.Len()
	data := a.buf.Data()
	w := a.buf.Cols()
	dst.SetLen(n)
	for _, c := range cols {
		out := dst.Col(c)
		for i, off := 0, c; i < n; i, off = i+1, off+w {
			out[i] = data[off]
		}
	}
	return true
}

// colScanIter passes projected source batches through, counting them. It
// is the engine's per-batch cancellation point: every unbounded loop in
// the tree — the filter's skip loop, sink and COUNT(*) drains, hash-join
// build drains, probe pulls — advances only by pulling scan batches, so a
// single check here stops them all within one batch of the context ending.
type colScanIter struct {
	table    string
	src      batch.Source
	proj     batch.ColProjector
	cols     []int
	width    int
	node     *ExecNode
	ctl      *execCtl
	sp       *trace.Span // nil when untraced
	rowBytes int64       // bytes materialized per output row (populated cols × 8)
}

func (s *colScanIter) Next(dst *batch.ColBatch) bool {
	if s.sp == nil {
		return s.next(dst)
	}
	s.sp.Begin()
	if !s.next(dst) {
		s.sp.ObserveEmpty()
		return false
	}
	s.sp.Observe(int64(dst.Len()), int64(dst.Len())*s.rowBytes)
	return true
}

func (s *colScanIter) next(dst *batch.ColBatch) bool {
	if s.ctl.stopped() {
		return false
	}
	if !s.proj.NextColBatch(dst, s.cols) {
		return false
	}
	s.node.OutRows += int64(dst.Len())
	return true
}

func (s *colScanIter) rewind(db *Database) error {
	s.node.OutRows = 0
	if sk, ok := s.src.(rowSeeker); ok {
		sk.SeekRow(0)
		return nil
	}
	// Not seekable (paced or opaque source): a rewind is a fresh scan.
	src, err := db.openBatchScan(s.table)
	if err != nil {
		return err
	}
	s.src = src
	s.proj = asProjector(src, s.width)
	return nil
}

func (s *colScanIter) deferredErr() error { return nil }

// colFilterIter refines each child batch's selection vector in place with
// the compiled predicate's vector matcher. No row data moves; order is
// preserved. Batches whose selection empties are skipped.
type colFilterIter struct {
	child colIterator
	m     *pred.Matcher
	node  *ExecNode
	sp    *trace.Span // nil when untraced
}

func (f *colFilterIter) Next(dst *batch.ColBatch) bool {
	if f.sp == nil {
		return f.next(dst)
	}
	f.sp.Begin()
	if !f.next(dst) {
		f.sp.ObserveEmpty()
		return false
	}
	// The filter moves no row data: rows pass, bytes stay zero.
	f.sp.Observe(int64(dst.Live()), 0)
	return true
}

func (f *colFilterIter) next(dst *batch.ColBatch) bool {
	for {
		if !f.child.Next(dst) {
			return false
		}
		sel := f.m.MatchVec(dst.Cols(), dst.Len(), dst.Sel(), dst.SelBuf())
		if len(sel) > 0 {
			dst.SetSel(sel)
			f.node.OutRows += int64(len(sel))
			return true
		}
		// Whole batch filtered out; pull the next one.
	}
}

func (f *colFilterIter) rewind(db *Database) error {
	f.node.OutRows = 0
	return f.child.rewind(db)
}

func (f *colFilterIter) deferredErr() error { return f.child.deferredErr() }

// colJoinBuild is the one-time build side of a hash join: per-column
// arenas of the build rows the output needs (unneeded columns carry no
// storage) plus a key → row-index map. Selection vectors are compacted
// away during the drain, so arena row r is the r-th surviving build row.
// After construction a colJoinBuild is read-only: the parallel executor
// shares one across all workers, and Prepare shares one across executions.
type colJoinBuild struct {
	width int
	arena [][]int64 // len width; nil for unpopulated columns
	idx   map[int64][]int32
	rows  int32
}

// newColJoinBuild drains the build-side iterator into the arenas + index:
// only the need columns are retained (need must include the key column);
// pop is the populated set of the build child's batches.
func newColJoinBuild(build colIterator, width, rightKey, capRows int, need, pop []int) *colJoinBuild {
	jb := &colJoinBuild{width: width, arena: make([][]int64, width), idx: make(map[int64][]int32)}
	b := batch.NewCol(width, capRows, pop)
	var n int32
	for build.Next(b) {
		if sel := b.Sel(); sel == nil {
			k := b.Len()
			for _, c := range need {
				jb.arena[c] = append(jb.arena[c], b.Col(c)[:k]...)
			}
		} else {
			for _, c := range need {
				col := b.Col(c)
				a := jb.arena[c]
				for _, r := range sel {
					a = append(a, col[r])
				}
				jb.arena[c] = a
			}
		}
		for _, k := range jb.arena[rightKey][n:] {
			jb.idx[k] = append(jb.idx[k], n)
			n++
		}
	}
	jb.rows = n
	return jb
}

// colHashJoinIter streams probe batches against a colJoinBuild. Until a
// probe row matches, only its key column is read; output materialization
// gathers exactly the needed columns — probe values replicated per match
// run, build values fetched from the arenas by match index.
type colHashJoinIter struct {
	probe     colIterator
	node      *ExecNode
	sp        *trace.Span // nil when untraced
	rowBytes  int64       // bytes materialized per output row
	leftKey   int
	probeCols int
	build     *colJoinBuild
	probeOut  []int // needed output columns from the probe side
	buildOut  []int // needed output columns from the build side (build-local indices)

	// probe cursor, carried across Next calls when dst fills mid-batch
	pbatch  *batch.ColBatch
	pi      int // next unprocessed live row of pbatch (selection order)
	curRow  int // current probe physical row
	matches []int32
	mi      int
	done    bool
}

// newColHashJoinIter builds the probe-side iterator: need is the join
// output's required columns, probePop the populated set of the probe
// child's batches.
func newColHashJoinIter(probe colIterator, jb *colJoinBuild, probeCols, leftKey int, need, probePop []int, capRows int) *colHashJoinIter {
	h := &colHashJoinIter{
		probe:     probe,
		leftKey:   leftKey,
		probeCols: probeCols,
		build:     jb,
		pbatch:    batch.NewCol(probeCols, capRows, probePop),
	}
	for _, c := range need {
		if c < probeCols {
			h.probeOut = append(h.probeOut, c)
		} else {
			h.buildOut = append(h.buildOut, c-probeCols)
		}
	}
	return h
}

// reset clears the probe-side cursor so the iterator can serve a fresh
// probe source (the parallel executor reuses one iterator per worker
// across morsels). The shared build state is untouched.
func (h *colHashJoinIter) reset() {
	h.pbatch.Reset()
	h.pi = 0
	h.matches = nil
	h.mi = 0
	h.done = false
}

func (h *colHashJoinIter) rewind(db *Database) error {
	h.reset()
	h.node.OutRows = 0
	return h.probe.rewind(db)
}

// deferredErr surfaces probe-side deferred errors; the build side is fully
// consumed at open time, so any failure there was already returned.
func (h *colHashJoinIter) deferredErr() error { return h.probe.deferredErr() }

func (h *colHashJoinIter) Next(dst *batch.ColBatch) bool {
	if h.sp == nil {
		return h.next(dst)
	}
	h.sp.Begin()
	if !h.next(dst) {
		h.sp.ObserveEmpty()
		return false
	}
	h.sp.Observe(int64(dst.Len()), int64(dst.Len())*h.rowBytes)
	return true
}

func (h *colHashJoinIter) next(dst *batch.ColBatch) bool {
	dst.Reset()
	capRows := dst.Cap()
	j := 0
	for j < capRows {
		if h.mi < len(h.matches) {
			k := len(h.matches) - h.mi
			if k > capRows-j {
				k = capRows - j
			}
			for _, c := range h.probeOut {
				v := h.pbatch.Col(c)[h.curRow]
				out := dst.Col(c)[j : j+k]
				for i := range out {
					out[i] = v
				}
			}
			for _, bc := range h.buildOut {
				src := h.build.arena[bc]
				out := dst.Col(h.probeCols + bc)[j : j+k]
				for i := 0; i < k; i++ {
					out[i] = src[h.matches[h.mi+i]]
				}
			}
			h.mi += k
			j += k
			continue
		}
		if h.done {
			break
		}
		if h.pi >= h.pbatch.Live() {
			if !h.probe.Next(h.pbatch) {
				h.done = true
				break
			}
			h.pi = 0
			continue
		}
		if sel := h.pbatch.Sel(); sel != nil {
			h.curRow = int(sel[h.pi])
		} else {
			h.curRow = h.pi
		}
		h.pi++
		h.matches = h.build.idx[h.pbatch.Col(h.leftKey)[h.curRow]]
		h.mi = 0
	}
	dst.SetLen(j)
	h.node.OutRows += int64(j)
	return j > 0
}

// colCountStarIter drains its child, emitting the single COUNT(*) row. Its
// drain batch materializes no columns at all: pure cardinality flow.
type colCountStarIter struct {
	child colIterator
	buf   *batch.ColBatch
	node  *ExecNode
	sp    *trace.Span // nil when untraced
	done  bool
}

func (c *colCountStarIter) Next(dst *batch.ColBatch) bool {
	if c.sp == nil {
		return c.next(dst)
	}
	c.sp.Begin()
	if !c.next(dst) {
		c.sp.ObserveEmpty()
		return false
	}
	c.sp.Observe(1, 8)
	return true
}

func (c *colCountStarIter) next(dst *batch.ColBatch) bool {
	dst.Reset()
	if c.done {
		return false
	}
	c.done = true
	var n int64
	for c.child.Next(c.buf) {
		n += int64(c.buf.Live())
	}
	dst.SetLen(1)
	dst.Col(0)[0] = n
	c.node.OutRows++
	return true
}

func (c *colCountStarIter) rewind(db *Database) error {
	c.done = false
	c.node.OutRows = 0
	return c.child.rewind(db)
}

func (c *colCountStarIter) deferredErr() error { return c.child.deferredErr() }
