package engine

import (
	"context"
	"fmt"
	"time"

	"repro/internal/trace"
)

// Cooperative cancellation. Every execution front — Execute, ExecuteRows,
// ExecuteParallel, Prepared.Execute, Prepared.ExecuteIn — now has a
// context-taking variant, and the ctx-free signatures are thin wrappers
// over context.Background(). Cancellation is cooperative at batch
// boundaries: the engine never preempts a kernel mid-batch (a batch is at
// most a few thousand rows, microseconds of work), it checks between
// batches and unwinds.
//
// The checks live in exactly three places, chosen so every unbounded loop
// in the engine passes through at least one of them:
//
//   - colScanIter.Next — the leaf every operator ultimately pulls from.
//     One check per physical batch covers the filter's skip loop, the
//     sink and COUNT(*) drain loops, hash-join build drains, and the join
//     probe's pull loop, because all of them advance only by pulling scan
//     batches.
//   - the root drive loop (runColumnar and the ExecuteRows pivot) — covers
//     the emit phase of blocking sinks, whose output streaming pulls no
//     scan batches.
//   - the parallel worker's morsel loop — each worker carries its own
//     execCtl (latching is single-goroutine state), re-checked per morsel
//     and, through the worker's scan leaf, per batch.
//
// The state is an execCtl struct threaded through the operator tree as a
// field at open time — never a per-batch closure — so the steady-state
// reuse path (Prepared.ExecuteIn) keeps its zero-allocation contract: the
// ExecState owns one execCtl for its lifetime and rebinding it to the next
// call's context writes two words.

// execCtl carries one execution's cancellation state and, when the
// execution is traced (ExecOptions.Trace), its span recorder. It is single-
// goroutine by construction: the sequential tree shares one, each parallel
// worker owns one. A nil ctx never stops (the Prepare-time build drain and
// ctx-free wrappers run uncancellable); a nil rec records nothing — the
// untraced hot path pays one nil check per operator Next and allocates
// nothing, preserving the steady-state contract above.
type execCtl struct {
	ctx context.Context
	err error // first observed ctx error, latched for the execution
	rec *trace.Recorder
	// prunes maps OpFilter plan nodes to their precomputed qualifying
	// row-spaces (prune.go). A nil map (the NoScanPrune opt-out, or fronts
	// that never computed one) misses every lookup, so operators need no
	// separate gate.
	prunes pruneCache
}

// bind points the control at the next execution's context, clearing any
// error latched by a previous (canceled) execution on the same state.
func (c *execCtl) bind(ctx context.Context) {
	c.ctx = ctx
	c.err = nil
}

// stopped reports whether the execution should halt, latching the context
// error on first observation so every later check agrees without touching
// the context again.
func (c *execCtl) stopped() bool {
	if c.err != nil {
		return true
	}
	if c.ctx == nil {
		return false
	}
	if err := c.ctx.Err(); err != nil {
		c.err = err
		return true
	}
	return false
}

// annotate mirrors a freshly built ExecNode into a trace span when the
// execution is traced, wiring the children's already-created spans into the
// tree (openCol builds children first, so they are annotated by the time
// the parent node exists). Returns nil when tracing is off; iterators store
// the nil and skip recording on it.
func (c *execCtl) annotate(node *ExecNode) *trace.Span {
	if c.rec == nil {
		return nil
	}
	sp := c.rec.NewSpan(node.Op, nodeDetail(node))
	for _, ch := range node.Children {
		if ch.sp != nil {
			sp.Children = append(sp.Children, ch.sp)
		}
	}
	node.sp = sp
	return sp
}

// annotateFrozen mirrors a cloned prepared-build ExecNode subtree into
// spans: cardinalities come from the counts frozen at Prepare time, no wall
// time is attributed (the drain ran before this execution), and the subtree
// root is detached from the join's self-time math. This keeps the span tree
// the same shape whether a join's build side was drained live or served
// from the build cache.
func (c *execCtl) annotateFrozen(node *ExecNode) *trace.Span {
	if c.rec == nil {
		return nil
	}
	for _, ch := range node.Children {
		c.annotateFrozen(ch)
	}
	sp := c.annotate(node)
	sp.Rows = node.OutRows
	// The frozen counters are written exactly once (nothing executes in this
	// subtree), so state-reusing executions must not zero them on Reset.
	sp.Freeze()
	return sp
}

// nodeDetail picks the operator's distinguishing argument for its span. A
// pruned scan reports its prune counts here, so EXPLAIN ANALYZE and the
// span tree surface what generation never materialized. (annotate runs once
// per open, off the hot path, so the formatting cost is irrelevant.)
func nodeDetail(n *ExecNode) string {
	switch {
	case n.PredSQL != "":
		return n.PredSQL
	case n.JoinSQL != "":
		return n.JoinSQL
	case n.RowsPruned > 0 || n.SummaryRowsSkipped > 0:
		return fmt.Sprintf("%s [pruned %d rows, skipped %d summary rows]", n.Table, n.RowsPruned, n.SummaryRowsSkipped)
	default:
		return n.Table
	}
}

// withTimeout derives the execution deadline from ExecOptions.Timeout: a
// positive timeout wraps ctx, anything else passes it through with a no-op
// cancel so callers can defer unconditionally.
func withTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}
