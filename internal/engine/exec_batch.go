package engine

import (
	"fmt"

	"repro/internal/batch"
	"repro/internal/pred"
)

// The batched execution path. Operators move rows in fixed-capacity
// batches (batch.DefaultCap unless ExecOptions.BatchSize overrides it), so
// per-row interface calls disappear and cardinality accounting is
// amortized to one addition per batch. Operator semantics — scan order,
// filter order preservation, probe-order join output, COUNT(*) — are
// identical to the row-at-a-time path in exec.go, which exec parity tests
// hold it to.

// batchIterator is the engine-internal operator contract: Next resets dst,
// fills it with up to dst.Cap() output rows, and reports whether it
// produced any. After the first false return the operator is exhausted.
type batchIterator interface {
	Next(dst *batch.Batch) bool
}

// scanOverride hands an already-opened scan source to openBatch, so a
// caller that had to open a table's source to inspect it (the parallel
// executor probing partitionability) does not invoke the table's
// DatagenFunc a second time on fallback — the func's contract is one
// invocation per scan. Self-joins are rejected at planning, so the table
// name identifies the scan uniquely; used guards against regressions.
type scanOverride struct {
	table string
	src   batch.Source
	used  bool
}

// executeBatched is the batched implementation behind Execute.
func executeBatched(db *Database, plan *Plan, opts ExecOptions) (*ExecResult, error) {
	return executeBatchedFrom(db, plan, opts, nil)
}

// executeBatchedFrom is executeBatched with an optional pre-opened scan.
func executeBatchedFrom(db *Database, plan *Plan, opts ExecOptions, ov *scanOverride) (*ExecResult, error) {
	it, width, node, err := openBatch(db, plan.Root, opts.BatchSize, ov)
	if err != nil {
		return nil, err
	}
	res := &ExecResult{Root: node}
	b := batch.New(width, opts.BatchSize)
	for it.Next(b) {
		n := b.Len()
		res.Rows += int64(n)
		for i := 0; opts.SampleLimit > 0 && len(res.Sample) < opts.SampleLimit && i < n; i++ {
			res.Sample = append(res.Sample, append([]int64(nil), b.Row(i)...))
		}
		if plan.Root.Op == OpAggregate {
			res.Count = b.Row(n - 1)[0]
		}
	}
	node.OutRows = res.Rows
	return res, nil
}

// openBatch builds the batched operator tree and its ExecNode mirror,
// returning the operator's output width. Cardinality accounting is folded
// into each operator instead of a wrapping counter. Like the row path,
// hash-join build sides are consumed at open time. ov, when non-nil,
// supplies the named table's already-opened scan source.
func openBatch(db *Database, pn *PlanNode, capRows int, ov *scanOverride) (batchIterator, int, *ExecNode, error) {
	switch pn.Op {
	case OpScan:
		var src batch.Source
		if ov != nil && !ov.used && ov.table == pn.Table {
			src = ov.src
			ov.used = true
		} else {
			var err error
			src, err = db.openBatchScan(pn.Table)
			if err != nil {
				return nil, 0, nil, err
			}
		}
		node := &ExecNode{Op: pn.Op.String(), Table: pn.Table}
		width := len(db.Schema.Table(pn.Table).Columns)
		return &batchScanIter{src: src, node: node}, width, node, nil

	case OpFilter:
		child, width, childNode, err := openBatch(db, pn.Children[0], capRows, ov)
		if err != nil {
			return nil, 0, nil, err
		}
		table := db.Schema.Table(pn.Pred.Table)
		node := &ExecNode{Op: pn.Op.String(), Table: pn.Pred.Table, PredSQL: pn.Pred.SQL(table), Children: []*ExecNode{childNode}}
		m := pn.Pred.Matcher()
		f := &batchFilterIter{child: child, m: m, ranges: m.AllRanges(), node: node}
		f.col, f.lo, f.hi, f.single = m.Single()
		return f, width, node, nil

	case OpHashJoin:
		probe, pw, probeNode, err := openBatch(db, pn.Children[0], capRows, ov)
		if err != nil {
			return nil, 0, nil, err
		}
		build, bw, buildNode, err := openBatch(db, pn.Children[1], capRows, ov)
		if err != nil {
			return nil, 0, nil, err
		}
		node := &ExecNode{Op: pn.Op.String(), JoinSQL: pn.JoinSQL, Children: []*ExecNode{probeNode, buildNode}}
		jb := newJoinBuild(build, pn.RightKey, bw, capRows)
		ji := newBatchHashJoinIter(probe, jb, pw, pn.LeftKey, capRows)
		ji.node = node
		return ji, pw + bw, node, nil

	case OpAggregate:
		child, width, childNode, err := openBatch(db, pn.Children[0], capRows, ov)
		if err != nil {
			return nil, 0, nil, err
		}
		node := &ExecNode{Op: pn.Op.String(), Children: []*ExecNode{childNode}}
		return &batchCountStarIter{child: child, childCols: width, capRows: capRows, node: node}, 1, node, nil

	default:
		return nil, 0, nil, fmt.Errorf("engine: unknown operator %v", pn.Op)
	}
}

// batchScanIter passes source batches through, counting them.
type batchScanIter struct {
	src  batch.Source
	node *ExecNode
}

func (s *batchScanIter) Next(dst *batch.Batch) bool {
	if !s.src.NextBatch(dst) {
		return false
	}
	s.node.OutRows += int64(dst.Len())
	return true
}

// batchFilterIter compacts each child batch in place, keeping rows that
// match the compiled predicate. Order is preserved. Single-range
// predicates (one column, one interval) are inlined to two compares per
// row over the batch's flat storage; the compiled fast paths are hoisted
// to open time since the predicate is immutable for the iterator's life.
type batchFilterIter struct {
	child  batchIterator
	m      *pred.Matcher
	node   *ExecNode
	ranges []pred.ColRange // non-nil when every column is one interval
	col    int             // Single() fast path
	lo, hi int64
	single bool
}

func (f *batchFilterIter) Next(dst *batch.Batch) bool {
	col, lo, hi, single := f.col, f.lo, f.hi, f.single
	ranges := f.ranges
	for {
		if !f.child.Next(dst) {
			return false
		}
		data := dst.Data()
		w := dst.Cols()
		k := 0
		switch {
		case single:
			for off := 0; off < len(data); off += w {
				v := data[off+col]
				if v >= lo && v < hi {
					if k != off {
						copy(data[k:k+w], data[off:off+w])
					}
					k += w
				}
			}
		case ranges != nil:
			for off := 0; off < len(data); off += w {
				ok := true
				for _, r := range ranges {
					if v := data[off+r.Col]; v < r.Lo || v >= r.Hi {
						ok = false
						break
					}
				}
				if ok {
					if k != off {
						copy(data[k:k+w], data[off:off+w])
					}
					k += w
				}
			}
		default:
			for off := 0; off < len(data); off += w {
				row := data[off : off+w : off+w]
				if f.m.Match(row) {
					if k != off {
						copy(data[k:k+w], row)
					}
					k += w
				}
			}
		}
		dst.Truncate(k / w)
		if k > 0 {
			f.node.OutRows += int64(k / w)
			return true
		}
		// Whole batch filtered out; pull the next one.
	}
}

// joinBuild is the one-time build side of a hash join: a contiguous arena
// of build rows plus a key → row-index map. The arena copy severs aliasing
// with the build source's reused buffers. After construction a joinBuild
// is read-only, so the parallel executor shares one build across all
// workers' probe iterators (build once, probe concurrently).
type joinBuild struct {
	arena []int64           // build rows, row-major
	idx   map[int64][]int32 // build key -> row indices into arena
	cols  int               // build row width
}

// newJoinBuild drains the build-side iterator into the arena + index.
func newJoinBuild(build batchIterator, rightKey, buildCols, capRows int) *joinBuild {
	jb := &joinBuild{idx: make(map[int64][]int32), cols: buildCols}
	b := batch.New(buildCols, capRows)
	var n int32
	for build.Next(b) {
		jb.arena = append(jb.arena, b.Data()...)
		for i := 0; i < b.Len(); i++ {
			k := b.Row(i)[rightKey]
			jb.idx[k] = append(jb.idx[k], n)
			n++
		}
	}
	return jb
}

// batchHashJoinIter streams probe batches against a joinBuild, appending
// concatenated output rows without any per-row allocation.
type batchHashJoinIter struct {
	probe     batchIterator
	node      *ExecNode
	leftKey   int
	probeCols int
	build     *joinBuild

	// probe cursor, carried across Next calls when dst fills mid-batch
	pbatch  *batch.Batch
	pi      int     // next unprocessed row of pbatch
	cur     []int64 // current probe row (aliases pbatch)
	matches []int32
	mi      int
	done    bool
}

func newBatchHashJoinIter(probe batchIterator, jb *joinBuild, probeCols, leftKey, capRows int) *batchHashJoinIter {
	return &batchHashJoinIter{
		probe:     probe,
		leftKey:   leftKey,
		probeCols: probeCols,
		build:     jb,
		pbatch:    batch.New(probeCols, capRows),
	}
}

// reset clears the probe-side cursor so the iterator can serve a fresh
// probe source (the parallel executor reuses one iterator per worker
// across morsels). The shared build state is untouched.
func (h *batchHashJoinIter) reset() {
	h.pbatch.Reset()
	h.pi = 0
	h.cur = nil
	h.matches = nil
	h.mi = 0
	h.done = false
}

func (h *batchHashJoinIter) Next(dst *batch.Batch) bool {
	dst.Reset()
	bw := h.build.cols
	for !dst.Full() {
		if h.mi < len(h.matches) {
			out := dst.Append()
			copy(out, h.cur)
			bi := int(h.matches[h.mi]) * bw
			copy(out[h.probeCols:], h.build.arena[bi:bi+bw])
			h.mi++
			continue
		}
		if h.done {
			break
		}
		if h.pi >= h.pbatch.Len() {
			if !h.probe.Next(h.pbatch) {
				h.done = true
				break
			}
			h.pi = 0
		}
		h.cur = h.pbatch.Row(h.pi)
		h.pi++
		h.matches = h.build.idx[h.cur[h.leftKey]]
		h.mi = 0
	}
	n := dst.Len()
	h.node.OutRows += int64(n)
	return n > 0
}

// batchCountStarIter drains its child, emitting the single COUNT(*) row.
type batchCountStarIter struct {
	child     batchIterator
	childCols int
	capRows   int
	node      *ExecNode
	done      bool
}

func (c *batchCountStarIter) Next(dst *batch.Batch) bool {
	dst.Reset()
	if c.done {
		return false
	}
	c.done = true
	b := batch.New(c.childCols, c.capRows)
	var n int64
	for c.child.Next(b) {
		n += int64(b.Len())
	}
	dst.Append()[0] = n
	c.node.OutRows++
	return true
}
