package engine

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/value"
)

// FuzzSum128 differentially tests the summary-direct path's 128-bit helpers
// against math/big: mul128 and mulAcc128 (word arithmetic and sign
// correction), sumSet128 (the exact-halving interval sum), and the float
// conversions sum128Float / sumSetFloat — the catastrophic-cancellation
// class PR 8 fixed by hand (a small negative total computed as
// −2⁶⁴ + (2⁶⁴ − ε) through the wide path).

// bigIntervalSum is the exact sum of an interval's points: u·(lo+hi−1)/2
// with u = hi−lo; exactly one factor is even, so the division is exact.
func bigIntervalSum(iv value.Interval) *big.Int {
	if iv.Empty() {
		return new(big.Int)
	}
	u := new(big.Int).SetInt64(iv.Hi - iv.Lo)
	m := new(big.Int).SetInt64(iv.Lo + iv.Hi - 1)
	u.Mul(u, m)
	return u.Rsh(u, 1)
}

func FuzzSum128(f *testing.F) {
	// The PR 8 catastrophic-cancellation witness: total −5 carried as
	// lo=−5, hi=−1; the wide conversion path loses it to rounding.
	f.Add(int64(-5), int64(-1), int64(3), int64(-7), int64(9), int64(-100), int64(50), int64(3), int64(1000))
	f.Add(int64(0), int64(0), int64(0), int64(0), int64(0), int64(0), int64(0), int64(0), int64(0))
	f.Add(int64(math.MaxInt64), int64(math.MinInt64), int64(math.MinInt64), int64(math.MaxInt64), int64(1), int64(value.DomainMax/3), int64(1<<31), int64(7), int64(1<<30))
	f.Add(int64(-1), int64(0), int64(-1), int64(-1), int64(math.MaxInt64), int64(value.DomainMin/3), int64(1<<20), int64(0), int64(5))
	f.Fuzz(func(t *testing.T, lo, hi, a, b, c int64, iv1lo, iv1n, gap, iv2n int64) {
		// mul128: unrestricted — any int64 product fits in 128 bits.
		pl, ph := mul128(a, b)
		wantMul := new(big.Int).Mul(big.NewInt(a), big.NewInt(b))
		if big128(pl, ph).Cmp(wantMul) != 0 {
			t.Fatalf("mul128(%d, %d) = %v, want %v", a, b, big128(pl, ph), wantMul)
		}

		// mulAcc128: bounded to its documented contract (c >= 0, operands
		// small enough that hi*c cannot overflow; the engine's totals stay
		// below 2¹²⁴).
		mHi := hi % (1 << 40)
		cm := c % (1 << 20)
		if cm < 0 {
			cm = -cm
		}
		accHi := a % (1 << 40)
		gl, gh := mulAcc128(lo, accHi, b, mHi, cm)
		wantAcc := new(big.Int).Mul(big128(b, mHi), big.NewInt(cm))
		wantAcc.Add(wantAcc, big128(lo, accHi))
		if big128(gl, gh).Cmp(wantAcc) != 0 {
			t.Fatalf("mulAcc128(%d,%d, %d,%d, %d) = %v, want %v", lo, accHi, b, mHi, cm, big128(gl, gh), wantAcc)
		}

		// sumSet128 over a canonical two-interval set built inside the
		// value domain: exact against per-interval big sums.
		lo1 := iv1lo % (value.DomainMax / 2)
		n1 := iv1n & (1<<32 - 1)
		g := gap&(1<<16-1) + 1
		n2 := iv2n & (1<<32 - 1)
		set := value.IntervalSet{
			value.Ival(lo1, lo1+n1),
			value.Ival(lo1+n1+g, lo1+n1+g+n2),
		}
		sl, sh := sumSet128(set)
		wantSum := new(big.Int)
		maxContrib := new(big.Float)
		for _, iv := range set {
			contrib := bigIntervalSum(iv)
			wantSum.Add(wantSum, contrib)
			cf := new(big.Float).SetInt(contrib)
			if cf.Abs(cf).Cmp(maxContrib) > 0 {
				maxContrib = cf
			}
		}
		if big128(sl, sh).Cmp(wantSum) != 0 {
			t.Fatalf("sumSet128(%v) = %v, want %v", set, big128(sl, sh), wantSum)
		}

		// sumSetFloat: the estimation path re-derives the same sum in
		// float64; each interval contributes ~1e-16 relative error, and
		// opposite-sign intervals may cancel, so the bound is scaled by the
		// largest contribution, not the result.
		wantF, _ := new(big.Float).SetInt(wantSum).Float64()
		maxC, _ := maxContrib.Float64()
		if sf := sumSetFloat(set); math.Abs(sf-wantF) > 1e-12*maxC+1e-9 {
			t.Fatalf("sumSetFloat(%v) = %g, want %g (tol %g)", set, sf, wantF, 1e-12*maxC)
		}

		// sum128Float on the raw fuzz words. When the value fits the low
		// word the conversion must be exact to float64 rounding (this is
		// the PR 8 class: small totals with hi = sign extension); the wide
		// path tolerates cancellation up to ~4 ulp of the larger term.
		got := sum128Float(lo, hi)
		want128, _ := new(big.Float).SetInt(big128(lo, hi)).Float64()
		if hi == lo>>63 {
			if got != want128 {
				t.Fatalf("sum128Float(%d, %d) = %g, want exactly %g", lo, hi, got, want128)
			}
		} else if math.Abs(got-want128) > math.Abs(want128)*1e-12 {
			t.Fatalf("sum128Float(%d, %d) = %g, want %g", lo, hi, got, want128)
		}

		// And on the interval-set total, as the fast path consumes it.
		gotSumF := sum128Float(sl, sh)
		if sh == sl>>63 {
			if gotSumF != wantF {
				t.Fatalf("sum128Float(sumSet128(%v)) = %g, want exactly %g", set, gotSumF, wantF)
			}
		} else if math.Abs(gotSumF-wantF) > math.Abs(wantF)*1e-12 {
			t.Fatalf("sum128Float(sumSet128(%v)) = %g, want %g", set, gotSumF, wantF)
		}
	})
}
