package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/engine"
)

// slowR is a datagen source for the toy schema's r table (r_pk, s_fk,
// t_fk): rows are a pure function of their index, and every batch sleeps
// by the current delay — settable at runtime, so one server can serve a
// slow query and then a fast one.
type slowR struct {
	total   int64
	delayNS atomic.Int64
	pos     int64
}

func (g *slowR) Next() ([]int64, bool) {
	if g.pos >= g.total {
		return nil, false
	}
	row := []int64{g.pos, g.pos % 7, g.pos % 5}
	g.pos++
	return row, true
}

func (g *slowR) NextBatch(dst *batch.Batch) bool {
	if d := g.delayNS.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	dst.Reset()
	for !dst.Full() && g.pos < g.total {
		row := dst.Append()
		row[0], row[1], row[2] = g.pos, g.pos%7, g.pos%5
		g.pos++
	}
	return dst.Len() > 0
}

// slowServer builds a server over the toy summary whose r scans stream
// from a slowR of `total` rows, plus the shared delay knob.
func slowServer(t *testing.T, total int64, delay time.Duration, opts Options) (*Server, *atomic.Int64) {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	srv := New(buildToySummary(t), opts)
	var delayNS atomic.Int64
	delayNS.Store(int64(delay))
	srv.db.SetDatagen("r", func() (engine.RowSource, error) {
		g := &slowR{total: total}
		g.delayNS.Store(delayNS.Load())
		return g, nil
	})
	// The caller-supplied source no longer regenerates from the registered
	// summary (different rows, deliberate slowness), so the summary-direct
	// fast path must not answer for it — per the SetSummary contract.
	srv.db.SetSummary("r", nil)
	return srv, &delayNS
}

func postQueryFull(t *testing.T, url string, req QueryRequest) (*http.Response, []byte) {
	t.Helper()
	resp, data, err := tryPostQuery(url, req)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// tryPostQuery is postQueryFull without the test dependency — the form
// helper goroutines use (t.Fatal must not run off the test goroutine).
func tryPostQuery(url string, req QueryRequest) (*http.Response, []byte, error) {
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, data, nil
}

// TestServeAdmissionShed: with one execution slot held and no queue, the
// next request is shed immediately with 429 + Retry-After.
func TestServeAdmissionShed(t *testing.T) {
	srv, _ := slowServer(t, 1000, 0, Options{MaxInFlight: 1, MaxQueue: 0})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.testHookAdmitted = func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	holder := make(chan *http.Response, 1)
	go func() {
		resp, _, _ := tryPostQuery(ts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM r"})
		holder <- resp
	}()
	<-entered

	resp, body := postQueryFull(t, ts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM r"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request got %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 response has no Retry-After header")
	}
	close(release)
	if resp := <-holder; resp == nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("slot holder got %d, want 200", resp.StatusCode)
	}
}

// TestServeQueueWaitThenAdmit: a queued request is admitted when the slot
// frees within the wait, and shed with 429 when it does not.
func TestServeQueueWaitThenAdmit(t *testing.T) {
	srv, _ := slowServer(t, 1000, 0, Options{MaxInFlight: 1, MaxQueue: 4, QueueWait: 30 * time.Millisecond})
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	var first atomic.Bool
	srv.testHookAdmitted = func() {
		entered <- struct{}{}
		if first.CompareAndSwap(false, true) {
			<-release
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	go tryPostQuery(ts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM r"})
	<-entered

	// Queued past the 30ms wait: shed.
	resp, _ := postQueryFull(t, ts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM r"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-timeout request got %d, want 429", resp.StatusCode)
	}

	// Queued with the slot released mid-wait: admitted.
	admitted := make(chan *http.Response, 1)
	go func() {
		resp, _, _ := tryPostQuery(ts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM r"})
		admitted <- resp
	}()
	time.Sleep(5 * time.Millisecond) // let it join the queue
	close(release)
	if resp := <-admitted; resp == nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("queued request got %d after the slot freed, want 200", resp.StatusCode)
	}
}

// TestServeTimeoutMS: a slow query under a 10ms timeout_ms fails fast with
// 504; the same server then answers the identical query correctly once the
// slowness is removed — and the canceled execution has not poisoned the
// plan cache (the retry is a cache hit with the right count).
func TestServeTimeoutMS(t *testing.T) {
	// 200k rows at ~1ms per 1024-row batch ≈ 200ms of work.
	srv, delay := slowServer(t, 200_000, time.Millisecond, Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	tmo := int64(10)
	start := time.Now()
	resp, body := postQueryFull(t, ts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM r", TimeoutMS: &tmo})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out query got %d (%s), want 504", resp.StatusCode, body)
	}
	if elapsed > 250*time.Millisecond {
		t.Fatalf("10ms timeout took %v to fail", elapsed)
	}

	delay.Store(0)
	resp, data := postQueryFull(t, ts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM r"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after timeout got %d (%s), want 200", resp.StatusCode, data)
	}
	var qr QueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Count != 200_000 {
		t.Fatalf("retry counted %d, want 200000 — canceled execution poisoned the cache", qr.Count)
	}
	if qr.Cache != "hit" {
		t.Fatalf("retry was served %q, want \"hit\" (the timed-out miss should have filled the cache)", qr.Cache)
	}
}

// TestServeMaxTimeoutCap: the server cap applies when the request asks for
// more — or for nothing.
func TestServeMaxTimeoutCap(t *testing.T) {
	srv, _ := slowServer(t, 200_000, time.Millisecond, Options{MaxTimeout: 10 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for name, req := range map[string]QueryRequest{
		"no timeout_ms":   {SQL: "SELECT COUNT(*) FROM r"},
		"huge timeout_ms": {SQL: "SELECT COUNT(*) FROM r", TimeoutMS: ptrInt64(60_000)},
	} {
		resp, body := postQueryFull(t, ts.URL, req)
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("%s: got %d (%s), want 504 via MaxTimeout", name, resp.StatusCode, body)
		}
	}
}

func ptrInt64(v int64) *int64 { return &v }

// TestServeBadTimeoutMS: non-positive timeout_ms is a 400.
func TestServeBadTimeoutMS(t *testing.T) {
	srv := New(buildToySummary(t), Options{Logf: t.Logf})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, v := range []int64{0, -5} {
		resp, _ := postQueryFull(t, ts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM r", TimeoutMS: &v})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("timeout_ms %d got %d, want 400", v, resp.StatusCode)
		}
	}
}

// TestServeDrain: BeginDrain refuses fresh and queued requests with 503 +
// Retry-After while the admitted query finishes; CancelInFlight then
// force-unwinds a running query into a 499.
func TestServeDrain(t *testing.T) {
	srv, _ := slowServer(t, 2_000_000, time.Millisecond, Options{MaxInFlight: 2})
	entered := make(chan struct{}, 2)
	srv.testHookAdmitted = func() { entered <- struct{}{} }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A long query is admitted and running (~2000ms of work).
	running := make(chan *http.Response, 1)
	go func() {
		resp, _, _ := tryPostQuery(ts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM r"})
		running <- resp
	}()
	<-entered

	srv.BeginDrain()
	resp, _ := postQueryFull(t, ts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM r"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during drain got %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("503 response has no Retry-After header")
	}

	// Grace expired: hard-cancel. The in-flight query unwinds with 499.
	srv.CancelInFlight()
	select {
	case resp := <-running:
		if resp == nil || resp.StatusCode != StatusClientClosedRequest {
			t.Fatalf("hard-canceled query got %d, want %d", resp.StatusCode, StatusClientClosedRequest)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hard-canceled query did not return")
	}
}

// TestServeMetricsz: the exposition carries the gauges, outcome counters,
// shed counters, and histograms, and they move with traffic.
func TestServeMetricsz(t *testing.T) {
	srv, _ := slowServer(t, 100, 0, Options{MaxInFlight: 1, MaxQueue: 0})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One success, one bad request.
	if resp, body := postQueryFull(t, ts.URL, QueryRequest{SQL: "SELECT COUNT(*) FROM r"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query got %d (%s)", resp.StatusCode, body)
	}
	if resp, _ := postQueryFull(t, ts.URL, QueryRequest{SQL: ""}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty sql got %d, want 400", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metricsz content type %q, want text/plain exposition", ct)
	}
	data, _ := io.ReadAll(resp.Body)
	text := string(data)
	for _, want := range []string{
		"hydra_inflight_queries 0",
		"hydra_queued_queries 0",
		`hydra_requests_total{outcome="ok"} 1`,
		`hydra_requests_total{outcome="bad_request"} 1`,
		`hydra_shed_total{reason="queue_full"} 0`,
		`hydra_request_duration_seconds_count{outcome="ok"} 1`,
		`hydra_request_duration_seconds_bucket{outcome="ok",le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metricsz missing %q; got:\n%s", want, text)
		}
	}
}

// TestWriteJSONErrors: an unencodable value yields a well-formed 500 and a
// log line; a failing writer yields a log line and no second WriteHeader.
func TestWriteJSONErrors(t *testing.T) {
	var logged []string
	srv := New(buildToySummary(t), Options{Logf: func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}})

	rec := httptest.NewRecorder()
	srv.writeJSON(rec, http.StatusOK, make(chan int)) // channels cannot marshal
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("unencodable value wrote status %d, want 500", rec.Code)
	}
	if len(logged) == 0 || !strings.Contains(logged[0], "encoding") {
		t.Fatalf("encode failure not logged: %v", logged)
	}

	logged = nil
	fw := &failingWriter{ResponseWriter: httptest.NewRecorder()}
	srv.writeJSON(fw, http.StatusOK, map[string]int{"a": 1})
	if len(logged) == 0 || !strings.Contains(logged[0], "writing") {
		t.Fatalf("write failure not logged: %v", logged)
	}
	if fw.headerCalls != 1 {
		t.Fatalf("WriteHeader called %d times, want exactly 1", fw.headerCalls)
	}
}

type failingWriter struct {
	http.ResponseWriter
	headerCalls int
}

func (f *failingWriter) WriteHeader(status int) {
	f.headerCalls++
	f.ResponseWriter.WriteHeader(status)
}

func (f *failingWriter) Write([]byte) (int, error) {
	return 0, errors.New("connection reset by peer")
}
