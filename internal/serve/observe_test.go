package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/toy"
	"repro/internal/trace"
)

// postQueryReq posts an arbitrary QueryRequest with optional headers and
// decodes the response.
func postQueryReq(t *testing.T, url string, req QueryRequest, hdr map[string]string) (*http.Response, QueryResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	hr, err := http.NewRequest(http.MethodPost, url+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hr.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, qr
}

// TestServeExplain pins the explain surface: "explain": true returns the
// span tree as JSON plus rendered text, the tree mirrors the plan's shape
// with per-operator rows, and the same query without explain carries no
// trace. An EXPLAIN ANALYZE SQL prefix is the equivalent spelling.
func TestServeExplain(t *testing.T) {
	sum := buildToySummary(t)
	ts := httptest.NewServer(New(sum, Options{SampleLimit: 2}).Handler())
	defer ts.Close()

	sql := toy.Workload()[1]
	resp, qr := postQueryReq(t, ts.URL, QueryRequest{SQL: sql, Explain: true}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain query status %d", resp.StatusCode)
	}
	if qr.Trace == nil || qr.TraceText == "" {
		t.Fatalf("explain response missing trace: trace=%v text=%q", qr.Trace, qr.TraceText)
	}
	// The span tree mirrors the annotated plan: same ops, same shape, same
	// per-operator cardinalities.
	var spOps, planOps []string
	var spRows, planRows []int64
	trace.Walk(qr.Trace, func(sp *trace.Span) {
		spOps = append(spOps, sp.Op)
		spRows = append(spRows, sp.Rows)
	})
	collectPlan(qr.Plan, &planOps, &planRows)
	if len(spOps) != len(planOps) {
		t.Fatalf("span tree has %d nodes, plan has %d", len(spOps), len(planOps))
	}
	for i := range spOps {
		if spOps[i] != planOps[i] {
			t.Fatalf("span[%d] op %q, plan op %q", i, spOps[i], planOps[i])
		}
		if spRows[i] != planRows[i] {
			t.Fatalf("span[%d] (%s) rows %d, plan out_rows %d", i, spOps[i], spRows[i], planRows[i])
		}
	}
	if qr.Trace.DurNS <= 0 || qr.Trace.Batches <= 0 {
		t.Fatalf("root span not timed: %+v", qr.Trace)
	}
	for _, op := range spOps {
		if !strings.Contains(qr.TraceText, op) {
			t.Fatalf("trace_text missing op %s:\n%s", op, qr.TraceText)
		}
	}

	// EXPLAIN ANALYZE in the SQL itself is the same request.
	resp, qr2 := postQueryReq(t, ts.URL, QueryRequest{SQL: "EXPLAIN ANALYZE " + sql}, nil)
	if resp.StatusCode != http.StatusOK || qr2.Trace == nil {
		t.Fatalf("EXPLAIN ANALYZE prefix: status %d trace %v", resp.StatusCode, qr2.Trace)
	}
	if qr2.Rows != qr.Rows || qr2.Count != qr.Count {
		t.Fatalf("EXPLAIN ANALYZE answer drifted: %d/%d vs %d/%d", qr2.Rows, qr2.Count, qr.Rows, qr.Count)
	}

	// Without explain: same answer, no trace in the body.
	resp, qr3 := postQueryReq(t, ts.URL, QueryRequest{SQL: sql}, nil)
	if resp.StatusCode != http.StatusOK || qr3.Trace != nil || qr3.TraceText != "" {
		t.Fatalf("untraced response carries trace: %v %q", qr3.Trace, qr3.TraceText)
	}
	if qr3.Count != qr.Count {
		t.Fatalf("explain changed the answer: %d vs %d", qr.Count, qr3.Count)
	}
}

// tracePlanNode mirrors the op/out_rows/children fields of the plan JSON.
type tracePlanNode struct {
	Op       string           `json:"op"`
	OutRows  int64            `json:"out_rows"`
	Children []*tracePlanNode `json:"children"`
}

// collectPlan flattens the response plan tree in preorder.
func collectPlan(n any, ops *[]string, rows *[]int64) {
	data, _ := json.Marshal(n)
	var pn tracePlanNode
	if err := json.Unmarshal(data, &pn); err != nil {
		return
	}
	var walk func(p *tracePlanNode)
	walk = func(p *tracePlanNode) {
		*ops = append(*ops, p.Op)
		*rows = append(*rows, p.OutRows)
		for _, ch := range p.Children {
			walk(ch)
		}
	}
	walk(&pn)
}

// TestServeRequestID pins request-ID propagation: a client-supplied
// X-Request-Id is echoed in header and body; absent one, the server assigns
// sequential q-N IDs.
func TestServeRequestID(t *testing.T) {
	sum := buildToySummary(t)
	ts := httptest.NewServer(New(sum, Options{SampleLimit: 2}).Handler())
	defer ts.Close()

	sql := toy.Workload()[0]
	resp, qr := postQueryReq(t, ts.URL, QueryRequest{SQL: sql}, map[string]string{"X-Request-Id": "req-abc"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "req-abc" {
		t.Fatalf("header request id = %q, want req-abc", got)
	}
	if qr.RequestID != "req-abc" {
		t.Fatalf("body request id = %q, want req-abc", qr.RequestID)
	}

	resp, qr = postQueryReq(t, ts.URL, QueryRequest{SQL: sql}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if qr.RequestID != "q-1" || resp.Header.Get("X-Request-Id") != "q-1" {
		t.Fatalf("assigned request id = %q / %q, want q-1", qr.RequestID, resp.Header.Get("X-Request-Id"))
	}
	if _, qr = postQueryReq(t, ts.URL, QueryRequest{SQL: sql}, nil); qr.RequestID != "q-2" {
		t.Fatalf("second assigned request id = %q, want q-2", qr.RequestID)
	}
}

// TestServeSlowQueryLog pins the structured slow-query log: a query over
// the threshold emits one slog record carrying the request ID, SQL, cache
// disposition, and (traced) the top operators by self time; under the
// threshold nothing is logged.
func TestServeSlowQueryLog(t *testing.T) {
	sum := buildToySummary(t)
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	srv := New(sum, Options{
		SampleLimit:        2,
		TraceQueries:       true,
		SlowQueryThreshold: time.Nanosecond, // everything is slow
		Logger:             logger,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sql := toy.Workload()[1]
	if resp, _ := postQueryReq(t, ts.URL, QueryRequest{SQL: sql}, map[string]string{"X-Request-Id": "slow-1"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	line := buf.String()
	if line == "" {
		t.Fatal("no slow-query record emitted")
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(line, "\n", 2)[0]), &rec); err != nil {
		t.Fatalf("slow-query record is not JSON: %v\n%s", err, line)
	}
	if rec["msg"] != "slow query" || rec["request_id"] != "slow-1" || rec["sql"] != sql {
		t.Fatalf("slow-query record = %v", rec)
	}
	if rec["cache"] != "miss" {
		t.Fatalf("slow-query cache = %v, want miss", rec["cache"])
	}
	topOps, _ := rec["top_ops"].(string)
	if topOps == "" || !strings.Contains(topOps, "=") {
		t.Fatalf("slow-query top_ops = %q", topOps)
	}

	// Threshold high: silence.
	var quiet bytes.Buffer
	srv2 := New(sum, Options{
		SampleLimit:        2,
		SlowQueryThreshold: time.Hour,
		Logger:             slog.New(slog.NewJSONHandler(&quiet, nil)),
	})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if resp, _ := postQueryReq(t, ts2.URL, QueryRequest{SQL: sql}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if quiet.Len() != 0 {
		t.Fatalf("fast query logged as slow: %s", quiet.String())
	}
}

// TestServeObservabilityMetrics pins the new /metricsz series: per-operator
// self-time histograms (advanced by traced queries), engine counters,
// runtime gauges, and build info.
func TestServeObservabilityMetrics(t *testing.T) {
	sum := buildToySummary(t)
	srv := New(sum, Options{SampleLimit: 2, TraceQueries: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A join query regenerates (the summary-direct fast path only claims
	// single-table aggregates), so SCAN spans and generation counters move.
	sql := toy.Workload()[3]
	if resp, _ := postQueryReq(t, ts.URL, QueryRequest{SQL: sql}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)

	for _, want := range []string{
		`hydra_operator_self_seconds_bucket{op="SCAN"`,
		`hydra_operator_self_seconds_count{op="SCAN"}`,
		"hydra_engine_rows_generated_total",
		"hydra_engine_result_rows_total",
		"hydra_engine_batches_total",
		"hydra_rows_pruned_total",
		"hydra_summary_rows_skipped_total",
		"hydra_plan_cache_build_seconds_total",
		"hydra_goroutines",
		"hydra_gc_pause_seconds_total",
		"hydra_heap_inuse_bytes",
		"hydra_build_info{version=",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metricsz missing %q", want)
		}
	}
	// A traced query advanced the SCAN histogram and the engine counters.
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, `hydra_operator_self_seconds_count{op="SCAN"}`) {
			if strings.HasSuffix(line, " 0") {
				t.Fatalf("SCAN self-time histogram not advanced: %s", line)
			}
		}
		if strings.HasPrefix(line, "hydra_engine_rows_generated_total") {
			if strings.HasSuffix(line, " 0") {
				t.Fatalf("rows-generated counter not advanced: %s", line)
			}
		}
	}
}

// TestServeSummaryAggPath pins the serve surface of the summary-direct
// fast path: the response's "path" field says how each query was answered,
// the /statsz ring records it, hydra_summaryagg_queries_total counts the
// summary-answered population, and an approx request gets its own
// plan-cache entry plus estimation info when estimation actually happened.
func TestServeSummaryAggPath(t *testing.T) {
	sum := buildToySummary(t)
	srv := New(sum, Options{SampleLimit: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A single-table aggregate is answered summary-directly; a join
	// regenerates. Both report their path.
	fastSQL := "SELECT COUNT(*) FROM s WHERE s.a >= 20 AND s.a < 60"
	resp, qr := postQueryReq(t, ts.URL, QueryRequest{SQL: fastSQL}, nil)
	if resp.StatusCode != http.StatusOK || qr.Path != "summary" {
		t.Fatalf("eligible aggregate: status %d path %q, want 200 %q", resp.StatusCode, qr.Path, "summary")
	}
	want := seqCount(t, sum, fastSQL)
	if qr.Count != want.Count {
		t.Fatalf("summary-path count %d, want %d", qr.Count, want.Count)
	}
	if qr.Approx != nil {
		t.Fatalf("exact summary answer carries approx info %+v", qr.Approx)
	}
	joinSQL := toy.Workload()[3]
	resp, qr = postQueryReq(t, ts.URL, QueryRequest{SQL: joinSQL}, nil)
	if resp.StatusCode != http.StatusOK || qr.Path != "regen" {
		t.Fatalf("join: status %d path %q, want 200 %q", resp.StatusCode, qr.Path, "regen")
	}

	// An approx request on an exactly answerable query stays exact (no
	// approx payload) but must not share the exact request's cache entry.
	resp, qr = postQueryReq(t, ts.URL, QueryRequest{SQL: fastSQL, Approx: true}, nil)
	if resp.StatusCode != http.StatusOK || qr.Path != "summary" || qr.Approx != nil {
		t.Fatalf("approx-eligible exact query: status %d path %q approx %+v", resp.StatusCode, qr.Path, qr.Approx)
	}
	if qr.Cache != "miss" {
		t.Fatalf("approx request reused the exact entry (cache %q, want miss)", qr.Cache)
	}
	if qr.Count != want.Count {
		t.Fatalf("approx-mode exact count %d, want %d", qr.Count, want.Count)
	}

	// The /statsz ring remembers each query's path (newest first).
	stats := getStats(t, ts.URL)
	if len(stats.Recent) < 3 {
		t.Fatalf("statsz ring holds %d entries, want >= 3", len(stats.Recent))
	}
	byNewest := []string{"summary", "regen", "summary"}
	for i, wantPath := range byNewest {
		if got := stats.Recent[i].Path; got != wantPath {
			t.Fatalf("statsz recent[%d] path %q, want %q (%s)", i, got, wantPath, stats.Recent[i].SQL)
		}
	}

	// The metric counted exactly the two summary-answered queries.
	mresp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	data, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if want := "hydra_summaryagg_queries_total 2"; !strings.Contains(string(data), want+"\n") {
		t.Fatalf("/metricsz missing %q", want)
	}
}

// TestServeScanPruneObservability pins the serve surface of predicate
// pushdown: the filtered join regenerates only the qualifying row-space, so
// hydra_rows_pruned_total and hydra_summary_rows_skipped_total advance and
// the /statsz ring carries the query's pruned-tuple count.
func TestServeScanPruneObservability(t *testing.T) {
	sum := buildToySummary(t)
	srv := New(sum, Options{SampleLimit: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// toy.Query filters s and t; both filters prune on the toy summary.
	sql := toy.Workload()[3]
	if resp, _ := postQueryReq(t, ts.URL, QueryRequest{SQL: sql}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var pruned int64
	for _, line := range strings.Split(string(data), "\n") {
		switch {
		case strings.HasPrefix(line, "hydra_rows_pruned_total "):
			fmt.Sscanf(line, "hydra_rows_pruned_total %d", &pruned)
			if pruned <= 0 {
				t.Fatalf("rows-pruned counter not advanced: %s", line)
			}
		case strings.HasPrefix(line, "hydra_summary_rows_skipped_total "):
			if strings.HasSuffix(line, " 0") {
				t.Fatalf("summary-rows-skipped counter not advanced: %s", line)
			}
		}
	}
	if pruned == 0 {
		t.Fatal("/metricsz missing hydra_rows_pruned_total")
	}

	stats := getStats(t, ts.URL)
	if len(stats.Recent) == 0 {
		t.Fatal("statsz ring empty")
	}
	if got := stats.Recent[0].Pruned; got != pruned {
		t.Fatalf("statsz recent[0] pruned %d, want %d (the query's whole prune count)", got, pruned)
	}
}

// TestServePprofGate pins that /debug/pprof is absent by default and
// mounted under Options.EnablePprof.
func TestServePprofGate(t *testing.T) {
	sum := buildToySummary(t)

	off := httptest.NewServer(New(sum, Options{}).Handler())
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable without EnablePprof: %d", resp.StatusCode)
	}

	on := httptest.NewServer(New(sum, Options{EnablePprof: true}).Handler())
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "goroutine") {
		t.Fatalf("pprof index: status %d body %.80s", resp.StatusCode, data)
	}
}
