// The /statsz recent-query ring: a fixed window of the last QueryRingSize
// completed queries, newest first. One summary per query — SQL, request ID,
// cache disposition, timing, cardinality, and the operator that dominated
// self time — so an operator can answer "what has this server been doing"
// without scraping logs. The ring is deliberately tiny and mutex-guarded:
// inserting one summary per query is nothing next to executing the query.
package serve

import "sync"

// QueryRingSize is how many completed queries GET /statsz remembers.
const QueryRingSize = 32

// QuerySummary is one completed query in the /statsz ring.
type QuerySummary struct {
	SQL       string `json:"sql"`
	RequestID string `json:"request_id,omitempty"`
	// Cache is the plan-cache disposition: "hit", "miss", or "bypass".
	Cache     string `json:"cache,omitempty"`
	ElapsedNS int64  `json:"elapsed_ns"`
	Rows      int64  `json:"rows"`
	// Path says how the query was answered: "summary" when the
	// summary-direct aggregate fast path proved the answer from summary-row
	// arithmetic, "regen" when tuples were regenerated.
	Path string `json:"path,omitempty"`
	// Pruned is the number of tuples scan pruning proved non-matching and
	// never generated for this query (0 when pruning did not apply).
	Pruned int64 `json:"pruned,omitempty"`
	// TopOp is the operator with the largest self time when the query was
	// traced, else the plan's root operator.
	TopOp string `json:"top_op,omitempty"`
}

// queryRing is a fixed-size overwrite ring of query summaries.
type queryRing struct {
	mu   sync.Mutex
	buf  [QueryRingSize]QuerySummary
	next int // slot the next add writes
	n    int // live entries, <= QueryRingSize
}

// add records one completed query, evicting the oldest once full.
func (q *queryRing) add(s QuerySummary) {
	q.mu.Lock()
	q.buf[q.next] = s
	q.next = (q.next + 1) % QueryRingSize
	if q.n < QueryRingSize {
		q.n++
	}
	q.mu.Unlock()
}

// snapshot copies the ring's contents newest-first.
func (q *queryRing) snapshot() []QuerySummary {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == 0 {
		return nil
	}
	out := make([]QuerySummary, q.n)
	for i := 0; i < q.n; i++ {
		out[i] = q.buf[(q.next-1-i+QueryRingSize)%QueryRingSize]
	}
	return out
}
