package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sqlkit"
	"repro/internal/summary"
	"repro/internal/toy"
)

// buildToySummary captures the toy workload and builds its summary.
func buildToySummary(t *testing.T) *summary.Database {
	t.Helper()
	db, err := toy.Database(42)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := core.CaptureClient(db, toy.Workload(), core.CaptureOptions{SkipStats: true})
	if err != nil {
		t.Fatal(err)
	}
	sum, _, err := core.BuildFromPackage(pkg, summary.DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// seqCount executes sql sequentially against a fresh dataless database,
// the reference every served answer is held to.
func seqCount(t *testing.T, sum *summary.Database, sql string) *engine.ExecResult {
	t.Helper()
	db := core.RegenDatabase(sum, 0)
	q, err := sqlkit.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := engine.BuildPlan(db.Schema, q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Execute(db, plan, engine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func postQuery(t *testing.T, url, sql string) (*http.Response, QueryResponse) {
	t.Helper()
	body, _ := json.Marshal(QueryRequest{SQL: sql})
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, qr
}

// TestServeSmoke is the serve-endpoint smoke test: start a server over a
// built summary, issue every toy workload query, and assert each served
// COUNT matches sequential in-process execution.
func TestServeSmoke(t *testing.T) {
	sum := buildToySummary(t)
	ts := httptest.NewServer(New(sum, Options{Parallelism: 2, SampleLimit: 3}).Handler())
	defer ts.Close()

	// Health first.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hr.Status != "ok" || hr.Tables != len(sum.Relations) {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, hr)
	}

	for _, sql := range toy.Workload() {
		want := seqCount(t, sum, sql)
		resp, qr := postQuery(t, ts.URL, sql)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", sql, resp.StatusCode)
		}
		if qr.Count != want.Count || qr.Rows != want.Rows {
			t.Fatalf("%s: served count/rows %d/%d, want %d/%d", sql, qr.Count, qr.Rows, want.Count, want.Rows)
		}
		if qr.Plan == nil || qr.Plan.OutRows != want.Root.OutRows {
			t.Fatalf("%s: served plan %+v, want root out_rows %d", sql, qr.Plan, want.Root.OutRows)
		}
	}
}

// TestServeConcurrentClients hammers one server from many goroutines —
// the demonstration scenario: concurrent clients, one zero-row database —
// and requires every answer to equal the sequential reference. Run under
// -race this also proves the shared dataless database is race-free.
func TestServeConcurrentClients(t *testing.T) {
	sum := buildToySummary(t)
	ts := httptest.NewServer(New(sum, Options{Parallelism: 4}).Handler())
	defer ts.Close()

	queries := toy.Workload()
	want := make([]int64, len(queries))
	for i, sql := range queries {
		want[i] = seqCount(t, sum, sql).Count
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i, sql := range queries {
				body, _ := json.Marshal(QueryRequest{SQL: sql})
				resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var qr QueryResponse
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if qr.Count != want[i] {
					errs <- &countMismatch{sql: sql, got: qr.Count, want: want[i]}
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type countMismatch struct {
	sql       string
	got, want int64
}

func (e *countMismatch) Error() string {
	return e.sql + ": served count mismatch"
}

// TestServeErrors exercises the failure surfaces: wrong method, bad JSON,
// missing SQL, unparsable SQL, unknown table.
func TestServeErrors(t *testing.T) {
	sum := buildToySummary(t)
	ts := httptest.NewServer(New(sum, Options{}).Handler())
	defer ts.Close()

	get, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query = %d, want 405", get.StatusCode)
	}
	if allow := get.Header.Get("Allow"); allow != "POST" {
		t.Fatalf("GET /query Allow header = %q, want POST", allow)
	}

	for _, tc := range []struct {
		body string
		want int
	}{
		{"{not json", http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},
		{`{"sql": "SELEC nope"}`, http.StatusBadRequest},
		{`{"sql": "SELECT COUNT(*) FROM no_such_table"}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var er errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("body %q: error reply is not JSON: %v", tc.body, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("body %q = %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
		if er.Error == "" {
			t.Fatalf("body %q: empty error message", tc.body)
		}
	}
}

// TestServeMethodNotAllowed pins the 405 + Allow contract on every
// endpoint and method that isn't the supported one.
func TestServeMethodNotAllowed(t *testing.T) {
	sum := buildToySummary(t)
	ts := httptest.NewServer(New(sum, Options{}).Handler())
	defer ts.Close()

	for _, tc := range []struct {
		method, path, allow string
	}{
		{http.MethodGet, "/query", "POST"},
		{http.MethodPut, "/query", "POST"},
		{http.MethodDelete, "/query", "POST"},
		{http.MethodHead, "/query", "POST"},
		{http.MethodPost, "/healthz", "GET"},
		{http.MethodPost, "/statsz", "GET"},
		{http.MethodPut, "/statsz", "GET"},
		{http.MethodDelete, "/statsz", "GET"},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s = %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != tc.allow {
			t.Fatalf("%s %s Allow = %q, want %q", tc.method, tc.path, allow, tc.allow)
		}
	}
}

// TestServeCacheHit exercises the plan/build cache end to end: the first
// request for a query misses and populates, repeats (including
// whitespace-variant spellings) hit, answers stay identical, stats add up,
// and the invalidation hook empties the cache.
func TestServeCacheHit(t *testing.T) {
	sum := buildToySummary(t)
	srv := New(sum, Options{SampleLimit: 3})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const sql = "SELECT COUNT(*) FROM r, s WHERE r.s_fk = s.s_pk AND s.a >= 20 AND s.a < 60"
	want := seqCount(t, sum, sql)

	resp, qr := postQuery(t, ts.URL, sql)
	if resp.StatusCode != http.StatusOK || qr.Cache != "miss" {
		t.Fatalf("first request: status %d cache %q, want 200 miss", resp.StatusCode, qr.Cache)
	}
	if qr.Count != want.Count {
		t.Fatalf("first request count %d, want %d", qr.Count, want.Count)
	}
	for i, variant := range []string{
		sql,
		"SELECT  COUNT(*)   FROM r, s WHERE r.s_fk = s.s_pk AND s.a >= 20 AND s.a < 60",
		"\tSELECT COUNT(*) FROM r, s\n WHERE r.s_fk = s.s_pk AND s.a >= 20 AND s.a < 60 ",
	} {
		resp, qr := postQuery(t, ts.URL, variant)
		if resp.StatusCode != http.StatusOK || qr.Cache != "hit" {
			t.Fatalf("repeat %d: status %d cache %q, want 200 hit", i, resp.StatusCode, qr.Cache)
		}
		if qr.Count != want.Count || qr.Rows != want.Rows {
			t.Fatalf("repeat %d: count/rows %d/%d, want %d/%d", i, qr.Count, qr.Rows, want.Count, want.Rows)
		}
		if qr.Plan == nil || qr.Plan.OutRows != want.Root.OutRows {
			t.Fatalf("repeat %d: cached plan annotation %+v, want root out_rows %d", i, qr.Plan, want.Root.OutRows)
		}
	}
	st := srv.CacheStats()
	if st.Hits != 3 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("cache stats = %+v, want 3 hits / 1 miss / 1 entry", st)
	}

	srv.InvalidateCache()
	if st := srv.CacheStats(); st.Entries != 0 {
		t.Fatalf("after invalidate: %d entries", st.Entries)
	}
	resp, qr = postQuery(t, ts.URL, sql)
	if resp.StatusCode != http.StatusOK || qr.Cache != "miss" {
		t.Fatalf("post-invalidate: status %d cache %q, want 200 miss", resp.StatusCode, qr.Cache)
	}
	if qr.Count != want.Count {
		t.Fatalf("post-invalidate count %d, want %d", qr.Count, want.Count)
	}
}

// TestServeCacheLRUEviction fills a size-2 cache with three distinct
// queries and checks the least recently used entry was evicted.
func TestServeCacheLRUEviction(t *testing.T) {
	sum := buildToySummary(t)
	srv := New(sum, Options{PlanCacheSize: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	queries := []string{
		"SELECT COUNT(*) FROM s",
		"SELECT COUNT(*) FROM s WHERE s.a >= 20",
		"SELECT COUNT(*) FROM s WHERE s.a >= 40",
	}
	for _, sql := range queries {
		if _, qr := postQuery(t, ts.URL, sql); qr.Cache != "miss" {
			t.Fatalf("%s: cache %q, want miss", sql, qr.Cache)
		}
	}
	if st := srv.CacheStats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want cap 2", st.Entries)
	}
	// queries[0] was evicted; queries[2] is still resident.
	if _, qr := postQuery(t, ts.URL, queries[0]); qr.Cache != "miss" {
		t.Fatalf("evicted query served from cache")
	}
	if _, qr := postQuery(t, ts.URL, queries[2]); qr.Cache != "hit" {
		t.Fatalf("resident query missed")
	}
}

// TestServeCacheDisabled: a negative PlanCacheSize bypasses caching.
func TestServeCacheDisabled(t *testing.T) {
	sum := buildToySummary(t)
	srv := New(sum, Options{PlanCacheSize: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const sql = "SELECT COUNT(*) FROM s"
	for i := 0; i < 2; i++ {
		if _, qr := postQuery(t, ts.URL, sql); qr.Cache != "bypass" {
			t.Fatalf("request %d: cache %q, want bypass", i, qr.Cache)
		}
	}
	if st := srv.CacheStats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("disabled cache recorded activity: %+v", st)
	}
}

// TestServeRequestExecOptions drives batch_size and parallelism through
// the POST body: valid overrides execute (with identical answers to the
// defaults), invalid ones are rejected through ExecOptions.Normalize with
// 400.
func TestServeRequestExecOptions(t *testing.T) {
	sum := buildToySummary(t)
	ts := httptest.NewServer(New(sum, Options{}).Handler())
	defer ts.Close()

	const sql = "SELECT COUNT(*) FROM r, s WHERE r.s_fk = s.s_pk AND s.a >= 20 AND s.a < 60"
	want := seqCount(t, sum, sql)

	postRaw := func(body string) (*http.Response, QueryResponse) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var qr QueryResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
				t.Fatal(err)
			}
		}
		return resp, qr
	}

	for _, body := range []string{
		`{"sql": "` + sql + `", "batch_size": 3}`,
		`{"sql": "` + sql + `", "parallelism": 2}`,
		`{"sql": "` + sql + `", "batch_size": 7, "parallelism": 1}`,
		`{"sql": "` + sql + `", "parallelism": 0}`,
	} {
		resp, qr := postRaw(body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("body %s: status %d", body, resp.StatusCode)
		}
		if qr.Count != want.Count {
			t.Fatalf("body %s: count %d, want %d", body, qr.Count, want.Count)
		}
	}

	// Parallelism beyond GOMAXPROCS is clamped by Normalize, not rejected,
	// and the response reports the effective value.
	resp, qr := postRaw(`{"sql": "` + sql + `", "parallelism": 1000000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("oversubscribed parallelism: status %d", resp.StatusCode)
	}
	if qr.Parallelism > runtime.GOMAXPROCS(0) {
		t.Fatalf("parallelism %d not clamped to GOMAXPROCS", qr.Parallelism)
	}

	// A negative batch size has no sensible meaning: 400 via Normalize.
	resp, _ = postRaw(`{"sql": "` + sql + `", "batch_size": -1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative batch_size: status %d, want 400", resp.StatusCode)
	}
}

// BenchmarkServeQueryCacheHit measures steady-state handler latency for a
// join query served from the plan/build cache — probe cost only, no parse,
// no plan, no hash-table build. Compare with BenchmarkServeQueryCacheMiss
// (which invalidates the cache every iteration, paying full build cost) for
// the latency the cache removes.
func BenchmarkServeQueryCacheHit(b *testing.B) {
	srv, body := benchServer(b)
	h := srv.Handler()
	runServeBench(b, h, body, nil)
}

// BenchmarkServeQueryCacheMiss is the same request with the cache
// invalidated before every iteration: parse + plan + build + probe.
func BenchmarkServeQueryCacheMiss(b *testing.B) {
	srv, body := benchServer(b)
	h := srv.Handler()
	runServeBench(b, h, body, srv.InvalidateCache)
}

func benchServer(b *testing.B) (*Server, []byte) {
	b.Helper()
	db, err := toy.Database(42)
	if err != nil {
		b.Fatal(err)
	}
	pkg, err := core.CaptureClient(db, toy.Workload(), core.CaptureOptions{SkipStats: true})
	if err != nil {
		b.Fatal(err)
	}
	sum, _, err := core.BuildFromPackage(pkg, summary.DefaultBuildOptions())
	if err != nil {
		b.Fatal(err)
	}
	body, _ := json.Marshal(QueryRequest{SQL: "SELECT COUNT(*) FROM r, s WHERE r.s_fk = s.s_pk AND s.a >= 20 AND s.a < 60"})
	return New(sum, Options{}), body
}

func runServeBench(b *testing.B, h http.Handler, body []byte, perIter func()) {
	b.Helper()
	// Warm the cache once so the hit benchmark's first iteration is hot.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body)))
	if w.Code != http.StatusOK {
		b.Fatalf("warmup status %d: %s", w.Code, w.Body.String())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if perIter != nil {
			perIter()
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body)))
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}

// TestNormalizeSQL: whitespace collapses outside string literals only —
// whitespace inside a literal is data, and aliasing 'a  b' to 'a b' would
// serve one query's answer for the other.
func TestNormalizeSQL(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"SELECT  COUNT(*)\t FROM r ", "SELECT COUNT(*) FROM r"},
		{"  \n SELECT * FROM r", "SELECT * FROM r"},
		{"SELECT * FROM r WHERE a = 'x  y'", "SELECT * FROM r WHERE a = 'x  y'"},
		{"SELECT * FROM r   WHERE a = 'x  y'  AND b = 1", "SELECT * FROM r WHERE a = 'x  y' AND b = 1"},
		{"WHERE a = 'it''s  ok'   AND b=1", "WHERE a = 'it''s  ok' AND b=1"},
		{"WHERE a = '\ttabs\t'", "WHERE a = '\ttabs\t'"},
	} {
		if got := normalizeSQL(tc.in); got != tc.want {
			t.Errorf("normalizeSQL(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	// Literal-internal whitespace must keep distinct queries distinct.
	if normalizeSQL("WHERE a = 'x  y'") == normalizeSQL("WHERE a = 'x y'") {
		t.Fatal("distinct literals alias to one cache key")
	}
}

// TestPlanCacheSingleflight: concurrent misses on one cold key run the
// build exactly once; every caller shares the result, and exactly one
// entry lands in the cache.
func TestPlanCacheSingleflight(t *testing.T) {
	c := newPlanCache(8)
	var builds int32
	want := &engine.Prepared{}
	build := func() (*engine.Prepared, error) {
		atomic.AddInt32(&builds, 1)
		time.Sleep(20 * time.Millisecond) // widen the herd window
		return want, nil
	}
	const herd = 16
	var wg sync.WaitGroup
	got := make([]*engine.Prepared, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prep, _, err := c.do("k", build)
			if err != nil {
				t.Error(err)
			}
			got[i] = prep
		}(i)
	}
	wg.Wait()
	if n := atomic.LoadInt32(&builds); n != 1 {
		t.Fatalf("herd of %d ran %d builds, want 1", herd, n)
	}
	for i, prep := range got {
		if prep != want {
			t.Fatalf("caller %d got a different Prepared", i)
		}
	}
	if st := c.stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
	// A build error is shared with the herd but never cached.
	boom := func() (*engine.Prepared, error) { return nil, errBoom }
	if _, _, err := c.do("bad", boom); err != errBoom {
		t.Fatalf("err = %v, want errBoom", err)
	}
	if st := c.stats(); st.Entries != 1 {
		t.Fatalf("error was cached: %d entries", st.Entries)
	}
}

var errBoom = errors.New("boom")

// TestPlanCacheInvalidateDuringBuild: a build in flight when invalidate
// fires serves its waiters but must not repopulate the just-cleared cache.
func TestPlanCacheInvalidateDuringBuild(t *testing.T) {
	c := newPlanCache(8)
	want := &engine.Prepared{}
	prep, _, err := c.do("k", func() (*engine.Prepared, error) {
		c.invalidate() // summary swapped while this build was running
		return want, nil
	})
	if err != nil || prep != want {
		t.Fatalf("do = %v, %v", prep, err)
	}
	if st := c.stats(); st.Entries != 0 {
		t.Fatalf("stale build was cached: %d entries", st.Entries)
	}
	// The next request rebuilds and caches normally.
	if _, _, err := c.do("k", func() (*engine.Prepared, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	if st := c.stats(); st.Entries != 1 {
		t.Fatalf("fresh build not cached: %d entries", st.Entries)
	}
}

// TestServeBodyLimits pins the request-body hardening: an oversized body is
// rejected with 413 before it can be decoded, and a declared non-JSON
// content type with 415. Absent content types are tolerated; +json suffixes
// pass.
func TestServeBodyLimits(t *testing.T) {
	sum := buildToySummary(t)
	ts := httptest.NewServer(New(sum, Options{}).Handler())
	defer ts.Close()

	// One byte past the cap: 413.
	big := append([]byte(`{"sql": "`), bytes.Repeat([]byte(" "), MaxQueryBody)...)
	big = append(big, []byte(`"}`)...)
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}

	// Non-JSON content types: 415.
	const sql = `{"sql": "SELECT COUNT(*) FROM s"}`
	for _, ct := range []string{"text/plain", "application/x-www-form-urlencoded", "application/octet-stream", "such nonsense;;"} {
		resp, err := http.Post(ts.URL+"/query", ct, strings.NewReader(sql))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Fatalf("content type %q: status %d, want 415", ct, resp.StatusCode)
		}
	}

	// JSON spellings and a bare client with no content type still work.
	for _, ct := range []string{"application/json", "application/json; charset=utf-8", "application/vnd.api+json", ""} {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader(sql))
		if err != nil {
			t.Fatal(err)
		}
		if ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("content type %q: status %d, want 200", ct, resp.StatusCode)
		}
	}
}

// TestServeGroupedQuery runs grouped-aggregate SQL end to end through the
// HTTP front end and the plan/build cache: group rows arrive in the sample,
// the row count is the group count, answers match in-process execution, and
// the repeat is a cache hit with identical rows.
func TestServeGroupedQuery(t *testing.T) {
	sum := buildToySummary(t)
	srv := New(sum, Options{SampleLimit: 100, Parallelism: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, sql := range []string{
		"SELECT t.c, COUNT(*) FROM t GROUP BY t.c",
		"SELECT s.a, COUNT(*), SUM(s.b), MIN(s.b), MAX(s.b), AVG(s.b) FROM s WHERE s.a < 30 GROUP BY s.a",
		"SELECT COUNT(*), SUM(s.b) FROM s",
	} {
		db := core.RegenDatabase(sum, 0)
		q, err := sqlkit.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := engine.BuildPlan(db.Schema, q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := engine.Execute(db, plan, engine.ExecOptions{SampleLimit: 100})
		if err != nil {
			t.Fatal(err)
		}

		resp, qr := postQuery(t, ts.URL, sql)
		if resp.StatusCode != http.StatusOK || qr.Cache != "miss" {
			t.Fatalf("%s: status %d cache %q", sql, resp.StatusCode, qr.Cache)
		}
		if qr.Rows != want.Rows || !reflect.DeepEqual(qr.Sample, want.Sample) {
			t.Fatalf("%s: served %d %v, want %d %v", sql, qr.Rows, qr.Sample, want.Rows, want.Sample)
		}
		resp, qr2 := postQuery(t, ts.URL, sql)
		if resp.StatusCode != http.StatusOK || qr2.Cache != "hit" {
			t.Fatalf("%s repeat: status %d cache %q", sql, resp.StatusCode, qr2.Cache)
		}
		if !reflect.DeepEqual(qr2.Sample, qr.Sample) {
			t.Fatalf("%s: cached rows drifted: %v vs %v", sql, qr2.Sample, qr.Sample)
		}
	}
}

// getStats fetches and decodes GET /statsz.
func getStats(t *testing.T, url string) StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /statsz = %d, want 200", resp.StatusCode)
	}
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// TestServeStatsz pins GET /statsz: cache counters mirror CacheStats, and
// the recent ring carries completed queries newest-first with SQL, cache
// disposition, cardinality, request ID, and timing.
func TestServeStatsz(t *testing.T) {
	sum := buildToySummary(t)
	srv := New(sum, Options{SampleLimit: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Before any query: cache empty, no recent queries.
	sr := getStats(t, ts.URL)
	if len(sr.Recent) != 0 || sr.Cache.Hits != 0 || sr.Cache.Misses != 0 {
		t.Fatalf("fresh statsz = %+v", sr)
	}

	sql := toy.Workload()[1]
	want := seqCount(t, sum, sql)
	if resp, _ := postQuery(t, ts.URL, sql); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	sr = getStats(t, ts.URL)
	if len(sr.Recent) != 1 || sr.Recent[0].SQL != sql || sr.Recent[0].Cache != "miss" {
		t.Fatalf("statsz after miss = %+v", sr.Recent)
	}
	if sr.Recent[0].Rows != want.Rows {
		t.Fatalf("statsz rows = %d, want %d", sr.Recent[0].Rows, want.Rows)
	}
	if sr.Recent[0].ElapsedNS <= 0 || sr.Recent[0].RequestID == "" || sr.Recent[0].TopOp == "" {
		t.Fatalf("statsz summary incomplete: %+v", sr.Recent[0])
	}
	if sr.Cache != srv.CacheStats() {
		t.Fatalf("statsz cache = %+v, want %+v", sr.Cache, srv.CacheStats())
	}

	// A repeat is a hit; the ring is newest-first, so it leads.
	if resp, _ := postQuery(t, ts.URL, sql); resp.StatusCode != http.StatusOK {
		t.Fatal("repeat failed")
	}
	sr = getStats(t, ts.URL)
	if len(sr.Recent) != 2 || sr.Recent[0].Cache != "hit" || sr.Recent[1].Cache != "miss" {
		t.Fatalf("statsz after hit = %+v %+v", sr.Recent, sr.Cache)
	}
	if sr.Cache.Hits != 1 || sr.Cache.Misses != 1 {
		t.Fatalf("statsz cache after hit = %+v", sr.Cache)
	}

	// A failed query records nothing.
	if resp, _ := postQuery(t, ts.URL, "SELECT nope FROM nowhere"); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("bad query not rejected")
	}
	if sr = getStats(t, ts.URL); len(sr.Recent) != 2 {
		t.Fatalf("failed query entered the ring: %+v", sr.Recent)
	}
}

// TestQueryRing pins the ring's overwrite-and-order behavior past capacity.
func TestQueryRing(t *testing.T) {
	var q queryRing
	if got := q.snapshot(); got != nil {
		t.Fatalf("empty ring snapshot = %v", got)
	}
	for i := 0; i < QueryRingSize+5; i++ {
		q.add(QuerySummary{SQL: fmt.Sprintf("q%d", i)})
	}
	got := q.snapshot()
	if len(got) != QueryRingSize {
		t.Fatalf("ring holds %d, want %d", len(got), QueryRingSize)
	}
	for i, s := range got {
		if want := fmt.Sprintf("q%d", QueryRingSize+4-i); s.SQL != want {
			t.Fatalf("ring[%d] = %q, want %q (newest first)", i, s.SQL, want)
		}
	}
}

// TestServeSortLimitDistinct runs the ORDER BY / LIMIT / DISTINCT workload
// through POST /query and holds rows, samples, and annotated plans to the
// sequential in-process reference — the serve front end gets the new
// clauses from the shared operator framework, not from serve-side code.
func TestServeSortLimitDistinct(t *testing.T) {
	sum := buildToySummary(t)
	ts := httptest.NewServer(New(sum, Options{Parallelism: 2, SampleLimit: 4}).Handler())
	defer ts.Close()

	db := core.RegenDatabase(sum, 0)
	for _, sql := range toy.SortWorkload() {
		q, err := sqlkit.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := engine.BuildPlan(db.Schema, q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := engine.Execute(db, plan, engine.ExecOptions{SampleLimit: 4})
		if err != nil {
			t.Fatal(err)
		}
		resp, qr := postQuery(t, ts.URL, sql)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", sql, resp.StatusCode)
		}
		if qr.Rows != want.Rows || !reflect.DeepEqual(qr.Sample, want.Sample) {
			t.Fatalf("%s: served %d %v, want %d %v", sql, qr.Rows, qr.Sample, want.Rows, want.Sample)
		}
		if qr.Plan == nil || qr.Plan.Op != want.Root.Op || qr.Plan.OutRows != want.Root.OutRows {
			t.Fatalf("%s: served plan %+v, want %+v", sql, qr.Plan, want.Root)
		}
	}
}
