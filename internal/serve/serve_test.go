package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sqlkit"
	"repro/internal/summary"
	"repro/internal/toy"
)

// buildToySummary captures the toy workload and builds its summary.
func buildToySummary(t *testing.T) *summary.Database {
	t.Helper()
	db, err := toy.Database(42)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := core.CaptureClient(db, toy.Workload(), core.CaptureOptions{SkipStats: true})
	if err != nil {
		t.Fatal(err)
	}
	sum, _, err := core.BuildFromPackage(pkg, summary.DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// seqCount executes sql sequentially against a fresh dataless database,
// the reference every served answer is held to.
func seqCount(t *testing.T, sum *summary.Database, sql string) *engine.ExecResult {
	t.Helper()
	db := core.RegenDatabase(sum, 0)
	q, err := sqlkit.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := engine.BuildPlan(db.Schema, q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Execute(db, plan, engine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func postQuery(t *testing.T, url, sql string) (*http.Response, QueryResponse) {
	t.Helper()
	body, _ := json.Marshal(QueryRequest{SQL: sql})
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, qr
}

// TestServeSmoke is the serve-endpoint smoke test: start a server over a
// built summary, issue every toy workload query, and assert each served
// COUNT matches sequential in-process execution.
func TestServeSmoke(t *testing.T) {
	sum := buildToySummary(t)
	ts := httptest.NewServer(New(sum, Options{Parallelism: 2, SampleLimit: 3}).Handler())
	defer ts.Close()

	// Health first.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hr.Status != "ok" || hr.Tables != len(sum.Relations) {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, hr)
	}

	for _, sql := range toy.Workload() {
		want := seqCount(t, sum, sql)
		resp, qr := postQuery(t, ts.URL, sql)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", sql, resp.StatusCode)
		}
		if qr.Count != want.Count || qr.Rows != want.Rows {
			t.Fatalf("%s: served count/rows %d/%d, want %d/%d", sql, qr.Count, qr.Rows, want.Count, want.Rows)
		}
		if qr.Plan == nil || qr.Plan.OutRows != want.Root.OutRows {
			t.Fatalf("%s: served plan %+v, want root out_rows %d", sql, qr.Plan, want.Root.OutRows)
		}
	}
}

// TestServeConcurrentClients hammers one server from many goroutines —
// the demonstration scenario: concurrent clients, one zero-row database —
// and requires every answer to equal the sequential reference. Run under
// -race this also proves the shared dataless database is race-free.
func TestServeConcurrentClients(t *testing.T) {
	sum := buildToySummary(t)
	ts := httptest.NewServer(New(sum, Options{Parallelism: 4}).Handler())
	defer ts.Close()

	queries := toy.Workload()
	want := make([]int64, len(queries))
	for i, sql := range queries {
		want[i] = seqCount(t, sum, sql).Count
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i, sql := range queries {
				body, _ := json.Marshal(QueryRequest{SQL: sql})
				resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var qr QueryResponse
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if qr.Count != want[i] {
					errs <- &countMismatch{sql: sql, got: qr.Count, want: want[i]}
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type countMismatch struct {
	sql       string
	got, want int64
}

func (e *countMismatch) Error() string {
	return e.sql + ": served count mismatch"
}

// TestServeErrors exercises the failure surfaces: wrong method, bad JSON,
// missing SQL, unparsable SQL, unknown table.
func TestServeErrors(t *testing.T) {
	sum := buildToySummary(t)
	ts := httptest.NewServer(New(sum, Options{}).Handler())
	defer ts.Close()

	get, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query = %d, want 405", get.StatusCode)
	}

	for _, tc := range []struct {
		body string
		want int
	}{
		{"{not json", http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},
		{`{"sql": "SELEC nope"}`, http.StatusBadRequest},
		{`{"sql": "SELECT COUNT(*) FROM no_such_table"}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var er errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("body %q: error reply is not JSON: %v", tc.body, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("body %q = %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
		if er.Error == "" {
			t.Fatalf("body %q: empty error message", tc.body)
		}
	}
}
