package serve

import (
	"context"
	"sync/atomic"
	"time"
)

// Admission control: a channel semaphore bounding concurrent query
// executions, fronted by a bounded wait queue. Under overload the server
// degrades deterministically instead of collapsing: up to MaxInFlight
// queries execute, up to MaxQueue more wait at most queueWait for a slot,
// and everything beyond that is shed immediately with 429 — a fast failure
// the client can retry, which keeps the latency of admitted work bounded
// (the E15 overload experiment measures exactly this).
//
// Draining is part of the same state machine: once beginDrain flips the
// flag, every acquire — fresh or already queued — resolves to
// admitDraining (503), so a shutdown only has to wait for work that was
// already admitted.
//
//	acquire ─┬─ draining ──────────────────────────→ admitDraining (503)
//	         ├─ slot free ─────────────────────────→ admitOK
//	         ├─ queue full ────────────────────────→ admitQueueFull (429)
//	         └─ queued ─┬─ slot freed in time ─────→ admitOK
//	                    ├─ queueWait elapsed ──────→ admitQueueTimeout (429)
//	                    ├─ caller ctx done ────────→ admitCanceled (499)
//	                    └─ drain began ────────────→ admitDraining (503)
type admission struct {
	sem       chan struct{} // nil = unlimited (admission by draining flag only)
	queueWait time.Duration
	maxQueue  int64

	queued   atomic.Int64 // current waiters, also the /metricsz queue gauge
	draining atomic.Bool
	drainCh  chan struct{} // closed by beginDrain, wakes queued waiters
}

// admitOutcome is the resolution of one acquire.
type admitOutcome int

const (
	admitOK admitOutcome = iota
	admitQueueFull
	admitQueueTimeout
	admitCanceled
	admitDraining
)

// DefaultQueueWait bounds how long an admitted-queue request waits for an
// execution slot when Options.QueueWait is zero. Long enough to absorb a
// burst one in-flight query wide, short enough that a shed response is
// still a fast failure.
const DefaultQueueWait = 100 * time.Millisecond

func newAdmission(maxInFlight, maxQueue int, queueWait time.Duration) *admission {
	a := &admission{
		maxQueue: int64(maxQueue),
		drainCh:  make(chan struct{}),
	}
	if maxInFlight > 0 {
		a.sem = make(chan struct{}, maxInFlight)
	}
	switch {
	case queueWait == 0:
		a.queueWait = DefaultQueueWait
	case queueWait > 0:
		a.queueWait = queueWait
	default:
		a.queueWait = 0 // negative: never wait, shed immediately
	}
	return a
}

// acquire claims an execution slot, queuing within the configured bounds.
// Every admitOK must be paired with exactly one release.
func (a *admission) acquire(ctx context.Context) admitOutcome {
	if a.draining.Load() {
		return admitDraining
	}
	if a.sem == nil {
		return admitOK
	}
	select {
	case a.sem <- struct{}{}:
		return admitOK
	default:
	}
	// No free slot: join the bounded queue, or shed.
	if a.maxQueue <= 0 || a.queueWait <= 0 {
		return admitQueueFull
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return admitQueueFull
	}
	defer a.queued.Add(-1)
	timer := time.NewTimer(a.queueWait)
	defer timer.Stop()
	select {
	case a.sem <- struct{}{}:
		if a.draining.Load() {
			// Drain began while we waited; hand the slot back so shutdown
			// does not count us as admitted work.
			<-a.sem
			return admitDraining
		}
		return admitOK
	case <-timer.C:
		return admitQueueTimeout
	case <-ctx.Done():
		return admitCanceled
	case <-a.drainCh:
		return admitDraining
	}
}

// release returns an execution slot claimed by an admitOK acquire.
func (a *admission) release() {
	if a.sem != nil {
		<-a.sem
	}
}

// beginDrain flips the admission state machine into draining: every
// subsequent (and every currently queued) acquire resolves to
// admitDraining. Idempotent.
func (a *admission) beginDrain() {
	if a.draining.CompareAndSwap(false, true) {
		close(a.drainCh)
	}
}

// inFlight reports currently held execution slots (0 when unlimited — the
// server tracks its own gauge in that case).
func (a *admission) inFlight() int {
	if a.sem == nil {
		return 0
	}
	return len(a.sem)
}
