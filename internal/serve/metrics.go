package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"time"
)

// Request outcomes, the label space of the /metricsz counters and latency
// histograms. Exactly one outcome is recorded per POST /query request.
const (
	outcomeOK         = "ok"          // 200
	outcomeBadRequest = "bad_request" // 4xx before execution
	outcomeError      = "error"       // 500 (build or execution fault)
	outcomeTimeout    = "timeout"     // 504: the query's deadline expired
	outcomeCanceled   = "canceled"    // 499: caller went away or drain canceled it
	outcomeShed       = "shed"        // 429: admission refused (queue full or wait expired)
	outcomeDraining   = "draining"    // 503: server is shutting down
)

// allOutcomes fixes the exposition order so scrapes are diffable.
var allOutcomes = []string{
	outcomeOK, outcomeBadRequest, outcomeError,
	outcomeTimeout, outcomeCanceled, outcomeShed, outcomeDraining,
}

// Shed reasons, the label space of hydra_shed_total.
const (
	shedQueueFull    = "queue_full"
	shedQueueTimeout = "queue_timeout"
	shedDraining     = "draining"
)

var allShedReasons = []string{shedQueueFull, shedQueueTimeout, shedDraining}

// latencyBuckets are the histogram upper bounds in seconds: 100µs to 10s in
// a 1-2.5-5 ladder, wide enough to hold both a shed 429 (microseconds) and
// a paced regeneration query (seconds). The +Inf bucket is implicit.
var latencyBuckets = [...]float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram safe for concurrent
// observation. Bucket counts are stored per-bucket and accumulated into
// the cumulative Prometheus form at scrape time.
type histogram struct {
	buckets [len(latencyBuckets) + 1]atomic.Int64 // last = overflow (+Inf)
	sumNS   atomic.Int64
	count   atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	sec := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets[:], sec)
	h.buckets[i].Add(1)
	h.sumNS.Add(d.Nanoseconds())
	h.count.Add(1)
}

// metrics is the server's observability state: an in-flight gauge, the
// admission queue gauge (read from the admission controller), per-outcome
// request counters and latency histograms, and shed-reason counters.
type metrics struct {
	inFlight atomic.Int64
	requests map[string]*outcomeSeries // key: outcome label, fixed at construction
	shed     map[string]*atomic.Int64  // key: shed reason
}

type outcomeSeries struct {
	count   atomic.Int64
	latency histogram
}

func newMetrics() *metrics {
	m := &metrics{
		requests: make(map[string]*outcomeSeries, len(allOutcomes)),
		shed:     make(map[string]*atomic.Int64, len(allShedReasons)),
	}
	for _, o := range allOutcomes {
		m.requests[o] = &outcomeSeries{}
	}
	for _, r := range allShedReasons {
		m.shed[r] = &atomic.Int64{}
	}
	return m
}

// record counts one finished request under its outcome.
func (m *metrics) record(outcome string, d time.Duration) {
	s := m.requests[outcome]
	s.count.Add(1)
	s.latency.observe(d)
}

// recordShed additionally attributes a shed (or drain-refused) request to
// its reason.
func (m *metrics) recordShed(reason string) { m.shed[reason].Add(1) }

// handleMetrics serves GET /metricsz in the Prometheus text exposition
// format (version 0.0.4), hand-rolled — the repository takes no
// dependencies. Series with zero observations are still exposed so
// dashboards see a stable schema.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	var b bytes.Buffer

	fmt.Fprintf(&b, "# HELP hydra_inflight_queries Queries currently executing.\n")
	fmt.Fprintf(&b, "# TYPE hydra_inflight_queries gauge\n")
	fmt.Fprintf(&b, "hydra_inflight_queries %d\n", s.met.inFlight.Load())

	fmt.Fprintf(&b, "# HELP hydra_queued_queries Queries waiting for an admission slot.\n")
	fmt.Fprintf(&b, "# TYPE hydra_queued_queries gauge\n")
	fmt.Fprintf(&b, "hydra_queued_queries %d\n", s.adm.queued.Load())

	fmt.Fprintf(&b, "# HELP hydra_requests_total POST /query requests by outcome.\n")
	fmt.Fprintf(&b, "# TYPE hydra_requests_total counter\n")
	for _, o := range allOutcomes {
		fmt.Fprintf(&b, "hydra_requests_total{outcome=%q} %d\n", o, s.met.requests[o].count.Load())
	}

	fmt.Fprintf(&b, "# HELP hydra_shed_total Requests refused by admission control, by reason.\n")
	fmt.Fprintf(&b, "# TYPE hydra_shed_total counter\n")
	for _, reason := range allShedReasons {
		fmt.Fprintf(&b, "hydra_shed_total{reason=%q} %d\n", reason, s.met.shed[reason].Load())
	}

	fmt.Fprintf(&b, "# HELP hydra_request_duration_seconds Request latency by outcome.\n")
	fmt.Fprintf(&b, "# TYPE hydra_request_duration_seconds histogram\n")
	for _, o := range allOutcomes {
		h := &s.met.requests[o].latency
		var cum int64
		for i, le := range latencyBuckets[:] {
			cum += h.buckets[i].Load()
			fmt.Fprintf(&b, "hydra_request_duration_seconds_bucket{outcome=%q,le=%q} %d\n", o, formatLE(le), cum)
		}
		cum += h.buckets[len(latencyBuckets)].Load()
		fmt.Fprintf(&b, "hydra_request_duration_seconds_bucket{outcome=%q,le=\"+Inf\"} %d\n", o, cum)
		fmt.Fprintf(&b, "hydra_request_duration_seconds_sum{outcome=%q} %g\n", o, float64(h.sumNS.Load())/1e9)
		fmt.Fprintf(&b, "hydra_request_duration_seconds_count{outcome=%q} %d\n", o, h.count.Load())
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := w.Write(b.Bytes()); err != nil {
		s.logf("serve: writing /metricsz response: %v", err)
	}
}

// formatLE renders a bucket bound the way Prometheus clients expect
// (shortest decimal form, no exponent for these magnitudes).
func formatLE(v float64) string { return fmt.Sprintf("%g", v) }
