package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/trace"
)

// Request outcomes, the label space of the /metricsz counters and latency
// histograms. Exactly one outcome is recorded per POST /query request.
const (
	outcomeOK         = "ok"          // 200
	outcomeBadRequest = "bad_request" // 4xx before execution
	outcomeError      = "error"       // 500 (build or execution fault)
	outcomeTimeout    = "timeout"     // 504: the query's deadline expired
	outcomeCanceled   = "canceled"    // 499: caller went away or drain canceled it
	outcomeShed       = "shed"        // 429: admission refused (queue full or wait expired)
	outcomeDraining   = "draining"    // 503: server is shutting down
)

// allOutcomes fixes the exposition order so scrapes are diffable.
var allOutcomes = []string{
	outcomeOK, outcomeBadRequest, outcomeError,
	outcomeTimeout, outcomeCanceled, outcomeShed, outcomeDraining,
}

// Shed reasons, the label space of hydra_shed_total.
const (
	shedQueueFull    = "queue_full"
	shedQueueTimeout = "queue_timeout"
	shedDraining     = "draining"
)

var allShedReasons = []string{shedQueueFull, shedQueueTimeout, shedDraining}

// latencyBuckets are the request-latency histogram upper bounds in seconds:
// 100µs to 10s in a 1-2.5-5 ladder, wide enough to hold both a shed 429
// (microseconds) and a paced regeneration query (seconds). The +Inf bucket
// is implicit.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// opSelfBuckets bound the per-operator self-time histograms: operator self
// time on a cached dataless query is micro- to milliseconds, so the ladder
// starts three decades lower than the request buckets.
var opSelfBuckets = []float64{
	0.000001, 0.0000025, 0.000005,
	0.00001, 0.000025, 0.00005,
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1,
}

// operatorNames is the fixed label space of the per-operator self-time
// histograms — the engine's OpKind spellings. Fixed so the exposition
// schema is stable from the first scrape.
var operatorNames = []string{
	"SCAN", "FILTER", "HASH JOIN", "AGGREGATE",
	"GROUP AGG", "DISTINCT", "SORT", "LIMIT",
	"SUMMARY AGG",
}

// histogram is a fixed-bucket duration histogram safe for concurrent
// observation. Bucket counts are stored per-bucket and accumulated into
// the cumulative Prometheus form at scrape time.
type histogram struct {
	bounds  []float64 // upper bounds in seconds, ascending
	buckets []atomic.Int64
	sumNS   atomic.Int64
	count   atomic.Int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

func (h *histogram) observe(d time.Duration) {
	sec := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, sec)
	h.buckets[i].Add(1)
	h.sumNS.Add(d.Nanoseconds())
	h.count.Add(1)
}

// metrics is the server's observability state: an in-flight gauge, the
// admission queue gauge (read from the admission controller), per-outcome
// request counters and latency histograms, shed-reason counters,
// per-operator self-time histograms, and engine-level counters.
type metrics struct {
	inFlight atomic.Int64
	requests map[string]*outcomeSeries // key: outcome label, fixed at construction
	shed     map[string]*atomic.Int64  // key: shed reason
	ops      map[string]*histogram     // key: operator name, fixed at construction

	// Engine counters. rowsGenerated sums scan output cardinalities (always
	// available from the ExecNode tree); batches and operator self times
	// come from the span tree, so they advance only for traced queries.
	rowsGenerated atomic.Int64
	resultRows    atomic.Int64
	batches       atomic.Int64
	cacheBuildNS  atomic.Int64
	// summaryAggQueries counts queries answered by the summary-direct
	// aggregate fast path (ExecResult.Path == "summary").
	summaryAggQueries atomic.Int64
	// rowsPruned and summaryRowsSkipped sum the scan nodes' prune
	// accounting: tuples proven non-matching at plan time and never
	// generated, and whole summary rows excluded outright.
	rowsPruned         atomic.Int64
	summaryRowsSkipped atomic.Int64
}

type outcomeSeries struct {
	count   atomic.Int64
	latency *histogram
}

func newMetrics() *metrics {
	m := &metrics{
		requests: make(map[string]*outcomeSeries, len(allOutcomes)),
		shed:     make(map[string]*atomic.Int64, len(allShedReasons)),
		ops:      make(map[string]*histogram, len(operatorNames)),
	}
	for _, o := range allOutcomes {
		m.requests[o] = &outcomeSeries{latency: newHistogram(latencyBuckets)}
	}
	for _, r := range allShedReasons {
		m.shed[r] = &atomic.Int64{}
	}
	for _, op := range operatorNames {
		m.ops[op] = newHistogram(opSelfBuckets)
	}
	return m
}

// record counts one finished request under its outcome.
func (m *metrics) record(outcome string, d time.Duration) {
	s := m.requests[outcome]
	s.count.Add(1)
	s.latency.observe(d)
}

// recordShed additionally attributes a shed (or drain-refused) request to
// its reason.
func (m *metrics) recordShed(reason string) { m.shed[reason].Add(1) }

// observeQuery folds one successful execution into the engine counters:
// rows regenerated by scans, rows pruned away before generation, and result
// cardinality always; per-operator self-time observations and batch counts
// when the query carried a span tree. It returns the query's total pruned
// rows so the caller can surface them in its stats ring.
func (m *metrics) observeQuery(res *engine.ExecResult, elapsed time.Duration) (pruned int64) {
	m.resultRows.Add(res.Rows)
	if res.Path == engine.PathSummary {
		m.summaryAggQueries.Add(1)
	}
	var scanRows, skipped int64
	var walk func(n *engine.ExecNode)
	walk = func(n *engine.ExecNode) {
		if n.Op == "SCAN" {
			scanRows += n.OutRows
			pruned += n.RowsPruned
			skipped += n.SummaryRowsSkipped
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(res.Root)
	m.rowsGenerated.Add(scanRows)
	m.rowsPruned.Add(pruned)
	m.summaryRowsSkipped.Add(skipped)
	if res.Trace == nil {
		return pruned
	}
	trace.Walk(res.Trace, func(sp *trace.Span) {
		m.batches.Add(sp.Batches)
		if h, ok := m.ops[sp.Op]; ok {
			h.observe(time.Duration(sp.SelfNS()))
		}
	})
	return pruned
}

// buildInfo resolves the binary's identity labels once: module version,
// VCS revision, and the Go toolchain that built it.
var buildInfo = sync.OnceValue(func() (info struct {
	version, revision, goVersion string
}) {
	info.version, info.revision, info.goVersion = "unknown", "unknown", runtime.Version()
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.version = bi.Main.Version
	}
	if bi.GoVersion != "" {
		info.goVersion = bi.GoVersion
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			info.revision = kv.Value
		}
	}
	return info
})

// writeHistogram emits one histogram in the cumulative Prometheus form.
// labels is the rendered label pair ("outcome=\"ok\"") the le label is
// appended to, empty for an unlabeled series.
func writeHistogram(b *bytes.Buffer, name, labels string, h *histogram) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i, le := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatLE(le), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(b, "%s_sum %g\n", name, float64(h.sumNS.Load())/1e9)
		fmt.Fprintf(b, "%s_count %d\n", name, h.count.Load())
		return
	}
	fmt.Fprintf(b, "%s_sum{%s} %g\n", name, labels, float64(h.sumNS.Load())/1e9)
	fmt.Fprintf(b, "%s_count{%s} %d\n", name, labels, h.count.Load())
}

// handleMetrics serves GET /metricsz in the Prometheus text exposition
// format (version 0.0.4), hand-rolled — the repository takes no
// dependencies. Series with zero observations are still exposed so
// dashboards see a stable schema.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	var b bytes.Buffer

	fmt.Fprintf(&b, "# HELP hydra_inflight_queries Queries currently executing.\n")
	fmt.Fprintf(&b, "# TYPE hydra_inflight_queries gauge\n")
	fmt.Fprintf(&b, "hydra_inflight_queries %d\n", s.met.inFlight.Load())

	fmt.Fprintf(&b, "# HELP hydra_queued_queries Queries waiting for an admission slot.\n")
	fmt.Fprintf(&b, "# TYPE hydra_queued_queries gauge\n")
	fmt.Fprintf(&b, "hydra_queued_queries %d\n", s.adm.queued.Load())

	fmt.Fprintf(&b, "# HELP hydra_requests_total POST /query requests by outcome.\n")
	fmt.Fprintf(&b, "# TYPE hydra_requests_total counter\n")
	for _, o := range allOutcomes {
		fmt.Fprintf(&b, "hydra_requests_total{outcome=%q} %d\n", o, s.met.requests[o].count.Load())
	}

	fmt.Fprintf(&b, "# HELP hydra_shed_total Requests refused by admission control, by reason.\n")
	fmt.Fprintf(&b, "# TYPE hydra_shed_total counter\n")
	for _, reason := range allShedReasons {
		fmt.Fprintf(&b, "hydra_shed_total{reason=%q} %d\n", reason, s.met.shed[reason].Load())
	}

	fmt.Fprintf(&b, "# HELP hydra_request_duration_seconds Request latency by outcome.\n")
	fmt.Fprintf(&b, "# TYPE hydra_request_duration_seconds histogram\n")
	for _, o := range allOutcomes {
		writeHistogram(&b, "hydra_request_duration_seconds", fmt.Sprintf("outcome=%q", o), s.met.requests[o].latency)
	}

	fmt.Fprintf(&b, "# HELP hydra_operator_self_seconds Per-query operator self time by operator, from traced executions.\n")
	fmt.Fprintf(&b, "# TYPE hydra_operator_self_seconds histogram\n")
	for _, op := range operatorNames {
		writeHistogram(&b, "hydra_operator_self_seconds", fmt.Sprintf("op=%q", op), s.met.ops[op])
	}

	fmt.Fprintf(&b, "# HELP hydra_engine_rows_generated_total Rows regenerated by dataless scans across all queries.\n")
	fmt.Fprintf(&b, "# TYPE hydra_engine_rows_generated_total counter\n")
	fmt.Fprintf(&b, "hydra_engine_rows_generated_total %d\n", s.met.rowsGenerated.Load())

	fmt.Fprintf(&b, "# HELP hydra_engine_result_rows_total Rows returned to clients across all queries.\n")
	fmt.Fprintf(&b, "# TYPE hydra_engine_result_rows_total counter\n")
	fmt.Fprintf(&b, "hydra_engine_result_rows_total %d\n", s.met.resultRows.Load())

	fmt.Fprintf(&b, "# HELP hydra_engine_batches_total Operator output batches observed by traced executions.\n")
	fmt.Fprintf(&b, "# TYPE hydra_engine_batches_total counter\n")
	fmt.Fprintf(&b, "hydra_engine_batches_total %d\n", s.met.batches.Load())

	fmt.Fprintf(&b, "# HELP hydra_summaryagg_queries_total Queries answered by the summary-direct aggregate fast path (no tuple regeneration).\n")
	fmt.Fprintf(&b, "# TYPE hydra_summaryagg_queries_total counter\n")
	fmt.Fprintf(&b, "hydra_summaryagg_queries_total %d\n", s.met.summaryAggQueries.Load())

	fmt.Fprintf(&b, "# HELP hydra_rows_pruned_total Tuples proven non-matching at plan time and never generated (scan pruning).\n")
	fmt.Fprintf(&b, "# TYPE hydra_rows_pruned_total counter\n")
	fmt.Fprintf(&b, "hydra_rows_pruned_total %d\n", s.met.rowsPruned.Load())

	fmt.Fprintf(&b, "# HELP hydra_summary_rows_skipped_total Whole summary rows excluded by scan pruning before any position work.\n")
	fmt.Fprintf(&b, "# TYPE hydra_summary_rows_skipped_total counter\n")
	fmt.Fprintf(&b, "hydra_summary_rows_skipped_total %d\n", s.met.summaryRowsSkipped.Load())

	fmt.Fprintf(&b, "# HELP hydra_plan_cache_build_seconds_total Wall time spent parsing, planning, and building (cache misses and bypasses).\n")
	fmt.Fprintf(&b, "# TYPE hydra_plan_cache_build_seconds_total counter\n")
	fmt.Fprintf(&b, "hydra_plan_cache_build_seconds_total %g\n", float64(s.met.cacheBuildNS.Load())/1e9)

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(&b, "# HELP hydra_goroutines Goroutines currently live in the process.\n")
	fmt.Fprintf(&b, "# TYPE hydra_goroutines gauge\n")
	fmt.Fprintf(&b, "hydra_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(&b, "# HELP hydra_gc_pause_seconds_total Cumulative GC stop-the-world pause time.\n")
	fmt.Fprintf(&b, "# TYPE hydra_gc_pause_seconds_total counter\n")
	fmt.Fprintf(&b, "hydra_gc_pause_seconds_total %g\n", float64(ms.PauseTotalNs)/1e9)
	fmt.Fprintf(&b, "# HELP hydra_heap_inuse_bytes Bytes in in-use heap spans.\n")
	fmt.Fprintf(&b, "# TYPE hydra_heap_inuse_bytes gauge\n")
	fmt.Fprintf(&b, "hydra_heap_inuse_bytes %d\n", ms.HeapInuse)

	bi := buildInfo()
	fmt.Fprintf(&b, "# HELP hydra_build_info Build identity of the serving binary; value is always 1.\n")
	fmt.Fprintf(&b, "# TYPE hydra_build_info gauge\n")
	fmt.Fprintf(&b, "hydra_build_info{version=%q,revision=%q,go_version=%q} 1\n", bi.version, bi.revision, bi.goVersion)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := w.Write(b.Bytes()); err != nil {
		s.logf("serve: writing /metricsz response: %v", err)
	}
}

// formatLE renders a bucket bound the way Prometheus clients expect
// (shortest decimal form; sub-microsecond bounds fall into %g's exponent
// notation, which the exposition format accepts).
func formatLE(v float64) string { return fmt.Sprintf("%g", v) }
