package serve

import (
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
)

// TestPlanCacheInvalidationRace pins the headline bugfix: an invalidate
// landing after a build's staleness was decided but before its insert must
// not leave the stale Prepared in the cache. The old code checked c.gen,
// unlocked, then inserted in a separate critical section — with the hook
// firing invalidate inside that window, it cached the disowned build and
// this test fails; put now re-checks the generation under the same lock.
func TestPlanCacheInvalidationRace(t *testing.T) {
	c := newPlanCache(8)
	stale := &engine.Prepared{}
	testHookPostBuild = c.invalidate // summary swapped in the race window
	defer func() { testHookPostBuild = nil }()

	prep, _, err := c.do("k", func() (*engine.Prepared, error) { return stale, nil })
	if err != nil || prep != stale {
		t.Fatalf("do = %v, %v (waiters must still be served)", prep, err)
	}
	testHookPostBuild = nil
	if got, ok := c.get("k"); ok {
		t.Fatalf("stale build served from cache after invalidate: %v", got)
	}
	if st := c.stats(); st.Entries != 0 {
		t.Fatalf("stale build was cached: %d entries", st.Entries)
	}

	// The next request rebuilds against the current summary and caches.
	fresh := &engine.Prepared{}
	if _, _, err := c.do("k", func() (*engine.Prepared, error) { return fresh, nil }); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.get("k"); !ok || got != fresh {
		t.Fatalf("fresh build not cached: %v %v", got, ok)
	}
}

// TestPlanCacheHerdStats pins the single-flight accounting: a cold-start
// herd of N requests runs one build, and the stats must say so — one miss
// (the builder), N-1 hits (coalesced waiters and inserted-since-miss
// lookups) — instead of the N misses the old code reported exactly when
// the cache was working hardest.
func TestPlanCacheHerdStats(t *testing.T) {
	c := newPlanCache(8)
	var builds int32
	want := &engine.Prepared{}
	build := func() (*engine.Prepared, error) {
		atomic.AddInt32(&builds, 1)
		time.Sleep(20 * time.Millisecond) // widen the herd window
		return want, nil
	}
	const herd = 16
	var wg sync.WaitGroup
	var builders int32 // callers do() reported as having run the build
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The serve front end's lookup protocol: get, then do.
			if prep, ok := c.get("k"); ok {
				if prep != want {
					t.Error("hit served a different Prepared")
				}
				return
			}
			prep, built, err := c.do("k", build)
			if err != nil || prep != want {
				t.Errorf("do = %v, %v", prep, err)
			}
			if built {
				atomic.AddInt32(&builders, 1)
			}
		}()
	}
	wg.Wait()
	if n := atomic.LoadInt32(&builds); n != 1 {
		t.Fatalf("herd of %d ran %d builds, want 1", herd, n)
	}
	if n := atomic.LoadInt32(&builders); n != 1 {
		t.Fatalf("do reported %d builders, want 1 (the response cache label depends on it)", n)
	}
	st := c.stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (only the builder misses)", st.Misses)
	}
	if st.Hits != herd-1 {
		t.Fatalf("hits = %d, want %d (every coalesced request is a hit)", st.Hits, herd-1)
	}
}

// normalizeSQLReference is an independent model of the cache-key contract:
// outside single-quoted literals, runs of whitespace collapse to one space
// and leading/trailing whitespace drops; a literal's bytes (with ” kept
// verbatim) are data. The property tests hold normalizeSQL to it.
func normalizeSQLReference(sql string) string {
	var out []byte
	i := 0
	flushSpace := false
	for i < len(sql) {
		c := sql[i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			flushSpace = true
			i++
			continue
		}
		if flushSpace && len(out) > 0 {
			out = append(out, ' ')
		}
		flushSpace = false
		if c != '\'' {
			out = append(out, c)
			i++
			continue
		}
		// Literal: copy verbatim through the closing quote ('' included).
		out = append(out, c)
		i++
		for i < len(sql) {
			out = append(out, sql[i])
			if sql[i] == '\'' {
				if i+1 < len(sql) && sql[i+1] == '\'' {
					out = append(out, '\'')
					i += 2
					continue
				}
				i++
				break
			}
			i++
		}
	}
	return string(out)
}

// checkNormalizeSQL asserts the normalization invariants for one input.
func checkNormalizeSQL(t *testing.T, in string) {
	t.Helper()
	got := normalizeSQL(in)
	if want := normalizeSQLReference(in); got != want {
		t.Fatalf("normalizeSQL(%q) = %q, want %q", in, got, want)
	}
	// Idempotence: a key normalizes to itself.
	if again := normalizeSQL(got); again != got {
		t.Fatalf("not idempotent: %q -> %q -> %q", in, got, again)
	}
	// Non-whitespace bytes survive in order (normalization only ever edits
	// whitespace, so it can never alias queries that differ elsewhere).
	strip := func(s string) string {
		return strings.Map(func(r rune) rune {
			switch r {
			case ' ', '\t', '\n', '\r':
				return -1
			}
			return r
		}, s)
	}
	if strip(got) != strip(in) {
		t.Fatalf("non-whitespace content changed: %q -> %q", in, got)
	}
}

// TestNormalizeSQLProperties drives the edge cases the cache key must never
// get wrong — unterminated literals, doubled quotes at EOF, whitespace
// inside vs. outside literals — plus a randomized sweep over strings built
// from quote-and-whitespace-heavy fragments.
func TestNormalizeSQLProperties(t *testing.T) {
	for _, in := range []string{
		"",
		"   ",
		"'",
		"''",
		"'''",
		"''''",
		"'a''",
		"'a''b'",
		"'unterminated  literal",
		"x = '' AND y = ''",
		"a  'l  i  t'  b",
		"'  leading literal' x",
		"tab\tand\nnewline\rand space",
		"quote at end '",
		"doubled at eof ''",
		"a='x' AND b='y  z'",
	} {
		checkNormalizeSQL(t, in)
	}

	frags := []string{"'", "''", " ", "  ", "\t", "\n", "a", "b c", "=", "1", "'x y'", "''''"}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		var sb strings.Builder
		for n := r.Intn(12); n > 0; n-- {
			sb.WriteString(frags[r.Intn(len(frags))])
		}
		checkNormalizeSQL(t, sb.String())
	}

	// Two queries differing only inside a literal must keep distinct keys.
	if normalizeSQL("a = 'x  y'") == normalizeSQL("a = 'x y'") {
		t.Fatal("literal-internal whitespace aliased two distinct queries")
	}
}

// FuzzNormalizeSQL fuzzes the same invariants: model equivalence,
// idempotence, and preservation of non-whitespace bytes.
func FuzzNormalizeSQL(f *testing.F) {
	for _, seed := range []string{
		"SELECT  COUNT(*) FROM r",
		"a = 'x  y' AND b = 'it''s'",
		"'unterminated",
		"''",
		"' '",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		got := normalizeSQL(in)
		if want := normalizeSQLReference(in); got != want {
			t.Fatalf("normalizeSQL(%q) = %q, want %q", in, got, want)
		}
		if again := normalizeSQL(got); again != got {
			t.Fatalf("not idempotent: %q -> %q -> %q", in, got, again)
		}
	})
}
