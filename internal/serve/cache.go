// The serve-side plan/build cache: steady-state traffic against one
// summary repeats a small set of query shapes, and for each of them the
// expensive half of execution — parsing, planning, and above all draining
// hash-join build sides into arenas — is a pure function of the database.
// The cache keys normalized SQL to an engine.Prepared (compiled plan +
// shared read-only build arenas), so a cache hit pays probe cost only.
package serve

import (
	"container/list"
	"strings"
	"sync"

	"repro/internal/engine"
)

// DefaultCacheSize is the LRU capacity used when Options.PlanCacheSize is
// zero. Entries are one compiled plan plus that query's build arenas; a
// few dozen cover a realistic dashboard workload.
const DefaultCacheSize = 64

// normalizeSQL collapses the whitespace variance of otherwise-identical
// queries into one cache key. Quoted string literals are copied verbatim
// (a doubled quote stays an escaped quote) — whitespace inside a literal is data, and a
// key that aliased 'a  b' to 'a b' would serve one query's answer for the
// other. Case is preserved throughout for the same reason.
func normalizeSQL(sql string) string {
	var sb strings.Builder
	sb.Grow(len(sql))
	inLit := false
	pendingSpace := false
	for i := 0; i < len(sql); i++ {
		c := sql[i]
		if inLit {
			sb.WriteByte(c)
			if c == '\'' {
				if i+1 < len(sql) && sql[i+1] == '\'' {
					sb.WriteByte('\'')
					i++
					continue
				}
				inLit = false
			}
			continue
		}
		switch c {
		case ' ', '\t', '\n', '\r':
			pendingSpace = true
		default:
			if pendingSpace && sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			pendingSpace = false
			if c == '\'' {
				inLit = true
			}
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

// planCache is a mutex-guarded LRU from normalized SQL to prepared
// executions. Lookups and insertions are O(1); eviction drops the least
// recently used entry once the size cap is reached.
type planCache struct {
	mu       sync.Mutex
	cap      int
	lru      *list.List // front = most recently used; values are *cacheEntry
	entries  map[string]*list.Element
	inflight map[string]*inflightPrepare
	gen      int64 // bumped by invalidate; stale in-flight builds are not cached

	hits, misses int64
}

type cacheEntry struct {
	key  string
	prep *engine.Prepared
}

// inflightPrepare coalesces concurrent misses on one key: the first caller
// builds, the rest wait on done and share the outcome.
type inflightPrepare struct {
	done chan struct{}
	prep *engine.Prepared
	err  error
}

func newPlanCache(capacity int) *planCache {
	if capacity == 0 {
		capacity = DefaultCacheSize
	}
	return &planCache{
		cap:      capacity,
		lru:      list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*inflightPrepare),
	}
}

// enabled reports whether caching is on (a negative capacity disables it).
func (c *planCache) enabled() bool { return c != nil && c.cap > 0 }

// get returns the prepared execution for key, promoting it to
// most-recently-used. A hit is recorded here; a miss is not — the caller
// proceeds into do, which accounts for how the miss was ultimately served
// (built, coalesced onto another build, or found freshly inserted), so
// hits + misses equals requests even under single flight.
func (c *planCache) get(key string) (*engine.Prepared, bool) {
	if !c.enabled() {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).prep, true
}

// putLocked inserts (or refreshes) key's prepared execution, evicting the
// least recently used entry beyond the size cap. The caller holds c.mu and
// has verified the entry is current (generation re-checked in the same
// critical section — see do).
func (c *planCache) putLocked(key string, prep *engine.Prepared) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).prep = prep
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, prep: prep})
	for c.lru.Len() > c.cap {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// testHookPostBuild, when non-nil, runs after a single-flight build
// completes and before its result is offered to the cache — the window the
// invalidation race lived in. Tests interleave an invalidate here to prove
// a stale build can no longer be cached.
var testHookPostBuild func()

// do returns key's prepared execution, invoking build at most once across
// concurrent callers (single flight): under a cold-start thundering herd,
// one request drains the hash-join build sides and the rest wait for it
// instead of each paying the heaviest cost the cache exists to amortize.
// The winner's result is inserted unless the cache was invalidated while it
// was building; a build error is shared, not cached.
//
// built reports whether this caller ran the build. It mirrors the stats:
// the builder records the miss; a caller that finds the entry inserted
// since its lookup, or coalesces onto an in-flight build that succeeds,
// was served by the cache and records a hit.
func (c *planCache) do(key string, build func() (*engine.Prepared, error)) (prep *engine.Prepared, built bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok { // inserted since the caller's miss
		c.hits++
		c.lru.MoveToFront(el)
		prep := el.Value.(*cacheEntry).prep
		c.mu.Unlock()
		return prep, false, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-fl.done
		if fl.err == nil {
			c.mu.Lock()
			c.hits++
			c.mu.Unlock()
		}
		return fl.prep, false, fl.err
	}
	fl := &inflightPrepare{done: make(chan struct{})}
	c.inflight[key] = fl
	c.misses++
	gen := c.gen
	c.mu.Unlock()

	fl.prep, fl.err = build()
	close(fl.done)

	if testHookPostBuild != nil {
		testHookPostBuild()
	}
	// One critical section retires the in-flight record, re-checks the
	// generation, and inserts. Atomicity both ways: an invalidate can never
	// land between "this build is fresh" and the insert (the race that used
	// to cache a Prepared built against a disowned summary), and no request
	// can observe neither an inflight record nor a cache entry and start a
	// redundant build.
	c.mu.Lock()
	if c.inflight[key] == fl {
		delete(c.inflight, key)
	}
	if fl.err == nil && c.enabled() && c.gen == gen {
		c.putLocked(key, fl.prep)
	}
	// A stale result (c.gen moved since the build began) was computed
	// against state the operator disowned: serve it to the requests that
	// hold it — arenas are immutable — but never cache it.
	c.mu.Unlock()
	if fl.err != nil {
		return nil, true, fl.err
	}
	return fl.prep, true, nil
}

// invalidate drops every entry (hit/miss counters survive). The server
// exposes it as the invalidation hook for summary swaps.
func (c *planCache) invalidate() {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.entries = make(map[string]*list.Element)
	// Detach in-flight builds: their waiters still get the shared result,
	// but the stale-generation check keeps it out of the cache, and new
	// requests start a fresh build immediately.
	c.inflight = make(map[string]*inflightPrepare)
	c.gen++
}

// CacheStats is a point-in-time snapshot of cache effectiveness. Hits
// counts requests served without running a build — direct lookups,
// single-flight waiters that shared a winner's result, and lookups that
// found the entry inserted between their miss and their build attempt;
// Misses counts builds. Hits + Misses therefore equals requests (failed
// builds excepted: the builder's miss is recorded, its waiters record
// nothing), so the hit rate stays honest under a coalesced cold-start herd.
type CacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
	Cap     int   `json:"cap"`
}

func (c *planCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.lru.Len(), Cap: c.cap}
}
