// Package serve is Hydra's concurrent query front end: an HTTP server
// (stdlib net/http + encoding/json only) over one loaded database summary.
// It demonstrates the regenerator as a service — many concurrent clients
// issuing SQL against a database holding zero stored rows, each query's
// scans regenerated on the fly and, when Parallelism is enabled, fanned
// out across workers by the engine's morsel-driven executor.
//
// Endpoints:
//
//	POST /query    {"sql": "SELECT COUNT(*) FROM ..."} →
//	               {"count", "rows", "sample", "plan", "elapsed_ns", ...}
//	GET  /healthz  {"status": "ok", "tables": N, ...}
//
// The handler is safe for concurrent use: the underlying dataless
// database is read-only after construction and every request opens fresh
// scan state.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sqlkit"
	"repro/internal/summary"
)

// Options configure the server.
type Options struct {
	// Parallelism is passed to every query's ExecOptions (clamped by the
	// engine into [0, GOMAXPROCS]); 0 executes sequentially.
	Parallelism int
	// BatchSize overrides the execution batch capacity (0 = default).
	BatchSize int
	// SampleLimit caps how many result rows a response carries (decoded
	// result sets can be arbitrarily large; COUNT(*) responses are exact
	// regardless).
	SampleLimit int
	// RowsPerSec throttles regeneration per scan (0 = unlimited). A
	// positive rate disables parallel execution (paced streams are
	// serial), which the engine handles by transparent fallback.
	RowsPerSec float64
}

// Server serves queries against one summary's dataless database.
type Server struct {
	sum  *summary.Database
	db   *engine.Database
	opts Options
}

// New builds a server over the summary.
func New(sum *summary.Database, opts Options) *Server {
	return &Server{sum: sum, db: core.RegenDatabase(sum, opts.RowsPerSec), opts: opts}
}

// Handler returns the HTTP handler exposing the query and health
// endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/query", s.handleQuery)
	return mux
}

// QueryRequest is the POST /query body.
type QueryRequest struct {
	SQL string `json:"sql"`
}

// QueryResponse is the POST /query reply: the COUNT value (for COUNT(*)
// queries), output cardinality, a bounded sample of output rows, the
// cardinality-annotated operator tree, and timing.
type QueryResponse struct {
	SQL         string           `json:"sql"`
	Count       int64            `json:"count"`
	Rows        int64            `json:"rows"`
	Sample      [][]int64        `json:"sample,omitempty"`
	Plan        *engine.ExecNode `json:"plan"`
	Parallelism int              `json:"parallelism"`
	ElapsedNS   int64            `json:"elapsed_ns"`
}

// HealthResponse is the GET /healthz reply.
type HealthResponse struct {
	Status      string `json:"status"`
	Tables      int    `json:"tables"`
	Parallelism int    `json:"parallelism"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:      "ok",
		Tables:      len(s.sum.Relations),
		Parallelism: s.opts.Parallelism,
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.SQL == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("request has no sql"))
		return
	}
	q, err := sqlkit.Parse(req.SQL)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	plan, err := engine.BuildPlan(s.db.Schema, q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opts := engine.ExecOptions{
		SampleLimit: s.opts.SampleLimit,
		BatchSize:   s.opts.BatchSize,
		Parallelism: s.opts.Parallelism,
	}
	start := time.Now()
	res, err := engine.Execute(s.db, plan, opts)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, QueryResponse{
		SQL:         req.SQL,
		Count:       res.Count,
		Rows:        res.Rows,
		Sample:      res.Sample,
		Plan:        res.Root,
		Parallelism: s.opts.Parallelism,
		ElapsedNS:   time.Since(start).Nanoseconds(),
	})
}

// errorResponse is the JSON error body every non-2xx reply carries.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding into an in-memory value cannot fail for these types; a
	// broken connection mid-write is the client's problem.
	_ = json.NewEncoder(w).Encode(v)
}
