// Package serve is Hydra's concurrent query front end: an HTTP server
// (stdlib net/http + encoding/json only) over one loaded database summary.
// It demonstrates the regenerator as a service — many concurrent clients
// issuing SQL against a database holding zero stored rows, each query's
// scans regenerated on the fly and, when Parallelism is enabled, fanned
// out across workers by the engine's morsel-driven executor.
//
// Repeated query shapes are served from a keyed plan/build cache
// (cache.go): the first request for a query pays parse + plan + hash-join
// build cost, every later request probes the shared read-only arenas only.
// Grouped-aggregate queries (GROUP BY with COUNT/SUM/MIN/MAX/AVG) flow
// through the same cache; their group rows are returned in the response's
// rows count and bounded sample.
//
// Endpoints:
//
//	POST /query    {"sql": "SELECT COUNT(*) FROM ...",
//	                "batch_size": 512, "parallelism": 4} →
//	               {"count", "rows", "sample", "plan", "cache", "elapsed_ns", ...}
//	GET  /healthz  {"status": "ok", "tables": N, "cache": {...}, ...}
//	GET  /statsz   {"cache": {...}, "last_query": {"sql", "cache",
//	               "elapsed_ns", "plan"}} — plan-cache effectiveness plus the
//	               last query's per-operator ExecNode counters
//
// The handler is safe for concurrent use: the underlying dataless
// database is read-only after construction, every request opens fresh
// probe state, and cached build arenas are immutable after construction.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sqlkit"
	"repro/internal/summary"
)

// Options configure the server.
type Options struct {
	// Parallelism is passed to every query's ExecOptions (clamped by the
	// engine into [0, GOMAXPROCS]); 0 executes sequentially. A request may
	// override it per query.
	Parallelism int
	// BatchSize overrides the execution batch capacity (0 = default). A
	// request may override it per query.
	BatchSize int
	// SampleLimit caps how many result rows a response carries (decoded
	// result sets can be arbitrarily large; COUNT(*) responses are exact
	// regardless).
	SampleLimit int
	// RowsPerSec throttles regeneration per scan (0 = unlimited). A
	// positive rate disables parallel execution (paced streams are
	// serial), which the engine handles by transparent fallback.
	RowsPerSec float64
	// PlanCacheSize caps the plan/build cache (entries): 0 selects
	// DefaultCacheSize, negative disables caching entirely (every request
	// re-plans and rebuilds).
	PlanCacheSize int
}

// Server serves queries against one summary's dataless database.
type Server struct {
	sum   *summary.Database
	db    *engine.Database
	opts  Options
	cache *planCache

	mu   sync.Mutex
	last *LastQueryStats // most recently completed query, for GET /statsz
}

// New builds a server over the summary.
func New(sum *summary.Database, opts Options) *Server {
	return &Server{
		sum:   sum,
		db:    core.RegenDatabase(sum, opts.RowsPerSec),
		opts:  opts,
		cache: newPlanCache(opts.PlanCacheSize),
	}
}

// InvalidateCache drops every cached plan and build arena — the hook to
// call when the served summary is swapped or mutated out from under the
// server. In-flight requests finish against the arenas they already hold
// (arenas are immutable, so this is safe); new requests re-plan.
func (s *Server) InvalidateCache() { s.cache.invalidate() }

// CacheStats snapshots plan-cache effectiveness.
func (s *Server) CacheStats() CacheStats { return s.cache.stats() }

// Handler returns the HTTP handler exposing the query, health, and stats
// endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/statsz", s.handleStats)
	return mux
}

// QueryRequest is the POST /query body. BatchSize and Parallelism, when
// present, override the server-wide defaults for this query; both pass
// through ExecOptions.Normalize, so invalid values are rejected with 400
// and out-of-range parallelism is clamped.
type QueryRequest struct {
	SQL         string `json:"sql"`
	BatchSize   *int   `json:"batch_size,omitempty"`
	Parallelism *int   `json:"parallelism,omitempty"`
}

// QueryResponse is the POST /query reply: the COUNT value (for COUNT(*)
// queries), output cardinality, a bounded sample of output rows, the
// cardinality-annotated operator tree, whether the plan/build cache served
// the query ("hit", "miss", or "bypass" when caching is disabled), and
// timing.
type QueryResponse struct {
	SQL         string           `json:"sql"`
	Count       int64            `json:"count"`
	Rows        int64            `json:"rows"`
	Sample      [][]int64        `json:"sample,omitempty"`
	Plan        *engine.ExecNode `json:"plan"`
	Parallelism int              `json:"parallelism"`
	BatchSize   int              `json:"batch_size,omitempty"`
	Cache       string           `json:"cache,omitempty"`
	ElapsedNS   int64            `json:"elapsed_ns"`
}

// HealthResponse is the GET /healthz reply.
type HealthResponse struct {
	Status      string     `json:"status"`
	Tables      int        `json:"tables"`
	Parallelism int        `json:"parallelism"`
	Cache       CacheStats `json:"cache"`
}

// StatsResponse is the GET /statsz reply: plan/build-cache effectiveness
// plus the per-operator ExecNode counters of the most recently completed
// query.
type StatsResponse struct {
	Cache     CacheStats      `json:"cache"`
	LastQuery *LastQueryStats `json:"last_query,omitempty"`
}

// LastQueryStats snapshots the last query the server executed
// successfully: its SQL, how the cache served it, timing, and the
// cardinality-annotated operator tree (per-operator OutRows counters).
type LastQueryStats struct {
	SQL       string           `json:"sql"`
	Cache     string           `json:"cache,omitempty"`
	ElapsedNS int64            `json:"elapsed_ns"`
	Plan      *engine.ExecNode `json:"plan"`
}

// handleStats serves GET /statsz with the same 405 + Allow pinning as the
// other routes.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	s.mu.Lock()
	last := s.last
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, StatsResponse{Cache: s.cache.stats(), LastQuery: last})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:      "ok",
		Tables:      len(s.sum.Relations),
		Parallelism: s.opts.Parallelism,
		Cache:       s.cache.stats(),
	})
}

// MaxQueryBody bounds the POST /query body. SQL text is small; anything
// beyond this is a hostile or broken client, and an unbounded decode would
// let one request hold arbitrary memory.
const MaxQueryBody = 1 << 20

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	// The body is JSON: reject any declared non-JSON content type up front
	// (an absent header is tolerated for bare clients), and cap how much of
	// the body the decoder may consume.
	if ct := r.Header.Get("Content-Type"); ct != "" {
		if mt, _, err := mime.ParseMediaType(ct); err != nil || (mt != "application/json" && !strings.HasSuffix(mt, "+json")) {
			writeError(w, http.StatusUnsupportedMediaType, fmt.Errorf("content type %q is not JSON", ct))
			return
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, MaxQueryBody)
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.SQL == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("request has no sql"))
		return
	}
	opts := engine.ExecOptions{
		SampleLimit: s.opts.SampleLimit,
		BatchSize:   s.opts.BatchSize,
		Parallelism: s.opts.Parallelism,
	}
	if req.BatchSize != nil {
		opts.BatchSize = *req.BatchSize
	}
	if req.Parallelism != nil {
		opts.Parallelism = *req.Parallelism
	}
	opts, err := opts.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	start := time.Now()
	prep, cacheState, err := s.prepared(req.SQL, opts)
	if err != nil {
		// Unparsable or unplannable SQL is the client's fault; a failure
		// opening or draining a build-side source is the server's.
		status := http.StatusInternalServerError
		var bad *badQueryError
		if errors.As(err, &bad) {
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	res, err := prep.Execute(opts)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	elapsed := time.Since(start)
	// Each execution materializes a fresh annotated tree (cached builds are
	// cloned per execution), so retaining the pointer for /statsz is safe.
	s.mu.Lock()
	s.last = &LastQueryStats{SQL: req.SQL, Cache: cacheState, ElapsedNS: elapsed.Nanoseconds(), Plan: res.Root}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, QueryResponse{
		SQL:         req.SQL,
		Count:       res.Count,
		Rows:        res.Rows,
		Sample:      res.Sample,
		Plan:        res.Root,
		Parallelism: opts.Parallelism,
		BatchSize:   opts.BatchSize,
		Cache:       cacheState,
		ElapsedNS:   elapsed.Nanoseconds(),
	})
}

// prepared resolves SQL to a ready-to-probe execution: from the cache when
// possible, otherwise parse + plan + build (and insert, keyed by the
// normalized SQL, so whitespace variants of one query share an entry).
func (s *Server) prepared(sql string, opts engine.ExecOptions) (*engine.Prepared, string, error) {
	if !s.cache.enabled() {
		prep, err := s.prepare(sql, opts)
		return prep, "bypass", err
	}
	key := normalizeSQL(sql)
	if prep, ok := s.cache.get(key); ok {
		return prep, "hit", nil
	}
	// Single-flighted miss: concurrent cold requests for one query share
	// one parse + plan + build instead of racing N of them. Only the
	// request that actually ran the build reports "miss" — a coalesced
	// waiter was served by the cache, and its response label agrees with
	// what CacheStats counted it as.
	prep, built, err := s.cache.do(key, func() (*engine.Prepared, error) {
		return s.prepare(sql, opts)
	})
	if err != nil {
		return nil, "", err
	}
	if !built {
		return prep, "hit", nil
	}
	return prep, "miss", nil
}

func (s *Server) prepare(sql string, opts engine.ExecOptions) (*engine.Prepared, error) {
	q, err := sqlkit.Parse(sql)
	if err != nil {
		return nil, &badQueryError{err}
	}
	plan, err := engine.BuildPlan(s.db.Schema, q)
	if err != nil {
		return nil, &badQueryError{err}
	}
	return engine.Prepare(s.db, plan, opts)
}

// badQueryError marks failures the client caused (unparsable or
// unplannable SQL), distinguishing them from server-side build faults for
// status-code selection.
type badQueryError struct{ err error }

func (e *badQueryError) Error() string { return e.err.Error() }
func (e *badQueryError) Unwrap() error { return e.err }

// errorResponse is the JSON error body every non-2xx reply carries.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding into an in-memory value cannot fail for these types; a
	// broken connection mid-write is the client's problem.
	_ = json.NewEncoder(w).Encode(v)
}
