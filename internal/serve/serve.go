// Package serve is Hydra's concurrent query front end: an HTTP server
// (stdlib net/http + encoding/json only) over one loaded database summary.
// It demonstrates the regenerator as a service — many concurrent clients
// issuing SQL against a database holding zero stored rows, each query's
// scans regenerated on the fly and, when Parallelism is enabled, fanned
// out across workers by the engine's morsel-driven executor.
//
// Repeated query shapes are served from a keyed plan/build cache
// (cache.go): the first request for a query pays parse + plan + hash-join
// build cost, every later request probes the shared read-only arenas only.
// Grouped-aggregate queries (GROUP BY with COUNT/SUM/MIN/MAX/AVG) flow
// through the same cache; their group rows are returned in the response's
// rows count and bounded sample.
//
// Endpoints:
//
//	POST /query    {"sql": "SELECT COUNT(*) FROM ...", "batch_size": 512,
//	                "parallelism": 4, "timeout_ms": 250, "explain": true} →
//	               {"count", "rows", "sample", "plan", "cache", "elapsed_ns",
//	                "request_id", "trace", "trace_text", ...}
//	GET  /healthz  {"status": "ok", "tables": N, "cache": {...}, ...}
//	GET  /statsz   {"cache": {...}, "recent": [...]} — plan-cache
//	               effectiveness plus a ring of the last 32 completed
//	               queries (SQL, cache disposition, elapsed, top operator)
//	GET  /metricsz Prometheus text exposition: in-flight/queued gauges,
//	               per-outcome request counters and latency histograms,
//	               shed counters by reason, per-operator self-time
//	               histograms, engine counters, runtime gauges, build info
//
// Observability: every request carries a request ID (the client's
// X-Request-Id when present, else a server-assigned "q-N"), echoed in the
// response header and body and attached to the structured slow-query log
// (log/slog) that fires when a query's latency crosses
// Options.SlowQueryThreshold. A request with "explain": true — or SQL
// prefixed EXPLAIN ANALYZE — executes with per-operator tracing and the
// response carries the span tree as JSON plus its rendered text form.
// Options.TraceQueries traces every query (feeding the per-operator
// /metricsz histograms) at a few percent overhead; Options.EnablePprof
// mounts net/http/pprof under /debug/pprof/.
//
// The server survives overload by construction (admission.go): at most
// MaxInFlight queries execute, a bounded queue absorbs bursts, and the
// rest shed fast with 429 + Retry-After. Each query runs under a context
// assembled from the client connection, an optional timeout_ms deadline
// (clamped by MaxTimeout; expiry → 504), and the server's drain state —
// BeginDrain refuses new work with 503 while admitted queries finish, and
// CancelInFlight force-unwinds the stragglers at their next batch boundary
// (499). The engine guarantees cancellation never leaks a goroutine.
//
// The handler is safe for concurrent use: the underlying dataless
// database is read-only after construction, every request opens fresh
// probe state, and cached build arenas are immutable after construction.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"mime"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sqlkit"
	"repro/internal/summary"
	"repro/internal/trace"
)

// Options configure the server.
type Options struct {
	// Parallelism is passed to every query's ExecOptions (clamped by the
	// engine into [0, GOMAXPROCS]); 0 executes sequentially. A request may
	// override it per query.
	Parallelism int
	// BatchSize overrides the execution batch capacity (0 = default). A
	// request may override it per query.
	BatchSize int
	// SampleLimit caps how many result rows a response carries (decoded
	// result sets can be arbitrarily large; COUNT(*) responses are exact
	// regardless).
	SampleLimit int
	// RowsPerSec throttles regeneration per scan (0 = unlimited). A
	// positive rate disables parallel execution (paced streams are
	// serial), which the engine handles by transparent fallback.
	RowsPerSec float64
	// PlanCacheSize caps the plan/build cache (entries): 0 selects
	// DefaultCacheSize, negative disables caching entirely (every request
	// re-plans and rebuilds).
	PlanCacheSize int

	// MaxInFlight bounds concurrently executing queries; 0 = unlimited
	// (admission control disabled except for draining). Requests beyond the
	// bound enter a bounded wait queue or are shed with 429.
	MaxInFlight int
	// MaxQueue bounds how many requests may wait for an execution slot when
	// all MaxInFlight slots are busy; 0 = no queue (immediate shed).
	MaxQueue int
	// QueueWait bounds how long a queued request waits for a slot before
	// being shed: 0 selects DefaultQueueWait, negative disables waiting.
	QueueWait time.Duration
	// MaxTimeout caps (and, when a request carries no timeout_ms, supplies)
	// the per-query execution deadline; 0 = no server-side deadline.
	MaxTimeout time.Duration
	// Logf receives diagnostic messages (response-write failures and the
	// like); nil selects the stdlib logger.
	Logf func(format string, args ...any)

	// TraceQueries executes every query with per-operator tracing, feeding
	// the /metricsz self-time histograms and the /statsz top-operator
	// column. Tracing costs a few percent on the hottest queries (the spans
	// are preallocated and recycled — no per-query allocation); with it off,
	// only explain requests trace.
	TraceQueries bool
	// SlowQueryThreshold, when positive, emits a structured slog record for
	// every query whose total latency meets or exceeds it: request ID, SQL,
	// elapsed time, cache disposition, and (when traced) the top 3 operators
	// by self time. Zero disables the slow-query log.
	SlowQueryThreshold time.Duration
	// Logger receives slow-query records; nil selects slog.Default().
	Logger *slog.Logger
	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/ on
	// the server's handler — CPU and heap profiles over the same listener.
	EnablePprof bool
}

// Server serves queries against one summary's dataless database.
type Server struct {
	sum   *summary.Database
	db    *engine.Database
	opts  Options
	cache *planCache
	adm   *admission
	met   *metrics
	logf  func(format string, args ...any)
	slog  *slog.Logger

	// hardCtx is canceled by CancelInFlight: every in-flight query's
	// context is a child of the request context AND this one (via
	// context.AfterFunc), so a drain whose grace expires can cancel all
	// running work without tracking individual requests.
	//
	//hydralint:ignore ctxfield server-lifetime cancellation root, not a request context; canceled only by CancelInFlight/Close
	hardCtx    context.Context
	hardCancel context.CancelFunc

	// ring remembers the last QueryRingSize completed queries for
	// GET /statsz; reqSeq numbers requests that arrive without an
	// X-Request-Id of their own.
	ring   queryRing
	reqSeq atomic.Int64

	// testHookAdmitted, when set, runs after a request is admitted (slot
	// held) and before execution — the seam deterministic overload tests
	// block in to hold slots occupied.
	testHookAdmitted func()
}

// New builds a server over the summary.
func New(sum *summary.Database, opts Options) *Server {
	logf := opts.Logf
	if logf == nil {
		logf = log.Printf
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	hardCtx, hardCancel := context.WithCancel(context.Background())
	return &Server{
		sum:        sum,
		db:         core.RegenDatabase(sum, opts.RowsPerSec),
		opts:       opts,
		cache:      newPlanCache(opts.PlanCacheSize),
		adm:        newAdmission(opts.MaxInFlight, opts.MaxQueue, opts.QueueWait),
		met:        newMetrics(),
		logf:       logf,
		slog:       logger,
		hardCtx:    hardCtx,
		hardCancel: hardCancel,
	}
}

// BeginDrain moves the server into draining: every subsequent POST /query —
// including requests already waiting in the admission queue — is refused
// with 503 + Retry-After, while admitted queries keep running. Call it
// before http.Server.Shutdown so the listener's connections empty out.
// Idempotent.
func (s *Server) BeginDrain() { s.adm.beginDrain() }

// CancelInFlight cancels the context of every currently executing query:
// each unwinds at its next batch boundary with context.Canceled and its
// request finishes with 499. The escalation step when a drain's grace
// period expires. Idempotent.
func (s *Server) CancelInFlight() { s.hardCancel() }

// InvalidateCache drops every cached plan and build arena — the hook to
// call when the served summary is swapped or mutated out from under the
// server. In-flight requests finish against the arenas they already hold
// (arenas are immutable, so this is safe); new requests re-plan.
func (s *Server) InvalidateCache() { s.cache.invalidate() }

// CacheStats snapshots plan-cache effectiveness.
func (s *Server) CacheStats() CacheStats { return s.cache.stats() }

// Handler returns the HTTP handler exposing the query, health, and stats
// endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/statsz", s.handleStats)
	mux.HandleFunc("/metricsz", s.handleMetrics)
	if s.opts.EnablePprof {
		// The stdlib pprof handlers register themselves on DefaultServeMux
		// only; mounting them here keeps profiling on the server's own
		// handler (and off by default — profiles expose internals).
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// QueryRequest is the POST /query body. BatchSize and Parallelism, when
// present, override the server-wide defaults for this query; both pass
// through ExecOptions.Normalize, so invalid values are rejected with 400
// and out-of-range parallelism is clamped.
type QueryRequest struct {
	SQL         string `json:"sql"`
	BatchSize   *int   `json:"batch_size,omitempty"`
	Parallelism *int   `json:"parallelism,omitempty"`
	// TimeoutMS is the query's execution deadline in milliseconds; the
	// engine cancels cooperatively at the next batch boundary once it
	// expires and the request fails with 504. Clamped from above by the
	// server's MaxTimeout; must be positive when present.
	TimeoutMS *int64 `json:"timeout_ms,omitempty"`
	// Explain executes the query with per-operator tracing and returns the
	// span tree in the response ("trace" as JSON, "trace_text" rendered) —
	// the HTTP spelling of EXPLAIN ANALYZE (an EXPLAIN ANALYZE prefix on the
	// SQL itself has the same effect).
	Explain bool `json:"explain,omitempty"`
	// Approx permits the summary-direct fast path to return bounded-error
	// estimates for global aggregates it cannot prove exact; the response
	// then carries "approx" with the 95% confidence interval. Exactly
	// answerable queries are unaffected (the answer stays exact).
	Approx bool `json:"approx,omitempty"`
}

// QueryResponse is the POST /query reply: the COUNT value (for COUNT(*)
// queries), output cardinality, a bounded sample of output rows, the
// cardinality-annotated operator tree, whether the plan/build cache served
// the query ("hit", "miss", or "bypass" when caching is disabled), and
// timing.
type QueryResponse struct {
	SQL         string           `json:"sql"`
	RequestID   string           `json:"request_id,omitempty"`
	Count       int64            `json:"count"`
	Rows        int64            `json:"rows"`
	Sample      [][]int64        `json:"sample,omitempty"`
	Plan        *engine.ExecNode `json:"plan"`
	Parallelism int              `json:"parallelism"`
	BatchSize   int              `json:"batch_size,omitempty"`
	Cache       string           `json:"cache,omitempty"`
	ElapsedNS   int64            `json:"elapsed_ns"`
	// Path says how the query was answered: "summary" when the
	// summary-direct aggregate fast path computed it from summary-row
	// arithmetic without regenerating tuples, "regen" otherwise.
	Path string `json:"path"`
	// Approx is present only when an approx request was answered with a
	// bounded-error estimate rather than an exact value.
	Approx *engine.ApproxInfo `json:"approx,omitempty"`
	// Trace is the per-operator span tree (wall time, self time, rows,
	// batches, bytes) and TraceText its rendered text form; both are present
	// only when the request asked for explain.
	Trace     *trace.Span `json:"trace,omitempty"`
	TraceText string      `json:"trace_text,omitempty"`
}

// HealthResponse is the GET /healthz reply.
type HealthResponse struct {
	Status      string     `json:"status"`
	Tables      int        `json:"tables"`
	Parallelism int        `json:"parallelism"`
	Cache       CacheStats `json:"cache"`
}

// StatsResponse is the GET /statsz reply: plan/build-cache effectiveness
// plus the ring of the last QueryRingSize completed queries, newest first.
type StatsResponse struct {
	Cache  CacheStats     `json:"cache"`
	Recent []QuerySummary `json:"recent,omitempty"`
}

// handleStats serves GET /statsz with the same 405 + Allow pinning as the
// other routes.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	s.writeJSON(w, http.StatusOK, StatsResponse{Cache: s.cache.stats(), Recent: s.ring.snapshot()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	s.writeJSON(w, http.StatusOK, HealthResponse{
		Status:      "ok",
		Tables:      len(s.sum.Relations),
		Parallelism: s.opts.Parallelism,
		Cache:       s.cache.stats(),
	})
}

// MaxQueryBody bounds the POST /query body. SQL text is small; anything
// beyond this is a hostile or broken client, and an unbounded decode would
// let one request hold arbitrary memory.
const MaxQueryBody = 1 << 20

// StatusClientClosedRequest is the (nginx-originated, de facto standard)
// status for a request whose client went away — or whose execution was
// hard-canceled by a drain — before a response could be produced.
const StatusClientClosedRequest = 499

// RetryAfterSeconds is the Retry-After hint attached to 429 and 503
// refusals: shed responses are fast failures, and the hint tells
// well-behaved clients when backing off is long enough.
const RetryAfterSeconds = 1

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	fail := func(outcome string, status int, err error) {
		s.writeError(w, status, err)
		s.met.record(outcome, time.Since(start))
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		fail(outcomeBadRequest, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	// The body is JSON: reject any declared non-JSON content type up front
	// (an absent header is tolerated for bare clients), and cap how much of
	// the body the decoder may consume.
	if ct := r.Header.Get("Content-Type"); ct != "" {
		if mt, _, err := mime.ParseMediaType(ct); err != nil || (mt != "application/json" && !strings.HasSuffix(mt, "+json")) {
			fail(outcomeBadRequest, http.StatusUnsupportedMediaType, fmt.Errorf("content type %q is not JSON", ct))
			return
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, MaxQueryBody)
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			fail(outcomeBadRequest, http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		fail(outcomeBadRequest, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.SQL == "" {
		fail(outcomeBadRequest, http.StatusBadRequest, fmt.Errorf("request has no sql"))
		return
	}
	// Every query gets a request ID — the client's X-Request-Id when it sent
	// one, else a server-assigned sequence number — echoed in the response
	// header and body and attached to the slow-query log, so one slow request
	// can be chased across client logs, server logs, and /statsz.
	requestID := r.Header.Get("X-Request-Id")
	if requestID == "" {
		requestID = fmt.Sprintf("q-%d", s.reqSeq.Add(1))
	}
	w.Header().Set("X-Request-Id", requestID)
	// An explain request (the JSON field or an EXPLAIN ANALYZE SQL prefix)
	// always traces; TraceQueries traces everything else too, feeding the
	// per-operator /metricsz histograms.
	explain := req.Explain || hasExplainPrefix(req.SQL)
	opts := engine.ExecOptions{
		SampleLimit: s.opts.SampleLimit,
		BatchSize:   s.opts.BatchSize,
		Parallelism: s.opts.Parallelism,
		Trace:       explain || s.opts.TraceQueries,
		Approx:      req.Approx,
	}
	if req.BatchSize != nil {
		opts.BatchSize = *req.BatchSize
	}
	if req.Parallelism != nil {
		opts.Parallelism = *req.Parallelism
	}
	opts, err := opts.Normalize()
	if err != nil {
		fail(outcomeBadRequest, http.StatusBadRequest, err)
		return
	}
	// The per-query deadline: the request's timeout_ms, clamped from above
	// by the server's MaxTimeout (which also supplies the deadline when the
	// request carries none).
	var timeout time.Duration
	if req.TimeoutMS != nil {
		if *req.TimeoutMS <= 0 {
			fail(outcomeBadRequest, http.StatusBadRequest, fmt.Errorf("timeout_ms must be positive, got %d", *req.TimeoutMS))
			return
		}
		timeout = time.Duration(*req.TimeoutMS) * time.Millisecond
	}
	if cap := s.opts.MaxTimeout; cap > 0 && (timeout == 0 || timeout > cap) {
		timeout = cap
	}

	// Admission: everything above is cheap, bounded work; execution holds a
	// slot. Shed responses are deliberately fast 429s with a Retry-After
	// hint, so overload degrades into quick refusals instead of queueing
	// collapse.
	switch s.adm.acquire(r.Context()) {
	case admitOK:
	case admitQueueFull:
		s.met.recordShed(shedQueueFull)
		w.Header().Set("Retry-After", fmt.Sprint(RetryAfterSeconds))
		fail(outcomeShed, http.StatusTooManyRequests, fmt.Errorf("server at capacity (admission queue full)"))
		return
	case admitQueueTimeout:
		s.met.recordShed(shedQueueTimeout)
		w.Header().Set("Retry-After", fmt.Sprint(RetryAfterSeconds))
		fail(outcomeShed, http.StatusTooManyRequests, fmt.Errorf("server at capacity (queue wait exceeded)"))
		return
	case admitCanceled:
		fail(outcomeCanceled, StatusClientClosedRequest, context.Canceled)
		return
	case admitDraining:
		s.met.recordShed(shedDraining)
		w.Header().Set("Retry-After", fmt.Sprint(RetryAfterSeconds))
		fail(outcomeDraining, http.StatusServiceUnavailable, fmt.Errorf("server is draining"))
		return
	}
	defer s.adm.release()
	s.met.inFlight.Add(1)
	defer s.met.inFlight.Add(-1)
	if h := s.testHookAdmitted; h != nil {
		h()
	}

	// The execution context: child of the request context (client
	// disconnect cancels), hard-cancelable by CancelInFlight (drain-grace
	// escalation), bounded by the query deadline.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.hardCtx, cancel)
	defer stop()
	if timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, timeout)
		defer tcancel()
	}

	// prepared is deliberately context-free: a cache fill is shared work
	// (single-flighted across coalesced requests), and letting one
	// requester's cancellation abort it would poison the entry every waiter
	// gets. Builds are bounded; deadlines govern execution.
	prep, cacheState, err := s.prepared(req.SQL, opts)
	if err != nil {
		// Unparsable or unplannable SQL is the client's fault; a failure
		// opening or draining a build-side source is the server's.
		var bad *badQueryError
		if errors.As(err, &bad) {
			fail(outcomeBadRequest, http.StatusBadRequest, err)
			return
		}
		fail(outcomeError, http.StatusInternalServerError, err)
		return
	}
	res, err := prep.ExecuteContext(ctx, opts)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			fail(outcomeTimeout, http.StatusGatewayTimeout, fmt.Errorf("query exceeded its deadline of %v", timeout))
		case errors.Is(err, context.Canceled):
			fail(outcomeCanceled, StatusClientClosedRequest, err)
		default:
			fail(outcomeError, http.StatusInternalServerError, err)
		}
		return
	}
	elapsed := time.Since(start)
	pruned := s.met.observeQuery(res, elapsed)
	// The response always names the execution path; the engine leaves
	// Path empty for the regenerating pipeline.
	path := res.Path
	if path == "" {
		path = "regen"
	}
	topOp := res.Root.Op
	if res.Trace != nil {
		if tops := trace.TopSelf(res.Trace, 1); len(tops) > 0 {
			topOp = tops[0].Op
		}
	}
	s.ring.add(QuerySummary{
		SQL:       req.SQL,
		RequestID: requestID,
		Cache:     cacheState,
		ElapsedNS: elapsed.Nanoseconds(),
		Rows:      res.Rows,
		TopOp:     topOp,
		Path:      path,
		Pruned:    pruned,
	})
	if thr := s.opts.SlowQueryThreshold; thr > 0 && elapsed >= thr {
		attrs := []any{
			slog.String("request_id", requestID),
			slog.String("sql", req.SQL),
			slog.Duration("elapsed", elapsed),
			slog.String("cache", cacheState),
		}
		if res.Trace != nil {
			tops := trace.TopSelf(res.Trace, 3)
			parts := make([]string, len(tops))
			for i, sp := range tops {
				parts[i] = fmt.Sprintf("%s=%s", sp.Op, time.Duration(sp.SelfNS()))
			}
			attrs = append(attrs, slog.String("top_ops", strings.Join(parts, ",")))
		}
		s.slog.Warn("slow query", attrs...)
	}
	resp := QueryResponse{
		SQL:         req.SQL,
		RequestID:   requestID,
		Count:       res.Count,
		Rows:        res.Rows,
		Sample:      res.Sample,
		Plan:        res.Root,
		Parallelism: opts.Parallelism,
		BatchSize:   opts.BatchSize,
		Cache:       cacheState,
		ElapsedNS:   elapsed.Nanoseconds(),
		Path:        path,
	}
	// The engine reports approx state whenever estimation was permitted;
	// the response carries it only when an estimate was actually returned.
	if res.Approx != nil && res.Approx.Estimated {
		resp.Approx = res.Approx
	}
	// The span tree rides back only when the client asked for it: routine
	// traced queries (TraceQueries) feed metrics without inflating every
	// response body.
	if explain && res.Trace != nil {
		resp.Trace = res.Trace
		resp.TraceText = trace.Render(res.Trace)
	}
	s.writeJSON(w, http.StatusOK, resp)
	s.met.record(outcomeOK, time.Since(start))
}

// hasExplainPrefix reports whether sql's first keyword is EXPLAIN
// (case-insensitive), so the serve layer can turn tracing on before the
// cache-hit path, which never re-parses, is consulted. The parser proper
// still validates the full EXPLAIN ANALYZE spelling.
func hasExplainPrefix(sql string) bool {
	t := strings.TrimLeft(sql, " \t\r\n")
	const kw = "explain"
	return len(t) > len(kw) && strings.EqualFold(t[:len(kw)], kw) &&
		(t[len(kw)] == ' ' || t[len(kw)] == '\t' || t[len(kw)] == '\r' || t[len(kw)] == '\n')
}

// prepared resolves SQL to a ready-to-probe execution: from the cache when
// possible, otherwise parse + plan + build (and insert, keyed by the
// normalized SQL, so whitespace variants of one query share an entry).
func (s *Server) prepared(sql string, opts engine.ExecOptions) (*engine.Prepared, string, error) {
	if !s.cache.enabled() {
		prep, err := s.prepare(sql, opts)
		return prep, "bypass", err
	}
	key := normalizeSQL(sql)
	// Approx executions get their own cache entries: the option changes what
	// an execution may return (estimates), so the two populations must never
	// share a prepared entry even as the execution machinery evolves. The
	// NUL separator cannot occur in normalized SQL.
	if opts.Approx {
		key += "\x00approx"
	}
	if prep, ok := s.cache.get(key); ok {
		return prep, "hit", nil
	}
	// Single-flighted miss: concurrent cold requests for one query share
	// one parse + plan + build instead of racing N of them. Only the
	// request that actually ran the build reports "miss" — a coalesced
	// waiter was served by the cache, and its response label agrees with
	// what CacheStats counted it as.
	prep, built, err := s.cache.do(key, func() (*engine.Prepared, error) {
		return s.prepare(sql, opts)
	})
	if err != nil {
		return nil, "", err
	}
	if !built {
		return prep, "hit", nil
	}
	return prep, "miss", nil
}

// prepare parses, plans, and builds one query. The wall clock of the whole
// operation — dominated by draining hash-join build sides — feeds the
// hydra_plan_cache_build_seconds_total counter, so cache-miss cost is
// visible next to the hit rate.
func (s *Server) prepare(sql string, opts engine.ExecOptions) (*engine.Prepared, error) {
	start := time.Now()
	defer func() { s.met.cacheBuildNS.Add(time.Since(start).Nanoseconds()) }()
	q, err := sqlkit.Parse(sql)
	if err != nil {
		return nil, &badQueryError{err}
	}
	plan, err := engine.BuildPlan(s.db.Schema, q)
	if err != nil {
		return nil, &badQueryError{err}
	}
	return engine.Prepare(s.db, plan, opts)
}

// badQueryError marks failures the client caused (unparsable or
// unplannable SQL), distinguishing them from server-side build faults for
// status-code selection.
type badQueryError struct{ err error }

func (e *badQueryError) Error() string { return e.err.Error() }
func (e *badQueryError) Unwrap() error { return e.err }

// errorResponse is the JSON error body every non-2xx reply carries.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, errorResponse{Error: err.Error()})
}

// writeJSON marshals v before committing any status, so an encoding
// failure can still produce a well-formed 500 — a second WriteHeader after
// a partial body write is never issued. Encode and write failures are
// logged rather than dropped: a persistently failing response path is an
// operational signal (canceled clients excepted — a 499's writer is gone
// by definition).
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		s.logf("serve: encoding %T response: %v", v, err)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		if _, werr := w.Write([]byte(`{"error":"response encoding failed"}` + "\n")); werr != nil {
			s.logf("serve: writing error response: %v", werr)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(append(data, '\n')); err != nil {
		s.logf("serve: writing %d response: %v", status, err)
	}
}
