// Package aqp implements Annotated Query Plans: operator trees whose output
// edges carry the row cardinality observed during the client's execution
// (Binnig et al., QAGen). AQPs are the unit of information Hydra ships from
// client to vendor, the input to LP formulation, and the yardstick for
// volumetric-similarity verification.
package aqp

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/engine"
)

// Node is one operator of an AQP with its annotated output cardinality.
type Node struct {
	Op       string  `json:"op"`
	Table    string  `json:"table,omitempty"`
	Pred     string  `json:"pred,omitempty"`
	Join     string  `json:"join,omitempty"`
	Card     int64   `json:"card"`
	Children []*Node `json:"children,omitempty"`
}

// AQP couples a query's SQL text with its annotated plan.
type AQP struct {
	SQL  string `json:"sql"`
	Plan *Node  `json:"plan"`
}

// FromExec converts an executed operator tree into an AQP node tree.
func FromExec(n *engine.ExecNode) *Node {
	if n == nil {
		return nil
	}
	out := &Node{
		Op:    n.Op,
		Table: n.Table,
		Pred:  n.PredSQL,
		Join:  n.JoinSQL,
		Card:  n.OutRows,
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, FromExec(c))
	}
	return out
}

// Clone returns a deep copy of the node tree.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	out := &Node{Op: n.Op, Table: n.Table, Pred: n.Pred, Join: n.Join, Card: n.Card}
	for _, c := range n.Children {
		out.Children = append(out.Children, c.Clone())
	}
	return out
}

// Walk visits every node pre-order.
func (n *Node) Walk(fn func(*Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Edges returns the number of annotated edges (nodes) in the tree.
func (n *Node) Edges() int {
	count := 0
	n.Walk(func(*Node) { count++ })
	return count
}

// Validate checks the structural invariants a vendor-received AQP must hold:
// non-negative cardinalities, children cardinalities consistent with
// monotone operators (a filter or join never outputs more rows than a
// cross-product bound; an aggregate outputs one row).
func (n *Node) Validate() error {
	var err error
	n.Walk(func(nd *Node) {
		if err != nil {
			return
		}
		if nd.Card < 0 {
			err = fmt.Errorf("aqp: node %s has negative cardinality %d", nd.Op, nd.Card)
			return
		}
		switch nd.Op {
		case "FILTER":
			if len(nd.Children) != 1 {
				err = fmt.Errorf("aqp: FILTER must have one child")
				return
			}
			if nd.Card > nd.Children[0].Card {
				err = fmt.Errorf("aqp: FILTER outputs %d > input %d", nd.Card, nd.Children[0].Card)
			}
		case "HASH JOIN":
			if len(nd.Children) != 2 {
				err = fmt.Errorf("aqp: HASH JOIN must have two children")
			}
		case "AGGREGATE":
			if len(nd.Children) != 1 {
				err = fmt.Errorf("aqp: AGGREGATE must have one child")
				return
			}
			if nd.Card != 1 {
				err = fmt.Errorf("aqp: AGGREGATE outputs %d rows, want 1", nd.Card)
			}
		case "SCAN":
			if len(nd.Children) != 0 {
				err = fmt.Errorf("aqp: SCAN must be a leaf")
			}
		}
	})
	return err
}

// EdgeDiff reports one edge's expected (client) vs actual (regenerated)
// cardinality.
type EdgeDiff struct {
	Path     string  `json:"path"` // e.g. "HASH JOIN/FILTER(item)"
	Op       string  `json:"op"`
	Expected int64   `json:"expected"`
	Actual   int64   `json:"actual"`
	RelErr   float64 `json:"rel_err"`
}

// Compare walks two isomorphic plans and reports every edge's cardinality
// difference. It errors if the trees have different shapes.
func Compare(expected, actual *Node) ([]EdgeDiff, error) {
	var out []EdgeDiff
	var walk func(e, a *Node, path string) error
	walk = func(e, a *Node, path string) error {
		if (e == nil) != (a == nil) {
			return fmt.Errorf("aqp: plan shapes differ at %s", path)
		}
		if e == nil {
			return nil
		}
		if e.Op != a.Op || len(e.Children) != len(a.Children) {
			return fmt.Errorf("aqp: plan shapes differ at %s (%s vs %s)", path, e.Op, a.Op)
		}
		label := e.Op
		if e.Table != "" {
			label += "(" + e.Table + ")"
		}
		p := path + "/" + label
		out = append(out, EdgeDiff{
			Path:     strings.TrimPrefix(p, "/"),
			Op:       e.Op,
			Expected: e.Card,
			Actual:   a.Card,
			RelErr:   RelErr(e.Card, a.Card),
		})
		for i := range e.Children {
			if err := walk(e.Children[i], a.Children[i], p); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(expected, actual, ""); err != nil {
		return nil, err
	}
	return out, nil
}

// RelErr is |expected-actual| / expected, with the convention that an
// expected value of 0 yields 0 when actual is also 0 and +Inf otherwise.
func RelErr(expected, actual int64) float64 {
	if expected == 0 {
		if actual == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(float64(expected-actual)) / float64(expected)
}

// Scale multiplies every cardinality annotation by factor (rounding),
// producing the synthetic AQPs of the paper's what-if scenario construction.
func (n *Node) Scale(factor float64) {
	n.Walk(func(nd *Node) {
		if nd.Op == "AGGREGATE" {
			return // aggregates still emit one row
		}
		nd.Card = int64(math.Round(float64(nd.Card) * factor))
	})
}

// String renders the plan as an indented tree with cardinality annotations,
// in the spirit of the demo's plan display.
func (n *Node) String() string {
	var sb strings.Builder
	var rec func(nd *Node, depth int)
	rec = func(nd *Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(nd.Op)
		if nd.Table != "" {
			sb.WriteString(" " + nd.Table)
		}
		if nd.Pred != "" {
			sb.WriteString(" [" + nd.Pred + "]")
		}
		if nd.Join != "" {
			sb.WriteString(" (" + nd.Join + ")")
		}
		fmt.Fprintf(&sb, "  -> %d rows\n", nd.Card)
		for _, c := range nd.Children {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return sb.String()
}

// MarshalJSON / UnmarshalJSON for AQP use the default struct codec; these
// helpers encode a workload.
func EncodeWorkload(aqps []*AQP) ([]byte, error) {
	return json.MarshalIndent(aqps, "", "  ")
}

// DecodeWorkload parses a JSON workload produced by EncodeWorkload.
func DecodeWorkload(data []byte) ([]*AQP, error) {
	var out []*AQP
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("aqp: decoding workload: %w", err)
	}
	for _, a := range out {
		if a.Plan == nil {
			return nil, fmt.Errorf("aqp: workload entry %q has no plan", a.SQL)
		}
	}
	return out, nil
}
