package aqp

import (
	"math"
	"strings"
	"testing"

	"repro/internal/engine"
)

func samplePlan() *Node {
	return &Node{
		Op: "AGGREGATE", Card: 1,
		Children: []*Node{{
			Op: "HASH JOIN", Join: "f.d_fk = d.d_pk", Card: 10,
			Children: []*Node{
				{Op: "SCAN", Table: "f", Card: 100},
				{Op: "FILTER", Table: "d", Pred: "a < 5", Card: 3,
					Children: []*Node{{Op: "SCAN", Table: "d", Card: 20}}},
			},
		}},
	}
}

func TestFromExec(t *testing.T) {
	en := &engine.ExecNode{Op: "FILTER", Table: "t", PredSQL: "x < 1", OutRows: 5,
		Children: []*engine.ExecNode{{Op: "SCAN", Table: "t", OutRows: 9}}}
	n := FromExec(en)
	if n.Op != "FILTER" || n.Card != 5 || n.Children[0].Card != 9 {
		t.Errorf("FromExec = %+v", n)
	}
	if FromExec(nil) != nil {
		t.Error("FromExec(nil) should be nil")
	}
}

func TestCloneAndEdges(t *testing.T) {
	p := samplePlan()
	c := p.Clone()
	c.Children[0].Card = 999
	if p.Children[0].Card != 10 {
		t.Error("Clone shares nodes")
	}
	if p.Edges() != 5 {
		t.Errorf("Edges = %d, want 5", p.Edges())
	}
}

func TestValidate(t *testing.T) {
	if err := samplePlan().Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad := samplePlan()
	bad.Children[0].Children[1].Card = 50 // filter output > scan input
	if err := bad.Validate(); err == nil {
		t.Error("filter blow-up accepted")
	}
	neg := samplePlan()
	neg.Children[0].Card = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative cardinality accepted")
	}
	agg := samplePlan()
	agg.Card = 3
	if err := agg.Validate(); err == nil {
		t.Error("multi-row aggregate accepted")
	}
}

func TestCompare(t *testing.T) {
	a, b := samplePlan(), samplePlan()
	b.Children[0].Card = 12
	diffs, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 5 {
		t.Fatalf("diffs = %d", len(diffs))
	}
	found := false
	for _, d := range diffs {
		if d.Expected == 10 && d.Actual == 12 {
			found = true
			if math.Abs(d.RelErr-0.2) > 1e-9 {
				t.Errorf("RelErr = %v", d.RelErr)
			}
			if !strings.Contains(d.Path, "HASH JOIN") {
				t.Errorf("path = %q", d.Path)
			}
		}
	}
	if !found {
		t.Error("changed edge not reported")
	}

	// Shape mismatch errors.
	c := samplePlan()
	c.Children[0].Children = c.Children[0].Children[:1]
	if _, err := Compare(a, c); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(0, 0) != 0 {
		t.Error("0/0 should be 0")
	}
	if !math.IsInf(RelErr(0, 5), 1) {
		t.Error("0 expected, >0 actual should be +Inf")
	}
	if RelErr(10, 5) != 0.5 {
		t.Error("basic relative error wrong")
	}
}

func TestScale(t *testing.T) {
	p := samplePlan()
	p.Scale(2.5)
	if p.Card != 1 {
		t.Error("aggregate card must stay 1")
	}
	if p.Children[0].Card != 25 {
		t.Errorf("join card = %d, want 25", p.Children[0].Card)
	}
	if p.Children[0].Children[0].Card != 250 {
		t.Errorf("scan card = %d, want 250", p.Children[0].Children[0].Card)
	}
}

func TestStringRendering(t *testing.T) {
	s := samplePlan().String()
	for _, frag := range []string{"AGGREGATE", "HASH JOIN", "[a < 5]", "-> 10 rows"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q:\n%s", frag, s)
		}
	}
}

func TestWorkloadCodec(t *testing.T) {
	in := []*AQP{{SQL: "SELECT COUNT(*) FROM f", Plan: samplePlan()}}
	data, err := EncodeWorkload(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeWorkload(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].SQL != in[0].SQL || out[0].Plan.Edges() != 5 {
		t.Errorf("round trip = %+v", out)
	}
	if _, err := DecodeWorkload([]byte(`[{"sql":"x"}]`)); err == nil {
		t.Error("plan-less entry accepted")
	}
	if _, err := DecodeWorkload([]byte(`{`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}
