package core

import (
	"bytes"
	"testing"

	"repro/internal/engine"
	"repro/internal/sqlkit"
	"repro/internal/summary"
	"repro/internal/toy"
)

func TestCaptureClient(t *testing.T) {
	db, err := toy.Database(2)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := CaptureClient(db, toy.Workload(), CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Workload) != len(toy.Workload()) {
		t.Fatalf("workload = %d", len(pkg.Workload))
	}
	if pkg.Schema.Table("r").RowCount != toy.RRows {
		t.Errorf("row count not refreshed: %d", pkg.Schema.Table("r").RowCount)
	}
	// Stats cover every non-key column of every stored table.
	if len(pkg.Stats) != 3 {
		t.Fatalf("stats tables = %d", len(pkg.Stats))
	}
	for _, ts := range pkg.Stats {
		for _, cs := range ts.Columns {
			if cs.Histogram == nil {
				t.Errorf("%s.%s has no histogram", ts.Table, cs.Column)
			}
		}
	}
	// The AQP for the Figure 1 query carries real cardinalities.
	if pkg.Workload[0].Plan.Card == 0 {
		t.Error("root cardinality is 0")
	}
	if err := pkg.Workload[0].Plan.Validate(); err != nil {
		t.Errorf("captured plan invalid: %v", err)
	}
}

func TestCaptureSkipStatsAndErrors(t *testing.T) {
	db, err := toy.Database(2)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := CaptureClient(db, toy.Workload()[:1], CaptureOptions{SkipStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Stats != nil {
		t.Error("stats not skipped")
	}
	if _, err := CaptureClient(db, []string{"BAD SQL"}, CaptureOptions{}); err == nil {
		t.Error("bad SQL accepted")
	}
	if _, err := CaptureClient(db, []string{"SELECT * FROM missing"}, CaptureOptions{}); err == nil {
		t.Error("missing table accepted")
	}
}

func TestPackageCodec(t *testing.T) {
	db, err := toy.Database(2)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := CaptureClient(db, toy.Workload(), CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pkg.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodePackage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Workload) != len(pkg.Workload) || back.Schema.Table("s") == nil {
		t.Error("package round trip lost content")
	}
	if _, err := DecodePackage(bytes.NewBufferString("{}")); err == nil {
		t.Error("schema-less package accepted")
	}
	if _, err := DecodePackage(bytes.NewBufferString("not json")); err == nil {
		t.Error("malformed package accepted")
	}
}

func TestRegenVsMaterializedAgree(t *testing.T) {
	db, err := toy.Database(2)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := CaptureClient(db, toy.Workload(), CaptureOptions{SkipStats: true})
	if err != nil {
		t.Fatal(err)
	}
	sum, _, err := BuildFromPackage(pkg, summary.DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	regen := RegenDatabase(sum, 0)
	mat, err := MaterializedDatabase(sum)
	if err != nil {
		t.Fatal(err)
	}
	// Every stored relation must be fully materialized...
	for name, rel := range sum.Relations {
		if got := int64(len(mat.Relation(name).Rows)); got != rel.Total {
			t.Errorf("%s materialized %d of %d", name, got, rel.Total)
		}
		// ...while the dataless database stores nothing.
		if regen.Relation(name) != nil {
			t.Errorf("%s has stored rows in the dataless database", name)
		}
		if !regen.DatagenEnabled(name) {
			t.Errorf("%s datagen disabled", name)
		}
	}
	// Both answer a query identically.
	for _, sql := range toy.Workload()[1:3] {
		q, err := sqlkit.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		planR, err := engine.BuildPlan(regen.Schema, q)
		if err != nil {
			t.Fatal(err)
		}
		resR, err := engine.Execute(regen, planR, engine.ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		planM, err := engine.BuildPlan(mat.Schema, q)
		if err != nil {
			t.Fatal(err)
		}
		resM, err := engine.Execute(mat, planM, engine.ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if resR.Count != resM.Count {
			t.Errorf("%s: dataless %d != materialized %d", sql, resR.Count, resM.Count)
		}
	}
}
