// Package core orchestrates Hydra's end-to-end flow, mirroring the
// architecture of Figure 2 in the paper:
//
//	client site:  CaptureClient  — schema + metadata + workload AQPs
//	   transfer:  TransferPackage (JSON; optionally anonymized)
//	vendor site:  BuildFromPackage — preprocess → region-partition LPs →
//	              solve → deterministic alignment → database summary
//	    runtime:  RegenDatabase / MaterializedDatabase — dataless or
//	              materialized execution over the summary
package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/aqp"
	"repro/internal/batch"
	"repro/internal/engine"
	"repro/internal/generator"
	"repro/internal/preprocess"
	"repro/internal/schema"
	"repro/internal/sqlkit"
	"repro/internal/stats"
	"repro/internal/summary"
)

// TransferPackage is the information synopsis shipped from client to
// vendor: no data rows, only schema, statistics, and annotated plans.
type TransferPackage struct {
	Schema   *schema.Schema      `json:"schema"`
	Stats    []*stats.TableStats `json:"stats,omitempty"`
	Workload []*aqp.AQP          `json:"workload"`
}

// Encode writes the package as JSON.
func (p *TransferPackage) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// DecodePackage reads a JSON transfer package.
func DecodePackage(r io.Reader) (*TransferPackage, error) {
	var p TransferPackage
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("core: decoding transfer package: %w", err)
	}
	if p.Schema == nil {
		return nil, fmt.Errorf("core: transfer package has no schema")
	}
	if err := p.Schema.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// CaptureOptions tune client-site capture.
type CaptureOptions struct {
	// HistogramBuckets and MCVSize control the metadata statistics
	// (defaults 20 and 10).
	HistogramBuckets int
	MCVSize          int
	// SkipStats omits column statistics (they are informational; summary
	// construction uses only the AQPs).
	SkipStats bool
}

// CaptureClient executes the query workload on the client database,
// annotates each plan with observed cardinalities, gathers column
// statistics, and assembles the transfer package.
func CaptureClient(db *engine.Database, queries []string, opts CaptureOptions) (*TransferPackage, error) {
	if opts.HistogramBuckets <= 0 {
		opts.HistogramBuckets = 20
	}
	if opts.MCVSize <= 0 {
		opts.MCVSize = 10
	}
	pkg := &TransferPackage{Schema: db.Schema.Clone()}

	// Refresh row counts from the stored relations so the shipped schema
	// reflects the actual client data.
	for _, t := range pkg.Schema.Tables {
		if rel := db.Relation(t.Name); rel != nil {
			t.RowCount = int64(len(rel.Rows))
		}
	}

	for qi, sql := range queries {
		q, err := sqlkit.Parse(sql)
		if err != nil {
			return nil, fmt.Errorf("core: query %d: %w", qi, err)
		}
		plan, err := engine.BuildPlan(db.Schema, q)
		if err != nil {
			return nil, fmt.Errorf("core: query %d: %w", qi, err)
		}
		res, err := engine.Execute(db, plan, engine.ExecOptions{})
		if err != nil {
			return nil, fmt.Errorf("core: query %d: %w", qi, err)
		}
		pkg.Workload = append(pkg.Workload, &aqp.AQP{SQL: sql, Plan: aqp.FromExec(res.Root)})
	}

	if !opts.SkipStats {
		for _, t := range pkg.Schema.Tables {
			rel := db.Relation(t.Name)
			if rel == nil {
				continue
			}
			ts := &stats.TableStats{Table: t.Name, RowCount: int64(len(rel.Rows))}
			for ci, col := range t.Columns {
				if col.PrimaryKey {
					continue
				}
				codes := make([]int64, len(rel.Rows))
				for ri, row := range rel.Rows {
					codes[ri] = row[ci]
				}
				ts.Columns = append(ts.Columns, stats.BuildColumnStats(col.Name, codes, opts.HistogramBuckets, opts.MCVSize))
			}
			pkg.Stats = append(pkg.Stats, ts)
		}
	}
	return pkg, nil
}

// BuildFromPackage runs the vendor-side pipeline: preprocessing, region
// partitioning, LP solving, and deterministic alignment.
func BuildFromPackage(pkg *TransferPackage, opts summary.BuildOptions) (*summary.Database, *summary.BuildReport, error) {
	w, err := preprocess.Extract(pkg.Schema, pkg.Workload)
	if err != nil {
		return nil, nil, err
	}
	return summary.Build(pkg.Schema, w, opts)
}

// RegenDatabase returns a dataless database: every table's scan is served
// by the tuple generator straight from the summary (the paper's datagen
// relation property). rowsPerSec throttles generation per scan; zero means
// unlimited. The returned sources are batch-capable (both Stream and Paced
// implement batch.Source), so engine execution runs on the batched path.
//
// At full speed the summary is also registered with the engine, enabling the
// summary-direct aggregate fast path: provably exact aggregates skip
// regeneration entirely. Paced databases deliberately do not register it —
// their purpose is to model a generation-rate budget, and a query answered
// from the summary alone would bypass the pacing being measured.
func RegenDatabase(sum *summary.Database, rowsPerSec float64) *engine.Database {
	db := engine.NewDatabase(sum.Schema)
	for name := range sum.Relations {
		rel := sum.Relations[name]
		t := sum.Schema.Table(name)
		db.SetDatagen(name, func() (engine.RowSource, error) {
			stream := generator.NewStream(t, rel)
			if rowsPerSec > 0 {
				return generator.NewPaced(stream, rowsPerSec), nil
			}
			return stream, nil
		})
		if rowsPerSec == 0 {
			db.SetSummary(name, rel)
		}
	}
	return db
}

// MaterializedDatabase expands the summary into stored rows — the demo's
// optional materialize mode, and the reference point dynamic regeneration
// is compared against. Expansion runs through the generator's batch path:
// each batch is copied once into a flat arena that the stored rows slice
// into, so materialization costs two allocations per batch instead of one
// per row.
func MaterializedDatabase(sum *summary.Database) (*engine.Database, error) {
	db := engine.NewDatabase(sum.Schema)
	for name, relSum := range sum.Relations {
		t := sum.Schema.Table(name)
		ncols := len(t.Columns)
		rel := &engine.Relation{Table: t}
		if relSum.Total > 0 {
			rel.Rows = make([][]int64, 0, relSum.Total)
		}
		stream := generator.NewStream(t, relSum)
		b := batch.New(ncols, 0)
		for stream.NextBatch(b) {
			arena := append([]int64(nil), b.Data()...)
			for i := 0; i < b.Len(); i++ {
				rel.Rows = append(rel.Rows, arena[i*ncols:(i+1)*ncols:(i+1)*ncols])
			}
		}
		if err := db.AddRelation(rel); err != nil {
			return nil, err
		}
	}
	return db, nil
}
