package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMorselsCoverExactlyOnce(t *testing.T) {
	cases := []struct {
		total, size int64
	}{
		{0, 4},    // empty row space: no morsels
		{3, 16},   // total smaller than one morsel
		{16, 4},   // exact multiple
		{17, 4},   // short final morsel
		{1000, 7}, // many morsels
		{5, 1},    // single-row morsels
		{100, -1}, // default size
		{-5, 4},   // negative total treated as empty
	}
	for _, tc := range cases {
		m := NewMorsels(tc.total, tc.size)
		total := tc.total
		if total < 0 {
			total = 0
		}
		covered := make([]int32, total)
		err := Run(8, func(worker int) error {
			for {
				lo, hi, ok := m.Next()
				if !ok {
					return nil
				}
				if lo < 0 || hi > total || lo >= hi {
					return fmt.Errorf("bad morsel [%d,%d) of %d", lo, hi, total)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
			}
		})
		if err != nil {
			t.Fatalf("total=%d size=%d: %v", tc.total, tc.size, err)
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("total=%d size=%d: row %d covered %d times", tc.total, tc.size, i, c)
			}
		}
		if _, _, ok := m.Next(); ok {
			t.Fatalf("total=%d size=%d: morsels not exhausted", tc.total, tc.size)
		}
	}
}

func TestMorselsAscendingAndSized(t *testing.T) {
	m := NewMorsels(103, 10)
	var prev int64 = -1
	for {
		lo, hi, ok := m.Next()
		if !ok {
			break
		}
		if lo <= prev {
			t.Fatalf("morsel lo %d not ascending after %d", lo, prev)
		}
		if hi-lo > 10 {
			t.Fatalf("morsel [%d,%d) exceeds size", lo, hi)
		}
		prev = lo
	}
}

func TestRunWorkerIndices(t *testing.T) {
	var seen [5]int32
	if err := Run(5, func(w int) error {
		atomic.AddInt32(&seen[w], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for w, c := range seen {
		if c != 1 {
			t.Fatalf("worker %d ran %d times", w, c)
		}
	}
}

func TestRunReturnsLowestWorkerError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	// Workers 1 and 3 fail; Run must deterministically surface worker 1's
	// error regardless of scheduling.
	for trial := 0; trial < 20; trial++ {
		err := Run(4, func(w int) error {
			switch w {
			case 1:
				return errA
			case 3:
				return errB
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("trial %d: got %v, want %v", trial, err, errA)
		}
	}
}

func TestRunClampsWorkerCount(t *testing.T) {
	var n int32
	var mu sync.Mutex
	workers := map[int]bool{}
	if err := Run(0, func(w int) error {
		atomic.AddInt32(&n, 1)
		mu.Lock()
		workers[w] = true
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 || !workers[0] {
		t.Fatalf("Run(0) ran %d workers (%v), want exactly worker 0", n, workers)
	}
}
