package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMorselsCoverExactlyOnce(t *testing.T) {
	cases := []struct {
		total, size int64
	}{
		{0, 4},    // empty row space: no morsels
		{3, 16},   // total smaller than one morsel
		{16, 4},   // exact multiple
		{17, 4},   // short final morsel
		{1000, 7}, // many morsels
		{5, 1},    // single-row morsels
		{100, -1}, // default size
		{-5, 4},   // negative total treated as empty
	}
	for _, tc := range cases {
		m := NewMorsels(tc.total, tc.size)
		total := tc.total
		if total < 0 {
			total = 0
		}
		covered := make([]int32, total)
		err := Run(8, func(worker int) error {
			for {
				lo, hi, ok := m.Next()
				if !ok {
					return nil
				}
				if lo < 0 || hi > total || lo >= hi {
					return fmt.Errorf("bad morsel [%d,%d) of %d", lo, hi, total)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
			}
		})
		if err != nil {
			t.Fatalf("total=%d size=%d: %v", tc.total, tc.size, err)
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("total=%d size=%d: row %d covered %d times", tc.total, tc.size, i, c)
			}
		}
		if _, _, ok := m.Next(); ok {
			t.Fatalf("total=%d size=%d: morsels not exhausted", tc.total, tc.size)
		}
	}
}

func TestMorselsAscendingAndSized(t *testing.T) {
	m := NewMorsels(103, 10)
	var prev int64 = -1
	for {
		lo, hi, ok := m.Next()
		if !ok {
			break
		}
		if lo <= prev {
			t.Fatalf("morsel lo %d not ascending after %d", lo, prev)
		}
		if hi-lo > 10 {
			t.Fatalf("morsel [%d,%d) exceeds size", lo, hi)
		}
		prev = lo
	}
}

func TestRunWorkerIndices(t *testing.T) {
	var seen [5]int32
	if err := Run(5, func(w int) error {
		atomic.AddInt32(&seen[w], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for w, c := range seen {
		if c != 1 {
			t.Fatalf("worker %d ran %d times", w, c)
		}
	}
}

func TestRunReturnsLowestWorkerError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	// Workers 1 and 3 fail; Run must deterministically surface worker 1's
	// error regardless of scheduling.
	for trial := 0; trial < 20; trial++ {
		err := Run(4, func(w int) error {
			switch w {
			case 1:
				return errA
			case 3:
				return errB
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("trial %d: got %v, want %v", trial, err, errA)
		}
	}
}

func TestRunClampsWorkerCount(t *testing.T) {
	var n int32
	var mu sync.Mutex
	workers := map[int]bool{}
	if err := Run(0, func(w int) error {
		atomic.AddInt32(&n, 1)
		mu.Lock()
		workers[w] = true
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 || !workers[0] {
		t.Fatalf("Run(0) ran %d workers (%v), want exactly worker 0", n, workers)
	}
}

// TestRunCtxCancelsSiblingsOnError: the first worker error cancels the
// shared child context, so sibling workers observe it and drain; the real
// error is returned, never the context errors it triggered.
func TestRunCtxCancelsSiblingsOnError(t *testing.T) {
	boom := errors.New("boom")
	err := RunCtx(context.Background(), 4, func(ctx context.Context, w int) error {
		if w == 2 {
			return boom
		}
		<-ctx.Done() // blocked until the failing sibling cancels us
		return ctx.Err()
	})
	if !errors.Is(err, boom) {
		t.Fatalf("RunCtx returned %v, want the worker error %v", err, boom)
	}
}

// TestRunCtxLowestNonContextError: with several real failures, the
// lowest-indexed one wins deterministically.
func TestRunCtxLowestNonContextError(t *testing.T) {
	var release sync.WaitGroup
	release.Add(1)
	errOf := func(w int) error { return fmt.Errorf("worker %d failed", w) }
	err := RunCtx(context.Background(), 4, func(ctx context.Context, w int) error {
		if w == 0 {
			// Guarantee worker 3 fails first, so the selection cannot be
			// accidental arrival order.
			release.Wait()
			return errOf(0)
		}
		if w == 3 {
			defer release.Done()
			return errOf(3)
		}
		<-ctx.Done()
		return ctx.Err()
	})
	if err == nil || err.Error() != "worker 0 failed" {
		t.Fatalf("RunCtx returned %v, want the lowest-indexed real error", err)
	}
}

// TestRunCtxExternalCancellation: when the caller's context itself ends,
// its error is returned even if every worker exits cleanly.
func TestRunCtxExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var entered sync.WaitGroup
	entered.Add(2)
	go func() {
		entered.Wait()
		cancel()
	}()
	err := RunCtx(ctx, 2, func(ctx context.Context, w int) error {
		entered.Done()
		<-ctx.Done()
		return nil // clean exit; the pool must still report the cancellation
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx returned %v, want context.Canceled", err)
	}
}

// TestRunCtxWorkerContextError: a worker that surfaces its context error
// after external cancellation yields that same error, not a masked one.
func TestRunCtxWorkerContextError(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	err := RunCtx(ctx, 3, func(ctx context.Context, w int) error {
		<-ctx.Done()
		return ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunCtx returned %v, want context.DeadlineExceeded", err)
	}
}

// TestRunCtxNoError: all-clean runs return nil and leave the caller's
// context untouched.
func TestRunCtxNoError(t *testing.T) {
	ctx := context.Background()
	var n atomic.Int64
	if err := RunCtx(ctx, 8, func(ctx context.Context, w int) error {
		n.Add(1)
		return nil
	}); err != nil {
		t.Fatalf("RunCtx returned %v, want nil", err)
	}
	if n.Load() != 8 {
		t.Fatalf("ran %d workers, want 8", n.Load())
	}
}
