package parallel

import "repro/internal/batch"

// Source is the contract a scan source must satisfy for morsel-driven
// execution: its output is a deterministic sequence of Total rows, and any
// contiguous range [lo, hi) of that sequence can be opened as an
// independent batch source. Section must be safe for concurrent use (each
// returned sub-source carries its own cursor state) and the concatenation
// of Section(0,a), Section(a,b), …, Section(z,Total) must be byte-identical
// to draining the source itself — the property the partition parity tests
// in internal/generator pin down.
//
// generator.Stream implements Source by binary-searching the summary's
// cumulative tuple counts and phase-aligning each cycling-interval cursor;
// the engine's stored-relation cursor implements it by slicing.
type Source interface {
	batch.Source
	// Total returns the number of rows the source produces in full.
	Total() int64
	// Section opens an independent sub-source over rows [lo, hi).
	Section(lo, hi int64) batch.Source
}
