package parallel

import "sync/atomic"

// DefaultMorselRows is the default scheduling granule in rows. Large
// enough that per-morsel pipeline setup (a sub-stream seek plus a few
// struct resets) is amortized to noise against generating tens of
// thousands of tuples, small enough that a skewed filter or a slow worker
// cannot hold the pool hostage on one giant static partition.
const DefaultMorselRows = 16384

// Morsels hands out contiguous row ranges of a [0, Total) row space to
// concurrent workers. Next is safe for concurrent use; every row is
// covered by exactly one morsel, and morsels are issued in ascending
// order (workers may of course *finish* them out of order — consumers
// that need the sequential order back tag results with the morsel's lo).
type Morsels struct {
	total int64
	size  int64
	next  atomic.Int64
}

// NewMorsels schedules total rows in morsels of the given size; size < 1
// selects DefaultMorselRows.
func NewMorsels(total, size int64) *Morsels {
	if size < 1 {
		size = DefaultMorselRows
	}
	if total < 0 {
		total = 0
	}
	return &Morsels{total: total, size: size}
}

// Next claims the next morsel [lo, hi); ok is false when the row space is
// exhausted. The final morsel may be shorter than the configured size.
func (m *Morsels) Next() (lo, hi int64, ok bool) {
	lo = m.next.Add(m.size) - m.size
	if lo >= m.total {
		return 0, 0, false
	}
	hi = lo + m.size
	if hi > m.total {
		hi = m.total
	}
	return lo, hi, true
}

// Size returns the configured morsel size in rows.
func (m *Morsels) Size() int64 { return m.size }

// Total returns the scheduled row-space size.
func (m *Morsels) Total() int64 { return m.total }
