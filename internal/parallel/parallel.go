// Package parallel is Hydra's morsel-driven parallelism subsystem. Because
// every relation is a pure function of its summary — atom i's tuples occupy
// a fixed, contiguous primary-key interval — generation (and therefore
// dataless query execution) is embarrassingly partitionable: any row range
// [lo, hi) of a relation can be produced independently of any other. This
// package supplies the two scheduling primitives the engine's parallel
// executor builds on:
//
//   - Morsels: an atomic work queue handing out contiguous row ranges
//     ("morsels", after Leis et al.'s morsel-driven parallelism) of a
//     relation's [0, Total) row space, so workers self-balance instead of
//     being assigned static partitions.
//   - Run: a fixed worker pool that runs one function per worker and
//     collects the first error deterministically (lowest worker index).
//
// The Source interface names the contract a scan source must satisfy to be
// morsel-partitionable; generator.Stream and the engine's stored-relation
// cursor both implement it.
package parallel

import "sync"

// Run executes fn on n concurrent workers (n < 1 is treated as 1), passing
// each its worker index in [0, n), and waits for all of them. If any worker
// returns an error, Run returns the error of the lowest-indexed failing
// worker — a deterministic choice, so error surfaces do not depend on
// goroutine scheduling.
func Run(n int, fn func(worker int) error) error {
	if n < 1 {
		n = 1
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = fn(w)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
