// Package parallel is Hydra's morsel-driven parallelism subsystem. Because
// every relation is a pure function of its summary — atom i's tuples occupy
// a fixed, contiguous primary-key interval — generation (and therefore
// dataless query execution) is embarrassingly partitionable: any row range
// [lo, hi) of a relation can be produced independently of any other. This
// package supplies the two scheduling primitives the engine's parallel
// executor builds on:
//
//   - Morsels: an atomic work queue handing out contiguous row ranges
//     ("morsels", after Leis et al.'s morsel-driven parallelism) of a
//     relation's [0, Total) row space, so workers self-balance instead of
//     being assigned static partitions.
//   - Run: a fixed worker pool that runs one function per worker and
//     collects the first error deterministically (lowest worker index).
//
// The Source interface names the contract a scan source must satisfy to be
// morsel-partitionable; generator.Stream and the engine's stored-relation
// cursor both implement it.
package parallel

import (
	"context"
	"errors"
	"sync"
)

// Run executes fn on n concurrent workers (n < 1 is treated as 1), passing
// each its worker index in [0, n), and waits for all of them. If any worker
// returns an error, Run returns the error of the lowest-indexed failing
// worker — a deterministic choice, so error surfaces do not depend on
// goroutine scheduling.
func Run(n int, fn func(worker int) error) error {
	if n < 1 {
		n = 1
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = fn(w)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunCtx is Run under a context. Workers receive a child context that is
// canceled as soon as any worker returns an error, so siblings drain at
// their next cooperative check instead of finishing doomed work; every
// worker always runs to return and is always waited for — cancellation
// never leaks a goroutine.
//
// The lowest-index error convention extends to cancellation
// deterministically: the lowest-indexed worker error that is not a context
// error wins (a real failure is never masked by the sibling cancellations
// it triggered); otherwise, if ctx ended, its error —
// context.Canceled or context.DeadlineExceeded — is returned regardless of
// which workers noticed before exiting cleanly; otherwise the
// lowest-indexed worker error, if any.
func RunCtx(ctx context.Context, n int, fn func(ctx context.Context, worker int) error) error {
	if n < 1 {
		n = 1
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := fn(wctx, w); err != nil {
				errs[w] = err
				cancel()
			}
		}(w)
	}
	wg.Wait()
	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if ctxErr == nil {
				ctxErr = err
			}
			continue
		}
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return ctxErr
}
