package generator

import (
	"testing"

	"repro/internal/batch"
	"repro/internal/synopsis"
	"repro/internal/value"
)

// edgeSummary stresses the batch boundaries: a multi-interval cycling set,
// a Count far larger than small batch capacities (so one summary row spans
// several batches), zero-count rows between populated ones, and a final
// partial batch.
func edgeSummary() *synopsis.Relation {
	return &synopsis.Relation{
		Table: "t",
		Total: 17,
		Rows: []synopsis.Row{
			{Count: 0, Specs: []synopsis.ColSpec{synopsis.FixedSpec(1, 1)}},
			{Count: 11, Specs: []synopsis.ColSpec{
				synopsis.FixedSpec(1, 42),
				synopsis.SetSpec(2, value.NewIntervalSet(value.Ival(2, 4), value.Point(7))),
			}},
			{Count: 0, Specs: []synopsis.ColSpec{synopsis.FixedSpec(1, 2)}},
			{Count: 6, Specs: []synopsis.ColSpec{
				synopsis.SetSpec(1, value.NewIntervalSet(value.Point(5))),
				synopsis.SetSpec(2, value.NewIntervalSet(value.Ival(0, 10))),
			}},
			{Count: 0, Specs: []synopsis.ColSpec{synopsis.FixedSpec(1, 3)}},
		},
	}
}

// collectRows drains a stream via Next.
func collectRows(s *Stream) [][]int64 {
	var out [][]int64
	for {
		row, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, append([]int64(nil), row...))
	}
}

// collectBatches drains a stream via NextBatch with the given capacity.
func collectBatches(s *Stream, capRows int) [][]int64 {
	var out [][]int64
	b := batch.New(s.Cols(), capRows)
	for s.NextBatch(b) {
		for i := 0; i < b.Len(); i++ {
			out = append(out, append([]int64(nil), b.Row(i)...))
		}
	}
	return out
}

func TestNextBatchMatchesNext(t *testing.T) {
	tbl := genTable()
	rel := edgeSummary()
	want := collectRows(NewStream(tbl, rel))
	if int64(len(want)) != rel.Total {
		t.Fatalf("row path produced %d rows, want %d", len(want), rel.Total)
	}
	// Capacities around the summary row counts exercise every boundary
	// case: counts spanning batch edges, batches ending exactly on a
	// summary row, and a final partial batch.
	for _, capRows := range []int{1, 2, 3, 4, 5, 7, 11, 16, 17, 1000} {
		got := collectBatches(NewStream(tbl, rel), capRows)
		if len(got) != len(want) {
			t.Fatalf("cap %d: %d rows, want %d", capRows, len(got), len(want))
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("cap %d: row %d = %v, want %v", capRows, i, got[i], want[i])
				}
			}
		}
	}
}

func TestNextBatchEmptyRelation(t *testing.T) {
	s := NewStream(genTable(), &synopsis.Relation{Table: "t"})
	b := batch.New(s.Cols(), 8)
	if s.NextBatch(b) {
		t.Fatal("empty relation produced a batch")
	}
	if b.Len() != 0 {
		t.Fatalf("batch holds %d rows after exhausted NextBatch", b.Len())
	}
	// All-zero-count rows are exhausted without producing anything either.
	s = NewStream(genTable(), &synopsis.Relation{Table: "t", Rows: []synopsis.Row{
		{Count: 0, Specs: []synopsis.ColSpec{synopsis.FixedSpec(1, 1)}},
	}})
	if s.NextBatch(b) {
		t.Fatal("zero-count relation produced a batch")
	}
}

func TestNextBatchCountSpansTiles(t *testing.T) {
	// A single summary row far larger than the tiling granularity: the
	// cycling cursor must stay aligned across tile and batch boundaries.
	set := value.NewIntervalSet(value.Ival(10, 13), value.Point(20), value.Ival(30, 32))
	rel := &synopsis.Relation{Table: "t", Total: 5000, Rows: []synopsis.Row{
		{Count: 5000, Specs: []synopsis.ColSpec{
			synopsis.FixedSpec(1, 9),
			synopsis.SetSpec(2, set),
		}},
	}}
	tbl := genTable()
	got := collectBatches(NewStream(tbl, rel), 0) // default capacity
	if len(got) != 5000 {
		t.Fatalf("%d rows, want 5000", len(got))
	}
	setLen := set.Len()
	for i, row := range got {
		if row[0] != int64(i) {
			t.Fatalf("row %d pk = %d", i, row[0])
		}
		if want := set.At(int64(i) % setLen); row[2] != want {
			t.Fatalf("row %d cycling value = %d, want %d", i, row[2], want)
		}
	}
}

func TestPacedNextBatch(t *testing.T) {
	tbl := genTable()
	rel := edgeSummary()
	want := collectRows(NewStream(tbl, rel))
	p := NewPaced(NewStream(tbl, rel), 0)
	b := batch.New(len(tbl.Columns), 4)
	var got [][]int64
	for p.NextBatch(b) {
		for i := 0; i < b.Len(); i++ {
			got = append(got, append([]int64(nil), b.Row(i)...))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("paced batches: %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("row %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

// rowOnly hides a stream's batch capability to exercise Paced's row-by-row
// batch assembly fallback.
type rowOnly struct{ s *Stream }

func (r rowOnly) Next() ([]int64, bool) { return r.s.Next() }

func TestPacedNextBatchRowFallback(t *testing.T) {
	tbl := genTable()
	want := collectRows(NewStream(tbl, edgeSummary()))
	p := NewPaced(rowOnly{NewStream(tbl, edgeSummary())}, 0)
	b := batch.New(len(tbl.Columns), 4)
	var got [][]int64
	for p.NextBatch(b) {
		for i := 0; i < b.Len(); i++ {
			got = append(got, append([]int64(nil), b.Row(i)...))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("fallback batches: %d rows, want %d", len(got), len(want))
	}
}
