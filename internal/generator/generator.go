// Package generator implements Hydra's Tuple Generator: it expands a
// database summary into concrete rows, one at a time, on demand. Plugged
// into the engine's datagen scan it realizes the paper's dynamic
// regeneration — queries execute against tables holding zero stored rows —
// and because rows are produced in memory the generation velocity can be
// regulated precisely (the rows/sec slider of the demo's vendor interface).
package generator

import (
	"time"

	"repro/internal/schema"
	"repro/internal/summary"
)

// Stream yields the coded rows of one relation summary in primary-key
// order: summary row j expands to its Count tuples, and tuple i (globally)
// receives primary key i. Stream implements engine.RowSource.
type Stream struct {
	table *schema.Table
	rel   *summary.Relation
	pkIdx int

	rowIdx int   // current summary row
	within int64 // tuples already emitted from the current summary row
	pk     int64 // next primary key (global tuple index)

	buf []int64
}

// NewStream opens a generation stream over a relation summary.
func NewStream(t *schema.Table, rel *summary.Relation) *Stream {
	return &Stream{
		table: t,
		rel:   rel,
		pkIdx: t.PKIndex(),
		buf:   make([]int64, len(t.Columns)),
	}
}

// Total returns the number of tuples the stream will produce.
func (s *Stream) Total() int64 { return s.rel.Total }

// Next produces the next tuple. The returned slice is reused across calls;
// callers that retain rows must copy them.
func (s *Stream) Next() ([]int64, bool) {
	for s.rowIdx < len(s.rel.Rows) && s.within >= s.rel.Rows[s.rowIdx].Count {
		s.rowIdx++
		s.within = 0
	}
	if s.rowIdx >= len(s.rel.Rows) {
		return nil, false
	}
	row := &s.rel.Rows[s.rowIdx]
	if s.pkIdx >= 0 {
		s.buf[s.pkIdx] = s.pk
	}
	for _, sp := range row.Specs {
		if sp.Fixed != nil {
			s.buf[sp.Col] = *sp.Fixed
			continue
		}
		// Cycle deterministically through the spec's value set so the
		// Count tuples spread evenly (foreign keys fan out across the
		// whole referenced key range, as the paper's alignment intends).
		s.buf[sp.Col] = sp.Set.At(s.within % sp.Set.Len())
	}
	s.within++
	s.pk++
	return s.buf, true
}

// Paced wraps a row source with a rate limiter, realizing the demo's
// velocity slider. A rate of zero or less means unlimited.
//
// Pacing uses an absolute schedule: row i is due at start + i·interval, so
// sleep overshoot (which on a typical kernel is tens of microseconds to a
// millisecond per sleep) is automatically credited back — the achieved rate
// converges to the requested one instead of drifting low.
type Paced struct {
	src interface {
		Next() ([]int64, bool)
	}
	interval time.Duration // time budget per row
	due      time.Time     // when the next row is due
	started  bool
}

// maxBurstBehind caps how far the schedule may fall behind a slow consumer;
// beyond this the limiter forgives the backlog rather than bursting.
const maxBurstBehind = 100 * time.Millisecond

// NewPaced limits src to rowsPerSec rows per second.
func NewPaced(src interface {
	Next() ([]int64, bool)
}, rowsPerSec float64) *Paced {
	p := &Paced{src: src}
	if rowsPerSec > 0 {
		p.interval = time.Duration(float64(time.Second) / rowsPerSec)
	}
	return p
}

// Next returns the next row no sooner than the rate allows. Sleeps shorter
// than a millisecond are skipped and repaid on later rows, so high target
// rates stay accurate without a syscall per row.
func (p *Paced) Next() ([]int64, bool) {
	if p.interval <= 0 {
		return p.src.Next()
	}
	now := time.Now()
	if !p.started {
		p.started = true
		p.due = now
	}
	if wait := p.due.Sub(now); wait > time.Millisecond {
		time.Sleep(wait)
	} else if wait < -maxBurstBehind {
		p.due = now.Add(-maxBurstBehind)
	}
	p.due = p.due.Add(p.interval)
	return p.src.Next()
}
