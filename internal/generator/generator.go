// Package generator implements Hydra's Tuple Generator: it expands a
// database summary into concrete rows on demand. Plugged into the engine's
// datagen scan it realizes the paper's dynamic regeneration — queries
// execute against tables holding zero stored rows — and because rows are
// produced in memory the generation velocity can be regulated precisely
// (the rows/sec slider of the demo's vendor interface).
//
// Generation is batched: NextBatch expands a summary row's Count tuples in
// a tight per-column loop, hoisting the Fixed/Set dispatch out of the row
// loop and replacing the per-row modulo of the cycling sets with an
// incrementing interval cursor. The row-at-a-time Next is a thin view over
// an internal batch, so both paths share one generation kernel.
package generator

import (
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/schema"
	"repro/internal/synopsis"
	"repro/internal/value"
)

// Stream yields the coded rows of one relation summary in primary-key
// order: summary row j expands to its Count tuples, and tuple i (globally)
// receives primary key i. Stream implements engine.RowSource and
// batch.Source. Use one access style per stream — Next buffers rows
// internally, so interleaving it with direct NextBatch calls would skip
// the buffered tail.
//
// Because generation is a pure function of the summary, a stream's row
// space is partitionable: SeekRow repositions to any global tuple index,
// Section opens an independent sub-stream over a row range, and Partition
// splits the stream n ways. The concatenation of a partition's outputs is
// byte-identical to the sequential stream, which is what lets the engine's
// morsel-driven executor fan generation out across workers.
type Stream struct {
	table *schema.Table
	rel   *synopsis.Relation
	pkIdx int

	base int64 // first global tuple index this stream produces
	end  int64 // exclusive global bound (rel.Total for full streams)

	rowIdx int   // current summary row
	within int64 // tuples already emitted from the current summary row
	pk     int64 // next primary key (global tuple index)

	// cum, shared by all sections of one parent stream, holds the
	// cumulative tuple counts of the summary rows: cum[j] = Σ Rows[:j].Count
	// (len(Rows)+1 entries). Built lazily on the first seek; SeekRow binary
	// searches it to land on the right summary row. cumOnce guards the
	// build: the parallel executor calls Section concurrently from workers.
	cum     []int64
	cumOnce sync.Once

	// Row-at-a-time adapter state: Next serves views into buf.
	buf    *batch.Batch
	flat   []int64 // buf's row-major data
	cursor int     // offset of the next row within flat
}

// NewStream opens a generation stream over a relation synopsis.
func NewStream(t *schema.Table, rel *synopsis.Relation) *Stream {
	return &Stream{
		table: t,
		rel:   rel,
		pkIdx: t.PKIndex(),
		end:   rel.Total,
	}
}

// Total returns the number of tuples the stream will produce in full (for
// a Section or Partition sub-stream, the length of its row range).
func (s *Stream) Total() int64 { return s.end - s.base }

// cumCounts returns the relation's cumulative tuple counts, building them
// on first use and sharing the slice with every section of this stream.
// Safe for concurrent callers (workers sectioning one parent stream).
func (s *Stream) cumCounts() []int64 {
	s.cumOnce.Do(func() {
		if s.cum != nil {
			return // a section constructed with the parent's index
		}
		cum := make([]int64, len(s.rel.Rows)+1)
		for j := range s.rel.Rows {
			cum[j+1] = cum[j] + s.rel.Rows[j].Count
		}
		s.cum = cum
	})
	return s.cum
}

// SeekRow repositions the stream so the next tuple produced is row i of
// this stream's own row range (clamped to [0, Total()]) — for a full
// stream that is global tuple i; for a Section or Partition sub-stream it
// is relative to the sub-range, mirroring how the engine's stored-relation
// cursor slices. The summary row holding the tuple is found by binary
// search over the cumulative counts, and the offset within that row
// phase-aligns every cycling-interval cursor: the sought tuple's cycling
// values are identical to what sequential generation would have produced,
// so seeking never perturbs the stream's deterministic content.
func (s *Stream) SeekRow(i int64) {
	if i < 0 {
		i = 0
	}
	if n := s.end - s.base; i > n {
		i = n
	}
	s.cumCounts()
	s.seekTo(s.base + i)
}

// seekTo lands the stream on global tuple index g. It is SeekRow without
// the clamping or the lazy index build — s.cum must already be populated —
// so the pruned scan's segment hopping (sectionset.go) can reposition from
// hot generation loops without closures or sync.Once.
//
//hydra:hotpath
func (s *Stream) seekTo(g int64) {
	cum := s.cum
	// Smallest j with cum[j+1] > g: summary row j holds tuple g. For
	// g == Total the search lands past the last row, exhausting the stream.
	lo, hi := 0, len(s.rel.Rows)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cum[mid+1] > g {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	s.rowIdx = lo
	if lo < len(s.rel.Rows) {
		s.within = g - cum[lo]
	} else {
		s.within = 0
	}
	s.pk = g
	// Invalidate the row-at-a-time view: buffered rows predate the seek.
	s.flat = nil
	s.cursor = 0
}

// section returns an independent sub-stream over rows [lo, hi) of s's own
// row range, sharing the (immutable) cumulative-count index.
func (s *Stream) section(lo, hi int64) *Stream {
	n := s.end - s.base
	if lo < 0 {
		lo = 0
	}
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	if hi < lo {
		hi = lo
	}
	sub := &Stream{
		table: s.table,
		rel:   s.rel,
		pkIdx: s.pkIdx,
		cum:   s.cumCounts(),
		base:  s.base + lo,
		end:   s.base + hi,
	}
	sub.SeekRow(0)
	return sub
}

// Section opens an independent sub-stream over rows [lo, hi) of this
// stream's own row range (bounds clamped; for a full stream these are
// global tuple indices, and sections nest). Sections of one parent may be
// consumed concurrently — each carries its own cursor — and their
// concatenation in range order reproduces the parent exactly. Together
// with Total this implements the parallel.Source contract the engine's
// morsel-driven executor schedules over.
func (s *Stream) Section(lo, hi int64) batch.Source { return s.section(lo, hi) }

// Partition splits the stream's own row range into n contiguous
// sub-streams of near-equal size (n < 1 is treated as 1). When n exceeds
// the number of tuples the trailing sub-streams are empty. The
// concatenation of the partitions' outputs is byte-identical to the
// receiver's output; partitions of partitions nest accordingly.
func (s *Stream) Partition(n int) []*Stream {
	if n < 1 {
		n = 1
	}
	total := s.end - s.base
	parts := make([]*Stream, n)
	for k := 0; k < n; k++ {
		lo := total * int64(k) / int64(n)
		hi := total * int64(k+1) / int64(n)
		parts[k] = s.section(lo, hi)
	}
	return parts
}

// Cols returns the width of generated rows.
func (s *Stream) Cols() int { return len(s.table.Columns) }

// Next produces the next tuple. The returned slice is reused across calls;
// callers that retain rows must copy them.
//
//hydra:hotpath
func (s *Stream) Next() ([]int64, bool) {
	if s.cursor >= len(s.flat) {
		if s.buf == nil {
			s.buf = batch.New(len(s.table.Columns), 0)
		}
		if !s.NextBatch(s.buf) {
			return nil, false
		}
		s.flat = s.buf.Data()
		s.cursor = 0
	}
	ncols := len(s.table.Columns)
	row := s.flat[s.cursor : s.cursor+ncols : s.cursor+ncols]
	s.cursor += ncols
	return row, true
}

// tileRows bounds how many rows one column-fill pass covers. A tile of
// 128 rows times a typical row width stays within the L1 cache, so the
// per-spec passes over a tile hit L1 instead of re-walking the whole
// batch (one cache line per row) once per column.
const tileRows = 128

// NextBatch resets dst and fills it with up to dst.Cap() generated rows,
// reporting whether any were produced. dst must have width Cols(). A
// Section or Partition sub-stream stops at its range's upper bound.
//
//hydra:hotpath
func (s *Stream) NextBatch(dst *batch.Batch) bool {
	dst.Reset()
	s.fillBatch(dst)
	return dst.Len() > 0
}

// fillBatch appends generated rows to dst without resetting it, until dst
// is full or the stream's range is exhausted. SectionSet splices several
// range segments into one batch through this.
//
//hydra:hotpath
func (s *Stream) fillBatch(dst *batch.Batch) {
	ncols := len(s.table.Columns)
	for !dst.Full() && s.pk < s.end && s.rowIdx < len(s.rel.Rows) {
		row := &s.rel.Rows[s.rowIdx]
		if s.within >= row.Count {
			s.rowIdx++
			s.within = 0
			continue
		}
		k := row.Count - s.within
		if k > tileRows {
			k = tileRows
		}
		if left := s.end - s.pk; k > left {
			k = left
		}
		if free := int64(dst.Cap() - dst.Len()); k > free {
			k = free
		}
		out := dst.Extend(int(k))
		if s.pkIdx >= 0 {
			pk := s.pk
			for off := s.pkIdx; off < len(out); off += ncols {
				out[off] = pk
				pk++
			}
		}
		for si := range row.Specs {
			sp := &row.Specs[si]
			if sp.Fixed != nil {
				v := *sp.Fixed
				for off := sp.Col; off < len(out); off += ncols {
					out[off] = v
				}
				continue
			}
			fillCycling(out, sp.Col, ncols, sp.Set, s.within)
		}
		s.within += k
		s.pk += k
	}
}

// NextColBatch resets dst and fills it with up to dst.Cap() generated rows
// in column-major form, materializing only the columns listed in cols —
// the projection pushdown of the columnar engine. Unprojected columns are
// never touched: no storage is read or written for them, so a query
// needing three of a table's twenty-plus columns pays for three. Every
// projected column of a summary-row segment is filled in one unit-stride
// pass (fixed values and primary keys as straight stores, cycling sets via
// the same phase-aligned cursor as the row-major path), so the values are
// byte-identical to NextBatch's, column by column. Stream implements
// batch.ColProjector; a Section or Partition sub-stream stops at its
// range's upper bound.
//
//hydra:hotpath
func (s *Stream) NextColBatch(dst *batch.ColBatch, cols []int) bool {
	dst.Reset()
	s.fillColBatch(dst, cols)
	return dst.Len() > 0
}

// fillColBatch is NextColBatch's kernel without the reset: it appends to
// whatever dst already holds, so SectionSet can splice segments.
//
//hydra:hotpath
func (s *Stream) fillColBatch(dst *batch.ColBatch, cols []int) {
	for dst.Len() < dst.Cap() && s.pk < s.end && s.rowIdx < len(s.rel.Rows) {
		row := &s.rel.Rows[s.rowIdx]
		if s.within >= row.Count {
			s.rowIdx++
			s.within = 0
			continue
		}
		k := row.Count - s.within
		if left := s.end - s.pk; k > left {
			k = left
		}
		if free := int64(dst.Cap() - dst.Len()); k > free {
			k = free
		}
		base := dst.Len()
		dst.SetLen(base + int(k))
		for _, c := range cols {
			seg := dst.Col(c)[base : base+int(k)]
			if c == s.pkIdx {
				pk := s.pk
				for i := range seg {
					seg[i] = pk
					pk++
				}
				continue
			}
			filled := false
			for si := range row.Specs {
				sp := &row.Specs[si]
				if sp.Col != c {
					continue
				}
				if sp.Fixed != nil {
					v := *sp.Fixed
					for i := range seg {
						seg[i] = v
					}
				} else {
					fillCycling(seg, 0, 1, sp.Set, s.within)
				}
				filled = true
				break
			}
			if !filled {
				for i := range seg {
					seg[i] = 0
				}
			}
		}
		s.within += k
		s.pk += k
	}
}

// fillCycling writes the cycling-set column col of a row-major segment:
// value i of the segment is set.At((start+i) mod set.Len()), the same
// deterministic fan-out as the row-at-a-time path (foreign keys spread
// evenly across the referenced key range, as the paper's alignment
// intends). The modulo and rank search run once per segment; the loop then
// walks the interval set with an incrementing cursor.
func fillCycling(out []int64, col, stride int, set value.IntervalSet, start int64) {
	rank := start % set.Len()
	iv := 0
	for rank >= set[iv].Len() {
		rank -= set[iv].Len()
		iv++
	}
	v := set[iv].Lo + rank
	hi := set[iv].Hi
	for off := col; off < len(out); off += stride {
		out[off] = v
		v++
		if v == hi {
			iv++
			if iv == len(set) {
				iv = 0
			}
			v = set[iv].Lo
			hi = set[iv].Hi
		}
	}
}

// Paced wraps a row source with a rate limiter, realizing the demo's
// velocity slider. A rate of zero or less means unlimited.
//
// Pacing uses an absolute schedule: row i is due at start + i·interval, so
// sleep overshoot (which on a typical kernel is tens of microseconds to a
// millisecond per sleep) is automatically credited back — the achieved rate
// converges to the requested one instead of drifting low. Batches are
// credited wholesale: NextBatch waits until its first row is due, then
// advances the schedule by the whole batch, so the achieved rate still
// converges while the per-row syscall overhead disappears.
type Paced struct {
	src interface {
		Next() ([]int64, bool)
	}
	interval time.Duration // time budget per row
	due      time.Time     // when the next row is due
	started  bool

	// now and sleep are the limiter's clock, injectable by tests so the
	// absolute schedule can be pinned without real sleeping.
	now   func() time.Time
	sleep func(time.Duration)
}

// maxBurstBehind caps how far the schedule may fall behind a slow consumer;
// beyond this the limiter forgives the backlog rather than bursting.
const maxBurstBehind = 100 * time.Millisecond

// NewPaced limits src to rowsPerSec rows per second.
func NewPaced(src interface {
	Next() ([]int64, bool)
}, rowsPerSec float64) *Paced {
	p := &Paced{src: src, now: time.Now, sleep: time.Sleep}
	if rowsPerSec > 0 {
		p.interval = time.Duration(float64(time.Second) / rowsPerSec)
	}
	return p
}

// Next returns the next row no sooner than the rate allows. Sleeps shorter
// than a millisecond are skipped and repaid on later rows, so high target
// rates stay accurate without a syscall per row.
func (p *Paced) Next() ([]int64, bool) {
	if p.interval <= 0 {
		return p.src.Next()
	}
	p.pace(1)
	return p.src.Next()
}

// NextBatch produces the next batch no sooner than the rate allows,
// crediting exactly the rows the batch actually holds against the
// absolute schedule — a partial final batch advances the schedule by its
// own length, not the batch capacity, so tiny trailing batches cannot
// drift the achieved rate. When the wrapped source is not batch-capable
// the batch is assembled row by row (unpaced) and then credited wholesale,
// identical to the batch-capable path; in particular the Next call that
// discovers exhaustion no longer charges a phantom row.
func (p *Paced) NextBatch(dst *batch.Batch) bool {
	if bs, ok := p.src.(batch.Source); ok {
		if !bs.NextBatch(dst) {
			return false
		}
	} else {
		dst.Reset()
		for !dst.Full() {
			row, ok := p.src.Next()
			if !ok {
				break
			}
			copy(dst.Append(), row)
		}
		if dst.Len() == 0 {
			return false
		}
	}
	if p.interval > 0 {
		p.pace(int64(dst.Len()))
	}
	return true
}

// pace blocks until the next row is due, then advances the schedule by n
// rows.
func (p *Paced) pace(n int64) {
	now := p.now()
	if !p.started {
		p.started = true
		p.due = now
	}
	if wait := p.due.Sub(now); wait > time.Millisecond {
		p.sleep(wait)
	} else if wait < -maxBurstBehind {
		p.due = now.Add(-maxBurstBehind)
	}
	p.due = p.due.Add(time.Duration(n) * p.interval)
}
