// Package generator implements Hydra's Tuple Generator: it expands a
// database summary into concrete rows on demand. Plugged into the engine's
// datagen scan it realizes the paper's dynamic regeneration — queries
// execute against tables holding zero stored rows — and because rows are
// produced in memory the generation velocity can be regulated precisely
// (the rows/sec slider of the demo's vendor interface).
//
// Generation is batched: NextBatch expands a summary row's Count tuples in
// a tight per-column loop, hoisting the Fixed/Set dispatch out of the row
// loop and replacing the per-row modulo of the cycling sets with an
// incrementing interval cursor. The row-at-a-time Next is a thin view over
// an internal batch, so both paths share one generation kernel.
package generator

import (
	"time"

	"repro/internal/batch"
	"repro/internal/schema"
	"repro/internal/summary"
	"repro/internal/value"
)

// Stream yields the coded rows of one relation summary in primary-key
// order: summary row j expands to its Count tuples, and tuple i (globally)
// receives primary key i. Stream implements engine.RowSource and
// batch.Source. Use one access style per stream — Next buffers rows
// internally, so interleaving it with direct NextBatch calls would skip
// the buffered tail.
type Stream struct {
	table *schema.Table
	rel   *summary.Relation
	pkIdx int

	rowIdx int   // current summary row
	within int64 // tuples already emitted from the current summary row
	pk     int64 // next primary key (global tuple index)

	// Row-at-a-time adapter state: Next serves views into buf.
	buf    *batch.Batch
	flat   []int64 // buf's row-major data
	cursor int     // offset of the next row within flat
}

// NewStream opens a generation stream over a relation summary.
func NewStream(t *schema.Table, rel *summary.Relation) *Stream {
	return &Stream{
		table: t,
		rel:   rel,
		pkIdx: t.PKIndex(),
	}
}

// Total returns the number of tuples the stream will produce.
func (s *Stream) Total() int64 { return s.rel.Total }

// Cols returns the width of generated rows.
func (s *Stream) Cols() int { return len(s.table.Columns) }

// Next produces the next tuple. The returned slice is reused across calls;
// callers that retain rows must copy them.
func (s *Stream) Next() ([]int64, bool) {
	if s.cursor >= len(s.flat) {
		if s.buf == nil {
			s.buf = batch.New(len(s.table.Columns), 0)
		}
		if !s.NextBatch(s.buf) {
			return nil, false
		}
		s.flat = s.buf.Data()
		s.cursor = 0
	}
	ncols := len(s.table.Columns)
	row := s.flat[s.cursor : s.cursor+ncols : s.cursor+ncols]
	s.cursor += ncols
	return row, true
}

// tileRows bounds how many rows one column-fill pass covers. A tile of
// 128 rows times a typical row width stays within the L1 cache, so the
// per-spec passes over a tile hit L1 instead of re-walking the whole
// batch (one cache line per row) once per column.
const tileRows = 128

// NextBatch resets dst and fills it with up to dst.Cap() generated rows,
// reporting whether any were produced. dst must have width Cols().
func (s *Stream) NextBatch(dst *batch.Batch) bool {
	dst.Reset()
	ncols := len(s.table.Columns)
	for !dst.Full() && s.rowIdx < len(s.rel.Rows) {
		row := &s.rel.Rows[s.rowIdx]
		if s.within >= row.Count {
			s.rowIdx++
			s.within = 0
			continue
		}
		k := row.Count - s.within
		if k > tileRows {
			k = tileRows
		}
		if free := int64(dst.Cap() - dst.Len()); k > free {
			k = free
		}
		out := dst.Extend(int(k))
		if s.pkIdx >= 0 {
			pk := s.pk
			for off := s.pkIdx; off < len(out); off += ncols {
				out[off] = pk
				pk++
			}
		}
		for si := range row.Specs {
			sp := &row.Specs[si]
			if sp.Fixed != nil {
				v := *sp.Fixed
				for off := sp.Col; off < len(out); off += ncols {
					out[off] = v
				}
				continue
			}
			fillCycling(out, sp.Col, ncols, sp.Set, s.within)
		}
		s.within += k
		s.pk += k
	}
	return dst.Len() > 0
}

// fillCycling writes the cycling-set column col of a row-major segment:
// value i of the segment is set.At((start+i) mod set.Len()), the same
// deterministic fan-out as the row-at-a-time path (foreign keys spread
// evenly across the referenced key range, as the paper's alignment
// intends). The modulo and rank search run once per segment; the loop then
// walks the interval set with an incrementing cursor.
func fillCycling(out []int64, col, stride int, set value.IntervalSet, start int64) {
	rank := start % set.Len()
	iv := 0
	for rank >= set[iv].Len() {
		rank -= set[iv].Len()
		iv++
	}
	v := set[iv].Lo + rank
	hi := set[iv].Hi
	for off := col; off < len(out); off += stride {
		out[off] = v
		v++
		if v == hi {
			iv++
			if iv == len(set) {
				iv = 0
			}
			v = set[iv].Lo
			hi = set[iv].Hi
		}
	}
}

// Paced wraps a row source with a rate limiter, realizing the demo's
// velocity slider. A rate of zero or less means unlimited.
//
// Pacing uses an absolute schedule: row i is due at start + i·interval, so
// sleep overshoot (which on a typical kernel is tens of microseconds to a
// millisecond per sleep) is automatically credited back — the achieved rate
// converges to the requested one instead of drifting low. Batches are
// credited wholesale: NextBatch waits until its first row is due, then
// advances the schedule by the whole batch, so the achieved rate still
// converges while the per-row syscall overhead disappears.
type Paced struct {
	src interface {
		Next() ([]int64, bool)
	}
	interval time.Duration // time budget per row
	due      time.Time     // when the next row is due
	started  bool
}

// maxBurstBehind caps how far the schedule may fall behind a slow consumer;
// beyond this the limiter forgives the backlog rather than bursting.
const maxBurstBehind = 100 * time.Millisecond

// NewPaced limits src to rowsPerSec rows per second.
func NewPaced(src interface {
	Next() ([]int64, bool)
}, rowsPerSec float64) *Paced {
	p := &Paced{src: src}
	if rowsPerSec > 0 {
		p.interval = time.Duration(float64(time.Second) / rowsPerSec)
	}
	return p
}

// Next returns the next row no sooner than the rate allows. Sleeps shorter
// than a millisecond are skipped and repaid on later rows, so high target
// rates stay accurate without a syscall per row.
func (p *Paced) Next() ([]int64, bool) {
	if p.interval <= 0 {
		return p.src.Next()
	}
	p.pace(1)
	return p.src.Next()
}

// NextBatch produces the next batch no sooner than the rate allows,
// crediting the whole batch against the absolute schedule. When the
// wrapped source is not batch-capable the batch is assembled row by row.
func (p *Paced) NextBatch(dst *batch.Batch) bool {
	bs, ok := p.src.(batch.Source)
	if !ok {
		dst.Reset()
		for !dst.Full() {
			row, ok := p.Next()
			if !ok {
				break
			}
			copy(dst.Append(), row)
		}
		return dst.Len() > 0
	}
	if !bs.NextBatch(dst) {
		return false
	}
	if p.interval > 0 {
		p.pace(int64(dst.Len()))
	}
	return true
}

// pace blocks until the next row is due, then advances the schedule by n
// rows.
func (p *Paced) pace(n int64) {
	now := time.Now()
	if !p.started {
		p.started = true
		p.due = now
	}
	if wait := p.due.Sub(now); wait > time.Millisecond {
		time.Sleep(wait)
	} else if wait < -maxBurstBehind {
		p.due = now.Add(-maxBurstBehind)
	}
	p.due = p.due.Add(time.Duration(n) * p.interval)
}
