package generator

import (
	"sync"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/synopsis"
	"repro/internal/value"
)

// sameRows requires two row slices to be byte-identical.
func sameRows(t *testing.T, label string, got, want [][]int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: row %d width %d, want %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: row %d = %v, want %v", label, i, got[i], want[i])
			}
		}
	}
}

// bigCyclingSummary exercises seeks landing mid-cycling-interval: one
// summary row whose multi-interval cycling set length (6) does not divide
// the row count, preceded and followed by other rows.
func bigCyclingSummary() *synopsis.Relation {
	return &synopsis.Relation{
		Table: "t",
		Total: 913,
		Rows: []synopsis.Row{
			{Count: 5, Specs: []synopsis.ColSpec{
				synopsis.FixedSpec(1, 7),
				synopsis.SetSpec(2, value.NewIntervalSet(value.Ival(0, 3))),
			}},
			{Count: 901, Specs: []synopsis.ColSpec{
				synopsis.FixedSpec(1, 42),
				synopsis.SetSpec(2, value.NewIntervalSet(value.Ival(10, 13), value.Point(20), value.Ival(30, 32))),
			}},
			{Count: 7, Specs: []synopsis.ColSpec{
				synopsis.SetSpec(1, value.NewIntervalSet(value.Point(5))),
				synopsis.SetSpec(2, value.NewIntervalSet(value.Ival(0, 10))),
			}},
		},
	}
}

// singleRowSummary has one tuple per summary row (the shape dimension
// relations with singleton atoms produce).
func singleRowSummary() *synopsis.Relation {
	rows := make([]synopsis.Row, 9)
	for i := range rows {
		rows[i] = synopsis.Row{Count: 1, Specs: []synopsis.ColSpec{
			synopsis.FixedSpec(1, int64(i*3)),
			synopsis.SetSpec(2, value.NewIntervalSet(value.Ival(int64(i), int64(i)+2))),
		}}
	}
	return &synopsis.Relation{Table: "t", Total: 9, Rows: rows}
}

func partitionSummaries() map[string]*synopsis.Relation {
	return map[string]*synopsis.Relation{
		"edge":      edgeSummary(),
		"cycling":   bigCyclingSummary(),
		"singleRow": singleRowSummary(),
		"empty":     {Table: "t"},
	}
}

// drainSource collects every row a batch source produces.
func drainSource(src batch.Source, cols, capRows int) [][]int64 {
	var out [][]int64
	b := batch.New(cols, capRows)
	for src.NextBatch(b) {
		for i := 0; i < b.Len(); i++ {
			out = append(out, append([]int64(nil), b.Row(i)...))
		}
	}
	return out
}

// TestPartitionConcatenationParity is the core partitioning contract: for
// every summary shape and partition count — including counts far larger
// than Total — concatenating the partitions' outputs is byte-identical to
// the sequential stream.
func TestPartitionConcatenationParity(t *testing.T) {
	tbl := genTable()
	for name, rel := range partitionSummaries() {
		want := collectRows(NewStream(tbl, rel))
		for _, n := range []int{1, 2, 3, 5, 7, 16, 100, 2000} {
			parts := NewStream(tbl, rel).Partition(n)
			if len(parts) != n {
				t.Fatalf("%s: Partition(%d) returned %d streams", name, n, len(parts))
			}
			var got [][]int64
			var sumTotals int64
			for _, p := range parts {
				sumTotals += p.Total()
				got = append(got, drainSource(p, p.Cols(), 3)...)
			}
			if sumTotals != rel.Total {
				t.Fatalf("%s n=%d: partition totals sum to %d, want %d", name, n, sumTotals, rel.Total)
			}
			sameRows(t, name, got, want)
		}
	}
}

// TestSectionParity checks arbitrary (including degenerate) row ranges.
func TestSectionParity(t *testing.T) {
	tbl := genTable()
	for name, rel := range partitionSummaries() {
		want := collectRows(NewStream(tbl, rel))
		parent := NewStream(tbl, rel)
		bounds := []struct{ lo, hi int64 }{
			{0, rel.Total},                   // full range
			{0, 0},                           // empty prefix
			{rel.Total, rel.Total},           // empty suffix
			{rel.Total / 2, rel.Total / 2},   // empty middle
			{1, rel.Total - 1},               // interior (when non-degenerate)
			{-5, rel.Total + 5},              // clamped overshoot
			{rel.Total / 3, rel.Total/3 + 1}, // single row
		}
		for _, bd := range bounds {
			lo, hi := bd.lo, bd.hi
			cl, ch := lo, hi
			if cl < 0 {
				cl = 0
			}
			if cl > rel.Total {
				cl = rel.Total
			}
			if ch > rel.Total {
				ch = rel.Total
			}
			if ch < cl {
				ch = cl
			}
			got := drainSource(parent.Section(lo, hi), len(tbl.Columns), 4)
			sameRows(t, name, got, want[cl:ch])
		}
	}
}

// TestSeekRowMatchesSequential seeks to every position of every summary —
// in particular positions landing mid-cycling-interval — and requires the
// remainder of the stream to equal the sequential tail, through both the
// batch and the row-at-a-time access paths.
func TestSeekRowMatchesSequential(t *testing.T) {
	tbl := genTable()
	for name, rel := range partitionSummaries() {
		want := collectRows(NewStream(tbl, rel))
		step := int64(1)
		if rel.Total > 64 {
			step = 13 // sample positions, keeping mid-interval phases
		}
		for i := int64(0); i <= rel.Total; i += step {
			s := NewStream(tbl, rel)
			s.SeekRow(i)
			got := drainSource(s, s.Cols(), 5)
			sameRows(t, name, got, want[i:])

			s = NewStream(tbl, rel)
			s.SeekRow(i)
			sameRows(t, name+" [row path]", collectRows(s), want[i:])
		}
	}
}

// TestSeekRowAfterConsumption re-seeks a partially consumed stream,
// including backwards, and checks the row-at-a-time buffer is invalidated.
func TestSeekRowAfterConsumption(t *testing.T) {
	tbl := genTable()
	rel := bigCyclingSummary()
	want := collectRows(NewStream(tbl, rel))
	s := NewStream(tbl, rel)
	for i := 0; i < 100; i++ {
		s.Next()
	}
	s.SeekRow(17)
	sameRows(t, "backward seek", collectRows(s), want[17:])
	s.SeekRow(rel.Total + 99) // clamped to the end: exhausted
	if row, ok := s.Next(); ok {
		t.Fatalf("seek past end still produced %v", row)
	}
	s.SeekRow(-3) // clamped to the start
	sameRows(t, "seek clamped to start", collectRows(s), want)
}

// TestPacedBatchScheduleExact pins the absolute pacing schedule with a
// fake clock: batches of 4, 4, and 2 rows at one second per row must
// advance the schedule by exactly 10 seconds — partial final batches are
// credited by the rows they actually hold, and source exhaustion charges
// nothing.
func TestPacedBatchScheduleExact(t *testing.T) {
	run := func(name string, wrap func(*Stream) interface {
		Next() ([]int64, bool)
	}) {
		rel := &synopsis.Relation{Table: "t", Total: 10, Rows: []synopsis.Row{
			{Count: 10, Specs: []synopsis.ColSpec{
				synopsis.FixedSpec(1, 1),
				synopsis.SetSpec(2, value.NewIntervalSet(value.Ival(0, 3))),
			}},
		}}
		p := NewPaced(wrap(NewStream(genTable(), rel)), 1) // 1 row/sec
		t0 := time.Unix(1000, 0)
		clock := t0
		var slept []time.Duration
		p.now = func() time.Time { return clock }
		p.sleep = func(d time.Duration) { slept = append(slept, d); clock = clock.Add(d) }

		b := batch.New(3, 4)
		var lens []int
		for p.NextBatch(b) {
			lens = append(lens, b.Len())
		}
		if len(lens) != 3 || lens[0] != 4 || lens[1] != 4 || lens[2] != 2 {
			t.Fatalf("%s: batch lengths %v, want [4 4 2]", name, lens)
		}
		// Absolute schedule: batch 1 starts the clock (no sleep), batch 2 is
		// due when batch 1's 4 rows elapse, batch 3 when batch 2's do.
		wantSlept := []time.Duration{4 * time.Second, 4 * time.Second}
		if len(slept) != len(wantSlept) {
			t.Fatalf("%s: sleeps %v, want %v", name, slept, wantSlept)
		}
		for i := range wantSlept {
			if slept[i] != wantSlept[i] {
				t.Fatalf("%s: sleep %d = %v, want %v", name, i, slept[i], wantSlept[i])
			}
		}
		// The final partial batch credits exactly its 2 rows: the schedule
		// ends at t0 + 10s, not t0 + 12s, and exhaustion added nothing.
		if want := t0.Add(10 * time.Second); !p.due.Equal(want) {
			t.Fatalf("%s: schedule ends at %v, want %v", name, p.due, want)
		}
	}
	run("batch source", func(s *Stream) interface {
		Next() ([]int64, bool)
	} {
		return s
	})
	run("row fallback", func(s *Stream) interface {
		Next() ([]int64, bool)
	} {
		return rowOnly{s}
	})
}

// TestConcurrentSections drives Section from many goroutines against one
// parent stream — the parallel executor's access pattern — and checks
// every section's content. Run under -race this pins the thread safety of
// the shared cumulative-count index.
func TestConcurrentSections(t *testing.T) {
	tbl := genTable()
	rel := bigCyclingSummary()
	want := collectRows(NewStream(tbl, rel))
	parent := NewStream(tbl, rel)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 16; k++ {
				lo := int64((w*16 + k) * 7 % int(rel.Total))
				hi := lo + 11
				if hi > rel.Total {
					hi = rel.Total
				}
				got := drainSource(parent.Section(lo, hi), len(tbl.Columns), 4)
				if int64(len(got)) != hi-lo {
					errs <- "wrong section length"
					return
				}
				for i := range got {
					for j := range got[i] {
						if got[i][j] != want[lo+int64(i)][j] {
							errs <- "section content mismatch"
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestNestedSections pins the relative-range contract: Section, Partition,
// and SeekRow on a sub-stream operate on the sub-stream's own row range,
// so sections nest — repartitioning a partition re-covers exactly that
// partition, never the whole relation.
func TestNestedSections(t *testing.T) {
	tbl := genTable()
	rel := bigCyclingSummary()
	want := collectRows(NewStream(tbl, rel))
	parts := NewStream(tbl, rel).Partition(4)
	quarter := rel.Total / 4
	for k, p := range parts {
		lo := rel.Total * int64(k) / 4
		hi := rel.Total * int64(k+1) / 4
		// Repartitioning a partition must re-cover exactly its range.
		var got [][]int64
		for _, sub := range p.Partition(3) {
			got = append(got, drainSource(sub, sub.Cols(), 4)...)
		}
		sameRows(t, "nested partition", got, want[lo:hi])
		// Section bounds are relative to the partition.
		mid := drainSource(p.Section(1, quarter-1), p.Cols(), 4)
		sameRows(t, "nested section", mid, want[lo+1:lo+quarter-1])
		// SeekRow is relative too: row 2 of the partition, then drain.
		p.SeekRow(2)
		sameRows(t, "relative seek", drainSource(p, p.Cols(), 4), want[lo+2:hi])
	}
}
