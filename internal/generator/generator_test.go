package generator

import (
	"strings"
	"testing"
	"time"

	"repro/internal/schema"
	"repro/internal/synopsis"
	"repro/internal/value"
)

func genTable() *schema.Table {
	return &schema.Table{
		Name: "t",
		Columns: []*schema.Column{
			{Name: "pk", Type: schema.Int, PrimaryKey: true, DomainLo: 0, DomainHi: 100},
			{Name: "a", Type: schema.Int, DomainLo: 0, DomainHi: 100},
			{Name: "fk", Type: schema.Int, Ref: &schema.ForeignKey{Table: "d", Column: "d_pk"}, DomainLo: 0, DomainHi: 10},
		},
	}
}

func genSummary() *synopsis.Relation {
	return &synopsis.Relation{
		Table: "t",
		Total: 7,
		Rows: []synopsis.Row{
			{Count: 3, Specs: []synopsis.ColSpec{
				synopsis.FixedSpec(1, 42),
				synopsis.SetSpec(2, value.NewIntervalSet(value.Ival(2, 4))),
			}},
			{Count: 4, Specs: []synopsis.ColSpec{
				synopsis.FixedSpec(1, 7),
				synopsis.SetSpec(2, value.NewIntervalSet(value.Point(9))),
			}},
		},
	}
}

func TestStreamExpandsRows(t *testing.T) {
	s := NewStream(genTable(), genSummary())
	if s.Total() != 7 {
		t.Fatalf("Total = %d", s.Total())
	}
	var got [][]int64
	for {
		row, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, append([]int64(nil), row...))
	}
	if len(got) != 7 {
		t.Fatalf("produced %d rows", len(got))
	}
	for i, row := range got {
		if row[0] != int64(i) {
			t.Errorf("row %d pk = %d (auto-numbering broken)", i, row[0])
		}
	}
	// First summary row: fixed a=42, fk cycles 2,3,2.
	wantFK := []int64{2, 3, 2}
	for i := 0; i < 3; i++ {
		if got[i][1] != 42 || got[i][2] != wantFK[i] {
			t.Errorf("row %d = %v", i, got[i])
		}
	}
	// Second summary row: a=7, fk always 9.
	for i := 3; i < 7; i++ {
		if got[i][1] != 7 || got[i][2] != 9 {
			t.Errorf("row %d = %v", i, got[i])
		}
	}
}

func TestStreamEmptySummary(t *testing.T) {
	s := NewStream(genTable(), &synopsis.Relation{Table: "t"})
	if _, ok := s.Next(); ok {
		t.Error("empty summary produced a row")
	}
}

func TestPacedRate(t *testing.T) {
	rel := &synopsis.Relation{Table: "t", Total: 400, Rows: []synopsis.Row{
		{Count: 400, Specs: []synopsis.ColSpec{synopsis.FixedSpec(1, 1), synopsis.FixedSpec(2, 2)}},
	}}
	p := NewPaced(NewStream(genTable(), rel), 1000) // 1000 rows/sec
	start := time.Now()
	n := 0
	for {
		if _, ok := p.Next(); !ok {
			break
		}
		n++
	}
	elapsed := time.Since(start)
	if n != 400 {
		t.Fatalf("rows = %d", n)
	}
	// 400 rows at 1000 rps ≈ 400ms; accept generous scheduling slop.
	if elapsed < 300*time.Millisecond || elapsed > 700*time.Millisecond {
		t.Errorf("elapsed %v for 400 rows @1000rps", elapsed)
	}
}

func TestPacedUnlimited(t *testing.T) {
	p := NewPaced(NewStream(genTable(), genSummary()), 0)
	n := 0
	for {
		if _, ok := p.Next(); !ok {
			break
		}
		n++
	}
	if n != 7 {
		t.Errorf("rows = %d", n)
	}
}

func TestMaterializeCSV(t *testing.T) {
	var sb strings.Builder
	n, err := Materialize(&sb, genTable(), genSummary())
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Errorf("materialized %d rows", n)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 8 { // header + 7 rows
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "pk,a,fk" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0,42,2" {
		t.Errorf("first row = %q", lines[1])
	}
}
