package generator

import (
	"testing"

	"repro/internal/batch"
)

// collectColBatches drains a stream via the projected columnar path,
// assembling full-width rows with unprojected columns left at the sentinel.
func collectColBatches(s *Stream, capRows int, cols []int) [][]int64 {
	const sentinel = -999
	var out [][]int64
	b := batch.NewCol(s.Cols(), capRows, cols)
	for s.NextColBatch(b, cols) {
		for i := 0; i < b.Len(); i++ {
			row := make([]int64, s.Cols())
			for j := range row {
				row[j] = sentinel
			}
			for _, c := range cols {
				row[c] = b.Col(c)[i]
			}
			out = append(out, row)
		}
	}
	return out
}

// TestNextColBatchMatchesNextBatch holds every projected column of the
// columnar path byte-identical to the row path, across projections (single
// column, subsets, full width) and capacities that force segment and batch
// boundaries.
func TestNextColBatchMatchesNextBatch(t *testing.T) {
	tbl := genTable()
	rel := edgeSummary()
	want := collectRows(NewStream(tbl, rel))
	all := make([]int, len(tbl.Columns))
	for i := range all {
		all[i] = i
	}
	for _, cols := range [][]int{{0}, {1}, {2}, {0, 2}, {1, 2}, all} {
		for _, capRows := range []int{1, 3, 5, 11, 17, 1000} {
			got := collectColBatches(NewStream(tbl, rel), capRows, cols)
			if len(got) != len(want) {
				t.Fatalf("cols %v cap %d: %d rows, want %d", cols, capRows, len(got), len(want))
			}
			for i := range want {
				for _, c := range cols {
					if got[i][c] != want[i][c] {
						t.Fatalf("cols %v cap %d: row %d col %d = %d, want %d",
							cols, capRows, i, c, got[i][c], want[i][c])
					}
				}
			}
		}
	}
}

// TestNextColBatchEmptyProjection: a zero-column projection still drives
// the cardinality (the COUNT(*) fast path generates no values at all).
func TestNextColBatchEmptyProjection(t *testing.T) {
	rel := edgeSummary()
	s := NewStream(genTable(), rel)
	b := batch.NewCol(s.Cols(), 4, nil)
	var n int64
	for s.NextColBatch(b, nil) {
		n += int64(b.Len())
	}
	if n != rel.Total {
		t.Fatalf("empty projection counted %d rows, want %d", n, rel.Total)
	}
}

// TestNextColBatchSections: concatenated sections of the projected
// columnar stream reproduce the full stream exactly (the contract the
// parallel columnar executor schedules over).
func TestNextColBatchSections(t *testing.T) {
	tbl := genTable()
	rel := edgeSummary()
	cols := []int{0, 2}
	want := collectColBatches(NewStream(tbl, rel), 5, cols)
	for _, parts := range []int{1, 2, 3, 5, 17, 40} {
		var got [][]int64
		for _, p := range NewStream(tbl, rel).Partition(parts) {
			got = append(got, collectColBatches(p, 5, cols)...)
		}
		if len(got) != len(want) {
			t.Fatalf("%d parts: %d rows, want %d", parts, len(got), len(want))
		}
		for i := range want {
			for _, c := range cols {
				if got[i][c] != want[i][c] {
					t.Fatalf("%d parts: row %d col %d = %d, want %d", parts, i, c, got[i][c], want[i][c])
				}
			}
		}
	}
}
