package generator

import (
	"repro/internal/batch"
	"repro/internal/value"
)

// SectionSet is a generation stream restricted to an arbitrary set of
// global-row intervals — the scan side of the engine's predicate pushdown.
// Where Section narrows a stream to one contiguous [lo, hi) range, a
// SectionSet skips across many: the engine intersects a filter with the
// summary rows' value sets, computes the qualifying positions in closed
// form, and scans only those, so pruned tuples are never materialized.
//
// The output is byte-identical to generating the full stream and keeping
// exactly the rows at the given positions, in order — SeekRow phase-aligns
// every cycling column at each segment hop, the same guarantee Section
// gives for its single range. Row indices exposed by SeekRow/Total/Section
// are *pruned* coordinates: index i addresses the i-th qualifying tuple,
// so the morsel scheduler partitions only live rows and workers never
// inherit dead ranges.
type SectionSet struct {
	gen *Stream // base 0; end reset per segment; cum pre-built

	ivs  []value.Interval // qualifying global-row intervals: ascending, disjoint, non-empty
	pcum []int64          // pcum[k] = qualifying rows before ivs[k]; len(ivs)+1 entries

	base int64 // window bounds in pruned coordinates (full set: [0, pcum[len]])
	end  int64
	pos  int64 // pruned-coordinate cursor: next qualifying row to produce
	seg  int   // segment holding pos (valid while pos < end)
}

// SectionSet restricts the stream to the given qualifying global-row
// intervals (ascending, disjoint, non-empty — a canonical interval set over
// [0, Total)). The receiver's own cursor is untouched; like Section, the
// result is an independent source sharing the immutable summary and
// cumulative-count index. The returned source also implements
// batch.ColProjector and parallel.Source (Total/Section), and SeekRow for
// rewinds, so the engine's scan can drop it in wherever a Stream goes.
func (s *Stream) SectionSet(ivs []value.Interval) batch.Source { return s.sectionSet(ivs) }

func (s *Stream) sectionSet(ivs []value.Interval) *SectionSet {
	cum := s.cumCounts()
	pcum := make([]int64, len(ivs)+1)
	for k, iv := range ivs {
		pcum[k+1] = pcum[k] + (iv.Hi - iv.Lo)
	}
	ss := &SectionSet{
		gen:  &Stream{table: s.table, rel: s.rel, pkIdx: s.pkIdx, cum: cum},
		ivs:  ivs,
		pcum: pcum,
		end:  pcum[len(ivs)],
	}
	ss.SeekRow(0)
	return ss
}

// Total returns the number of qualifying tuples in this source's window.
func (ss *SectionSet) Total() int64 { return ss.end - ss.base }

// Cols returns the width of generated rows.
func (ss *SectionSet) Cols() int { return len(ss.gen.table.Columns) }

// SeekRow repositions so the next tuple produced is qualifying row i of
// this source's own window (clamped to [0, Total()]), mirroring
// Stream.SeekRow in pruned coordinates.
func (ss *SectionSet) SeekRow(i int64) {
	if i < 0 {
		i = 0
	}
	if n := ss.end - ss.base; i > n {
		i = n
	}
	p := ss.base + i
	ss.pos = p
	if p >= ss.end {
		return // exhausted; the fill loops guard on pos < end first
	}
	ss.seekAbs(p)
}

// seekAbs lands the underlying stream on absolute pruned position p
// (p < end): binary-search the segment, then seek the generator to the
// matching global row and bound it by the segment (and window) end.
//
//hydra:hotpath
func (ss *SectionSet) seekAbs(p int64) {
	pcum := ss.pcum
	lo, hi := 0, len(ss.ivs)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pcum[mid+1] > p {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	ss.seg = lo
	g := ss.ivs[lo].Lo + (p - pcum[lo])
	lim := ss.ivs[lo].Hi
	if rem := ss.end - p; g+rem < lim {
		lim = g + rem // window ends inside this segment
	}
	ss.gen.end = lim
	ss.gen.seekTo(g)
}

// nextSegment hops the underlying stream to the start of the next
// qualifying interval. Callers ensure pos < end, which implies another
// segment exists.
//
//hydra:hotpath
func (ss *SectionSet) nextSegment() {
	k := ss.seg + 1
	g := ss.ivs[k].Lo
	lim := ss.ivs[k].Hi
	if rem := ss.end - ss.pos; g+rem < lim {
		lim = g + rem
	}
	ss.gen.end = lim
	ss.gen.seekTo(g)
	ss.seg = k
}

// NextBatch fills dst with up to dst.Cap() qualifying rows, splicing
// segments so batches stay full until the window is exhausted. The
// concatenation of the outputs equals the unpruned stream filtered to the
// qualifying positions, byte for byte.
//
//hydra:hotpath
func (ss *SectionSet) NextBatch(dst *batch.Batch) bool {
	dst.Reset()
	for !dst.Full() && ss.pos < ss.end {
		if ss.gen.pk >= ss.gen.end {
			ss.nextSegment()
			continue
		}
		before := ss.gen.pk
		ss.gen.fillBatch(dst)
		ss.pos += ss.gen.pk - before
	}
	return dst.Len() > 0
}

// NextColBatch is NextBatch in column-major form with projection pushdown;
// SectionSet implements batch.ColProjector exactly as Stream does.
//
//hydra:hotpath
func (ss *SectionSet) NextColBatch(dst *batch.ColBatch, cols []int) bool {
	dst.Reset()
	for dst.Len() < dst.Cap() && ss.pos < ss.end {
		if ss.gen.pk >= ss.gen.end {
			ss.nextSegment()
			continue
		}
		before := ss.gen.pk
		ss.gen.fillColBatch(dst, cols)
		ss.pos += ss.gen.pk - before
	}
	return dst.Len() > 0
}

// Section opens an independent sub-source over qualifying rows [lo, hi) of
// this source's own window (pruned coordinates, bounds clamped). Together
// with Total this implements parallel.Source, so morsels partition the
// pruned row space directly.
func (ss *SectionSet) Section(lo, hi int64) batch.Source {
	n := ss.end - ss.base
	if lo < 0 {
		lo = 0
	}
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	if hi < lo {
		hi = lo
	}
	g := ss.gen
	sub := &SectionSet{
		gen:  &Stream{table: g.table, rel: g.rel, pkIdx: g.pkIdx, cum: g.cum},
		ivs:  ss.ivs,
		pcum: ss.pcum,
		base: ss.base + lo,
		end:  ss.base + hi,
	}
	sub.SeekRow(0)
	return sub
}
