package generator

import (
	"encoding/csv"
	"fmt"
	"io"

	"repro/internal/schema"
	"repro/internal/synopsis"
)

// Materialize writes the relation's regenerated tuples as CSV (header plus
// decoded values) — the demo's optional "materialize" runtime mode. It
// returns the number of rows written.
func Materialize(w io.Writer, t *schema.Table, rel *synopsis.Relation) (int64, error) {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return 0, err
	}
	stream := NewStream(t, rel)
	record := make([]string, len(t.Columns))
	var n int64
	for {
		row, ok := stream.Next()
		if !ok {
			break
		}
		for i, c := range t.Columns {
			record[i] = c.Decode(row[i]).String()
		}
		if err := cw.Write(record); err != nil {
			return n, err
		}
		n++
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return n, fmt.Errorf("generator: materializing %s: %w", t.Name, err)
	}
	return n, nil
}
