package generator

import (
	"reflect"
	"testing"

	"repro/internal/batch"
	"repro/internal/schema"
	"repro/internal/synopsis"
	"repro/internal/value"
)

// ssTable builds a 3-column table (pk, a, b) and a summary whose rows mix
// fixed, cycling, and unspecced columns with counts that are deliberately
// not multiples of the cycle lengths, so segment hops land mid-cycle.
func ssTable() (*schema.Table, *synopsis.Relation) {
	t := &schema.Table{
		Name: "s",
		Columns: []*schema.Column{
			{Name: "pk", PrimaryKey: true},
			{Name: "a"},
			{Name: "b"},
		},
	}
	fixed := int64(77)
	nine := int64(9)
	rel := &synopsis.Relation{
		Table: "s",
		Total: 100,
		Rows: []synopsis.Row{
			{Count: 37, Specs: []synopsis.ColSpec{
				{Col: 1, Set: value.IntervalSet{value.Ival(0, 5), value.Ival(10, 12)}},
				{Col: 2, Fixed: &fixed},
			}},
			{Count: 13, Specs: []synopsis.ColSpec{
				{Col: 1, Fixed: &fixed},
				{Col: 2, Set: value.IntervalSet{value.Ival(100, 105)}},
			}},
			{Count: 50, Specs: []synopsis.ColSpec{
				{Col: 1, Fixed: &nine},
				{Col: 2, Set: value.IntervalSet{value.Ival(-3, 4)}},
			}},
		},
	}
	return t, rel
}

// collect drains a batch source into row-major rows.
func collect(t *testing.T, src batch.Source, width int) [][]int64 {
	t.Helper()
	b := batch.New(width, 32)
	var out [][]int64
	for src.NextBatch(b) {
		data := b.Data()
		for i := 0; i+width <= len(data); i += width {
			out = append(out, append([]int64(nil), data[i:i+width]...))
		}
	}
	return out
}

// reference generates the full stream and keeps rows whose global index
// falls in ivs — the generate-then-filter semantics SectionSet must match.
func reference(t *testing.T, tab *schema.Table, rel *synopsis.Relation, ivs value.IntervalSet) [][]int64 {
	t.Helper()
	full := collect(t, NewStream(tab, rel), len(tab.Columns))
	var out [][]int64
	for g, row := range full {
		if ivs.Contains(int64(g)) {
			out = append(out, row)
		}
	}
	return out
}

func TestSectionSetByteIdentical(t *testing.T) {
	tab, rel := ssTable()
	for _, tc := range []struct {
		name string
		ivs  value.IntervalSet
	}{
		{"empty", nil},
		{"all", value.IntervalSet{value.Ival(0, 100)}},
		{"single-point", value.IntervalSet{value.Ival(42, 43)}},
		{"one-span", value.IntervalSet{value.Ival(10, 30)}},
		{"row-straddle", value.IntervalSet{value.Ival(30, 45)}}, // crosses summary rows 0→1
		{"many", value.IntervalSet{value.Ival(0, 3), value.Ival(7, 8), value.Ival(20, 40), value.Ival(50, 51), value.Ival(99, 100)}},
		{"mid-cycle", value.IntervalSet{value.Ival(8, 9), value.Ival(15, 16), value.Ival(23, 24)}}, // same rank, different cycles
		{"tail", value.IntervalSet{value.Ival(97, 100)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := reference(t, tab, rel, tc.ivs)
			ss := NewStream(tab, rel).sectionSet(tc.ivs)
			if got, wantN := ss.Total(), int64(len(want)); got != wantN {
				t.Fatalf("Total() = %d, want %d", got, wantN)
			}
			got := collect(t, ss, len(tab.Columns))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("rows = %v, want %v", got, want)
			}

			// Column-major with projection must agree column by column.
			ss2 := NewStream(tab, rel).sectionSet(tc.ivs)
			cols := []int{0, 2}
			cb := batch.NewCol(len(tab.Columns), 16, cols)
			var ci int
			for ss2.NextColBatch(cb, cols) {
				for i := 0; i < cb.Len(); i++ {
					for _, c := range cols {
						if got, want := cb.Col(c)[i], want[ci][c]; got != want {
							t.Fatalf("col batch row %d col %d = %d, want %d", ci, c, got, want)
						}
					}
					ci++
				}
			}
			if ci != len(want) {
				t.Fatalf("col batches yielded %d rows, want %d", ci, len(want))
			}
		})
	}
}

func TestSectionSetSeekAndSection(t *testing.T) {
	tab, rel := ssTable()
	ivs := value.IntervalSet{value.Ival(5, 12), value.Ival(33, 60), value.Ival(80, 95)}
	want := reference(t, tab, rel, ivs)

	// SeekRow(i) mid-window resumes at the i-th qualifying row.
	for _, at := range []int64{0, 1, 6, 7, 20, int64(len(want)) - 1, int64(len(want))} {
		ss := NewStream(tab, rel).sectionSet(ivs)
		ss.SeekRow(at)
		got := collect(t, ss, len(tab.Columns))
		if wantTail := want[at:]; !reflect.DeepEqual(got, append([][]int64(nil), wantTail...)) {
			if !(len(got) == 0 && len(wantTail) == 0) {
				t.Fatalf("SeekRow(%d): got %d rows, want %d", at, len(got), len(wantTail))
			}
		}
	}

	// Partitioning the pruned space: the concatenation of sections over
	// pruned coordinates reproduces the whole window exactly.
	ss := NewStream(tab, rel).sectionSet(ivs)
	total := ss.Total()
	for _, n := range []int64{1, 2, 3, 7, total, total + 5} {
		var got [][]int64
		for k := int64(0); k < n; k++ {
			lo := total * k / n
			hi := total * (k + 1) / n
			got = append(got, collect(t, ss.Section(lo, hi), len(tab.Columns))...)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%d-way section concat: got %d rows, want %d", n, len(got), len(want))
		}
	}

	// Sections nest: a section of a section addresses the inner window.
	mid := ss.Section(3, total-2).(*SectionSet)
	inner := collect(t, mid.Section(1, 4), len(tab.Columns))
	if !reflect.DeepEqual(inner, append([][]int64(nil), want[4:7]...)) {
		t.Fatalf("nested section: got %v, want %v", inner, want[4:7])
	}
}
