// Package sqlkit implements the SPJ SQL subset Hydra workloads use:
// SELECT over one or more tables with an AND-conjunction of range,
// equality, IN, BETWEEN, and foreign-key join predicates.
package sqlkit

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // identifiers lower-cased; operators literal; strings unquoted
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9' || c == '.' && l.peekDigit():
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '-' && l.peekDigitAt(1):
			l.pos++
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
			last := &l.toks[len(l.toks)-1]
			last.text = "-" + last.text
			last.pos = start
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) peekDigit() bool { return l.peekDigitAt(1) }

func (l *lexer) peekDigitAt(n int) bool {
	return l.pos+n < len(l.src) && l.src[l.pos+n] >= '0' && l.src[l.pos+n] <= '9'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: strings.ToLower(l.src[start:l.pos]), pos: start})
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	if text == "." {
		return fmt.Errorf("sqlkit: bad number at offset %d", start)
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: text, pos: start})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlkit: unterminated string at offset %d", start)
}

func (l *lexer) lexSymbol() error {
	start := l.pos
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.pos += 2
		text := two
		if text == "!=" {
			text = "<>"
		}
		l.toks = append(l.toks, token{kind: tokSymbol, text: text, pos: start})
		return nil
	}
	switch c := l.src[l.pos]; c {
	case '=', '<', '>', ',', '(', ')', '*', ';', '.':
		l.pos++
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
		return nil
	default:
		return fmt.Errorf("sqlkit: unexpected character %q at offset %d", c, start)
	}
}
