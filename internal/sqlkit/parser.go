package sqlkit

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/value"
)

// Parse parses one SPJ or grouped-aggregate query. The grammar is:
//
//	query  := [EXPLAIN ANALYZE] SELECT [DISTINCT] ('*' | item (',' item)*)
//	          FROM ident (',' ident)* [WHERE pred (AND pred)*]
//	          [GROUP BY colref (',' colref)*]
//	          [ORDER BY colref [ASC|DESC] (',' colref [ASC|DESC])*]
//	          [LIMIT number [OFFSET number]] [';']
//	item   := colref | COUNT '(' '*' ')' | fn '(' colref ')'
//	fn     := COUNT | SUM | MIN | MAX | AVG
//	pred   := colref op literal | literal op colref
//	        | colref BETWEEN literal AND literal
//	        | colref IN '(' literal (',' literal)* ')'
//	        | colref '=' colref
//	op     := '=' | '<>' | '<' | '<=' | '>' | '>='
//	colref := ident ['.' ident]
//
// A select list that is only plain columns (no GROUP BY) parses to the
// legacy Columns form, and a lone COUNT(*) without GROUP BY to CountStar;
// every other combination of aggregates and grouping keys parses to the
// grouped form (Items + GroupBy). DISTINCT deduplicates over the selected
// columns and cannot be combined with aggregates or GROUP BY; LIMIT and
// OFFSET take non-negative integer literals.
//
// EXPLAIN ANALYZE executes the query it prefixes with per-operator tracing
// and returns the annotated plan alongside the result (Query.Explain);
// plain EXPLAIN is rejected — the engine has no static cost model to print,
// only observed execution.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// aggFuncs maps the (lower-cased) aggregate keywords to their functions.
var aggFuncs = map[string]AggFunc{
	"count": AggCount,
	"sum":   AggSum,
	"min":   AggMin,
	"max":   AggMax,
	"avg":   AggAvg,
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != kw {
		return fmt.Errorf("sqlkit: expected %s, got %s", strings.ToUpper(kw), t)
	}
	return nil
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokIdent && p.cur().text == kw {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != sym {
		return fmt.Errorf("sqlkit: expected %q, got %s", sym, t)
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == sym {
		p.i++
		return true
	}
	return false
}

func (p *parser) parseQuery() (*Query, error) {
	explain := false
	if p.acceptKeyword("explain") {
		if !p.acceptKeyword("analyze") {
			return nil, fmt.Errorf("sqlkit: EXPLAIN without ANALYZE is not supported (got %s)", p.cur())
		}
		explain = true
	}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	q := &Query{Explain: explain}
	if err := p.parseSelectList(q); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		t := p.next()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("sqlkit: expected table name, got %s", t)
		}
		q.Tables = append(q.Tables, t.text)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("where") {
		for {
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			q.Preds = append(q.Preds, pred)
			if !p.acceptKeyword("and") {
				break
			}
		}
	}
	if p.acceptKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			cr, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, cr)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			cr, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: cr}
			if p.acceptKeyword("desc") {
				item.Desc = true
			} else {
				p.acceptKeyword("asc")
			}
			q.OrderBy = append(q.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("limit") {
		n, err := p.parseBound("LIMIT")
		if err != nil {
			return nil, err
		}
		q.Limit = &n
		if p.acceptKeyword("offset") {
			k, err := p.parseBound("OFFSET")
			if err != nil {
				return nil, err
			}
			q.Offset = k
		}
	}
	p.acceptSymbol(";")
	if t := p.cur(); t.kind != tokEOF {
		return nil, fmt.Errorf("sqlkit: trailing input at %s", t)
	}
	if err := q.normalizeSelect(); err != nil {
		return nil, err
	}
	return q, nil
}

// normalizeSelect classifies the parsed select list: plain columns without
// GROUP BY keep the legacy Columns form, a lone COUNT(*) without GROUP BY
// the legacy CountStar form, everything else stays grouped (Items).
func (q *Query) normalizeSelect() error {
	if q.Star {
		if len(q.GroupBy) > 0 {
			return fmt.Errorf("sqlkit: SELECT * cannot be combined with GROUP BY")
		}
		return nil
	}
	hasAgg := false
	for _, it := range q.Items {
		if it.IsAgg {
			hasAgg = true
			break
		}
	}
	if q.Distinct && (hasAgg || len(q.GroupBy) > 0) {
		return fmt.Errorf("sqlkit: DISTINCT cannot be combined with aggregates or GROUP BY")
	}
	if !hasAgg && len(q.GroupBy) == 0 {
		q.Columns = make([]ColumnRef, len(q.Items))
		for i, it := range q.Items {
			q.Columns[i] = it.Col
		}
		q.Items = nil
		return nil
	}
	if len(q.GroupBy) == 0 && len(q.Items) == 1 && q.Items[0].Agg.Star {
		q.CountStar = true
		q.Items = nil
		return nil
	}
	return nil
}

// parseBound parses a LIMIT or OFFSET operand: a non-negative integer
// literal.
func (p *parser) parseBound(clause string) (int64, error) {
	t := p.next()
	if t.kind != tokNumber || strings.Contains(t.text, ".") {
		return 0, fmt.Errorf("sqlkit: %s expects an integer, got %s", clause, t)
	}
	n, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sqlkit: bad %s %q: %v", clause, t.text, err)
	}
	if n < 0 {
		return 0, fmt.Errorf("sqlkit: %s must be non-negative, got %d", clause, n)
	}
	return n, nil
}

func (p *parser) parseSelectList(q *Query) error {
	if p.acceptKeyword("distinct") {
		q.Distinct = true
	}
	if p.acceptSymbol("*") {
		q.Star = true
		return nil
	}
	for {
		it, err := p.parseSelectItem()
		if err != nil {
			return err
		}
		q.Items = append(q.Items, it)
		if !p.acceptSymbol(",") {
			return nil
		}
	}
}

// parseSelectItem parses one select-list entry: an aggregate call when an
// aggregate keyword is directly followed by '(', otherwise a column
// reference (so a column that happens to be named "min" still parses).
func (p *parser) parseSelectItem() (SelectItem, error) {
	if t := p.cur(); t.kind == tokIdent {
		if fn, ok := aggFuncs[t.text]; ok && p.peekSymbol("(") {
			p.i += 2 // keyword and '('
			if fn == AggCount && p.acceptSymbol("*") {
				if err := p.expectSymbol(")"); err != nil {
					return SelectItem{}, err
				}
				return SelectItem{IsAgg: true, Agg: Aggregate{Fn: AggCount, Star: true}}, nil
			}
			cr, err := p.parseColumnRef()
			if err != nil {
				return SelectItem{}, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return SelectItem{}, err
			}
			return SelectItem{IsAgg: true, Agg: Aggregate{Fn: fn, Col: cr}}, nil
		}
	}
	cr, err := p.parseColumnRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: cr}, nil
}

// peekSymbol reports whether the token after the current one is the symbol.
func (p *parser) peekSymbol(sym string) bool {
	if p.i+1 >= len(p.toks) {
		return false
	}
	t := p.toks[p.i+1]
	return t.kind == tokSymbol && t.text == sym
}

func (p *parser) parseColumnRef() (ColumnRef, error) {
	t := p.next()
	if t.kind != tokIdent {
		return ColumnRef{}, fmt.Errorf("sqlkit: expected column, got %s", t)
	}
	cr := ColumnRef{Column: t.text}
	if p.acceptSymbol(".") {
		t2 := p.next()
		if t2.kind != tokIdent {
			return ColumnRef{}, fmt.Errorf("sqlkit: expected column after '.', got %s", t2)
		}
		cr.Table, cr.Column = t.text, t2.text
	}
	return cr, nil
}

func (p *parser) parsePredicate() (Predicate, error) {
	// A predicate may start with a literal (e.g. "20 <= s.a"); normalize
	// by flipping the comparison.
	if p.cur().kind == tokNumber || p.cur().kind == tokString {
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		op, err := p.parseCompareOp()
		if err != nil {
			return nil, err
		}
		cr, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		return &ComparePred{Col: cr, Op: flipOp(op), Val: lit}, nil
	}

	cr, err := p.parseColumnRef()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("between") {
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &BetweenPred{Col: cr, Lo: lo, Hi: hi}, nil
	}
	if p.acceptKeyword("in") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var vals []value.Value
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if p.acceptSymbol(")") {
				break
			}
			if err := p.expectSymbol(","); err != nil {
				return nil, err
			}
		}
		return &InPred{Col: cr, Vals: vals}, nil
	}
	op, err := p.parseCompareOp()
	if err != nil {
		return nil, err
	}
	// Right side: column (join) or literal.
	if p.cur().kind == tokIdent {
		rhs, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		if op != OpEQ {
			return nil, fmt.Errorf("sqlkit: join predicates must use '=', got %s", op)
		}
		return &JoinPred{Left: cr, Right: rhs}, nil
	}
	lit, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return &ComparePred{Col: cr, Op: op, Val: lit}, nil
}

func (p *parser) parseCompareOp() (CompareOp, error) {
	t := p.next()
	if t.kind != tokSymbol {
		return 0, fmt.Errorf("sqlkit: expected comparison operator, got %s", t)
	}
	switch t.text {
	case "=":
		return OpEQ, nil
	case "<>":
		return OpNE, nil
	case "<":
		return OpLT, nil
	case "<=":
		return OpLE, nil
	case ">":
		return OpGT, nil
	case ">=":
		return OpGE, nil
	default:
		return 0, fmt.Errorf("sqlkit: expected comparison operator, got %s", t)
	}
}

func flipOp(op CompareOp) CompareOp {
	switch op {
	case OpLT:
		return OpGT
	case OpLE:
		return OpGE
	case OpGT:
		return OpLT
	case OpGE:
		return OpLE
	default:
		return op
	}
}

func (p *parser) parseLiteral() (value.Value, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return value.Null, fmt.Errorf("sqlkit: bad float %q: %v", t.text, err)
			}
			return value.NewFloat(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return value.Null, fmt.Errorf("sqlkit: bad integer %q: %v", t.text, err)
		}
		return value.NewInt(i), nil
	case tokString:
		return value.NewString(t.text), nil
	default:
		return value.Null, fmt.Errorf("sqlkit: expected literal, got %s", t)
	}
}
