package sqlkit

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/value"
)

// Parse parses one SPJ query. The grammar is:
//
//	query  := SELECT (COUNT '(' '*' ')' | '*' | colref (',' colref)*)
//	          FROM ident (',' ident)* [WHERE pred (AND pred)*] [';']
//	pred   := colref op literal | literal op colref
//	        | colref BETWEEN literal AND literal
//	        | colref IN '(' literal (',' literal)* ')'
//	        | colref '=' colref
//	op     := '=' | '<>' | '<' | '<=' | '>' | '>='
//	colref := ident ['.' ident]
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != kw {
		return fmt.Errorf("sqlkit: expected %s, got %s", strings.ToUpper(kw), t)
	}
	return nil
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokIdent && p.cur().text == kw {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != sym {
		return fmt.Errorf("sqlkit: expected %q, got %s", sym, t)
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == sym {
		p.i++
		return true
	}
	return false
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	q := &Query{}
	if err := p.parseSelectList(q); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		t := p.next()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("sqlkit: expected table name, got %s", t)
		}
		q.Tables = append(q.Tables, t.text)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("where") {
		for {
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			q.Preds = append(q.Preds, pred)
			if !p.acceptKeyword("and") {
				break
			}
		}
	}
	p.acceptSymbol(";")
	if t := p.cur(); t.kind != tokEOF {
		return nil, fmt.Errorf("sqlkit: trailing input at %s", t)
	}
	return q, nil
}

func (p *parser) parseSelectList(q *Query) error {
	if p.acceptSymbol("*") {
		q.Star = true
		return nil
	}
	if p.cur().kind == tokIdent && p.cur().text == "count" {
		p.i++
		if err := p.expectSymbol("("); err != nil {
			return err
		}
		if err := p.expectSymbol("*"); err != nil {
			return err
		}
		if err := p.expectSymbol(")"); err != nil {
			return err
		}
		q.CountStar = true
		return nil
	}
	for {
		cr, err := p.parseColumnRef()
		if err != nil {
			return err
		}
		q.Columns = append(q.Columns, cr)
		if !p.acceptSymbol(",") {
			return nil
		}
	}
}

func (p *parser) parseColumnRef() (ColumnRef, error) {
	t := p.next()
	if t.kind != tokIdent {
		return ColumnRef{}, fmt.Errorf("sqlkit: expected column, got %s", t)
	}
	cr := ColumnRef{Column: t.text}
	if p.acceptSymbol(".") {
		t2 := p.next()
		if t2.kind != tokIdent {
			return ColumnRef{}, fmt.Errorf("sqlkit: expected column after '.', got %s", t2)
		}
		cr.Table, cr.Column = t.text, t2.text
	}
	return cr, nil
}

func (p *parser) parsePredicate() (Predicate, error) {
	// A predicate may start with a literal (e.g. "20 <= s.a"); normalize
	// by flipping the comparison.
	if p.cur().kind == tokNumber || p.cur().kind == tokString {
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		op, err := p.parseCompareOp()
		if err != nil {
			return nil, err
		}
		cr, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		return &ComparePred{Col: cr, Op: flipOp(op), Val: lit}, nil
	}

	cr, err := p.parseColumnRef()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("between") {
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &BetweenPred{Col: cr, Lo: lo, Hi: hi}, nil
	}
	if p.acceptKeyword("in") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var vals []value.Value
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if p.acceptSymbol(")") {
				break
			}
			if err := p.expectSymbol(","); err != nil {
				return nil, err
			}
		}
		return &InPred{Col: cr, Vals: vals}, nil
	}
	op, err := p.parseCompareOp()
	if err != nil {
		return nil, err
	}
	// Right side: column (join) or literal.
	if p.cur().kind == tokIdent {
		rhs, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		if op != OpEQ {
			return nil, fmt.Errorf("sqlkit: join predicates must use '=', got %s", op)
		}
		return &JoinPred{Left: cr, Right: rhs}, nil
	}
	lit, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return &ComparePred{Col: cr, Op: op, Val: lit}, nil
}

func (p *parser) parseCompareOp() (CompareOp, error) {
	t := p.next()
	if t.kind != tokSymbol {
		return 0, fmt.Errorf("sqlkit: expected comparison operator, got %s", t)
	}
	switch t.text {
	case "=":
		return OpEQ, nil
	case "<>":
		return OpNE, nil
	case "<":
		return OpLT, nil
	case "<=":
		return OpLE, nil
	case ">":
		return OpGT, nil
	case ">=":
		return OpGE, nil
	default:
		return 0, fmt.Errorf("sqlkit: expected comparison operator, got %s", t)
	}
}

func flipOp(op CompareOp) CompareOp {
	switch op {
	case OpLT:
		return OpGT
	case OpLE:
		return OpGE
	case OpGT:
		return OpLT
	case OpGE:
		return OpLE
	default:
		return op
	}
}

func (p *parser) parseLiteral() (value.Value, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return value.Null, fmt.Errorf("sqlkit: bad float %q: %v", t.text, err)
			}
			return value.NewFloat(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return value.Null, fmt.Errorf("sqlkit: bad integer %q: %v", t.text, err)
		}
		return value.NewInt(i), nil
	case tokString:
		return value.NewString(t.text), nil
	default:
		return value.Null, fmt.Errorf("sqlkit: expected literal, got %s", t)
	}
}
