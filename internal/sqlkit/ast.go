package sqlkit

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// CompareOp is a scalar comparison operator.
type CompareOp uint8

// Comparison operators.
const (
	OpEQ CompareOp = iota
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
)

// String returns the SQL spelling of the operator.
func (op CompareOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpNE:
		return "<>"
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	default:
		return "?"
	}
}

// ColumnRef names a column, optionally qualified by table.
type ColumnRef struct {
	Table  string `json:"table,omitempty"`
	Column string `json:"column"`
}

// String renders the reference in table.column form.
func (c ColumnRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// Predicate is one conjunct of a WHERE clause.
type Predicate interface {
	// SQL renders the predicate as SQL text.
	SQL() string
	isPredicate()
}

// ComparePred is "col OP literal".
type ComparePred struct {
	Col ColumnRef
	Op  CompareOp
	Val value.Value
}

func (p *ComparePred) isPredicate() {}

// SQL implements Predicate.
func (p *ComparePred) SQL() string {
	return fmt.Sprintf("%s %s %s", p.Col, p.Op, p.Val.SQL())
}

// BetweenPred is "col BETWEEN lo AND hi" (inclusive both ends).
type BetweenPred struct {
	Col    ColumnRef
	Lo, Hi value.Value
}

func (p *BetweenPred) isPredicate() {}

// SQL implements Predicate.
func (p *BetweenPred) SQL() string {
	return fmt.Sprintf("%s BETWEEN %s AND %s", p.Col, p.Lo.SQL(), p.Hi.SQL())
}

// InPred is "col IN (v1, v2, ...)".
type InPred struct {
	Col  ColumnRef
	Vals []value.Value
}

func (p *InPred) isPredicate() {}

// SQL implements Predicate.
func (p *InPred) SQL() string {
	parts := make([]string, len(p.Vals))
	for i, v := range p.Vals {
		parts[i] = v.SQL()
	}
	return fmt.Sprintf("%s IN (%s)", p.Col, strings.Join(parts, ", "))
}

// JoinPred is "left = right" between two column references.
type JoinPred struct {
	Left, Right ColumnRef
}

func (p *JoinPred) isPredicate() {}

// SQL implements Predicate.
func (p *JoinPred) SQL() string {
	return fmt.Sprintf("%s = %s", p.Left, p.Right)
}

// AggFunc identifies an aggregate function in a select list.
type AggFunc uint8

// Aggregate functions.
const (
	AggCount AggFunc = iota // COUNT(*) or COUNT(col)
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String returns the SQL spelling of the function.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	default:
		return fmt.Sprintf("agg(%d)", uint8(f))
	}
}

// Aggregate is one aggregate select item: Fn(Col), or COUNT(*) when Star.
type Aggregate struct {
	Fn   AggFunc
	Star bool      // COUNT(*)
	Col  ColumnRef // argument column when !Star
}

// SQL renders the aggregate as SQL text.
func (a Aggregate) SQL() string {
	if a.Star {
		return a.Fn.String() + "(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Fn, a.Col)
}

// OrderItem is one ORDER BY key: the column and its direction.
type OrderItem struct {
	Col  ColumnRef
	Desc bool
}

// SQL renders the key as SQL text (ASC, the default, is left implicit).
func (o OrderItem) SQL() string {
	if o.Desc {
		return o.Col.String() + " DESC"
	}
	return o.Col.String()
}

// SelectItem is one entry of a grouped select list, in list order: either a
// grouping column or an aggregate.
type SelectItem struct {
	IsAgg bool
	Col   ColumnRef // when !IsAgg
	Agg   Aggregate // when IsAgg
}

// SQL renders the item as SQL text.
func (it SelectItem) SQL() string {
	if it.IsAgg {
		return it.Agg.SQL()
	}
	return it.Col.String()
}

// Query is a parsed SPJ query, optionally grouped and aggregated.
type Query struct {
	// Explain marks an EXPLAIN ANALYZE query: execute with per-operator
	// tracing and surface the annotated span tree with the result.
	Explain bool

	// Star is true for SELECT *; CountStar for SELECT COUNT(*).
	Star      bool
	CountStar bool
	Columns   []ColumnRef // projection list when neither Star nor CountStar

	// Grouped-aggregate form: Items is the select list in order (grouping
	// columns and aggregates interleaved), GroupBy the GROUP BY keys. When
	// Items is non-empty, Star/CountStar/Columns are unset. A bare
	// "SELECT COUNT(*) FROM ..." with no GROUP BY keeps the legacy
	// CountStar form and plans as the scalar aggregate.
	Items   []SelectItem
	GroupBy []ColumnRef

	// Distinct is SELECT DISTINCT: the output is deduplicated over the
	// selected columns. It cannot be combined with aggregates or GROUP BY.
	Distinct bool

	// OrderBy lists the ORDER BY keys in clause order; each must resolve to
	// a column of the query output.
	OrderBy []OrderItem

	// Limit, when non-nil, caps the output at *Limit rows after skipping
	// Offset rows (LIMIT n [OFFSET k]); both are non-negative.
	Limit  *int64
	Offset int64

	Tables []string
	Preds  []Predicate
}

// Grouped reports whether the query is in grouped-aggregate form.
func (q *Query) Grouped() bool { return len(q.Items) > 0 }

// SQL renders the query back to SQL text.
func (q *Query) SQL() string {
	var sb strings.Builder
	if q.Explain {
		sb.WriteString("EXPLAIN ANALYZE ")
	}
	sb.WriteString("SELECT ")
	if q.Distinct {
		sb.WriteString("DISTINCT ")
	}
	switch {
	case q.CountStar:
		sb.WriteString("COUNT(*)")
	case q.Star:
		sb.WriteString("*")
	case q.Grouped():
		parts := make([]string, len(q.Items))
		for i, it := range q.Items {
			parts[i] = it.SQL()
		}
		sb.WriteString(strings.Join(parts, ", "))
	default:
		parts := make([]string, len(q.Columns))
		for i, c := range q.Columns {
			parts[i] = c.String()
		}
		sb.WriteString(strings.Join(parts, ", "))
	}
	sb.WriteString(" FROM ")
	sb.WriteString(strings.Join(q.Tables, ", "))
	if len(q.Preds) > 0 {
		sb.WriteString(" WHERE ")
		parts := make([]string, len(q.Preds))
		for i, p := range q.Preds {
			parts[i] = p.SQL()
		}
		sb.WriteString(strings.Join(parts, " AND "))
	}
	if len(q.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		parts := make([]string, len(q.GroupBy))
		for i, c := range q.GroupBy {
			parts[i] = c.String()
		}
		sb.WriteString(strings.Join(parts, ", "))
	}
	if len(q.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		parts := make([]string, len(q.OrderBy))
		for i, o := range q.OrderBy {
			parts[i] = o.SQL()
		}
		sb.WriteString(strings.Join(parts, ", "))
	}
	if q.Limit != nil {
		fmt.Fprintf(&sb, " LIMIT %d", *q.Limit)
		if q.Offset > 0 {
			fmt.Fprintf(&sb, " OFFSET %d", q.Offset)
		}
	}
	return sb.String()
}

// JoinPreds returns the join predicates in q.
func (q *Query) JoinPreds() []*JoinPred {
	var out []*JoinPred
	for _, p := range q.Preds {
		if jp, ok := p.(*JoinPred); ok {
			out = append(out, jp)
		}
	}
	return out
}

// FilterPreds returns the non-join predicates in q.
func (q *Query) FilterPreds() []Predicate {
	var out []Predicate
	for _, p := range q.Preds {
		if _, ok := p.(*JoinPred); !ok {
			out = append(out, p)
		}
	}
	return out
}
