package sqlkit

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func mustParse(t *testing.T, sql string) *Query {
	t.Helper()
	q, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return q
}

func TestParseSelectStar(t *testing.T) {
	q := mustParse(t, "SELECT * FROM r")
	if !q.Star || q.CountStar || len(q.Tables) != 1 || q.Tables[0] != "r" {
		t.Errorf("got %+v", q)
	}
}

func TestParseCountStar(t *testing.T) {
	q := mustParse(t, "select count(*) from s where a >= 20 and a < 60;")
	if !q.CountStar {
		t.Error("CountStar not set")
	}
	if len(q.Preds) != 2 {
		t.Fatalf("preds = %d", len(q.Preds))
	}
	p0 := q.Preds[0].(*ComparePred)
	if p0.Col.Column != "a" || p0.Op != OpGE || p0.Val.Int() != 20 {
		t.Errorf("pred 0 = %+v", p0)
	}
}

func TestParseProjection(t *testing.T) {
	q := mustParse(t, "SELECT r.x, y FROM r")
	if len(q.Columns) != 2 || q.Columns[0].Table != "r" || q.Columns[0].Column != "x" || q.Columns[1].Column != "y" {
		t.Errorf("columns = %+v", q.Columns)
	}
}

func TestParseJoinAndQualified(t *testing.T) {
	q := mustParse(t, "SELECT * FROM r, s, t WHERE r.s_fk = s.s_pk AND r.t_fk = t.t_pk AND s.a >= 20")
	joins := q.JoinPreds()
	if len(joins) != 2 {
		t.Fatalf("joins = %d", len(joins))
	}
	if joins[0].Left.String() != "r.s_fk" || joins[0].Right.String() != "s.s_pk" {
		t.Errorf("join 0 = %+v", joins[0])
	}
	if len(q.FilterPreds()) != 1 {
		t.Errorf("filters = %d", len(q.FilterPreds()))
	}
}

func TestParseBetweenInString(t *testing.T) {
	q := mustParse(t, "SELECT COUNT(*) FROM item WHERE i_category IN ('Music', 'Books') AND i_manager_id BETWEEN 10 AND 20 AND i_class = 'pop'")
	in := q.Preds[0].(*InPred)
	if len(in.Vals) != 2 || in.Vals[0].Str() != "Music" {
		t.Errorf("in = %+v", in)
	}
	bw := q.Preds[1].(*BetweenPred)
	if bw.Lo.Int() != 10 || bw.Hi.Int() != 20 {
		t.Errorf("between = %+v", bw)
	}
	eq := q.Preds[2].(*ComparePred)
	if eq.Op != OpEQ || eq.Val.Str() != "pop" {
		t.Errorf("eq = %+v", eq)
	}
}

func TestParseFlippedComparison(t *testing.T) {
	q := mustParse(t, "SELECT * FROM s WHERE 20 <= a")
	p := q.Preds[0].(*ComparePred)
	if p.Col.Column != "a" || p.Op != OpGE || p.Val.Int() != 20 {
		t.Errorf("flipped pred = %+v (op %v)", p, p.Op)
	}
}

func TestParseLiterals(t *testing.T) {
	q := mustParse(t, "SELECT * FROM s WHERE a < 2.5 AND b = -3 AND c <> 'it''s'")
	if v := q.Preds[0].(*ComparePred).Val; v.Kind() != value.KindFloat || v.Float() != 2.5 {
		t.Errorf("float literal = %v", v)
	}
	if v := q.Preds[1].(*ComparePred).Val; v.Int() != -3 {
		t.Errorf("negative literal = %v", v)
	}
	p2 := q.Preds[2].(*ComparePred)
	if p2.Op != OpNE || p2.Val.Str() != "it's" {
		t.Errorf("escaped string = %+v", p2)
	}
}

func TestParseNotEqualsVariants(t *testing.T) {
	a := mustParse(t, "SELECT * FROM s WHERE a <> 1")
	b := mustParse(t, "SELECT * FROM s WHERE a != 1")
	if a.SQL() != b.SQL() {
		t.Errorf("<> and != differ: %s vs %s", a.SQL(), b.SQL())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"INSERT INTO t VALUES (1)",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE a >",
		"SELECT * FROM t WHERE a BETWEEN 1",
		"SELECT * FROM t WHERE a IN ()",
		"SELECT * FROM t WHERE a IN (1,)",
		"SELECT * FROM t WHERE a < 'x' extra",
		"SELECT * FROM t WHERE a = 'unterminated",
		"SELECT count(* FROM t",
		"SELECT * FROM t WHERE a.b.c = 1",
		"SELECT * FROM t WHERE a ~ 1",
		"SELECT * FROM t WHERE a < b.c.d",
		"SELECT * FROM t WHERE t.x < s.y", // non-equality join
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestSQLRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT * FROM r",
		"SELECT COUNT(*) FROM r, s WHERE r.s_fk = s.s_pk AND s.a >= 20 AND s.a < 60",
		"SELECT COUNT(*) FROM item WHERE i_category IN ('a', 'b') AND i_price BETWEEN 1 AND 2",
		"SELECT x, y FROM t WHERE x <> 3",
	}
	for _, sql := range queries {
		q := mustParse(t, sql)
		rendered := q.SQL()
		q2 := mustParse(t, rendered)
		if q2.SQL() != rendered {
			t.Errorf("round trip unstable:\n  %s\n  %s", rendered, q2.SQL())
		}
	}
}

func TestSQLRendering(t *testing.T) {
	q := mustParse(t, "select count(*) from a, b where a.x = b.y and a.z in (1, 2) and a.w between 3 and 4 and a.v >= 'm'")
	got := q.SQL()
	for _, frag := range []string{"COUNT(*)", "a.x = b.y", "a.z IN (1, 2)", "a.w BETWEEN 3 AND 4", "a.v >= 'm'"} {
		if !strings.Contains(got, frag) {
			t.Errorf("SQL() = %q missing %q", got, frag)
		}
	}
}

func TestCompareOpString(t *testing.T) {
	ops := map[CompareOp]string{OpEQ: "=", OpNE: "<>", OpLT: "<", OpLE: "<=", OpGT: ">", OpGE: ">="}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("op %d String = %q", op, op.String())
		}
	}
	if CompareOp(99).String() != "?" {
		t.Error("unknown op should render ?")
	}
}

func TestColumnRefString(t *testing.T) {
	if (ColumnRef{Column: "c"}).String() != "c" {
		t.Error("unqualified ref")
	}
	if (ColumnRef{Table: "t", Column: "c"}).String() != "t.c" {
		t.Error("qualified ref")
	}
}

func TestLexerIdentifiersCaseFolded(t *testing.T) {
	q := mustParse(t, "SELECT * FROM MyTable WHERE BigCol = 1")
	if q.Tables[0] != "mytable" {
		t.Errorf("table = %q", q.Tables[0])
	}
	if q.Preds[0].(*ComparePred).Col.Column != "bigcol" {
		t.Errorf("column = %q", q.Preds[0].(*ComparePred).Col.Column)
	}
}

func TestStringLiteralCasePreserved(t *testing.T) {
	q := mustParse(t, "SELECT * FROM t WHERE c = 'MiXeD'")
	if q.Preds[0].(*ComparePred).Val.Str() != "MiXeD" {
		t.Error("string literal case must be preserved")
	}
}

func TestParseGroupBy(t *testing.T) {
	q := mustParse(t, "SELECT t.c, COUNT(*), SUM(s.b), MIN(s.a), MAX(s.a), AVG(s.b) FROM r, s, t WHERE r.s_fk = s.s_pk GROUP BY t.c")
	if !q.Grouped() || q.Star || q.CountStar || len(q.Columns) != 0 {
		t.Fatalf("not grouped form: %+v", q)
	}
	if len(q.Items) != 6 {
		t.Fatalf("items = %d, want 6", len(q.Items))
	}
	if q.Items[0].IsAgg || q.Items[0].Col.String() != "t.c" {
		t.Errorf("item 0 = %+v", q.Items[0])
	}
	wantFns := []AggFunc{AggCount, AggSum, AggMin, AggMax, AggAvg}
	for i, fn := range wantFns {
		it := q.Items[i+1]
		if !it.IsAgg || it.Agg.Fn != fn {
			t.Errorf("item %d = %+v, want %v", i+1, it, fn)
		}
	}
	if !q.Items[1].Agg.Star {
		t.Errorf("COUNT(*) star flag not set: %+v", q.Items[1])
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0].String() != "t.c" {
		t.Errorf("group by = %+v", q.GroupBy)
	}
}

func TestParseGroupByMultipleKeysInterleaved(t *testing.T) {
	q := mustParse(t, "select avg(q), d_fk, count(f_pk), a from fact, dim where d_fk = d_pk group by d_fk, a")
	if len(q.Items) != 4 || len(q.GroupBy) != 2 {
		t.Fatalf("items/groupby = %d/%d", len(q.Items), len(q.GroupBy))
	}
	// Aggregates and keys interleave in select-list order.
	if !q.Items[0].IsAgg || q.Items[1].IsAgg || !q.Items[2].IsAgg || q.Items[3].IsAgg {
		t.Errorf("interleaving lost: %+v", q.Items)
	}
	if q.Items[2].Agg.Fn != AggCount || q.Items[2].Agg.Star || q.Items[2].Agg.Col.Column != "f_pk" {
		t.Errorf("COUNT(col) = %+v", q.Items[2].Agg)
	}
}

func TestParseGlobalAggregate(t *testing.T) {
	// Aggregates without GROUP BY stay in grouped form (one global group) —
	// except the lone COUNT(*), which keeps the legacy CountStar plan.
	q := mustParse(t, "SELECT SUM(q), COUNT(*) FROM fact")
	if !q.Grouped() || q.CountStar || len(q.GroupBy) != 0 {
		t.Fatalf("global aggregate form: %+v", q)
	}
	if q2 := mustParse(t, "SELECT COUNT(*) FROM fact"); !q2.CountStar || q2.Grouped() {
		t.Fatalf("lone COUNT(*) lost legacy form: %+v", q2)
	}
}

func TestParseGroupBySQLRoundTrip(t *testing.T) {
	for _, sql := range []string{
		"SELECT t.c, COUNT(*), SUM(s.b) FROM r, s, t WHERE r.s_fk = s.s_pk GROUP BY t.c",
		"SELECT AVG(q), d_fk FROM fact GROUP BY d_fk",
		"SELECT a, b, MIN(q), MAX(q) FROM fact GROUP BY a, b",
		"SELECT COUNT(q), SUM(q) FROM fact",
	} {
		q := mustParse(t, sql)
		if got := q.SQL(); got != sql {
			t.Errorf("SQL round trip: got %q, want %q", got, sql)
		}
		// Re-parsing the rendering yields the same rendering (fixpoint).
		if got2 := mustParse(t, q.SQL()).SQL(); got2 != q.SQL() {
			t.Errorf("SQL not a fixpoint: %q -> %q", q.SQL(), got2)
		}
	}
}

func TestParseGroupByErrors(t *testing.T) {
	for _, sql := range []string{
		"SELECT * FROM fact GROUP BY a",      // star with grouping
		"SELECT AVG(*) FROM fact",            // only COUNT takes '*'
		"SELECT SUM() FROM fact",             // missing argument
		"SELECT a, COUNT(*) FROM fact GROUP", // GROUP without BY
		"SELECT COUNT(*) FROM fact GROUP BY", // BY without keys
		"SELECT MIN(a,b) FROM fact",          // one argument only
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestParseAggNamedColumn(t *testing.T) {
	// A column that happens to be named like an aggregate keyword still
	// parses as a column when not followed by '('.
	q := mustParse(t, "SELECT min, max FROM limits")
	if len(q.Columns) != 2 || q.Columns[0].Column != "min" || q.Columns[1].Column != "max" {
		t.Errorf("columns = %+v", q.Columns)
	}
}

func TestParseOrderBy(t *testing.T) {
	q := mustParse(t, "SELECT * FROM r ORDER BY r.x DESC, y ASC, z")
	if len(q.OrderBy) != 3 {
		t.Fatalf("order by = %+v", q.OrderBy)
	}
	if q.OrderBy[0].Col.String() != "r.x" || !q.OrderBy[0].Desc {
		t.Errorf("key 0 = %+v", q.OrderBy[0])
	}
	if q.OrderBy[1].Col.Column != "y" || q.OrderBy[1].Desc {
		t.Errorf("key 1 = %+v", q.OrderBy[1])
	}
	if q.OrderBy[2].Col.Column != "z" || q.OrderBy[2].Desc {
		t.Errorf("key 2 = %+v", q.OrderBy[2])
	}
}

func TestParseLimitOffset(t *testing.T) {
	q := mustParse(t, "SELECT * FROM r LIMIT 10 OFFSET 3")
	if q.Limit == nil || *q.Limit != 10 || q.Offset != 3 {
		t.Fatalf("limit/offset = %v/%d", q.Limit, q.Offset)
	}
	q = mustParse(t, "select a from r limit 0;")
	if q.Limit == nil || *q.Limit != 0 || q.Offset != 0 {
		t.Fatalf("limit 0 = %v/%d", q.Limit, q.Offset)
	}
	if q := mustParse(t, "SELECT * FROM r"); q.Limit != nil {
		t.Fatalf("absent LIMIT parsed as %v", *q.Limit)
	}
}

func TestParseDistinct(t *testing.T) {
	q := mustParse(t, "SELECT DISTINCT a, r.b FROM r")
	if !q.Distinct || len(q.Columns) != 2 {
		t.Fatalf("got %+v", q)
	}
	q = mustParse(t, "SELECT DISTINCT * FROM r")
	if !q.Distinct || !q.Star {
		t.Fatalf("got %+v", q)
	}
}

func TestParseOrderLimitDistinctErrors(t *testing.T) {
	for _, sql := range []string{
		"SELECT * FROM r ORDER BY",            // missing key
		"SELECT * FROM r ORDER x",             // missing BY
		"SELECT * FROM r LIMIT",               // missing bound
		"SELECT * FROM r LIMIT x",             // non-numeric
		"SELECT * FROM r LIMIT 1.5",           // non-integer
		"SELECT * FROM r LIMIT -1",            // negative
		"SELECT * FROM r LIMIT 5 OFFSET -2",   // negative offset
		"SELECT * FROM r OFFSET 2",            // OFFSET without LIMIT
		"SELECT DISTINCT COUNT(*) FROM r",     // DISTINCT over aggregate
		"SELECT DISTINCT a FROM r GROUP BY a", // DISTINCT with GROUP BY
		"SELECT * FROM r LIMIT 1 ORDER BY a",  // clause order fixed
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestParseSortLimitSQLRoundTrip(t *testing.T) {
	for _, sql := range []string{
		"SELECT DISTINCT a, r.b FROM r WHERE a >= 3 ORDER BY r.b DESC, a LIMIT 10 OFFSET 2",
		"SELECT * FROM r ORDER BY a LIMIT 5",
		"SELECT x, COUNT(*) FROM r GROUP BY x ORDER BY x DESC LIMIT 3",
	} {
		q := mustParse(t, sql)
		q2 := mustParse(t, q.SQL())
		if q.SQL() != q2.SQL() {
			t.Errorf("round trip drifted:\n first %s\nsecond %s", q.SQL(), q2.SQL())
		}
	}
}

func TestParseExplainAnalyze(t *testing.T) {
	for _, sql := range []string{
		"EXPLAIN ANALYZE SELECT * FROM r",
		"explain analyze select count(*) from s where a >= 20",
		"  Explain\tAnalyze  SELECT a, COUNT(*) FROM s GROUP BY a",
	} {
		q := mustParse(t, sql)
		if !q.Explain {
			t.Errorf("Parse(%q): Explain not set", sql)
		}
	}
	// The prefix changes tracing, never the parsed query shape.
	plain := mustParse(t, "SELECT count(*) FROM s WHERE a >= 20 AND a < 60")
	traced := mustParse(t, "EXPLAIN ANALYZE SELECT count(*) FROM s WHERE a >= 20 AND a < 60")
	if !traced.CountStar || len(traced.Preds) != len(plain.Preds) {
		t.Errorf("explain changed query shape: %+v", traced)
	}
}

func TestParseExplainErrors(t *testing.T) {
	for _, sql := range []string{
		"EXPLAIN SELECT * FROM r", // no static planner: ANALYZE is mandatory
		"EXPLAIN ANALYZE",         // nothing to execute
		"EXPLAIN",                 //
		"EXPLAIN ANALYZE EXPLAIN ANALYZE SELECT * FROM r", // prefix is not recursive
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
	if _, err := Parse("EXPLAIN INSERT INTO t VALUES (1)"); err == nil ||
		!strings.Contains(err.Error(), "EXPLAIN without ANALYZE") {
		t.Errorf("EXPLAIN without ANALYZE error missing, got %v", err)
	}
}

func TestExplainSQLRoundTrip(t *testing.T) {
	q := mustParse(t, "explain analyze SELECT * FROM r WHERE x < 5 ORDER BY x LIMIT 3")
	if got := q.SQL(); !strings.HasPrefix(got, "EXPLAIN ANALYZE SELECT") {
		t.Fatalf("SQL() = %q, want EXPLAIN ANALYZE prefix", got)
	}
	q2 := mustParse(t, q.SQL())
	if !q2.Explain || q2.SQL() != q.SQL() {
		t.Errorf("round trip drifted:\n first %s\nsecond %s", q.SQL(), q2.SQL())
	}
}
