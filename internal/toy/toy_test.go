package toy

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/sqlkit"
)

func TestSchemaAndDatabase(t *testing.T) {
	s := Schema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	db, err := Database(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(db.Relation("r").Rows); got != RRows {
		t.Errorf("r rows = %d", got)
	}
	// Referential integrity of the generated foreign keys.
	for _, row := range db.Relation("r").Rows {
		if row[1] < 0 || row[1] >= SRows || row[2] < 0 || row[2] >= TRows {
			t.Fatalf("dangling fk in %v", row)
		}
	}
}

func TestWorkloadExecutes(t *testing.T) {
	db, err := Database(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, sql := range Workload() {
		q, err := sqlkit.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		plan, err := engine.BuildPlan(db.Schema, q)
		if err != nil {
			t.Fatalf("plan %q: %v", sql, err)
		}
		if _, err := engine.Execute(db, plan, engine.ExecOptions{}); err != nil {
			t.Fatalf("exec %q: %v", sql, err)
		}
	}
}
