// Package toy builds the three-table example of Figure 1 in the paper:
//
//	R (R_pk, S_fk, T_fk)    S (S_pk, A, B)    T (T_pk, C)
//
// with the sample query
//
//	SELECT * FROM R, S, T
//	WHERE R.S_fk = S.S_pk AND R.T_fk = T.T_pk
//	  AND S.A >= 20 AND S.A < 60 AND T.C >= 2 AND T.C < 3
//
// It is used by the quickstart example and by integration tests that need a
// small, fully understood scenario.
package toy

import (
	"math/rand"

	"repro/internal/engine"
	"repro/internal/schema"
)

// Sizes of the toy relations.
const (
	RRows = 10_000
	SRows = 500
	TRows = 100
)

// Query is the paper's Figure 1(b) example query.
const Query = "SELECT * FROM r, s, t WHERE r.s_fk = s.s_pk AND r.t_fk = t.t_pk AND s.a >= 20 AND s.a < 60 AND t.c >= 2 AND t.c < 3"

// Schema returns the Figure 1(a) schema.
func Schema() *schema.Schema {
	return &schema.Schema{Tables: []*schema.Table{
		{
			Name:     "s",
			RowCount: SRows,
			Columns: []*schema.Column{
				{Name: "s_pk", Type: schema.Int, PrimaryKey: true, DomainLo: 0, DomainHi: SRows},
				{Name: "a", Type: schema.Int, DomainLo: 0, DomainHi: 100},
				{Name: "b", Type: schema.Int, DomainLo: 0, DomainHi: 1000},
			},
		},
		{
			Name:     "t",
			RowCount: TRows,
			Columns: []*schema.Column{
				{Name: "t_pk", Type: schema.Int, PrimaryKey: true, DomainLo: 0, DomainHi: TRows},
				{Name: "c", Type: schema.Int, DomainLo: 0, DomainHi: 10},
			},
		},
		{
			Name:     "r",
			RowCount: RRows,
			Columns: []*schema.Column{
				{Name: "r_pk", Type: schema.Int, PrimaryKey: true, DomainLo: 0, DomainHi: RRows},
				{Name: "s_fk", Type: schema.Int, Ref: &schema.ForeignKey{Table: "s", Column: "s_pk"}, DomainLo: 0, DomainHi: SRows},
				{Name: "t_fk", Type: schema.Int, Ref: &schema.ForeignKey{Table: "t", Column: "t_pk"}, DomainLo: 0, DomainHi: TRows},
			},
		},
	}}
}

// Database generates a seeded toy client database.
func Database(seed int64) (*engine.Database, error) {
	s := Schema()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	db := engine.NewDatabase(s)

	sRel := &engine.Relation{Table: s.Table("s")}
	for i := int64(0); i < SRows; i++ {
		sRel.Rows = append(sRel.Rows, []int64{i, r.Int63n(100), r.Int63n(1000)})
	}
	tRel := &engine.Relation{Table: s.Table("t")}
	for i := int64(0); i < TRows; i++ {
		tRel.Rows = append(tRel.Rows, []int64{i, r.Int63n(10)})
	}
	rRel := &engine.Relation{Table: s.Table("r")}
	for i := int64(0); i < RRows; i++ {
		rRel.Rows = append(rRel.Rows, []int64{i, r.Int63n(SRows), r.Int63n(TRows)})
	}
	for _, rel := range []*engine.Relation{sRel, tRel, rRel} {
		if err := db.AddRelation(rel); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Workload returns a small workload exercising filters and both joins.
func Workload() []string {
	return []string{
		Query,
		"SELECT COUNT(*) FROM s WHERE a >= 20 AND a < 60",
		"SELECT COUNT(*) FROM t WHERE c >= 2 AND c < 3",
		"SELECT COUNT(*) FROM r, s WHERE r.s_fk = s.s_pk AND s.a < 50",
		"SELECT COUNT(*) FROM r, t WHERE r.t_fk = t.t_pk AND t.c IN (1, 3, 5)",
		"SELECT COUNT(*) FROM s WHERE b BETWEEN 100 AND 499",
	}
}

// GroupWorkload returns grouped-aggregate queries over the toy schema for
// the GROUP BY parity and serve suites. They are executed against summaries
// built from Workload (grouped queries regenerate from the same summary;
// they are not part of the captured AQP workload).
func GroupWorkload() []string {
	return []string{
		"SELECT t.c, COUNT(*) FROM t GROUP BY t.c",
		"SELECT s.a, COUNT(*), SUM(s.b), MIN(s.b), MAX(s.b), AVG(s.b) FROM s WHERE s.a < 40 GROUP BY s.a",
		"SELECT t.c, COUNT(*), SUM(s.b), MIN(s.a), MAX(s.a), AVG(s.b) FROM r, s, t WHERE r.s_fk = s.s_pk AND r.t_fk = t.t_pk GROUP BY t.c",
		"SELECT AVG(s.b), t.c FROM r, s, t WHERE r.s_fk = s.s_pk AND r.t_fk = t.t_pk AND s.a >= 20 GROUP BY t.c",
		"SELECT COUNT(*), SUM(s.b), AVG(s.b) FROM s",
		"SELECT s.a, s.b, COUNT(*) FROM s WHERE s.a < 5 GROUP BY s.a, s.b",
	}
}

// SortWorkload returns ORDER BY / LIMIT / DISTINCT queries over the toy
// schema for the sink-operator parity and serve suites: full sorts, top-K
// (LIMIT bounding ORDER BY), limits landing mid-batch, OFFSET past the end,
// LIMIT 0, DISTINCT over one and several columns, and compositions with
// GROUP BY. Like GroupWorkload, they regenerate from summaries built from
// Workload and are not part of the captured AQP workload.
func SortWorkload() []string {
	return []string{
		"SELECT * FROM s ORDER BY s.b DESC",
		"SELECT * FROM s WHERE s.a < 60 ORDER BY s.a, s.b DESC",
		"SELECT * FROM s ORDER BY s.b DESC LIMIT 7 OFFSET 2",
		"SELECT * FROM r, s WHERE r.s_fk = s.s_pk AND s.a >= 20 ORDER BY s.b DESC LIMIT 10",
		"SELECT * FROM s LIMIT 7",
		"SELECT * FROM s LIMIT 7 OFFSET 496",   // limit lands past a partial tail
		"SELECT * FROM s LIMIT 5 OFFSET 10000", // offset past end
		"SELECT * FROM s LIMIT 0",
		"SELECT COUNT(*) FROM s WHERE s.a >= 20 LIMIT 1",
		"SELECT DISTINCT t.c FROM t",
		"SELECT DISTINCT s.a FROM r, s WHERE r.s_fk = s.s_pk AND s.a < 30",
		"SELECT DISTINCT t.c FROM t ORDER BY t.c DESC LIMIT 3",
		"SELECT t.c, COUNT(*) FROM t GROUP BY t.c ORDER BY t.c DESC LIMIT 4 OFFSET 1",
	}
}
