// Package synopsis holds the data model of Hydra's database summary: the
// minuscule, memory-resident artifact from which databases of arbitrary
// size are regenerated on the fly. A relation summary is a list of rows
// (#TUPLES, value-spec vector) — exactly the presentation of Figure 4 of
// the paper, where the primary-key column is replaced by a tuple count and
// generated later as auto-numbers.
//
// The types live here, below every pipeline package, so both producers
// (package summary's deterministic-alignment builder) and consumers (the
// tuple generator, the engine's summary-direct aggregate fast path) can
// share them without import cycles. Package summary re-exports everything
// via type aliases; code above the engine should keep importing summary.
package synopsis

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/schema"
	"repro/internal/value"
)

// ColSpec prescribes the value of one column within a summary row: either a
// fixed code or a set of codes the generator cycles through.
type ColSpec struct {
	Col   int               `json:"col"`
	Fixed *int64            `json:"fixed,omitempty"`
	Set   value.IntervalSet `json:"set,omitempty"`
}

// FixedSpec returns a fixed-value spec.
func FixedSpec(col int, v int64) ColSpec { return ColSpec{Col: col, Fixed: &v} }

// SetSpec returns a cycling-set spec.
func SetSpec(col int, s value.IntervalSet) ColSpec { return ColSpec{Col: col, Set: s} }

// Row is one summary row: Count tuples sharing the value specs.
type Row struct {
	Count int64     `json:"count"`
	Specs []ColSpec `json:"specs"`
}

// AtomPK is one entry of a relation's alignment index: a partition atom's
// representative point (one code per axis of the relation's constraint
// space) and the primary-key range its tuples occupy. Referencing relations
// use the index to materialize foreign keys: a fact atom's dimension cell
// selects exactly the dimension atoms whose representatives fall inside it.
type AtomPK struct {
	Rep []int64           `json:"rep"`
	PK  value.IntervalSet `json:"pk"`
}

// Relation is the summary of one table.
type Relation struct {
	Table string `json:"table"`
	// Total is the number of tuples the summary regenerates; tuple i gets
	// primary key i (auto-numbering).
	Total int64 `json:"total"`
	Rows  []Row `json:"rows"`
	// Axes names the relation's constraint-space axes: own columns by
	// name, attributes reached through a foreign key as "fkcol.axis".
	Axes []string `json:"axes,omitempty"`
	// Atoms is the deterministic-alignment index over those axes.
	Atoms []AtomPK `json:"atoms,omitempty"`
	// ClampedRows counts tuples whose foreign-key set had to be clamped
	// by referential post-processing (the paper's "minor additive
	// errors").
	ClampedRows int64 `json:"clamped_rows,omitempty"`
}

// AxisIndex returns the position of an axis key, or -1.
func (r *Relation) AxisIndex(key string) int {
	for i, a := range r.Axes {
		if a == key {
			return i
		}
	}
	return -1
}

// Validate checks internal consistency: counts non-negative and summing to
// Total, every spec either fixed or a non-empty set.
func (r *Relation) Validate(t *schema.Table) error {
	var sum int64
	for i, row := range r.Rows {
		if row.Count < 0 {
			return fmt.Errorf("summary: %s row %d: negative count", r.Table, i)
		}
		sum += row.Count
		for _, sp := range row.Specs {
			if sp.Col < 0 || sp.Col >= len(t.Columns) {
				return fmt.Errorf("summary: %s row %d: bad column %d", r.Table, i, sp.Col)
			}
			if sp.Fixed == nil && sp.Set.Empty() {
				return fmt.Errorf("summary: %s row %d col %d: empty spec", r.Table, i, sp.Col)
			}
		}
	}
	if sum != r.Total {
		return fmt.Errorf("summary: %s: rows sum to %d, total is %d", r.Table, sum, r.Total)
	}
	return nil
}

// Database is the complete vendor-side summary: one relation summary per
// table plus the schema needed to decode values.
type Database struct {
	Schema    *schema.Schema       `json:"schema"`
	Relations map[string]*Relation `json:"relations"`
}

// Relation returns the summary for a table, or nil.
func (d *Database) Relation(name string) *Relation { return d.Relations[name] }

// Validate checks every relation summary against the schema.
func (d *Database) Validate() error {
	for name, r := range d.Relations {
		t := d.Schema.Table(name)
		if t == nil {
			return fmt.Errorf("summary: relation %s not in schema", name)
		}
		if err := r.Validate(t); err != nil {
			return err
		}
	}
	return nil
}

// EncodeJSON writes the summary as indented JSON.
func (d *Database) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// DecodeJSON reads a summary written by EncodeJSON.
func DecodeJSON(r io.Reader) (*Database, error) {
	var d Database
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("summary: decoding: %w", err)
	}
	return &d, nil
}

// EncodeGob writes the summary in the compact binary form used for the
// size accounting the paper reports ("a few KB").
func (d *Database) EncodeGob(w io.Writer) error {
	return gob.NewEncoder(w).Encode(d)
}

// DecodeGob reads a summary written by EncodeGob.
func DecodeGob(r io.Reader) (*Database, error) {
	var d Database
	if err := gob.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("summary: decoding gob: %w", err)
	}
	return &d, nil
}

// Size returns the gob-encoded size in bytes. The alignment index
// (RegionPK) is part of the summary and included.
func (d *Database) Size() (int, error) {
	var buf bytes.Buffer
	if err := d.EncodeGob(&buf); err != nil {
		return 0, err
	}
	return buf.Len(), nil
}
