package schema

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/value"
)

func twoTableSchema() *Schema {
	return &Schema{Tables: []*Table{
		{
			Name:     "dim",
			RowCount: 10,
			Columns: []*Column{
				{Name: "d_pk", Type: Int, PrimaryKey: true, DomainLo: 0, DomainHi: 10},
				{Name: "a", Type: Int, DomainLo: 0, DomainHi: 100},
			},
		},
		{
			Name:     "fact",
			RowCount: 100,
			Columns: []*Column{
				{Name: "f_pk", Type: Int, PrimaryKey: true, DomainLo: 0, DomainHi: 100},
				{Name: "d_fk", Type: Int, Ref: &ForeignKey{Table: "dim", Column: "d_pk"}, DomainLo: 0, DomainHi: 10},
			},
		},
	}}
}

func TestValidateOK(t *testing.T) {
	if err := twoTableSchema().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	mutate := func(fn func(*Schema)) *Schema {
		s := twoTableSchema()
		fn(s)
		return s
	}
	cases := []struct {
		name string
		s    *Schema
	}{
		{"empty table name", mutate(func(s *Schema) { s.Tables[0].Name = "" })},
		{"duplicate table", mutate(func(s *Schema) { s.Tables[1].Name = "dim" })},
		{"negative row count", mutate(func(s *Schema) { s.Tables[0].RowCount = -1 })},
		{"empty column name", mutate(func(s *Schema) { s.Tables[0].Columns[1].Name = "" })},
		{"duplicate column", mutate(func(s *Schema) { s.Tables[0].Columns[1].Name = "d_pk" })},
		{"no primary key", mutate(func(s *Schema) { s.Tables[0].Columns[0].PrimaryKey = false })},
		{"two primary keys", mutate(func(s *Schema) { s.Tables[0].Columns[1].PrimaryKey = true })},
		{"string pk", mutate(func(s *Schema) { s.Tables[0].Columns[0].Type = String })},
		{"inverted domain", mutate(func(s *Schema) { s.Tables[0].Columns[1].DomainLo = 200 })},
		{"domain exceeds bounds", mutate(func(s *Schema) { s.Tables[0].Columns[1].DomainHi = value.DomainMax + 1 })},
		{"fk to missing table", mutate(func(s *Schema) { s.Tables[1].Columns[1].Ref.Table = "nope" })},
		{"fk to non-pk", mutate(func(s *Schema) { s.Tables[1].Columns[1].Ref.Column = "a" })},
		{"string fk", mutate(func(s *Schema) { s.Tables[1].Columns[1].Type = String })},
		{"unsorted dict", mutate(func(s *Schema) {
			s.Tables[0].Columns[1].Type = String
			s.Tables[0].Columns[1].Dict = []string{"b", "a"}
		})},
	}
	for _, c := range cases {
		if err := c.s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid schema", c.name)
		}
	}
}

func TestValidateFKCycle(t *testing.T) {
	s := twoTableSchema()
	// dim references fact -> cycle.
	s.Tables[0].Columns = append(s.Tables[0].Columns, &Column{
		Name: "f_fk", Type: Int, Ref: &ForeignKey{Table: "fact", Column: "f_pk"}, DomainLo: 0, DomainHi: 100,
	})
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted a foreign-key cycle")
	}
}

func TestTopoOrder(t *testing.T) {
	s := twoTableSchema()
	order, err := s.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0].Name != "dim" || order[1].Name != "fact" {
		names := []string{}
		for _, tt := range order {
			names = append(names, tt.Name)
		}
		t.Errorf("TopoOrder = %v", names)
	}
}

func TestTopoOrderSnowflake(t *testing.T) {
	s := &Schema{Tables: []*Table{
		{Name: "f", RowCount: 1, Columns: []*Column{
			{Name: "f_pk", Type: Int, PrimaryKey: true, DomainLo: 0, DomainHi: 1},
			{Name: "d1_fk", Type: Int, Ref: &ForeignKey{Table: "d1", Column: "d1_pk"}},
		}},
		{Name: "d1", RowCount: 1, Columns: []*Column{
			{Name: "d1_pk", Type: Int, PrimaryKey: true, DomainLo: 0, DomainHi: 1},
			{Name: "d2_fk", Type: Int, Ref: &ForeignKey{Table: "d2", Column: "d2_pk"}},
		}},
		{Name: "d2", RowCount: 1, Columns: []*Column{
			{Name: "d2_pk", Type: Int, PrimaryKey: true, DomainLo: 0, DomainHi: 1},
		}},
	}}
	order, err := s.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, tt := range order {
		pos[tt.Name] = i
	}
	if !(pos["d2"] < pos["d1"] && pos["d1"] < pos["f"]) {
		t.Errorf("snowflake order wrong: %v", pos)
	}
}

func TestColumnLookups(t *testing.T) {
	tab := twoTableSchema().Tables[1]
	if tab.ColumnIndex("d_fk") != 1 || tab.ColumnIndex("nope") != -1 {
		t.Error("ColumnIndex misbehaves")
	}
	if tab.Column("d_fk") == nil || tab.Column("nope") != nil {
		t.Error("Column misbehaves")
	}
	if tab.PKIndex() != 0 {
		t.Error("PKIndex misbehaves")
	}
	if fks := tab.ForeignKeys(); len(fks) != 1 || fks[0] != 1 {
		t.Errorf("ForeignKeys = %v", fks)
	}
}

func TestEncodeDecodeInt(t *testing.T) {
	c := &Column{Name: "x", Type: Int, DomainLo: 0, DomainHi: 10}
	code, err := c.Encode(value.NewInt(7))
	if err != nil || code != 7 {
		t.Fatalf("Encode(7) = %d, %v", code, err)
	}
	if !value.Equal(c.Decode(7), value.NewInt(7)) {
		t.Error("Decode(7) wrong")
	}
	if _, err := c.Encode(value.NewString("x")); err == nil {
		t.Error("Encode accepted a string for an int column")
	}
}

func TestEncodeDecodeFloat(t *testing.T) {
	c := &Column{Name: "p", Type: Float, Scale: 100, DomainLo: 0, DomainHi: 10000}
	code, err := c.Encode(value.NewFloat(12.34))
	if err != nil || code != 1234 {
		t.Fatalf("Encode(12.34) = %d, %v", code, err)
	}
	if got := c.Decode(1234); !value.Equal(got, value.NewFloat(12.34)) {
		t.Errorf("Decode(1234) = %v", got)
	}
	// Integer values encode on float columns too.
	code, err = c.Encode(value.NewInt(5))
	if err != nil || code != 500 {
		t.Fatalf("Encode(5) = %d, %v", code, err)
	}
	if _, err := c.Encode(value.NewFloat(math.Inf(1))); err == nil {
		t.Error("Encode accepted +Inf")
	}
}

func TestEncodeDecodeString(t *testing.T) {
	c := &Column{Name: "s", Type: String, Dict: []string{"ant", "bee", "cat"}, DomainLo: 0, DomainHi: 3}
	code, err := c.Encode(value.NewString("bee"))
	if err != nil || code != 1 {
		t.Fatalf("Encode(bee) = %d, %v", code, err)
	}
	if got := c.Decode(1); got.Str() != "bee" {
		t.Errorf("Decode(1) = %v", got)
	}
	if _, err := c.Encode(value.NewString("dog")); err == nil {
		t.Error("Encode accepted out-of-dictionary string")
	}
	// Out-of-dictionary codes decode deterministically (what-if scenarios).
	if got := c.Decode(99); got.Str() == "" {
		t.Error("Decode(99) should render something")
	}
	if c.EncodeRank("bat") != 1 || c.EncodeRank("ant") != 0 || c.EncodeRank("zzz") != 3 {
		t.Error("EncodeRank wrong")
	}
}

func TestColumnDomain(t *testing.T) {
	c := &Column{Name: "x", Type: Int, DomainLo: 3, DomainHi: 9}
	if c.Domain() != value.Ival(3, 9) {
		t.Errorf("Domain = %v", c.Domain())
	}
}

func TestCloneDeep(t *testing.T) {
	s := twoTableSchema()
	s.Tables[0].Columns[1].Type = String
	s.Tables[0].Columns[1].Dict = []string{"a", "b"}
	c := s.Clone()
	c.Tables[0].Columns[1].Dict[0] = "zzz"
	c.Tables[1].Columns[1].Ref.Table = "other"
	c.Tables[0].RowCount = 999
	if s.Tables[0].Columns[1].Dict[0] != "a" {
		t.Error("Clone shares dictionaries")
	}
	if s.Tables[1].Columns[1].Ref.Table != "dim" {
		t.Error("Clone shares foreign keys")
	}
	if s.Tables[0].RowCount != 10 {
		t.Error("Clone shares row counts")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := twoTableSchema()
	s.Tables[0].Columns[1].Type = String
	s.Tables[0].Columns[1].Dict = []string{"x", "y"}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Schema
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("round-tripped schema invalid: %v", err)
	}
	if got.Table("fact").Columns[1].Ref.Table != "dim" {
		t.Error("fk lost in round trip")
	}
	if got.Table("dim").Columns[1].Dict[1] != "y" {
		t.Error("dict lost in round trip")
	}
}

func TestColumnTypeText(t *testing.T) {
	for _, ct := range []ColumnType{Int, Float, String} {
		b, err := ct.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var got ColumnType
		if err := got.UnmarshalText(b); err != nil || got != ct {
			t.Errorf("round trip %v failed: %v %v", ct, got, err)
		}
	}
	var ct ColumnType
	if err := ct.UnmarshalText([]byte("BOGUS")); err == nil {
		t.Error("UnmarshalText accepted BOGUS")
	}
}
